// Index-Based Partitioning (paper appendix; Ou, Ranka & Fox 1993).
//
// Three phases: (1) indexing — every vertex's coordinates are quantized and
// converted to a one-dimensional index that preserves spatial proximity;
// (2) sorting — vertices are ordered by index; (3) coloring — the sorted
// list is cut into num_parts equal-weight sublists.  Fast and balanced;
// the paper uses it to seed the GA's initial population (§3.5, Table 1).
#pragma once

#include <string>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gapart {

enum class IndexScheme {
  kRowMajor,          ///< quantized row-major scan
  kShuffledRowMajor,  ///< bit-interleaved (Morton) — the appendix's default
  kHilbert,           ///< Hilbert curve (locality-stronger extension)
};

const char* index_scheme_name(IndexScheme s);
IndexScheme parse_index_scheme(const std::string& name);

struct IbpOptions {
  IndexScheme scheme = IndexScheme::kShuffledRowMajor;
  int quantization_bits = 10;  ///< grid resolution per axis (2^bits cells)
};

/// Partitions `g` (which must carry coordinates) into num_parts parts of
/// equal vertex weight (within one vertex for unit weights).
Assignment ibp_partition(const Graph& g, PartId num_parts,
                         const IbpOptions& options = {});

/// The 1-D indices phase alone (exposed for tests and Figure 1).
std::vector<std::uint64_t> ibp_indices(const Graph& g,
                                       const IbpOptions& options = {});

}  // namespace gapart
