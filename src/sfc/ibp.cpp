#include "sfc/ibp.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "sfc/indexing.hpp"

namespace gapart {

const char* index_scheme_name(IndexScheme s) {
  switch (s) {
    case IndexScheme::kRowMajor:
      return "row-major";
    case IndexScheme::kShuffledRowMajor:
      return "shuffled-row-major";
    case IndexScheme::kHilbert:
      return "hilbert";
  }
  return "unknown";
}

IndexScheme parse_index_scheme(const std::string& name) {
  if (name == "row-major" || name == "rowmajor") return IndexScheme::kRowMajor;
  if (name == "shuffled" || name == "shuffled-row-major" || name == "morton") {
    return IndexScheme::kShuffledRowMajor;
  }
  if (name == "hilbert") return IndexScheme::kHilbert;
  throw Error("unknown index scheme '" + name +
              "' (expected row-major|shuffled|hilbert)");
}

std::vector<std::uint64_t> ibp_indices(const Graph& g,
                                       const IbpOptions& options) {
  GAPART_REQUIRE(g.has_coordinates(),
                 "IBP requires vertex coordinates; this graph has none");
  const auto q = quantize_points(g.coordinates(), options.quantization_bits);
  std::vector<std::uint64_t> idx(q.x.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    // Grid cell: row = quantized y, col = quantized x.
    const std::uint64_t row = q.y[i];
    const std::uint64_t col = q.x[i];
    switch (options.scheme) {
      case IndexScheme::kRowMajor:
        idx[i] = row_major_index(row, col,
                                 std::uint64_t{1} << options.quantization_bits);
        break;
      case IndexScheme::kShuffledRowMajor:
        idx[i] = morton_index(row, col, options.quantization_bits);
        break;
      case IndexScheme::kHilbert:
        idx[i] = hilbert_index(col, row, options.quantization_bits);
        break;
    }
  }
  return idx;
}

Assignment ibp_partition(const Graph& g, PartId num_parts,
                         const IbpOptions& options) {
  GAPART_REQUIRE(num_parts >= 1, "need at least one part");
  GAPART_REQUIRE(g.num_vertices() >= num_parts, "fewer vertices than parts");
  const auto idx = ibp_indices(g, options);

  std::vector<VertexId> order(static_cast<std::size_t>(g.num_vertices()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&idx](VertexId a, VertexId b) {
    const auto ia = idx[static_cast<std::size_t>(a)];
    const auto ib = idx[static_cast<std::size_t>(b)];
    return ia != ib ? ia < ib : a < b;
  });

  // Coloring: cut the sorted list into num_parts equal-weight sublists.
  Assignment out(static_cast<std::size_t>(g.num_vertices()), 0);
  const double total = g.total_vertex_weight();
  double acc = 0.0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const double w = g.vertex_weight(order[i]);
    // Part of the weight midpoint of this vertex.
    auto p = static_cast<PartId>((acc + 0.5 * w) * static_cast<double>(num_parts) /
                                 total);
    p = std::min<PartId>(p, num_parts - 1);
    out[static_cast<std::size_t>(order[i])] = p;
    acc += w;
  }
  return out;
}

}  // namespace gapart
