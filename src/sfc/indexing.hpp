// Spatial indexing schemes for Index-Based Partitioning (paper appendix).
//
// The appendix defines three pieces: (a) row-major indexing of a grid,
// (b) shuffled row-major indexing = bit interleaving (Morton order), and
// (c) a generalized interleave for dimensions with unequal bit widths,
// built by "choosing bits (right to left) of each of the dimensions one by
// one, starting from dimension 3" — i.e. round-robin from the last
// dimension, skipping exhausted dimensions.  A Hilbert curve is provided as
// a locality-stronger extension.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace gapart {

/// Row-major index of cell (row, col) in a grid with `cols` columns.
std::uint64_t row_major_index(std::uint64_t row, std::uint64_t col,
                              std::uint64_t cols);

/// Shuffled row-major (Morton / Z-order) index: interleaves the low `bits`
/// bits of row and col.  Like row-major, the column is the least significant
/// dimension (it is "dimension 2", drawn first by the appendix's interleave
/// rule) — this reproduces the paper's 8x8 Figure 1(b) exactly.
std::uint64_t morton_index(std::uint64_t row, std::uint64_t col, int bits);

/// The appendix's generalized interleave.  indices[d] carries bit_counts[d]
/// significant bits; bits are drawn LSB-first round-robin starting from the
/// LAST dimension, exhausted dimensions are skipped, and earlier-drawn bits
/// are less significant in the result.
///
/// Worked examples from the paper (validated in the tests):
///   interleave({0b001, 0b010, 0b110}, {3,3,3}) == 0b001011100
///   interleave({0b101, 0b01, 0b0},    {3,2,1}) == 0b100110
std::uint64_t interleave_bits(std::span<const std::uint64_t> indices,
                              std::span<const int> bit_counts);

/// Hilbert curve index of cell (x, y) on a 2^order x 2^order grid.
std::uint64_t hilbert_index(std::uint64_t x, std::uint64_t y, int order);

/// Quantizes points to a 2^bits x 2^bits integer grid over their bounding
/// box (per-axis).  Degenerate axes map to 0.
struct QuantizedPoints {
  std::vector<std::uint64_t> x;
  std::vector<std::uint64_t> y;
  int bits = 0;
};
QuantizedPoints quantize_points(const std::vector<Point2>& points, int bits);

}  // namespace gapart
