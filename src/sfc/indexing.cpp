#include "sfc/indexing.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace gapart {

std::uint64_t row_major_index(std::uint64_t row, std::uint64_t col,
                              std::uint64_t cols) {
  GAPART_REQUIRE(cols > 0, "grid must have at least one column");
  GAPART_REQUIRE(col < cols, "column ", col, " out of range");
  return row * cols + col;
}

std::uint64_t morton_index(std::uint64_t row, std::uint64_t col, int bits) {
  GAPART_REQUIRE(bits >= 1 && bits <= 31, "morton bits must be in [1,31]");
  // Dimension order follows the appendix: the interleave starts from the
  // last dimension, so with dims (row, col), col contributes the least
  // significant bit of each pair.
  const std::uint64_t idx[2] = {row, col};
  const int counts[2] = {bits, bits};
  return interleave_bits(idx, counts);
}

std::uint64_t interleave_bits(std::span<const std::uint64_t> indices,
                              std::span<const int> bit_counts) {
  GAPART_REQUIRE(indices.size() == bit_counts.size(),
                 "one bit count per dimension required");
  GAPART_REQUIRE(!indices.empty(), "need at least one dimension");
  int total = 0;
  for (std::size_t d = 0; d < indices.size(); ++d) {
    GAPART_REQUIRE(bit_counts[d] >= 0 && bit_counts[d] <= 63,
                   "bit count out of range");
    total += bit_counts[d];
    if (bit_counts[d] < 63) {
      GAPART_REQUIRE(indices[d] < (std::uint64_t{1} << bit_counts[d]),
                     "index of dimension ", d, " exceeds its bit width");
    }
  }
  GAPART_REQUIRE(total <= 63, "interleaved index exceeds 63 bits");

  std::uint64_t out = 0;
  int out_pos = 0;
  const auto dims = indices.size();
  // Round-robin over dimensions, starting from the LAST one, drawing one
  // bit (LSB first) per visit; exhausted dimensions are skipped.
  for (int round = 0; out_pos < total; ++round) {
    for (std::size_t step = 0; step < dims; ++step) {
      const std::size_t d = dims - 1 - step;
      if (round >= bit_counts[d]) continue;
      const std::uint64_t bit = (indices[d] >> round) & 1ULL;
      out |= bit << out_pos;
      ++out_pos;
    }
  }
  return out;
}

std::uint64_t hilbert_index(std::uint64_t x, std::uint64_t y, int order) {
  GAPART_REQUIRE(order >= 1 && order <= 31, "hilbert order must be in [1,31]");
  const std::uint64_t n = std::uint64_t{1} << order;
  GAPART_REQUIRE(x < n && y < n, "cell outside the 2^order grid");
  // Classic xy -> d conversion with quadrant rotations.
  std::uint64_t rx = 0;
  std::uint64_t ry = 0;
  std::uint64_t d = 0;
  for (std::uint64_t s = n / 2; s > 0; s /= 2) {
    rx = (x & s) > 0 ? 1 : 0;
    ry = (y & s) > 0 ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    // Rotate quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

QuantizedPoints quantize_points(const std::vector<Point2>& points, int bits) {
  GAPART_REQUIRE(bits >= 1 && bits <= 31, "quantization bits in [1,31]");
  QuantizedPoints q;
  q.bits = bits;
  q.x.resize(points.size());
  q.y.resize(points.size());
  if (points.empty()) return q;

  double lox = points[0].x;
  double hix = lox;
  double loy = points[0].y;
  double hiy = loy;
  for (const auto& p : points) {
    lox = std::min(lox, p.x);
    hix = std::max(hix, p.x);
    loy = std::min(loy, p.y);
    hiy = std::max(hiy, p.y);
  }
  const double cells = static_cast<double>(std::uint64_t{1} << bits);
  const auto max_cell = (std::uint64_t{1} << bits) - 1;
  auto map = [cells, max_cell](double v, double lo, double hi) {
    if (hi <= lo) return std::uint64_t{0};
    const double t = (v - lo) / (hi - lo);
    const auto cell = static_cast<std::uint64_t>(t * cells);
    return std::min(cell, max_cell);
  };
  for (std::size_t i = 0; i < points.size(); ++i) {
    q.x[i] = map(points[i].x, lox, hix);
    q.y[i] = map(points[i].y, loy, hiy);
  }
  return q;
}

}  // namespace gapart
