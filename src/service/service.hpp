// PartitionService: many concurrent PartitionSessions over one shared
// Executor — the layer that turns the algorithm library into a long-running
// system.
//
// Clients (one per mesh/simulation/tenant) open sessions, stream GraphDeltas
// into them, and read epoch-versioned snapshots at any time from any thread.
// The service runs each session's synchronous repair on the submitting
// client's thread (so per-delta latency is the client's to budget) and
// multiplexes every session's asynchronous refinement — policy-triggered
// hill-climb rounds and DPGA bursts — onto the one shared pool, where a
// burst's island steps themselves fan out as nested tasks.
//
// Thread-safety: all public methods are safe to call concurrently.  Updates
// to DIFFERENT sessions proceed in parallel; updates to one session
// serialize on that session's lock.  close_session never races a running
// refinement into use-after-free: jobs keep their session alive via
// shared_ptr and publication into a closed session is harmless.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/executor.hpp"
#include "service/session.hpp"

namespace gapart {

using SessionId = std::uint64_t;

struct ServiceConfig {
  /// Shared pool size when the service creates its own Executor
  /// (0 = hardware threads).  Ignored when an external pool is supplied.
  int num_threads = 0;
  /// Master switch for the asynchronous refinement plane.
  bool background_refinement = true;
  /// Seed for the per-job refinement RNG streams: refinement outcomes are a
  /// deterministic function of (seed, session id, captured epoch), whatever
  /// the pool's scheduling does.
  std::uint64_t seed = 0x5e55101d;
};

/// Service-wide aggregation over all open sessions.
struct ServiceStats {
  int sessions = 0;
  std::uint64_t updates = 0;
  std::uint64_t total_damage = 0;
  std::int64_t repair_moves = 0;
  std::int64_t examined = 0;
  std::int64_t full_evaluations = 0;
  std::int64_t delta_evaluations = 0;
  int refinements_planned = 0;
  int refinements_applied = 0;
  int refinements_stale = 0;
  int refinements_no_better = 0;
  /// Merged over every session's raw samples (quantiles do not compose).
  double p50_repair_seconds = 0.0;
  double p99_repair_seconds = 0.0;
  double max_repair_seconds = 0.0;
  /// Pool tasks queued or executing at sampling time (refinement backlog
  /// gauge; racy by nature).
  int pool_backlog = 0;
};

class PartitionService {
 public:
  /// `executor` (optional, non-owning, must outlive the service) supplies
  /// the refinement pool; when null the service owns one of
  /// config.num_threads.
  explicit PartitionService(ServiceConfig config = {},
                            Executor* executor = nullptr);

  /// Waits for in-flight refinements, then shuts down.
  ~PartitionService();

  PartitionService(const PartitionService&) = delete;
  PartitionService& operator=(const PartitionService&) = delete;

  /// Opens a session on `graph` partitioned as `initial`; returns its id.
  SessionId open_session(std::shared_ptr<const Graph> graph,
                         Assignment initial, SessionConfig config);

  /// Opens a session from a save_session checkpoint (`prefix`.graph /
  /// `prefix`.part, Chaco/METIS formats).
  SessionId open_session_from_files(const std::string& prefix,
                                    SessionConfig config);

  /// Closes (drops) a session.  A refinement still running for it finishes
  /// against its captured snapshot and is discarded.
  void close_session(SessionId id);

  /// Streams one delta into a session: synchronous tiered repair on the
  /// calling thread, then (policy permitting) schedules background
  /// refinement on the shared pool.
  RepairReport submit_update(SessionId id, std::shared_ptr<const Graph> grown,
                             const GraphDelta& delta);

  /// Latest snapshot of one session; wait-free against repair/refinement.
  std::shared_ptr<const SessionSnapshot> snapshot(SessionId id) const;

  SessionStats session_stats(SessionId id) const;
  ServiceStats stats() const;

  /// Idle tick: consults every session's refinement policy and schedules
  /// background work for those whose triggers fired, exactly as a delta
  /// arrival would.  Without it a session that stops receiving traffic
  /// could never act on its staleness/damage accumulators — call this from
  /// a periodic housekeeping loop (or between client bursts).
  void poll();

  /// Checkpoints one session to `prefix`.graph / `prefix`.part.
  void save_session(SessionId id, const std::string& prefix) const;

  /// Blocks until every scheduled refinement has completed and published.
  void quiesce();

  int num_sessions() const;
  Executor& executor() { return *executor_; }

 private:
  std::shared_ptr<PartitionSession> find(SessionId id) const;
  SessionId insert(std::shared_ptr<PartitionSession> session);
  void maybe_schedule_refinement(SessionId id,
                                 const std::shared_ptr<PartitionSession>& s);

  ServiceConfig config_;
  std::unique_ptr<Executor> owned_executor_;
  Executor* executor_;

  mutable std::mutex mu_;  ///< guards the session table only
  std::unordered_map<SessionId, std::shared_ptr<PartitionSession>> sessions_;
  SessionId next_id_ = 1;
};

}  // namespace gapart
