// PartitionService: many concurrent PartitionSessions over one shared
// Executor — the layer that turns the algorithm library into a long-running
// system.
//
// Clients (one per mesh/simulation/tenant) open sessions, stream GraphDeltas
// into them, and read epoch-versioned snapshots at any time from any thread.
// The service runs each session's synchronous repair on the submitting
// client's thread (so per-delta latency is the client's to budget) and
// multiplexes every session's asynchronous refinement — policy-triggered
// hill-climb rounds and DPGA bursts — onto the one shared pool, where a
// burst's island steps themselves fan out as nested tasks.
//
// Thread-safety: all public methods are safe to call concurrently.  Updates
// to DIFFERENT sessions proceed in parallel; updates to one session
// serialize on that session's lock.  close_session never races a running
// refinement into use-after-free: jobs keep their session alive via
// shared_ptr and publication into a closed session is harmless.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/executor.hpp"
#include "service/session.hpp"

namespace gapart {

using SessionId = std::uint64_t;

/// Backpressure: the overload policy rejected a delta (too many synchronous
/// repairs already in flight).  Nothing was applied or logged; the client
/// should back off and retry.
class OverloadError : public Error {
 public:
  explicit OverloadError(const std::string& what) : Error(what) {}
};

struct ServiceConfig {
  /// Shared pool size when the service creates its own Executor
  /// (0 = hardware threads).  Ignored when an external pool is supplied.
  int num_threads = 0;
  /// Master switch for the asynchronous refinement plane.
  bool background_refinement = true;
  /// Seed for the per-job refinement RNG streams: refinement outcomes are a
  /// deterministic function of (seed, session id, captured epoch), whatever
  /// the pool's scheduling does.
  std::uint64_t seed = 0x5e55101d;
  /// Per-session write-ahead logging + crash recovery; durability.enabled()
  /// (a non-empty directory) makes every open_session durable.
  DurabilityConfig durability;
  /// Graceful degradation under traffic bursts (see refine_policy.hpp).
  OverloadConfig overload;
};

/// Service-wide aggregation over all open sessions.
struct ServiceStats {
  int sessions = 0;
  std::uint64_t updates = 0;
  std::uint64_t total_damage = 0;
  std::int64_t repair_moves = 0;
  std::int64_t examined = 0;
  std::int64_t full_evaluations = 0;
  std::int64_t delta_evaluations = 0;
  int refinements_planned = 0;
  int refinements_applied = 0;
  int refinements_stale = 0;
  int refinements_no_better = 0;
  /// From `repair_latency` below: bucketed service-wide percentiles
  /// (relative error <= 12.5%; see common/telemetry.hpp).
  double p50_repair_seconds = 0.0;
  double p99_repair_seconds = 0.0;
  double max_repair_seconds = 0.0;  ///< exact
  /// Every session's repair-latency histogram merged — exact composition
  /// (histogram merge is associative), bounded memory, no raw samples.
  LogHistogram repair_latency;
  /// Pool tasks queued or executing at sampling time (refinement backlog
  /// gauge; racy by nature).
  int pool_backlog = 0;

  // Durability (summed over durable sessions' WalStats).
  int durable_sessions = 0;
  int failed_sessions = 0;  ///< fail-stopped by an unrecoverable WAL append
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_append_retries = 0;
  std::uint64_t wal_fsyncs = 0;
  std::uint64_t wal_bytes_appended = 0;
  std::uint64_t wal_compactions = 0;
  std::uint64_t wal_compaction_failures = 0;

  // Overload ladder outcomes.
  std::int64_t updates_rejected = 0;      ///< OverloadError backpressure
  std::int64_t verifications_shed = 0;    ///< admitted without verify rounds
  std::int64_t refinements_deferred = 0;  ///< policy fired, pool too deep
  std::int64_t refine_start_failures = 0; ///< task-start faults absorbed
};

/// What recovering one session directory took (PartitionService::recover).
struct RecoveryReport {
  SessionId session_id = 0;
  std::uint64_t snapshot_epoch = 0;  ///< replay started from this checkpoint
  std::uint64_t final_epoch = 0;     ///< epoch after the last replayed record
  std::size_t records_replayed = 0;
  /// The log ended in a partial record (the crash hit mid-append); the torn
  /// record was never acknowledged, so dropping it is correct.
  bool torn_tail = false;
  double seconds = 0.0;
};

class PartitionService {
 public:
  /// `executor` (optional, non-owning, must outlive the service) supplies
  /// the refinement pool; when null the service owns one of
  /// config.num_threads.
  explicit PartitionService(ServiceConfig config = {},
                            Executor* executor = nullptr);

  /// Waits for in-flight refinements, then shuts down.
  ~PartitionService();

  PartitionService(const PartitionService&) = delete;
  PartitionService& operator=(const PartitionService&) = delete;

  /// Opens a session on `graph` partitioned as `initial`; returns its id.
  SessionId open_session(std::shared_ptr<const Graph> graph,
                         Assignment initial, SessionConfig config);

  /// Opens a session from a save_session checkpoint (`prefix`.graph /
  /// `prefix`.part, Chaco/METIS formats).
  SessionId open_session_from_files(const std::string& prefix,
                                    SessionConfig config);

  /// Rebuilds every session found under config.durability.dir (one
  /// `session-<id>` directory each) from its checkpoint snapshot plus a
  /// deterministic replay of its delta log — the same repair pipeline the
  /// live sessions ran, wall clock removed.  Session ids are preserved.
  /// `base` supplies the non-persisted session config knobs (budgets,
  /// policy); num_parts and the fitness objective come from each session's
  /// meta file.  Call on a fresh service before opening new sessions.
  /// Throws WalCorruptError on mid-log corruption (a torn *tail* is
  /// tolerated and reported instead — it was never acknowledged).
  std::vector<RecoveryReport> recover(const SessionConfig& base);

  /// Closes a session: refuses further updates, cancels and drains any
  /// in-flight refinement (cooperative — the job unwinds at its next pass
  /// boundary), syncs its WAL, and drops it from the table.
  void close_session(SessionId id);

  /// Streams one delta into a session: synchronous tiered repair on the
  /// calling thread, then (policy permitting) schedules background
  /// refinement on the shared pool.
  ///
  /// When a WAL is attached (durable service), the report is returned only
  /// after the delta's record is on the log per the fsync policy: ack
  /// implies durable.  Under overload the call may shed verification rounds
  /// or throw OverloadError (nothing applied; back off and retry).
  RepairReport submit_update(SessionId id, std::shared_ptr<const Graph> grown,
                             const GraphDelta& delta);

  /// submit_update for clients that treat backpressure as data, not control
  /// flow: nullopt instead of OverloadError.  Other errors still throw.
  std::optional<RepairReport> try_submit_update(
      SessionId id, std::shared_ptr<const Graph> grown,
      const GraphDelta& delta);

  /// Latest snapshot of one session; wait-free against repair/refinement.
  std::shared_ptr<const SessionSnapshot> snapshot(SessionId id) const;

  SessionStats session_stats(SessionId id) const;
  ServiceStats stats() const;

  /// Idle tick: consults every session's refinement policy and schedules
  /// background work for those whose triggers fired, exactly as a delta
  /// arrival would.  Without it a session that stops receiving traffic
  /// could never act on its staleness/damage accumulators — call this from
  /// a periodic housekeeping loop (or between client bursts).
  void poll();

  /// Checkpoints one session to `prefix`.graph / `prefix`.part.
  void save_session(SessionId id, const std::string& prefix) const;

  /// Blocks until every scheduled refinement has completed and published.
  void quiesce();

  int num_sessions() const;
  Executor& executor() { return *executor_; }
  const ServiceConfig& config() const { return config_; }

  // --- Replication plumbing (see service/replication.hpp) -----------------
  //
  // The shipper tails session WAL directories directly and the follower
  // rebuilds sessions from streamed open frames; both need slightly more
  // access than regular clients.

  /// All open session ids, ascending (a stable iteration order for the
  /// shipper's attach scan).
  std::vector<SessionId> session_ids() const;

  /// Shared handle to one session (throws on unknown id).  Jobs holding the
  /// handle keep the session alive across close_session.
  std::shared_ptr<PartitionSession> session_handle(SessionId id) const;

  /// Directory holding one session's WAL (`<durability.dir>/session-<id>`).
  std::string session_wal_dir(SessionId id) const { return session_dir(id); }

  /// Follower side of replication: (re)creates session `id` from a streamed
  /// open frame — full graph + assignment at `start_epoch` with the leader's
  /// content digest — replacing any existing session with that id.  The new
  /// session is put in recovery mode (epochs continue from `start_epoch`)
  /// and, when durability is enabled, gets a fresh WAL checkpointed at
  /// exactly that epoch so a crashed follower restarts from its own disk.
  void open_replica_session(SessionId id, std::shared_ptr<const Graph> graph,
                            Assignment initial, SessionConfig config,
                            std::uint64_t start_epoch, std::uint64_t digest);

 private:
  std::shared_ptr<PartitionSession> find(SessionId id) const;
  SessionId insert(std::shared_ptr<PartitionSession> session);
  void insert_with_id(SessionId id, std::shared_ptr<PartitionSession> session);
  void maybe_schedule_refinement(SessionId id,
                                 const std::shared_ptr<PartitionSession>& s);
  std::string session_dir(SessionId id) const;

  ServiceConfig config_;
  std::unique_ptr<Executor> owned_executor_;
  Executor* executor_;

  mutable std::mutex mu_;  ///< guards the session table only
  std::unordered_map<SessionId, std::shared_ptr<PartitionSession>> sessions_;
  SessionId next_id_ = 1;

  /// Concurrent submit_update calls (the overload gate's signal).
  std::atomic<int> inflight_repairs_{0};
  // Overload ladder counters (lock-free: bumped on the submit path).
  std::atomic<std::int64_t> updates_rejected_{0};
  std::atomic<std::int64_t> verifications_shed_{0};
  std::atomic<std::int64_t> refinements_deferred_{0};
  std::atomic<std::int64_t> refine_start_failures_{0};
};

}  // namespace gapart
