// When should a live partition session spend background cycles on deeper
// refinement?
//
// The synchronous per-delta repair tier keeps a session's partition *locally*
// sane at O(damage) cost, but quality leaks over a long delta stream: greedy
// extension piles load imbalance near growth hot-spots, and the un-verified
// seeded cascade leaves improving moves behind elsewhere on the boundary.
// The policy engine watches three signals and schedules asynchronous
// refinement (frontier hill-climb rounds, optionally a DPGA burst) when any
// of them fires:
//
//   quality watermark    the maintained fitness degraded more than a set
//                        fraction below the last refined baseline;
//   staleness            too many updates were absorbed since the last
//                        refinement, whatever the fitness says (the baseline
//                        itself goes stale as the graph drifts);
//   damage accumulation  the summed delta damage since the last refinement
//                        crossed a threshold — many small updates erode
//                        quality as surely as one big one.
//
// decide_refinement is a pure function of (config, signals) so the trigger
// logic is unit-testable without sessions, threads, or clocks.
#pragma once

#include <cstdint>

#include "graph/types.hpp"

namespace gapart {

/// How much background work to schedule.
enum class RefineDepth {
  kNone,   ///< No trigger fired (or a refinement is already in flight).
  kLight,  ///< Verified frontier hill-climb rounds: cheap, usually enough.
  kDeep,   ///< Hill climb + DPGA burst seeded with the repaired solution —
           ///< the paper's §3.5 incremental GA as a background job.
};

const char* refine_depth_name(RefineDepth d);

struct RefinePolicyConfig {
  /// Quality watermark: trigger when fitness sits more than this fraction
  /// below the refined baseline (measured on the |baseline| scale).
  /// <= 0 disables the watermark trigger.
  double quality_watermark = 0.02;
  /// Staleness: trigger after this many updates without refinement.
  /// <= 0 disables the staleness trigger.
  int staleness_updates = 64;
  /// Damage accumulation: trigger once the damage absorbed since the last
  /// refinement reaches this many vertices.  <= 0 disables the trigger.
  VertexId damage_threshold = 256;

  /// Escalate to kDeep once the damage since the last DEEP refinement
  /// reaches this threshold (<= 0: never escalate on damage) ...
  VertexId deep_damage_threshold = 4096;
  /// ... or when the degradation exceeds the watermark by this factor.
  double deep_watermark_factor = 8.0;
  /// Master switch for kDeep (DPGA bursts are orders of magnitude more
  /// expensive than hill-climb rounds; latency-bound deployments disable
  /// them and rely on kLight only).
  bool allow_deep = true;

  /// Route the kLight frontier climb of a session at least this large to the
  /// parallel batch engine (HillClimbMode::kParallelFrontier) when the
  /// service pool has more than one thread.  Small sessions stay serial: a
  /// batch round costs one pool fan-out plus a seam re-validation pass, which
  /// only pays for itself once the boundary is big enough to shard.  <= 0
  /// disables parallel routing entirely.
  VertexId parallel_refine_min_vertices = 1 << 16;

  /// Route the kDeep tier of a session at least this large to the multilevel
  /// V-cycle engine (core/vcycle_ga.hpp) instead of the flat DPGA burst: a
  /// flat GA's search degrades with |V| (the paper's conclusion), while the
  /// V-cycle evolves a coarse quotient and repairs upward at O(boundary)
  /// cost per level — and its partition-respecting coarsening guarantees the
  /// result is never worse than the session's current assignment.  Small
  /// sessions keep the flat burst (coarsening overhead outweighs it).
  /// <= 0 disables V-cycle routing entirely.
  VertexId vcycle_min_vertices = 1 << 15;
};

/// What the session reports into the policy.  Fitnesses are the maximized
/// (negative) composite objective values.
struct RefineSignals {
  double current_fitness = 0.0;
  /// Fitness right after the last applied refinement (or at session open).
  double baseline_fitness = 0.0;
  int updates_since_refine = 0;
  // Accumulators are 64-bit: a session with disabled triggers can absorb
  // per-delta damage indefinitely without overflowing into UB.
  std::int64_t damage_since_refine = 0;
  std::int64_t damage_since_deep = 0;
  /// A refinement job is already running for this session: never stack a
  /// second one (the first would be discarded as stale anyway).
  bool refine_in_flight = false;
};

/// Relative quality degradation of `current` below `baseline`, on the
/// |baseline| scale (>= 0; 0 when current is at or above the baseline).
double fitness_degradation(double current_fitness, double baseline_fitness);

/// The policy: pure, deterministic, no side effects.
RefineDepth decide_refinement(const RefinePolicyConfig& config,
                              const RefineSignals& signals);

/// Should a kLight refinement of a `num_vertices`-vertex session run on the
/// parallel batch engine?  Pure, like decide_refinement: true iff routing is
/// enabled, the session meets the size floor, and `pool_threads` > 1 (a
/// one-thread pool would fall back to the serial climb anyway).
bool route_refinement_parallel(const RefinePolicyConfig& config,
                               VertexId num_vertices, int pool_threads);

/// Should a kDeep refinement of a `num_vertices`-vertex session run the
/// multilevel V-cycle engine instead of the flat DPGA burst?  Pure: true iff
/// routing is enabled and the session meets the size floor.
bool route_deep_vcycle(const RefinePolicyConfig& config,
                       VertexId num_vertices);

// ---------------------------------------------------------------------------
// WAL compaction policy.  Same shape as the refinement policy: the session
// accumulates damage/bytes into its delta log, and a pure decision function
// says when to fold the log into a fresh checkpoint snapshot and truncate.
// Compaction is the durability layer's O(V + E) step, so it is triggered by
// the same damage-accumulation signal that drives refinement — an unbounded
// log would make both recovery time and disk usage grow without bound.

struct CompactionPolicy {
  /// Compact once the damage recorded in the log since the last snapshot
  /// reaches this many vertices.  <= 0 disables the damage trigger.
  std::int64_t damage_threshold = 4096;
  /// ... or once the log itself exceeds this many bytes (0 disables).
  std::uint64_t bytes_threshold = 8ull << 20;
  /// Never compact a log with fewer records than this (a snapshot per delta
  /// would reintroduce the O(V + E)-per-update cost the WAL exists to avoid).
  std::uint64_t min_records = 4;
};

struct CompactionSignals {
  std::int64_t log_damage = 0;
  std::uint64_t log_bytes = 0;
  std::uint64_t log_records = 0;
};

/// Pure: should the session snapshot + truncate now?
bool decide_compaction(const CompactionPolicy& policy,
                       const CompactionSignals& signals);

// ---------------------------------------------------------------------------
// Overload policy.  Under a traffic burst the service degrades in a fixed
// order — quality first, latency second, availability last:
//
//   1. shed verification   synchronous repairs skip their budgeted
//                          verification rounds (cascade only; background
//                          refinement recovers the quality later);
//   2. defer refinement    policy-triggered background jobs are not
//                          scheduled while the pool backlog is deep (the
//                          accumulators keep counting, so the work happens
//                          when the burst passes);
//   3. reject              submit_update refuses new deltas with a typed
//                          backpressure error once too many synchronous
//                          repairs are already in flight.
//
// All thresholds are "0 disables", and the decisions are pure functions so
// the degradation ladder is unit-testable without threads.

struct OverloadConfig {
  /// Reject new deltas while this many submit_update calls are already
  /// running (0 = never reject).
  int max_inflight_repairs = 0;
  /// Shed synchronous verification rounds while the refinement pool backlog
  /// is at or above this many tasks (0 = never shed).
  int shed_verification_backlog = 0;
  /// Do not schedule new background refinement while the pool backlog is at
  /// or above this many tasks (0 = never defer).
  int defer_refinement_backlog = 0;
};

struct OverloadSignals {
  /// Concurrent submit_update calls, including the one asking.
  int inflight_repairs = 0;
  /// Refinement pool tasks queued or executing.
  int pool_backlog = 0;
};

enum class AdmitDecision {
  kAdmit,             ///< Run the full repair pipeline.
  kShedVerification,  ///< Admit, but skip budgeted verification rounds.
  kReject,            ///< Backpressure: the caller should retry later.
};

const char* admit_decision_name(AdmitDecision d);

/// Pure: how should the service treat one arriving delta?
AdmitDecision decide_admission(const OverloadConfig& config,
                               const OverloadSignals& signals);

/// Pure: should a policy-triggered refinement be deferred right now?
bool defer_refinement(const OverloadConfig& config, int pool_backlog);

}  // namespace gapart
