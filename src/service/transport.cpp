#include "service/transport.hpp"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/fault_injection.hpp"

namespace gapart {

// ---------------------------------------------------------------------------
// LoopbackTransport
// ---------------------------------------------------------------------------

struct LoopbackTransport::Shared {
  std::mutex mu;
  std::condition_variable cv;
  // queues[i] holds frames travelling TOWARD endpoint i.
  std::deque<std::string> queues[2];
  bool closed[2] = {false, false};  ///< endpoint i called close()
  bool link_down = false;
  std::size_t max_queued = 1024;
};

LoopbackTransport::LoopbackTransport() = default;

std::pair<std::unique_ptr<LoopbackTransport>,
          std::unique_ptr<LoopbackTransport>>
LoopbackTransport::create_pair(std::size_t max_queued_frames) {
  auto shared = std::make_shared<Shared>();
  shared->max_queued = max_queued_frames == 0 ? 1 : max_queued_frames;
  auto a = std::unique_ptr<LoopbackTransport>(new LoopbackTransport());
  auto b = std::unique_ptr<LoopbackTransport>(new LoopbackTransport());
  a->shared_ = shared;
  a->side_ = 0;
  b->shared_ = shared;
  b->side_ = 1;
  return {std::move(a), std::move(b)};
}

LoopbackTransport::~LoopbackTransport() { close(); }

void LoopbackTransport::send(const std::string& frame) {
  // The fault matrix lives here, BEFORE the queue, so the receiver observes
  // exactly what a lossy/duplicating/reordering network would deliver.
  if (GAPART_FAULT_POINT(FaultSite::kTransportSend)) {
    throw TransportError("injected fault: replication link send failed");
  }
  const bool drop = GAPART_FAULT_POINT(FaultSite::kTransportDrop);
  const bool dup = GAPART_FAULT_POINT(FaultSite::kTransportDup);
  const bool reorder = GAPART_FAULT_POINT(FaultSite::kTransportReorder);
  const bool truncate = GAPART_FAULT_POINT(FaultSite::kTransportTruncate);

  std::unique_lock<std::mutex> lock(shared_->mu);
  if (shared_->link_down) {
    throw TransportError("replication link is partitioned");
  }
  auto& queue = shared_->queues[1 - side_];
  if (shared_->closed[1 - side_] || shared_->closed[side_]) {
    throw TransportError("replication link is closed");
  }
  if (drop) return;  // the network ate it; CRC/seq layers must recover
  std::string wire = frame;
  if (truncate && wire.size() > 1) {
    wire.resize(wire.size() * 2 / 3);  // cut mid-frame; CRC must reject
  }
  const std::size_t copies = dup ? 2u : 1u;
  for (std::size_t c = 0; c < copies; ++c) {
    if (queue.size() >= shared_->max_queued) {
      throw TransportError("replication link backpressure: " +
                           std::to_string(queue.size()) + " frames queued");
    }
    if (reorder && !queue.empty()) {
      queue.insert(queue.end() - 1, wire);  // arrives before its predecessor
    } else {
      queue.push_back(wire);
    }
  }
  lock.unlock();
  shared_->cv.notify_all();
}

std::optional<std::string> LoopbackTransport::receive(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(shared_->mu);
  auto& queue = shared_->queues[side_];
  const auto ready = [&] {
    return !queue.empty() || shared_->closed[1 - side_] ||
           shared_->closed[side_];
  };
  if (timeout_seconds > 0.0 && !ready()) {
    shared_->cv.wait_for(
        lock, std::chrono::duration<double>(timeout_seconds), ready);
  }
  if (queue.empty()) return std::nullopt;
  std::string frame = std::move(queue.front());
  queue.pop_front();
  return frame;
}

bool LoopbackTransport::peer_closed() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->closed[1 - side_] && shared_->queues[side_].empty();
}

void LoopbackTransport::close() {
  if (shared_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->closed[side_] = true;
  }
  shared_->cv.notify_all();
}

void LoopbackTransport::set_link_down(bool down) {
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->link_down = down;
  }
  shared_->cv.notify_all();
}

std::size_t LoopbackTransport::pending() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->queues[side_].size();
}

// ---------------------------------------------------------------------------
// SocketTransport
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

int accept_one(int listen_fd, const std::string& what) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  const int saved = errno;
  ::close(listen_fd);
  if (fd < 0) {
    errno = saved;
    throw_errno(what);
  }
  return fd;
}

}  // namespace

SocketTransport::SocketTransport(int fd) : fd_(fd) {}

SocketTransport::~SocketTransport() { close(); }

std::unique_ptr<SocketTransport> SocketTransport::listen_unix(
    const std::string& path) {
  const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (lfd < 0) throw_errno("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(lfd);
    throw TransportError("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(lfd, 1) != 0) {
    const int saved = errno;
    ::close(lfd);
    errno = saved;
    throw_errno("bind/listen(" + path + ")");
  }
  return std::unique_ptr<SocketTransport>(
      new SocketTransport(accept_one(lfd, "accept(" + path + ")")));
}

std::unique_ptr<SocketTransport> SocketTransport::connect_unix(
    const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw TransportError("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect(" + path + ")");
  }
  return std::unique_ptr<SocketTransport>(new SocketTransport(fd));
}

std::unique_ptr<SocketTransport> SocketTransport::listen_tcp(int port) {
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(lfd, 1) != 0) {
    const int saved = errno;
    ::close(lfd);
    errno = saved;
    throw_errno("bind/listen(tcp:" + std::to_string(port) + ")");
  }
  return std::unique_ptr<SocketTransport>(
      new SocketTransport(accept_one(lfd, "accept(tcp)")));
}

std::unique_ptr<SocketTransport> SocketTransport::connect_tcp(
    const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw TransportError("bad IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return std::unique_ptr<SocketTransport>(new SocketTransport(fd));
}

void SocketTransport::send(const std::string& frame) {
  if (GAPART_FAULT_POINT(FaultSite::kTransportSend)) {
    throw TransportError("injected fault: replication link send failed");
  }
  if (fd_ < 0) throw TransportError("socket transport is closed");
  std::uint32_t len = static_cast<std::uint32_t>(frame.size());
  char prefix[4];
  std::memcpy(prefix, &len, sizeof(len));
  const char* bufs[2] = {prefix, frame.data()};
  const std::size_t sizes[2] = {sizeof(prefix), frame.size()};
  for (int part = 0; part < 2; ++part) {
    std::size_t off = 0;
    while (off < sizes[part]) {
      // MSG_NOSIGNAL: a dead peer surfaces as EPIPE, not a process signal.
      const ssize_t n = ::send(fd_, bufs[part] + off, sizes[part] - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("send");
      }
      off += static_cast<std::size_t>(n);
    }
  }
}

std::optional<std::string> SocketTransport::receive(double timeout_seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds < 0 ? 0
                                                            : timeout_seconds));
  for (;;) {
    // A complete frame may already be buffered from a previous partial read.
    if (carry_.size() >= 4) {
      std::uint32_t len = 0;
      std::memcpy(&len, carry_.data(), sizeof(len));
      if (carry_.size() >= 4 + static_cast<std::size_t>(len)) {
        std::string frame = carry_.substr(4, len);
        carry_.erase(0, 4 + static_cast<std::size_t>(len));
        return frame;
      }
    }
    if (fd_ < 0 || peer_closed_) return std::nullopt;

    const auto now = std::chrono::steady_clock::now();
    const int wait_ms =
        now >= deadline
            ? 0
            : static_cast<int>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - now)
                      .count());
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, wait_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (pr == 0) return std::nullopt;  // timed out; carry_ keeps partials

    char buf[65536];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read");
    }
    if (n == 0) {
      peer_closed_ = true;  // EOF; a torn carry_ tail was never a full frame
      return std::nullopt;
    }
    carry_.append(buf, static_cast<std::size_t>(n));
  }
}

bool SocketTransport::peer_closed() const { return peer_closed_; }

void SocketTransport::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace gapart
