#include "service/session.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <optional>
#include <queue>

#include "common/assert.hpp"
#include "common/fault_injection.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "core/eval.hpp"
#include "core/hill_climb.hpp"
#include "core/init.hpp"
#include "core/presets.hpp"
#include "graph/connectivity_scratch.hpp"
#include "graph/delta_codec.hpp"
#include "graph/io.hpp"

namespace gapart {

namespace {

const Graph& require_graph(const std::shared_ptr<const Graph>& g) {
  GAPART_REQUIRE(g != nullptr, "session graph must not be null");
  return *g;
}

}  // namespace

SessionConfig::SessionConfig() : deep(paper_dpga_config(2, Objective::kTotalComm)) {
  // The deep tier runs as ONE background task next to every other session's
  // work, so its defaults are a burst, not the paper's full table budget.
  deep.num_islands = 4;
  deep.parallel = true;  // island bursts ride the shared pool
  deep.ga.population_size = 64;
  deep.ga.max_generations = 60;
  deep.ga.stall_generations = 15;
  deep.ga.hill_climb_offspring = true;
  deep.ga.hill_climb_fraction = 0.25;

  // The V-cycle tier for big sessions: same burst discipline — the coarsest
  // DPGA inherits the flat burst's budgets, and the ascending per-level GAs
  // stay small (they only polish a seeded incumbent).
  deep_vcycle.dpga = deep;
  deep_vcycle.level_population = 24;
  deep_vcycle.level_max_generations = 20;
  deep_vcycle.level_stall = 5;
}

PartitionSession::PartitionSession(std::shared_ptr<const Graph> graph,
                                   Assignment initial, SessionConfig config,
                                   const char* origin)
    : config_(std::move(config)),
      graph_(std::move(graph)),
      state_(require_graph(graph_), std::move(initial), config_.num_parts) {
  // num_parts is validated by the PartitionState member initializer.
  GAPART_REQUIRE(config_.repair_min_gain > 0.0,
                 "repair_min_gain must be positive (bounds the cascade)");
  std::lock_guard<std::mutex> lock(mu_);  // publish()'s contract
  stats_.full_evaluations = 1;  // the state construction
  baseline_fitness_ = state_.fitness(config_.fitness);
  publish(origin);
}

std::vector<PartId> PartitionSession::extend_parts(const Graph& grown,
                                                   VertexId n_old) const {
  const VertexId n = grown.num_vertices();
  const auto n_new = static_cast<std::size_t>(n - n_old);
  std::vector<PartId> parts(n_new, -1);
  if (n_new == 0) return parts;

  const PartId k = config_.num_parts;
  std::vector<double> part_weight(static_cast<std::size_t>(k));
  for (PartId q = 0; q < k; ++q) {
    part_weight[static_cast<std::size_t>(q)] = state_.part_weight(q);
  }
  const Assignment& old_assign = state_.assignment();
  const auto part_of = [&](VertexId u) -> PartId {
    return u < n_old ? old_assign[static_cast<std::size_t>(u)]
                     : parts[static_cast<std::size_t>(u - n_old)];
  };

  if (!config_.greedy_extend) {
    // Balanced extension (§3.5's random dealing, made deterministic):
    // every new vertex to the currently lightest part, lowest id on ties.
    for (VertexId v = n_old; v < n; ++v) {
      PartId choice = 0;
      for (PartId q = 1; q < k; ++q) {
        if (part_weight[static_cast<std::size_t>(q)] <
            part_weight[static_cast<std::size_t>(choice)]) {
          choice = q;
        }
      }
      parts[static_cast<std::size_t>(v - n_old)] = choice;
      part_weight[static_cast<std::size_t>(choice)] += grown.vertex_weight(v);
    }
    return parts;
  }

  // Tier 1 of the PR 4 pipeline (greedy_incremental_assign), restated over
  // the new range only so one delta costs O(new * deg + new log new + k),
  // never O(V): most-constrained-first pick order via a lazy bucket queue,
  // edge-weighted majority vote, ties to the lightest part then lowest id.
  std::vector<std::int32_t> assigned_nbrs(n_new, 0);
  using MinIdHeap =
      std::priority_queue<VertexId, std::vector<VertexId>, std::greater<>>;
  std::vector<MinIdHeap> buckets;
  std::int32_t cur_max = 0;
  const auto push_bucket = [&](VertexId v, std::int32_t c) {
    if (static_cast<std::size_t>(c) >= buckets.size()) {
      buckets.resize(static_cast<std::size_t>(c) + 1);
    }
    buckets[static_cast<std::size_t>(c)].push(v);
    cur_max = std::max(cur_max, c);
  };
  for (VertexId v = n_old; v < n; ++v) {
    std::int32_t c = 0;
    for (VertexId u : grown.neighbors(v)) c += part_of(u) >= 0;
    assigned_nbrs[static_cast<std::size_t>(v - n_old)] = c;
    push_bucket(v, c);
  }

  ConnectivityScratch votes(static_cast<std::size_t>(k));
  for (std::size_t remaining = n_new; remaining > 0; --remaining) {
    VertexId v = -1;
    while (v < 0) {
      auto& bucket = buckets[static_cast<std::size_t>(cur_max)];
      if (bucket.empty()) {
        --cur_max;
        continue;
      }
      const VertexId cand = bucket.top();
      bucket.pop();
      if (parts[static_cast<std::size_t>(cand - n_old)] < 0 &&
          assigned_nbrs[static_cast<std::size_t>(cand - n_old)] == cur_max) {
        v = cand;
      }
    }

    votes.begin();
    const auto nbrs = grown.neighbors(v);
    const auto wgts = grown.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const PartId p = part_of(nbrs[i]);
      if (p >= 0) votes.add(p, wgts[i]);
    }
    PartId choice = 0;
    for (PartId q = 1; q < k; ++q) {
      const auto uq = static_cast<std::size_t>(q);
      const auto uc = static_cast<std::size_t>(choice);
      if (votes[q] > votes[choice] ||
          (votes[q] == votes[choice] && part_weight[uq] < part_weight[uc])) {
        choice = q;
      }
    }
    parts[static_cast<std::size_t>(v - n_old)] = choice;
    part_weight[static_cast<std::size_t>(choice)] += grown.vertex_weight(v);
    for (const VertexId u : nbrs) {
      if (u >= n_old && parts[static_cast<std::size_t>(u - n_old)] < 0) {
        push_bucket(u, ++assigned_nbrs[static_cast<std::size_t>(u - n_old)]);
      }
    }
  }
  return parts;
}

RepairReport PartitionSession::apply_update(std::shared_ptr<const Graph> grown,
                                            const GraphDelta& delta,
                                            const ApplyOptions& opts) {
  const Graph& g = require_graph(grown);
  std::lock_guard<std::mutex> lock(mu_);
  GAPART_REQUIRE(!closed_, "session is closed");
  GAPART_REQUIRE(!wal_failed_,
                 "session fail-stopped: a WAL append exhausted its retries, "
                 "so an earlier repair mutated state the log never recorded "
                 "— accepting more updates would make the log unreplayable");
  // The delta path's allocation fault point: fires before any state is
  // touched, so an injected failure here is a clean rejection the client
  // can retry.
  if (GAPART_FAULT_POINT(FaultSite::kDeltaAlloc)) {
    throw std::bad_alloc();
  }
  const VertexId n_old = graph_->num_vertices();
  GAPART_REQUIRE(delta.old_num_vertices == n_old,
                 "delta.old_num_vertices (", delta.old_num_vertices,
                 ") disagrees with the session graph (", n_old, " vertices)");
  GAPART_REQUIRE(g.num_vertices() >= n_old,
                 "session graphs can only grow (got ", g.num_vertices(),
                 " after ", n_old, ")");

  GAPART_SPAN("repair.apply");
  WallTimer timer;
  RepairReport rep;
  rep.damage = delta.damage(g);

  // Tier 1 + rebind: assign the new vertices against the pre-update state,
  // then absorb the new graph in O(damage * deg).
  std::vector<PartId> new_parts;
  {
    GAPART_SPAN("repair.extend");
    new_parts = extend_parts(g, n_old);
  }
  {
    GAPART_SPAN("repair.rebind");
    state_.rebind_grown(g, delta.touched_old, new_parts);
  }
  graph_ = std::move(grown);
  rep.extend_moves = static_cast<int>(new_parts.size());

  // Tier 2: strictly damage-proportional seeded cascade first, then
  // O(boundary) verification rounds only while the latency budget lasts —
  // deeper quality is the background refinement plane's job.
  if (config_.seeded_repair) {
    HillClimbOptions opt;
    opt.fitness = config_.fitness;
    opt.min_gain = config_.repair_min_gain;
    opt.gain_ordered = config_.gain_ordered_repair;
    opt.verify_fixed_point = false;
    {
      GAPART_SPAN("repair.cascade");
      const auto res =
          hill_climb_from(state_, repair_seeds(delta, *graph_), opt);
      rep.repair_moves += res.moves;
      rep.examined += res.examined;
    }

    opt.mode = HillClimbMode::kFrontier;  // unseeded: one full round + cascade
    // Replay runs exactly the round count the live run logged (the budget
    // clock is the one nondeterministic input to the pipeline); shedding
    // runs none.  The moves == 0 early exit is itself deterministic, so it
    // stays in both paths.
    const int max_rounds =
        opts.replay_verify_rounds >= 0
            ? std::min(opts.replay_verify_rounds,
                       config_.repair_max_verify_rounds)
            : (opts.shed_verification ? 0 : config_.repair_max_verify_rounds);
    if (max_rounds > 0) {
      GAPART_SPAN("repair.verify");
      while (rep.verify_rounds < max_rounds &&
             (opts.replay_verify_rounds >= 0 ||
              timer.seconds() < config_.repair_budget_seconds)) {
        const auto vres = hill_climb(state_, opt);
        ++rep.verify_rounds;
        rep.repair_moves += vres.moves;
        rep.examined += vres.examined;
        if (vres.moves == 0) break;  // verified fixed point
      }
    }
  }
  rep.seconds = timer.seconds();

  ++update_epoch_;
  ++updates_since_refine_;
  damage_since_refine_ += rep.damage;
  damage_since_deep_ += rep.damage;

  rep.update_epoch = update_epoch_;
  rep.fitness_after = state_.fitness(config_.fitness);

  ++stats_.updates;
  stats_.total_damage += static_cast<std::uint64_t>(rep.damage);
  stats_.extend_moves += rep.extend_moves;
  stats_.repair_moves += rep.repair_moves;
  stats_.examined += rep.examined;
  stats_.delta_evaluations += rep.repair_moves;  // one delta per move
  stats_.repair_latency.record(rep.seconds);
  GAPART_COUNTER_ADD("repair.updates", 1);
  GAPART_COUNTER_ADD("repair.damage", rep.damage);
  GAPART_HISTOGRAM_RECORD("repair.latency_seconds", rep.seconds);

  // Write-ahead logging: the record — delta bytes plus the verification
  // round count the budget actually admitted — must be durable before this
  // call returns, because the returned report is the acknowledgement.
  if (wal_ != nullptr && !opts.replaying) {
    try {
      wal_->append(WalRecordType::kDelta, update_epoch_,
                   static_cast<std::uint32_t>(rep.verify_rounds),
                   encode_delta(*graph_, delta), rep.damage);
    } catch (const IoError&) {
      // The repair already mutated the state; without its record every later
      // record would replay against the wrong graph.  Fail-stop the session
      // rather than silently dropping an acknowledged-looking update.
      wal_failed_ = true;
      throw;
    }
    if (wal_->should_compact()) {
      try {
        wal_->compact(update_epoch_, *graph_, state_.assignment(),
                      state_.content_hash());
      } catch (const IoError&) {
        // Snapshot writing failed; the log is still intact and complete, so
        // durability is unharmed — compaction simply retries at the next
        // trigger (counted in WalStats::compaction_failures).
      }
    }
  }

  publish("repair");
  return rep;
}

void PartitionSession::publish(const char* source) {
  auto snap = std::make_shared<SessionSnapshot>();
  snap->update_epoch = update_epoch_;
  snap->version = ++version_;
  snap->source = source;
  snap->graph = graph_;
  snap->assignment = state_.assignment();
  snap->fitness = state_.fitness(config_.fitness);
  snap->total_cut = state_.total_cut();
  snap->max_part_cut = state_.max_part_cut();
  snap->imbalance_sq = state_.imbalance_sq();
  stats_.version = snap->version;
  if (cut_trajectory_.size() < SessionStats::kMaxHistory) {
    cut_trajectory_.emplace_back(update_epoch_, snap->total_cut);
  } else {  // sliding window: overwrite the oldest entry
    cut_trajectory_[cut_trajectory_next_] = {update_epoch_, snap->total_cut};
    cut_trajectory_next_ =
        (cut_trajectory_next_ + 1) % SessionStats::kMaxHistory;
  }
  std::lock_guard<std::mutex> lock(snap_mu_);
  snapshot_ = std::move(snap);
}

std::shared_ptr<const SessionSnapshot> PartitionSession::snapshot() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return snapshot_;
}

RefineSignals PartitionSession::signals() const {
  RefineSignals s;
  s.current_fitness = state_.fitness(config_.fitness);
  s.baseline_fitness = baseline_fitness_;
  s.updates_since_refine = updates_since_refine_;
  s.damage_since_refine = damage_since_refine_;
  s.damage_since_deep = damage_since_deep_;
  s.refine_in_flight = refine_in_flight_;
  return s;
}

std::optional<PartitionSession::RefineJob> PartitionSession::plan_refinement() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return std::nullopt;
  const RefineDepth depth = decide_refinement(config_.policy, signals());
  if (depth == RefineDepth::kNone) return std::nullopt;
  refine_in_flight_ = true;
  refine_cancel_ = std::make_shared<std::atomic<bool>>(false);
  ++stats_.refinements_planned;
  RefineJob job;
  job.update_epoch = update_epoch_;
  job.depth = depth;
  job.graph = graph_;
  job.assignment = state_.assignment();
  job.fitness = state_.fitness(config_.fitness);
  job.cancel = refine_cancel_;
  return job;
}

bool PartitionSession::complete_refinement(const RefineJob& job,
                                           Assignment refined,
                                           double refined_fitness,
                                           std::int64_t full_evaluations,
                                           std::int64_t delta_evaluations) {
  // Build the replacement state OUTSIDE the session lock (it is the one
  // O(V+E) step of adoption); a delta racing us just makes it dead weight.
  std::optional<PartitionState> candidate;
  if (refined_fitness > job.fitness) {
    candidate.emplace(*job.graph, std::move(refined), config_.num_parts);
  }

  std::lock_guard<std::mutex> lock(mu_);
  refine_in_flight_ = false;
  refine_cancel_.reset();
  refine_done_cv_.notify_all();
  stats_.full_evaluations += full_evaluations + (candidate ? 1 : 0);
  stats_.delta_evaluations += delta_evaluations;

  if (closed_) return false;  // close() is draining: never adopt into it

  if (job.update_epoch != update_epoch_) {
    // A newer delta invalidated the captured epoch: the refined assignment
    // no longer matches the live graph.  Leave the accumulators primed so
    // the policy refires on the new state.
    ++stats_.refinements_stale;
    return false;
  }

  // Epoch intact: between capture and now only refinement could have touched
  // the state, and in-flight exclusion rules that out — the live fitness is
  // still job.fitness.  Reset the accumulators either way: the current
  // quality has just been (re)certified.
  baseline_fitness_ = std::max(job.fitness, refined_fitness);
  updates_since_refine_ = 0;
  damage_since_refine_ = 0;
  if (job.depth == RefineDepth::kDeep) damage_since_deep_ = 0;

  if (!candidate) {
    ++stats_.refinements_no_better;
    return false;
  }
  // Log the adopted assignment BEFORE adopting it, so recovery lands on the
  // refined partition and the log is always a superset of the state.  The
  // old order (adopt, then log best-effort) could absorb a refinement the
  // log never saw — harmless for single-node recovery quality, but fatal
  // for replication, where the follower replays the log and the digests
  // must match bit-for-bit.  On append failure the refinement is dropped:
  // quality only, the session stays healthy.
  if (wal_ != nullptr) {
    try {
      wal_->append(WalRecordType::kRefine, update_epoch_, 0,
                   encode_assignment(candidate->assignment()), /*damage=*/0);
    } catch (const IoError&) {
      ++stats_.refinements_unlogged;
      return false;
    }
  }
  state_ = std::move(*candidate);
  ++stats_.refinements_applied;
  publish("refine");
  return true;
}

void PartitionSession::abandon_refinement() {
  std::lock_guard<std::mutex> lock(mu_);
  refine_in_flight_ = false;
  refine_cancel_.reset();
  refine_done_cv_.notify_all();
}

void PartitionSession::attach_wal(std::unique_ptr<SessionWal> wal) {
  std::lock_guard<std::mutex> lock(mu_);
  GAPART_REQUIRE(wal_ == nullptr, "session already has a WAL attached");
  wal_ = std::move(wal);
}

bool PartitionSession::durable() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_ != nullptr;
}

void PartitionSession::begin_recovery(std::uint64_t snapshot_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  GAPART_REQUIRE(stats_.updates == 0 && update_epoch_ == 0,
                 "begin_recovery on a session that already absorbed updates");
  update_epoch_ = snapshot_epoch;
  publish("recover");
}

void PartitionSession::force_assignment(Assignment refined,
                                        const char* source) {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = PartitionState(*graph_, std::move(refined), config_.num_parts);
  ++stats_.full_evaluations;
  baseline_fitness_ = state_.fitness(config_.fitness);
  publish(source);
}

std::uint64_t PartitionSession::state_digest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_.content_hash();
}

void PartitionSession::apply_replicated_refine(Assignment refined) {
  std::lock_guard<std::mutex> lock(mu_);
  GAPART_REQUIRE(!closed_, "session is closed");
  GAPART_REQUIRE(!wal_failed_,
                 "session fail-stopped: its log already missed a record");
  // Log first (same order as complete_refinement): the follower's own log
  // must cover everything its state absorbed, or its next recovery replays
  // to a diverged state.
  if (wal_ != nullptr) {
    try {
      wal_->append(WalRecordType::kRefine, update_epoch_, 0,
                   encode_assignment(refined), /*damage=*/0);
    } catch (const IoError&) {
      wal_failed_ = true;
      throw;
    }
  }
  state_ = PartitionState(*graph_, std::move(refined), config_.num_parts);
  ++stats_.full_evaluations;
  ++stats_.refinements_applied;
  baseline_fitness_ = state_.fitness(config_.fitness);
  publish("replicate");
}

void PartitionSession::set_ship_gate(std::shared_ptr<WalShipGate> gate) {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ != nullptr) wal_->set_ship_gate(std::move(gate));
}

bool PartitionSession::compact_now() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr || wal_failed_) return false;
  try {
    wal_->compact(update_epoch_, *graph_, state_.assignment(),
                  state_.content_hash());
  } catch (const IoError&) {
    return false;  // log intact; the next boundary retries
  }
  return true;
}

bool PartitionSession::poll_compaction() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || wal_ == nullptr || wal_failed_) return false;
  if (!wal_->should_compact()) return false;
  try {
    wal_->compact(update_epoch_, *graph_, state_.assignment(),
                  state_.content_hash());
  } catch (const IoError&) {
    return false;
  }
  return true;
}

void PartitionSession::close() {
  std::unique_lock<std::mutex> lock(mu_);
  closed_ = true;
  if (refine_cancel_ != nullptr) refine_cancel_->store(true);
  // Drain: the in-flight job sees the cancel flag at its next pass boundary,
  // unwinds through complete/abandon_refinement, and signals here.
  refine_done_cv_.wait(lock, [&] { return !refine_in_flight_; });
  if (wal_ != nullptr && !wal_failed_) {
    try {
      wal_->sync();
    } catch (const IoError&) {
      // Teardown best-effort: under kEveryRecord nothing was unsynced
      // anyway, and a close() must not throw past its drain.
    }
  }
}

bool PartitionSession::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

SessionStats PartitionSession::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SessionStats out = stats_;
  out.p50_repair_seconds = out.repair_latency.quantile(0.50);
  out.p99_repair_seconds = out.repair_latency.quantile(0.99);
  out.max_repair_seconds = out.repair_latency.max();
  // Unroll the trajectory ring into chronological order.
  out.cut_trajectory.clear();
  out.cut_trajectory.reserve(cut_trajectory_.size());
  out.cut_trajectory.insert(
      out.cut_trajectory.end(),
      cut_trajectory_.begin() +
          static_cast<std::ptrdiff_t>(cut_trajectory_next_),
      cut_trajectory_.end());
  out.cut_trajectory.insert(
      out.cut_trajectory.end(), cut_trajectory_.begin(),
      cut_trajectory_.begin() +
          static_cast<std::ptrdiff_t>(cut_trajectory_next_));
  out.current_fitness = state_.fitness(config_.fitness);
  out.current_total_cut = state_.total_cut();
  out.durable = wal_ != nullptr;
  out.wal_failed = wal_failed_;
  if (wal_ != nullptr) out.wal = wal_->stats();
  return out;
}

void PartitionSession::save(std::ostream& graph_os,
                            std::ostream& partition_os) const {
  // Serialize from the immutable snapshot, NOT the live state: holding mu_
  // across O(V+E) stream IO would stall the repair plane for the duration
  // of a checkpoint.  Every apply_update/refinement publishes before
  // releasing mu_, so the snapshot is never behind a completed update.
  const auto snap = snapshot();
  write_graph(graph_os, *snap->graph);
  write_partition(partition_os, snap->assignment);
}

void PartitionSession::save_files(const std::string& prefix) const {
  const auto snap = snapshot();
  write_graph_file(prefix + ".graph", *snap->graph);
  write_partition_file(prefix + ".part", snap->assignment);
}

std::unique_ptr<PartitionSession> PartitionSession::restore(
    std::istream& graph_is, std::istream& partition_is, SessionConfig config) {
  auto graph = std::make_shared<Graph>(read_graph(graph_is));
  Assignment assignment = read_partition(partition_is);
  return std::make_unique<PartitionSession>(std::move(graph),
                                            std::move(assignment),
                                            std::move(config), "restore");
}

std::unique_ptr<PartitionSession> PartitionSession::restore_files(
    const std::string& prefix, SessionConfig config) {
  std::ifstream graph_is(prefix + ".graph");
  GAPART_REQUIRE(graph_is.good(), "cannot open ", prefix, ".graph");
  std::ifstream partition_is(prefix + ".part");
  GAPART_REQUIRE(partition_is.good(), "cannot open ", prefix, ".part");
  return restore(graph_is, partition_is, std::move(config));
}

RefineOutcome run_refinement(const PartitionSession::RefineJob& job,
                             const SessionConfig& config, Rng rng,
                             Executor* executor) {
  GAPART_REQUIRE(job.depth != RefineDepth::kNone,
                 "refinement job carries no work");
  const Graph& g = *job.graph;
  RefineOutcome out;

  // Verified gain-ordered frontier climb: the cheap tier, always run.
  const EvalContext eval(g, config.num_parts, config.fitness, executor);
  PartitionState state = eval.make_state(job.assignment);
  HillClimbOptions opt;
  opt.mode = HillClimbMode::kFrontier;
  opt.gain_ordered = config.gain_ordered_repair;
  opt.min_gain = config.repair_min_gain;
  opt.max_passes = config.refine_hill_climb_passes;
  opt.cancel = job.cancel.get();
  // Large sessions shard their boundary over the service pool: the policy
  // routes them to the parallel batch engine, which falls back to this same
  // serial climb when the pool is effectively single-threaded.
  if (route_refinement_parallel(config.policy, g.num_vertices(),
                                executor != nullptr ? executor->num_threads()
                                                    : 1)) {
    opt.mode = HillClimbMode::kParallelFrontier;
    opt.executor = executor;
  }
  {
    GAPART_SPAN("refine.climb");
    hill_climb(eval, state, opt);
  }
  out.fitness = eval.adopt(state);
  out.assignment = std::move(state).release_assignment();

  // Deep tier: seeded with the climbed solution, running in the background
  // instead of the caller's path.  Large sessions route to the multilevel
  // V-cycle (coarse quotient evolution + seeded-repair uncoarsening, never
  // worse than its seed); the rest run the flat DPGA burst (§3.5's
  // incremental GA).  A cancelled job (its session is closing) skips the
  // burst — the climbed result above is returned as-is and discarded by
  // complete_refinement.
  const bool cancel_requested =
      job.cancel != nullptr && job.cancel->load(std::memory_order_relaxed);
  if (job.depth == RefineDepth::kDeep && !cancel_requested) {
    if (route_deep_vcycle(config.policy, g.num_vertices())) {
      GAPART_SPAN("refine.vcycle");
      VcycleGaOptions vo = config.deep_vcycle;
      vo.dpga.ga.num_parts = config.num_parts;
      vo.dpga.ga.fitness = config.fitness;
      vo.cancel = job.cancel.get();
      const VcycleGaResult res =
          vcycle_ga_refine(g, out.assignment, vo, rng, executor);
      out.full_evaluations += res.full_evaluations;
      out.delta_evaluations += res.delta_evaluations;
      if (res.fitness > out.fitness) {
        out.assignment = res.assignment;
        out.fitness = res.fitness;
      }
    } else {
      GAPART_SPAN("refine.dpga");
      DpgaConfig dc = config.deep;
      dc.ga.num_parts = config.num_parts;
      dc.ga.fitness = config.fitness;
      auto initial = make_seeded_population(
          out.assignment, dc.ga.population_size, /*swap_fraction=*/0.08, rng);
      const DpgaResult res =
          run_dpga(g, dc, std::move(initial), rng.split(), executor);
      out.full_evaluations += res.full_evaluations;
      out.delta_evaluations += res.delta_evaluations;
      if (res.best_fitness > out.fitness) {
        out.assignment = res.best;
        out.fitness = res.best_fitness;
      }
    }
  }

  out.full_evaluations += eval.full_evaluations();
  out.delta_evaluations += eval.delta_evaluations();
  return out;
}

void replay_wal_record(PartitionSession& session, const WalRecord& record,
                       bool log_locally) {
  if (record.type == WalRecordType::kDelta) {
    const auto prev = session.snapshot()->graph;
    DecodedDelta decoded = decode_delta(*prev, record.payload);
    ApplyOptions opts;
    // Replay the verification-round count the leader's live run admitted —
    // the one wall-clock-dependent input — so the pipeline is deterministic.
    opts.replay_verify_rounds = static_cast<int>(record.flags);
    opts.replaying = !log_locally;
    session.apply_update(std::make_shared<Graph>(std::move(decoded.grown)),
                         decoded.delta, opts);
  } else if (log_locally) {
    session.apply_replicated_refine(decode_assignment(record.payload));
  } else {
    session.force_assignment(decode_assignment(record.payload), "recover");
  }
}

}  // namespace gapart
