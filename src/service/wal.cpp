#include "service/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/checksum.hpp"
#include "common/fault_injection.hpp"
#include "common/telemetry.hpp"
#include "common/timer.hpp"
#include "graph/io.hpp"

namespace gapart {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kFileMagic = 0x4c574147u;    // "GAWL"
constexpr std::uint32_t kFileVersion = 1u;
constexpr std::uint32_t kRecordMagic = 0x524c4157u;  // "WALR"
constexpr std::size_t kFileHeaderSize = 8;
static_assert(kFileHeaderSize == kWalLogHeaderBytes,
              "kWalLogHeaderBytes (wal.hpp) must match the file header");
// magic u32 + type u8 + flags u32 + epoch u64 + payload_len u32 + crc u32
constexpr std::size_t kFrameHeaderSize = 25;
constexpr std::uint32_t kMaxPayload = 1u << 30;

template <typename T>
void put(std::string& out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out.append(buf, sizeof(T));
}

template <typename T>
T get_at(const std::string& bytes, std::size_t pos) {
  T value;
  std::memcpy(&value, bytes.data() + pos, sizeof(T));
  return value;
}

std::string build_frame(WalRecordType type, std::uint64_t epoch,
                        std::uint32_t flags, const std::string& payload) {
  GAPART_REQUIRE(payload.size() <= kMaxPayload, "WAL payload of ",
                 payload.size(), " bytes exceeds the 1 GiB frame limit");
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  put<std::uint32_t>(frame, kRecordMagic);
  put<std::uint8_t>(frame, static_cast<std::uint8_t>(type));
  put<std::uint32_t>(frame, flags);
  put<std::uint64_t>(frame, epoch);
  put<std::uint32_t>(frame, static_cast<std::uint32_t>(payload.size()));
  // The CRC covers the header fields after the magic plus the payload, so a
  // flipped bit anywhere in the frame fails the same check.
  std::uint32_t crc = crc32(frame.data() + 4, frame.size() - 4);
  crc = crc32(payload.data(), payload.size(), crc);
  put<std::uint32_t>(frame, crc);
  frame.append(payload);
  return frame;
}

/// Attempts to parse one frame at `pos`.  Returns the parsed record and
/// advances `pos` on success; returns nullopt when the bytes at `pos` do not
/// form a complete valid frame (caller decides: torn tail or corruption).
std::optional<WalRecord> try_parse_frame(const std::string& bytes,
                                         std::size_t& pos) {
  if (pos + kFrameHeaderSize > bytes.size()) return std::nullopt;
  if (get_at<std::uint32_t>(bytes, pos) != kRecordMagic) return std::nullopt;
  const auto type = get_at<std::uint8_t>(bytes, pos + 4);
  if (type != static_cast<std::uint8_t>(WalRecordType::kDelta) &&
      type != static_cast<std::uint8_t>(WalRecordType::kRefine)) {
    return std::nullopt;
  }
  const auto flags = get_at<std::uint32_t>(bytes, pos + 5);
  const auto epoch = get_at<std::uint64_t>(bytes, pos + 9);
  const auto payload_len = get_at<std::uint32_t>(bytes, pos + 17);
  if (payload_len > kMaxPayload) return std::nullopt;
  if (pos + kFrameHeaderSize + payload_len > bytes.size()) return std::nullopt;
  const auto stored_crc = get_at<std::uint32_t>(bytes, pos + 21);
  std::uint32_t crc = crc32(bytes.data() + pos + 4, kFrameHeaderSize - 8);
  crc = crc32(bytes.data() + pos + kFrameHeaderSize, payload_len, crc);
  if (crc != stored_crc) return std::nullopt;

  WalRecord rec;
  rec.type = static_cast<WalRecordType>(type);
  rec.epoch = epoch;
  rec.flags = flags;
  rec.payload = bytes.substr(pos + kFrameHeaderSize, payload_len);
  pos += kFrameHeaderSize + payload_len;
  return rec;
}

/// Is there any fully valid frame at or after `from`?  Distinguishes a torn
/// tail (no — the file simply ends in a partial write) from corruption in
/// the middle of the log (yes — trusting later records would reorder
/// history, so recovery must refuse).
bool any_valid_frame_after(const std::string& bytes, std::size_t from) {
  for (std::size_t pos = from; pos + kFrameHeaderSize <= bytes.size(); ++pos) {
    if (get_at<std::uint32_t>(bytes, pos) != kRecordMagic) continue;
    std::size_t probe = pos;
    if (try_parse_frame(bytes, probe).has_value()) return true;
  }
  return false;
}

void posix_fsync_fd(int fd, const char* what) {
  if (GAPART_FAULT_POINT(FaultSite::kWalFsync)) {
    throw IoError(std::string("injected fsync failure (") + what + ")");
  }
  if (::fsync(fd) != 0) {
    throw IoError(std::string("fsync failed (") + what + "): " +
                  std::strerror(errno));
  }
}

/// fsync a file (or directory) by path — used after temp-file renames so the
/// rename itself is durable, not just the data.
void fsync_path(const std::string& path, const char* what) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw IoError("cannot open '" + path + "' to fsync (" + what + "): " +
                  std::strerror(errno));
  }
  try {
    posix_fsync_fd(fd, what);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

void rename_file(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    throw IoError("rename '" + from + "' -> '" + to + "' failed: " +
                  ec.message());
  }
}

/// Writes `content` to `path` atomically: temp file, flush-checked close,
/// fsync, rename over, fsync the directory.
void write_file_atomic(const std::string& path, const std::string& content,
                       const std::string& dir) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os.good()) throw IoError("cannot open '" + tmp + "' for writing");
    os.write(content.data(),
             static_cast<std::streamsize>(content.size()));
    if (GAPART_FAULT_POINT(FaultSite::kFileWrite)) {
      os.setstate(std::ios::badbit);
    }
    os.flush();
    if (!os.good()) throw IoError("write failed for '" + tmp + "'");
  }
  fsync_path(tmp, "atomic write");
  rename_file(tmp, path);
  fsync_path(dir, "atomic write dir");
}

std::string read_small_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << is.rdbuf();
  if (is.bad()) throw IoError("read failed for '" + path + "'");
  return buf.str();
}

std::string snap_graph_path(const std::string& dir, std::uint64_t epoch) {
  return dir + "/snap-" + std::to_string(epoch) + ".graph";
}
std::string snap_part_path(const std::string& dir, std::uint64_t epoch) {
  return dir + "/snap-" + std::to_string(epoch) + ".part";
}

}  // namespace

const char* fsync_policy_name(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kEveryRecord:
      return "every_record";
    case FsyncPolicy::kEveryN:
      return "every_n";
  }
  return "?";
}

WalReadResult read_log_file(const std::string& path) {
  WalReadResult out;
  std::error_code ec;
  if (!fs::exists(path, ec)) return out;

  const std::string bytes = read_small_file(path);
  if (bytes.size() < kFileHeaderSize) {
    // A crash during log creation: nothing was ever appended.
    out.torn_tail = !bytes.empty();
    return out;
  }
  if (get_at<std::uint32_t>(bytes, 0) != kFileMagic ||
      get_at<std::uint32_t>(bytes, 4) != kFileVersion) {
    throw WalCorruptError("'" + path + "' is not a gapart WAL (bad header)");
  }

  std::size_t pos = kFileHeaderSize;
  out.valid_bytes = pos;
  while (pos < bytes.size()) {
    auto rec = try_parse_frame(bytes, pos);
    if (!rec.has_value()) {
      if (any_valid_frame_after(bytes, pos + 1)) {
        throw WalCorruptError(
            "'" + path + "' has a corrupt record at offset " +
            std::to_string(pos) + " followed by valid records — refusing " +
            "to replay past a hole in history");
      }
      out.torn_tail = true;
      break;
    }
    out.records.push_back(std::move(*rec));
    out.valid_bytes = pos;
  }
  return out;
}

WalTail read_log_tail(const std::string& path, std::uint64_t offset,
                      std::uint64_t limit_bytes) {
  GAPART_REQUIRE(offset >= kWalLogHeaderBytes,
                 "tail reads start at or after the log header, got offset ",
                 offset);
  WalTail out;
  out.end_offset = offset;
  std::error_code ec;
  if (!fs::exists(path, ec)) return out;

  const std::string bytes = read_small_file(path);
  if (bytes.size() < kFileHeaderSize || offset > bytes.size()) return out;
  if (get_at<std::uint32_t>(bytes, 0) != kFileMagic ||
      get_at<std::uint32_t>(bytes, 4) != kFileVersion) {
    throw WalCorruptError("'" + path + "' is not a gapart WAL (bad header)");
  }

  const std::size_t limit =
      static_cast<std::size_t>(std::min<std::uint64_t>(limit_bytes,
                                                       bytes.size()));
  std::size_t pos = static_cast<std::size_t>(offset);
  while (pos < limit) {
    std::size_t next = pos;
    auto rec = try_parse_frame(bytes, next);
    if (!rec.has_value() || next > limit) break;
    out.records.push_back(std::move(*rec));
    out.ends.push_back(next);
    pos = next;
  }
  out.end_offset = pos;
  return out;
}

std::string encode_assignment(const Assignment& assignment) {
  std::string out;
  out.reserve(8 + assignment.size() * 4);
  put<std::uint64_t>(out, assignment.size());
  for (const PartId p : assignment) put<std::int32_t>(out, p);
  return out;
}

Assignment decode_assignment(const std::string& payload) {
  GAPART_REQUIRE(payload.size() >= 8, "assignment payload truncated");
  const auto n = get_at<std::uint64_t>(payload, 0);
  GAPART_REQUIRE(payload.size() == 8 + n * 4,
                 "assignment payload size mismatch: header says ", n,
                 " entries, payload has ", payload.size(), " bytes");
  Assignment a(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i)] =
        get_at<std::int32_t>(payload, 8 + static_cast<std::size_t>(i) * 4);
  }
  return a;
}

// ---------------------------------------------------------------------------
// SessionWal

SessionWal::SessionWal(std::string dir, DurabilityConfig config)
    : dir_(std::move(dir)), config_(std::move(config)) {}

SessionWal::~SessionWal() {
  if (fd_ >= 0) {
    // Flush-on-close: under kEveryN (or kNever) a clean shutdown must not
    // leave acknowledged tail records behind the durable offset the
    // replication shipper trusts.  Best effort only — a destructor cannot
    // throw, and a crash-path destructor never runs at all (that loss window
    // is the policy's documented contract).
    if (records_since_fsync_ > 0) {
      try {
        fsync_log();
      } catch (...) {
      }
    }
    ::close(fd_);
  }
}

void SessionWal::open_log(std::uint64_t resume_at, bool truncate_all) {
  const std::string path = dir_ + "/wal.log";
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) {
    throw IoError("cannot open '" + path + "': " + std::strerror(errno));
  }
  const std::uint64_t keep =
      truncate_all || resume_at < kFileHeaderSize ? 0 : resume_at;
  if (::ftruncate(fd_, static_cast<off_t>(keep)) != 0) {
    throw IoError("cannot truncate '" + path + "': " + std::strerror(errno));
  }
  if (keep == 0) {
    std::string header;
    put<std::uint32_t>(header, kFileMagic);
    put<std::uint32_t>(header, kFileVersion);
    append_frame_once(header);
    posix_fsync_fd(fd_, "log header");
  }
  file_bytes_ = keep == 0 ? kFileHeaderSize : keep;
  // Whatever the file holds now *is* what survived — by definition durable.
  stats_.durable_bytes = file_bytes_;
}

void SessionWal::append_frame_once(const std::string& frame) {
  if (GAPART_FAULT_POINT(FaultSite::kWalAppend)) {
    throw IoError("injected WAL write failure");
  }
  // Remember where this frame starts so a partial write can be rolled back
  // before the retry loop re-appends — otherwise the retry would leave a
  // torn frame followed by a valid one, which replay rightly refuses.
  const off_t start = ::lseek(fd_, 0, SEEK_END);
  std::size_t done = 0;
  while (done < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + done, frame.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      if (start >= 0) ::ftruncate(fd_, start);
      throw IoError(std::string("WAL write failed: ") + std::strerror(err));
    }
    done += static_cast<std::size_t>(n);
  }
}

void SessionWal::fsync_log() {
  GAPART_SPAN("wal.fsync");
  posix_fsync_fd(fd_, "wal");
  ++stats_.fsyncs;
  records_since_fsync_ = 0;
  stats_.durable_bytes = file_bytes_;
}

void SessionWal::append(WalRecordType type, std::uint64_t epoch,
                        std::uint32_t flags, const std::string& payload,
                        VertexId damage) {
  GAPART_SPAN("wal.append");
  const std::string frame = build_frame(type, epoch, flags, payload);
  stats_.append_retries += static_cast<std::uint64_t>(retry_with_backoff(
      config_.io_retry, [&] { append_frame_once(frame); }));
  file_bytes_ += frame.size();
  ++records_since_fsync_;
  const bool want_fsync =
      config_.fsync == FsyncPolicy::kEveryRecord ||
      (config_.fsync == FsyncPolicy::kEveryN && config_.fsync_interval > 0 &&
       records_since_fsync_ >= config_.fsync_interval);
  if (want_fsync) {
    stats_.append_retries += static_cast<std::uint64_t>(
        retry_with_backoff(config_.io_retry, [&] { fsync_log(); }));
  }
  ++stats_.appends;
  stats_.bytes_appended += frame.size();
  GAPART_COUNTER_ADD("wal.append_bytes", frame.size());
  ++stats_.log_records;
  stats_.log_bytes += frame.size();
  stats_.log_damage += damage;
}

bool SessionWal::should_compact() const {
  CompactionSignals signals;
  signals.log_damage = stats_.log_damage;
  signals.log_bytes = stats_.log_bytes;
  signals.log_records = stats_.log_records;
  if (!decide_compaction(config_.compaction, signals)) return false;
  // Replicated session: truncating the log would drop records the shipper
  // has not streamed yet, forcing a snapshot resync.  Defer until the
  // shipper consumed the log, up to the retention bound.
  if (ship_gate_ != nullptr &&
      (config_.ship_retain_bytes == 0 ||
       stats_.log_bytes < config_.ship_retain_bytes) &&
      ship_gate_->consumed_offset.load(std::memory_order_acquire) <
          kFileHeaderSize + stats_.log_bytes) {
    return false;
  }
  return true;
}

void SessionWal::write_snapshot_files(std::uint64_t epoch, const Graph& graph,
                                      const Assignment& assignment,
                                      std::uint64_t digest) {
  // Data files first (temp + rename + fsync), CURRENT last: CURRENT never
  // names an incomplete snapshot.
  {
    std::ostringstream gos;
    write_graph(gos, graph);
    write_file_atomic(snap_graph_path(dir_, epoch), gos.str(), dir_);
  }
  {
    std::ostringstream pos;
    write_partition(pos, assignment);
    write_file_atomic(snap_part_path(dir_, epoch), pos.str(), dir_);
  }
  write_file_atomic(dir_ + "/CURRENT",
                    std::to_string(epoch) + " " + std::to_string(digest) +
                        "\n",
                    dir_);
}

void SessionWal::compact(std::uint64_t epoch, const Graph& graph,
                         const Assignment& assignment, std::uint64_t digest) {
  GAPART_SPAN("wal.compact");
  WallTimer timer;
  const std::uint64_t old_epoch = stats_.snapshot_epoch;
  try {
    write_snapshot_files(epoch, graph, assignment, digest);
    // CURRENT now points at the new snapshot; the log's records are all
    // <= epoch and would be skipped on replay, so truncating is safe — and
    // a crash right here leaves a stale-prefix log, which replay skips.
    if (::ftruncate(fd_, static_cast<off_t>(kFileHeaderSize)) != 0) {
      throw IoError(std::string("WAL truncate failed: ") +
                    std::strerror(errno));
    }
    posix_fsync_fd(fd_, "wal truncate");
  } catch (const IoError&) {
    ++stats_.compaction_failures;
    throw;
  }
  stats_.snapshot_epoch = epoch;
  stats_.snapshot_digest = digest;
  stats_.log_records = 0;
  stats_.log_bytes = 0;
  stats_.log_damage = 0;
  records_since_fsync_ = 0;
  file_bytes_ = kFileHeaderSize;
  stats_.durable_bytes = kFileHeaderSize;
  ++stats_.compactions;
  stats_.last_compaction_seconds = timer.seconds();

  // Old snapshot files are garbage now; failures here cost only disk.
  if (old_epoch != epoch) {
    std::error_code ec;
    fs::remove(snap_graph_path(dir_, old_epoch), ec);
    fs::remove(snap_part_path(dir_, old_epoch), ec);
  }
}

void SessionWal::sync() {
  if (records_since_fsync_ > 0) {
    retry_with_backoff(config_.io_retry, [&] { fsync_log(); });
  }
}

std::unique_ptr<SessionWal> SessionWal::create(std::string dir,
                                               const DurabilityConfig& config,
                                               PartId num_parts,
                                               const FitnessParams& fitness,
                                               const Graph& graph,
                                               const Assignment& assignment,
                                               std::uint64_t snapshot_epoch,
                                               std::uint64_t snapshot_digest) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw IoError("cannot create session directory '" + dir + "': " +
                  ec.message());
  }
  auto wal = std::unique_ptr<SessionWal>(new SessionWal(dir, config));

  std::ostringstream meta;
  meta << "gapart-session-meta v1\n"
       << "num_parts " << num_parts << '\n'
       << "objective " << static_cast<int>(fitness.objective) << '\n';
  meta.precision(17);
  meta << "lambda " << fitness.lambda << '\n';
  write_file_atomic(dir + "/meta", meta.str(), dir);

  wal->write_snapshot_files(snapshot_epoch, graph, assignment,
                            snapshot_digest);
  wal->stats_.snapshot_epoch = snapshot_epoch;
  wal->stats_.snapshot_digest = snapshot_digest;
  wal->open_log(0, /*truncate_all=*/true);
  return wal;
}

SessionWal::Recovered SessionWal::recover(std::string dir,
                                          const DurabilityConfig& config) {
  Recovered out;

  {
    std::istringstream meta(read_small_file(dir + "/meta"));
    std::string magic, version;
    meta >> magic >> version;
    GAPART_REQUIRE(magic == "gapart-session-meta" && version == "v1",
                   "'", dir, "/meta' is not a gapart session meta file");
    std::string key;
    while (meta >> key) {
      if (key == "num_parts") {
        int k = 0;
        meta >> k;
        out.num_parts = static_cast<PartId>(k);
      } else if (key == "objective") {
        int o = 0;
        meta >> o;
        out.fitness.objective = static_cast<Objective>(o);
      } else if (key == "lambda") {
        meta >> out.fitness.lambda;
      } else {
        std::string ignored;
        std::getline(meta, ignored);  // unknown key: forward compatibility
      }
      GAPART_REQUIRE(!meta.fail(), "malformed value for meta key '", key, "'");
    }
    GAPART_REQUIRE(out.num_parts >= 1, "meta file carries no num_parts");
  }

  {
    std::istringstream cur(read_small_file(dir + "/CURRENT"));
    cur >> out.snapshot_epoch;
    GAPART_REQUIRE(!cur.fail(), "'", dir, "/CURRENT' is malformed");
    // The digest is a later addition; a CURRENT written before it carries
    // only the epoch and reads back as digest 0 (= unknown).
    cur >> out.snapshot_digest;
    if (cur.fail()) out.snapshot_digest = 0;
  }

  out.graph = read_graph_file(snap_graph_path(dir, out.snapshot_epoch));
  out.assignment = read_partition_file(snap_part_path(dir, out.snapshot_epoch));
  GAPART_REQUIRE(
      static_cast<VertexId>(out.assignment.size()) == out.graph.num_vertices(),
      "snapshot partition has ", out.assignment.size(), " entries for a ",
      out.graph.num_vertices(), "-vertex snapshot graph");

  WalReadResult log = read_log_file(dir + "/wal.log");
  out.torn_tail = log.torn_tail;

  // Skip the stale prefix (a compaction that crashed between the CURRENT
  // rename and the log truncation leaves records <= snapshot epoch at the
  // front), then demand a gapless epoch chain: delta records advance the
  // epoch by exactly one, refinement records re-certify the current epoch.
  std::uint64_t epoch = out.snapshot_epoch;
  bool past_prefix = false;
  for (auto& rec : log.records) {
    if (!past_prefix && rec.epoch <= out.snapshot_epoch) continue;
    past_prefix = true;
    if (rec.type == WalRecordType::kDelta) {
      if (rec.epoch != epoch + 1) {
        throw WalCorruptError(
            "'" + dir + "/wal.log' jumps from epoch " + std::to_string(epoch) +
            " to " + std::to_string(rec.epoch) + " — records are missing");
      }
      epoch = rec.epoch;
    } else {
      if (rec.epoch != epoch) {
        throw WalCorruptError(
            "'" + dir + "/wal.log' has a refinement record for epoch " +
            std::to_string(rec.epoch) + " at epoch " + std::to_string(epoch));
      }
    }
    out.records.push_back(std::move(rec));
  }

  out.wal = std::unique_ptr<SessionWal>(new SessionWal(dir, config));
  out.wal->stats_.snapshot_epoch = out.snapshot_epoch;
  out.wal->stats_.snapshot_digest = out.snapshot_digest;
  out.wal->stats_.log_records = out.records.size();
  out.wal->stats_.log_bytes =
      log.valid_bytes > kFileHeaderSize ? log.valid_bytes - kFileHeaderSize
                                        : 0;
  out.wal->open_log(log.valid_bytes, /*truncate_all=*/false);
  return out;
}

}  // namespace gapart
