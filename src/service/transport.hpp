// Transport: the byte-frame seam between a replication leader and its
// follower.
//
// The replication layer (service/replication.hpp) is written against this
// tiny interface — send one opaque frame, receive one opaque frame — so the
// same shipper/follower code runs over two very different links:
//
//   * LoopbackTransport — an in-process bounded queue pair.  Deterministic,
//     no file descriptors, and the place where the transport fault matrix
//     lives: the send side consults common/fault_injection for seeded
//     drop / duplicate / reorder / truncate / link-down schedules, so every
//     network pathology is reproducible in a unit test.
//   * SocketTransport — a real stream socket (Unix domain or TCP) with u32
//     length-prefix framing, for processes on different machines (or a
//     chaos script kill -9'ing the leader process mid-stream).
//
// Frames are opaque byte strings here; integrity (CRC) and ordering
// (sequence numbers, epochs, fencing generations) are the replication
// protocol's job — precisely BECAUSE this layer is allowed to lose, repeat,
// reorder, and cut frames.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/assert.hpp"

namespace gapart {

/// The link failed (connection refused/reset, bounded queue overflow, an
/// injected partition).  Frames already handed to send() may or may not
/// arrive; the replication layer must treat this as "unknown" and resume
/// from the follower's acknowledged position after reconnecting.
class TransportError : public IoError {
 public:
  explicit TransportError(const std::string& what) : IoError(what) {}
};

/// One direction-agnostic endpoint of a frame link.  Implementations are
/// thread-safe for one sender plus one receiver thread.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues/writes one frame.  Throws TransportError when the link is down
  /// or the peer's inbound queue is full (backpressure).
  virtual void send(const std::string& frame) = 0;

  /// Next inbound frame, or nullopt after `timeout_seconds` with nothing to
  /// read (0 = poll without blocking).  Returns nullopt forever once the
  /// peer has closed and the queue is drained — check peer_closed().
  virtual std::optional<std::string> receive(double timeout_seconds) = 0;

  /// True once the other endpoint has closed (EOF) — a drained receive()
  /// will never yield another frame.
  virtual bool peer_closed() const = 0;

  /// Closes this endpoint; the peer observes EOF after draining.
  virtual void close() = 0;
};

/// In-process pair of endpoints over two bounded queues.  All the
/// fault-matrix behaviour (drop/dup/reorder/truncate via FaultSite, plus an
/// explicit set_link_down switch for partition tests) happens on the send
/// side, so the receive side sees exactly what a faulty network delivers.
class LoopbackTransport : public Transport {
 public:
  /// Connected (leader_end, follower_end) pair.  `max_queued_frames` bounds
  /// each direction; a full queue makes send() throw TransportError
  /// (backpressure, not silent loss).
  static std::pair<std::unique_ptr<LoopbackTransport>,
                   std::unique_ptr<LoopbackTransport>>
  create_pair(std::size_t max_queued_frames = 1024);

  ~LoopbackTransport() override;

  void send(const std::string& frame) override;
  std::optional<std::string> receive(double timeout_seconds) override;
  bool peer_closed() const override;
  void close() override;

  /// Explicit link partition: while down, send() throws TransportError in
  /// BOTH directions (set on either endpoint).  Frames already queued stay
  /// queued — a partition cuts the link, it does not eat the queue.
  void set_link_down(bool down);

  /// Frames currently queued toward this endpoint (test/metrics hook).
  std::size_t pending() const;

  LoopbackTransport(const LoopbackTransport&) = delete;
  LoopbackTransport& operator=(const LoopbackTransport&) = delete;

 private:
  LoopbackTransport();
  struct Shared;
  std::shared_ptr<Shared> shared_;
  int side_ = 0;  ///< which of the two directions this endpoint reads
};

/// Stream-socket endpoint (Unix domain or TCP) with u32 little-endian
/// length-prefix framing.  Blocking connect/accept; poll()-based receive.
class SocketTransport : public Transport {
 public:
  /// Binds + listens on a Unix socket path, accepts ONE peer, returns the
  /// connected endpoint.  Removes a stale socket file first.
  static std::unique_ptr<SocketTransport> listen_unix(const std::string& path);
  static std::unique_ptr<SocketTransport> connect_unix(const std::string& path);

  /// TCP bound to 127.0.0.1:`port`.
  static std::unique_ptr<SocketTransport> listen_tcp(int port);
  static std::unique_ptr<SocketTransport> connect_tcp(const std::string& host,
                                                      int port);

  ~SocketTransport() override;

  void send(const std::string& frame) override;
  std::optional<std::string> receive(double timeout_seconds) override;
  bool peer_closed() const override;
  void close() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

 private:
  explicit SocketTransport(int fd);

  int fd_ = -1;
  bool peer_closed_ = false;
  std::string carry_;  ///< partial frame bytes across receive() timeouts
};

}  // namespace gapart
