#include "service/replication.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/assert.hpp"
#include "common/checksum.hpp"
#include "common/stats.hpp"
#include "common/telemetry.hpp"
#include "common/timer.hpp"
#include "graph/io.hpp"

namespace gapart {

namespace {

constexpr std::uint32_t kRepMagic = 0x50524147u;  // "GARP"
// magic + type + sub + generation + session + seq + epoch + flags +
// payload_len + crc.
constexpr std::size_t kRepHeaderSize = 4 + 1 + 1 + 8 + 8 + 8 + 8 + 4 + 4 + 4;
// CRC covers header bytes [4, kRepCrcOffset) chained with the payload.
constexpr std::size_t kRepCrcOffset = kRepHeaderSize - 4;

constexpr std::size_t kLagWindow = 4096;

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(buf));
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(buf));
}

std::uint32_t get_u32(const std::string& in, std::size_t pos) {
  std::uint32_t v = 0;
  std::memcpy(&v, in.data() + pos, sizeof(v));
  return v;
}

std::uint64_t get_u64(const std::string& in, std::size_t pos) {
  std::uint64_t v = 0;
  std::memcpy(&v, in.data() + pos, sizeof(v));
  return v;
}

std::string generation_path(const std::string& dir) {
  return dir + "/GENERATION";
}

}  // namespace

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

std::string encode_rep_frame(const RepFrame& frame) {
  std::string out;
  out.reserve(kRepHeaderSize + frame.payload.size());
  put_u32(out, kRepMagic);
  out.push_back(static_cast<char>(frame.type));
  out.push_back(static_cast<char>(frame.sub));
  put_u64(out, frame.generation);
  put_u64(out, frame.session);
  put_u64(out, frame.seq);
  put_u64(out, frame.epoch);
  put_u32(out, frame.flags);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  std::uint32_t crc = crc32(out.data() + 4, out.size() - 4);
  crc = crc32(frame.payload.data(), frame.payload.size(), crc);
  put_u32(out, crc);
  out += frame.payload;
  return out;
}

std::optional<RepFrame> decode_rep_frame(const std::string& wire) {
  if (wire.size() < kRepHeaderSize) return std::nullopt;
  if (get_u32(wire, 0) != kRepMagic) return std::nullopt;
  const auto type = static_cast<std::uint8_t>(wire[4]);
  if (type < 1 || type > 4) return std::nullopt;
  const std::uint32_t payload_len = get_u32(wire, kRepCrcOffset - 4);
  if (wire.size() != kRepHeaderSize + payload_len) return std::nullopt;
  std::uint32_t crc = crc32(wire.data() + 4, kRepCrcOffset - 4);
  crc = crc32(wire.data() + kRepHeaderSize, payload_len, crc);
  if (crc != get_u32(wire, kRepCrcOffset)) return std::nullopt;

  RepFrame frame;
  frame.type = static_cast<RepFrameType>(type);
  frame.sub = static_cast<std::uint8_t>(wire[5]);
  frame.generation = get_u64(wire, 6);
  frame.session = get_u64(wire, 14);
  frame.seq = get_u64(wire, 22);
  frame.epoch = get_u64(wire, 30);
  frame.flags = get_u32(wire, 38);
  frame.payload = wire.substr(kRepHeaderSize);
  return frame;
}

std::string encode_open_payload(const OpenPayload& open) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(open.num_parts));
  put_u32(out, static_cast<std::uint32_t>(open.fitness.objective));
  std::uint64_t lambda_bits = 0;
  std::memcpy(&lambda_bits, &open.fitness.lambda, sizeof(lambda_bits));
  put_u64(out, lambda_bits);
  put_u64(out, open.digest);
  put_u64(out, open.graph_text.size());
  out += open.graph_text;
  put_u64(out, open.part_text.size());
  out += open.part_text;
  return out;
}

OpenPayload decode_open_payload(const std::string& payload) {
  const auto need = [&](std::size_t pos, std::size_t n) {
    if (pos + n > payload.size()) {
      throw ReplicationError("malformed open-session payload (" +
                             std::to_string(payload.size()) + " bytes)");
    }
  };
  OpenPayload open;
  std::size_t pos = 0;
  need(pos, 24);
  open.num_parts = static_cast<PartId>(get_u32(payload, pos));
  open.fitness.objective = static_cast<Objective>(get_u32(payload, pos + 4));
  const std::uint64_t lambda_bits = get_u64(payload, pos + 8);
  std::memcpy(&open.fitness.lambda, &lambda_bits, sizeof(open.fitness.lambda));
  open.digest = get_u64(payload, pos + 16);
  pos += 24;
  need(pos, 8);
  const std::uint64_t graph_len = get_u64(payload, pos);
  pos += 8;
  need(pos, graph_len);
  open.graph_text = payload.substr(pos, graph_len);
  pos += graph_len;
  need(pos, 8);
  const std::uint64_t part_len = get_u64(payload, pos);
  pos += 8;
  need(pos, part_len);
  open.part_text = payload.substr(pos, part_len);
  return open;
}

std::uint64_t read_generation_file(const std::string& dir) {
  std::ifstream in(generation_path(dir));
  std::uint64_t generation = 0;
  if (in >> generation) return generation;
  return 0;
}

void write_generation_file(const std::string& dir, std::uint64_t generation) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string tmp = generation_path(dir) + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << generation << "\n";
    if (!out) throw IoError("cannot write '" + tmp + "'");
  }
  fs::rename(tmp, generation_path(dir), ec);
  if (ec) {
    throw IoError("cannot rename '" + tmp + "': " + ec.message());
  }
}

// ---------------------------------------------------------------------------
// ReplicationShipper
// ---------------------------------------------------------------------------

ReplicationShipper::ReplicationShipper(PartitionService& service,
                                       Transport& link, ShipperConfig config)
    : service_(service), link_(link), config_(config) {
  GAPART_REQUIRE(service_.config().durability.enabled(),
                 "replication ships WAL records: the leader service needs a "
                 "durability directory");
  // Fencing: a deposed leader restarting with a stale term must not be able
  // to ship again — its GENERATION file outlives it.
  const std::uint64_t persisted =
      read_generation_file(service_.config().durability.dir);
  if (persisted > config_.generation) {
    throw ReplicationError(
        "stale leader generation " + std::to_string(config_.generation) +
        ": this directory was already fenced at generation " +
        std::to_string(persisted));
  }
  write_generation_file(service_.config().durability.dir, config_.generation);
  stats_.generation = config_.generation;
}

ReplicationShipper::~ReplicationShipper() { stop(); }

void ReplicationShipper::enqueue(SessionShip& ship, RepFrame frame) {
  frame.generation = config_.generation;
  frame.seq = ship.next_seq++;
  SessionShip::Queued q;
  q.seq = frame.seq;
  q.wire = encode_rep_frame(frame);
  ship.queue.push_back(std::move(q));
}

void ReplicationShipper::resync(SessionId id, SessionShip& ship) {
  const auto session = service_.session_handle(id);
  // Order matters: reading the WAL stats BEFORE capturing the snapshot
  // means a compaction racing us lands with snapshot_epoch > what we record
  // here, so observe_compaction re-checks it next pump instead of silently
  // marking it covered.
  const SessionStats st = session->stats();
  const auto snap = session->snapshot();

  OpenPayload open;
  open.num_parts = session->config().num_parts;
  open.fitness = session->config().fitness;
  open.digest = assignment_content_hash(*snap->graph, snap->assignment,
                                        open.num_parts);
  std::ostringstream graph_os;
  write_graph(graph_os, *snap->graph);
  open.graph_text = graph_os.str();
  std::ostringstream part_os;
  write_partition(part_os, snap->assignment);
  open.part_text = part_os.str();

  RepFrame frame;
  frame.type = RepFrameType::kOpenSession;
  frame.session = id;
  frame.epoch = snap->update_epoch;
  frame.payload = encode_open_payload(open);

  // A full reset: everything previously queued is superseded by the open.
  ship.queue.clear();
  ship.sent_upto = 0;
  ship.stalled_pumps = 0;
  enqueue(ship, std::move(frame));
  ship.attached = true;
  ship.needs_resync = false;
  ship.file_offset = kWalLogHeaderBytes;
  ship.read_epoch = snap->update_epoch;
  ship.shipped_snapshot_epoch = st.wal.snapshot_epoch;
  if (ship.gate == nullptr) {
    ship.gate = std::make_shared<WalShipGate>();
    session->set_ship_gate(ship.gate);
  }
  ship.gate->consumed_offset.store(kWalLogHeaderBytes,
                                   std::memory_order_release);
  ++stats_.opens_shipped;
}

void ReplicationShipper::observe_compaction(SessionId id, SessionShip& ship,
                                            const WalStats& wal) {
  if (wal.snapshot_epoch <= ship.shipped_snapshot_epoch) return;
  if (ship.read_epoch == wal.snapshot_epoch) {
    // Lockstep: the ship gate guarantees compaction only ran once we had
    // consumed the whole log, so everything folded into the snapshot is
    // already in the stream — the follower can fold too.  The digest rides
    // along for exact divergence detection at the boundary.
    RepFrame frame;
    frame.type = RepFrameType::kCompact;
    frame.session = id;
    frame.epoch = wal.snapshot_epoch;
    put_u64(frame.payload, wal.snapshot_digest);
    enqueue(ship, std::move(frame));
    ship.file_offset = kWalLogHeaderBytes;
    ship.shipped_snapshot_epoch = wal.snapshot_epoch;
    if (ship.gate != nullptr) {
      ship.gate->consumed_offset.store(kWalLogHeaderBytes,
                                       std::memory_order_release);
    }
    ++stats_.compacts_shipped;
  } else {
    // The log was folded past our read position (ship_retain_bytes gave up
    // on us): records we never shipped are gone.  Re-bootstrap from the
    // live state.
    ++stats_.snapshot_resyncs;
    resync(id, ship);
  }
}

void ReplicationShipper::read_tail(SessionId id, SessionShip& ship,
                                   const WalStats& wal) {
  if (ship.queue.size() >= config_.max_unacked_frames) {
    ++stats_.backpressure_stalls;
    return;
  }
  if (wal.durable_bytes <= ship.file_offset) return;
  // Never past the leader's fsynced offset: a follower must not hold an
  // update the leader could still lose.
  const std::uint64_t limit = std::min(
      wal.durable_bytes, ship.file_offset + config_.max_read_bytes_per_pump);
  const std::string path = service_.session_wal_dir(id) + "/wal.log";
  const WalTail tail = read_log_tail(path, ship.file_offset, limit);
  for (std::size_t i = 0; i < tail.records.size(); ++i) {
    if (ship.queue.size() >= config_.max_unacked_frames) {
      // Backpressure: stop at this frame boundary; the offset stays put so
      // the next pump resumes exactly here.
      ++stats_.backpressure_stalls;
      break;
    }
    const WalRecord& record = tail.records[i];
    const bool ship_it = record.type == WalRecordType::kDelta
                             ? record.epoch == ship.read_epoch + 1
                             : record.epoch == ship.read_epoch;
    if (ship_it) {
      RepFrame frame;
      frame.type = RepFrameType::kRecord;
      frame.sub = static_cast<std::uint8_t>(record.type);
      frame.session = id;
      frame.epoch = record.epoch;
      frame.flags = record.flags;
      frame.payload = record.payload;
      enqueue(ship, std::move(frame));
      ship.read_epoch = record.epoch;
      ++stats_.records_shipped;
    }
    // Skipped records (stale compaction prefix) still advance the offset.
    ship.file_offset = tail.ends[i];
  }
  if (ship.gate != nullptr) {
    ship.gate->consumed_offset.store(ship.file_offset,
                                     std::memory_order_release);
  }
}

int ReplicationShipper::send_pending(SessionShip& ship) {
  int sent = 0;
  while (ship.sent_upto < ship.queue.size()) {
    try {
      link_.send(ship.queue[ship.sent_upto].wire);
    } catch (const TransportError&) {
      ++stats_.send_failures;
      break;  // link down or backpressured; retry next pump
    }
    ship.queue[ship.sent_upto].sent_at = GAPART_TSTAMP();
    ++ship.sent_upto;
    ++sent;
    ++stats_.frames_sent;
  }
  return sent;
}

void ReplicationShipper::drain_acks() {
  while (auto wire = link_.receive(0.0)) {
    const auto frame = decode_rep_frame(*wire);
    if (!frame.has_value() || frame->type != RepFrameType::kAck) continue;
    ++stats_.acks_received;
    if (frame->generation > config_.generation) {
      // Someone promoted past us: this leader is deposed.  Stop shipping;
      // local durability keeps working, the operator decides what's next.
      stats_.deposed = true;
      return;
    }
    const auto it = ships_.find(frame->session);
    if (it == ships_.end()) continue;
    SessionShip& ship = it->second;
    if (frame->seq < ship.acked_seq) {
      // The follower moved backwards: it restarted and recovered from its
      // own disk.  Re-bootstrap it.
      ship.needs_resync = true;
      continue;
    }
    if (frame->seq == ship.acked_seq) continue;
    ship.acked_seq = frame->seq;
    ship.acked_epoch = frame->epoch;
    ship.progressed = true;
    while (!ship.queue.empty() && ship.queue.front().seq <= ship.acked_seq) {
      if (ship.queue.front().sent_at > 0.0) {
        GAPART_HISTOGRAM_RECORD("replication.ack_rtt_seconds",
                                GAPART_TSTAMP() - ship.queue.front().sent_at);
      }
      ship.queue.pop_front();
      if (ship.sent_upto > 0) --ship.sent_upto;
    }
  }
}

int ReplicationShipper::pump() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_.deposed) return 0;
  for (auto& [id, ship] : ships_) ship.progressed = false;
  drain_acks();
  if (stats_.deposed) return 0;

  int sent = 0;
  for (const SessionId id : service_.session_ids()) {
    SessionShip& ship = ships_[id];
    SessionStats st;
    try {
      st = service_.session_handle(id)->stats();
      if (!st.durable) continue;
      if (!ship.attached || ship.needs_resync) resync(id, ship);
      observe_compaction(id, ship, st.wal);
      read_tail(id, ship, st.wal);
      // Compaction liveness: apply_update evaluates the policy only right
      // after an append, when the ship gate is necessarily still behind the
      // fresh record — a strict gate (ship_retain_bytes == 0) would defer
      // forever.  This pump just consumed the tail, so run anything the
      // gate deferred; observe_compaction ships the boundary next pump.
      if (ship.attached && ship.file_offset >= st.wal.durable_bytes) {
        service_.session_handle(id)->poll_compaction();
      }
    } catch (const Error&) {
      continue;  // the session closed under us; next pump drops it
    }

    // Resume: no ack progress for N pumps with frames outstanding means
    // sent frames (or their acks) were lost — re-send everything unacked
    // with the original seqs; the follower's seq check dedups survivors.
    if (!ship.queue.empty() && !ship.progressed) {
      if (++ship.stalled_pumps >= config_.resume_after_stalled_pumps) {
        ship.sent_upto = 0;
        ship.stalled_pumps = 0;
        ++stats_.resumes;
        GAPART_COUNTER_ADD("replication.resumes", 1);
        // Every still-queued frame is about to go over the wire again.
        GAPART_COUNTER_ADD("replication.redelivered_frames",
                           ship.queue.size());
      }
    } else if (ship.progressed) {
      ship.stalled_pumps = 0;
    }

    sent += send_pending(ship);

    const std::uint64_t lag =
        st.updates >= ship.acked_epoch ? st.updates - ship.acked_epoch : 0;
    if (lag_samples_.size() < kLagWindow) {
      lag_samples_.push_back(static_cast<double>(lag));
    } else {
      lag_samples_[lag_next_] = static_cast<double>(lag);
      lag_next_ = (lag_next_ + 1) % kLagWindow;
    }
  }
  return sent;
}

bool ReplicationShipper::drained() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const SessionId id : service_.session_ids()) {
    const auto it = ships_.find(id);
    if (it == ships_.end()) return false;
    const SessionShip& ship = it->second;
    if (!ship.attached || ship.needs_resync) return false;
    if (!ship.queue.empty()) return false;
    try {
      const SessionStats st = service_.session_handle(id)->stats();
      if (st.durable && st.wal.durable_bytes > ship.file_offset) return false;
    } catch (const Error&) {
      continue;
    }
  }
  return true;
}

void ReplicationShipper::start(double interval_seconds) {
  GAPART_REQUIRE(!running_.load(), "shipper thread already running");
  running_.store(true);
  thread_ = std::thread([this, interval_seconds] {
    while (running_.load()) {
      pump();
      std::this_thread::sleep_for(
          std::chrono::duration<double>(interval_seconds));
    }
  });
}

void ReplicationShipper::stop() {
  running_.store(false);
  if (thread_.joinable()) thread_.join();
}

ShipperStats ReplicationShipper::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ShipperStats out = stats_;
  out.sessions_attached = 0;
  out.frames_unacked = 0;
  for (const auto& [id, ship] : ships_) {
    if (ship.attached) ++out.sessions_attached;
    out.frames_unacked += ship.queue.size();
  }
  out.lag_epochs_p50 = quantile(lag_samples_, 0.50);
  out.lag_epochs_p99 = quantile(lag_samples_, 0.99);
  return out;
}

std::uint64_t ReplicationShipper::acked_epoch(SessionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = ships_.find(id);
  return it == ships_.end() ? 0 : it->second.acked_epoch;
}

// ---------------------------------------------------------------------------
// ReplicationFollower
// ---------------------------------------------------------------------------

ReplicationFollower::ReplicationFollower(PartitionService& service,
                                         Transport& link,
                                         FollowerConfig config)
    : service_(service), link_(link), config_(std::move(config)) {
  generation_ = config_.generation;
  if (service_.config().durability.enabled()) {
    generation_ =
        std::max(generation_,
                 read_generation_file(service_.config().durability.dir));
  }
  stats_.generation = generation_;
}

void ReplicationFollower::persist_generation() {
  if (!service_.config().durability.enabled()) return;
  write_generation_file(service_.config().durability.dir, generation_);
}

std::vector<RecoveryReport> ReplicationFollower::start_follower() {
  std::lock_guard<std::mutex> lock(mu_);
  GAPART_REQUIRE(!started_, "start_follower() called twice");
  std::vector<RecoveryReport> reports;
  if (service_.config().durability.enabled()) {
    // recover() generalized: the replica state already on disk replays
    // through the same deterministic pipeline, then tail mode continues it.
    // applied_seq restarts at 0 — the leader notices the backwards ack and
    // re-bootstraps or resumes as needed.
    reports = service_.recover(config_.base);
    for (const RecoveryReport& report : reports) {
      Replica replica;
      replica.applied_seq = 0;
      replica.applied_epoch = report.final_epoch;
      replicas_[report.session_id] = replica;
    }
  }
  started_ = true;
  stats_.sessions = service_.num_sessions();
  return reports;
}

void ReplicationFollower::ack(SessionId id, const Replica& replica) {
  RepFrame frame;
  frame.type = RepFrameType::kAck;
  frame.generation = generation_;
  frame.session = id;
  frame.seq = replica.applied_seq;
  frame.epoch = replica.applied_epoch;
  try {
    link_.send(encode_rep_frame(frame));
    ++stats_.acks_sent;
  } catch (const TransportError&) {
    // A lost ack only delays the leader; its resume re-sends and the seq
    // check dedups.
  }
}

void ReplicationFollower::handle_frame(const RepFrame& frame) {
  if (frame.type == RepFrameType::kAck) return;  // not addressed to us

  // Fencing: frames from a generation below the accepted term are a deposed
  // leader talking after failover — reject.  A higher term is a new leader;
  // adopt and persist it before applying anything under it.
  if (frame.generation < generation_) {
    ++stats_.fenced_rejected;
    // Answer with an ack carrying OUR term: that is how a deposed leader,
    // still streaming into the void after a failover, learns it was fenced.
    ack(frame.session, replicas_[frame.session]);
    return;
  }
  if (frame.generation > generation_) {
    generation_ = frame.generation;
    stats_.generation = generation_;
    persist_generation();
  }

  Replica& replica = replicas_[frame.session];

  if (frame.type == RepFrameType::kOpenSession) {
    // A full reset: accepted at any seq above the applied one.
    if (frame.seq <= replica.applied_seq) {
      ++stats_.duplicates_dropped;
      ack(frame.session, replica);
      return;
    }
    OpenPayload open;
    Graph graph;
    Assignment assignment;
    try {
      open = decode_open_payload(frame.payload);
      std::istringstream graph_is(open.graph_text);
      graph = read_graph(graph_is);
      std::istringstream part_is(open.part_text);
      assignment = read_partition(part_is);
    } catch (const Error&) {
      ++stats_.corrupt_rejected;  // CRC passed but the payload is junk
      return;
    }
    SessionConfig scfg = config_.base;
    scfg.num_parts = open.num_parts;
    scfg.fitness = open.fitness;
    try {
      service_.open_replica_session(frame.session,
                                    std::make_shared<Graph>(std::move(graph)),
                                    std::move(assignment), std::move(scfg),
                                    frame.epoch, open.digest);
    } catch (const std::bad_alloc&) {
      ++stats_.apply_failures;  // leader resume re-delivers the open
      return;
    } catch (const IoError&) {
      ++stats_.apply_failures;  // local snapshot write failed; no session
      return;
    }
    const std::uint64_t local =
        service_.session_handle(frame.session)->state_digest();
    if (local != open.digest) {
      stats_.diverged = true;
      throw ReplicationDivergedError(
          "session " + std::to_string(frame.session) +
          " diverged at open epoch " + std::to_string(frame.epoch) +
          ": leader digest " + std::to_string(open.digest) + ", follower " +
          std::to_string(local));
    }
    ++stats_.digests_verified;
    replica.applied_seq = frame.seq;
    replica.applied_epoch = frame.epoch;
    ++stats_.opens_applied;
    stats_.sessions = service_.num_sessions();
    ack(frame.session, replica);
    return;
  }

  // kRecord / kCompact: strict per-session sequencing.  Duplicates (dup or
  // reordered delivery) are dropped with a re-ack to unstick the leader;
  // gaps (a dropped frame upstream) are dropped and heal when the leader
  // resumes from the acked offset.
  if (frame.seq <= replica.applied_seq) {
    ++stats_.duplicates_dropped;
    ack(frame.session, replica);
    return;
  }
  if (frame.seq > replica.applied_seq + 1) {
    // A dropped frame upstream — or this follower restarted and its seq
    // counter reset.  Ack the real position: the leader resumes from it,
    // or (seeing the position move backwards) re-bootstraps us.
    ++stats_.gaps_dropped;
    ack(frame.session, replica);
    return;
  }
  std::shared_ptr<PartitionSession> session;
  try {
    session = service_.session_handle(frame.session);
  } catch (const Error&) {
    ++stats_.gaps_dropped;  // records before their open (the open dropped)
    ack(frame.session, replica);
    return;
  }

  if (frame.type == RepFrameType::kCompact) {
    if (frame.epoch != replica.applied_epoch) {
      stats_.diverged = true;
      throw ReplicationDivergedError(
          "session " + std::to_string(frame.session) +
          " compaction boundary at epoch " + std::to_string(frame.epoch) +
          " does not match applied epoch " +
          std::to_string(replica.applied_epoch));
    }
    if (frame.payload.size() != 8) {
      ++stats_.corrupt_rejected;
      return;
    }
    const std::uint64_t leader_digest = get_u64(frame.payload, 0);
    const std::uint64_t local = session->state_digest();
    if (local != leader_digest) {
      // Exact divergence detection: bit-for-bit disagreement at a snapshot
      // boundary.  Fail-stop — this replica must never be promoted.
      stats_.diverged = true;
      throw ReplicationDivergedError(
          "session " + std::to_string(frame.session) + " diverged at epoch " +
          std::to_string(frame.epoch) + ": leader digest " +
          std::to_string(leader_digest) + ", follower " +
          std::to_string(local));
    }
    ++stats_.digests_verified;
    session->compact_now();  // false keeps the log; correctness unaffected
    replica.applied_seq = frame.seq;
    ++stats_.compacts_applied;
    ack(frame.session, replica);
    return;
  }

  // kRecord: the WAL epoch chain must hold exactly — the frame is
  // CRC-valid and in sequence, so a broken chain is protocol divergence,
  // not noise.
  WalRecord record;
  record.type = static_cast<WalRecordType>(frame.sub);
  record.epoch = frame.epoch;
  record.flags = frame.flags;
  record.payload = frame.payload;
  const bool chain_ok = record.type == WalRecordType::kDelta
                            ? record.epoch == replica.applied_epoch + 1
                            : record.epoch == replica.applied_epoch;
  if (!chain_ok) {
    stats_.diverged = true;
    throw ReplicationDivergedError(
        "session " + std::to_string(frame.session) + " record epoch " +
        std::to_string(record.epoch) + " breaks the chain at applied epoch " +
        std::to_string(replica.applied_epoch));
  }
  try {
    replay_wal_record(*session, record, /*log_locally=*/true);
  } catch (const std::bad_alloc&) {
    ++stats_.apply_failures;  // injected alloc fault; resume re-delivers
    return;
  } catch (const IoError&) {
    ++stats_.apply_failures;  // local WAL hiccup; do not advance the seq
    return;
  }
  replica.applied_seq = frame.seq;
  replica.applied_epoch = record.epoch;
  ++stats_.records_applied;
  ack(frame.session, replica);
}

int ReplicationFollower::pump(double timeout_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  GAPART_REQUIRE(started_, "call start_follower() before pump()");
  int processed = 0;
  double timeout = timeout_seconds;
  while (auto wire = link_.receive(timeout)) {
    timeout = 0.0;  // only the first frame waits
    ++stats_.frames_received;
    ++processed;
    const auto frame = decode_rep_frame(*wire);
    if (!frame.has_value()) {
      ++stats_.corrupt_rejected;  // truncated or bit-flipped in flight
      continue;
    }
    handle_frame(*frame);
  }
  return processed;
}

PromotionReport ReplicationFollower::promote() {
  std::lock_guard<std::mutex> lock(mu_);
  GAPART_REQUIRE(started_, "call start_follower() before promote()");
  GAPART_REQUIRE(!stats_.diverged, "a diverged replica must not be promoted");
  WallTimer timer;

  // Drain the tail: everything the dead leader managed to ship is applied
  // before the fence goes up.
  while (auto wire = link_.receive(0.0)) {
    ++stats_.frames_received;
    const auto frame = decode_rep_frame(*wire);
    if (!frame.has_value()) {
      ++stats_.corrupt_rejected;
      continue;
    }
    handle_frame(*frame);
  }

  // Verify before serving: every promoted session must hold a complete,
  // valid assignment.
  PromotionReport report;
  for (const SessionId id : service_.session_ids()) {
    const auto session = service_.session_handle(id);
    const auto snap = session->snapshot();
    GAPART_REQUIRE(
        is_valid_assignment(*snap->graph, snap->assignment,
                            session->config().num_parts),
        "promotion verify failed: session ", id, " has an invalid assignment");
    PromotedSession promoted;
    promoted.id = id;
    promoted.epoch = snap->update_epoch;
    promoted.digest = session->state_digest();
    report.sessions.push_back(promoted);
  }

  // The fence: a strictly higher term, persisted before we serve writes.
  // Any late frame from the deposed leader now fails the generation check,
  // and the deposed leader itself learns of its demotion from our next ack.
  generation_ += 1;
  stats_.generation = generation_;
  persist_generation();
  stats_.promoted = true;

  report.generation = generation_;
  report.seconds = timer.seconds();
  return report;
}

FollowerStats ReplicationFollower::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FollowerStats out = stats_;
  out.sessions = service_.num_sessions();
  return out;
}

std::uint64_t ReplicationFollower::applied_epoch(SessionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = replicas_.find(id);
  return it == replicas_.end() ? 0 : it->second.applied_epoch;
}

}  // namespace gapart
