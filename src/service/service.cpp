#include "service/service.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace gapart {

PartitionService::PartitionService(ServiceConfig config, Executor* executor)
    : config_(config) {
  if (executor != nullptr) {
    executor_ = executor;
  } else {
    const int threads = config_.num_threads > 0
                            ? config_.num_threads
                            : Executor::hardware_threads();
    owned_executor_ = std::make_unique<Executor>(threads);
    executor_ = owned_executor_.get();
  }
}

PartitionService::~PartitionService() {
  // In-flight refinement tasks hold shared_ptrs to their sessions; draining
  // before teardown keeps them off a destroyed service's pool.
  executor_->wait();
}

SessionId PartitionService::insert(std::shared_ptr<PartitionSession> session) {
  std::lock_guard<std::mutex> lock(mu_);
  const SessionId id = next_id_++;
  sessions_.emplace(id, std::move(session));
  return id;
}

SessionId PartitionService::open_session(std::shared_ptr<const Graph> graph,
                                         Assignment initial,
                                         SessionConfig config) {
  return insert(std::make_shared<PartitionSession>(
      std::move(graph), std::move(initial), std::move(config)));
}

SessionId PartitionService::open_session_from_files(const std::string& prefix,
                                                    SessionConfig config) {
  return insert(std::shared_ptr<PartitionSession>(
      PartitionSession::restore_files(prefix, std::move(config))));
}

void PartitionService::close_session(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto erased = sessions_.erase(id);
  GAPART_REQUIRE(erased == 1, "unknown session id ", id);
}

std::shared_ptr<PartitionSession> PartitionService::find(SessionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  GAPART_REQUIRE(it != sessions_.end(), "unknown session id ", id);
  return it->second;
}

RepairReport PartitionService::submit_update(
    SessionId id, std::shared_ptr<const Graph> grown, const GraphDelta& delta) {
  const auto session = find(id);
  RepairReport report = session->apply_update(std::move(grown), delta);
  maybe_schedule_refinement(id, session);
  return report;
}

void PartitionService::maybe_schedule_refinement(
    SessionId id, const std::shared_ptr<PartitionSession>& session) {
  if (!config_.background_refinement) return;
  auto job = session->plan_refinement();
  if (!job.has_value()) return;

  // Deterministic per-job stream: a pure function of (service seed, session
  // id, captured epoch), independent of pool scheduling.
  SplitMix64 mix(config_.seed ^ (id * 0x9e3779b97f4a7c15ULL) ^
                 job->update_epoch);
  Rng rng(mix.next());

  Executor* pool = executor_;
  executor_->submit(
      [session, job = std::move(*job), rng, pool]() mutable {
        // A throwing task would terminate the worker; refinement failures
        // only ever cost the refinement.
        try {
          RefineOutcome out =
              run_refinement(job, session->config(), rng, pool);
          session->complete_refinement(job, std::move(out.assignment),
                                       out.fitness, out.full_evaluations,
                                       out.delta_evaluations);
        } catch (...) {
          session->abandon_refinement();
        }
      });
}

void PartitionService::poll() {
  if (!config_.background_refinement) return;
  std::vector<std::pair<SessionId, std::shared_ptr<PartitionSession>>> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    all.assign(sessions_.begin(), sessions_.end());
  }
  for (const auto& [id, session] : all) {
    maybe_schedule_refinement(id, session);
  }
}

std::shared_ptr<const SessionSnapshot> PartitionService::snapshot(
    SessionId id) const {
  return find(id)->snapshot();
}

SessionStats PartitionService::session_stats(SessionId id) const {
  return find(id)->stats();
}

ServiceStats PartitionService::stats() const {
  std::vector<std::shared_ptr<PartitionSession>> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.reserve(sessions_.size());
    for (const auto& [id, s] : sessions_) sessions.push_back(s);
  }

  ServiceStats out;
  out.sessions = static_cast<int>(sessions.size());
  std::vector<double> samples;
  for (const auto& s : sessions) {
    const SessionStats st = s->stats();
    // Lifetime max survives the sessions' sliding sample windows.
    out.max_repair_seconds =
        std::max(out.max_repair_seconds, st.max_repair_seconds);
    out.updates += st.updates;
    out.total_damage += st.total_damage;
    out.repair_moves += st.repair_moves;
    out.examined += st.examined;
    out.full_evaluations += st.full_evaluations;
    out.delta_evaluations += st.delta_evaluations;
    out.refinements_planned += st.refinements_planned;
    out.refinements_applied += st.refinements_applied;
    out.refinements_stale += st.refinements_stale;
    out.refinements_no_better += st.refinements_no_better;
    samples.insert(samples.end(), st.repair_seconds_samples.begin(),
                   st.repair_seconds_samples.end());
  }
  out.p50_repair_seconds = quantile(samples, 0.50);
  out.p99_repair_seconds = quantile(samples, 0.99);
  out.pool_backlog = executor_->pending();
  return out;
}

void PartitionService::save_session(SessionId id,
                                    const std::string& prefix) const {
  find(id)->save_files(prefix);
}

void PartitionService::quiesce() { executor_->wait(); }

int PartitionService::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(sessions_.size());
}

}  // namespace gapart
