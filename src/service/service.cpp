#include "service/service.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "graph/delta_codec.hpp"

namespace gapart {

PartitionService::PartitionService(ServiceConfig config, Executor* executor)
    : config_(config) {
  if (executor != nullptr) {
    executor_ = executor;
  } else {
    const int threads = config_.num_threads > 0
                            ? config_.num_threads
                            : Executor::hardware_threads();
    owned_executor_ = std::make_unique<Executor>(threads);
    executor_ = owned_executor_.get();
  }
}

PartitionService::~PartitionService() {
  // In-flight refinement tasks hold shared_ptrs to their sessions; draining
  // before teardown keeps them off a destroyed service's pool.
  executor_->wait();
}

SessionId PartitionService::insert(std::shared_ptr<PartitionSession> session) {
  std::lock_guard<std::mutex> lock(mu_);
  const SessionId id = next_id_++;
  sessions_.emplace(id, std::move(session));
  return id;
}

void PartitionService::insert_with_id(
    SessionId id, std::shared_ptr<PartitionSession> session) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool inserted = sessions_.emplace(id, std::move(session)).second;
  GAPART_REQUIRE(inserted, "session id ", id, " already exists");
  next_id_ = std::max(next_id_, id + 1);
}

std::string PartitionService::session_dir(SessionId id) const {
  return config_.durability.dir + "/session-" + std::to_string(id);
}

SessionId PartitionService::open_session(std::shared_ptr<const Graph> graph,
                                         Assignment initial,
                                         SessionConfig config) {
  auto session = std::make_shared<PartitionSession>(
      std::move(graph), std::move(initial), std::move(config));
  const SessionId id = insert(session);
  if (config_.durability.enabled()) {
    // Make the opening state durable before the id is handed back.  The
    // snapshot carries exactly the (graph, assignment) just installed.
    const auto snap = session->snapshot();
    session->attach_wal(SessionWal::create(
        session_dir(id), config_.durability, session->config().num_parts,
        session->config().fitness, *snap->graph, snap->assignment,
        /*snapshot_epoch=*/0,
        assignment_content_hash(*snap->graph, snap->assignment,
                                session->config().num_parts)));
  }
  return id;
}

SessionId PartitionService::open_session_from_files(const std::string& prefix,
                                                    SessionConfig config) {
  auto session = std::shared_ptr<PartitionSession>(
      PartitionSession::restore_files(prefix, std::move(config)));
  const SessionId id = insert(session);
  if (config_.durability.enabled()) {
    const auto snap = session->snapshot();
    session->attach_wal(SessionWal::create(
        session_dir(id), config_.durability, session->config().num_parts,
        session->config().fitness, *snap->graph, snap->assignment,
        /*snapshot_epoch=*/0,
        assignment_content_hash(*snap->graph, snap->assignment,
                                session->config().num_parts)));
  }
  return id;
}

std::vector<RecoveryReport> PartitionService::recover(
    const SessionConfig& base) {
  GAPART_REQUIRE(config_.durability.enabled(),
                 "recover() needs a durability directory in the config");
  namespace fs = std::filesystem;
  std::vector<RecoveryReport> reports;
  std::error_code ec;
  if (!fs::exists(config_.durability.dir, ec)) return reports;

  // Deterministic recovery order: collect and sort the session ids first.
  std::vector<SessionId> ids;
  for (const auto& entry : fs::directory_iterator(config_.durability.dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("session-", 0) != 0) continue;
    ids.push_back(static_cast<SessionId>(
        std::stoull(name.substr(std::string("session-").size()))));
  }
  std::sort(ids.begin(), ids.end());

  for (const SessionId id : ids) {
    WallTimer timer;
    auto rec = SessionWal::recover(session_dir(id), config_.durability);

    // Identity comes from the meta file; everything else (budgets, policy)
    // from the caller's template.
    SessionConfig scfg = base;
    scfg.num_parts = rec.num_parts;
    scfg.fitness = rec.fitness;

    auto session = std::make_shared<PartitionSession>(
        std::make_shared<Graph>(std::move(rec.graph)),
        std::move(rec.assignment), std::move(scfg), "recover");
    session->begin_recovery(rec.snapshot_epoch);

    // Replay: each kDelta re-runs the live repair pipeline with the logged
    // verification-round count (deterministic — no wall clock); each
    // kRefine swaps in the adopted assignment.  The same replay core drives
    // the replication follower (log_locally=true there).
    for (const WalRecord& record : rec.records) {
      replay_wal_record(*session, record, /*log_locally=*/false);
    }
    session->attach_wal(std::move(rec.wal));

    RecoveryReport rep;
    rep.session_id = id;
    rep.snapshot_epoch = rec.snapshot_epoch;
    rep.final_epoch = session->snapshot()->update_epoch;
    rep.records_replayed = rec.records.size();
    rep.torn_tail = rec.torn_tail;
    rep.seconds = timer.seconds();
    reports.push_back(rep);

    insert_with_id(id, std::move(session));
  }
  return reports;
}

void PartitionService::close_session(SessionId id) {
  std::shared_ptr<PartitionSession> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(id);
    GAPART_REQUIRE(it != sessions_.end(), "unknown session id ", id);
    session = std::move(it->second);
    sessions_.erase(it);
  }
  // Drain OUTSIDE the table lock: close() blocks until an in-flight
  // refinement unwinds, and that refinement may be queued behind other pool
  // work — holding mu_ here would stall every other session's operations.
  session->close();
}

std::shared_ptr<PartitionSession> PartitionService::find(SessionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  GAPART_REQUIRE(it != sessions_.end(), "unknown session id ", id);
  return it->second;
}

RepairReport PartitionService::submit_update(
    SessionId id, std::shared_ptr<const Graph> grown, const GraphDelta& delta) {
  const auto session = find(id);

  // Overload gate: count this call in, consult the pure admission policy,
  // and degrade in the fixed order quality -> latency -> availability.
  struct InflightGuard {
    std::atomic<int>& count;
    ~InflightGuard() { count.fetch_sub(1, std::memory_order_relaxed); }
  } guard{inflight_repairs_};
  OverloadSignals signals;
  signals.inflight_repairs =
      inflight_repairs_.fetch_add(1, std::memory_order_relaxed) + 1;
  signals.pool_backlog = executor_->pending();
  const AdmitDecision decision = decide_admission(config_.overload, signals);
  if (decision == AdmitDecision::kReject) {
    updates_rejected_.fetch_add(1, std::memory_order_relaxed);
    throw OverloadError("service overloaded: " +
                        std::to_string(signals.inflight_repairs) +
                        " repairs in flight (max " +
                        std::to_string(config_.overload.max_inflight_repairs) +
                        ") — back off and retry");
  }
  ApplyOptions opts;
  opts.shed_verification = decision == AdmitDecision::kShedVerification;
  if (opts.shed_verification) {
    verifications_shed_.fetch_add(1, std::memory_order_relaxed);
  }

  RepairReport report = session->apply_update(std::move(grown), delta, opts);

  if (defer_refinement(config_.overload, executor_->pending())) {
    refinements_deferred_.fetch_add(1, std::memory_order_relaxed);
  } else {
    maybe_schedule_refinement(id, session);
  }
  return report;
}

std::optional<RepairReport> PartitionService::try_submit_update(
    SessionId id, std::shared_ptr<const Graph> grown, const GraphDelta& delta) {
  try {
    return submit_update(id, std::move(grown), delta);
  } catch (const OverloadError&) {
    return std::nullopt;
  }
}

void PartitionService::maybe_schedule_refinement(
    SessionId id, const std::shared_ptr<PartitionSession>& session) {
  if (!config_.background_refinement) return;
  auto job = session->plan_refinement();
  if (!job.has_value()) return;

  // Task-start fault point: an injected failure here models the pool
  // refusing the task (thread exhaustion).  The planned job is abandoned
  // cleanly — the policy accumulators stay primed and refire later.
  if (GAPART_FAULT_POINT(FaultSite::kTaskStart)) {
    session->abandon_refinement();
    refine_start_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Deterministic per-job stream: a pure function of (service seed, session
  // id, captured epoch), independent of pool scheduling.
  SplitMix64 mix(config_.seed ^ (id * 0x9e3779b97f4a7c15ULL) ^
                 job->update_epoch);
  Rng rng(mix.next());

  Executor* pool = executor_;
  const double scheduled_at = GAPART_TSTAMP();
  executor_->submit(
      [session, job = std::move(*job), rng, pool, scheduled_at]() mutable {
        // Schedule -> start queue wait: how long the job sat behind other
        // sessions' refinements before the pool picked it up.
        GAPART_HISTOGRAM_RECORD("refine.queue_wait_seconds",
                                GAPART_TSTAMP() - scheduled_at);
        // A throwing task would terminate the worker; refinement failures
        // only ever cost the refinement.
        try {
          RefineOutcome out =
              run_refinement(job, session->config(), rng, pool);
          session->complete_refinement(job, std::move(out.assignment),
                                       out.fitness, out.full_evaluations,
                                       out.delta_evaluations);
        } catch (...) {
          session->abandon_refinement();
        }
      });
}

void PartitionService::poll() {
  if (!config_.background_refinement) return;
  std::vector<std::pair<SessionId, std::shared_ptr<PartitionSession>>> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    all.assign(sessions_.begin(), sessions_.end());
  }
  for (const auto& [id, session] : all) {
    maybe_schedule_refinement(id, session);
  }
}

std::shared_ptr<const SessionSnapshot> PartitionService::snapshot(
    SessionId id) const {
  return find(id)->snapshot();
}

SessionStats PartitionService::session_stats(SessionId id) const {
  return find(id)->stats();
}

ServiceStats PartitionService::stats() const {
  std::vector<std::shared_ptr<PartitionSession>> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.reserve(sessions_.size());
    for (const auto& [id, s] : sessions_) sessions.push_back(s);
  }

  ServiceStats out;
  out.sessions = static_cast<int>(sessions.size());
  for (const auto& s : sessions) {
    const SessionStats st = s->stats();
    out.max_repair_seconds =
        std::max(out.max_repair_seconds, st.max_repair_seconds);
    out.repair_latency.merge(st.repair_latency);
    out.updates += st.updates;
    out.total_damage += st.total_damage;
    out.repair_moves += st.repair_moves;
    out.examined += st.examined;
    out.full_evaluations += st.full_evaluations;
    out.delta_evaluations += st.delta_evaluations;
    out.refinements_planned += st.refinements_planned;
    out.refinements_applied += st.refinements_applied;
    out.refinements_stale += st.refinements_stale;
    out.refinements_no_better += st.refinements_no_better;
    if (st.durable) {
      ++out.durable_sessions;
      out.failed_sessions += st.wal_failed ? 1 : 0;
      out.wal_appends += st.wal.appends;
      out.wal_append_retries += st.wal.append_retries;
      out.wal_fsyncs += st.wal.fsyncs;
      out.wal_bytes_appended += st.wal.bytes_appended;
      out.wal_compactions += st.wal.compactions;
      out.wal_compaction_failures += st.wal.compaction_failures;
    }
  }
  out.p50_repair_seconds = out.repair_latency.quantile(0.50);
  out.p99_repair_seconds = out.repair_latency.quantile(0.99);
  out.pool_backlog = executor_->pending();
  GAPART_GAUGE_SET("executor.pending", out.pool_backlog);
  out.updates_rejected = updates_rejected_.load(std::memory_order_relaxed);
  out.verifications_shed = verifications_shed_.load(std::memory_order_relaxed);
  out.refinements_deferred =
      refinements_deferred_.load(std::memory_order_relaxed);
  out.refine_start_failures =
      refine_start_failures_.load(std::memory_order_relaxed);
  return out;
}

void PartitionService::save_session(SessionId id,
                                    const std::string& prefix) const {
  find(id)->save_files(prefix);
}

void PartitionService::quiesce() { executor_->wait(); }

int PartitionService::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(sessions_.size());
}

std::vector<SessionId> PartitionService::session_ids() const {
  std::vector<SessionId> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ids.reserve(sessions_.size());
    for (const auto& [id, s] : sessions_) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::shared_ptr<PartitionSession> PartitionService::session_handle(
    SessionId id) const {
  return find(id);
}

void PartitionService::open_replica_session(SessionId id,
                                            std::shared_ptr<const Graph> graph,
                                            Assignment initial,
                                            SessionConfig config,
                                            std::uint64_t start_epoch,
                                            std::uint64_t digest) {
  // Full-resync semantics: a second open frame for an id the follower
  // already tracks replaces the session wholesale (the leader compacted
  // past what this replica had, or the replica fell behind beyond resume).
  // Build the replacement COMPLETELY before touching the session map: if
  // the checkpoint write below throws, the old incarnation must survive so
  // a failover promotes a stale-but-valid state instead of nothing.
  auto session = std::make_shared<PartitionSession>(
      std::move(graph), std::move(initial), std::move(config), "replicate");
  session->begin_recovery(start_epoch);
  if (config_.durability.enabled()) {
    // A replica restarts from its own disk: checkpoint the streamed state at
    // exactly the leader's epoch/digest, wiping any stale prior incarnation.
    // (The old session's open file descriptors survive the wipe; it is about
    // to be closed anyway.)
    std::error_code ec;
    std::filesystem::remove_all(session_dir(id), ec);
    const auto snap = session->snapshot();
    session->attach_wal(SessionWal::create(
        session_dir(id), config_.durability, session->config().num_parts,
        session->config().fitness, *snap->graph, snap->assignment, start_epoch,
        digest));
  }

  std::shared_ptr<PartitionSession> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(id);
    if (it != sessions_.end()) {
      old = std::move(it->second);
      sessions_.erase(it);
    }
  }
  if (old != nullptr) old->close();
  insert_with_id(id, std::move(session));
}

}  // namespace gapart
