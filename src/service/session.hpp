// One long-lived partitioning session: a live Graph + PartitionState fed by
// a stream of GraphDeltas.
//
// The session is the unit of the streaming service (service.hpp).  Its
// contract splits work into two planes:
//
//   synchronous (apply_update, caller's thread, O(damage) + budget):
//     tier 1  greedy extension of the surviving assignment over the new
//             vertices (most-constrained-first majority vote — the PR 4
//             pipeline's tier 1, reimplemented against the live state so it
//             costs O(new * deg), not O(V));
//     rebind  PartitionState::rebind_grown absorbs the new graph in
//             O(damage * deg) — no O(V+E) state rebuild per delta;
//     tier 2  worklist-seeded frontier climb from the delta's repair seeds
//             (unverified: strictly damage-proportional), then full-boundary
//             verification rounds only while the configured latency budget
//             allows — an adaptive cost/quality knob per update.
//
//   asynchronous (plan_refinement / run_refinement / complete_refinement,
//   service-scheduled on the shared Executor):
//     verified frontier hill-climb rounds and, when the policy escalates,
//     a DPGA burst seeded with the repaired solution (§3.5's incremental GA
//     as a background job).  Refinement runs on a captured epoch snapshot;
//     publication back into the live state is epoch-checked, so a refinement
//     raced by newer deltas is discarded, never merged wrongly.
//
// Readers never block on either plane: snapshot() hands out the latest
// epoch-versioned, immutable SessionSnapshot via shared_ptr swap.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/executor.hpp"
#include "common/rng.hpp"
#include "common/telemetry.hpp"
#include "core/dpga.hpp"
#include "core/graph_delta.hpp"
#include "core/vcycle_ga.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "service/refine_policy.hpp"
#include "service/wal.hpp"

namespace gapart {

struct SessionConfig {
  PartId num_parts = 2;
  FitnessParams fitness;

  /// Tier 1: extend by neighbour-majority vote (most-constrained-first).
  /// When off, new vertices go to the lightest part (balanced extension).
  bool greedy_extend = true;
  /// Tier 2: seeded frontier repair of the damage.
  bool seeded_repair = true;
  /// Minimum per-move gain in the repair climb (must stay positive).
  double repair_min_gain = 1e-9;
  /// Process likely-positive-gain repair vertices first (hill_climb's
  /// gain_ordered worklist).
  bool gain_ordered_repair = true;
  /// Latency budget for one apply_update call: after the damage-proportional
  /// cascade, O(boundary) verification rounds run only while the elapsed
  /// repair time stays under this budget (0 = cascade only — the strictest
  /// latency regime, leaving verification to background refinement).  The
  /// budget gates ENTRY to a round; an admitted round runs to completion, so
  /// one update can overshoot by up to a round + its cascade.
  double repair_budget_seconds = 0.0;
  /// Hard cap on verification rounds even when the budget allows more.
  int repair_max_verify_rounds = 4;

  /// Background-refinement trigger policy.
  RefinePolicyConfig policy;
  /// kLight refinement: verified frontier hill-climb round budget.
  int refine_hill_climb_passes = 8;
  /// kDeep refinement: DPGA burst settings.  num_parts/fitness are
  /// overwritten with the session's; keep the budgets modest — this runs on
  /// the shared pool next to other sessions' work.
  DpgaConfig deep;
  /// kDeep refinement of sessions at/above policy.vcycle_min_vertices runs
  /// the multilevel V-cycle engine instead of the flat burst (see
  /// route_deep_vcycle).  dpga.ga.num_parts/fitness are overwritten with the
  /// session's; the job's cancel token is threaded in per run.
  VcycleGaOptions deep_vcycle;

  SessionConfig();
};

/// Immutable, epoch-versioned view of a session's partition.  The graph is
/// shared (a later update replaces the session's graph, never mutates it),
/// so a snapshot stays internally consistent forever.
struct SessionSnapshot {
  /// Number of deltas the session had absorbed when this was published.
  std::uint64_t update_epoch = 0;
  /// Total publish count (repairs + refinements); strictly increasing.
  std::uint64_t version = 0;
  const char* source = "open";  ///< "open" / "repair" / "refine" / "restore"
  std::shared_ptr<const Graph> graph;
  Assignment assignment;
  double fitness = 0.0;
  double total_cut = 0.0;
  double max_part_cut = 0.0;
  double imbalance_sq = 0.0;
};

/// Per-call modifiers for apply_update.  Defaults describe the normal live
/// path; the service's overload ladder and the recovery replay set the rest.
struct ApplyOptions {
  /// Overload shedding: skip the budgeted verification rounds entirely
  /// (cascade only) — the cheapest admissible repair.
  bool shed_verification = false;
  /// >= 0: run exactly this many verification rounds, ignoring the wall
  /// clock — recovery replays the round count the live run logged, so the
  /// replayed pipeline is bit-deterministic.  Capped by
  /// repair_max_verify_rounds.
  int replay_verify_rounds = -1;
  /// Recovery replay: do not log the delta to the WAL again (it is being
  /// read FROM the WAL) and do not trigger compaction.
  bool replaying = false;
};

/// What one apply_update call did (the synchronous plane only).
struct RepairReport {
  std::uint64_t update_epoch = 0;
  VertexId damage = 0;
  int extend_moves = 0;         ///< new vertices assigned (tier 1)
  int repair_moves = 0;         ///< migrations (tier 2, incl. verification)
  std::int64_t examined = 0;    ///< gain-kernel probes
  int verify_rounds = 0;        ///< rounds the latency budget admitted
  double seconds = 0.0;         ///< wall time of the whole call
  double fitness_after = 0.0;
};

/// Point-in-time statistics copy (see PartitionService for aggregation).
struct SessionStats {
  std::uint64_t updates = 0;
  std::uint64_t version = 0;
  std::uint64_t total_damage = 0;
  std::int64_t extend_moves = 0;
  std::int64_t repair_moves = 0;
  std::int64_t examined = 0;
  /// Evaluation accounting in EvalContext units: every accepted move /
  /// mutation delta is a delta evaluation, every O(V+E) pass a full one.
  std::int64_t full_evaluations = 0;
  std::int64_t delta_evaluations = 0;
  int refinements_planned = 0;
  int refinements_applied = 0;
  /// Completed but raced by a newer delta (captured epoch went stale).
  int refinements_stale = 0;
  /// Completed cleanly but found nothing better — the live partition's
  /// quality was (re)certified instead of replaced.
  int refinements_no_better = 0;
  /// Improved the fitness but its WAL record could not be written: the
  /// refinement was dropped (quality only) so the log stays a superset of
  /// the state — required for replication digests to be exact.
  int refinements_unlogged = 0;
  /// Bucketed lifetime percentiles from `repair_latency` (relative error
  /// <= 12.5% — one histogram bucket; see common/telemetry.hpp).
  double p50_repair_seconds = 0.0;
  double p99_repair_seconds = 0.0;
  double max_repair_seconds = 0.0;  ///< exact (histogram tracks true max)
  /// Mergeable log-bucketed repair-latency histogram (lifetime, bounded
  /// memory).  The service composes sessions into honest service-wide
  /// percentiles by merging these — merge is exact and associative, unlike
  /// merging quantiles, and replaces the old unbounded raw-sample vectors.
  LogHistogram repair_latency;
  double current_fitness = 0.0;
  double current_total_cut = 0.0;
  /// (update_epoch, total_cut) at the last kMaxHistory publishes — the
  /// recent cut trajectory.
  std::vector<std::pair<std::uint64_t, double>> cut_trajectory;

  /// Durability (zeros when the session runs without a WAL).
  bool durable = false;
  /// Fail-stop: a WAL append exhausted its retries after the repair had
  /// already mutated the state; the session refuses further updates so the
  /// log never diverges from the acknowledged history.
  bool wal_failed = false;
  WalStats wal;

  /// History cap: the cut trajectory is a sliding window of this many
  /// entries.  (Latency percentiles moved to the fixed-size histogram above,
  /// so they cover the session lifetime at bounded memory.)
  static constexpr std::size_t kMaxHistory = 4096;
};

class PartitionSession {
 public:
  /// Starts a session on `graph` with `initial` as its partition.  The graph
  /// is shared because snapshots outlive updates.  `origin` labels the first
  /// snapshot's source ("open"; restore() passes "restore").
  PartitionSession(std::shared_ptr<const Graph> graph, Assignment initial,
                   SessionConfig config, const char* origin = "open");

  PartitionSession(const PartitionSession&) = delete;
  PartitionSession& operator=(const PartitionSession&) = delete;

  const SessionConfig& config() const { return config_; }

  /// Synchronous per-delta repair (see file comment).  `grown` is the new
  /// graph snapshot; `delta` describes how it differs from the session's
  /// current graph (delta.old_num_vertices must match).  Thread-safe against
  /// snapshot() and the refinement plane; concurrent apply_update calls on
  /// ONE session serialize on the session lock.
  ///
  /// When a WAL is attached, the delta is appended (and fsynced per the
  /// durability config) before this call returns — the returned report IS
  /// the acknowledgement, so ack implies durable.  An append that exhausts
  /// its retries throws IoError and fail-stops the session (wal_failed).
  RepairReport apply_update(std::shared_ptr<const Graph> grown,
                            const GraphDelta& delta,
                            const ApplyOptions& opts = {});

  /// Latest published state; never blocks on repair or refinement beyond a
  /// pointer copy.  Never null.
  std::shared_ptr<const SessionSnapshot> snapshot() const;

  SessionStats stats() const;

  // --- Asynchronous refinement protocol (driven by PartitionService) ------

  /// A captured refinement work order: immutable inputs for run_refinement.
  struct RefineJob {
    std::uint64_t update_epoch = 0;
    RefineDepth depth = RefineDepth::kNone;
    std::shared_ptr<const Graph> graph;
    Assignment assignment;
    double fitness = 0.0;
    /// Cooperative cancel flag, set by close(): run_refinement checks it at
    /// pass boundaries and before the DPGA burst, so a closing session never
    /// waits for a full deep burst to finish.
    std::shared_ptr<const std::atomic<bool>> cancel;
  };

  /// Consults the policy; when it fires, marks a refinement in flight and
  /// returns the captured job.  nullopt when the policy stays quiet or a
  /// job is already in flight.
  std::optional<RefineJob> plan_refinement();

  /// Applies a finished refinement: adopted only when no delta raced it
  /// (job.update_epoch still current) AND it improved the fitness; always
  /// clears the in-flight mark and resets the policy accumulators on
  /// adoption.  On a durable session the kRefine record is appended BEFORE
  /// the state is adopted; if the append fails the refinement is dropped
  /// (refinements_unlogged) so log and state never diverge.  Returns true
  /// when adopted.
  bool complete_refinement(const RefineJob& job, Assignment refined,
                           double refined_fitness,
                           std::int64_t full_evaluations,
                           std::int64_t delta_evaluations);

  /// Clears the in-flight mark after a failed refinement attempt.
  void abandon_refinement();

  // --- Durability (service/wal.hpp) ---------------------------------------

  /// Attaches a write-ahead log: every subsequent apply_update appends its
  /// delta before acknowledging, adopted refinements are logged best-effort,
  /// and compaction runs when the log policy fires.  Called once, right
  /// after construction (durable open) or after replay (recovery).
  void attach_wal(std::unique_ptr<SessionWal> wal);
  bool durable() const;

  /// Recovery bootstrap: positions a freshly constructed session (built on
  /// the snapshot state, zero updates absorbed) at the snapshot's update
  /// epoch so replayed records land on their original epochs.
  void begin_recovery(std::uint64_t snapshot_epoch);

  /// Recovery replay of a logged kRefine record: swaps in `refined` as the
  /// live assignment (one O(V + E) state rebuild), without consulting the
  /// policy or the WAL.
  void force_assignment(Assignment refined, const char* source);

  // --- Replication (service/replication.hpp) ------------------------------

  /// PartitionState::content_hash() of the live state — the divergence-
  /// detection digest leaders and followers exchange at snapshot boundaries.
  std::uint64_t state_digest() const;

  /// Follower-side kRefine application: logs the record to this session's
  /// own WAL first, then adopts the assignment.  Unlike the leader's
  /// best-effort refinement logging, a failed append here fail-stops the
  /// session (wal_failed) — a follower whose log silently missed a shipped
  /// record would replay to a diverged state after ITS next restart.
  void apply_replicated_refine(Assignment refined);

  /// Follower-side lockstep compaction, triggered by the leader's shipped
  /// snapshot boundary rather than the local policy.  Checkpoints the
  /// current state (with its digest) and truncates the local log.  Returns
  /// false — keeping the log — when the snapshot write fails or the session
  /// has no WAL.
  bool compact_now();

  /// Leader-side compaction liveness: apply_update only evaluates the
  /// compaction policy right after an append, when the ship gate is
  /// necessarily still behind the new record — so with a strict gate
  /// (ship_retain_bytes == 0) the policy would never fire.  The shipper
  /// calls this after consuming the log to run any compaction the gate
  /// deferred.  Returns true when a compaction ran.
  bool poll_compaction();

  /// Leader-side: hands the WAL the shipper's consumed-offset gate so
  /// compaction defers (bounded by ship_retain_bytes) while the shipper is
  /// behind.  No-op on a non-durable session.
  void set_ship_gate(std::shared_ptr<WalShipGate> gate);

  /// Drains the session for teardown: marks it closed (further updates and
  /// refinement plans are refused), signals an in-flight refinement to
  /// cancel, waits until it has unwound, and syncs the WAL.  Idempotent;
  /// safe to call while a refinement is mid-run on the pool.
  void close();
  bool closed() const;

  // --- Persistence through the Chaco/METIS text formats -------------------

  /// Writes the current graph and partition (io.hpp formats): a session can
  /// be checkpointed mid-stream and restored into a fresh process, or its
  /// partition handed to any other Chaco/METIS-speaking tool.
  void save(std::ostream& graph_os, std::ostream& partition_os) const;
  /// save() to `prefix`.graph / `prefix`.part.
  void save_files(const std::string& prefix) const;

  /// Restores a session from streams/files written by save()/save_files()
  /// (snapshot source is "restore").
  static std::unique_ptr<PartitionSession> restore(std::istream& graph_is,
                                                   std::istream& partition_is,
                                                   SessionConfig config);
  static std::unique_ptr<PartitionSession> restore_files(
      const std::string& prefix, SessionConfig config);

 private:
  /// Tier 1: parts for the new vertices [old_n, |grown|), O(new * deg).
  std::vector<PartId> extend_parts(const Graph& grown,
                                   VertexId old_n) const;
  /// Publishes the current state as the newest snapshot (mu_ held).
  void publish(const char* source);
  RefineSignals signals() const;  // mu_ held

  const SessionConfig config_;

  mutable std::mutex mu_;  ///< guards everything below
  std::shared_ptr<const Graph> graph_;
  PartitionState state_;
  std::uint64_t update_epoch_ = 0;
  std::uint64_t version_ = 0;

  // Policy accumulators (reset when a refinement is adopted).
  double baseline_fitness_ = 0.0;
  int updates_since_refine_ = 0;
  std::int64_t damage_since_refine_ = 0;
  std::int64_t damage_since_deep_ = 0;
  bool refine_in_flight_ = false;

  // Durability + teardown plane.
  std::unique_ptr<SessionWal> wal_;
  bool wal_failed_ = false;  ///< fail-stop: an append exhausted its retries
  bool closed_ = false;
  /// Set for the duration of one in-flight refinement; close() flips it.
  std::shared_ptr<std::atomic<bool>> refine_cancel_;
  /// Signalled when refine_in_flight_ clears (close() drains on it).
  std::condition_variable refine_done_cv_;

  // Statistics.  Repair latencies accumulate into a fixed-size log-bucketed
  // histogram (stats_.repair_latency — bounded memory over an unbounded
  // stream, O(buckets) to scrape); cut_trajectory_ is a ring of the last
  // kMaxHistory entries (stats() unrolls it chronologically).
  SessionStats stats_;
  std::vector<std::pair<std::uint64_t, double>> cut_trajectory_;
  std::size_t cut_trajectory_next_ = 0;

  mutable std::mutex snap_mu_;  ///< guards snapshot_ only (reader-facing)
  std::shared_ptr<const SessionSnapshot> snapshot_;
};

/// Executes a refinement job (outside any session lock): kLight runs
/// verified gain-ordered frontier hill-climb rounds; kDeep additionally runs
/// a DPGA burst seeded with the climbed solution.  Deterministic for a given
/// rng; `executor` (optional) parallelizes the DPGA burst.  Returns the
/// refined assignment, its fitness, and the evaluation counts to charge.
struct RefineOutcome {
  Assignment assignment;
  double fitness = 0.0;
  std::int64_t full_evaluations = 0;
  std::int64_t delta_evaluations = 0;
};
RefineOutcome run_refinement(const PartitionSession::RefineJob& job,
                             const SessionConfig& config, Rng rng,
                             Executor* executor);

/// Applies one WAL record to a session through the same deterministic repair
/// pipeline the live run used — the shared core of PartitionService::recover
/// (log_locally = false: the record is being read FROM this session's log)
/// and the replication follower's continuous tail-replay (log_locally =
/// true: the record arrived from the leader and must enter the follower's
/// own log).  kDelta records rebuild the grown graph from the session's
/// current one and replay the logged verification-round count; kRefine
/// records swap in the logged assignment.
void replay_wal_record(PartitionSession& session, const WalRecord& record,
                       bool log_locally);

}  // namespace gapart
