// Per-session durability: a CRC-framed write-ahead delta log with snapshot
// compaction.
//
// Every accepted GraphDelta is serialized (graph/delta_codec: O(damage)
// bytes) and appended as one framed record — with the number of verification
// rounds the repair actually admitted, so replay re-runs the *same*
// deterministic pipeline the live session ran, wall clock removed — before
// the synchronous repair acknowledges to the client.  Adopted background
// refinements are logged too (full assignment; they are rare and already
// O(V + E) in compute).  When the damage accumulated in the log crosses the
// compaction policy's threshold, the session state is checkpointed through
// the existing Chaco/METIS writers (temp file + rename + fsync) and the log
// is truncated.
//
// On-disk layout of one session directory:
//
//   meta               session identity: num_parts, objective, lambda
//   snap-<E>.graph     checkpoint at update epoch E (Chaco format)
//   snap-<E>.part      its partition (METIS format)
//   CURRENT            the epoch E of the authoritative snapshot
//   wal.log            framed records with epochs > E (plus possibly stale
//                      records <= E left by a compaction that crashed
//                      between the CURRENT rename and the log truncation —
//                      replay skips them)
//
// Crash-consistency argument: CURRENT is only renamed over after the new
// snapshot files are fully written and fsynced, and the log is only
// truncated after CURRENT points at the new epoch.  Whatever the crash
// point, CURRENT names a complete snapshot and the log holds every record
// past it.  A torn final record (the crash hit mid-append) is detected by
// its CRC frame and dropped; a bad CRC *followed by valid records* is real
// corruption and surfaces as WalCorruptError — recovery never guesses.
//
// Thread-safety: none.  A SessionWal belongs to one PartitionSession and
// every call is made under that session's lock (append/compaction order must
// equal apply order, so this is not a restriction).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/backoff.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/types.hpp"
#include "service/refine_policy.hpp"

namespace gapart {

/// The log holds records that cannot all be trusted: a bad frame with valid
/// records after it.  Torn *tails* are not errors (see file comment).
class WalCorruptError : public IoError {
 public:
  explicit WalCorruptError(const std::string& what) : IoError(what) {}
};

/// When acknowledged updates become durable.
enum class FsyncPolicy {
  kNever,        ///< Leave it to the OS page cache (ack != durable).
  kEveryRecord,  ///< fsync before every acknowledgement (ack == durable).
  kEveryN,       ///< fsync every fsync_interval records (bounded loss window).
};

const char* fsync_policy_name(FsyncPolicy p);

struct DurabilityConfig {
  /// Root directory for session subdirectories; empty disables durability.
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::kEveryRecord;
  /// FsyncPolicy::kEveryN: records between fsyncs.
  int fsync_interval = 32;
  /// When to fold the log into a fresh snapshot (refine_policy).
  CompactionPolicy compaction;
  /// Retry schedule for transient log I/O failures.
  BackoffPolicy io_retry;

  bool enabled() const { return !dir.empty(); }
};

enum class WalRecordType : std::uint8_t {
  kDelta = 1,   ///< payload = delta_codec bytes; flags = verify rounds run
  kRefine = 2,  ///< payload = adopted assignment (u64 n + n * i32 parts)
};

struct WalRecord {
  WalRecordType type = WalRecordType::kDelta;
  /// The session update epoch this record belongs to: a kDelta record's
  /// epoch is the epoch the delta produced; a kRefine record's epoch is the
  /// epoch whose state the refinement replaced.
  std::uint64_t epoch = 0;
  /// kDelta: verification rounds the live repair admitted (replay runs
  /// exactly these instead of consulting the wall clock).
  std::uint32_t flags = 0;
  std::string payload;
};

struct WalReadResult {
  std::vector<WalRecord> records;
  /// The final record was torn (partial frame or bad CRC at the very tail).
  bool torn_tail = false;
  /// Byte length of the valid prefix — where appends may resume.
  std::uint64_t valid_bytes = 0;
};

/// Parses a log file.  A missing file reads as empty.  Throws
/// WalCorruptError when an invalid frame is followed by valid records, and
/// IoError on unreadable files.
WalReadResult read_log_file(const std::string& path);

/// Serializes the kRefine payload.
std::string encode_assignment(const Assignment& assignment);
Assignment decode_assignment(const std::string& payload);

/// Cumulative durability counters for one session (scraped into
/// SessionStats/ServiceStats and the soak JSON).
struct WalStats {
  std::uint64_t appends = 0;
  std::uint64_t append_retries = 0;  ///< transient I/O errors retried away
  std::uint64_t fsyncs = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t compactions = 0;
  std::uint64_t compaction_failures = 0;  ///< kept the log; retried later
  double last_compaction_seconds = 0.0;
  std::uint64_t snapshot_epoch = 0;
  std::uint64_t log_records = 0;
  std::uint64_t log_bytes = 0;
  std::int64_t log_damage = 0;
};

class SessionWal {
 public:
  /// Creates `dir` (parents included), writes the meta file and the initial
  /// epoch-0 snapshot, and opens a fresh log: the session's opening state is
  /// durable before open_session acknowledges.
  static std::unique_ptr<SessionWal> create(std::string dir,
                                            const DurabilityConfig& config,
                                            PartId num_parts,
                                            const FitnessParams& fitness,
                                            const Graph& graph,
                                            const Assignment& assignment);

  /// Everything recovery needs from one session directory: the snapshot
  /// state, the records to replay (epochs > snapshot_epoch, stale records
  /// skipped), and the reopened WAL positioned after the last valid record.
  struct Recovered {
    std::unique_ptr<SessionWal> wal;
    PartId num_parts = 2;
    FitnessParams fitness;
    Graph graph;
    Assignment assignment;
    std::uint64_t snapshot_epoch = 0;
    std::vector<WalRecord> records;
    bool torn_tail = false;
  };
  static Recovered recover(std::string dir, const DurabilityConfig& config);

  ~SessionWal();
  SessionWal(const SessionWal&) = delete;
  SessionWal& operator=(const SessionWal&) = delete;

  /// Appends one record (with retry/backoff on transient I/O errors) and
  /// applies the fsync policy.  `damage` feeds the compaction accumulator.
  /// Throws IoError once retries are exhausted — the caller must then treat
  /// the session's log as broken (fail-stop) or surface the error.
  void append(WalRecordType type, std::uint64_t epoch, std::uint32_t flags,
              const std::string& payload, VertexId damage);

  /// decide_compaction over the current log accumulators.
  bool should_compact() const;

  /// Checkpoints (graph, assignment) as the epoch-`epoch` snapshot and
  /// truncates the log (see the crash-consistency argument above).  Throws
  /// IoError on failure; the log is then still intact and the caller simply
  /// retries at the next trigger.
  void compact(std::uint64_t epoch, const Graph& graph,
               const Assignment& assignment);

  /// Forces an fsync of any unsynced appends (used at close).
  void sync();

  const std::string& dir() const { return dir_; }
  WalStats stats() const { return stats_; }

 private:
  SessionWal(std::string dir, DurabilityConfig config);

  void open_log(std::uint64_t resume_at, bool truncate_all);
  void append_frame_once(const std::string& frame);
  void fsync_log();
  void write_snapshot_files(std::uint64_t epoch, const Graph& graph,
                            const Assignment& assignment);

  std::string dir_;
  DurabilityConfig config_;
  int fd_ = -1;
  int records_since_fsync_ = 0;
  WalStats stats_;
};

}  // namespace gapart
