// Per-session durability: a CRC-framed write-ahead delta log with snapshot
// compaction.
//
// Every accepted GraphDelta is serialized (graph/delta_codec: O(damage)
// bytes) and appended as one framed record — with the number of verification
// rounds the repair actually admitted, so replay re-runs the *same*
// deterministic pipeline the live session ran, wall clock removed — before
// the synchronous repair acknowledges to the client.  Adopted background
// refinements are logged too (full assignment; they are rare and already
// O(V + E) in compute).  When the damage accumulated in the log crosses the
// compaction policy's threshold, the session state is checkpointed through
// the existing Chaco/METIS writers (temp file + rename + fsync) and the log
// is truncated.
//
// On-disk layout of one session directory:
//
//   meta               session identity: num_parts, objective, lambda
//   snap-<E>.graph     checkpoint at update epoch E (Chaco format)
//   snap-<E>.part      its partition (METIS format)
//   CURRENT            the epoch E of the authoritative snapshot
//   wal.log            framed records with epochs > E (plus possibly stale
//                      records <= E left by a compaction that crashed
//                      between the CURRENT rename and the log truncation —
//                      replay skips them)
//
// Crash-consistency argument: CURRENT is only renamed over after the new
// snapshot files are fully written and fsynced, and the log is only
// truncated after CURRENT points at the new epoch.  Whatever the crash
// point, CURRENT names a complete snapshot and the log holds every record
// past it.  A torn final record (the crash hit mid-append) is detected by
// its CRC frame and dropped; a bad CRC *followed by valid records* is real
// corruption and surfaces as WalCorruptError — recovery never guesses.
//
// Thread-safety: none.  A SessionWal belongs to one PartitionSession and
// every call is made under that session's lock (append/compaction order must
// equal apply order, so this is not a restriction).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/backoff.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/types.hpp"
#include "service/refine_policy.hpp"

namespace gapart {

/// The log holds records that cannot all be trusted: a bad frame with valid
/// records after it.  Torn *tails* are not errors (see file comment).
class WalCorruptError : public IoError {
 public:
  explicit WalCorruptError(const std::string& what) : IoError(what) {}
};

/// When acknowledged updates become durable.
enum class FsyncPolicy {
  kNever,        ///< Leave it to the OS page cache (ack != durable).
  kEveryRecord,  ///< fsync before every acknowledgement (ack == durable).
  kEveryN,       ///< fsync every fsync_interval records (bounded loss window).
};

const char* fsync_policy_name(FsyncPolicy p);

struct DurabilityConfig {
  /// Root directory for session subdirectories; empty disables durability.
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::kEveryRecord;
  /// FsyncPolicy::kEveryN: records between fsyncs.
  int fsync_interval = 32;
  /// When to fold the log into a fresh snapshot (refine_policy).
  CompactionPolicy compaction;
  /// Retry schedule for transient log I/O failures.
  BackoffPolicy io_retry;
  /// Replicated sessions only (a WalShipGate is attached): how many log
  /// bytes compaction may retain waiting for the shipper to catch up.  Past
  /// this bound compaction proceeds anyway and the slow follower pays a
  /// snapshot resync.  0 = wait for the shipper unconditionally.
  std::uint64_t ship_retain_bytes = 32ull << 20;

  bool enabled() const { return !dir.empty(); }
};

enum class WalRecordType : std::uint8_t {
  kDelta = 1,   ///< payload = delta_codec bytes; flags = verify rounds run
  kRefine = 2,  ///< payload = adopted assignment (u64 n + n * i32 parts)
};

struct WalRecord {
  WalRecordType type = WalRecordType::kDelta;
  /// The session update epoch this record belongs to: a kDelta record's
  /// epoch is the epoch the delta produced; a kRefine record's epoch is the
  /// epoch whose state the refinement replaced.
  std::uint64_t epoch = 0;
  /// kDelta: verification rounds the live repair admitted (replay runs
  /// exactly these instead of consulting the wall clock).
  std::uint32_t flags = 0;
  std::string payload;
};

struct WalReadResult {
  std::vector<WalRecord> records;
  /// The final record was torn (partial frame or bad CRC at the very tail).
  bool torn_tail = false;
  /// Byte length of the valid prefix — where appends may resume.
  std::uint64_t valid_bytes = 0;
};

/// Parses a log file.  A missing file reads as empty.  Throws
/// WalCorruptError when an invalid frame is followed by valid records, and
/// IoError on unreadable files.
WalReadResult read_log_file(const std::string& path);

/// Byte offset of the first record frame in wal.log (the file header).
constexpr std::uint64_t kWalLogHeaderBytes = 8;

/// One replication-shipper read over a *live* log file.
struct WalTail {
  std::vector<WalRecord> records;
  /// Absolute end offset of each record (aligned with `records`), so the
  /// caller can resume — or stop mid-batch under backpressure — exactly at a
  /// frame boundary.
  std::vector<std::uint64_t> ends;
  /// Where parsing stopped; equals `offset` when nothing was read.
  std::uint64_t end_offset = 0;
};

/// Parses frames from byte `offset` (>= kWalLogHeaderBytes), stopping at the
/// first frame whose end would exceed `limit_bytes` (the caller passes the
/// durable offset so a follower never gets ahead of the leader's fsync) or at
/// the first invalid frame.  Unlike read_log_file, an invalid frame is never
/// fatal here: on a live log it is an append still in flight, picked up by
/// the next poll.  A missing file — or `offset` past the current size, which
/// happens when compaction truncated the log under the shipper — reads as
/// empty and the caller resolves it via the snapshot epoch.
WalTail read_log_tail(const std::string& path, std::uint64_t offset,
                      std::uint64_t limit_bytes);

/// Compaction/shipping coordination for a replicated session: the shipper
/// publishes the log offset it has consumed, and compaction — which
/// truncates the log — defers while the shipper is behind, bounded by
/// DurabilityConfig::ship_retain_bytes.  Past the bound compaction proceeds
/// and the slow follower pays a snapshot resync instead of the leader paying
/// unbounded log retention.
struct WalShipGate {
  std::atomic<std::uint64_t> consumed_offset{0};
};

/// Serializes the kRefine payload.
std::string encode_assignment(const Assignment& assignment);
Assignment decode_assignment(const std::string& payload);

/// Cumulative durability counters for one session (scraped into
/// SessionStats/ServiceStats and the soak JSON).
struct WalStats {
  std::uint64_t appends = 0;
  std::uint64_t append_retries = 0;  ///< transient I/O errors retried away
  std::uint64_t fsyncs = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t compactions = 0;
  std::uint64_t compaction_failures = 0;  ///< kept the log; retried later
  double last_compaction_seconds = 0.0;
  std::uint64_t snapshot_epoch = 0;
  /// PartitionState::content_hash() of the snapshot state (persisted in
  /// CURRENT) — what a follower must match when it compacts in lockstep.
  std::uint64_t snapshot_digest = 0;
  std::uint64_t log_records = 0;
  std::uint64_t log_bytes = 0;
  std::int64_t log_damage = 0;
  /// Absolute wal.log offset through which records are fsynced.  The
  /// replication shipper caps its tail reads here: a follower must never
  /// hold records the leader could still lose.
  std::uint64_t durable_bytes = 0;
};

class SessionWal {
 public:
  /// Creates `dir` (parents included), writes the meta file and the initial
  /// snapshot, and opens a fresh log: the session's opening state is durable
  /// before open_session acknowledges.  `snapshot_epoch` is 0 for a new
  /// session; a replication follower bootstrapping from a mid-life leader
  /// snapshot passes the leader's epoch (and its state digest) so its own
  /// recovery resumes from the same point.
  static std::unique_ptr<SessionWal> create(std::string dir,
                                            const DurabilityConfig& config,
                                            PartId num_parts,
                                            const FitnessParams& fitness,
                                            const Graph& graph,
                                            const Assignment& assignment,
                                            std::uint64_t snapshot_epoch = 0,
                                            std::uint64_t snapshot_digest = 0);

  /// Everything recovery needs from one session directory: the snapshot
  /// state, the records to replay (epochs > snapshot_epoch, stale records
  /// skipped), and the reopened WAL positioned after the last valid record.
  struct Recovered {
    std::unique_ptr<SessionWal> wal;
    PartId num_parts = 2;
    FitnessParams fitness;
    Graph graph;
    Assignment assignment;
    std::uint64_t snapshot_epoch = 0;
    std::uint64_t snapshot_digest = 0;
    std::vector<WalRecord> records;
    bool torn_tail = false;
  };
  static Recovered recover(std::string dir, const DurabilityConfig& config);

  ~SessionWal();
  SessionWal(const SessionWal&) = delete;
  SessionWal& operator=(const SessionWal&) = delete;

  /// Appends one record (with retry/backoff on transient I/O errors) and
  /// applies the fsync policy.  `damage` feeds the compaction accumulator.
  /// Throws IoError once retries are exhausted — the caller must then treat
  /// the session's log as broken (fail-stop) or surface the error.
  void append(WalRecordType type, std::uint64_t epoch, std::uint32_t flags,
              const std::string& payload, VertexId damage);

  /// decide_compaction over the current log accumulators.
  bool should_compact() const;

  /// Checkpoints (graph, assignment) as the epoch-`epoch` snapshot and
  /// truncates the log (see the crash-consistency argument above).  Throws
  /// IoError on failure; the log is then still intact and the caller simply
  /// retries at the next trigger.  `digest` is the state's content hash,
  /// persisted alongside the epoch and exchanged with replication followers
  /// at this snapshot boundary.
  void compact(std::uint64_t epoch, const Graph& graph,
               const Assignment& assignment, std::uint64_t digest = 0);

  /// Forces an fsync of any unsynced appends (used at close).
  void sync();

  /// Attaches the compaction/shipping gate for a replicated session (see
  /// WalShipGate).  Pass nullptr to detach.
  void set_ship_gate(std::shared_ptr<WalShipGate> gate) {
    ship_gate_ = std::move(gate);
  }

  const std::string& dir() const { return dir_; }
  WalStats stats() const { return stats_; }

 private:
  SessionWal(std::string dir, DurabilityConfig config);

  void open_log(std::uint64_t resume_at, bool truncate_all);
  void append_frame_once(const std::string& frame);
  void fsync_log();
  void write_snapshot_files(std::uint64_t epoch, const Graph& graph,
                            const Assignment& assignment,
                            std::uint64_t digest);

  std::string dir_;
  DurabilityConfig config_;
  int fd_ = -1;
  int records_since_fsync_ = 0;
  std::uint64_t file_bytes_ = 0;  ///< current wal.log size (header + frames)
  std::shared_ptr<WalShipGate> ship_gate_;
  WalStats stats_;
};

}  // namespace gapart
