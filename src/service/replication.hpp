// Leader/follower replication of a PartitionService over a Transport.
//
// The leader's durability layer already writes, per session, a CRC-framed
// WAL whose replay is bit-deterministic (service/wal.hpp).  Replication
// reuses that artifact wholesale: a ReplicationShipper tails each session's
// wal.log — never past the leader's fsynced offset, so a follower can never
// hold an update the leader could still lose — and streams the records to a
// ReplicationFollower, which pushes them through the SAME deterministic
// repair pipeline recovery uses (replay_wal_record), logging each one to its
// own WAL first.  A follower is therefore just "recovery that never stops":
// continuous tail-replay, including snapshot compactions applied in lockstep
// with the leader's.
//
// Wire protocol (GARP frames, CRC-framed like the WAL):
//
//   kOpenSession   full state bootstrap: session config + Chaco graph +
//                  METIS partition at epoch E, plus the leader's content
//                  digest.  Sent on attach and on resync (a follower that
//                  fell behind a compaction).  Accepted at any seq above the
//                  follower's applied seq — it is a full reset.
//   kRecord        one WAL record (kDelta or kRefine), per-session seq.
//                  The follower accepts exactly applied_seq + 1 and
//                  enforces the WAL epoch chain (kDelta: epoch + 1;
//                  kRefine: current epoch); anything else is a duplicate or
//                  a gap, dropped and repaired by the leader's resume.
//   kCompact       the leader compacted at epoch E with digest D: the
//                  follower compares D against its own state digest —
//                  mismatch is exact divergence detection and fail-stops
//                  with ReplicationDivergedError — then compacts in
//                  lockstep.
//   kAck           follower -> leader: highest applied (seq, epoch), under
//                  the follower's accepted generation.
//
// Failure matrix (drop / dup / reorder / truncate / partition — injectable
// via common/fault_injection at the transport seam):
//   * CRC rejects truncated or corrupted frames.
//   * Per-session monotone seq rejects duplicates and reorders; gaps are
//     dropped and heal when the leader resumes from the acked offset after
//     `resume_after_stalled_pumps` pumps without ack progress.
//   * A slow follower exerts backpressure through the bounded unacked
//     queue; leader-side compaction defers for it via WalShipGate, bounded
//     by ship_retain_bytes — past that the follower pays a snapshot resync.
//
// Fencing: every frame carries the leader's generation (a monotone term,
// persisted in a GENERATION file on both sides).  Promotion bumps the
// follower's generation, so a deposed leader's late frames — lower
// generation — are rejected, and the deposed leader learns of its demotion
// from the first ack carrying a higher generation (split-brain prevention).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/service.hpp"
#include "service/transport.hpp"

namespace gapart {

class ReplicationError : public Error {
 public:
  explicit ReplicationError(const std::string& what) : Error(what) {}
};

/// Exact divergence detected: the follower's content digest differs from
/// the leader's at a snapshot boundary.  Fail-stop — a diverged replica
/// must never be promoted.
class ReplicationDivergedError : public ReplicationError {
 public:
  explicit ReplicationDivergedError(const std::string& what)
      : ReplicationError(what) {}
};

// --- Wire frames (exposed for tests: tamper/fuzz the codec directly) -------

enum class RepFrameType : std::uint8_t {
  kOpenSession = 1,
  kRecord = 2,
  kCompact = 3,
  kAck = 4,
};

struct RepFrame {
  RepFrameType type = RepFrameType::kRecord;
  /// kRecord: the WalRecordType being carried.
  std::uint8_t sub = 0;
  std::uint64_t generation = 0;  ///< leader fencing term (follower's on acks)
  std::uint64_t session = 0;     ///< SessionId
  std::uint64_t seq = 0;         ///< per-session monotone sequence number
  std::uint64_t epoch = 0;       ///< record epoch / open epoch / applied epoch
  std::uint32_t flags = 0;       ///< kDelta: admitted verification rounds
  std::string payload;
};

std::string encode_rep_frame(const RepFrame& frame);
/// nullopt on any framing/CRC violation — the caller counts and drops.
std::optional<RepFrame> decode_rep_frame(const std::string& wire);

/// kOpenSession payload: everything a follower needs to (re)build a session.
struct OpenPayload {
  PartId num_parts = 2;
  FitnessParams fitness;
  std::uint64_t digest = 0;  ///< leader content hash at the open epoch
  std::string graph_text;    ///< Chaco format (graph/io.hpp)
  std::string part_text;     ///< METIS format
};

std::string encode_open_payload(const OpenPayload& open);
OpenPayload decode_open_payload(const std::string& payload);  // throws

/// The GENERATION fencing term persisted in a service's durability dir
/// (0 when absent).  Exposed for tests and the chaos tooling.
std::uint64_t read_generation_file(const std::string& dir);
void write_generation_file(const std::string& dir, std::uint64_t generation);

// --- Leader side ------------------------------------------------------------

struct ShipperConfig {
  /// This leader's fencing term.  Must be >= the GENERATION file in the
  /// service's durability dir (a deposed leader restarting with a stale
  /// term is refused at construction).
  std::uint64_t generation = 1;
  /// Bounded per-session ship queue (unacked + unsent frames).  When full
  /// the shipper stops reading the log — backpressure, never frame loss —
  /// and leader-side compaction starts counting against ship_retain_bytes.
  std::size_t max_unacked_frames = 256;
  /// Pumps without ack progress (while frames are outstanding) before the
  /// shipper re-sends everything unacked from the acked offset.
  int resume_after_stalled_pumps = 3;
  /// Cap on log bytes read per session per pump (keeps one pump bounded).
  std::uint64_t max_read_bytes_per_pump = 4ull << 20;
};

struct ShipperStats {
  int sessions_attached = 0;
  std::uint64_t generation = 0;
  std::uint64_t opens_shipped = 0;
  std::uint64_t records_shipped = 0;
  std::uint64_t compacts_shipped = 0;
  std::uint64_t frames_sent = 0;  ///< incl. resume re-sends
  std::uint64_t acks_received = 0;
  std::uint64_t send_failures = 0;     ///< TransportError on a send
  std::uint64_t resumes = 0;           ///< stalled -> re-sent from acked
  std::uint64_t snapshot_resyncs = 0;  ///< follower re-bootstrapped
  std::uint64_t backpressure_stalls = 0;
  std::uint64_t frames_unacked = 0;
  /// A follower acked with a higher generation: this leader was deposed and
  /// has stopped shipping (its WAL keeps growing locally; operator decides).
  bool deposed = false;
  /// Replication lag in epochs (leader epoch - acked epoch), sampled once
  /// per session per pump over a sliding window.
  double lag_epochs_p50 = 0.0;
  double lag_epochs_p99 = 0.0;
};

/// Tails every session of a (durable) leader service and streams WAL
/// records over one Transport.  Drive it with pump() — deterministic, used
/// by tests and the soak — or start()/stop() a background thread.
class ReplicationShipper {
 public:
  /// Persists config.generation into the leader's GENERATION file; throws
  /// ReplicationError when the file already holds a larger term.
  ReplicationShipper(PartitionService& service, Transport& link,
                     ShipperConfig config = {});
  ~ReplicationShipper();

  ReplicationShipper(const ReplicationShipper&) = delete;
  ReplicationShipper& operator=(const ReplicationShipper&) = delete;

  /// One shipping round: drain acks, attach new sessions, observe
  /// compactions (lockstep or resync), read durable log tails, send.
  /// Returns frames sent.  Transport failures are absorbed into stats and
  /// retried next pump.  No-op once deposed.
  int pump();

  /// True when every attached session's acked seq has caught up with
  /// everything shipped AND nothing remains unread in the durable logs.
  bool drained() const;

  /// Background pump loop every `interval_seconds`.
  void start(double interval_seconds);
  void stop();

  ShipperStats stats() const;
  /// Highest epoch the follower has acknowledged for one session (0 when
  /// never acked or unknown).
  std::uint64_t acked_epoch(SessionId id) const;

 private:
  struct SessionShip {
    bool attached = false;
    bool needs_resync = false;
    std::uint64_t next_seq = 1;
    std::uint64_t acked_seq = 0;
    std::uint64_t acked_epoch = 0;
    std::uint64_t file_offset = kWalLogHeaderBytes;
    /// Highest record epoch read (or covered by the shipped open) so far.
    /// The tail filter hangs off it: a kDelta ships iff its epoch is
    /// read_epoch + 1 (the WAL chain), a kRefine iff it equals read_epoch —
    /// anything else is a stale-prefix record already covered by the
    /// snapshot.  kRefine at the open epoch is deliberately shipped even
    /// when the snapshot may already include it: re-applying a full
    /// assignment is idempotent, and the ambiguity (adopted just before vs
    /// just after the open was captured) is undecidable from the log.
    std::uint64_t read_epoch = 0;
    std::uint64_t shipped_snapshot_epoch = 0;
    struct Queued {
      std::uint64_t seq = 0;
      std::string wire;
      /// Telemetry stamp of the most recent send (0 = never sent): acking
      /// this frame records ship->ack RTT.  A resume re-send re-stamps, so
      /// the RTT always measures the delivery that actually got acked.
      double sent_at = 0.0;
    };
    std::deque<Queued> queue;
    std::size_t sent_upto = 0;  ///< queue index of the first unsent frame
    int stalled_pumps = 0;
    bool progressed = false;  ///< acks advanced during the current pump
    std::shared_ptr<WalShipGate> gate;
  };

  void drain_acks();
  void resync(SessionId id, SessionShip& ship);
  void observe_compaction(SessionId id, SessionShip& ship,
                          const WalStats& wal);
  void read_tail(SessionId id, SessionShip& ship, const WalStats& wal);
  int send_pending(SessionShip& ship);
  void enqueue(SessionShip& ship, RepFrame frame);

  PartitionService& service_;
  Transport& link_;
  ShipperConfig config_;

  mutable std::mutex mu_;
  std::unordered_map<SessionId, SessionShip> ships_;
  ShipperStats stats_;
  std::vector<double> lag_samples_;
  std::size_t lag_next_ = 0;

  std::thread thread_;
  std::atomic<bool> running_{false};
};

// --- Follower side ----------------------------------------------------------

struct FollowerConfig {
  /// Template for replica sessions (budgets, policy); identity fields come
  /// from each open frame.  Background refinement on a follower service
  /// should be off — the follower replays the leader's decisions.
  SessionConfig base;
  /// Floor for the accepted fencing term (the GENERATION file, when
  /// present and larger, wins).
  std::uint64_t generation = 0;
};

struct FollowerStats {
  int sessions = 0;
  std::uint64_t generation = 0;  ///< highest leader term accepted
  std::uint64_t frames_received = 0;
  std::uint64_t opens_applied = 0;
  std::uint64_t records_applied = 0;
  std::uint64_t compacts_applied = 0;
  std::uint64_t digests_verified = 0;  ///< snapshot-boundary digest matches
  std::uint64_t acks_sent = 0;
  std::uint64_t duplicates_dropped = 0;  ///< seq <= applied (dup/reorder)
  std::uint64_t gaps_dropped = 0;        ///< seq jumped ahead (drop upstream)
  std::uint64_t fenced_rejected = 0;     ///< stale-generation frames
  std::uint64_t corrupt_rejected = 0;    ///< framing/CRC failures
  std::uint64_t apply_failures = 0;      ///< injected I/O or alloc faults
  bool diverged = false;
  bool promoted = false;
};

/// One promoted session's final position.
struct PromotedSession {
  SessionId id = 0;
  std::uint64_t epoch = 0;
  std::uint64_t digest = 0;
};

struct PromotionReport {
  std::uint64_t generation = 0;  ///< the new term this service writes under
  double seconds = 0.0;          ///< drain + verify + fence time
  std::vector<PromotedSession> sessions;
};

/// Continuous tail-replay of a leader's stream into a local
/// PartitionService.  The service should be configured with
/// background_refinement = false and compaction disabled (zero thresholds)
/// — the follower compacts in lockstep with the leader, not by local
/// policy.
class ReplicationFollower {
 public:
  ReplicationFollower(PartitionService& service, Transport& link,
                      FollowerConfig config = {});

  ReplicationFollower(const ReplicationFollower&) = delete;
  ReplicationFollower& operator=(const ReplicationFollower&) = delete;

  /// recover() generalized: rebuilds any replica state already on the
  /// follower's disk (so a restarted follower resumes from its own WAL,
  /// not from scratch) and enters tail mode.  Returns the per-session
  /// recovery reports (empty on a fresh follower).
  std::vector<RecoveryReport> start_follower();

  /// Applies every frame currently available on the link (waiting up to
  /// `timeout_seconds` for the first one) and acks progress.  Returns
  /// frames processed.  Throws ReplicationDivergedError on a digest
  /// mismatch at a snapshot boundary (fail-stop; `diverged` stays set).
  int pump(double timeout_seconds = 0.0);

  /// Failover: drains the link (applies everything already shipped),
  /// verifies every session's assignment, bumps + persists the fencing
  /// generation, and opens the service for writes.  After promotion any
  /// late frame from the deposed leader is rejected by the fence.
  PromotionReport promote();

  FollowerStats stats() const;
  /// Applied epoch of one session (0 when unknown).
  std::uint64_t applied_epoch(SessionId id) const;

 private:
  struct Replica {
    std::uint64_t applied_seq = 0;
    std::uint64_t applied_epoch = 0;
  };

  void handle_frame(const RepFrame& frame);
  void ack(SessionId id, const Replica& replica);
  void persist_generation();

  PartitionService& service_;
  Transport& link_;
  FollowerConfig config_;

  mutable std::mutex mu_;
  std::unordered_map<SessionId, Replica> replicas_;
  std::uint64_t generation_ = 0;
  FollowerStats stats_;
  bool started_ = false;
};

}  // namespace gapart
