#include "service/refine_policy.hpp"

#include <algorithm>
#include <cmath>

namespace gapart {

const char* refine_depth_name(RefineDepth d) {
  switch (d) {
    case RefineDepth::kNone:
      return "none";
    case RefineDepth::kLight:
      return "light";
    case RefineDepth::kDeep:
      return "deep";
  }
  return "unknown";
}

double fitness_degradation(double current_fitness, double baseline_fitness) {
  if (current_fitness >= baseline_fitness) return 0.0;
  // Both fitnesses are <= 0 (negated cost); normalize on the baseline's
  // magnitude, guarding the perfect-partition baseline of 0.
  const double scale = std::max(1.0, std::fabs(baseline_fitness));
  return (baseline_fitness - current_fitness) / scale;
}

RefineDepth decide_refinement(const RefinePolicyConfig& config,
                              const RefineSignals& signals) {
  if (signals.refine_in_flight) return RefineDepth::kNone;

  const double degradation = fitness_degradation(signals.current_fitness,
                                                 signals.baseline_fitness);
  const bool watermark = config.quality_watermark > 0.0 &&
                         degradation > config.quality_watermark;
  const bool stale = config.staleness_updates > 0 &&
                     signals.updates_since_refine >= config.staleness_updates;
  const bool damaged = config.damage_threshold > 0 &&
                       signals.damage_since_refine >= config.damage_threshold;
  if (!watermark && !stale && !damaged) return RefineDepth::kNone;

  if (config.allow_deep) {
    const bool deep_damage =
        config.deep_damage_threshold > 0 &&
        signals.damage_since_deep >= config.deep_damage_threshold;
    const bool deep_watermark =
        config.quality_watermark > 0.0 && config.deep_watermark_factor > 0.0 &&
        degradation > config.quality_watermark * config.deep_watermark_factor;
    if (deep_damage || deep_watermark) return RefineDepth::kDeep;
  }
  return RefineDepth::kLight;
}

bool route_refinement_parallel(const RefinePolicyConfig& config,
                               VertexId num_vertices, int pool_threads) {
  return config.parallel_refine_min_vertices > 0 &&
         num_vertices >= config.parallel_refine_min_vertices &&
         pool_threads > 1;
}

bool route_deep_vcycle(const RefinePolicyConfig& config,
                       VertexId num_vertices) {
  return config.vcycle_min_vertices > 0 &&
         num_vertices >= config.vcycle_min_vertices;
}

bool decide_compaction(const CompactionPolicy& policy,
                       const CompactionSignals& signals) {
  if (signals.log_records < policy.min_records) return false;
  const bool damaged = policy.damage_threshold > 0 &&
                       signals.log_damage >= policy.damage_threshold;
  const bool oversized = policy.bytes_threshold > 0 &&
                         signals.log_bytes >= policy.bytes_threshold;
  return damaged || oversized;
}

const char* admit_decision_name(AdmitDecision d) {
  switch (d) {
    case AdmitDecision::kAdmit:
      return "admit";
    case AdmitDecision::kShedVerification:
      return "shed_verification";
    case AdmitDecision::kReject:
      return "reject";
  }
  return "unknown";
}

AdmitDecision decide_admission(const OverloadConfig& config,
                               const OverloadSignals& signals) {
  if (config.max_inflight_repairs > 0 &&
      signals.inflight_repairs > config.max_inflight_repairs) {
    return AdmitDecision::kReject;
  }
  if (config.shed_verification_backlog > 0 &&
      signals.pool_backlog >= config.shed_verification_backlog) {
    return AdmitDecision::kShedVerification;
  }
  return AdmitDecision::kAdmit;
}

bool defer_refinement(const OverloadConfig& config, int pool_backlog) {
  return config.defer_refinement_backlog > 0 &&
         pool_backlog >= config.defer_refinement_backlog;
}

}  // namespace gapart
