// Umbrella header: the full public API of gapart.
//
// gapart reproduces "Genetic Algorithms for Graph Partitioning and
// Incremental Graph Partitioning" (Maini, Mehrotra, Mohan & Ranka, Proc.
// IEEE Supercomputing 1994): the KNUX/DKNUX knowledge-based crossover
// operators, the distributed-population GA, incremental repartitioning, and
// every substrate the paper's evaluation depends on (FE-style meshes,
// recursive spectral bisection, index-based partitioning, classical
// baselines).
#pragma once

#include "common/assert.hpp"    // IWYU pragma: export
#include "common/cli.hpp"       // IWYU pragma: export
#include "common/executor.hpp"  // IWYU pragma: export
#include "common/rng.hpp"       // IWYU pragma: export
#include "common/stats.hpp"     // IWYU pragma: export
#include "common/table.hpp"     // IWYU pragma: export
#include "common/timer.hpp"     // IWYU pragma: export

#include "graph/coarsen.hpp"          // IWYU pragma: export
#include "graph/components.hpp"       // IWYU pragma: export
#include "graph/delaunay.hpp"         // IWYU pragma: export
#include "graph/generators.hpp"       // IWYU pragma: export
#include "graph/graph.hpp"            // IWYU pragma: export
#include "graph/io.hpp"               // IWYU pragma: export
#include "graph/mesh.hpp"             // IWYU pragma: export
#include "graph/partition.hpp"        // IWYU pragma: export
#include "graph/recursive_split.hpp"  // IWYU pragma: export
#include "graph/subgraph.hpp"         // IWYU pragma: export
#include "graph/types.hpp"            // IWYU pragma: export

#include "spectral/eigen.hpp"       // IWYU pragma: export
#include "spectral/fiedler.hpp"     // IWYU pragma: export
#include "spectral/lanczos.hpp"     // IWYU pragma: export
#include "spectral/laplacian.hpp"   // IWYU pragma: export
#include "spectral/multilevel.hpp"  // IWYU pragma: export
#include "spectral/rsb.hpp"         // IWYU pragma: export

#include "sfc/ibp.hpp"       // IWYU pragma: export
#include "sfc/indexing.hpp"  // IWYU pragma: export

#include "baselines/greedy_incremental.hpp"  // IWYU pragma: export
#include "baselines/kl.hpp"                  // IWYU pragma: export
#include "baselines/rcb.hpp"                 // IWYU pragma: export
#include "baselines/rgb.hpp"                 // IWYU pragma: export

#include "core/contracted_ga.hpp"  // IWYU pragma: export
#include "core/crossover.hpp"      // IWYU pragma: export
#include "core/dpga.hpp"           // IWYU pragma: export
#include "core/eval.hpp"           // IWYU pragma: export
#include "core/ga_engine.hpp"      // IWYU pragma: export
#include "core/graph_delta.hpp"    // IWYU pragma: export
#include "core/hill_climb.hpp"     // IWYU pragma: export
#include "core/incremental.hpp"    // IWYU pragma: export
#include "core/individual.hpp"     // IWYU pragma: export
#include "core/init.hpp"           // IWYU pragma: export
#include "core/mutation.hpp"       // IWYU pragma: export
#include "core/presets.hpp"        // IWYU pragma: export
#include "core/selection.hpp"      // IWYU pragma: export
#include "core/topology.hpp"       // IWYU pragma: export
#include "core/vcycle_ga.hpp"      // IWYU pragma: export
