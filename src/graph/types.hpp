// Fundamental identifier and geometry types shared by all gapart modules.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace gapart {

/// Vertex identifier: dense 0-based index into CSR arrays.
using VertexId = std::int32_t;

/// Part (bin / processor) identifier: dense 0-based index.
using PartId = std::int32_t;

/// A candidate solution of the partitioning problem: assignment[v] is the
/// part that vertex v is mapped to.  This is exactly the paper's chromosome
/// representation ("the i-th element of an individual is j iff the i-th node
/// of the graph is allocated to the part labelled j").
using Assignment = std::vector<PartId>;

/// 2-D point used for mesh vertices and geometric partitioners.
struct Point2 {
  double x = 0.0;
  double y = 0.0;

  friend Point2 operator+(Point2 a, Point2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Point2 operator-(Point2 a, Point2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Point2 operator*(double s, Point2 p) { return {s * p.x, s * p.y}; }
  friend bool operator==(Point2 a, Point2 b) { return a.x == b.x && a.y == b.y; }
};

inline double dot(Point2 a, Point2 b) { return a.x * b.x + a.y * b.y; }
inline double cross(Point2 a, Point2 b) { return a.x * b.y - a.y * b.x; }
inline double squared_norm(Point2 p) { return dot(p, p); }
inline double squared_distance(Point2 a, Point2 b) {
  return squared_norm(a - b);
}

}  // namespace gapart
