// Dense per-part accumulator with O(1) logical clearing via version stamps.
//
// The pattern "zero a per-part array, accumulate edge weights over one
// vertex's neighbourhood, read a handful of entries back" is the inner loop
// of every local-search kernel (gain computation, greedy majority votes).  A
// naive `std::vector<double> acc(k)` per vertex costs an allocation plus an
// O(k) clear; this scratch is allocated once and "cleared" by bumping a
// 64-bit epoch, so a full scan is O(deg(v)) with zero allocations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace gapart {

class ConnectivityScratch {
 public:
  ConnectivityScratch() = default;
  explicit ConnectivityScratch(std::size_t num_slots) { resize(num_slots); }

  void resize(std::size_t num_slots) {
    sum_.assign(num_slots, 0.0);
    stamp_.assign(num_slots, 0);
    touched_.clear();
    touched_.reserve(num_slots);
    // Stamps start at 0, so the epoch must not: otherwise an add() before
    // the first begin() would take the accumulate branch and skip touched_.
    epoch_ = 1;
  }

  std::size_t size() const { return sum_.size(); }

  /// Starts a new accumulation; all previous sums become logically zero.
  void begin() {
    ++epoch_;
    touched_.clear();
  }

  /// sum[p] += w, stamping p as touched in the current epoch.
  void add(PartId p, double w) {
    const auto i = static_cast<std::size_t>(p);
    if (stamp_[i] != epoch_) {
      stamp_[i] = epoch_;
      sum_[i] = w;
      touched_.push_back(p);
    } else {
      sum_[i] += w;
    }
  }

  /// Accumulated weight for slot p this epoch (0 when untouched).
  double operator[](PartId p) const {
    const auto i = static_cast<std::size_t>(p);
    return stamp_[i] == epoch_ ? sum_[i] : 0.0;
  }

  /// Slots with at least one add() this epoch, in first-touch order.
  std::span<const PartId> touched() const { return touched_; }

 private:
  std::vector<double> sum_;
  std::vector<std::uint64_t> stamp_;
  std::vector<PartId> touched_;
  std::uint64_t epoch_ = 1;
};

/// Dense per-vertex flag set with O(1) logical clearing via version stamps —
/// the vertex-indexed sibling of ConnectivityScratch (worklist membership,
/// visited marks).  Allocated once per graph; clear() bumps the epoch, so a
/// frontier climb touching d vertices costs O(d), not an O(V) memset.
class EpochFlags {
 public:
  EpochFlags() = default;
  explicit EpochFlags(std::size_t num_slots) { resize(num_slots); }

  void resize(std::size_t num_slots) {
    // Stamps start at 0, so the epoch must not (see ConnectivityScratch).
    stamp_.assign(num_slots, 0);
    epoch_ = 1;
  }

  std::size_t size() const { return stamp_.size(); }

  /// Grows the slot count preserving current flags (new slots start false:
  /// their stamp is 0, which is never a live epoch).  Unlike resize() this
  /// does not touch existing slots, so growing by d costs O(d) amortized —
  /// what lets a long-lived PartitionState absorb graph growth without an
  /// O(V) scratch reset per delta.
  void grow(std::size_t num_slots) {
    if (num_slots > stamp_.size()) stamp_.resize(num_slots, 0);
  }

  /// All flags become logically false.
  void clear() { ++epoch_; }

  void set(VertexId v) { stamp_[static_cast<std::size_t>(v)] = epoch_; }
  void reset(VertexId v) { stamp_[static_cast<std::size_t>(v)] = 0; }
  bool test(VertexId v) const {
    return stamp_[static_cast<std::size_t>(v)] == epoch_;
  }

 private:
  std::vector<std::uint64_t> stamp_;
  std::uint64_t epoch_ = 1;
};

}  // namespace gapart
