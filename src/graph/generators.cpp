#include "graph/generators.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <vector>

#include "common/assert.hpp"
#include "graph/components.hpp"

namespace gapart {

Graph make_path(VertexId n) {
  GAPART_REQUIRE(n >= 1, "path needs at least one vertex");
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  std::vector<Point2> coords(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    coords[static_cast<std::size_t>(v)] = {static_cast<double>(v), 0.0};
  }
  b.set_coordinates(std::move(coords));
  return b.build();
}

Graph make_cycle(VertexId n) {
  GAPART_REQUIRE(n >= 3, "cycle needs at least three vertices");
  GraphBuilder b(n);
  for (VertexId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  std::vector<Point2> coords(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    const double theta =
        2.0 * std::numbers::pi * static_cast<double>(v) / static_cast<double>(n);
    coords[static_cast<std::size_t>(v)] = {std::cos(theta), std::sin(theta)};
  }
  b.set_coordinates(std::move(coords));
  return b.build();
}

Graph make_complete(VertexId n) {
  GAPART_REQUIRE(n >= 1, "complete graph needs at least one vertex");
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return b.build();
}

Graph make_star(VertexId n) {
  GAPART_REQUIRE(n >= 2, "star needs at least two vertices");
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

Graph make_grid(VertexId rows, VertexId cols) {
  GAPART_REQUIRE(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  GraphBuilder b(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  std::vector<Point2> coords(static_cast<std::size_t>(rows * cols));
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
      coords[static_cast<std::size_t>(id(r, c))] = {static_cast<double>(c),
                                                    static_cast<double>(r)};
    }
  }
  b.set_coordinates(std::move(coords));
  return b.build();
}

Graph make_torus(VertexId rows, VertexId cols) {
  GAPART_REQUIRE(rows >= 3 && cols >= 3,
                 "torus needs dimensions >= 3 to avoid duplicate edges");
  GraphBuilder b(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      b.add_edge(id(r, c), id(r, (c + 1) % cols));
      b.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return b.build();
}

Graph make_two_cliques(VertexId k) {
  GAPART_REQUIRE(k >= 2, "clique size must be at least 2");
  GraphBuilder b(2 * k);
  for (VertexId u = 0; u < k; ++u) {
    for (VertexId v = u + 1; v < k; ++v) {
      b.add_edge(u, v);
      b.add_edge(k + u, k + v);
    }
  }
  b.add_edge(k - 1, k);
  return b.build();
}

Graph make_clique_chain(VertexId m, VertexId k) {
  GAPART_REQUIRE(m >= 1 && k >= 2, "need at least one clique of size >= 2");
  GraphBuilder b(m * k);
  for (VertexId c = 0; c < m; ++c) {
    const VertexId base = c * k;
    for (VertexId u = 0; u < k; ++u) {
      for (VertexId v = u + 1; v < k; ++v) b.add_edge(base + u, base + v);
    }
    if (c + 1 < m) b.add_edge(base + k - 1, base + k);
  }
  return b.build();
}

Graph make_random_graph(VertexId n, double p, Rng& rng) {
  GAPART_REQUIRE(n >= 1, "random graph needs at least one vertex");
  GAPART_REQUIRE(p >= 0.0 && p <= 1.0, "edge probability must be in [0,1]");
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) b.add_edge(u, v);
    }
  }
  return b.build();
}

namespace {

std::vector<Point2> random_unit_square_points(VertexId n, Rng& rng) {
  std::vector<Point2> pts(static_cast<std::size_t>(n));
  for (auto& p : pts) p = {rng.uniform(), rng.uniform()};
  return pts;
}

void add_radius_edges(GraphBuilder& b, const std::vector<Point2>& pts,
                      double radius) {
  const double r2 = radius * radius;
  const auto n = static_cast<VertexId>(pts.size());
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (squared_distance(pts[static_cast<std::size_t>(u)],
                           pts[static_cast<std::size_t>(v)]) <= r2) {
        b.add_edge(u, v);
      }
    }
  }
}

}  // namespace

Graph make_random_geometric(VertexId n, double radius, Rng& rng) {
  GAPART_REQUIRE(n >= 1, "geometric graph needs at least one vertex");
  GAPART_REQUIRE(radius > 0.0, "radius must be positive");
  auto pts = random_unit_square_points(n, rng);
  GraphBuilder b(n);
  add_radius_edges(b, pts, radius);
  b.set_coordinates(std::move(pts));
  return b.build();
}

Graph make_connected_geometric(VertexId n, double radius, Rng& rng) {
  GAPART_REQUIRE(n >= 1, "geometric graph needs at least one vertex");
  auto pts = random_unit_square_points(n, rng);
  GraphBuilder b(n);
  add_radius_edges(b, pts, radius);
  b.set_coordinates(pts);

  // Stitch components together with the geometrically closest cross pair so
  // locality is preserved.
  Graph g = b.build();
  auto comp = connected_components(g);
  while (comp.count > 1) {
    double best = std::numeric_limits<double>::infinity();
    VertexId bu = 0;
    VertexId bv = 0;
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) {
        if (comp.label[static_cast<std::size_t>(u)] ==
            comp.label[static_cast<std::size_t>(v)]) {
          continue;
        }
        const double d = squared_distance(pts[static_cast<std::size_t>(u)],
                                          pts[static_cast<std::size_t>(v)]);
        if (d < best) {
          best = d;
          bu = u;
          bv = v;
        }
      }
    }
    b.add_edge(bu, bv);
    g = b.build();
    comp = connected_components(g);
  }
  return g;
}

}  // namespace gapart
