// Graph contraction: heavy-edge matching hierarchies and explicit cluster
// quotients.
//
// The paper's conclusion prescribes "a prior graph contraction step" before
// GA-partitioning very large graphs; this module implements it and is the
// substrate shared by the multilevel spectral partitioner, the contracted GA,
// and the V-cycle evolutionary engine (core/vcycle_ga.hpp).  Two contraction
// primitives produce the same CoarseLevel shape:
//
//   coarsen_once       randomized heavy-edge maximal matching — collapses
//                      matched pairs into coarse vertices;
//   contract_clusters  an explicit cluster labelling — collapses whole
//                      vertex groups at once (the quotient builder behind the
//                      KaFFPaE-style combine crossover, which contracts the
//                      regions where two parent partitions agree).
//
// Vertex weights add, parallel coarse edges merge with summed weights, and
// intra-cluster edges vanish, so every coarse cut, every part weight, and
// therefore every fitness value equals the corresponding fine quantity
// EXACTLY (fuzz-tested): the FitnessParams a caller evaluates with need no
// per-level adjustment.
//
// Hierarchies are deterministic under pool-width changes: coarsen_to draws
// exactly one value from the caller's Rng and derives one independent stream
// per level with Rng::fork, so the level-j matching never depends on how
// deep the hierarchy grows or on what the caller interleaves (PR 1's
// fork-per-task convention).
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/types.hpp"

namespace gapart {

/// One level of coarsening.
struct CoarseLevel {
  Graph graph;                         ///< the coarse graph
  std::vector<VertexId> fine_to_coarse;  ///< per fine vertex: coarse id
};

/// Builds the quotient of `g` under an explicit cluster labelling: cluster c
/// becomes coarse vertex c with the summed vertex weight (and mean
/// coordinates) of its members; edges between clusters merge with summed
/// weights; intra-cluster edges disappear.  `labels` maps every fine vertex
/// into [0, num_clusters) and every cluster must be non-empty.  Any partition
/// that is constant on each cluster has bitwise-equal part weights and cuts
/// on both graphs.
CoarseLevel contract_clusters(const Graph& g,
                              const std::vector<VertexId>& labels,
                              VertexId num_clusters);

/// Contracts `g` once via randomized heavy-edge matching.  When `respect` is
/// non-null (one part id per vertex), only vertices with equal labels are
/// matched, so `respect` stays constant on every coarse vertex and projects
/// onto the coarse graph with exactly its fine cut — the partition-respecting
/// coarsening a V-cycle refinement pass is built on.
CoarseLevel coarsen_once(const Graph& g, Rng& rng,
                         const Assignment* respect = nullptr);

/// A full coarsening hierarchy: levels[0] coarsens the input, levels.back()
/// is the coarsest.
struct CoarsenHierarchy {
  std::vector<CoarseLevel> levels;

  std::size_t num_levels() const { return levels.size(); }

  const Graph& coarsest(const Graph& original) const {
    return levels.empty() ? original : levels.back().graph;
  }

  /// Graph `level` prolongations above the finest: graph_at(original, 0) is
  /// the original graph, graph_at(original, num_levels()) the coarsest.
  const Graph& graph_at(const Graph& original, std::size_t level) const {
    return level == 0 ? original : levels[level - 1].graph;
  }

  /// Composed finest-to-coarsest map: one lookup per fine vertex replaces a
  /// chain of per-level projections.  Identity when the hierarchy is empty
  /// (`num_fine_vertices` sizes that case).
  std::vector<VertexId> flatten_map(VertexId num_fine_vertices) const;

  /// Lifts an assignment of the coarsest graph to the finest in ONE pass
  /// (via the composed map), skipping every intermediate assignment.  The
  /// projected partition has exactly the coarse cut and part weights.
  Assignment project_to_finest(const Assignment& coarse,
                               VertexId num_fine_vertices) const;
};

/// Coarsens until the coarse graph has <= target_vertices or shrinkage
/// stalls (< 10% reduction, e.g. star-like graphs).  Deterministic: consumes
/// exactly one draw from `rng` and runs level j on rng-state-derived
/// fork(j), so two calls from identically-positioned generators build
/// identical hierarchies — and a deeper target extends a shallower one's
/// levels rather than reshuffling them.  `respect` (optional) is threaded
/// through every level's matching (see coarsen_once).
CoarsenHierarchy coarsen_to(const Graph& g, VertexId target_vertices,
                            Rng& rng, const Assignment* respect = nullptr);

/// Lifts an assignment of the coarse graph back to the fine graph.
Assignment project_assignment(const Assignment& coarse,
                              const std::vector<VertexId>& fine_to_coarse);

/// Per-level refinement hook for uncoarsen_with_refinement.  `level` counts
/// the prolongations still below the state's graph: levels.size() on the
/// coarsest graph, 0 on the finest.
using LevelRefiner = std::function<void(PartitionState& state,
                                        std::size_t level)>;

/// The shared uncoarsening driver: refines `coarse` on the coarsest graph
/// (unless refine_coarsest is false), then projects it down one level at a
/// time, refining after every prolongation.  This is the projection loop
/// contracted_ga, spectral/multilevel, and the V-cycle engine all share.
/// `refine` may be null (pure projection).
Assignment uncoarsen_with_refinement(const Graph& g,
                                     const CoarsenHierarchy& hierarchy,
                                     Assignment coarse, PartId num_parts,
                                     const LevelRefiner& refine,
                                     bool refine_coarsest = true);

}  // namespace gapart
