// Graph contraction by heavy-edge matching.
//
// The paper's conclusion prescribes "a prior graph contraction step" before
// GA-partitioning very large graphs; this module implements it (and also
// feeds the multilevel spectral partitioner).  A randomized heavy-edge
// maximal matching collapses matched pairs into coarse vertices; vertex
// weights add, parallel coarse edges merge with summed weights, so every
// coarse cut equals the corresponding fine cut.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gapart {

/// One level of coarsening.
struct CoarseLevel {
  Graph graph;                         ///< the coarse graph
  std::vector<VertexId> fine_to_coarse;  ///< per fine vertex: coarse id
};

/// Contracts `g` once via randomized heavy-edge matching.
CoarseLevel coarsen_once(const Graph& g, Rng& rng);

/// A full coarsening hierarchy: levels[0] coarsens the input, levels.back()
/// is the coarsest.  Stops when the coarse graph has <= target_vertices or
/// shrinkage stalls (< 10% reduction).
struct CoarsenHierarchy {
  std::vector<CoarseLevel> levels;

  const Graph& coarsest(const Graph& original) const {
    return levels.empty() ? original : levels.back().graph;
  }
};

CoarsenHierarchy coarsen_to(const Graph& g, VertexId target_vertices,
                            Rng& rng);

/// Lifts an assignment of the coarse graph back to the fine graph.
Assignment project_assignment(const Assignment& coarse,
                              const std::vector<VertexId>& fine_to_coarse);

}  // namespace gapart
