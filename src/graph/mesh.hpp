// Finite-element-style synthetic meshes.
//
// The paper evaluates on small FE-type graphs (78–309 nodes) that were never
// published; this module regenerates equivalent workloads: a jittered point
// set sampled on a parametric 2-D domain is Delaunay-triangulated, triangles
// outside the domain (in concavities/holes) are filtered, and the triangle
// edges become the computational graph.  Exact node counts are guaranteed so
// each table row of the paper can be regenerated with its exact |V|.
//
// Incremental graph partitioning workloads (paper §4.2: "adding some number
// of nodes in a local area chosen randomly") are produced by densify(): new
// points are sampled inside a random disc of the domain and the mesh is
// re-triangulated with the original vertex identities preserved as a prefix.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/delaunay.hpp"
#include "graph/graph.hpp"

namespace gapart {

/// Supported domain shapes.  Canonical sizes (diameter ~ 1) are built in.
enum class DomainShape {
  kRectangle,  ///< unit square
  kDisc,       ///< disc of radius 0.5
  kEllipse,    ///< 2:1 ellipse
  kAnnulus,    ///< ring, outer radius 0.5, inner radius 0.22
  kLShape,     ///< unit square minus upper-right quadrant
};

const char* domain_name(DomainShape s);

/// A 2-D region given by an inside test and a bounding box.
class Domain {
 public:
  explicit Domain(DomainShape shape) : shape_(shape) {}

  DomainShape shape() const { return shape_; }
  bool contains(Point2 p) const;
  Point2 bbox_lo() const;
  Point2 bbox_hi() const;
  double area() const;

 private:
  DomainShape shape_;
};

/// A generated mesh: points, Delaunay triangles (filtered to the domain) and
/// the node-adjacency Graph (with coordinates attached).
struct Mesh {
  std::vector<Point2> points;
  std::vector<Triangle> triangles;
  Graph graph;
};

struct MeshOptions {
  /// Jitter amplitude as a fraction of the sample spacing (0 = structured).
  double jitter = 0.35;
};

/// Generates a mesh with exactly `num_nodes` vertices on `domain`.
/// Deterministic for a given rng state.  The resulting graph is connected.
Mesh generate_mesh(const Domain& domain, VertexId num_nodes, Rng& rng,
                   const MeshOptions& options = {});

/// Grows `base` by exactly `extra_nodes` new vertices placed inside a random
/// disc of the domain (local refinement), then re-triangulates.  Vertices
/// 0..|base|-1 keep their identity and coordinates; new vertices follow.
/// `radius_fraction` scales the refinement disc relative to the domain size.
Mesh densify_mesh(const Mesh& base, const Domain& domain, VertexId extra_nodes,
                  Rng& rng, double radius_fraction = 0.22);

/// Rebuilds the Graph (and filtered triangle set) for an arbitrary point set
/// on `domain`; shared by generate_mesh and densify_mesh.
Mesh triangulate_on_domain(std::vector<Point2> points, const Domain& domain);

/// The named mesh workloads used by the paper's tables.  Every distinct base
/// size in Tables 1–6 maps to a fixed (shape, seed) pair so all benches and
/// tests agree on the graphs.  Valid sizes: 78, 88, 98, 118, 139, 144, 167,
/// 183, 213, 243, 249, 279, 309 (others are generated on a default shape).
Mesh paper_mesh(VertexId num_nodes);

/// The incremental workload "base plus extra" from Tables 3 and 6: grows
/// paper_mesh(base_nodes) by extra_nodes with a deterministic seed.
Mesh paper_incremental_mesh(const Mesh& base, VertexId base_nodes,
                            VertexId extra_nodes);

/// Domain used by paper_mesh for the given size (exposed for tooling).
Domain paper_domain(VertexId num_nodes);

}  // namespace gapart
