// Undirected weighted graph in compressed sparse row (CSR) form.
//
// This is the substrate every partitioner in gapart operates on.  The storage
// is deliberately flat and contiguous (Per.16/Per.19 of the C++ Core
// Guidelines: compact data structures, predictable access): one offset array
// and parallel neighbour / edge-weight arrays.  Graphs are immutable after
// construction; use GraphBuilder (or the mesh generators) to create them.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace gapart {

class GraphBuilder;

class Graph {
 public:
  Graph() = default;

  VertexId num_vertices() const { return static_cast<VertexId>(xadj_.size()) - 1; }

  /// Number of undirected edges (each stored twice internally).
  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(adjncy_.size()) / 2;
  }

  std::int32_t degree(VertexId v) const {
    return xadj_[static_cast<std::size_t>(v) + 1] - xadj_[static_cast<std::size_t>(v)];
  }

  /// Neighbours of v, sorted ascending, no duplicates, no self-loops.
  std::span<const VertexId> neighbors(VertexId v) const {
    const auto begin = static_cast<std::size_t>(xadj_[static_cast<std::size_t>(v)]);
    const auto end = static_cast<std::size_t>(xadj_[static_cast<std::size_t>(v) + 1]);
    return {adjncy_.data() + begin, end - begin};
  }

  /// Edge weights parallel to neighbors(v).
  std::span<const double> edge_weights(VertexId v) const {
    const auto begin = static_cast<std::size_t>(xadj_[static_cast<std::size_t>(v)]);
    const auto end = static_cast<std::size_t>(xadj_[static_cast<std::size_t>(v) + 1]);
    return {ewgt_.data() + begin, end - begin};
  }

  double vertex_weight(VertexId v) const {
    return vwgt_[static_cast<std::size_t>(v)];
  }

  double total_vertex_weight() const { return total_vwgt_; }

  /// True when all vertex and edge weights equal 1 (the paper's setting).
  bool unit_weights() const { return unit_weights_; }

  bool has_edge(VertexId u, VertexId v) const;

  /// Weight of edge (u, v), or nullopt when absent.
  std::optional<double> edge_weight(VertexId u, VertexId v) const;

  bool has_coordinates() const { return !coords_.empty(); }
  const std::vector<Point2>& coordinates() const { return coords_; }
  Point2 coordinate(VertexId v) const { return coords_[static_cast<std::size_t>(v)]; }

  /// Raw CSR access for numerical kernels (Laplacian matvec etc.).
  const std::vector<std::int32_t>& xadj() const { return xadj_; }
  const std::vector<VertexId>& adjncy() const { return adjncy_; }
  const std::vector<double>& ewgt() const { return ewgt_; }
  const std::vector<double>& vwgt() const { return vwgt_; }

  /// Sum of weights of edges incident to v (weighted degree).
  double weighted_degree(VertexId v) const;

  /// Human-readable one-line summary ("|V|=144 |E|=395 ...").
  std::string summary() const;

 private:
  friend class GraphBuilder;

  std::vector<std::int32_t> xadj_ = {0};
  std::vector<VertexId> adjncy_;
  std::vector<double> ewgt_;
  std::vector<double> vwgt_;
  std::vector<Point2> coords_;
  double total_vwgt_ = 0.0;
  bool unit_weights_ = true;
};

/// Accumulates edges / weights / coordinates and produces a canonical Graph:
/// symmetric, sorted adjacency, duplicate edges merged (weights summed),
/// self-loops dropped.
class GraphBuilder {
 public:
  /// `num_vertices` fixes |V| up front; vertices are 0..n-1.
  explicit GraphBuilder(VertexId num_vertices);

  VertexId num_vertices() const { return num_vertices_; }

  /// Adds undirected edge {u, v} with weight w.  Duplicate additions are
  /// merged at build() time by summing weights.  Self-loops are ignored.
  void add_edge(VertexId u, VertexId v, double weight = 1.0);

  void set_vertex_weight(VertexId v, double weight);
  void set_coordinate(VertexId v, Point2 p);
  void set_coordinates(std::vector<Point2> coords);

  /// Validates, canonicalizes and builds the immutable Graph.
  Graph build();

 private:
  struct RawEdge {
    VertexId u;
    VertexId v;
    double w;
  };

  VertexId num_vertices_;
  std::vector<RawEdge> edges_;
  std::vector<double> vwgt_;
  std::vector<Point2> coords_;
  bool has_coords_ = false;
};

}  // namespace gapart
