// Binary codec for graph deltas: the damage-proportional wire format the
// durability layer logs.
//
// A serialized delta carries exactly what the grown graph changed relative
// to its predecessor — the appended vertex range and the *new* adjacency of
// every touched survivor — so one record costs O(damage * degree) bytes,
// never O(V + E), and `decode_delta` can rebuild the grown graph from the
// previous snapshot plus the record alone.  This is what makes a delta WAL
// cheaper than logging graph snapshots: replaying a log of records is the
// same damage-proportional work the live repair plane already did.
//
// The reconstruction contract requires the delta to be *exact* (diff_graphs
// exact: touched_old lists every survivor whose adjacency, edge weights, or
// vertex weight changed).  An untouched survivor's row is copied from the
// previous graph verbatim; a recorded vertex's row comes from the record.
// decode_delta cross-checks the seam (an edge between a recorded and an
// untouched vertex must exist identically in the previous graph) and throws
// gapart::Error on any inconsistency — a corrupt or inexact record is a
// typed error, never a silently wrong graph.
//
// Coordinates are deliberately not carried: the repair/refinement pipeline
// never reads them after initialization, and the Chaco checkpoint format the
// snapshots use does not persist them either.  Reconstructed graphs are
// coordinate-free.
#pragma once

#include <string>
#include <string_view>

#include "core/graph_delta.hpp"
#include "graph/graph.hpp"

namespace gapart {

/// Serializes (grown, delta) into a self-contained record payload of
/// O(damage * degree) bytes.  `delta` must be exact for `grown` (see file
/// comment); old_num_vertices must not exceed |grown|.
std::string encode_delta(const Graph& grown, const GraphDelta& delta);

struct DecodedDelta {
  Graph grown;       ///< Reconstructed grown graph (no coordinates).
  GraphDelta delta;  ///< The delta as originally described.
};

/// Rebuilds the grown graph from the previous snapshot and a record written
/// by encode_delta.  Throws gapart::Error on malformed/inconsistent bytes
/// (framing CRCs upstream make this unreachable for honest torn writes; the
/// validation here is the defense against logic-level corruption).
DecodedDelta decode_delta(const Graph& prev, std::string_view bytes);

}  // namespace gapart
