#include "graph/delaunay.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/assert.hpp"

namespace gapart {

double orient2d(Point2 a, Point2 b, Point2 c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

bool in_circumcircle(Point2 a, Point2 b, Point2 c, Point2 d) {
  // Standard in-circle determinant for a CCW triangle.  The inputs here are
  // jittered mesh points, so double precision with a relative epsilon is
  // sufficient (no exact predicates needed).
  const double adx = a.x - d.x;
  const double ady = a.y - d.y;
  const double bdx = b.x - d.x;
  const double bdy = b.y - d.y;
  const double cdx = c.x - d.x;
  const double cdy = c.y - d.y;

  const double ad2 = adx * adx + ady * ady;
  const double bd2 = bdx * bdx + bdy * bdy;
  const double cd2 = cdx * cdx + cdy * cdy;

  const double det = adx * (bdy * cd2 - bd2 * cdy) -
                     ady * (bdx * cd2 - bd2 * cdx) +
                     ad2 * (bdx * cdy - bdy * cdx);
  // Scale-aware tolerance: treat near-cocircular as "outside" so the cavity
  // stays minimal and the algorithm terminates cleanly.
  const double mag = (ad2 + bd2 + cd2) * (std::abs(adx) + std::abs(ady) +
                                          std::abs(bdx) + std::abs(bdy) +
                                          std::abs(cdx) + std::abs(cdy));
  const double eps = 1e-12 * std::max(mag, 1e-300);
  return det > eps;
}

namespace {

struct Edge {
  VertexId u;
  VertexId v;

  friend bool operator<(const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  }
  friend bool operator==(const Edge& a, const Edge& b) {
    return a.u == b.u && a.v == b.v;
  }
};

Triangle make_ccw(VertexId a, VertexId b, VertexId c,
                  const std::vector<Point2>& pts) {
  if (orient2d(pts[static_cast<std::size_t>(a)],
               pts[static_cast<std::size_t>(b)],
               pts[static_cast<std::size_t>(c)]) < 0.0) {
    std::swap(b, c);
  }
  return {a, b, c};
}

}  // namespace

std::vector<Triangle> delaunay_triangulate(const std::vector<Point2>& points) {
  const auto n = static_cast<VertexId>(points.size());
  GAPART_REQUIRE(n >= 3, "triangulation needs at least 3 points, got ", n);

  // Reject duplicates: they make the cavity boundary ill-defined.
  {
    std::vector<Point2> sorted = points;
    std::sort(sorted.begin(), sorted.end(), [](Point2 a, Point2 b) {
      return a.x != b.x ? a.x < b.x : a.y < b.y;
    });
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      GAPART_REQUIRE(!(sorted[i] == sorted[i - 1]),
                     "duplicate point in triangulation input");
    }
  }

  // Working point array: input points plus 3 super-triangle vertices.
  std::vector<Point2> pts = points;
  double lox = std::numeric_limits<double>::infinity();
  double loy = lox;
  double hix = -lox;
  double hiy = -lox;
  for (const auto& p : points) {
    lox = std::min(lox, p.x);
    loy = std::min(loy, p.y);
    hix = std::max(hix, p.x);
    hiy = std::max(hiy, p.y);
  }
  const double cx = 0.5 * (lox + hix);
  const double cy = 0.5 * (loy + hiy);
  const double span = std::max({hix - lox, hiy - loy, 1e-9});
  const double m = 64.0 * span;  // generously outside every circumcircle
  const VertexId s0 = n;
  const VertexId s1 = n + 1;
  const VertexId s2 = n + 2;
  pts.push_back({cx - m, cy - m});
  pts.push_back({cx + m, cy - m});
  pts.push_back({cx, cy + m});

  std::vector<Triangle> tris;
  tris.push_back(make_ccw(s0, s1, s2, pts));

  std::vector<Edge> boundary;
  std::vector<Triangle> keep;
  for (VertexId p = 0; p < n; ++p) {
    const Point2 pp = pts[static_cast<std::size_t>(p)];

    boundary.clear();
    keep.clear();
    keep.reserve(tris.size());
    for (const Triangle& t : tris) {
      if (in_circumcircle(pts[static_cast<std::size_t>(t.a)],
                          pts[static_cast<std::size_t>(t.b)],
                          pts[static_cast<std::size_t>(t.c)], pp)) {
        boundary.push_back({t.a, t.b});
        boundary.push_back({t.b, t.c});
        boundary.push_back({t.c, t.a});
      } else {
        keep.push_back(t);
      }
    }

    if (boundary.empty()) {
      // Tolerance put the point "outside" every circumcircle (can only
      // happen for a point coincident with the boundary under the epsilon);
      // force insertion via the triangle that contains it.
      bool inserted = false;
      for (std::size_t ti = 0; ti < keep.size() && !inserted; ++ti) {
        const Triangle t = keep[ti];
        const Point2 a = pts[static_cast<std::size_t>(t.a)];
        const Point2 b = pts[static_cast<std::size_t>(t.b)];
        const Point2 c = pts[static_cast<std::size_t>(t.c)];
        if (orient2d(a, b, pp) >= 0 && orient2d(b, c, pp) >= 0 &&
            orient2d(c, a, pp) >= 0) {
          keep.erase(keep.begin() + static_cast<std::ptrdiff_t>(ti));
          boundary.push_back({t.a, t.b});
          boundary.push_back({t.b, t.c});
          boundary.push_back({t.c, t.a});
          inserted = true;
        }
      }
      GAPART_ASSERT(inserted, "point ", p, " not locatable in triangulation");
    }

    // The cavity boundary consists of edges that appear exactly once among
    // the removed triangles (interior edges appear twice, once per
    // orientation).
    auto canonical = [](Edge e) {
      if (e.u > e.v) std::swap(e.u, e.v);
      return e;
    };
    std::vector<Edge> canon(boundary.size());
    for (std::size_t i = 0; i < boundary.size(); ++i) {
      canon[i] = canonical(boundary[i]);
    }
    tris = std::move(keep);
    for (std::size_t i = 0; i < boundary.size(); ++i) {
      int count = 0;
      for (std::size_t j = 0; j < boundary.size(); ++j) {
        if (canon[i] == canon[j]) ++count;
      }
      if (count == 1) {
        tris.push_back(make_ccw(boundary[i].u, boundary[i].v, p, pts));
      }
    }
  }

  // Drop triangles touching the super-triangle.
  std::vector<Triangle> result;
  result.reserve(tris.size());
  for (const Triangle& t : tris) {
    if (t.a < n && t.b < n && t.c < n) result.push_back(t);
  }
  return result;
}

std::vector<std::pair<VertexId, VertexId>> triangulation_edges(
    const std::vector<Triangle>& triangles) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(triangles.size() * 3);
  auto push = [&edges](VertexId u, VertexId v) {
    if (u > v) std::swap(u, v);
    edges.emplace_back(u, v);
  };
  for (const Triangle& t : triangles) {
    push(t.a, t.b);
    push(t.b, t.c);
    push(t.c, t.a);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace gapart
