// Induced subgraph extraction, used by the recursive bisection partitioners
// (RSB, RGB, RCB) to recurse into each half of a split.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gapart {

struct Subgraph {
  Graph graph;
  /// to_parent[i] = vertex id in the parent graph of subgraph vertex i.
  std::vector<VertexId> to_parent;
};

/// Induced subgraph on `vertices` (need not be sorted; duplicates rejected).
/// Vertex i of the result corresponds to vertices[i]; vertex weights and
/// coordinates are carried over, edge weights preserved.
Subgraph induced_subgraph(const Graph& g, const std::vector<VertexId>& vertices);

}  // namespace gapart
