#include "graph/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/assert.hpp"
#include "graph/components.hpp"

namespace gapart {

namespace {

constexpr Point2 kCenter{0.5, 0.5};
constexpr double kDiscRadius = 0.5;
constexpr double kEllipseA = 0.5;
constexpr double kEllipseB = 0.25;
constexpr double kAnnulusOuter = 0.5;
constexpr double kAnnulusInner = 0.22;

}  // namespace

const char* domain_name(DomainShape s) {
  switch (s) {
    case DomainShape::kRectangle:
      return "rectangle";
    case DomainShape::kDisc:
      return "disc";
    case DomainShape::kEllipse:
      return "ellipse";
    case DomainShape::kAnnulus:
      return "annulus";
    case DomainShape::kLShape:
      return "l-shape";
  }
  return "unknown";
}

bool Domain::contains(Point2 p) const {
  switch (shape_) {
    case DomainShape::kRectangle:
      return p.x >= 0.0 && p.x <= 1.0 && p.y >= 0.0 && p.y <= 1.0;
    case DomainShape::kDisc:
      return squared_distance(p, kCenter) <= kDiscRadius * kDiscRadius;
    case DomainShape::kEllipse: {
      const double dx = (p.x - kCenter.x) / kEllipseA;
      const double dy = (p.y - kCenter.y) / kEllipseB;
      return dx * dx + dy * dy <= 1.0;
    }
    case DomainShape::kAnnulus: {
      const double d2 = squared_distance(p, kCenter);
      return d2 <= kAnnulusOuter * kAnnulusOuter &&
             d2 >= kAnnulusInner * kAnnulusInner;
    }
    case DomainShape::kLShape:
      if (p.x < 0.0 || p.x > 1.0 || p.y < 0.0 || p.y > 1.0) return false;
      return !(p.x > 0.5 && p.y > 0.5);
  }
  return false;
}

Point2 Domain::bbox_lo() const {
  if (shape_ == DomainShape::kEllipse) return {0.0, kCenter.y - kEllipseB};
  return {0.0, 0.0};
}

Point2 Domain::bbox_hi() const {
  if (shape_ == DomainShape::kEllipse) return {1.0, kCenter.y + kEllipseB};
  return {1.0, 1.0};
}

double Domain::area() const {
  switch (shape_) {
    case DomainShape::kRectangle:
      return 1.0;
    case DomainShape::kDisc:
      return std::numbers::pi * kDiscRadius * kDiscRadius;
    case DomainShape::kEllipse:
      return std::numbers::pi * kEllipseA * kEllipseB;
    case DomainShape::kAnnulus:
      return std::numbers::pi *
             (kAnnulusOuter * kAnnulusOuter - kAnnulusInner * kAnnulusInner);
    case DomainShape::kLShape:
      return 0.75;
  }
  return 0.0;
}

namespace {

/// Draws a uniform point inside the domain by rejection from the bbox.
Point2 sample_in_domain(const Domain& domain, Rng& rng) {
  const Point2 lo = domain.bbox_lo();
  const Point2 hi = domain.bbox_hi();
  for (int attempt = 0; attempt < 100000; ++attempt) {
    const Point2 p{rng.uniform(lo.x, hi.x), rng.uniform(lo.y, hi.y)};
    if (domain.contains(p)) return p;
  }
  GAPART_ASSERT(false, "domain rejection sampling failed");
  return {};
}

double min_squared_distance(const std::vector<Point2>& pts, Point2 p) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& q : pts) best = std::min(best, squared_distance(p, q));
  return best;
}

/// Adds nearest cross-component edges until the graph is connected; keeps
/// geometric locality by always picking the globally closest pair.
Graph stitch_connected(GraphBuilder& b, const std::vector<Point2>& pts) {
  Graph g = b.build();
  auto comp = connected_components(g);
  const auto n = static_cast<VertexId>(pts.size());
  while (comp.count > 1) {
    double best = std::numeric_limits<double>::infinity();
    VertexId bu = 0;
    VertexId bv = 0;
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) {
        if (comp.label[static_cast<std::size_t>(u)] ==
            comp.label[static_cast<std::size_t>(v)]) {
          continue;
        }
        const double d = squared_distance(pts[static_cast<std::size_t>(u)],
                                          pts[static_cast<std::size_t>(v)]);
        if (d < best) {
          best = d;
          bu = u;
          bv = v;
        }
      }
    }
    b.add_edge(bu, bv);
    g = b.build();
    comp = connected_components(g);
  }
  return g;
}

}  // namespace

Mesh triangulate_on_domain(std::vector<Point2> points, const Domain& domain) {
  GAPART_REQUIRE(points.size() >= 3, "mesh needs at least 3 points");
  Mesh mesh;
  mesh.points = std::move(points);

  auto tris = delaunay_triangulate(mesh.points);

  // Filter triangles whose centroid leaves the domain: removes the fill
  // across concavities (L-shape) and holes (annulus).
  mesh.triangles.clear();
  mesh.triangles.reserve(tris.size());
  for (const Triangle& t : tris) {
    const Point2 a = mesh.points[static_cast<std::size_t>(t.a)];
    const Point2 b = mesh.points[static_cast<std::size_t>(t.b)];
    const Point2 c = mesh.points[static_cast<std::size_t>(t.c)];
    const Point2 centroid{(a.x + b.x + c.x) / 3.0, (a.y + b.y + c.y) / 3.0};
    if (domain.contains(centroid)) mesh.triangles.push_back(t);
  }

  GraphBuilder builder(static_cast<VertexId>(mesh.points.size()));
  for (const auto& [u, v] : triangulation_edges(mesh.triangles)) {
    builder.add_edge(u, v);
  }
  builder.set_coordinates(mesh.points);
  mesh.graph = stitch_connected(builder, mesh.points);
  return mesh;
}

Mesh generate_mesh(const Domain& domain, VertexId num_nodes, Rng& rng,
                   const MeshOptions& options) {
  GAPART_REQUIRE(num_nodes >= 4, "mesh needs at least 4 nodes, got ",
                 num_nodes);
  GAPART_REQUIRE(options.jitter >= 0.0 && options.jitter < 0.5,
                 "jitter must lie in [0, 0.5)");

  const double h = std::sqrt(domain.area() / static_cast<double>(num_nodes));
  const Point2 lo = domain.bbox_lo();
  const Point2 hi = domain.bbox_hi();

  std::vector<Point2> pts;
  for (double y = lo.y + 0.5 * h; y < hi.y; y += h) {
    for (double x = lo.x + 0.5 * h; x < hi.x; x += h) {
      const Point2 p{x + rng.uniform(-options.jitter * h, options.jitter * h),
                     y + rng.uniform(-options.jitter * h, options.jitter * h)};
      if (domain.contains(p)) pts.push_back(p);
    }
  }

  // Trim or fill to the exact requested count.
  while (static_cast<VertexId>(pts.size()) > num_nodes) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(static_cast<int>(pts.size())));
    pts[i] = pts.back();
    pts.pop_back();
  }
  const double min_sep2 = (0.35 * h) * (0.35 * h);
  while (static_cast<VertexId>(pts.size()) < num_nodes) {
    Point2 p = sample_in_domain(domain, rng);
    for (int attempt = 0;
         attempt < 200 && min_squared_distance(pts, p) < min_sep2; ++attempt) {
      p = sample_in_domain(domain, rng);
    }
    pts.push_back(p);
  }

  return triangulate_on_domain(std::move(pts), domain);
}

Mesh densify_mesh(const Mesh& base, const Domain& domain, VertexId extra_nodes,
                  Rng& rng, double radius_fraction) {
  GAPART_REQUIRE(extra_nodes >= 1, "densify needs at least one new node");
  GAPART_REQUIRE(!base.points.empty(), "base mesh is empty");
  GAPART_REQUIRE(radius_fraction > 0.0 && radius_fraction <= 1.0,
                 "radius_fraction must lie in (0, 1]");

  // Paper §4.2: nodes are added "in a local area chosen randomly within the
  // graph" — centre the refinement disc on a random existing vertex.
  const auto center_idx = static_cast<std::size_t>(
      rng.uniform_int(static_cast<int>(base.points.size())));
  const Point2 center = base.points[center_idx];
  const Point2 lo = domain.bbox_lo();
  const Point2 hi = domain.bbox_hi();
  const double radius =
      radius_fraction * std::max(hi.x - lo.x, hi.y - lo.y);

  const auto total =
      static_cast<std::size_t>(base.points.size()) +
      static_cast<std::size_t>(extra_nodes);
  const double h_local = std::sqrt(domain.area() / static_cast<double>(total));
  const double min_sep2 = (0.3 * h_local) * (0.3 * h_local);

  std::vector<Point2> pts = base.points;
  pts.reserve(total);
  while (pts.size() < total) {
    Point2 p{};
    bool accepted = false;
    for (int attempt = 0; attempt < 400 && !accepted; ++attempt) {
      // Uniform in the disc via rejection from its bounding square.
      const Point2 cand{center.x + rng.uniform(-radius, radius),
                        center.y + rng.uniform(-radius, radius)};
      if (squared_distance(cand, center) > radius * radius) continue;
      if (!domain.contains(cand)) continue;
      if (min_squared_distance(pts, cand) < min_sep2) continue;
      p = cand;
      accepted = true;
    }
    if (!accepted) {
      // Dense disc: fall back to any in-domain point in the disc.
      for (int attempt = 0; attempt < 100000 && !accepted; ++attempt) {
        const Point2 cand{center.x + rng.uniform(-radius, radius),
                          center.y + rng.uniform(-radius, radius)};
        if (squared_distance(cand, center) <= radius * radius &&
            domain.contains(cand) &&
            min_squared_distance(pts, cand) > 0.0) {
          p = cand;
          accepted = true;
        }
      }
    }
    GAPART_ASSERT(accepted, "could not place refinement point");
    pts.push_back(p);
  }

  return triangulate_on_domain(std::move(pts), domain);
}

Domain paper_domain(VertexId num_nodes) {
  // Fixed size -> shape mapping so every bench/test regenerates the same
  // workload for a given table row.
  switch (num_nodes) {
    case 78:
      return Domain(DomainShape::kDisc);
    case 88:
      return Domain(DomainShape::kRectangle);
    case 98:
      return Domain(DomainShape::kEllipse);
    case 118:
      return Domain(DomainShape::kRectangle);
    case 139:
      return Domain(DomainShape::kDisc);
    case 144:
      return Domain(DomainShape::kRectangle);
    case 167:
      return Domain(DomainShape::kAnnulus);
    case 183:
      return Domain(DomainShape::kRectangle);
    case 213:
      return Domain(DomainShape::kEllipse);
    case 243:
      return Domain(DomainShape::kDisc);
    case 249:
      return Domain(DomainShape::kLShape);
    case 279:
      return Domain(DomainShape::kRectangle);
    case 309:
      return Domain(DomainShape::kLShape);
    default:
      return Domain(DomainShape::kRectangle);
  }
}

Mesh paper_mesh(VertexId num_nodes) {
  Rng rng(std::uint64_t{0x9a7e0000} + static_cast<std::uint64_t>(num_nodes));
  const Domain domain = paper_domain(num_nodes);
  Mesh mesh = generate_mesh(domain, num_nodes, rng);
  GAPART_ASSERT(mesh.graph.num_vertices() == num_nodes);
  return mesh;
}

Mesh paper_incremental_mesh(const Mesh& base, VertexId base_nodes,
                            VertexId extra_nodes) {
  Rng rng(std::uint64_t{0x16c0000} +
          std::uint64_t{1000} * static_cast<std::uint64_t>(base_nodes) +
          static_cast<std::uint64_t>(extra_nodes));
  const Domain domain = paper_domain(base_nodes);
  Mesh grown = densify_mesh(base, domain, extra_nodes, rng);
  GAPART_ASSERT(grown.graph.num_vertices() == base_nodes + extra_nodes);
  return grown;
}

}  // namespace gapart
