#include "graph/delta_codec.hpp"

#include <cstring>
#include <vector>

#include "common/assert.hpp"

namespace gapart {

namespace {

constexpr std::uint32_t kCodecMagic = 0x31434447u;  // "GDC1"

// -- little-endian primitive append/read helpers ----------------------------

template <typename T>
void put(std::string& out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out.append(buf, sizeof(T));
}

class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  template <typename T>
  T get() {
    GAPART_REQUIRE(pos_ + sizeof(T) <= bytes_.size(),
                   "delta record truncated: need ", sizeof(T), " bytes at ",
                   pos_, ", have ", bytes_.size());
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  bool exhausted() const { return pos_ == bytes_.size(); }
  std::size_t pos() const { return pos_; }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

void append_vertex_row(std::string& out, const Graph& g, VertexId v) {
  put<double>(out, g.vertex_weight(v));
  const auto nbrs = g.neighbors(v);
  const auto wgts = g.edge_weights(v);
  put<std::uint64_t>(out, nbrs.size());
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    put<std::uint64_t>(out, static_cast<std::uint64_t>(nbrs[i]));
    put<double>(out, wgts[i]);
  }
}

}  // namespace

std::string encode_delta(const Graph& grown, const GraphDelta& delta) {
  const VertexId n_new = grown.num_vertices();
  GAPART_REQUIRE(delta.old_num_vertices >= 0 &&
                     delta.old_num_vertices <= n_new,
                 "delta old vertex count ", delta.old_num_vertices,
                 " out of range for |V| = ", n_new);
  std::string out;
  put<std::uint32_t>(out, kCodecMagic);
  put<std::uint64_t>(out, static_cast<std::uint64_t>(delta.old_num_vertices));
  put<std::uint64_t>(out, static_cast<std::uint64_t>(n_new));
  put<std::uint64_t>(out, delta.touched_old.size());
  VertexId prev_id = -1;
  for (const VertexId v : delta.touched_old) {
    GAPART_REQUIRE(v > prev_id && v < delta.old_num_vertices,
                   "touched list must be sorted survivors; got ", v);
    prev_id = v;
    put<std::uint64_t>(out, static_cast<std::uint64_t>(v));
  }
  for (const VertexId v : delta.touched_old) append_vertex_row(out, grown, v);
  for (VertexId v = delta.old_num_vertices; v < n_new; ++v) {
    append_vertex_row(out, grown, v);
  }
  return out;
}

DecodedDelta decode_delta(const Graph& prev, std::string_view bytes) {
  ByteReader in(bytes);
  GAPART_REQUIRE(in.get<std::uint32_t>() == kCodecMagic,
                 "delta record has wrong magic");
  const auto old_n64 = in.get<std::uint64_t>();
  const auto new_n64 = in.get<std::uint64_t>();
  GAPART_REQUIRE(old_n64 == static_cast<std::uint64_t>(prev.num_vertices()),
                 "delta record expects a ", old_n64,
                 "-vertex predecessor, got ", prev.num_vertices());
  GAPART_REQUIRE(new_n64 >= old_n64 && new_n64 <= (1ull << 31),
                 "implausible grown vertex count ", new_n64);
  const auto old_n = static_cast<VertexId>(old_n64);
  const auto new_n = static_cast<VertexId>(new_n64);

  const auto touched_count = in.get<std::uint64_t>();
  GAPART_REQUIRE(touched_count <= old_n64, "touched count ", touched_count,
                 " exceeds survivor count ", old_n64);
  DecodedDelta out;
  out.delta.old_num_vertices = old_n;
  out.delta.touched_old.reserve(static_cast<std::size_t>(touched_count));
  std::vector<bool> recorded(static_cast<std::size_t>(new_n), false);
  VertexId prev_id = -1;
  for (std::uint64_t i = 0; i < touched_count; ++i) {
    const auto v64 = in.get<std::uint64_t>();
    GAPART_REQUIRE(v64 < old_n64, "touched vertex ", v64, " not a survivor");
    const auto v = static_cast<VertexId>(v64);
    GAPART_REQUIRE(v > prev_id, "touched list not sorted ascending at ", v);
    prev_id = v;
    out.delta.touched_old.push_back(v);
    recorded[static_cast<std::size_t>(v)] = true;
  }
  for (VertexId v = old_n; v < new_n; ++v) {
    recorded[static_cast<std::size_t>(v)] = true;
  }

  GraphBuilder b(new_n);

  // Untouched survivors: rows copied verbatim from the predecessor.  Each
  // undirected edge must reach the builder exactly once (duplicates are
  // merged by SUMMING weights), so an untouched-untouched edge is added from
  // its lower endpoint and an untouched-recorded edge is left to the
  // recorded side.
  for (VertexId u = 0; u < old_n; ++u) {
    if (recorded[static_cast<std::size_t>(u)]) continue;
    b.set_vertex_weight(u, prev.vertex_weight(u));
    const auto nbrs = prev.neighbors(u);
    const auto wgts = prev.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      if (v > u && !recorded[static_cast<std::size_t>(v)]) {
        b.add_edge(u, v, wgts[i]);
      }
    }
  }

  // Recorded vertices (touched survivors in record order, then the appended
  // range): rows come from the record.  A recorded-recorded edge is added
  // from its lower endpoint; a recorded-untouched edge is added here and
  // cross-checked against the predecessor (an untouched endpoint's row did
  // not change, so the edge must already exist there with the same weight).
  const auto read_row = [&](VertexId r) {
    const double vwgt = in.get<double>();
    b.set_vertex_weight(r, vwgt);
    const auto deg = in.get<std::uint64_t>();
    GAPART_REQUIRE(deg < new_n64, "vertex ", r, " claims degree ", deg,
                   " in a ", new_n64, "-vertex graph");
    VertexId prev_nbr = -1;
    for (std::uint64_t i = 0; i < deg; ++i) {
      const auto x64 = in.get<std::uint64_t>();
      const double w = in.get<double>();
      GAPART_REQUIRE(x64 < new_n64, "neighbour ", x64, " out of range");
      const auto x = static_cast<VertexId>(x64);
      GAPART_REQUIRE(x != r, "self-loop on vertex ", r);
      GAPART_REQUIRE(x > prev_nbr, "adjacency of ", r, " not sorted at ", x);
      prev_nbr = x;
      if (recorded[static_cast<std::size_t>(x)]) {
        if (x > r) b.add_edge(r, x, w);
      } else {
        const auto prev_w = prev.edge_weight(x, r);
        GAPART_REQUIRE(prev_w.has_value() && *prev_w == w,
                       "record edge (", r, ", ", x, ") disagrees with the ",
                       "predecessor at its untouched endpoint");
        b.add_edge(r, x, w);
      }
    }
  };
  for (const VertexId v : out.delta.touched_old) read_row(v);
  for (VertexId v = old_n; v < new_n; ++v) read_row(v);
  GAPART_REQUIRE(in.exhausted(), "delta record has ", bytes.size() - in.pos(),
                 " trailing bytes");

  out.grown = b.build();
  return out;
}

}  // namespace gapart
