// Partition representation, quality metrics, and the paper's two objectives.
//
// Terminology follows the paper (§2): a partition maps every vertex to one of
// n parts.  For part q,
//   W(q)  = sum of vertex weights in q                       (load)
//   I(q)  = (W(q) - W_total/n)^2                             (load imbalance)
//   C(q)  = total weight of edges with exactly one endpoint in q
//           ("the cost of all the outgoing edges from a part")
// and the two fitness functions are
//   Fitness1 = -( sum_q I(q) + lambda * sum_q C(q) )   — total communication
//   Fitness2 = -( sum_q I(q) + lambda * max_q C(q) )   — worst-case (non-
//              differentiable) communication
// The paper's tables report sum_q C(q) / 2 (each cut edge counted once) for
// Fitness1 experiments and max_q C(q) for Fitness2 experiments.
#pragma once

#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gapart {

/// Which communication term the composite objective uses.
enum class Objective {
  kTotalComm,  ///< Fitness1: sum over parts of outgoing edge cost.
  kWorstComm,  ///< Fitness2: cost of the worst part only.
};

const char* objective_name(Objective o);

struct FitnessParams {
  Objective objective = Objective::kTotalComm;
  /// The paper's lambda: relative importance of communication vs imbalance.
  double lambda = 1.0;
};

/// Full per-part metric breakdown of one assignment.
struct PartitionMetrics {
  std::vector<double> part_weight;  ///< W(q)
  std::vector<double> part_cut;     ///< C(q)
  double sum_part_cut = 0.0;        ///< sum_q C(q) (= 2x cut edge weight)
  double max_part_cut = 0.0;        ///< max_q C(q)
  double imbalance_sq = 0.0;        ///< sum_q I(q)

  /// Total weight of cut edges, each counted once — what Tables 1-3 report.
  double total_cut() const { return 0.5 * sum_part_cut; }
};

/// True iff `a` has one entry per vertex, all within [0, num_parts).
bool is_valid_assignment(const Graph& g, const Assignment& a, PartId num_parts);

/// O(V + E) metric computation from scratch.
PartitionMetrics compute_metrics(const Graph& g, const Assignment& a,
                                 PartId num_parts);

double fitness_from_metrics(const PartitionMetrics& m,
                            const FitnessParams& params);

/// Convenience: compute_metrics + fitness_from_metrics.
double evaluate_fitness(const Graph& g, const Assignment& a, PartId num_parts,
                        const FitnessParams& params);

/// A mutable partition with incrementally maintained metrics.
///
/// move() updates W, C, the imbalance term and the total in O(deg(v)), which
/// is what makes hill climbing (§3.6), Kernighan–Lin, and greedy incremental
/// assignment affordable.  All derived quantities always match a from-scratch
/// compute_metrics() (fuzz-tested).
///
/// Holds a non-owning view of the graph: the Graph must outlive the state
/// (in particular, do not bind a temporary).
class PartitionState {
 public:
  PartitionState(const Graph& g, Assignment a, PartId num_parts);

  const Graph& graph() const { return *g_; }
  PartId num_parts() const { return num_parts_; }
  const Assignment& assignment() const { return assign_; }

  /// Steals the assignment from an expiring state (avoids the O(V) copy when
  /// the state is discarded right after, e.g. a finished hill climb).
  Assignment release_assignment() && { return std::move(assign_); }
  PartId part_of(VertexId v) const { return assign_[static_cast<std::size_t>(v)]; }

  double part_weight(PartId q) const { return part_weight_[static_cast<std::size_t>(q)]; }
  double part_cut(PartId q) const { return part_cut_[static_cast<std::size_t>(q)]; }
  double sum_part_cut() const { return sum_part_cut_; }
  double max_part_cut() const;
  double imbalance_sq() const { return imbalance_sq_; }
  double total_cut() const { return 0.5 * sum_part_cut_; }

  double fitness(const FitnessParams& params) const;

  /// Moves v to part `to` (no-op when already there).
  void move(VertexId v, PartId to);

  /// Fitness delta that move(v, to) would produce, without applying it.
  /// O(deg(v) + num_parts).
  double move_gain(VertexId v, PartId to, const FitnessParams& params) const;

  /// True when v has at least one neighbour in a different part.
  bool is_boundary(VertexId v) const;

  /// All boundary vertices, ascending.
  std::vector<VertexId> boundary_vertices() const;

  /// Parts adjacent to v (excluding v's own part), ascending, deduplicated.
  std::vector<PartId> neighbor_parts(VertexId v) const;

  /// Snapshot of full metrics (recomputed from the maintained state).
  PartitionMetrics metrics() const;

 private:
  const Graph* g_;
  PartId num_parts_;
  Assignment assign_;
  std::vector<double> part_weight_;
  std::vector<double> part_cut_;
  double sum_part_cut_ = 0.0;
  double imbalance_sq_ = 0.0;
  double mean_weight_ = 0.0;
};

}  // namespace gapart
