// Partition representation, quality metrics, and the paper's two objectives.
//
// Terminology follows the paper (§2): a partition maps every vertex to one of
// n parts.  For part q,
//   W(q)  = sum of vertex weights in q                       (load)
//   I(q)  = (W(q) - W_total/n)^2                             (load imbalance)
//   C(q)  = total weight of edges with exactly one endpoint in q
//           ("the cost of all the outgoing edges from a part")
// and the two fitness functions are
//   Fitness1 = -( sum_q I(q) + lambda * sum_q C(q) )   — total communication
//   Fitness2 = -( sum_q I(q) + lambda * max_q C(q) )   — worst-case (non-
//              differentiable) communication
// The paper's tables report sum_q C(q) / 2 (each cut edge counted once) for
// Fitness1 experiments and max_q C(q) for Fitness2 experiments.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/connectivity_scratch.hpp"
#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gapart {

/// Which communication term the composite objective uses.
enum class Objective {
  kTotalComm,  ///< Fitness1: sum over parts of outgoing edge cost.
  kWorstComm,  ///< Fitness2: cost of the worst part only.
};

const char* objective_name(Objective o);

struct FitnessParams {
  Objective objective = Objective::kTotalComm;
  /// The paper's lambda: relative importance of communication vs imbalance.
  double lambda = 1.0;
};

/// Full per-part metric breakdown of one assignment.
struct PartitionMetrics {
  std::vector<double> part_weight;  ///< W(q)
  std::vector<double> part_cut;     ///< C(q)
  double sum_part_cut = 0.0;        ///< sum_q C(q) (= 2x cut edge weight)
  double max_part_cut = 0.0;        ///< max_q C(q)
  double imbalance_sq = 0.0;        ///< sum_q I(q)

  /// Total weight of cut edges, each counted once — what Tables 1-3 report.
  double total_cut() const { return 0.5 * sum_part_cut; }
};

/// True iff `a` has one entry per vertex, all within [0, num_parts).
bool is_valid_assignment(const Graph& g, const Assignment& a, PartId num_parts);

/// O(V + E) metric computation from scratch.
PartitionMetrics compute_metrics(const Graph& g, const Assignment& a,
                                 PartId num_parts);

double fitness_from_metrics(const PartitionMetrics& m,
                            const FitnessParams& params);

/// Convenience: compute_metrics + fitness_from_metrics.
double evaluate_fitness(const Graph& g, const Assignment& a, PartId num_parts,
                        const FitnessParams& params);

/// From-scratch counterpart of PartitionState::content_hash(): digests
/// (assignment, part weights implied by `a`, n, k) without building a state.
/// Equals the member function on the same state whenever the maintained part
/// weights are exact (always true for integer vertex weights) — used by the
/// replication layer to stamp shipped snapshots.
std::uint64_t assignment_content_hash(const Graph& g, const Assignment& a,
                                      PartId num_parts);

/// Best candidate move for one vertex, as found by the single-scan gain
/// kernel (PartitionState::best_move).
struct BestMove {
  PartId to = -1;      ///< Destination part; -1 when no candidate beat min_gain.
  double gain = 0.0;   ///< Fitness delta of the winning move (0 when to < 0).
  int candidates = 0;  ///< Adjacent parts the kernel evaluated.
};

/// One scored boundary move: produced by a (possibly parallel) scoring pass
/// against a frozen state, consumed by PartitionState::apply_candidate_batch.
struct CandidateMove {
  VertexId v = -1;
  PartId to = -1;     ///< -1 marks "no move found" — skipped by the apply.
  double gain = 0.0;  ///< Gain against the state the candidate was scored on.
};

/// Outcome accounting for one apply_candidate_batch() round.
struct BatchApplyStats {
  int applied = 0;      ///< Moves executed through the delta move path.
  int deferred = 0;     ///< Closed-neighbourhood conflicts, pushed to `deferred`.
  int revalidated = 0;  ///< Part-coupled candidates rescored serially.
  int rejected = 0;     ///< Revalidated candidates that fell to/below min_gain.
  double fitness_gain = 0.0;  ///< Exact fitness improvement of the batch.
};

/// A mutable partition with incrementally maintained metrics and boundary.
///
/// This is the refinement engine under hill climbing (§3.6), Kernighan–Lin,
/// and greedy incremental assignment:
///   * move() updates W, C, the imbalance term, the cached max-part cut, the
///     per-vertex external-neighbour counts and the compact boundary frontier
///     in O(deg(v)).
///   * best_move() is a single-scan gain kernel: one pass over neighbors(v)
///     fills a reusable epoch-stamped per-part connectivity scratch, from
///     which the gains to all adjacent parts come out in O(deg + k_adjacent)
///     with zero allocations (plus one O(k) top-2 precompute under
///     kWorstComm) instead of the O(deg * k) neighbor_parts()+move_gain()
///     pattern, which survives as thin wrappers.
///   * is_boundary() is an O(1) flag lookup and frontier() exposes the live
///     boundary worklist, so local search never rescans interior vertices.
/// All derived quantities always match a from-scratch compute_metrics()
/// (fuzz-tested).  With integer vertex/edge weights (the paper's setting)
/// every maintained quantity and gain is bit-identical to the pre-kernel
/// per-candidate loops, because all intermediate sums are exact.
///
/// Holds a non-owning view of the graph: the Graph must outlive the state
/// (in particular, do not bind a temporary).  Const accessors share mutable
/// scratch, so a single state must not be read from two threads at once.
class PartitionState {
 public:
  PartitionState(const Graph& g, Assignment a, PartId num_parts);

  const Graph& graph() const { return *g_; }
  PartId num_parts() const { return num_parts_; }
  const Assignment& assignment() const { return assign_; }

  /// Steals the assignment from an expiring state (avoids the O(V) copy when
  /// the state is discarded right after, e.g. a finished hill climb).
  Assignment release_assignment() && { return std::move(assign_); }
  PartId part_of(VertexId v) const { return assign_[static_cast<std::size_t>(v)]; }

  double part_weight(PartId q) const { return part_weight_[static_cast<std::size_t>(q)]; }
  double part_cut(PartId q) const { return part_cut_[static_cast<std::size_t>(q)]; }
  double sum_part_cut() const { return sum_part_cut_; }
  double max_part_cut() const;
  double imbalance_sq() const { return imbalance_sq_; }
  double total_cut() const { return 0.5 * sum_part_cut_; }

  double fitness(const FitnessParams& params) const;

  /// Moves v to part `to` (no-op when already there).
  void move(VertexId v, PartId to);

  /// Rebinds the state to `grown` — a graph whose first num_vertices()
  /// vertices survive from the current graph — updating every maintained
  /// quantity (part weights/cuts, imbalance, boundary, frontier) in
  /// O(damage * deg + k) instead of the O(V + E) fresh construction.  This is
  /// what keeps a long-lived session's per-delta repair latency proportional
  /// to the damage, not the graph.
  ///
  /// `touched_old` lists the surviving vertices whose adjacency rows or
  /// weights changed (a GraphDelta's touched_old — sorted, deduplicated, all
  /// < num_vertices()).  Every changed edge must have both endpoints in the
  /// damage set (new vertices plus touched_old) — guaranteed by construction
  /// for appended_delta / diff_graphs deltas, because an edge change perturbs
  /// both endpoints' adjacency rows — and untouched survivors must keep their
  /// vertex weight.  `new_parts` assigns the appended vertices
  /// [num_vertices(), |grown|), each in [0, num_parts).  Survivors keep their
  /// current parts.  The old graph must stay alive for the duration of the
  /// call (it is read to retract the damaged vertices' old contributions);
  /// afterwards the state references `grown`, which must outlive it.
  void rebind_grown(const Graph& grown, std::span<const VertexId> touched_old,
                    std::span<const PartId> new_parts);

  /// Single-scan gain kernel: the best part to move v into among all parts
  /// adjacent to v, with ties broken toward the lowest part id (matching the
  /// legacy ascending neighbor_parts() probe loop).  Only candidates with
  /// gain strictly above `min_gain` are returned; to == -1 otherwise.
  /// O(deg(v) + k_adjacent), plus O(num_parts) once under kWorstComm.
  BestMove best_move(VertexId v, const FitnessParams& params,
                     double min_gain = 0.0) const;

  /// best_move() scanning into a caller-owned scratch (sized to num_parts())
  /// instead of the state's shared one — what lets parallel scorers run
  /// concurrently against one const state, each with a per-thread scratch.
  /// Under kWorstComm the lazy max-cut cache must be clean before fanning out
  /// (call max_part_cut() once, serially); with that established the call is
  /// a pure read of the state.
  BestMove best_move_with(ConnectivityScratch& scratch, VertexId v,
                          const FitnessParams& params,
                          double min_gain = 0.0) const;

  /// Applies one conflict-screened batch of candidates scored against the
  /// current (frozen) state, in candidate order:
  ///   * A candidate whose closed neighbourhood intersects an already-applied
  ///     move's closed neighbourhood is DEFERRED (its scan-time connectivity
  ///     is stale) — appended to `deferred` for the caller's next worklist.
  ///   * A candidate whose source/destination part weights couple with an
  ///     applied move (either part touched; under kWorstComm any applied move,
  ///     since the max-cut term couples every part) is REVALIDATED with the
  ///     serial gain kernel and applied only if still above `min_gain`.
  ///   * Everything else is provably exact under the frozen scores (the gain
  ///     delta reads only the candidate's neighbour parts and its own from/to
  ///     weights) and is applied as scored.
  /// Only moves with exact-or-revalidated gain > min_gain are applied, so the
  /// batch is monotone: fitness_gain is their exact total fitness delta.
  /// Applied moves (with charged gains) are appended to `applied` when
  /// non-null.  O(sum over candidates of deg) plus O(deg + k) per
  /// revalidation.
  BatchApplyStats apply_candidate_batch(
      std::span<const CandidateMove> candidates, const FitnessParams& params,
      double min_gain, std::vector<CandidateMove>* applied,
      std::vector<VertexId>* deferred);

  /// Fitness delta that move(v, to) would produce, without applying it.
  /// Thin wrapper over the gain kernel; O(deg(v) + num_parts).
  double move_gain(VertexId v, PartId to, const FitnessParams& params) const;

  /// True when v has at least one neighbour in a different part.  O(1).
  bool is_boundary(VertexId v) const {
    return ext_deg_[static_cast<std::size_t>(v)] > 0;
  }

  /// The live boundary worklist, in no particular order.  Invalidated by
  /// move(); copy it before interleaving reads with moves.
  const std::vector<VertexId>& frontier() const { return frontier_; }

  VertexId boundary_size() const {
    return static_cast<VertexId>(frontier_.size());
  }

  /// All boundary vertices, ascending (sorted copy of the frontier).
  std::vector<VertexId> boundary_vertices() const;

  /// The subset of `seeds` currently on the boundary, ascending and
  /// deduplicated — filtered frontier seeding for worklist-seeded repair
  /// (hill_climb_from).  O(|seeds| log |seeds|); out-of-range ids throw.
  std::vector<VertexId> filter_boundary(std::span<const VertexId> seeds) const;

  /// Graph-sized epoch-stamped flag scratch for callers' worklist
  /// bookkeeping (frontier climbs), handed out logically cleared.  Allocated
  /// once with the state, so a seeded repair touching d vertices costs O(d)
  /// — not an O(V) allocation + memset per climb.  Same single-caller
  /// discipline as the connectivity scratch: one climb at a time per state.
  EpochFlags& visit_scratch() {
    visit_flags_.clear();
    return visit_flags_;
  }

  /// Parts adjacent to v (excluding v's own part), ascending, deduplicated.
  /// Thin wrapper over the connectivity scan; prefer best_move() in hot code.
  std::vector<PartId> neighbor_parts(VertexId v) const;

  /// Snapshot of full metrics (recomputed from the maintained state).
  PartitionMetrics metrics() const;

  /// Order-independent 64-bit digest of the partition content: the
  /// (vertex, part) pairs, the maintained part weights, and (n, k).  Built
  /// on common/checksum with a per-item mix and commutative combination, so
  /// two states reached by different move orders hash equal iff their
  /// assignments (and exact weight sums) are equal — the replication layer's
  /// divergence-detection primitive.  O(V + k), touches no scratch.
  ///
  /// Part weights enter the digest as exact bit patterns; with integer
  /// vertex weights the maintained sums are exact, so the digest is a pure
  /// function of the assignment.  (Fractional weights could make two
  /// equal assignments differ through summation order — the same caveat the
  /// incremental fitness carries.)
  std::uint64_t content_hash() const;

 private:
  /// Quantities shared by every candidate gain of one scanned vertex.
  struct ScanGainContext {
    PartId from = -1;
    double wdeg = 0.0;      ///< weighted degree of v
    double w = 0.0;         ///< vertex weight of v
    double imb_base = 0.0;  ///< imbalance with `from`'s terms pre-swapped
    double base_fitness = 0.0;
  };

  /// One pass over neighbors(v): fills `conn` with per-part edge weight and
  /// returns v's weighted degree.  Parameterised on the scratch so parallel
  /// scorers can bring their own (best_move_with); serial paths pass conn_.
  double scan_connectivity(ConnectivityScratch& conn, VertexId v) const;

  ScanGainContext make_scan_context(VertexId v, PartId from, double wdeg,
                                    const FitnessParams& params) const;

  /// Gain of moving the vertex scanned into `conn` to `to`.  `others_max`
  /// must be max(0, max part cut over parts other than from/to) — only read
  /// under kWorstComm.
  double gain_from_scan(const ConnectivityScratch& conn,
                        const ScanGainContext& ctx, PartId to,
                        double others_max, const FitnessParams& params) const;

  /// Syncs the boundary flag / frontier membership of u with ext_deg_[u].
  void sync_frontier(VertexId u);

  const Graph* g_;
  PartId num_parts_;
  Assignment assign_;
  std::vector<double> part_weight_;
  std::vector<double> part_cut_;
  double sum_part_cut_ = 0.0;
  double imbalance_sq_ = 0.0;
  double mean_weight_ = 0.0;

  // Incrementally maintained boundary: ext_deg_[v] counts v's neighbours in
  // other parts; frontier_ is the compact list of vertices with ext_deg_>0,
  // frontier_pos_[v] its index there (-1 when interior).
  std::vector<std::int32_t> ext_deg_;
  std::vector<std::int32_t> frontier_pos_;
  std::vector<VertexId> frontier_;

  // Cached max_q C(q): refreshed in O(1) per move unless the move shrank the
  // current arg-max part, which lazily triggers one O(k) rescan.
  mutable double max_cut_cache_ = 0.0;
  mutable PartId max_cut_part_ = 0;
  mutable bool max_cut_dirty_ = false;

  // Reusable kernel scratch (see class comment re: thread safety).
  mutable ConnectivityScratch conn_;
  EpochFlags visit_flags_;

  // apply_candidate_batch bookkeeping: vertices whose scan-time connectivity
  // an applied move invalidated (the mover's closed neighbourhood), and parts
  // whose weight/cut an applied move changed.  Epoch-cleared per batch.
  EpochFlags batch_touched_;  ///< vertex-indexed
  EpochFlags part_touched_;   ///< part-indexed
};

}  // namespace gapart
