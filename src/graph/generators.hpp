// Classic synthetic graph families.
//
// These serve three purposes: analytically known spectra for validating the
// eigensolvers (path, cycle, complete, star), constructed optima for
// validating the GA end-to-end (two cliques joined by a bridge), and simple
// structured workloads (grids, tori, random geometric graphs) for benches.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace gapart {

/// Path graph P_n: 0-1-2-...-(n-1).  Coordinates on the x-axis.
Graph make_path(VertexId n);

/// Cycle graph C_n.  Coordinates on the unit circle.
Graph make_cycle(VertexId n);

/// Complete graph K_n.
Graph make_complete(VertexId n);

/// Star graph: vertex 0 joined to 1..n-1.
Graph make_star(VertexId n);

/// rows x cols 4-neighbour grid with unit spacing coordinates.
Graph make_grid(VertexId rows, VertexId cols);

/// rows x cols 4-neighbour torus (grid with wraparound).
Graph make_torus(VertexId rows, VertexId cols);

/// Two cliques of size k each, joined by a single bridge edge between vertex
/// k-1 and vertex k.  The optimal bisection cuts exactly the bridge.
Graph make_two_cliques(VertexId k);

/// A chain of `m` cliques of size k, consecutive cliques joined by one edge.
/// Optimal m-way partition cuts exactly the m-1 joining edges.
Graph make_clique_chain(VertexId m, VertexId k);

/// Erdos–Renyi G(n, p) random graph.
Graph make_random_graph(VertexId n, double p, Rng& rng);

/// Random geometric graph: n points uniform in the unit square, edges between
/// pairs closer than `radius`.  Has coordinates.
Graph make_random_geometric(VertexId n, double radius, Rng& rng);

/// Connected variant of make_random_geometric: nearest-neighbour edges are
/// added between components until the graph is connected.
Graph make_connected_geometric(VertexId n, double radius, Rng& rng);

}  // namespace gapart
