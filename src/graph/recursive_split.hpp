// Generic recursive-bisection driver.
//
// RSB, recursive coordinate bisection (RCB) and recursive graph bisection
// (RGB) differ only in how they linearly order the vertices of a subgraph
// before splitting it at the weighted median; this module owns the shared
// recursion (proportional part assignment, induced subgraphs, split-point
// clamping) and takes the ordering as a callback.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gapart {

/// Returns a permutation of the subgraph's local vertex ids [0, |V_sub|).
/// A prefix of this order becomes one side of the bisection.
using SplitOrderFn =
    std::function<std::vector<VertexId>(const Graph& subgraph, Rng& rng)>;

/// Partitions `g` into `num_parts` parts by recursive weighted-median
/// bisection over the orderings produced by `order_fn`.  Parts are
/// proportionally sized for non-power-of-two counts (left recursion handles
/// ceil(k/2) parts).
Assignment recursive_split_partition(const Graph& g, PartId num_parts,
                                     Rng& rng, const SplitOrderFn& order_fn);

/// Component-aware BFS ordering: components packed largest-first; inside a
/// component, BFS order from a pseudo-peripheral vertex.  This is the RGB
/// levelization order, and the fallback order for disconnected subgraphs in
/// RSB.
std::vector<VertexId> component_packed_bfs_order(const Graph& g);

}  // namespace gapart
