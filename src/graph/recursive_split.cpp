#include "graph/recursive_split.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "graph/components.hpp"
#include "graph/subgraph.hpp"

namespace gapart {

namespace {

void split_recurse(const Graph& parent, const std::vector<VertexId>& verts,
                   PartId k, PartId part_base, Rng& rng,
                   const SplitOrderFn& order_fn, Assignment& out) {
  GAPART_ASSERT(k >= 1);
  GAPART_ASSERT(static_cast<PartId>(verts.size()) >= k,
                "fewer vertices than parts");
  if (k == 1) {
    for (VertexId v : verts) out[static_cast<std::size_t>(v)] = part_base;
    return;
  }

  const auto sub = induced_subgraph(parent, verts);
  const auto order = order_fn(sub.graph, rng);
  GAPART_ASSERT(order.size() == verts.size(), "order size mismatch");

  const PartId k_left = (k + 1) / 2;
  const PartId k_right = k - k_left;
  const double total = sub.graph.total_vertex_weight();
  const double target_left =
      total * static_cast<double>(k_left) / static_cast<double>(k);

  // Weighted-median split: grow the prefix while adding the next vertex
  // keeps the running weight at or below the target (counting half its
  // weight, so the boundary vertex lands on the lighter side).  Clamp so
  // both sides keep at least as many vertices as parts they must host.
  const auto n = order.size();
  std::size_t split = 0;
  double acc = 0.0;
  while (split < n) {
    const double w = sub.graph.vertex_weight(order[split]);
    if (acc + 0.5 * w > target_left) break;
    acc += w;
    ++split;
  }
  split = std::clamp(split, static_cast<std::size_t>(k_left),
                     n - static_cast<std::size_t>(k_right));

  std::vector<VertexId> left;
  std::vector<VertexId> right;
  left.reserve(split);
  right.reserve(n - split);
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId parent_id =
        sub.to_parent[static_cast<std::size_t>(order[i])];
    (i < split ? left : right).push_back(parent_id);
  }

  split_recurse(parent, left, k_left, part_base, rng, order_fn, out);
  split_recurse(parent, right, k_right, part_base + k_left, rng, order_fn,
                out);
}

}  // namespace

Assignment recursive_split_partition(const Graph& g, PartId num_parts,
                                     Rng& rng, const SplitOrderFn& order_fn) {
  GAPART_REQUIRE(num_parts >= 1, "need at least one part");
  GAPART_REQUIRE(g.num_vertices() >= num_parts, "fewer vertices (",
                 g.num_vertices(), ") than parts (", num_parts, ")");
  Assignment out(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<VertexId> all(static_cast<std::size_t>(g.num_vertices()));
  std::iota(all.begin(), all.end(), 0);
  split_recurse(g, all, num_parts, 0, rng, order_fn, out);
  return out;
}

std::vector<VertexId> component_packed_bfs_order(const Graph& g) {
  const VertexId n = g.num_vertices();
  if (n == 0) return {};
  const auto comp = connected_components(g);
  const auto sizes = comp.sizes();

  std::vector<VertexId> comp_order(static_cast<std::size_t>(comp.count));
  std::iota(comp_order.begin(), comp_order.end(), 0);
  std::sort(comp_order.begin(), comp_order.end(),
            [&sizes](VertexId a, VertexId b) {
              return sizes[static_cast<std::size_t>(a)] !=
                             sizes[static_cast<std::size_t>(b)]
                         ? sizes[static_cast<std::size_t>(a)] >
                               sizes[static_cast<std::size_t>(b)]
                         : a < b;
            });

  std::vector<VertexId> order;
  order.reserve(static_cast<std::size_t>(n));
  for (VertexId c : comp_order) {
    std::vector<char> mask(static_cast<std::size_t>(n), 0);
    for (VertexId v = 0; v < n; ++v) {
      mask[static_cast<std::size_t>(v)] =
          comp.label[static_cast<std::size_t>(v)] == c ? 1 : 0;
    }
    const VertexId start = pseudo_peripheral_vertex(g, mask);
    const auto dist = bfs_distances(g, start, mask);
    std::vector<VertexId> members;
    for (VertexId v = 0; v < n; ++v) {
      if (mask[static_cast<std::size_t>(v)]) members.push_back(v);
    }
    std::sort(members.begin(), members.end(),
              [&dist](VertexId a, VertexId b) {
                const auto da = dist[static_cast<std::size_t>(a)];
                const auto db = dist[static_cast<std::size_t>(b)];
                return da != db ? da < db : a < b;
              });
    order.insert(order.end(), members.begin(), members.end());
  }
  return order;
}

}  // namespace gapart
