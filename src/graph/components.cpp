#include "graph/components.hpp"

#include <queue>

#include "common/assert.hpp"

namespace gapart {

std::vector<VertexId> Components::sizes() const {
  std::vector<VertexId> out(static_cast<std::size_t>(count), 0);
  for (VertexId c : label) ++out[static_cast<std::size_t>(c)];
  return out;
}

Components connected_components(const Graph& g) {
  const VertexId n = g.num_vertices();
  Components comp;
  comp.label.assign(static_cast<std::size_t>(n), -1);
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < n; ++s) {
    if (comp.label[static_cast<std::size_t>(s)] != -1) continue;
    const VertexId c = comp.count++;
    stack.push_back(s);
    comp.label[static_cast<std::size_t>(s)] = c;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId u : g.neighbors(v)) {
        if (comp.label[static_cast<std::size_t>(u)] == -1) {
          comp.label[static_cast<std::size_t>(u)] = c;
          stack.push_back(u);
        }
      }
    }
  }
  return comp;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  return connected_components(g).count == 1;
}

std::vector<std::int32_t> bfs_distances(const Graph& g, VertexId source,
                                        const std::vector<char>& mask) {
  const VertexId n = g.num_vertices();
  GAPART_REQUIRE(source >= 0 && source < n, "bfs source out of range");
  GAPART_REQUIRE(mask.empty() || static_cast<VertexId>(mask.size()) == n,
                 "mask size mismatch");
  auto allowed = [&](VertexId v) {
    return mask.empty() || mask[static_cast<std::size_t>(v)];
  };
  GAPART_REQUIRE(allowed(source), "bfs source excluded by mask");

  std::vector<std::int32_t> dist(static_cast<std::size_t>(n), -1);
  std::queue<VertexId> q;
  dist[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (VertexId u : g.neighbors(v)) {
      if (!allowed(u) || dist[static_cast<std::size_t>(u)] != -1) continue;
      dist[static_cast<std::size_t>(u)] = dist[static_cast<std::size_t>(v)] + 1;
      q.push(u);
    }
  }
  return dist;
}

VertexId farthest_vertex(const Graph& g, VertexId source,
                         const std::vector<char>& mask) {
  const auto dist = bfs_distances(g, source, mask);
  VertexId best = source;
  std::int32_t best_d = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::int32_t d = dist[static_cast<std::size_t>(v)];
    if (d > best_d) {
      best_d = d;
      best = v;
    }
  }
  return best;
}

VertexId pseudo_peripheral_vertex(const Graph& g,
                                  const std::vector<char>& mask) {
  GAPART_REQUIRE(g.num_vertices() > 0, "empty graph");
  VertexId start = 0;
  if (!mask.empty()) {
    while (start < g.num_vertices() && !mask[static_cast<std::size_t>(start)]) {
      ++start;
    }
    GAPART_REQUIRE(start < g.num_vertices(), "mask excludes every vertex");
  }
  const VertexId a = farthest_vertex(g, start, mask);
  return farthest_vertex(g, a, mask);
}

}  // namespace gapart
