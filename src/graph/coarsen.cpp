#include "graph/coarsen.hpp"

#include <numeric>

#include "common/assert.hpp"

namespace gapart {

CoarseLevel coarsen_once(const Graph& g, Rng& rng) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> match(static_cast<std::size_t>(n), -1);

  // Visit vertices in random order; match each unmatched vertex with its
  // heaviest-edge unmatched neighbour (ties: first encountered).
  std::vector<VertexId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  for (VertexId v : order) {
    if (match[static_cast<std::size_t>(v)] != -1) continue;
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    VertexId best = -1;
    double best_w = -1.0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      if (match[static_cast<std::size_t>(u)] != -1) continue;
      if (wgts[i] > best_w) {
        best_w = wgts[i];
        best = u;
      }
    }
    if (best != -1) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;  // stays single
    }
  }

  // Number coarse vertices.
  CoarseLevel level;
  level.fine_to_coarse.assign(static_cast<std::size_t>(n), -1);
  VertexId coarse_n = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (level.fine_to_coarse[static_cast<std::size_t>(v)] != -1) continue;
    const VertexId m = match[static_cast<std::size_t>(v)];
    level.fine_to_coarse[static_cast<std::size_t>(v)] = coarse_n;
    level.fine_to_coarse[static_cast<std::size_t>(m)] = coarse_n;
    ++coarse_n;
  }

  GraphBuilder b(coarse_n);
  std::vector<double> cw(static_cast<std::size_t>(coarse_n), 0.0);
  std::vector<double> cx(static_cast<std::size_t>(coarse_n), 0.0);
  std::vector<double> cy(static_cast<std::size_t>(coarse_n), 0.0);
  std::vector<int> members(static_cast<std::size_t>(coarse_n), 0);
  for (VertexId v = 0; v < n; ++v) {
    const auto c = static_cast<std::size_t>(
        level.fine_to_coarse[static_cast<std::size_t>(v)]);
    cw[c] += g.vertex_weight(v);
    if (g.has_coordinates()) {
      cx[c] += g.coordinate(v).x;
      cy[c] += g.coordinate(v).y;
    }
    ++members[c];
  }
  for (VertexId c = 0; c < coarse_n; ++c) {
    b.set_vertex_weight(c, cw[static_cast<std::size_t>(c)]);
    if (g.has_coordinates()) {
      const auto m = static_cast<double>(members[static_cast<std::size_t>(c)]);
      b.set_coordinate(c, {cx[static_cast<std::size_t>(c)] / m,
                           cy[static_cast<std::size_t>(c)] / m});
    }
  }

  for (VertexId v = 0; v < n; ++v) {
    const VertexId cv = level.fine_to_coarse[static_cast<std::size_t>(v)];
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId cu = level.fine_to_coarse[static_cast<std::size_t>(nbrs[i])];
      // Add once per fine edge (v < nbr); builder merges parallels.
      if (v < nbrs[i] && cv != cu) b.add_edge(cv, cu, wgts[i]);
    }
  }

  level.graph = b.build();
  return level;
}

CoarsenHierarchy coarsen_to(const Graph& g, VertexId target_vertices,
                            Rng& rng) {
  GAPART_REQUIRE(target_vertices >= 2, "coarsen target must be >= 2");
  CoarsenHierarchy h;
  const Graph* current = &g;
  while (current->num_vertices() > target_vertices) {
    CoarseLevel level = coarsen_once(*current, rng);
    const VertexId before = current->num_vertices();
    const VertexId after = level.graph.num_vertices();
    if (after >= before || static_cast<double>(after) >
                               0.9 * static_cast<double>(before)) {
      break;  // matching stalled (e.g. star-like graphs)
    }
    h.levels.push_back(std::move(level));
    current = &h.levels.back().graph;
  }
  return h;
}

Assignment project_assignment(const Assignment& coarse,
                              const std::vector<VertexId>& fine_to_coarse) {
  Assignment fine(fine_to_coarse.size());
  for (std::size_t v = 0; v < fine_to_coarse.size(); ++v) {
    const auto c = static_cast<std::size_t>(fine_to_coarse[v]);
    GAPART_ASSERT(c < coarse.size());
    fine[v] = coarse[c];
  }
  return fine;
}

}  // namespace gapart
