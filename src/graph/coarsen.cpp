#include "graph/coarsen.hpp"

#include <numeric>
#include <utility>

#include "common/assert.hpp"

namespace gapart {

CoarseLevel contract_clusters(const Graph& g,
                              const std::vector<VertexId>& labels,
                              VertexId num_clusters) {
  const VertexId n = g.num_vertices();
  GAPART_REQUIRE(static_cast<VertexId>(labels.size()) == n,
                 "cluster labels must cover every vertex");
  GAPART_REQUIRE(num_clusters >= 1, "need at least one cluster");

  CoarseLevel level;
  level.fine_to_coarse = labels;

  GraphBuilder b(num_clusters);
  std::vector<double> cw(static_cast<std::size_t>(num_clusters), 0.0);
  std::vector<double> cx(static_cast<std::size_t>(num_clusters), 0.0);
  std::vector<double> cy(static_cast<std::size_t>(num_clusters), 0.0);
  std::vector<int> members(static_cast<std::size_t>(num_clusters), 0);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId label = labels[static_cast<std::size_t>(v)];
    GAPART_REQUIRE(label >= 0 && label < num_clusters,
                   "cluster label out of range: ", label);
    const auto c = static_cast<std::size_t>(label);
    cw[c] += g.vertex_weight(v);
    if (g.has_coordinates()) {
      cx[c] += g.coordinate(v).x;
      cy[c] += g.coordinate(v).y;
    }
    ++members[c];
  }
  for (VertexId c = 0; c < num_clusters; ++c) {
    GAPART_REQUIRE(members[static_cast<std::size_t>(c)] > 0,
                   "empty cluster ", c);
    b.set_vertex_weight(c, cw[static_cast<std::size_t>(c)]);
    if (g.has_coordinates()) {
      const auto m = static_cast<double>(members[static_cast<std::size_t>(c)]);
      b.set_coordinate(c, {cx[static_cast<std::size_t>(c)] / m,
                           cy[static_cast<std::size_t>(c)] / m});
    }
  }

  for (VertexId v = 0; v < n; ++v) {
    const VertexId cv = labels[static_cast<std::size_t>(v)];
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId cu = labels[static_cast<std::size_t>(nbrs[i])];
      // Add once per fine edge (v < nbr); builder merges parallels.
      if (v < nbrs[i] && cv != cu) b.add_edge(cv, cu, wgts[i]);
    }
  }

  level.graph = b.build();
  return level;
}

CoarseLevel coarsen_once(const Graph& g, Rng& rng,
                         const Assignment* respect) {
  const VertexId n = g.num_vertices();
  GAPART_REQUIRE(respect == nullptr ||
                     static_cast<VertexId>(respect->size()) == n,
                 "respected assignment must cover every vertex");
  std::vector<VertexId> match(static_cast<std::size_t>(n), -1);

  // Visit vertices in random order; match each unmatched vertex with its
  // heaviest-edge unmatched neighbour (ties: first encountered).  With a
  // respected assignment, only same-part neighbours are candidates, so the
  // partition stays constant on every coarse vertex.
  std::vector<VertexId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  for (VertexId v : order) {
    if (match[static_cast<std::size_t>(v)] != -1) continue;
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    VertexId best = -1;
    double best_w = -1.0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      if (match[static_cast<std::size_t>(u)] != -1) continue;
      if (respect != nullptr &&
          (*respect)[static_cast<std::size_t>(u)] !=
              (*respect)[static_cast<std::size_t>(v)]) {
        continue;
      }
      if (wgts[i] > best_w) {
        best_w = wgts[i];
        best = u;
      }
    }
    if (best != -1) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;  // stays single
    }
  }

  // Number coarse vertices and contract the matched pairs as clusters.
  std::vector<VertexId> labels(static_cast<std::size_t>(n), -1);
  VertexId coarse_n = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (labels[static_cast<std::size_t>(v)] != -1) continue;
    const VertexId m = match[static_cast<std::size_t>(v)];
    labels[static_cast<std::size_t>(v)] = coarse_n;
    labels[static_cast<std::size_t>(m)] = coarse_n;
    ++coarse_n;
  }
  return contract_clusters(g, labels, coarse_n);
}

std::vector<VertexId> CoarsenHierarchy::flatten_map(
    VertexId num_fine_vertices) const {
  std::vector<VertexId> map(static_cast<std::size_t>(num_fine_vertices));
  if (levels.empty()) {
    std::iota(map.begin(), map.end(), 0);
    return map;
  }
  GAPART_REQUIRE(levels.front().fine_to_coarse.size() ==
                     static_cast<std::size_t>(num_fine_vertices),
                 "hierarchy was built for a different graph");
  map = levels.front().fine_to_coarse;
  for (std::size_t li = 1; li < levels.size(); ++li) {
    const auto& f2c = levels[li].fine_to_coarse;
    for (auto& c : map) c = f2c[static_cast<std::size_t>(c)];
  }
  return map;
}

Assignment CoarsenHierarchy::project_to_finest(
    const Assignment& coarse, VertexId num_fine_vertices) const {
  if (levels.empty()) {
    GAPART_REQUIRE(coarse.size() ==
                       static_cast<std::size_t>(num_fine_vertices),
                   "assignment does not cover the graph");
    return coarse;
  }
  return project_assignment(coarse, flatten_map(num_fine_vertices));
}

CoarsenHierarchy coarsen_to(const Graph& g, VertexId target_vertices,
                            Rng& rng, const Assignment* respect) {
  GAPART_REQUIRE(target_vertices >= 2, "coarsen target must be >= 2");
  CoarsenHierarchy h;
  // One draw from the caller, one independent stream per level: the level-j
  // matching is a pure function of (entry rng state, j), so the hierarchy
  // does not depend on its own depth or on the caller's later consumption.
  const Rng base = rng.split();
  const Graph* current = &g;
  Assignment respected;
  if (respect != nullptr) respected = *respect;
  std::uint64_t level_index = 0;
  while (current->num_vertices() > target_vertices) {
    Rng level_rng = base.fork(level_index++);
    CoarseLevel level = coarsen_once(
        *current, level_rng, respect != nullptr ? &respected : nullptr);
    const VertexId before = current->num_vertices();
    const VertexId after = level.graph.num_vertices();
    if (after >= before || static_cast<double>(after) >
                               0.9 * static_cast<double>(before)) {
      break;  // matching stalled (e.g. star-like graphs)
    }
    if (respect != nullptr) {
      // Project the respected partition down: constant per coarse vertex by
      // construction, so any member's label is THE label.
      Assignment coarse_respect(static_cast<std::size_t>(after));
      for (VertexId v = 0; v < before; ++v) {
        coarse_respect[static_cast<std::size_t>(
            level.fine_to_coarse[static_cast<std::size_t>(v)])] =
            respected[static_cast<std::size_t>(v)];
      }
      respected = std::move(coarse_respect);
    }
    h.levels.push_back(std::move(level));
    current = &h.levels.back().graph;
  }
  return h;
}

Assignment project_assignment(const Assignment& coarse,
                              const std::vector<VertexId>& fine_to_coarse) {
  Assignment fine(fine_to_coarse.size());
  for (std::size_t v = 0; v < fine_to_coarse.size(); ++v) {
    const auto c = static_cast<std::size_t>(fine_to_coarse[v]);
    GAPART_ASSERT(c < coarse.size());
    fine[v] = coarse[c];
  }
  return fine;
}

Assignment uncoarsen_with_refinement(const Graph& g,
                                     const CoarsenHierarchy& hierarchy,
                                     Assignment coarse, PartId num_parts,
                                     const LevelRefiner& refine,
                                     bool refine_coarsest) {
  Assignment assignment = std::move(coarse);
  if (refine && refine_coarsest) {
    PartitionState state(hierarchy.coarsest(g), std::move(assignment),
                         num_parts);
    refine(state, hierarchy.num_levels());
    assignment = std::move(state).release_assignment();
  }
  for (std::size_t li = hierarchy.levels.size(); li-- > 0;) {
    assignment =
        project_assignment(assignment, hierarchy.levels[li].fine_to_coarse);
    const Graph& fine = hierarchy.graph_at(g, li);
    if (refine) {
      PartitionState state(fine, std::move(assignment), num_parts);
      refine(state, li);
      assignment = std::move(state).release_assignment();
    }
  }
  return assignment;
}

}  // namespace gapart
