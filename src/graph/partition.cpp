#include "graph/partition.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/assert.hpp"
#include "common/checksum.hpp"

namespace gapart {

namespace {

// One content-hash item: two differently-seeded CRC32s over the item's raw
// bytes widened to 64 bits, then scrambled through a SplitMix64-style
// finalizer.  CRC alone is linear over GF(2); the finalizer breaks that
// linearity so the commutative (wrapping-add) combination below cannot be
// cancelled by a second coordinated change.
std::uint64_t hash_item(const void* data, std::size_t len) {
  const auto lo = static_cast<std::uint64_t>(crc32(data, len, 0x9e3779b9u));
  const auto hi = static_cast<std::uint64_t>(crc32(data, len, 0x85ebca6bu));
  std::uint64_t z = (hi << 32) | lo;
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

std::uint64_t hash_vertex_part(VertexId v, PartId p) {
  char buf[sizeof(std::uint64_t) + sizeof(std::int32_t)];
  const auto v64 = static_cast<std::uint64_t>(v);
  const auto p32 = static_cast<std::int32_t>(p);
  std::memcpy(buf, &v64, sizeof(v64));
  std::memcpy(buf + sizeof(v64), &p32, sizeof(p32));
  return hash_item(buf, sizeof(buf));
}

std::uint64_t hash_part_weight(PartId q, double w) {
  char buf[sizeof(std::int32_t) + sizeof(double)];
  const auto q32 = static_cast<std::int32_t>(q);
  std::memcpy(buf, &q32, sizeof(q32));
  std::memcpy(buf + sizeof(q32), &w, sizeof(w));
  return hash_item(buf, sizeof(buf));
}

std::uint64_t hash_shape(VertexId n, PartId k) {
  char buf[sizeof(std::uint64_t) + sizeof(std::int32_t)];
  const auto n64 = static_cast<std::uint64_t>(n);
  const auto k32 = static_cast<std::int32_t>(k);
  std::memcpy(buf, &n64, sizeof(n64));
  std::memcpy(buf + sizeof(n64), &k32, sizeof(k32));
  return hash_item(buf, sizeof(buf));
}

}  // namespace

const char* objective_name(Objective o) {
  switch (o) {
    case Objective::kTotalComm:
      return "fitness1 (total communication)";
    case Objective::kWorstComm:
      return "fitness2 (worst-case communication)";
  }
  return "unknown";
}

bool is_valid_assignment(const Graph& g, const Assignment& a,
                         PartId num_parts) {
  if (static_cast<VertexId>(a.size()) != g.num_vertices()) return false;
  return std::all_of(a.begin(), a.end(),
                     [num_parts](PartId p) { return p >= 0 && p < num_parts; });
}

PartitionMetrics compute_metrics(const Graph& g, const Assignment& a,
                                 PartId num_parts) {
  GAPART_REQUIRE(num_parts >= 1, "need at least one part");
  GAPART_REQUIRE(is_valid_assignment(g, a, num_parts),
                 "invalid assignment for ", num_parts, " parts");
  PartitionMetrics m;
  m.part_weight.assign(static_cast<std::size_t>(num_parts), 0.0);
  m.part_cut.assign(static_cast<std::size_t>(num_parts), 0.0);

  const VertexId n = g.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    const auto q = static_cast<std::size_t>(a[static_cast<std::size_t>(v)]);
    m.part_weight[q] += g.vertex_weight(v);
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (a[static_cast<std::size_t>(nbrs[i])] !=
          a[static_cast<std::size_t>(v)]) {
        m.part_cut[q] += wgts[i];
      }
    }
  }

  const double mean = g.total_vertex_weight() / static_cast<double>(num_parts);
  for (PartId q = 0; q < num_parts; ++q) {
    const double d = m.part_weight[static_cast<std::size_t>(q)] - mean;
    m.imbalance_sq += d * d;
    m.sum_part_cut += m.part_cut[static_cast<std::size_t>(q)];
    m.max_part_cut =
        std::max(m.max_part_cut, m.part_cut[static_cast<std::size_t>(q)]);
  }
  return m;
}

double fitness_from_metrics(const PartitionMetrics& m,
                            const FitnessParams& params) {
  const double comm = params.objective == Objective::kTotalComm
                          ? m.sum_part_cut
                          : m.max_part_cut;
  return -(m.imbalance_sq + params.lambda * comm);
}

double evaluate_fitness(const Graph& g, const Assignment& a, PartId num_parts,
                        const FitnessParams& params) {
  return fitness_from_metrics(compute_metrics(g, a, num_parts), params);
}

PartitionState::PartitionState(const Graph& g, Assignment a, PartId num_parts)
    : g_(&g), num_parts_(num_parts), assign_(std::move(a)) {
  GAPART_REQUIRE(num_parts_ >= 1, "need at least one part");
  GAPART_REQUIRE(is_valid_assignment(g, assign_, num_parts_),
                 "invalid assignment for ", num_parts_, " parts");
  auto m = compute_metrics(g, assign_, num_parts_);
  part_weight_ = std::move(m.part_weight);
  part_cut_ = std::move(m.part_cut);
  sum_part_cut_ = m.sum_part_cut;
  imbalance_sq_ = m.imbalance_sq;
  mean_weight_ = g.total_vertex_weight() / static_cast<double>(num_parts_);

  const auto it = std::max_element(part_cut_.begin(), part_cut_.end());
  max_cut_cache_ = *it;
  max_cut_part_ = static_cast<PartId>(it - part_cut_.begin());
  max_cut_dirty_ = false;

  const auto n = static_cast<std::size_t>(g.num_vertices());
  ext_deg_.assign(n, 0);
  frontier_pos_.assign(n, -1);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const PartId p = assign_[static_cast<std::size_t>(v)];
    std::int32_t ext = 0;
    for (VertexId u : g.neighbors(v)) {
      ext += assign_[static_cast<std::size_t>(u)] != p;
    }
    ext_deg_[static_cast<std::size_t>(v)] = ext;
    if (ext > 0) {
      frontier_pos_[static_cast<std::size_t>(v)] =
          static_cast<std::int32_t>(frontier_.size());
      frontier_.push_back(v);
    }
  }

  conn_.resize(static_cast<std::size_t>(num_parts_));
  visit_flags_.resize(n);
  batch_touched_.resize(n);
  part_touched_.resize(static_cast<std::size_t>(num_parts_));
}

double PartitionState::max_part_cut() const {
  if (max_cut_dirty_) {
    const auto it = std::max_element(part_cut_.begin(), part_cut_.end());
    max_cut_cache_ = *it;
    max_cut_part_ = static_cast<PartId>(it - part_cut_.begin());
    max_cut_dirty_ = false;
  }
  return max_cut_cache_;
}

double PartitionState::fitness(const FitnessParams& params) const {
  const double comm = params.objective == Objective::kTotalComm
                          ? sum_part_cut_
                          : max_part_cut();
  return -(imbalance_sq_ + params.lambda * comm);
}

void PartitionState::sync_frontier(VertexId u) {
  const auto i = static_cast<std::size_t>(u);
  const bool boundary = ext_deg_[i] > 0;
  const std::int32_t pos = frontier_pos_[i];
  if (boundary && pos < 0) {
    frontier_pos_[i] = static_cast<std::int32_t>(frontier_.size());
    frontier_.push_back(u);
  } else if (!boundary && pos >= 0) {
    const VertexId last = frontier_.back();
    frontier_[static_cast<std::size_t>(pos)] = last;
    frontier_pos_[static_cast<std::size_t>(last)] = pos;
    frontier_.pop_back();
    frontier_pos_[i] = -1;
  }
}

void PartitionState::move(VertexId v, PartId to) {
  GAPART_ASSERT(v >= 0 && v < g_->num_vertices());
  GAPART_ASSERT(to >= 0 && to < num_parts_);
  const PartId from = assign_[static_cast<std::size_t>(v)];
  if (from == to) return;

  const auto nbrs = g_->neighbors(v);
  const auto wgts = g_->edge_weights(v);

  // Single scan: connectivity of v into `from`/`to` plus the neighbours'
  // external-degree updates (v's part flips from `from` to `to`, so only
  // neighbours sitting in one of those two parts change boundary status).
  double wdeg = 0.0;
  double cf = 0.0;  // weight of v's edges into `from`
  double ct = 0.0;
  std::int32_t ext_after = 0;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const VertexId u = nbrs[i];
    const PartId p = assign_[static_cast<std::size_t>(u)];
    wdeg += wgts[i];
    ext_after += p != to;
    if (p == from) {
      cf += wgts[i];
      ++ext_deg_[static_cast<std::size_t>(u)];
      sync_frontier(u);
    } else if (p == to) {
      ct += wgts[i];
      --ext_deg_[static_cast<std::size_t>(u)];
      sync_frontier(u);
    }
  }

  // Cut update: only C(from) and C(to) change — an edge into a third part
  // stays cut either way.
  part_cut_[static_cast<std::size_t>(from)] += 2.0 * cf - wdeg;
  part_cut_[static_cast<std::size_t>(to)] += wdeg - 2.0 * ct;
  sum_part_cut_ += 2.0 * (cf - ct);

  // Load / imbalance update.
  const double w = g_->vertex_weight(v);
  const double wf = part_weight_[static_cast<std::size_t>(from)];
  const double wt = part_weight_[static_cast<std::size_t>(to)];
  imbalance_sq_ -= (wf - mean_weight_) * (wf - mean_weight_);
  imbalance_sq_ -= (wt - mean_weight_) * (wt - mean_weight_);
  part_weight_[static_cast<std::size_t>(from)] = wf - w;
  part_weight_[static_cast<std::size_t>(to)] = wt + w;
  imbalance_sq_ += (wf - w - mean_weight_) * (wf - w - mean_weight_);
  imbalance_sq_ += (wt + w - mean_weight_) * (wt + w - mean_weight_);

  assign_[static_cast<std::size_t>(v)] = to;
  ext_deg_[static_cast<std::size_t>(v)] = ext_after;
  sync_frontier(v);

  // Max-cut cache: O(1) refresh, unless the arg-max part shrank.
  if (!max_cut_dirty_) {
    if (max_cut_part_ == from || max_cut_part_ == to) {
      const double at = part_cut_[static_cast<std::size_t>(max_cut_part_)];
      if (at < max_cut_cache_) {
        max_cut_dirty_ = true;
      } else {
        max_cut_cache_ = at;
      }
    }
    if (!max_cut_dirty_) {
      for (const PartId q : {from, to}) {
        if (part_cut_[static_cast<std::size_t>(q)] > max_cut_cache_) {
          max_cut_cache_ = part_cut_[static_cast<std::size_t>(q)];
          max_cut_part_ = q;
        }
      }
    }
  }
}

void PartitionState::rebind_grown(const Graph& grown,
                                  std::span<const VertexId> touched_old,
                                  std::span<const PartId> new_parts) {
  const Graph& old_g = *g_;
  const VertexId n_old = old_g.num_vertices();
  const VertexId n_new = grown.num_vertices();
  GAPART_REQUIRE(n_new >= n_old, "grown graph smaller than current graph");
  GAPART_REQUIRE(static_cast<VertexId>(new_parts.size()) == n_new - n_old,
                 "new_parts covers ", new_parts.size(), " vertices, expected ",
                 n_new - n_old);
  for (const PartId p : new_parts) {
    GAPART_REQUIRE(p >= 0 && p < num_parts_, "new part ", p,
                   " out of range for ", num_parts_, " parts");
  }
  VertexId prev = -1;
  for (const VertexId v : touched_old) {
    GAPART_REQUIRE(v >= 0 && v < n_old, "touched vertex ", v,
                   " is not a surviving vertex");
    GAPART_REQUIRE(v > prev, "touched_old must be strictly ascending");
    prev = v;
  }

  // Retract the touched survivors' old cut contributions and weights.  Cut
  // terms are per-endpoint (part_cut_[q] sums the outgoing edges of every
  // vertex in q), so retract-then-re-add per damaged vertex is exact: an
  // unchanged edge to an untouched neighbour keeps that neighbour's side
  // untouched, and its own side is re-added below.
  for (const VertexId v : touched_old) {
    const auto p = static_cast<std::size_t>(assign_[static_cast<std::size_t>(v)]);
    const auto nbrs = old_g.neighbors(v);
    const auto wgts = old_g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (assign_[static_cast<std::size_t>(nbrs[i])] !=
          assign_[static_cast<std::size_t>(v)]) {
        part_cut_[p] -= wgts[i];
      }
    }
    part_weight_[p] += grown.vertex_weight(v) - old_g.vertex_weight(v);
  }

  // Append the new vertices (parts from the caller, boundary synced below).
  // Growth is geometric (no exact reserve), so a stream of small deltas pays
  // amortized O(new) here, not O(V) per rebind.
  const auto sz_new = static_cast<std::size_t>(n_new);
  ext_deg_.resize(sz_new, 0);
  frontier_pos_.resize(sz_new, -1);
  for (std::size_t i = 0; i < new_parts.size(); ++i) {
    assign_.push_back(new_parts[i]);
    part_weight_[static_cast<std::size_t>(new_parts[i])] +=
        grown.vertex_weight(n_old + static_cast<VertexId>(i));
  }

  g_ = &grown;
  visit_flags_.grow(sz_new);
  batch_touched_.grow(sz_new);

  // Re-add the damage set's cut contributions and boundary state from the
  // grown graph.  A neighbour of a new vertex, and either endpoint of a
  // changed edge, is in the damage set by precondition, so untouched
  // survivors' ext_deg_ / frontier membership stay valid.
  const auto readd = [&](VertexId v) {
    const PartId pv = assign_[static_cast<std::size_t>(v)];
    const auto nbrs = grown.neighbors(v);
    const auto wgts = grown.edge_weights(v);
    std::int32_t ext = 0;
    double cut = 0.0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (assign_[static_cast<std::size_t>(nbrs[i])] != pv) {
        cut += wgts[i];
        ++ext;
      }
    }
    part_cut_[static_cast<std::size_t>(pv)] += cut;
    ext_deg_[static_cast<std::size_t>(v)] = ext;
    sync_frontier(v);
  };
  for (const VertexId v : touched_old) readd(v);
  for (VertexId v = n_old; v < n_new; ++v) readd(v);

  // Derived O(k) state: the mean load moved with the total weight, so the
  // imbalance term is recomputed wholesale rather than patched per part.
  mean_weight_ = grown.total_vertex_weight() / static_cast<double>(num_parts_);
  sum_part_cut_ = 0.0;
  imbalance_sq_ = 0.0;
  for (PartId q = 0; q < num_parts_; ++q) {
    sum_part_cut_ += part_cut_[static_cast<std::size_t>(q)];
    const double d = part_weight_[static_cast<std::size_t>(q)] - mean_weight_;
    imbalance_sq_ += d * d;
  }
  const auto it = std::max_element(part_cut_.begin(), part_cut_.end());
  max_cut_cache_ = *it;
  max_cut_part_ = static_cast<PartId>(it - part_cut_.begin());
  max_cut_dirty_ = false;
}

double PartitionState::scan_connectivity(ConnectivityScratch& conn,
                                         VertexId v) const {
  const auto nbrs = g_->neighbors(v);
  const auto wgts = g_->edge_weights(v);
  conn.begin();
  double wdeg = 0.0;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    conn.add(assign_[static_cast<std::size_t>(nbrs[i])], wgts[i]);
    wdeg += wgts[i];
  }
  return wdeg;
}

PartitionState::ScanGainContext PartitionState::make_scan_context(
    VertexId v, PartId from, double wdeg,
    const FitnessParams& params) const {
  ScanGainContext ctx;
  ctx.from = from;
  ctx.wdeg = wdeg;
  ctx.w = g_->vertex_weight(v);
  const double wf = part_weight_[static_cast<std::size_t>(from)];
  ctx.imb_base = imbalance_sq_ -
                 (wf - mean_weight_) * (wf - mean_weight_) +
                 (wf - ctx.w - mean_weight_) * (wf - ctx.w - mean_weight_);
  ctx.base_fitness = fitness(params);
  return ctx;
}

double PartitionState::gain_from_scan(const ConnectivityScratch& conn,
                                      const ScanGainContext& ctx, PartId to,
                                      double others_max,
                                      const FitnessParams& params) const {
  const double cf = conn[ctx.from];
  const double ct = conn[to];

  const double wt = part_weight_[static_cast<std::size_t>(to)];
  const double new_imb =
      ctx.imb_base - (wt - mean_weight_) * (wt - mean_weight_) +
      (wt + ctx.w - mean_weight_) * (wt + ctx.w - mean_weight_);

  double new_comm = 0.0;
  if (params.objective == Objective::kTotalComm) {
    new_comm = sum_part_cut_ + 2.0 * (cf - ct);
  } else {
    const double d_from = 2.0 * cf - ctx.wdeg;
    const double d_to = ctx.wdeg - 2.0 * ct;
    double mx = others_max;
    mx = std::max(mx,
                  part_cut_[static_cast<std::size_t>(ctx.from)] + d_from);
    mx = std::max(mx, part_cut_[static_cast<std::size_t>(to)] + d_to);
    new_comm = mx;
  }
  return -(new_imb + params.lambda * new_comm) - ctx.base_fitness;
}

BestMove PartitionState::best_move(VertexId v, const FitnessParams& params,
                                   double min_gain) const {
  return best_move_with(conn_, v, params, min_gain);
}

BestMove PartitionState::best_move_with(ConnectivityScratch& scratch,
                                        VertexId v,
                                        const FitnessParams& params,
                                        double min_gain) const {
  GAPART_ASSERT(v >= 0 && v < g_->num_vertices());
  GAPART_ASSERT(scratch.size() == static_cast<std::size_t>(num_parts_));
  BestMove best;
  if (!is_boundary(v)) return best;

  const PartId from = assign_[static_cast<std::size_t>(v)];
  const double wdeg = scan_connectivity(scratch, v);

  // Under kWorstComm every candidate needs max C(q) over q not in
  // {from, to}: precompute the top-2 cuts over q != from once (floored at 0,
  // like the legacy full scan), then each candidate is O(1).
  double top1 = 0.0;
  double top2 = 0.0;
  PartId top1_part = -1;
  if (params.objective == Objective::kWorstComm) {
    for (PartId q = 0; q < num_parts_; ++q) {
      if (q == from) continue;
      const double c = part_cut_[static_cast<std::size_t>(q)];
      if (c > top1) {
        top2 = top1;
        top1 = c;
        top1_part = q;
      } else if (c > top2) {
        top2 = c;
      }
    }
  }

  // Candidates come straight from the scan's touched list (unsorted); the
  // tie-break clause resolves equal gains to the lowest part id, exactly
  // like the legacy ascending neighbor_parts() probe loop.  Gains that
  // compare equal as doubles are bitwise identical, so this is
  // order-independent and deterministic.
  const ScanGainContext ctx = make_scan_context(v, from, wdeg, params);
  double best_gain = min_gain;
  for (const PartId to : scratch.touched()) {
    if (to == from) continue;
    const double others = to == top1_part ? top2 : top1;
    const double gain = gain_from_scan(scratch, ctx, to, others, params);
    ++best.candidates;
    if (gain > best_gain ||
        (gain == best_gain && best.to >= 0 && to < best.to)) {
      best_gain = gain;
      best.to = to;
    }
  }
  if (best.to >= 0) best.gain = best_gain;
  return best;
}

double PartitionState::move_gain(VertexId v, PartId to,
                                 const FitnessParams& params) const {
  GAPART_ASSERT(v >= 0 && v < g_->num_vertices());
  GAPART_ASSERT(to >= 0 && to < num_parts_);
  const PartId from = assign_[static_cast<std::size_t>(v)];
  if (from == to) return 0.0;

  const double wdeg = scan_connectivity(conn_, v);
  double others_max = 0.0;
  if (params.objective == Objective::kWorstComm) {
    for (PartId q = 0; q < num_parts_; ++q) {
      if (q == from || q == to) continue;
      others_max =
          std::max(others_max, part_cut_[static_cast<std::size_t>(q)]);
    }
  }
  return gain_from_scan(conn_, make_scan_context(v, from, wdeg, params), to,
                        others_max, params);
}

BatchApplyStats PartitionState::apply_candidate_batch(
    std::span<const CandidateMove> candidates, const FitnessParams& params,
    double min_gain, std::vector<CandidateMove>* applied,
    std::vector<VertexId>* deferred) {
  BatchApplyStats stats;
  batch_touched_.clear();
  part_touched_.clear();
  bool any_applied = false;

  for (const CandidateMove& c : candidates) {
    if (c.to < 0) continue;  // scorer found nothing above min_gain
    const VertexId v = c.v;
    GAPART_ASSERT(v >= 0 && v < g_->num_vertices());
    GAPART_ASSERT(c.to < num_parts_);

    // Closed-neighbourhood conflict: an applied move m marked N[m] ∪ {m};
    // candidate v is stale iff N[v] ∪ {v} hits a mark — exactly
    // (N[v] ∪ {v}) ∩ (N[m] ∪ {m}) ≠ ∅, i.e. the scan-time connectivity of v
    // saw a part assignment that has since changed (or v itself moved).
    bool dirty = batch_touched_.test(v);
    if (!dirty) {
      for (const VertexId u : g_->neighbors(v)) {
        if (batch_touched_.test(u)) {
          dirty = true;
          break;
        }
      }
    }
    if (dirty) {
      ++stats.deferred;
      if (deferred) deferred->push_back(v);
      continue;
    }

    // v's neighbourhood is untouched, so its part is still the scan-time one
    // and a scorer-produced candidate never targets it; skip defensively for
    // caller-constructed batches.
    const PartId from = assign_[static_cast<std::size_t>(v)];
    if (from == c.to) continue;

    // Part coupling: the frozen gain folded in the from/to part weights (and
    // under kWorstComm the global max cut, which ANY applied move can shift).
    // With both parts untouched and — under kWorstComm — no move applied yet,
    // the frozen gain is exact: its imbalance delta reads only the from/to
    // weights and its cut delta only v's neighbour parts, all unchanged.
    const bool parts_clean = !part_touched_.test(from) &&
                             !part_touched_.test(c.to);
    const bool exact =
        parts_clean &&
        (params.objective == Objective::kTotalComm || !any_applied);

    PartId to = c.to;
    double gain = c.gain;
    if (!exact) {
      ++stats.revalidated;
      const BestMove re = best_move(v, params, min_gain);
      if (re.to < 0) {
        ++stats.rejected;
        continue;
      }
      to = re.to;
      gain = re.gain;
    }

    move(v, to);
    any_applied = true;
    ++stats.applied;
    stats.fitness_gain += gain;
    batch_touched_.set(v);
    for (const VertexId u : g_->neighbors(v)) batch_touched_.set(u);
    part_touched_.set(from);
    part_touched_.set(to);
    if (applied) applied->push_back(CandidateMove{v, to, gain});
  }
  return stats;
}

std::vector<VertexId> PartitionState::boundary_vertices() const {
  std::vector<VertexId> out = frontier_;
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<VertexId> PartitionState::filter_boundary(
    std::span<const VertexId> seeds) const {
  std::vector<VertexId> out;
  out.reserve(seeds.size());
  for (const VertexId v : seeds) {
    GAPART_REQUIRE(v >= 0 && v < g_->num_vertices(), "seed vertex ", v,
                   " out of range for |V| = ", g_->num_vertices());
    if (is_boundary(v)) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<PartId> PartitionState::neighbor_parts(VertexId v) const {
  const PartId from = assign_[static_cast<std::size_t>(v)];
  scan_connectivity(conn_, v);
  std::vector<PartId> out;
  for (const PartId p : conn_.touched()) {
    if (p != from) out.push_back(p);
  }
  std::sort(out.begin(), out.end());
  return out;
}

PartitionMetrics PartitionState::metrics() const {
  PartitionMetrics m;
  m.part_weight = part_weight_;
  m.part_cut = part_cut_;
  m.sum_part_cut = sum_part_cut_;
  m.max_part_cut = max_part_cut();
  m.imbalance_sq = imbalance_sq_;
  return m;
}

std::uint64_t PartitionState::content_hash() const {
  std::uint64_t h = hash_shape(g_->num_vertices(), num_parts_);
  const VertexId n = g_->num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    h += hash_vertex_part(v, assign_[static_cast<std::size_t>(v)]);
  }
  for (PartId q = 0; q < num_parts_; ++q) {
    h += hash_part_weight(q, part_weight_[static_cast<std::size_t>(q)]);
  }
  return h;
}

std::uint64_t assignment_content_hash(const Graph& g, const Assignment& a,
                                      PartId num_parts) {
  GAPART_REQUIRE(is_valid_assignment(g, a, num_parts),
                 "invalid assignment for ", num_parts, " parts");
  std::uint64_t h = hash_shape(g.num_vertices(), num_parts);
  std::vector<double> weight(static_cast<std::size_t>(num_parts), 0.0);
  const VertexId n = g.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    const PartId p = a[static_cast<std::size_t>(v)];
    h += hash_vertex_part(v, p);
    weight[static_cast<std::size_t>(p)] += g.vertex_weight(v);
  }
  for (PartId q = 0; q < num_parts; ++q) {
    h += hash_part_weight(q, weight[static_cast<std::size_t>(q)]);
  }
  return h;
}

}  // namespace gapart
