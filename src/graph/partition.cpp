#include "graph/partition.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace gapart {

const char* objective_name(Objective o) {
  switch (o) {
    case Objective::kTotalComm:
      return "fitness1 (total communication)";
    case Objective::kWorstComm:
      return "fitness2 (worst-case communication)";
  }
  return "unknown";
}

bool is_valid_assignment(const Graph& g, const Assignment& a,
                         PartId num_parts) {
  if (static_cast<VertexId>(a.size()) != g.num_vertices()) return false;
  return std::all_of(a.begin(), a.end(),
                     [num_parts](PartId p) { return p >= 0 && p < num_parts; });
}

PartitionMetrics compute_metrics(const Graph& g, const Assignment& a,
                                 PartId num_parts) {
  GAPART_REQUIRE(num_parts >= 1, "need at least one part");
  GAPART_REQUIRE(is_valid_assignment(g, a, num_parts),
                 "invalid assignment for ", num_parts, " parts");
  PartitionMetrics m;
  m.part_weight.assign(static_cast<std::size_t>(num_parts), 0.0);
  m.part_cut.assign(static_cast<std::size_t>(num_parts), 0.0);

  const VertexId n = g.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    const auto q = static_cast<std::size_t>(a[static_cast<std::size_t>(v)]);
    m.part_weight[q] += g.vertex_weight(v);
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (a[static_cast<std::size_t>(nbrs[i])] !=
          a[static_cast<std::size_t>(v)]) {
        m.part_cut[q] += wgts[i];
      }
    }
  }

  const double mean = g.total_vertex_weight() / static_cast<double>(num_parts);
  for (PartId q = 0; q < num_parts; ++q) {
    const double d = m.part_weight[static_cast<std::size_t>(q)] - mean;
    m.imbalance_sq += d * d;
    m.sum_part_cut += m.part_cut[static_cast<std::size_t>(q)];
    m.max_part_cut =
        std::max(m.max_part_cut, m.part_cut[static_cast<std::size_t>(q)]);
  }
  return m;
}

double fitness_from_metrics(const PartitionMetrics& m,
                            const FitnessParams& params) {
  const double comm = params.objective == Objective::kTotalComm
                          ? m.sum_part_cut
                          : m.max_part_cut;
  return -(m.imbalance_sq + params.lambda * comm);
}

double evaluate_fitness(const Graph& g, const Assignment& a, PartId num_parts,
                        const FitnessParams& params) {
  return fitness_from_metrics(compute_metrics(g, a, num_parts), params);
}

PartitionState::PartitionState(const Graph& g, Assignment a, PartId num_parts)
    : g_(&g), num_parts_(num_parts), assign_(std::move(a)) {
  GAPART_REQUIRE(num_parts_ >= 1, "need at least one part");
  GAPART_REQUIRE(is_valid_assignment(g, assign_, num_parts_),
                 "invalid assignment for ", num_parts_, " parts");
  auto m = compute_metrics(g, assign_, num_parts_);
  part_weight_ = std::move(m.part_weight);
  part_cut_ = std::move(m.part_cut);
  sum_part_cut_ = m.sum_part_cut;
  imbalance_sq_ = m.imbalance_sq;
  mean_weight_ = g.total_vertex_weight() / static_cast<double>(num_parts_);
}

double PartitionState::max_part_cut() const {
  return *std::max_element(part_cut_.begin(), part_cut_.end());
}

double PartitionState::fitness(const FitnessParams& params) const {
  const double comm = params.objective == Objective::kTotalComm
                          ? sum_part_cut_
                          : max_part_cut();
  return -(imbalance_sq_ + params.lambda * comm);
}

void PartitionState::move(VertexId v, PartId to) {
  GAPART_ASSERT(v >= 0 && v < g_->num_vertices());
  GAPART_ASSERT(to >= 0 && to < num_parts_);
  const PartId from = assign_[static_cast<std::size_t>(v)];
  if (from == to) return;

  const auto nbrs = g_->neighbors(v);
  const auto wgts = g_->edge_weights(v);

  // Retract v's edge contributions while it sits in `from`.
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const PartId p = assign_[static_cast<std::size_t>(nbrs[i])];
    if (p != from) {
      part_cut_[static_cast<std::size_t>(from)] -= wgts[i];
      part_cut_[static_cast<std::size_t>(p)] -= wgts[i];
      sum_part_cut_ -= 2.0 * wgts[i];
    }
  }

  // Load / imbalance update.
  const double w = g_->vertex_weight(v);
  const double wf = part_weight_[static_cast<std::size_t>(from)];
  const double wt = part_weight_[static_cast<std::size_t>(to)];
  imbalance_sq_ -= (wf - mean_weight_) * (wf - mean_weight_);
  imbalance_sq_ -= (wt - mean_weight_) * (wt - mean_weight_);
  part_weight_[static_cast<std::size_t>(from)] = wf - w;
  part_weight_[static_cast<std::size_t>(to)] = wt + w;
  imbalance_sq_ += (wf - w - mean_weight_) * (wf - w - mean_weight_);
  imbalance_sq_ += (wt + w - mean_weight_) * (wt + w - mean_weight_);

  assign_[static_cast<std::size_t>(v)] = to;

  // Re-add v's edge contributions from `to`.
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const PartId p = assign_[static_cast<std::size_t>(nbrs[i])];
    if (p != to) {
      part_cut_[static_cast<std::size_t>(to)] += wgts[i];
      part_cut_[static_cast<std::size_t>(p)] += wgts[i];
      sum_part_cut_ += 2.0 * wgts[i];
    }
  }
}

double PartitionState::move_gain(VertexId v, PartId to,
                                 const FitnessParams& params) const {
  GAPART_ASSERT(v >= 0 && v < g_->num_vertices());
  GAPART_ASSERT(to >= 0 && to < num_parts_);
  const PartId from = assign_[static_cast<std::size_t>(v)];
  if (from == to) return 0.0;

  const auto nbrs = g_->neighbors(v);
  const auto wgts = g_->edge_weights(v);

  // A single move only changes C(from) and C(to): an edge to a third part p
  // stays cut, so C(p) is unaffected.
  double d_from = 0.0;
  double d_to = 0.0;
  double d_sum = 0.0;

  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const PartId p = assign_[static_cast<std::size_t>(nbrs[i])];
    const double w = wgts[i];
    if (p == from) {
      // Edge becomes cut: appears in C(from) and C(to).
      d_from += w;
      d_to += w;
      d_sum += 2.0 * w;
    } else if (p == to) {
      // Edge stops being cut.
      d_from -= w;
      d_to -= w;
      d_sum -= 2.0 * w;
    } else {
      // Stays cut; moves from C(from) to C(to); C(p) unchanged.
      d_from -= w;
      d_to += w;
    }
  }

  const double w = g_->vertex_weight(v);
  const double wf = part_weight_[static_cast<std::size_t>(from)];
  const double wt = part_weight_[static_cast<std::size_t>(to)];
  double new_imb = imbalance_sq_;
  new_imb -= (wf - mean_weight_) * (wf - mean_weight_);
  new_imb -= (wt - mean_weight_) * (wt - mean_weight_);
  new_imb += (wf - w - mean_weight_) * (wf - w - mean_weight_);
  new_imb += (wt + w - mean_weight_) * (wt + w - mean_weight_);

  double new_comm = 0.0;
  if (params.objective == Objective::kTotalComm) {
    new_comm = sum_part_cut_ + d_sum;
  } else {
    double mx = 0.0;
    for (PartId q = 0; q < num_parts_; ++q) {
      double c = part_cut_[static_cast<std::size_t>(q)];
      if (q == from) c += d_from;
      if (q == to) c += d_to;
      mx = std::max(mx, c);
    }
    new_comm = mx;
  }
  const double new_fitness = -(new_imb + params.lambda * new_comm);
  return new_fitness - fitness(params);
}

bool PartitionState::is_boundary(VertexId v) const {
  const PartId p = assign_[static_cast<std::size_t>(v)];
  for (VertexId u : g_->neighbors(v)) {
    if (assign_[static_cast<std::size_t>(u)] != p) return true;
  }
  return false;
}

std::vector<VertexId> PartitionState::boundary_vertices() const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g_->num_vertices(); ++v) {
    if (is_boundary(v)) out.push_back(v);
  }
  return out;
}

std::vector<PartId> PartitionState::neighbor_parts(VertexId v) const {
  std::vector<PartId> out;
  const PartId p = assign_[static_cast<std::size_t>(v)];
  for (VertexId u : g_->neighbors(v)) {
    const PartId q = assign_[static_cast<std::size_t>(u)];
    if (q != p) out.push_back(q);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

PartitionMetrics PartitionState::metrics() const {
  PartitionMetrics m;
  m.part_weight = part_weight_;
  m.part_cut = part_cut_;
  m.sum_part_cut = sum_part_cut_;
  m.max_part_cut = max_part_cut();
  m.imbalance_sq = imbalance_sq_;
  return m;
}

}  // namespace gapart
