#include "graph/subgraph.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace gapart {

Subgraph induced_subgraph(const Graph& g,
                          const std::vector<VertexId>& vertices) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> to_sub(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    GAPART_REQUIRE(v >= 0 && v < n, "subgraph vertex ", v, " out of range");
    GAPART_REQUIRE(to_sub[static_cast<std::size_t>(v)] == -1,
                   "duplicate vertex ", v, " in subgraph selection");
    to_sub[static_cast<std::size_t>(v)] = static_cast<VertexId>(i);
  }

  GraphBuilder b(static_cast<VertexId>(vertices.size()));
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    b.set_vertex_weight(static_cast<VertexId>(i), g.vertex_weight(v));
    if (g.has_coordinates()) {
      b.set_coordinate(static_cast<VertexId>(i), g.coordinate(v));
    }
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      const VertexId su = to_sub[static_cast<std::size_t>(nbrs[j])];
      // Add each edge once (from the lower sub-id side).
      if (su > static_cast<VertexId>(i)) {
        b.add_edge(static_cast<VertexId>(i), su, wgts[j]);
      }
    }
  }

  Subgraph out;
  out.graph = b.build();
  out.to_parent = vertices;
  return out;
}

}  // namespace gapart
