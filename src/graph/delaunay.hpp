// Bowyer–Watson Delaunay triangulation of 2-D point sets.
//
// This powers the synthetic finite-element-style meshes that stand in for
// the paper's (unpublished) test graphs: jittered point sets are triangulated
// and the triangle edges become the computational graph.  The implementation
// is the classic incremental algorithm with a super-triangle; it is O(n^2)
// worst case, which is ample for the mesh sizes used here (<= tens of
// thousands of points).
#pragma once

#include <vector>

#include "graph/types.hpp"

namespace gapart {

/// Triangle over point indices, stored counter-clockwise.
struct Triangle {
  VertexId a = -1;
  VertexId b = -1;
  VertexId c = -1;

  friend bool operator==(const Triangle& x, const Triangle& y) {
    return x.a == y.a && x.b == y.b && x.c == y.c;
  }
};

/// Twice the signed area of triangle (a, b, c); positive when CCW.
double orient2d(Point2 a, Point2 b, Point2 c);

/// True when point d lies strictly inside the circumcircle of CCW triangle
/// (a, b, c).
bool in_circumcircle(Point2 a, Point2 b, Point2 c, Point2 d);

/// Delaunay triangulation of `points`.  Requires at least 3 points not all
/// collinear; duplicate points are rejected.  Returned triangles index into
/// `points` and are counter-clockwise.
std::vector<Triangle> delaunay_triangulate(const std::vector<Point2>& points);

/// Undirected edge list (u < v, deduplicated) of a triangulation.
std::vector<std::pair<VertexId, VertexId>> triangulation_edges(
    const std::vector<Triangle>& triangles);

}  // namespace gapart
