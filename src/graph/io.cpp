#include "graph/io.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/fault_injection.hpp"

namespace gapart {

namespace {

std::string next_data_line(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] != '%') return line;
  }
  return {};
}

/// Like next_data_line but keeps empty lines: a vertex with no neighbours is
/// written as an empty line, which must stay aligned with its vertex id.
/// nullopt at EOF — the caller decides whether running out of lines is a
/// truncated file (it is, whenever vertex lines are still owed).
std::optional<std::string> next_vertex_line(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] != '%') return line;
  }
  return std::nullopt;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream os(path);
  if (!os.good()) throw IoError("cannot open '" + path + "' for writing");
  return os;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) throw IoError("cannot open '" + path + "' for reading");
  return is;
}

/// Every writer funnels through this after its last insertion: flush, then
/// check the stream state, so a full disk / failed write surfaces as a typed
/// IoError instead of a silently truncated file.  The fault point simulates
/// exactly that failure mode (ENOSPC / short write) for tests.
void finish_write(std::ostream& os, const char* what) {
  if (GAPART_FAULT_POINT(FaultSite::kFileWrite)) {
    os.setstate(std::ios::badbit);  // as a real short write would
  }
  os.flush();
  if (!os.good()) {
    throw IoError(std::string("write failed (") + what +
                  "): stream went bad — disk full or device error?");
  }
}

}  // namespace

void write_graph(std::ostream& os, const Graph& g) {
  const bool weighted = !g.unit_weights();
  os << g.num_vertices() << ' ' << g.num_edges();
  if (weighted) os << " 11";
  os << '\n';
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    if (weighted) os << g.vertex_weight(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (weighted || i > 0) os << ' ';
      os << (nbrs[i] + 1);
      if (weighted) os << ' ' << wgts[i];
    }
    os << '\n';
  }
  finish_write(os, "graph");
}

void write_graph_file(const std::string& path, const Graph& g) {
  auto os = open_out(path);
  write_graph(os, g);
}

Graph read_graph(std::istream& is) {
  const std::string header = next_data_line(is);
  GAPART_REQUIRE(!header.empty(), "missing graph header line");
  std::istringstream hs(header);
  long long n = 0;
  long long m = 0;
  std::string fmt = "00";
  hs >> n >> m;
  GAPART_REQUIRE(!hs.fail(), "malformed graph header '", header, "'");
  hs >> fmt;
  const bool has_vwgt = fmt.size() >= 2 && fmt[fmt.size() - 2] == '1';
  const bool has_ewgt = !fmt.empty() && fmt.back() == '1';
  GAPART_REQUIRE(n >= 0 && m >= 0, "negative counts in header");

  GraphBuilder b(static_cast<VertexId>(n));
  for (long long v = 0; v < n; ++v) {
    const auto maybe_line = next_vertex_line(is);
    if (!maybe_line.has_value()) {
      // EOF with vertex lines still owed: the file was truncated (a crashed
      // or disk-full writer).  Surface it; a graph silently missing rows
      // would corrupt every downstream consumer.
      throw IoError("truncated graph file: header promises " +
                    std::to_string(n) + " vertex lines, found " +
                    std::to_string(v));
    }
    std::istringstream ls(*maybe_line);
    if (has_vwgt) {
      double w = 1.0;
      ls >> w;
      GAPART_REQUIRE(!ls.fail(), "missing vertex weight on line ", v + 1);
      b.set_vertex_weight(static_cast<VertexId>(v), w);
    }
    long long u = 0;
    while (ls >> u) {
      GAPART_REQUIRE(u >= 1 && u <= n, "neighbour ", u, " out of range");
      double w = 1.0;
      if (has_ewgt) {
        ls >> w;
        GAPART_REQUIRE(!ls.fail(), "missing edge weight on line ", v + 1);
      }
      // Each undirected edge appears on both endpoint lines; add from the
      // lower side only.
      if (u - 1 > v) {
        b.add_edge(static_cast<VertexId>(v), static_cast<VertexId>(u - 1), w);
      }
    }
  }
  Graph g = b.build();
  GAPART_REQUIRE(g.num_edges() == m, "header claims ", m, " edges, file has ",
                 g.num_edges());
  return g;
}

Graph read_graph_file(const std::string& path) {
  auto is = open_in(path);
  return read_graph(is);
}

void write_coordinates(std::ostream& os, const Graph& g) {
  GAPART_REQUIRE(g.has_coordinates(), "graph has no coordinates");
  for (const auto& p : g.coordinates()) {
    os << p.x << ' ' << p.y << '\n';
  }
  finish_write(os, "coordinates");
}

void write_coordinates_file(const std::string& path, const Graph& g) {
  auto os = open_out(path);
  write_coordinates(os, g);
}

Graph attach_coordinates(const Graph& g, std::istream& is) {
  std::vector<Point2> coords;
  coords.reserve(static_cast<std::size_t>(g.num_vertices()));
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    Point2 p;
    ls >> p.x >> p.y;
    GAPART_REQUIRE(!ls.fail(), "malformed coordinate line '", line, "'");
    coords.push_back(p);
  }
  GAPART_REQUIRE(static_cast<VertexId>(coords.size()) == g.num_vertices(),
                 "coordinate count ", coords.size(), " != |V| ",
                 g.num_vertices());

  // Rebuild with coordinates attached.
  GraphBuilder b(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    b.set_vertex_weight(v, g.vertex_weight(v));
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] > v) b.add_edge(v, nbrs[i], wgts[i]);
    }
  }
  b.set_coordinates(std::move(coords));
  return b.build();
}

void write_partition(std::ostream& os, const Assignment& a) {
  for (PartId p : a) os << p << '\n';
  finish_write(os, "partition");
}

void write_partition_file(const std::string& path, const Assignment& a) {
  auto os = open_out(path);
  write_partition(os, a);
}

Assignment read_partition(std::istream& is) {
  Assignment a;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    long long p = 0;
    ls >> p;
    GAPART_REQUIRE(!ls.fail(), "malformed partition line '", line, "'");
    GAPART_REQUIRE(p >= 0, "negative part id ", p);
    a.push_back(static_cast<PartId>(p));
  }
  return a;
}

Assignment read_partition_file(const std::string& path) {
  auto is = open_in(path);
  return read_partition(is);
}

}  // namespace gapart
