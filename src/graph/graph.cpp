#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <utility>

#include "common/assert.hpp"

namespace gapart {

bool Graph::has_edge(VertexId u, VertexId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::optional<double> Graph::edge_weight(VertexId u, VertexId v) const {
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return std::nullopt;
  const auto offset = static_cast<std::size_t>(it - nbrs.begin());
  return edge_weights(u)[offset];
}

double Graph::weighted_degree(VertexId v) const {
  const auto w = edge_weights(v);
  return std::accumulate(w.begin(), w.end(), 0.0);
}

std::string Graph::summary() const {
  std::ostringstream os;
  os << "|V|=" << num_vertices() << " |E|=" << num_edges();
  if (num_vertices() > 0) {
    std::int32_t dmin = degree(0);
    std::int32_t dmax = degree(0);
    for (VertexId v = 1; v < num_vertices(); ++v) {
      dmin = std::min(dmin, degree(v));
      dmax = std::max(dmax, degree(v));
    }
    os << " deg=[" << dmin << "," << dmax << "]";
  }
  os << (unit_weights_ ? " unit-weights" : " weighted");
  if (has_coordinates()) os << " with-coords";
  return os.str();
}

GraphBuilder::GraphBuilder(VertexId num_vertices)
    : num_vertices_(num_vertices),
      vwgt_(static_cast<std::size_t>(num_vertices), 1.0),
      coords_(static_cast<std::size_t>(num_vertices)) {
  GAPART_REQUIRE(num_vertices >= 0, "negative vertex count ", num_vertices);
}

void GraphBuilder::add_edge(VertexId u, VertexId v, double weight) {
  GAPART_REQUIRE(u >= 0 && u < num_vertices_, "edge endpoint ", u,
                 " out of range [0,", num_vertices_, ")");
  GAPART_REQUIRE(v >= 0 && v < num_vertices_, "edge endpoint ", v,
                 " out of range [0,", num_vertices_, ")");
  GAPART_REQUIRE(weight > 0.0, "edge weight must be positive, got ", weight);
  if (u == v) return;  // self-loops carry no cut information
  edges_.push_back({u, v, weight});
}

void GraphBuilder::set_vertex_weight(VertexId v, double weight) {
  GAPART_REQUIRE(v >= 0 && v < num_vertices_, "vertex ", v, " out of range");
  GAPART_REQUIRE(weight > 0.0, "vertex weight must be positive, got ", weight);
  vwgt_[static_cast<std::size_t>(v)] = weight;
}

void GraphBuilder::set_coordinate(VertexId v, Point2 p) {
  GAPART_REQUIRE(v >= 0 && v < num_vertices_, "vertex ", v, " out of range");
  coords_[static_cast<std::size_t>(v)] = p;
  has_coords_ = true;
}

void GraphBuilder::set_coordinates(std::vector<Point2> coords) {
  GAPART_REQUIRE(static_cast<VertexId>(coords.size()) == num_vertices_,
                 "coordinate count ", coords.size(), " != vertex count ",
                 num_vertices_);
  coords_ = std::move(coords);
  has_coords_ = num_vertices_ > 0;
}

Graph GraphBuilder::build() {
  const auto n = static_cast<std::size_t>(num_vertices_);
  const std::size_t m2 = edges_.size() * 2;

  // Fully linear CSR construction, O(V + E): a radix pass over the
  // (row, neighbour) key — two counting scatters, least-significant digit
  // (neighbour) first — replaces the per-row comparison sort.  Every array is
  // sized from the raw edge count up front, so building large benchmark
  // meshes never reallocates mid-construction.

  // Pass 1: raw per-vertex degrees (duplicates included) -> scatter offsets.
  // A vertex appears as a source exactly as often as it appears as a
  // neighbour (each undirected edge contributes one of each per endpoint),
  // so one offset table serves both scatter passes.
  std::vector<std::int32_t> cursor(n, 0);
  for (const auto& e : edges_) {
    ++cursor[static_cast<std::size_t>(e.u)];
    ++cursor[static_cast<std::size_t>(e.v)];
  }
  std::vector<std::int32_t> offset(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    offset[v + 1] = offset[v] + cursor[v];
  }

  // Pass 2 (low digit): scatter both directions of every edge into buckets
  // keyed by the NEIGHBOUR endpoint; the bucket id is implicit in the slot
  // range, so only the source and weight are stored.
  std::vector<VertexId> by_nbr_src(m2);
  std::vector<double> by_nbr_wgt(m2);
  std::copy(offset.begin(), offset.end() - 1, cursor.begin());
  for (const auto& e : edges_) {
    auto& cv = cursor[static_cast<std::size_t>(e.v)];
    by_nbr_src[static_cast<std::size_t>(cv)] = e.u;
    by_nbr_wgt[static_cast<std::size_t>(cv)] = e.w;
    ++cv;
    auto& cu = cursor[static_cast<std::size_t>(e.u)];
    by_nbr_src[static_cast<std::size_t>(cu)] = e.v;
    by_nbr_wgt[static_cast<std::size_t>(cu)] = e.w;
    ++cu;
  }

  // Pass 3 (high digit): walk the buckets in ascending neighbour order and
  // stably scatter each entry into its source row — every row comes out with
  // its neighbours already ascending, no per-row sort.
  std::vector<VertexId> raw_adj(m2);
  std::vector<double> raw_wgt(m2);
  std::copy(offset.begin(), offset.end() - 1, cursor.begin());
  for (std::size_t nbr = 0; nbr < n; ++nbr) {
    const auto begin = static_cast<std::size_t>(offset[nbr]);
    const auto end = static_cast<std::size_t>(offset[nbr + 1]);
    for (std::size_t i = begin; i < end; ++i) {
      auto& cu = cursor[static_cast<std::size_t>(by_nbr_src[i])];
      raw_adj[static_cast<std::size_t>(cu)] = static_cast<VertexId>(nbr);
      raw_wgt[static_cast<std::size_t>(cu)] = by_nbr_wgt[i];
      ++cu;
    }
  }

  // Pass 4: merge duplicates (weights summed) row by row.
  Graph g;
  g.xadj_.assign(n + 1, 0);
  g.adjncy_.clear();
  g.ewgt_.clear();
  g.adjncy_.reserve(m2);
  g.ewgt_.reserve(m2);

  for (std::size_t u = 0; u < n; ++u) {
    const auto begin = static_cast<std::size_t>(offset[u]);
    const auto end = static_cast<std::size_t>(offset[u + 1]);
    const std::size_t row_start = g.adjncy_.size();
    for (std::size_t i = begin; i < end; ++i) {
      if (g.adjncy_.size() > row_start && g.adjncy_.back() == raw_adj[i]) {
        g.ewgt_.back() += raw_wgt[i];
      } else {
        g.adjncy_.push_back(raw_adj[i]);
        g.ewgt_.push_back(raw_wgt[i]);
      }
    }
    g.xadj_[u + 1] = static_cast<std::int32_t>(g.adjncy_.size());
  }

  // Copy (not move) so the builder stays usable: callers may add more edges
  // and build() again (e.g. connectivity stitching loops).
  g.vwgt_ = vwgt_;
  g.total_vwgt_ = std::accumulate(g.vwgt_.begin(), g.vwgt_.end(), 0.0);
  if (has_coords_) g.coords_ = coords_;

  g.unit_weights_ =
      std::all_of(g.vwgt_.begin(), g.vwgt_.end(),
                  [](double w) { return w == 1.0; }) &&
      std::all_of(g.ewgt_.begin(), g.ewgt_.end(),
                  [](double w) { return w == 1.0; });
  return g;
}

}  // namespace gapart
