#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/assert.hpp"

namespace gapart {

bool Graph::has_edge(VertexId u, VertexId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::optional<double> Graph::edge_weight(VertexId u, VertexId v) const {
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return std::nullopt;
  const auto offset = static_cast<std::size_t>(it - nbrs.begin());
  return edge_weights(u)[offset];
}

double Graph::weighted_degree(VertexId v) const {
  const auto w = edge_weights(v);
  return std::accumulate(w.begin(), w.end(), 0.0);
}

std::string Graph::summary() const {
  std::ostringstream os;
  os << "|V|=" << num_vertices() << " |E|=" << num_edges();
  if (num_vertices() > 0) {
    std::int32_t dmin = degree(0);
    std::int32_t dmax = degree(0);
    for (VertexId v = 1; v < num_vertices(); ++v) {
      dmin = std::min(dmin, degree(v));
      dmax = std::max(dmax, degree(v));
    }
    os << " deg=[" << dmin << "," << dmax << "]";
  }
  os << (unit_weights_ ? " unit-weights" : " weighted");
  if (has_coordinates()) os << " with-coords";
  return os.str();
}

GraphBuilder::GraphBuilder(VertexId num_vertices)
    : num_vertices_(num_vertices),
      vwgt_(static_cast<std::size_t>(num_vertices), 1.0),
      coords_(static_cast<std::size_t>(num_vertices)) {
  GAPART_REQUIRE(num_vertices >= 0, "negative vertex count ", num_vertices);
}

void GraphBuilder::add_edge(VertexId u, VertexId v, double weight) {
  GAPART_REQUIRE(u >= 0 && u < num_vertices_, "edge endpoint ", u,
                 " out of range [0,", num_vertices_, ")");
  GAPART_REQUIRE(v >= 0 && v < num_vertices_, "edge endpoint ", v,
                 " out of range [0,", num_vertices_, ")");
  GAPART_REQUIRE(weight > 0.0, "edge weight must be positive, got ", weight);
  if (u == v) return;  // self-loops carry no cut information
  edges_.push_back({u, v, weight});
}

void GraphBuilder::set_vertex_weight(VertexId v, double weight) {
  GAPART_REQUIRE(v >= 0 && v < num_vertices_, "vertex ", v, " out of range");
  GAPART_REQUIRE(weight > 0.0, "vertex weight must be positive, got ", weight);
  vwgt_[static_cast<std::size_t>(v)] = weight;
}

void GraphBuilder::set_coordinate(VertexId v, Point2 p) {
  GAPART_REQUIRE(v >= 0 && v < num_vertices_, "vertex ", v, " out of range");
  coords_[static_cast<std::size_t>(v)] = p;
  has_coords_ = true;
}

void GraphBuilder::set_coordinates(std::vector<Point2> coords) {
  GAPART_REQUIRE(static_cast<VertexId>(coords.size()) == num_vertices_,
                 "coordinate count ", coords.size(), " != vertex count ",
                 num_vertices_);
  coords_ = std::move(coords);
  has_coords_ = num_vertices_ > 0;
}

Graph GraphBuilder::build() {
  const auto n = static_cast<std::size_t>(num_vertices_);

  // Symmetrize: store each undirected edge in both directions, then sort and
  // merge duplicates per row.
  std::vector<GraphBuilder::RawEdge> directed;
  directed.reserve(edges_.size() * 2);
  for (const auto& e : edges_) {
    directed.push_back({e.u, e.v, e.w});
    directed.push_back({e.v, e.u, e.w});
  }
  std::sort(directed.begin(), directed.end(),
            [](const RawEdge& a, const RawEdge& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });

  Graph g;
  g.xadj_.assign(n + 1, 0);
  g.adjncy_.clear();
  g.ewgt_.clear();
  g.adjncy_.reserve(directed.size());
  g.ewgt_.reserve(directed.size());

  std::size_t i = 0;
  for (VertexId u = 0; u < num_vertices_; ++u) {
    while (i < directed.size() && directed[i].u == u) {
      const VertexId v = directed[i].v;
      double w = 0.0;
      while (i < directed.size() && directed[i].u == u && directed[i].v == v) {
        w += directed[i].w;
        ++i;
      }
      g.adjncy_.push_back(v);
      g.ewgt_.push_back(w);
    }
    g.xadj_[static_cast<std::size_t>(u) + 1] =
        static_cast<std::int32_t>(g.adjncy_.size());
  }
  GAPART_ASSERT(i == directed.size());

  // Copy (not move) so the builder stays usable: callers may add more edges
  // and build() again (e.g. connectivity stitching loops).
  g.vwgt_ = vwgt_;
  g.total_vwgt_ = std::accumulate(g.vwgt_.begin(), g.vwgt_.end(), 0.0);
  if (has_coords_) g.coords_ = coords_;

  g.unit_weights_ =
      std::all_of(g.vwgt_.begin(), g.vwgt_.end(),
                  [](double w) { return w == 1.0; }) &&
      std::all_of(g.ewgt_.begin(), g.ewgt_.end(),
                  [](double w) { return w == 1.0; });
  return g;
}

}  // namespace gapart
