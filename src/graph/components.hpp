// Connectivity utilities: connected components and BFS levelization.
// Used for mesh repair, recursive graph bisection, and sanity checks.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gapart {

struct Components {
  /// label[v] in [0, count): component of vertex v, numbered by discovery.
  std::vector<VertexId> label;
  VertexId count = 0;

  /// Sizes indexed by component label.
  std::vector<VertexId> sizes() const;
};

Components connected_components(const Graph& g);

bool is_connected(const Graph& g);

/// BFS hop distances from `source` restricted to vertices with mask[v]==true
/// (empty mask = all vertices).  Unreachable vertices get -1.
std::vector<std::int32_t> bfs_distances(const Graph& g, VertexId source,
                                        const std::vector<char>& mask = {});

/// A vertex with maximum BFS distance from `source` (a pseudo-peripheral
/// endpoint after iterating); ties broken by smallest id.
VertexId farthest_vertex(const Graph& g, VertexId source,
                         const std::vector<char>& mask = {});

/// Two-sweep pseudo-peripheral vertex heuristic (start of RGB levelization).
VertexId pseudo_peripheral_vertex(const Graph& g,
                                  const std::vector<char>& mask = {});

}  // namespace gapart
