// Unified evaluation core: every fitness evaluation in gapart — GA offspring,
// hill climbing, KL refinement, greedy incremental assignment, benches —
// flows through one EvalContext.
//
// The context bundles what used to be scattered across call-sites:
//   * the (graph, num_parts, objective) triple evaluations are made against,
//   * the optional Executor used to batch-evaluate many chromosomes, and
//   * honest evaluation accounting.  A *full* evaluation is an O(V+E)
//     from-scratch metric computation (evaluate(), make_state(), the fused
//     mutate-and-evaluate path).  A *delta* evaluation is a fitness value
//     produced incrementally in O(deg(v)) by PartitionState bookkeeping
//     (one per accepted hill-climb/KL move).  Keeping the two separate is
//     what lets GaResult::evaluations stay meaningful now that hill-climbed
//     children reuse their incrementally-maintained fitness instead of being
//     re-evaluated from scratch.
//
// Counters are atomic so pool threads can evaluate concurrently; counts are
// order-independent sums, preserving bit-reproducibility of results.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/executor.hpp"
#include "common/rng.hpp"
#include "graph/partition.hpp"
#include "graph/types.hpp"

namespace gapart {

class EvalContext {
 public:
  /// Non-owning views: graph and executor must outlive the context.
  /// `executor` may be null — all batch helpers then run serially.
  EvalContext(const Graph& g, PartId num_parts, FitnessParams params,
              Executor* executor = nullptr)
      : g_(&g), num_parts_(num_parts), params_(params), executor_(executor) {}

  // Counters are atomics; the context is shared by reference, never copied.
  EvalContext(const EvalContext&) = delete;
  EvalContext& operator=(const EvalContext&) = delete;

  const Graph& graph() const { return *g_; }
  PartId num_parts() const { return num_parts_; }
  const FitnessParams& params() const { return params_; }

  Executor* executor() const { return executor_; }

  /// Full O(V+E) evaluation of one chromosome.  Higher is better (the paper
  /// maximizes fitness).
  double evaluate(const Assignment& genes) const {
    count_full();
    return evaluate_fitness(*g_, genes, num_parts_, params_);
  }

  /// Full evaluation that also hands back the metric breakdown, for callers
  /// that cache per-individual metrics (the GA's clone delta path).  One
  /// full evaluation, same value as evaluate().
  double evaluate_with_metrics(const Assignment& genes,
                               PartitionMetrics& metrics) const {
    count_full();
    metrics = compute_metrics(*g_, genes, num_parts_);
    return fitness_from_metrics(metrics, params_);
  }

  /// Fused single-pass mutate+evaluate for children that skip hill climbing:
  /// applies per-gene point mutation (rate `rate`, identical semantics and
  /// RNG consumption to point_mutation) while accumulating part weights, then
  /// one CSR edge scan for the cut terms.  One full evaluation.  When
  /// `out_metrics` is non-null it receives the child's full metric breakdown
  /// (no extra cost — the fused pass computes every term anyway).
  double mutate_and_evaluate(Assignment& genes, double rate, Rng& rng,
                             PartitionMetrics* out_metrics = nullptr) const;

  /// Mutate+evaluate for a CLONED child whose parent metrics are known:
  /// draws the same per-gene point mutations (identical RNG consumption to
  /// point_mutation / mutate_and_evaluate), and when few genes flip applies
  /// them as PartitionState::move-style deltas to the inherited `metrics` —
  /// O(flips * deg + k) and counted as `flips` DELTA evaluations, no full
  /// evaluation.  Above `max_delta_flips` it falls back to applying the
  /// flips and re-deriving the metrics from scratch (one full evaluation).
  /// `metrics` must hold the parent's breakdown on entry (matching `genes`)
  /// and holds the child's on return.  Exactness: the cut and load terms are
  /// integer sums (exact for integer weights); the imbalance term uses the
  /// same incremental subtract/add PartitionState::move does, which is
  /// bit-identical to a from-scratch evaluation whenever the mean part load
  /// (total weight / num_parts) is exactly representable — e.g. unit-weight
  /// graphs with |V|/k a dyadic rational — and otherwise agrees to within
  /// accumulated rounding of the (w - mean)^2 terms.
  double mutate_clone_and_evaluate(Assignment& genes, double rate, Rng& rng,
                                   PartitionMetrics& metrics,
                                   std::int64_t max_delta_flips) const;

  /// Builds the incrementally-maintained partition state for `genes`.  The
  /// construction performs the single O(V+E) metric computation — counted as
  /// one full evaluation — after which every move costs O(deg(v)).
  PartitionState make_state(Assignment genes) const {
    count_full();
    return PartitionState(*g_, std::move(genes), num_parts_);
  }

  /// Reads the fitness a PartitionState maintained incrementally.  Not
  /// counted: the state's construction was already a full evaluation and
  /// every accepted move was counted as a delta by the climber.
  double adopt(const PartitionState& state) const {
    return state.fitness(params_);
  }

  /// Uncounted metric snapshot (reporting only).
  PartitionMetrics metrics(const Assignment& genes) const {
    return compute_metrics(*g_, genes, num_parts_);
  }

  void count_full(std::int64_t n = 1) const {
    full_.fetch_add(n, std::memory_order_relaxed);
  }
  void count_delta(std::int64_t n = 1) const {
    delta_.fetch_add(n, std::memory_order_relaxed);
  }

  std::int64_t full_evaluations() const {
    return full_.load(std::memory_order_relaxed);
  }
  std::int64_t delta_evaluations() const {
    return delta_.load(std::memory_order_relaxed);
  }
  std::int64_t total_evaluations() const {
    return full_evaluations() + delta_evaluations();
  }
  void reset_counts() {
    full_.store(0, std::memory_order_relaxed);
    delta_.store(0, std::memory_order_relaxed);
  }

 private:
  const Graph* g_;
  PartId num_parts_;
  FitnessParams params_;
  Executor* executor_;
  mutable std::atomic<std::int64_t> full_{0};
  mutable std::atomic<std::int64_t> delta_{0};
};

}  // namespace gapart
