#include "core/contracted_ga.hpp"

#include <algorithm>
#include <utility>

#include "baselines/kl.hpp"
#include "common/assert.hpp"
#include "core/init.hpp"
#include "graph/coarsen.hpp"
#include "graph/partition.hpp"

namespace gapart {

ContractedGaResult contracted_ga_partition(const Graph& g,
                                           const ContractedGaOptions& options,
                                           Rng& rng) {
  const PartId k = options.dpga.ga.num_parts;
  GAPART_REQUIRE(g.num_vertices() >= k, "fewer vertices than parts");

  const VertexId target = std::max<VertexId>(
      k * options.coarse_vertices_per_part, 2 * k);
  const auto hierarchy = coarsen_to(g, target, rng);
  const Graph& coarsest = hierarchy.coarsest(g);

  ContractedGaResult result;
  result.coarse_vertices = coarsest.num_vertices();
  result.levels = static_cast<int>(hierarchy.num_levels());

  auto initial = make_random_population(coarsest.num_vertices(), k,
                                        options.dpga.ga.population_size, rng);
  result.ga = run_dpga(coarsest, options.dpga, std::move(initial), rng.split());

  KlOptions kl;
  kl.fitness = options.dpga.ga.fitness;
  kl.max_passes = options.kl_passes_per_level;
  result.assignment = uncoarsen_with_refinement(
      g, hierarchy, result.ga.best, k,
      [&kl](PartitionState& state, std::size_t) { kl_refine(state, kl); },
      /*refine_coarsest=*/false);
  return result;
}

}  // namespace gapart
