#include "core/contracted_ga.hpp"

#include <algorithm>

#include "baselines/kl.hpp"
#include "common/assert.hpp"
#include "core/init.hpp"
#include "graph/coarsen.hpp"
#include "graph/partition.hpp"

namespace gapart {

ContractedGaResult contracted_ga_partition(const Graph& g,
                                           const ContractedGaOptions& options,
                                           Rng& rng) {
  const PartId k = options.dpga.ga.num_parts;
  GAPART_REQUIRE(g.num_vertices() >= k, "fewer vertices than parts");

  const VertexId target = std::max<VertexId>(
      k * options.coarse_vertices_per_part, 2 * k);
  const auto hierarchy = coarsen_to(g, target, rng);
  const Graph& coarsest = hierarchy.coarsest(g);

  ContractedGaResult result;
  result.coarse_vertices = coarsest.num_vertices();
  result.levels = static_cast<int>(hierarchy.levels.size());

  auto initial = make_random_population(coarsest.num_vertices(), k,
                                        options.dpga.ga.population_size, rng);
  result.ga = run_dpga(coarsest, options.dpga, std::move(initial), rng.split());
  Assignment assignment = result.ga.best;

  KlOptions kl;
  kl.fitness = options.dpga.ga.fitness;
  kl.max_passes = options.kl_passes_per_level;
  for (std::size_t li = hierarchy.levels.size(); li-- > 0;) {
    const auto& level = hierarchy.levels[li];
    assignment = project_assignment(assignment, level.fine_to_coarse);
    const Graph& fine = li == 0 ? g : hierarchy.levels[li - 1].graph;
    PartitionState state(fine, assignment, k);
    kl_refine(state, kl);
    assignment = state.assignment();
  }

  result.assignment = std::move(assignment);
  return result;
}

}  // namespace gapart
