// Parent selection schemes.
//
// The paper does not name its selection mechanism; tournament selection is
// the default (robust to the negative fitness scale of the partitioning
// objectives), with fitness-proportionate (roulette, min-shifted) and linear
// ranking provided for ablation.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/individual.hpp"

namespace gapart {

enum class SelectionScheme {
  kTournament,
  kRoulette,
  kRank,
};

const char* selection_name(SelectionScheme s);
SelectionScheme parse_selection(const std::string& name);

/// Per-generation selection context: build once from the evaluated
/// population, then draw() repeatedly.
class Selector {
 public:
  Selector(const std::vector<Individual>& population, SelectionScheme scheme,
           int tournament_size);

  std::size_t draw(Rng& rng) const;

 private:
  const std::vector<Individual>* population_;
  SelectionScheme scheme_;
  int tournament_size_;
  /// Roulette: cumulative min-shifted fitness; Rank: indices best-first.
  std::vector<double> cumulative_;
  std::vector<std::size_t> ranked_;
};

}  // namespace gapart
