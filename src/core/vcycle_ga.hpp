// Multilevel evolutionary engine: a V-cycle GA with quotient-graph combine
// and seeded-repair uncoarsening.
//
// The paper's conclusion prescribes "a prior graph contraction step" for
// graphs beyond its experiments; the contracted GA (core/contracted_ga.hpp)
// does exactly that once — coarsen, evolve at the bottom, project up with KL.
// This engine closes the loop into a V-cycle (KaFFPa lineage):
//
//   coarsen   build a CoarsenHierarchy by heavy-edge matching (graph/coarsen)
//             — vertex weights add and parallel edges merge, so coarse
//             fitness equals fine fitness exactly at every level;
//   evolve    run the paper's DPGA on the coarsest graph, then — while the
//             level fits the evolution budget and fitness keeps improving —
//             keep evolving on the way up with small GAs seeded from the
//             current solution, using the quotient-graph combine crossover
//             (overlay two parents' cuts, contract the regions they agree
//             on, re-partition the small quotient, project back);
//   uncoarsen each prolongation seeds a frontier repair climb
//             (hill_climb_from machinery) from the projected boundary: the
//             cascade costs O(boundary damage), and the verification rounds
//             restore the sweep fixed-point class.  Large levels shard the
//             climb over the Executor (kParallelFrontier).
//
// Evolution depth is adaptive (Preen & Smith's multilevel GA observation):
// ascending GAs stop as soon as a level's relative improvement falls below
// `stagnation_improvement` — coarse levels are where recombination pays;
// fine levels are refinement territory.
//
// vcycle_ga_refine is the incremental entry point: the hierarchy is built
// with partition-RESPECTING matching (only same-part vertices merge), so a
// live session's assignment projects onto every level with exactly its fine
// fitness, every stage is monotone (elitist GAs seeded with the incumbent,
// monotone climbs, exact projections), and the result is never worse than
// the seed.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/executor.hpp"
#include "common/rng.hpp"
#include "core/dpga.hpp"
#include "core/presets.hpp"
#include "graph/coarsen.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/types.hpp"

namespace gapart {

/// Budget of the quotient-graph combine operator (one crossover invocation
/// runs a whole small GA, so the budget must stay modest).
struct CombineOptions {
  /// Population of the quotient GA; both parents' projections seed it, so
  /// elitism guarantees the first child is never worse than either parent.
  int population = 24;
  int max_generations = 40;
  int stall_generations = 8;
  /// Swap perturbation applied to the non-verbatim quotient seeds.
  double seed_swap_fraction = 0.1;
  /// When the parents disagree so broadly that the quotient exceeds this,
  /// skip the GA: both quotient projections are frontier-climbed instead
  /// (still monotone, still cheap — the climb is O(quotient boundary)).
  VertexId max_quotient_vertices = 4096;
  int fallback_hill_climb_passes = 2;
};

/// The KaFFPaE-style combine: contract the clusters on which `a` and `b`
/// agree (connected components of the edges whose endpoints share a part in
/// BOTH parents), evolve the quotient, and project the winners back.
/// child1 is the quotient GA's best (>= the better parent, by elitism);
/// child2 is the better parent's climbed quotient projection (diversity at
/// no extra full-evaluation cost).  Both children are valid k-partitions.
void combine_partitions(const Graph& g, PartId num_parts,
                        const FitnessParams& fitness,
                        const CombineOptions& options, const Assignment& a,
                        const Assignment& b, Rng& rng, Assignment& child1,
                        Assignment& child2);

/// Packages combine_partitions as the GaConfig::combine callback for
/// crossover == CrossoverOp::kCombine.  `g` is captured by reference and
/// must outlive the returned callable.
GaConfig::CombineFn make_quotient_combine(const Graph& g, PartId num_parts,
                                          FitnessParams fitness,
                                          CombineOptions options = {});

struct VcycleGaOptions {
  /// Coarsening stops near num_parts * coarse_vertices_per_part vertices.
  VertexId coarse_vertices_per_part = 40;
  /// The coarsest-level search: the paper's DPGA, verbatim.
  DpgaConfig dpga;
  /// Use the quotient-graph combine as the crossover of the ascending
  /// per-level GAs (false: they inherit dpga.ga.crossover, e.g. DKNUX).
  bool combine_crossover = true;
  CombineOptions combine;

  /// Ascending evolution budget: levels larger than this are refine-only.
  VertexId max_evolve_vertices = 16384;
  /// Adaptive depth: stop evolving on the way up once a level's relative
  /// fitness improvement (|gain| / |fitness|) drops below this.  <= 0 keeps
  /// evolving every level under max_evolve_vertices.
  double stagnation_improvement = 1e-4;
  /// Per-level GA budget (population is per level, not the paper's 320 —
  /// these runs are seeded with the incumbent and only polish it).
  int level_population = 32;
  int level_max_generations = 30;
  int level_stall = 6;

  /// Seeded-repair uncoarsening: budgeted verification rounds after the
  /// projected-boundary cascade drains (hill_climb_from semantics).
  int refine_verify_passes = 4;
  double refine_min_gain = 1e-9;
  bool refine_gain_ordered = true;
  /// Levels at least this large shard the climb over the Executor
  /// (HillClimbMode::kParallelFrontier); smaller levels stay serial.
  VertexId parallel_refine_min_vertices = 1 << 16;

  /// Cooperative cancellation, checked between levels and threaded into the
  /// climbs: progress made so far is kept (monotone).  Non-owning.
  const std::atomic<bool>* cancel = nullptr;

  VcycleGaOptions() : dpga(paper_dpga_config(2, Objective::kTotalComm)) {}
};

/// What happened at one level of the upward sweep (index 0 = coarsest
/// prolongation recorded first; the finest graph is last).
struct VcycleLevelReport {
  VertexId vertices = 0;
  bool evolved = false;          ///< an ascending GA ran at this level
  double fitness_before = 0.0;   ///< after projection, before any work
  double fitness_after = 0.0;
  int climb_moves = 0;
};

struct VcycleGaResult {
  Assignment assignment;
  double fitness = 0.0;
  PartitionMetrics metrics;
  int levels = 0;                ///< hierarchy depth
  int evolved_levels = 0;        ///< levels (incl. coarsest) a GA ran on
  VertexId coarsest_vertices = 0;
  bool adaptive_stop = false;    ///< ascent stopped on stagnation, not size
  std::vector<VcycleLevelReport> level_reports;
  std::int64_t full_evaluations = 0;
  std::int64_t delta_evaluations = 0;
  double wall_seconds = 0.0;
};

/// Partition from scratch: coarsen, evolve the coarsest graph with the
/// DPGA, then uncoarsen with per-level evolution + seeded frontier repair.
VcycleGaResult vcycle_ga_partition(const Graph& g,
                                   const VcycleGaOptions& options, Rng& rng,
                                   Executor* executor = nullptr);

/// Refine an existing partition through a V-cycle: the hierarchy respects
/// `seed` (only same-part vertices are matched), so the seed projects onto
/// every level with exactly its fine fitness and every stage is monotone —
/// the result's fitness is >= the seed's.  This is the deep-refinement tier
/// the partition service routes large sessions to.
VcycleGaResult vcycle_ga_refine(const Graph& g, const Assignment& seed,
                                const VcycleGaOptions& options, Rng& rng,
                                Executor* executor = nullptr);

}  // namespace gapart
