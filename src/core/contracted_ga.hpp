// GA partitioning behind a prior graph-contraction step — the scaling path
// the paper's conclusion prescribes for "graphs much larger than those
// explored in this paper".
//
// The graph is contracted by heavy-edge matching until it is small enough
// for the GA to search effectively; the (weighted) coarse graph is
// partitioned by the DPGA, and the solution is projected back up the
// hierarchy with KL refinement at every level.
#pragma once

#include "core/dpga.hpp"
#include "core/presets.hpp"
#include "graph/types.hpp"

namespace gapart {

struct ContractedGaOptions {
  /// Coarsening stops near num_parts * coarse_vertices_per_part vertices.
  VertexId coarse_vertices_per_part = 40;
  DpgaConfig dpga;
  int kl_passes_per_level = 4;

  ContractedGaOptions()
      : dpga(paper_dpga_config(2, Objective::kTotalComm)) {}
};

struct ContractedGaResult {
  Assignment assignment;
  VertexId coarse_vertices = 0;  ///< size of the graph the GA actually saw
  int levels = 0;
  DpgaResult ga;                 ///< the coarse-level GA run
};

ContractedGaResult contracted_ga_partition(const Graph& g,
                                           const ContractedGaOptions& options,
                                           Rng& rng);

}  // namespace gapart
