// Description of how a partitioned graph changed (paper §4.2: "adding some
// number of nodes in a local area chosen randomly").
//
// Incremental repartitioning wants its cost to scale with *what changed*,
// not with the graph.  A GraphDelta is the caller's statement of exactly
// that: the appended vertex range (the grown graph carries the surviving
// vertices as a prefix, as densify_mesh guarantees) plus the surviving
// vertices whose adjacency was perturbed by the update (re-triangulation
// rewires old vertices near the refinement region, not just the new ones).
// repair_seeds() turns a delta into the worklist a seeded hill climb starts
// from, making repair cost proportional to the damage.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gapart {

struct GraphDelta {
  /// Vertices [old_num_vertices, |grown|) are new; [0, old_num_vertices)
  /// survive with their identity (and usually their previous part).
  VertexId old_num_vertices = 0;
  /// Surviving vertices whose adjacency (neighbours or edge weights)
  /// changed.  Sorted ascending, deduplicated.
  std::vector<VertexId> touched_old;

  VertexId num_new(const Graph& grown) const {
    return grown.num_vertices() - old_num_vertices;
  }
  /// Total damage: new vertices plus perturbed survivors.
  VertexId damage(const Graph& grown) const {
    return num_new(grown) + static_cast<VertexId>(touched_old.size());
  }
};

/// Delta for pure growth, derivable from the grown graph alone: vertices
/// past `old_num_vertices` are new, and a surviving vertex counts as touched
/// iff it is adjacent to a new vertex.  Exact only for pure vertex-append
/// growth (every new edge has at least one new endpoint and weights are
/// unchanged); when old-old adjacency, edge weights, or vertex weights also
/// changed (e.g. a full re-triangulation) use diff_graphs instead.
GraphDelta appended_delta(const Graph& grown, VertexId old_num_vertices);

/// Exact delta between two snapshots: requires |old| <= |grown|; a surviving
/// vertex is touched iff its neighbour list, edge weights, or vertex weight
/// differ between the snapshots.  O(V + E) span comparisons.
GraphDelta diff_graphs(const Graph& old_graph, const Graph& grown);

/// The repair worklist a delta implies: every new vertex, every touched
/// survivor, and their immediate neighbours (one hop — a rewired vertex can
/// strand a previously-settled neighbour on the wrong side).  Sorted
/// ascending, deduplicated; size O(damage * max_degree).
std::vector<VertexId> repair_seeds(const GraphDelta& delta,
                                   const Graph& grown);

}  // namespace gapart
