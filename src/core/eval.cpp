#include "core/eval.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"

namespace gapart {

double EvalContext::mutate_and_evaluate(Assignment& genes, double rate,
                                        Rng& rng) const {
  GAPART_REQUIRE(rate >= 0.0 && rate <= 1.0, "mutation rate out of [0,1]");
  GAPART_REQUIRE(is_valid_assignment(*g_, genes, num_parts_),
                 "invalid assignment for ", num_parts_, " parts");
  count_full();

  const Graph& g = *g_;
  const VertexId n = g.num_vertices();
  const auto parts = static_cast<std::size_t>(num_parts_);
  std::vector<double> part_weight(parts, 0.0);
  std::vector<double> part_cut(parts, 0.0);

  // Pass 1 (fused): mutate each gene in place — same per-gene semantics and
  // RNG draw order as point_mutation — while folding its vertex weight into
  // the load vector.
  if (num_parts_ > 1) {
    for (VertexId v = 0; v < n; ++v) {
      auto& gene = genes[static_cast<std::size_t>(v)];
      if (rng.bernoulli(rate)) {
        PartId p = static_cast<PartId>(rng.uniform_int(num_parts_ - 1));
        if (p >= gene) ++p;
        gene = p;
      }
      part_weight[static_cast<std::size_t>(gene)] += g.vertex_weight(v);
    }
  } else {
    for (VertexId v = 0; v < n; ++v) {
      part_weight[0] += g.vertex_weight(v);
    }
  }

  // Pass 2: cut terms over the final (post-mutation) assignment.  The
  // accumulation order matches compute_metrics exactly so the fused path is
  // bit-identical to point_mutation followed by evaluate_fitness.
  for (VertexId v = 0; v < n; ++v) {
    const auto q = static_cast<std::size_t>(genes[static_cast<std::size_t>(v)]);
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (genes[static_cast<std::size_t>(nbrs[i])] !=
          genes[static_cast<std::size_t>(v)]) {
        part_cut[q] += wgts[i];
      }
    }
  }

  const double mean =
      g.total_vertex_weight() / static_cast<double>(num_parts_);
  double imbalance_sq = 0.0;
  double sum_part_cut = 0.0;
  double max_part_cut = 0.0;
  for (std::size_t q = 0; q < parts; ++q) {
    const double d = part_weight[q] - mean;
    imbalance_sq += d * d;
    sum_part_cut += part_cut[q];
    max_part_cut = std::max(max_part_cut, part_cut[q]);
  }

  const double comm = params_.objective == Objective::kTotalComm
                          ? sum_part_cut
                          : max_part_cut;
  return -(imbalance_sq + params_.lambda * comm);
}

}  // namespace gapart
