#include "core/eval.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace gapart {

double EvalContext::mutate_and_evaluate(Assignment& genes, double rate,
                                        Rng& rng,
                                        PartitionMetrics* out_metrics) const {
  GAPART_REQUIRE(rate >= 0.0 && rate <= 1.0, "mutation rate out of [0,1]");
  GAPART_REQUIRE(is_valid_assignment(*g_, genes, num_parts_),
                 "invalid assignment for ", num_parts_, " parts");
  count_full();

  const Graph& g = *g_;
  const VertexId n = g.num_vertices();
  const auto parts = static_cast<std::size_t>(num_parts_);
  std::vector<double> part_weight(parts, 0.0);
  std::vector<double> part_cut(parts, 0.0);

  // Pass 1 (fused): mutate each gene in place — same per-gene semantics and
  // RNG draw order as point_mutation — while folding its vertex weight into
  // the load vector.
  if (num_parts_ > 1) {
    for (VertexId v = 0; v < n; ++v) {
      auto& gene = genes[static_cast<std::size_t>(v)];
      if (rng.bernoulli(rate)) {
        PartId p = static_cast<PartId>(rng.uniform_int(num_parts_ - 1));
        if (p >= gene) ++p;
        gene = p;
      }
      part_weight[static_cast<std::size_t>(gene)] += g.vertex_weight(v);
    }
  } else {
    for (VertexId v = 0; v < n; ++v) {
      part_weight[0] += g.vertex_weight(v);
    }
  }

  // Pass 2: cut terms over the final (post-mutation) assignment.  The
  // accumulation order matches compute_metrics exactly so the fused path is
  // bit-identical to point_mutation followed by evaluate_fitness.
  for (VertexId v = 0; v < n; ++v) {
    const auto q = static_cast<std::size_t>(genes[static_cast<std::size_t>(v)]);
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (genes[static_cast<std::size_t>(nbrs[i])] !=
          genes[static_cast<std::size_t>(v)]) {
        part_cut[q] += wgts[i];
      }
    }
  }

  const double mean =
      g.total_vertex_weight() / static_cast<double>(num_parts_);
  double imbalance_sq = 0.0;
  double sum_part_cut = 0.0;
  double max_part_cut = 0.0;
  for (std::size_t q = 0; q < parts; ++q) {
    const double d = part_weight[q] - mean;
    imbalance_sq += d * d;
    sum_part_cut += part_cut[q];
    max_part_cut = std::max(max_part_cut, part_cut[q]);
  }

  const double comm = params_.objective == Objective::kTotalComm
                          ? sum_part_cut
                          : max_part_cut;
  if (out_metrics != nullptr) {
    out_metrics->part_weight = std::move(part_weight);
    out_metrics->part_cut = std::move(part_cut);
    out_metrics->sum_part_cut = sum_part_cut;
    out_metrics->max_part_cut = max_part_cut;
    out_metrics->imbalance_sq = imbalance_sq;
  }
  return -(imbalance_sq + params_.lambda * comm);
}

double EvalContext::mutate_clone_and_evaluate(Assignment& genes, double rate,
                                              Rng& rng,
                                              PartitionMetrics& metrics,
                                              std::int64_t max_delta_flips) const {
  GAPART_REQUIRE(rate >= 0.0 && rate <= 1.0, "mutation rate out of [0,1]");
  GAPART_REQUIRE(static_cast<PartId>(metrics.part_weight.size()) ==
                         num_parts_ &&
                     static_cast<PartId>(metrics.part_cut.size()) == num_parts_,
                 "parent metrics sized for a different part count");
  const Graph& g = *g_;
  GAPART_REQUIRE(is_valid_assignment(g, genes, num_parts_),
                 "invalid assignment for ", num_parts_, " parts");

  // Draw the flips without applying them — same per-gene semantics and RNG
  // draw order as point_mutation, so swapping evaluation strategies never
  // perturbs the random stream.
  std::vector<std::pair<VertexId, PartId>> flips;
  if (num_parts_ > 1) {
    const VertexId n = g.num_vertices();
    for (VertexId v = 0; v < n; ++v) {
      if (!rng.bernoulli(rate)) continue;
      const PartId own = genes[static_cast<std::size_t>(v)];
      PartId p = static_cast<PartId>(rng.uniform_int(num_parts_ - 1));
      if (p >= own) ++p;
      flips.emplace_back(v, p);
    }
  }

  if (static_cast<std::int64_t>(flips.size()) > max_delta_flips) {
    // Too much of the chromosome changed for deltas to pay off: apply the
    // flips and re-derive the metrics wholesale.
    for (const auto& [v, to] : flips) genes[static_cast<std::size_t>(v)] = to;
    return evaluate_with_metrics(genes, metrics);
  }

  // Delta path: each flip is PartitionState::move's O(deg) update applied to
  // the cached arrays.  Every gene flips at most once, so applying the flips
  // sequentially against the evolving assignment is exact.
  const double mean = g.total_vertex_weight() / static_cast<double>(num_parts_);
  for (const auto& [v, to] : flips) {
    const PartId from = genes[static_cast<std::size_t>(v)];
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    double wdeg = 0.0;
    double cf = 0.0;
    double ct = 0.0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const PartId p = genes[static_cast<std::size_t>(nbrs[i])];
      wdeg += wgts[i];
      if (p == from) {
        cf += wgts[i];
      } else if (p == to) {
        ct += wgts[i];
      }
    }
    metrics.part_cut[static_cast<std::size_t>(from)] += 2.0 * cf - wdeg;
    metrics.part_cut[static_cast<std::size_t>(to)] += wdeg - 2.0 * ct;
    metrics.sum_part_cut += 2.0 * (cf - ct);

    const double w = g.vertex_weight(v);
    const double wf = metrics.part_weight[static_cast<std::size_t>(from)];
    const double wt = metrics.part_weight[static_cast<std::size_t>(to)];
    metrics.imbalance_sq -= (wf - mean) * (wf - mean);
    metrics.imbalance_sq -= (wt - mean) * (wt - mean);
    metrics.part_weight[static_cast<std::size_t>(from)] = wf - w;
    metrics.part_weight[static_cast<std::size_t>(to)] = wt + w;
    metrics.imbalance_sq += (wf - w - mean) * (wf - w - mean);
    metrics.imbalance_sq += (wt + w - mean) * (wt + w - mean);

    genes[static_cast<std::size_t>(v)] = to;
  }
  metrics.max_part_cut =
      *std::max_element(metrics.part_cut.begin(), metrics.part_cut.end());
  count_delta(static_cast<std::int64_t>(flips.size()));
  return fitness_from_metrics(metrics, params_);
}

}  // namespace gapart
