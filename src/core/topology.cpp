#include "core/topology.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace gapart {

const char* topology_name(TopologyKind k) {
  switch (k) {
    case TopologyKind::kHypercube:
      return "hypercube";
    case TopologyKind::kRing:
      return "ring";
    case TopologyKind::kTorus:
      return "torus";
    case TopologyKind::kComplete:
      return "complete";
    case TopologyKind::kIsolated:
      return "isolated";
  }
  return "unknown";
}

TopologyKind parse_topology(const std::string& name) {
  if (name == "hypercube") return TopologyKind::kHypercube;
  if (name == "ring") return TopologyKind::kRing;
  if (name == "torus") return TopologyKind::kTorus;
  if (name == "complete") return TopologyKind::kComplete;
  if (name == "isolated") return TopologyKind::kIsolated;
  throw Error("unknown topology '" + name +
              "' (expected hypercube|ring|torus|complete|isolated)");
}

std::vector<std::vector<int>> build_topology(TopologyKind kind,
                                             int num_islands) {
  GAPART_REQUIRE(num_islands >= 1, "need at least one island");
  std::vector<std::vector<int>> nbrs(static_cast<std::size_t>(num_islands));
  if (num_islands == 1) return nbrs;

  switch (kind) {
    case TopologyKind::kIsolated:
      break;
    case TopologyKind::kHypercube: {
      GAPART_REQUIRE((num_islands & (num_islands - 1)) == 0,
                     "hypercube needs a power-of-two island count, got ",
                     num_islands);
      for (int i = 0; i < num_islands; ++i) {
        for (int bit = 1; bit < num_islands; bit <<= 1) {
          nbrs[static_cast<std::size_t>(i)].push_back(i ^ bit);
        }
      }
      break;
    }
    case TopologyKind::kRing: {
      for (int i = 0; i < num_islands; ++i) {
        const int prev = (i + num_islands - 1) % num_islands;
        const int next = (i + 1) % num_islands;
        nbrs[static_cast<std::size_t>(i)].push_back(prev);
        if (next != prev) nbrs[static_cast<std::size_t>(i)].push_back(next);
      }
      break;
    }
    case TopologyKind::kTorus: {
      // Near-square factorization rows x cols = num_islands.
      int rows = static_cast<int>(std::sqrt(static_cast<double>(num_islands)));
      while (rows > 1 && num_islands % rows != 0) --rows;
      const int cols = num_islands / rows;
      for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
          const int i = r * cols + c;
          auto& out = nbrs[static_cast<std::size_t>(i)];
          out.push_back(r * cols + (c + 1) % cols);
          out.push_back(r * cols + (c + cols - 1) % cols);
          out.push_back(((r + 1) % rows) * cols + c);
          out.push_back(((r + rows - 1) % rows) * cols + c);
        }
      }
      break;
    }
    case TopologyKind::kComplete: {
      for (int i = 0; i < num_islands; ++i) {
        for (int j = 0; j < num_islands; ++j) {
          if (i != j) nbrs[static_cast<std::size_t>(i)].push_back(j);
        }
      }
      break;
    }
  }

  for (auto& out : nbrs) {
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return nbrs;
}

}  // namespace gapart
