// Hill climbing on offspring (paper §3.6): only boundary vertices are
// examined, and a vertex migrates to a neighbouring part whenever that
// strictly improves fitness.  Passes repeat until a fixed point or the pass
// budget is exhausted.
//
// Two drive modes over PartitionState's incrementally maintained boundary:
//   kSweep     — the paper-faithful ascending vertex scan per pass.  Kept
//                bit-identical to the original implementation (the O(1)
//                boundary flag and the single-scan gain kernel change the
//                cost, not the decisions), so all paper tables reproduce.
//   kFrontier  — a worklist seeded with the boundary, re-enqueueing only
//                vertices whose neighbourhood changed; skips the O(V) scan
//                per pass entirely and reaches the same kind of local
//                optimum (no boundary vertex has an improving move), though
//                possibly via a different move order.
//
// Frontier mode additionally supports *worklist seeding*: instead of the
// whole boundary, the initial worklist can be a caller-supplied vertex set —
// the vertices an incremental mesh update actually touched.  The cascade
// then costs O(damage), and the usual full-boundary verification rounds
// (unless disabled) restore the sweep fixed-point class.  This is the
// damage-proportional repair primitive behind incremental_repartition.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/eval.hpp"
#include "graph/partition.hpp"
#include "graph/types.hpp"

namespace gapart {

class Executor;

enum class HillClimbMode {
  kSweep,     ///< Paper §3.6: full ascending vertex scan per pass.
  kFrontier,  ///< Boundary worklist; revisit only changed neighbourhoods.
  /// kFrontier's worklist driven in batch rounds: each round scores the
  /// whole worklist in parallel on an Executor (per-thread scratches against
  /// the frozen state), then serially applies the non-conflicting subset via
  /// PartitionState::apply_candidate_batch and re-validates gains at batch
  /// seams.  Same worklist membership and verification-round discipline as
  /// kFrontier — same fixed-point class — though possibly via a different
  /// move order.  Falls back to kFrontier (bit-identical) when
  /// options.executor is null or has one thread.
  kParallelFrontier,
};

struct HillClimbOptions {
  FitnessParams fitness;
  HillClimbMode mode = HillClimbMode::kSweep;
  /// kSweep: full vertex scans.  kFrontier: full-boundary rounds — the
  /// worklist cascade between rounds is not charged against this budget,
  /// and a seeded cascade (seed_vertices non-empty) is free as well.
  int max_passes = 4;
  /// Minimum fitness improvement for a move to be taken.  Must be positive
  /// in kFrontier mode (it bounds the worklist cascade).
  double min_gain = 1e-9;
  /// kFrontier only: when non-empty, the initial worklist is this vertex set
  /// (filtered to the live boundary, deduplicated) instead of the whole
  /// boundary.  The cascade from the seeds costs O(damage), after which the
  /// verification rounds below take over.  Ignored by kSweep.
  std::vector<VertexId> seed_vertices;
  /// kFrontier only: once the worklist drains, re-seed it from the full
  /// boundary and only stop when a full round finds nothing — the same
  /// fixed-point class as sweep (the composite objective couples distant
  /// vertices through the part weights, so a drained worklist alone proves
  /// nothing).  Disable to stop at the drained worklist: cost then stays
  /// proportional to the seeded cascade, but the result is only settled
  /// around the seeds, not a verified local optimum.
  bool verify_fixed_point = true;
  /// kFrontier only: first-cut gain-ordered worklist.  Each pass processes
  /// the bucket of likely-positive-gain vertices (neighbours a move just
  /// disturbed — the only place new improving moves appear) before the
  /// likely-zero-gain bucket (vertices whose best move was just taken).
  /// Both buckets stay ascending, so runs are deterministic, and worklist
  /// membership and the verification rounds are unchanged — same fixed-point
  /// class, different move order.  Ignored by kSweep and kParallelFrontier
  /// (batch rounds score the whole worklist at once, so intra-round order
  /// only affects the serial apply, which is already ascending).
  bool gain_ordered = false;
  /// kParallelFrontier only: the pool that scores batch rounds.  Null (or a
  /// single-threaded pool) falls back to the serial kFrontier climb,
  /// bit-identically.  Non-owning; must outlive the climb.
  Executor* executor = nullptr;
  /// kParallelFrontier only: consecutive worklist entries one pool thread
  /// scores per claim (0 = let the executor choose).  The result does not
  /// depend on it — scores land indexed by worklist position.
  std::size_t parallel_grain = 0;
  /// Cooperative cancellation, checked at pass/round boundaries: when it
  /// reads true the climb stops early and returns the (monotone) progress
  /// made so far.  Non-owning; null means never cancelled.  Used by the
  /// service's session-close drain to cut a background refinement short.
  const std::atomic<bool>* cancel = nullptr;
};

struct HillClimbResult {
  int passes = 0;
  int moves = 0;
  double fitness_gain = 0.0;
  /// Boundary vertices probed with the gain kernel (the unit of local-search
  /// work; each probe is O(deg + k_adjacent)).
  std::int64_t examined = 0;
  /// kFrontier: full-boundary verification rounds run after a seeded or
  /// cascaded worklist drained (0 in kSweep).
  int verify_rounds = 0;
  /// kParallelFrontier only (0 elsewhere, and when the climb fell back to
  /// the serial path): batch scoring rounds, candidates scored across all
  /// rounds, candidates deferred at batch seams (closed-neighbourhood
  /// conflicts), and part-coupled candidates re-validated serially.
  int batch_rounds = 0;
  std::int64_t batch_candidates = 0;
  std::int64_t batch_deferred = 0;
  std::int64_t batch_revalidated = 0;
};

/// Climbs `state` to a local optimum (or until max_passes).  Monotone:
/// fitness never decreases.
HillClimbResult hill_climb(PartitionState& state,
                           const HillClimbOptions& options = {});

/// Convenience overload operating on a chromosome.  Strong guarantee: when a
/// precondition fails (invalid assignment, bad options) the exception leaves
/// `genes` untouched.
HillClimbResult hill_climb(const Graph& g, Assignment& genes, PartId num_parts,
                           const HillClimbOptions& options = {});

/// EvalContext-aware climb: gains are measured under eval.params() (which
/// overrides options.fitness) and every accepted move is accounted as one
/// delta evaluation, so callers that adopt the state's incrementally-
/// maintained fitness keep the evaluation totals honest.
HillClimbResult hill_climb(const EvalContext& eval, PartitionState& state,
                           const HillClimbOptions& options = {});

/// Damage-proportional repair entry point: a kFrontier climb whose worklist
/// starts from `seeds` instead of the whole boundary (equivalent to setting
/// options.seed_vertices; options.mode is ignored).  Seeds outside the
/// current boundary are skipped; out-of-range ids throw.  An empty seed set
/// cascades nothing: with verify_fixed_point the climb is just the
/// verification rounds (O(boundary), still yielding a verified local
/// optimum); without it, a no-op.
HillClimbResult hill_climb_from(PartitionState& state,
                                std::span<const VertexId> seeds,
                                const HillClimbOptions& options = {});

/// EvalContext-aware seeded repair (accounting as in the eval overload).
HillClimbResult hill_climb_from(const EvalContext& eval, PartitionState& state,
                                std::span<const VertexId> seeds,
                                const HillClimbOptions& options = {});

}  // namespace gapart
