// Hill climbing on offspring (paper §3.6): only boundary vertices are
// examined, and a vertex migrates to a neighbouring part whenever that
// strictly improves fitness.  Passes repeat until a fixed point or the pass
// budget is exhausted.
//
// Two drive modes over PartitionState's incrementally maintained boundary:
//   kSweep     — the paper-faithful ascending vertex scan per pass.  Kept
//                bit-identical to the original implementation (the O(1)
//                boundary flag and the single-scan gain kernel change the
//                cost, not the decisions), so all paper tables reproduce.
//   kFrontier  — a worklist seeded with the boundary, re-enqueueing only
//                vertices whose neighbourhood changed; skips the O(V) scan
//                per pass entirely and reaches the same kind of local
//                optimum (no boundary vertex has an improving move), though
//                possibly via a different move order.
#pragma once

#include "core/eval.hpp"
#include "graph/partition.hpp"
#include "graph/types.hpp"

namespace gapart {

enum class HillClimbMode {
  kSweep,     ///< Paper §3.6: full ascending vertex scan per pass.
  kFrontier,  ///< Boundary worklist; revisit only changed neighbourhoods.
};

struct HillClimbOptions {
  FitnessParams fitness;
  HillClimbMode mode = HillClimbMode::kSweep;
  /// kSweep: full vertex scans.  kFrontier: full-boundary rounds — the
  /// worklist cascade between rounds is not charged against this budget.
  int max_passes = 4;
  /// Minimum fitness improvement for a move to be taken.  Must be positive
  /// in kFrontier mode (it bounds the worklist cascade).
  double min_gain = 1e-9;
};

struct HillClimbResult {
  int passes = 0;
  int moves = 0;
  double fitness_gain = 0.0;
};

/// Climbs `state` to a local optimum (or until max_passes).  Monotone:
/// fitness never decreases.
HillClimbResult hill_climb(PartitionState& state,
                           const HillClimbOptions& options = {});

/// Convenience overload operating on a chromosome.
HillClimbResult hill_climb(const Graph& g, Assignment& genes, PartId num_parts,
                           const HillClimbOptions& options = {});

/// EvalContext-aware climb: gains are measured under eval.params() (which
/// overrides options.fitness) and every accepted move is accounted as one
/// delta evaluation, so callers that adopt the state's incrementally-
/// maintained fitness keep the evaluation totals honest.
HillClimbResult hill_climb(const EvalContext& eval, PartitionState& state,
                           const HillClimbOptions& options = {});

}  // namespace gapart
