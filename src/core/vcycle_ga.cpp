#include "core/vcycle_ga.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.hpp"
#include "common/telemetry.hpp"
#include "common/timer.hpp"
#include "core/eval.hpp"
#include "core/ga_engine.hpp"
#include "core/hill_climb.hpp"
#include "core/init.hpp"

namespace gapart {

namespace {

/// Labels the connected components of the agreement subgraph: an edge (u, v)
/// belongs to it iff both parents put u and v in the same part.  Along any
/// agreement path both parents are therefore constant, so each component has
/// a single well-defined part in `a` AND in `b` — the precondition for the
/// quotient projections below.  Returns the component count.
VertexId agreement_clusters(const Graph& g, const Assignment& a,
                            const Assignment& b,
                            std::vector<VertexId>& labels) {
  const VertexId n = g.num_vertices();
  labels.assign(static_cast<std::size_t>(n), -1);
  std::vector<VertexId> stack;
  VertexId count = 0;
  for (VertexId s = 0; s < n; ++s) {
    if (labels[static_cast<std::size_t>(s)] != -1) continue;
    labels[static_cast<std::size_t>(s)] = count;
    stack.push_back(s);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId u : g.neighbors(v)) {
        if (labels[static_cast<std::size_t>(u)] != -1) continue;
        if (a[static_cast<std::size_t>(u)] == a[static_cast<std::size_t>(v)] &&
            b[static_cast<std::size_t>(u)] == b[static_cast<std::size_t>(v)]) {
          labels[static_cast<std::size_t>(u)] = count;
          stack.push_back(u);
        }
      }
    }
    ++count;
  }
  return count;
}

}  // namespace

void combine_partitions(const Graph& g, PartId num_parts,
                        const FitnessParams& fitness,
                        const CombineOptions& options, const Assignment& a,
                        const Assignment& b, Rng& rng, Assignment& child1,
                        Assignment& child2) {
  GAPART_REQUIRE(is_valid_assignment(g, a, num_parts),
                 "combine parent a invalid for ", num_parts, " parts");
  GAPART_REQUIRE(is_valid_assignment(g, b, num_parts),
                 "combine parent b invalid for ", num_parts, " parts");
  const VertexId n = g.num_vertices();

  std::vector<VertexId> labels;
  const VertexId nc = agreement_clusters(g, a, b, labels);
  const CoarseLevel quotient = contract_clusters(g, labels, nc);

  // Quotient projections: constant per cluster by construction, and — with
  // summed vertex weights and merged inter-cluster edges — of exactly the
  // fine cut, part weights, and fitness.
  Assignment qa(static_cast<std::size_t>(nc));
  Assignment qb(static_cast<std::size_t>(nc));
  for (VertexId v = 0; v < n; ++v) {
    const auto c = static_cast<std::size_t>(labels[static_cast<std::size_t>(v)]);
    qa[c] = a[static_cast<std::size_t>(v)];
    qb[c] = b[static_cast<std::size_t>(v)];
  }
  const double fa = evaluate_fitness(quotient.graph, qa, num_parts, fitness);
  const double fb = evaluate_fitness(quotient.graph, qb, num_parts, fitness);

  HillClimbOptions hc;
  hc.fitness = fitness;
  hc.mode = HillClimbMode::kFrontier;
  hc.max_passes = options.fallback_hill_climb_passes;

  if (nc > options.max_quotient_vertices) {
    // The parents disagree too broadly for a GA-sized quotient: climb both
    // projections instead.  Monotone, so neither child is worse than its
    // parent.
    Assignment ca = qa;
    Assignment cb = qb;
    hill_climb(quotient.graph, ca, num_parts, hc);
    hill_climb(quotient.graph, cb, num_parts, hc);
    child1 = project_assignment(fa >= fb ? ca : cb, labels);
    child2 = project_assignment(fa >= fb ? cb : ca, labels);
    return;
  }

  GaConfig cfg;
  cfg.num_parts = num_parts;
  cfg.fitness = fitness;
  cfg.population_size = std::max(4, options.population);
  cfg.elite_count = std::min(2, cfg.population_size - 1);
  cfg.crossover = CrossoverOp::kDknux;
  cfg.max_generations = options.max_generations;
  cfg.stall_generations = options.stall_generations;
  cfg.hill_climb_offspring = true;
  auto initial = make_mixed_population({qa, qb}, cfg.population_size,
                                       options.seed_swap_fraction, rng);
  // Serial on purpose: combine runs inside a GA's generate phase, which may
  // itself sit next to a pooled evaluate phase — no nested fan-out.
  const GaResult res =
      run_ga(quotient.graph, cfg, std::move(initial), rng.split());
  child1 = project_assignment(res.best, labels);

  // Second child: the better parent's climbed quotient projection — cheap
  // diversity that is still never worse than that parent.
  Assignment climbed = fa >= fb ? qa : qb;
  hill_climb(quotient.graph, climbed, num_parts, hc);
  child2 = project_assignment(climbed, labels);
}

GaConfig::CombineFn make_quotient_combine(const Graph& g, PartId num_parts,
                                          FitnessParams fitness,
                                          CombineOptions options) {
  return [&g, num_parts, fitness, options](const Assignment& a,
                                           const Assignment& b, Rng& rng,
                                           Assignment& child1,
                                           Assignment& child2) {
    combine_partitions(g, num_parts, fitness, options, a, b, rng, child1,
                       child2);
  };
}

namespace {

/// Moves `state` onto `target` through the delta path (keeps every
/// maintained metric consistent; O(diff * deg)).
void adopt_assignment(PartitionState& state, const Assignment& target) {
  const VertexId n = state.graph().num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    const PartId to = target[static_cast<std::size_t>(v)];
    if (state.part_of(v) != to) state.move(v, to);
  }
}

/// The upward sweep shared by vcycle_ga_partition and vcycle_ga_refine:
/// per-level (adaptive) evolution followed by seeded frontier repair, driven
/// through the shared uncoarsening loop.  Appends level reports and
/// evaluation counts to `result`.
Assignment ascend(const Graph& g, const CoarsenHierarchy& hierarchy,
                  Assignment coarse, const VcycleGaOptions& options, Rng& rng,
                  Executor* executor, VcycleGaResult& result) {
  const PartId k = options.dpga.ga.num_parts;
  const FitnessParams params = options.dpga.ga.fitness;
  bool evolve_more = true;

  const LevelRefiner refiner = [&](PartitionState& state, std::size_t level) {
    (void)level;
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      return;
    }
    GAPART_SPAN("vcycle.level");
    const Graph& lg = state.graph();
    const EvalContext eval(lg, k, params, executor);
    eval.count_full();  // the driver's O(V+E) state construction

    VcycleLevelReport report;
    report.vertices = lg.num_vertices();
    report.fitness_before = state.fitness(params);

    // Ascending evolution: a small elitist GA seeded with the incumbent —
    // never worse than the projection it starts from — using the
    // quotient-graph combine as its crossover.  Stops for the rest of the
    // ascent once the relative improvement stagnates (the coarse levels are
    // where recombination pays; fine levels are refinement territory).
    if (evolve_more && lg.num_vertices() <= options.max_evolve_vertices) {
      GaConfig cfg = options.dpga.ga;
      cfg.population_size = std::max(4, options.level_population);
      cfg.elite_count = std::clamp(cfg.elite_count, 1,
                                   cfg.population_size - 1);
      cfg.max_generations = options.level_max_generations;
      cfg.stall_generations = options.level_stall;
      cfg.knux_reference.reset();
      if (options.combine_crossover) {
        cfg.crossover = CrossoverOp::kCombine;
        cfg.combine = make_quotient_combine(lg, k, params, options.combine);
      }
      auto initial = make_seeded_population(
          state.assignment(), cfg.population_size, /*swap_fraction=*/0.08,
          rng);
      const GaResult res =
          run_ga(lg, cfg, std::move(initial), rng.split(), executor);
      result.full_evaluations += res.full_evaluations;
      result.delta_evaluations += res.delta_evaluations;
      if (res.best_fitness > report.fitness_before) {
        adopt_assignment(state, res.best);
      }
      report.evolved = true;
      ++result.evolved_levels;
      const double gain = std::max(0.0, res.best_fitness -
                                            report.fitness_before);
      const double rel =
          gain / std::max(1e-12, std::abs(report.fitness_before));
      if (options.stagnation_improvement > 0.0 &&
          rel < options.stagnation_improvement) {
        evolve_more = false;
        result.adaptive_stop = true;
      }
    }

    // Seeded frontier repair: the worklist starts from the level's boundary
    // (where projection artifacts live), cascades in O(damage), and the
    // budgeted verification rounds restore the sweep fixed-point class.
    HillClimbOptions hc;
    hc.mode = HillClimbMode::kFrontier;
    hc.max_passes = options.refine_verify_passes;
    hc.min_gain = options.refine_min_gain;
    hc.gain_ordered = options.refine_gain_ordered;
    hc.verify_fixed_point = true;
    hc.seed_vertices = state.boundary_vertices();
    hc.cancel = options.cancel;
    if (executor != nullptr && executor->num_threads() > 1 &&
        lg.num_vertices() >=
            static_cast<VertexId>(options.parallel_refine_min_vertices)) {
      hc.mode = HillClimbMode::kParallelFrontier;
      hc.executor = executor;
    }
    const HillClimbResult climb = hill_climb(eval, state, hc);
    report.climb_moves = climb.moves;
    report.fitness_after = state.fitness(params);
    result.full_evaluations += eval.full_evaluations();
    result.delta_evaluations += eval.delta_evaluations();
    result.level_reports.push_back(report);
  };

  // The coarsest solution already comes out of the DPGA (whose offspring are
  // climbed); refinement starts at the first prolongation.
  return uncoarsen_with_refinement(g, hierarchy, std::move(coarse), k,
                                   refiner, /*refine_coarsest=*/false);
}

}  // namespace

VcycleGaResult vcycle_ga_partition(const Graph& g,
                                   const VcycleGaOptions& options, Rng& rng,
                                   Executor* executor) {
  const PartId k = options.dpga.ga.num_parts;
  GAPART_REQUIRE(k >= 1, "need at least one part");
  GAPART_REQUIRE(g.num_vertices() >= k, "fewer vertices than parts");
  WallTimer timer;
  VcycleGaResult result;

  const VertexId target =
      std::max<VertexId>(k * options.coarse_vertices_per_part, 2 * k);
  const CoarsenHierarchy hierarchy = coarsen_to(g, target, rng);
  const Graph& coarsest = hierarchy.coarsest(g);
  result.levels = static_cast<int>(hierarchy.num_levels());
  result.coarsest_vertices = coarsest.num_vertices();

  auto initial = make_random_population(coarsest.num_vertices(), k,
                                        options.dpga.ga.population_size, rng);
  const DpgaResult ga =
      run_dpga(coarsest, options.dpga, std::move(initial), rng.split(),
               executor);
  result.full_evaluations += ga.full_evaluations;
  result.delta_evaluations += ga.delta_evaluations;
  result.evolved_levels = 1;

  result.assignment =
      ascend(g, hierarchy, ga.best, options, rng, executor, result);
  result.metrics = compute_metrics(g, result.assignment, k);
  result.fitness = fitness_from_metrics(result.metrics, options.dpga.ga.fitness);
  result.wall_seconds = timer.seconds();
  return result;
}

VcycleGaResult vcycle_ga_refine(const Graph& g, const Assignment& seed,
                                const VcycleGaOptions& options, Rng& rng,
                                Executor* executor) {
  const PartId k = options.dpga.ga.num_parts;
  const FitnessParams params = options.dpga.ga.fitness;
  GAPART_REQUIRE(is_valid_assignment(g, seed, k), "seed invalid for ", k,
                 " parts");
  WallTimer timer;
  VcycleGaResult result;

  const VertexId target =
      std::max<VertexId>(k * options.coarse_vertices_per_part, 2 * k);
  // Partition-respecting matching: the seed is constant on every coarse
  // vertex at every level, so it projects onto the coarsest graph with
  // exactly its fine fitness.
  const CoarsenHierarchy hierarchy = coarsen_to(g, target, rng, &seed);
  const Graph& coarsest = hierarchy.coarsest(g);
  result.levels = static_cast<int>(hierarchy.num_levels());
  result.coarsest_vertices = coarsest.num_vertices();

  Assignment coarse_seed(static_cast<std::size_t>(coarsest.num_vertices()));
  const auto flat = hierarchy.flatten_map(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    coarse_seed[static_cast<std::size_t>(flat[static_cast<std::size_t>(v)])] =
        seed[static_cast<std::size_t>(v)];
  }

  auto initial =
      make_seeded_population(coarse_seed, options.dpga.ga.population_size,
                             /*swap_fraction=*/0.08, rng);
  const DpgaResult ga =
      run_dpga(coarsest, options.dpga, std::move(initial), rng.split(),
               executor);
  result.full_evaluations += ga.full_evaluations;
  result.delta_evaluations += ga.delta_evaluations;
  result.evolved_levels = 1;

  result.assignment =
      ascend(g, hierarchy, ga.best, options, rng, executor, result);
  result.metrics = compute_metrics(g, result.assignment, k);
  result.fitness = fitness_from_metrics(result.metrics, params);

  // Every stage is monotone and the quotient invariant is exact for integer
  // weights; with fractional vertex weights the imbalance term can round, so
  // never hand back anything below the seed.
  const double seed_fitness = evaluate_fitness(g, seed, k, params);
  if (result.fitness < seed_fitness) {
    result.assignment = seed;
    result.metrics = compute_metrics(g, seed, k);
    result.fitness = seed_fitness;
  }
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace gapart
