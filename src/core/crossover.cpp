#include "core/crossover.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace gapart {

const char* crossover_name(CrossoverOp op) {
  switch (op) {
    case CrossoverOp::kOnePoint:
      return "1-point";
    case CrossoverOp::kTwoPoint:
      return "2-point";
    case CrossoverOp::kKPoint:
      return "k-point";
    case CrossoverOp::kUniform:
      return "UX";
    case CrossoverOp::kKnux:
      return "KNUX";
    case CrossoverOp::kDknux:
      return "DKNUX";
    case CrossoverOp::kCombine:
      return "combine";
  }
  return "unknown";
}

CrossoverOp parse_crossover(const std::string& name) {
  if (name == "1point") return CrossoverOp::kOnePoint;
  if (name == "2point") return CrossoverOp::kTwoPoint;
  if (name == "kpoint") return CrossoverOp::kKPoint;
  if (name == "ux" || name == "uniform") return CrossoverOp::kUniform;
  if (name == "knux") return CrossoverOp::kKnux;
  if (name == "dknux") return CrossoverOp::kDknux;
  if (name == "combine") return CrossoverOp::kCombine;
  throw Error("unknown crossover operator '" + name +
              "' (expected 1point|2point|kpoint|ux|knux|dknux|combine)");
}

void k_point_crossover(const Assignment& a, const Assignment& b, int k,
                       Rng& rng, Assignment& child1, Assignment& child2) {
  GAPART_REQUIRE(a.size() == b.size(), "parent length mismatch");
  const auto n = a.size();
  GAPART_REQUIRE(k >= 1, "k-point crossover needs k >= 1");
  child1.resize(n);
  child2.resize(n);
  if (n <= 1) {
    child1 = a;
    child2 = b;
    return;
  }

  // Distinct cut sites in [1, n-1]; a cut before position i means the source
  // parent flips starting at gene i.
  const int max_cuts = static_cast<int>(n) - 1;
  const int cuts = std::min(k, max_cuts);
  std::vector<std::size_t> sites;
  sites.reserve(static_cast<std::size_t>(cuts));
  while (static_cast<int>(sites.size()) < cuts) {
    const auto s = static_cast<std::size_t>(
        1 + rng.uniform_int(static_cast<int>(n) - 1));
    if (std::find(sites.begin(), sites.end(), s) == sites.end()) {
      sites.push_back(s);
    }
  }
  std::sort(sites.begin(), sites.end());

  bool from_a = true;
  std::size_t next_cut = 0;
  for (std::size_t i = 0; i < n; ++i) {
    while (next_cut < sites.size() && sites[next_cut] == i) {
      from_a = !from_a;
      ++next_cut;
    }
    child1[i] = from_a ? a[i] : b[i];
    child2[i] = from_a ? b[i] : a[i];
  }
}

void uniform_crossover(const Assignment& a, const Assignment& b, Rng& rng,
                       Assignment& child1, Assignment& child2) {
  GAPART_REQUIRE(a.size() == b.size(), "parent length mismatch");
  const auto n = a.size();
  child1.resize(n);
  child2.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(0.5)) {
      child1[i] = a[i];
      child2[i] = b[i];
    } else {
      child1[i] = b[i];
      child2[i] = a[i];
    }
  }
}

double knux_bias(const Graph& g, const Assignment& reference, VertexId i,
                 PartId a_allele, PartId b_allele) {
  int count_a = 0;
  int count_b = 0;
  for (VertexId j : g.neighbors(i)) {
    const PartId rj = reference[static_cast<std::size_t>(j)];
    if (rj == a_allele) ++count_a;
    if (rj == b_allele) ++count_b;
  }
  if (count_a == 0 && count_b == 0) return 0.5;
  return static_cast<double>(count_a) /
         static_cast<double>(count_a + count_b);
}

void knux_crossover(const Assignment& a, const Assignment& b, const Graph& g,
                    const Assignment& reference, Rng& rng, Assignment& child1,
                    Assignment& child2, bool complementary) {
  GAPART_REQUIRE(a.size() == b.size(), "parent length mismatch");
  GAPART_REQUIRE(a.size() == static_cast<std::size_t>(g.num_vertices()),
                 "chromosome length != |V|");
  GAPART_REQUIRE(reference.size() == a.size(),
                 "KNUX reference length != chromosome length");
  const auto n = a.size();
  child1.resize(n);
  child2.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == b[i]) {
      child1[i] = a[i];
      child2[i] = a[i];
      continue;
    }
    const double p =
        knux_bias(g, reference, static_cast<VertexId>(i), a[i], b[i]);
    const bool take_a = rng.bernoulli(p);
    child1[i] = take_a ? a[i] : b[i];
    if (complementary) {
      // Uniform-crossover pairing: the sibling takes the other allele, so
      // no allele is lost from the population at crossover.
      child2[i] = take_a ? b[i] : a[i];
    } else {
      // Independent biased draw: both children pull towards the reference.
      child2[i] = rng.bernoulli(p) ? a[i] : b[i];
    }
  }
}

void apply_crossover(CrossoverOp op, const CrossoverContext& ctx,
                     const Assignment& a, const Assignment& b, Rng& rng,
                     Assignment& child1, Assignment& child2) {
  switch (op) {
    case CrossoverOp::kOnePoint:
      k_point_crossover(a, b, 1, rng, child1, child2);
      return;
    case CrossoverOp::kTwoPoint:
      k_point_crossover(a, b, 2, rng, child1, child2);
      return;
    case CrossoverOp::kKPoint:
      k_point_crossover(a, b, ctx.k_points, rng, child1, child2);
      return;
    case CrossoverOp::kUniform:
      uniform_crossover(a, b, rng, child1, child2);
      return;
    case CrossoverOp::kKnux:
    case CrossoverOp::kDknux:
      GAPART_REQUIRE(ctx.graph != nullptr, crossover_name(op),
                     " needs a graph in the crossover context");
      GAPART_REQUIRE(ctx.reference != nullptr, crossover_name(op),
                     " needs a reference solution in the crossover context");
      knux_crossover(a, b, *ctx.graph, *ctx.reference, rng, child1, child2,
                     ctx.knux_complementary);
      return;
    case CrossoverOp::kCombine:
      GAPART_REQUIRE(false,
                     "kCombine is not a positional operator: the GA engine "
                     "dispatches it to GaConfig::combine");
      return;
  }
  GAPART_ASSERT(false, "unhandled crossover op");
}

}  // namespace gapart
