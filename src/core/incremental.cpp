#include "core/incremental.hpp"

#include <utility>

#include "baselines/greedy_incremental.hpp"
#include "common/assert.hpp"
#include "common/timer.hpp"
#include "core/eval.hpp"
#include "core/init.hpp"

namespace gapart {

IncrementalResult incremental_repartition(const Graph& grown,
                                          const Assignment& previous,
                                          const GraphDelta& delta,
                                          const IncrementalGaOptions& options,
                                          Rng& rng, Executor* executor) {
  const auto n_old = static_cast<VertexId>(previous.size());
  const PartId k = options.dpga.ga.num_parts;
  GAPART_REQUIRE(n_old <= grown.num_vertices(),
                 "previous assignment larger than grown graph");
  GAPART_REQUIRE(delta.old_num_vertices == n_old,
                 "delta.old_num_vertices (", delta.old_num_vertices,
                 ") disagrees with |previous| (", n_old, ")");
  for (const PartId p : previous) {
    GAPART_REQUIRE(p >= 0 && p < k, "previous assignment part ", p,
                   " out of range for ", k, " parts");
  }

  const FitnessParams params = options.dpga.ga.fitness;
  WallTimer total;
  IncrementalResult out;
  out.damage = delta.damage(grown);

  // Tier 1: extend the previous assignment over the new vertices.
  Assignment current;
  {
    WallTimer t;
    IncrementalTierStats tier;
    if (options.greedy_extend) {
      tier.name = "greedy_extend";
      current = greedy_incremental_assign(grown, previous, k);
    } else {
      tier.name = "balanced_extend";
      current = incremental_seed_assignment(grown, previous, k, rng);
    }
    tier.moves = static_cast<int>(grown.num_vertices() - n_old);
    tier.evaluations = 1;  // the fitness readout below
    tier.fitness_after = evaluate_fitness(grown, current, k, params);
    tier.seconds = t.seconds();
    out.tiers.push_back(std::move(tier));
  }

  // Tier 2: damage-proportional repair — worklist-seeded frontier climb
  // from the delta's seeds, then full-boundary verification.
  if (options.seeded_repair) {
    WallTimer t;
    IncrementalTierStats tier;
    tier.name = "seeded_repair";
    const EvalContext eval(grown, k, params);
    PartitionState state = eval.make_state(std::move(current));
    HillClimbOptions hc;
    hc.fitness = params;
    hc.max_passes = options.repair_max_passes;
    hc.min_gain = options.repair_min_gain;
    hc.gain_ordered = options.repair_gain_ordered;
    const HillClimbResult res =
        hill_climb_from(eval, state, repair_seeds(delta, grown), hc);
    tier.moves = res.moves;
    tier.examined = res.examined;
    // Reported fitness comes from a from-scratch evaluation, not the
    // incrementally-maintained sum (eval.adopt): tier 3 full-evaluates the
    // same assignment as a population member, and the two paths can differ
    // in the last ULP — the trajectory stays monotone only if every tier
    // reports through the same summation order.
    tier.fitness_after = eval.evaluate(state.assignment());
    // Two full evaluations (state construction + the readout above) plus
    // one delta per move.
    tier.evaluations = eval.total_evaluations();
    tier.seconds = t.seconds();
    out.tiers.push_back(std::move(tier));
    current = std::move(state).release_assignment();
  }

  out.best = std::move(current);
  out.best_fitness = out.tiers.back().fitness_after;

  // Tier 3: DPGA refinement seeded with the repaired solution (kept
  // verbatim as the first population member, so the seed is never lost).
  if (options.refine_with_ga) {
    IncrementalTierStats tier;
    tier.name = "ga_refine";
    auto initial =
        make_seeded_population(out.best, options.dpga.ga.population_size,
                               options.swap_fraction, rng);
    out.ga = run_dpga(grown, options.dpga, std::move(initial), rng.split(),
                      executor);
    out.ga_ran = true;
    tier.moves = 0;
    tier.evaluations = out.ga.evaluations;
    tier.fitness_after = out.ga.best_fitness;
    tier.seconds = out.ga.wall_seconds;
    out.tiers.push_back(std::move(tier));
    if (out.ga.best_fitness >= out.best_fitness) {
      out.best = out.ga.best;
      out.best_fitness = out.ga.best_fitness;
    }
  }

  out.best_metrics = compute_metrics(grown, out.best, k);
  out.wall_seconds = total.seconds();
  return out;
}

IncrementalResult incremental_repartition(const Graph& grown,
                                          const Assignment& previous,
                                          const IncrementalGaOptions& options,
                                          Rng& rng, Executor* executor) {
  return incremental_repartition(
      grown, previous,
      appended_delta(grown, static_cast<VertexId>(previous.size())), options,
      rng, executor);
}

}  // namespace gapart
