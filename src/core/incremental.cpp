#include "core/incremental.hpp"

#include "common/assert.hpp"
#include "core/init.hpp"

namespace gapart {

DpgaResult incremental_repartition(const Graph& grown,
                                   const Assignment& previous,
                                   const IncrementalGaOptions& options,
                                   Rng& rng, Executor* executor) {
  GAPART_REQUIRE(static_cast<VertexId>(previous.size()) <=
                     grown.num_vertices(),
                 "previous assignment larger than grown graph");
  auto initial = make_incremental_population(
      grown, previous, options.dpga.ga.num_parts,
      options.dpga.ga.population_size, options.swap_fraction, rng);
  return run_dpga(grown, options.dpga, std::move(initial), rng.split(),
                  executor);
}

}  // namespace gapart
