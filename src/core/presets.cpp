#include "core/presets.hpp"

namespace gapart {

GaConfig paper_ga_config(PartId num_parts, Objective objective) {
  GaConfig cfg;
  cfg.num_parts = num_parts;
  cfg.population_size = 320;
  cfg.crossover_rate = 0.7;
  cfg.mutation_rate = 0.01;
  cfg.crossover = CrossoverOp::kDknux;
  cfg.selection = SelectionScheme::kTournament;
  cfg.tournament_size = 2;
  cfg.elite_count = 2;
  cfg.fitness.objective = objective;
  cfg.fitness.lambda = 1.0;
  cfg.max_generations = 300;
  cfg.stall_generations = 100;
  return cfg;
}

DpgaConfig paper_dpga_config(PartId num_parts, Objective objective) {
  DpgaConfig cfg;
  cfg.num_islands = 16;
  cfg.topology = TopologyKind::kHypercube;
  cfg.migration_interval = 5;
  cfg.migrants_per_exchange = 1;
  cfg.ga = paper_ga_config(num_parts, objective);
  return cfg;
}

}  // namespace gapart
