// Incremental graph partitioning (paper §3.5 / §4.2), as a tiered,
// damage-proportional pipeline.
//
// When a partitioned graph grows — new vertices appended, adjacency possibly
// perturbed locally — the previous partition should be exploited so that
// repartitioning costs scale with the change, not the graph:
//
//   Tier 1  greedy_extend   Deterministic extension of the previous
//                           assignment: new vertices take the majority part
//                           of their already-assigned neighbours
//                           (most-constrained-first).  O(new * deg).
//   Tier 2  seeded_repair   Worklist-seeded frontier hill climb starting
//                           from the delta's repair seeds (new vertices,
//                           rewired survivors, and their neighbours): the
//                           cascade costs O(damage), then full-boundary
//                           verification rounds — O(boundary), still way
//                           under O(V) — restore the sweep fixed-point
//                           class.  This tier pays off the greedy tier's
//                           localized imbalance.
//   Tier 3  ga_refine       Optional DPGA (DKNUX by default) seeded with
//                           the repaired solution plus swap-perturbed
//                           clones — the paper's §3.5 incremental GA,
//                           now starting from an already-repaired seed.
//                           By far the most expensive tier; skip it when
//                           the damage is small and tier 2's verified
//                           local optimum is good enough.
//
// Per-tier stats (moves, gain-kernel probes, evaluations, fitness
// trajectory) come back with the result so callers — and the incremental
// benches — can see where the work went.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dpga.hpp"
#include "core/graph_delta.hpp"
#include "core/hill_climb.hpp"
#include "core/presets.hpp"

namespace gapart {

struct IncrementalGaOptions {
  DpgaConfig dpga;
  /// Swap-perturbation strength for the non-seed population members.
  double swap_fraction = 0.08;

  /// Tier 1: deterministic greedy extension (majority part).  When off, new
  /// vertices are dealt randomly to the lightest parts instead (§3.5).
  bool greedy_extend = true;
  /// Tier 2: worklist-seeded repair of the extended assignment.
  bool seeded_repair = true;
  /// Tier 3: DPGA refinement seeded with the repaired solution.  The
  /// expensive tier — optional for latency-bound callers.
  bool refine_with_ga = true;

  /// Tier 2 budget: full-boundary verification rounds (the seeded cascade
  /// itself is damage-proportional and not charged).
  int repair_max_passes = 4;
  /// Tier 2 minimum per-move gain (must stay positive; bounds the cascade).
  double repair_min_gain = 1e-9;
  /// Tier 2: process likely-positive-gain worklist vertices first
  /// (HillClimbOptions::gain_ordered).  Same fixed-point class, different
  /// move order; off by default so existing pipeline results stay
  /// bit-stable.  The streaming service turns it on.
  bool repair_gain_ordered = false;

  IncrementalGaOptions()
      : dpga(paper_dpga_config(2, Objective::kTotalComm)) {}
};

/// What one pipeline tier did.  fitness_after values form the pipeline's
/// fitness trajectory (monotone: tier 2 never undoes tier 1, tier 3's
/// population contains tier 2's solution verbatim).
struct IncrementalTierStats {
  std::string name;               ///< "greedy_extend" / "balanced_extend" /
                                  ///< "seeded_repair" / "ga_refine"
  double fitness_after = 0.0;
  int moves = 0;                  ///< vertices assigned (tier 1) / migrated
  std::int64_t examined = 0;      ///< gain-kernel probes (tier 2)
  std::int64_t evaluations = 0;   ///< full + delta evaluations charged
  double seconds = 0.0;
};

struct IncrementalResult {
  Assignment best;
  double best_fitness = 0.0;
  PartitionMetrics best_metrics;
  std::vector<IncrementalTierStats> tiers;
  /// Damage the pipeline repaired (new + touched vertices, from the delta).
  VertexId damage = 0;
  bool ga_ran = false;
  DpgaResult ga;  ///< Populated only when ga_ran.
  double wall_seconds = 0.0;
};

/// Repartitions `grown` (whose first |previous| vertices carry over from the
/// old graph) into options.dpga.ga.num_parts parts through the tiered
/// pipeline above.  `delta` says what changed; delta.old_num_vertices must
/// equal |previous|.  Every entry of `previous` must lie in [0, num_parts).
/// `executor` (optional, non-owning) is handed to the DPGA as its shared
/// evaluation pool.
IncrementalResult incremental_repartition(const Graph& grown,
                                          const Assignment& previous,
                                          const GraphDelta& delta,
                                          const IncrementalGaOptions& options,
                                          Rng& rng,
                                          Executor* executor = nullptr);

/// Convenience overload for pure growth: derives the delta with
/// appended_delta(grown, |previous|).
IncrementalResult incremental_repartition(const Graph& grown,
                                          const Assignment& previous,
                                          const IncrementalGaOptions& options,
                                          Rng& rng,
                                          Executor* executor = nullptr);

}  // namespace gapart
