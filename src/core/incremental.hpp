// Incremental graph partitioning (paper §3.5 / §4.2).
//
// When a partitioned graph grows — new vertices appended, adjacency possibly
// perturbed locally — the previous partition seeds the GA population: old
// vertices keep their parts, new vertices are dealt randomly to the lightest
// parts, and the population is filled with balance-preserving perturbations
// of that extension.  The GA (DKNUX by default) then repartitions the grown
// graph, exploiting all the information in the previous solution.
#pragma once

#include "core/dpga.hpp"
#include "core/presets.hpp"

namespace gapart {

struct IncrementalGaOptions {
  DpgaConfig dpga;
  /// Swap-perturbation strength for the non-seed population members.
  double swap_fraction = 0.08;

  IncrementalGaOptions()
      : dpga(paper_dpga_config(2, Objective::kTotalComm)) {}
};

/// Repartitions `grown` (whose first |previous| vertices carry over from the
/// old graph) into options.dpga.ga.num_parts parts, seeded from `previous`.
/// `executor` (optional, non-owning) is handed to the DPGA as its shared
/// evaluation pool.
DpgaResult incremental_repartition(const Graph& grown,
                                   const Assignment& previous,
                                   const IncrementalGaOptions& options,
                                   Rng& rng, Executor* executor = nullptr);

}  // namespace gapart
