#include "core/graph_delta.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace gapart {

GraphDelta appended_delta(const Graph& grown, VertexId old_num_vertices) {
  GAPART_REQUIRE(old_num_vertices >= 0 &&
                     old_num_vertices <= grown.num_vertices(),
                 "old vertex count ", old_num_vertices,
                 " out of range for |V| = ", grown.num_vertices());
  GraphDelta delta;
  delta.old_num_vertices = old_num_vertices;
  for (VertexId v = 0; v < old_num_vertices; ++v) {
    // neighbors() is sorted ascending, so one back() check finds edges into
    // the appended range.
    const auto nbrs = grown.neighbors(v);
    if (!nbrs.empty() && nbrs.back() >= old_num_vertices) {
      delta.touched_old.push_back(v);
    }
  }
  return delta;
}

GraphDelta diff_graphs(const Graph& old_graph, const Graph& grown) {
  const VertexId n_old = old_graph.num_vertices();
  GAPART_REQUIRE(n_old <= grown.num_vertices(),
                 "old graph larger than grown graph");
  GraphDelta delta;
  delta.old_num_vertices = n_old;
  for (VertexId v = 0; v < n_old; ++v) {
    const auto a = old_graph.neighbors(v);
    const auto b = grown.neighbors(v);
    const bool same_adj = std::equal(a.begin(), a.end(), b.begin(), b.end());
    const auto wa = old_graph.edge_weights(v);
    const auto wb = grown.edge_weights(v);
    const bool same_wgt =
        same_adj && std::equal(wa.begin(), wa.end(), wb.begin(), wb.end()) &&
        old_graph.vertex_weight(v) == grown.vertex_weight(v);
    if (!same_wgt) delta.touched_old.push_back(v);
  }
  return delta;
}

std::vector<VertexId> repair_seeds(const GraphDelta& delta,
                                   const Graph& grown) {
  const VertexId n = grown.num_vertices();
  GAPART_REQUIRE(delta.old_num_vertices >= 0 && delta.old_num_vertices <= n,
                 "delta old vertex count ", delta.old_num_vertices,
                 " out of range for |V| = ", n);
  std::vector<VertexId> seeds;
  const auto add_with_neighbors = [&](VertexId v) {
    seeds.push_back(v);
    for (const VertexId u : grown.neighbors(v)) seeds.push_back(u);
  };
  for (VertexId v = delta.old_num_vertices; v < n; ++v) {
    add_with_neighbors(v);
  }
  for (const VertexId v : delta.touched_old) {
    GAPART_REQUIRE(v >= 0 && v < delta.old_num_vertices, "touched vertex ", v,
                   " is not a surviving vertex");
    add_with_neighbors(v);
  }
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  return seeds;
}

}  // namespace gapart
