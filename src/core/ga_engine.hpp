// Single-population genetic algorithm for graph partitioning.
//
// Generational model with elitism, structured as two phases per generation:
//
//   generate : parents are drawn by the configured selection scheme; with
//              probability p_c they recombine under the configured crossover
//              operator (two children), otherwise they are cloned.  This
//              phase is serial and consumes the engine RNG, producing a batch
//              of unevaluated children.
//   evaluate : the batch is mutated, optionally hill-climbed (§3.6) and
//              evaluated — in parallel on the shared Executor when one is
//              provided.  Each child owns an independent RNG stream forked by
//              batch index (Rng::fork), so results are bit-identical to the
//              serial run at any thread count.  Hill-climbed children reuse
//              the fitness their PartitionState maintained incrementally
//              (counted as one full evaluation at state construction plus one
//              delta per accepted move); un-climbed children take a fused
//              single-pass mutate+evaluate path (one full evaluation).
//
// For DKNUX the engine updates the operator's reference solution to the best
// individual found so far at every generation boundary (§3.3).
//
// The engine exposes a step() interface so the distributed-population model
// (core/dpga.hpp) can drive many engines in lockstep and migrate individuals
// between them.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/executor.hpp"
#include "common/rng.hpp"
#include "core/crossover.hpp"
#include "core/eval.hpp"
#include "core/hill_climb.hpp"
#include "core/individual.hpp"
#include "core/selection.hpp"
#include "graph/partition.hpp"

namespace gapart {

struct GaConfig {
  PartId num_parts = 2;
  int population_size = 320;    ///< paper: total population 320
  double crossover_rate = 0.7;  ///< paper: p_c = 0.7
  double mutation_rate = 0.01;  ///< paper: p_m = 0.01 (per gene)
  CrossoverOp crossover = CrossoverOp::kDknux;
  int k_points = 4;  ///< cut count when crossover == kKPoint
  /// Recombination callback used when crossover == kCombine: produces both
  /// children from the two parents (e.g. the multilevel quotient-graph
  /// combine from core/vcycle_ga.hpp, which contracts the regions the
  /// parents agree on and re-partitions the quotient).  Invoked serially in
  /// the generate phase with the engine RNG, like the positional operators,
  /// so pooled runs stay bit-identical to serial ones.  Required (non-null)
  /// when crossover == kCombine; ignored otherwise.
  using CombineFn =
      std::function<void(const Assignment& a, const Assignment& b, Rng& rng,
                         Assignment& child1, Assignment& child2)>;
  CombineFn combine;
  /// KNUX/DKNUX sibling policy (see CrossoverContext::knux_complementary).
  bool knux_complementary = false;
  /// Optional explicit initial reference solution I for KNUX/DKNUX (§3.2:
  /// "an initial candidate solution I is first generated", e.g. an IBP
  /// result).  When absent, the best member of the initial population is
  /// used.  DKNUX replaces it with the best-so-far as the search proceeds.
  std::optional<Assignment> knux_reference;
  SelectionScheme selection = SelectionScheme::kTournament;
  int tournament_size = 2;
  int elite_count = 2;  ///< individuals copied unchanged each generation
  FitnessParams fitness;

  /// Stopping: hard generation cap, plus optional stall window (0 = off)
  /// counting generations without best-fitness improvement.
  int max_generations = 300;
  int stall_generations = 0;

  /// §3.6 hill climbing on offspring.
  bool hill_climb_offspring = false;
  double hill_climb_fraction = 0.25;  ///< probability a child is climbed
  int hill_climb_passes = 1;

  /// Un-climbed CLONED children (the 1 - p_c share that skip crossover)
  /// inherit their parent's cached metrics and are re-evaluated by applying
  /// the mutation flips as move deltas — O(flips * deg + k) instead of a
  /// full O(V + E) pass, counted as delta evaluations.  RNG consumption is
  /// unchanged either way; fitness values are bit-identical to the full
  /// pass when the mean part load is exactly representable (see
  /// EvalContext::mutate_clone_and_evaluate), otherwise equal to within
  /// floating-point rounding — the same guarantee hill-climbed children
  /// already get from PartitionState's incremental fitness.
  bool delta_eval_clones = true;
  /// Flip budget for the clone delta path as a fraction of |V|; children
  /// whose mutation flips more genes fall back to a full evaluation.  At the
  /// paper's p_m = 0.01 the budget is never exceeded in practice.
  double delta_eval_max_flip_fraction = 0.1;
};

/// Per-generation statistics (drives the convergence figures).
struct GenerationStats {
  int generation = 0;
  double best_fitness = 0.0;       ///< best-ever at this generation
  double mean_fitness = 0.0;       ///< current population mean
  double best_total_cut = 0.0;     ///< sum C(q)/2 of best-ever
  double best_max_part_cut = 0.0;  ///< max C(q) of best-ever
};

struct GaResult {
  Assignment best;
  double best_fitness = 0.0;
  PartitionMetrics best_metrics;
  std::vector<GenerationStats> history;
  int generations = 0;
  /// Total evaluation count = full + delta (kept for continuity with the
  /// paper's convergence figures, which count fitness computations).
  std::int64_t evaluations = 0;
  std::int64_t full_evaluations = 0;   ///< O(V+E) from-scratch evaluations
  std::int64_t delta_evaluations = 0;  ///< O(deg) incremental updates
  bool stalled = false;  ///< true when the stall window triggered the stop
};

class GaEngine {
 public:
  /// `initial` chromosomes fill the population: cycled if fewer than
  /// population_size, truncated if more.  Must not be empty.  `executor`
  /// (optional, non-owning, must outlive the engine) batch-evaluates
  /// offspring; results are identical with or without it.
  GaEngine(const Graph& g, const GaConfig& config,
           std::vector<Assignment> initial, Rng rng,
           Executor* executor = nullptr);

  const GaConfig& config() const { return config_; }
  const Graph& graph() const { return eval_.graph(); }
  int generation() const { return generation_; }

  /// Evaluation accounting (see core/eval.hpp for full-vs-delta semantics).
  std::int64_t evaluations() const { return eval_.total_evaluations(); }
  std::int64_t full_evaluations() const { return eval_.full_evaluations(); }
  std::int64_t delta_evaluations() const { return eval_.delta_evaluations(); }

  /// The evaluation context the engine shares with its climbers.
  const EvalContext& eval_context() const { return eval_; }

  const std::vector<Individual>& population() const { return population_; }

  /// Best individual discovered over the whole run (not only the current
  /// population).
  const Individual& best() const { return best_ever_; }

  /// KNUX/DKNUX reference solution I (§3.2/§3.3).
  const Assignment& knux_reference() const { return knux_reference_; }

  /// Overrides the reference (e.g. an IBP solution for static KNUX).
  void set_knux_reference(Assignment reference);

  /// Replaces the worst individual with `migrant` (DPGA migration).
  void inject(const Assignment& migrant);

  /// Runs one generation (generate phase, then batched evaluate phase).
  void step();

  /// True when the configured stall window has elapsed without improvement.
  bool stalled() const;

  /// Statistics of the current state (appended to history each step()).
  const std::vector<GenerationStats>& history() const { return history_; }

  /// Packages the engine's outcome.
  GaResult result() const;

 private:
  /// Mutates, optionally climbs, and evaluates batch[index] using its own
  /// forked RNG stream.  `clone_parent` is the population index the child
  /// was cloned from (-1 when it came out of crossover); clones may take the
  /// delta evaluation path.  Safe to run concurrently for distinct indices
  /// (the population is read-only during the evaluate phase).
  void finish_child(std::vector<Individual>& batch, std::size_t index,
                    const Rng& stream_base, std::int32_t clone_parent);
  void record_stats();
  std::size_t worst_index() const;

  GaConfig config_;
  EvalContext eval_;
  Rng rng_;
  std::vector<Individual> population_;
  Individual best_ever_;
  Assignment knux_reference_;
  int generation_ = 0;
  int last_improvement_generation_ = 0;
  std::vector<GenerationStats> history_;
};

/// Convenience driver: constructs an engine and steps until max_generations
/// or the stall window fires.  `executor`, when given, batch-evaluates
/// offspring without changing results.
GaResult run_ga(const Graph& g, const GaConfig& config,
                std::vector<Assignment> initial, Rng rng,
                Executor* executor = nullptr);

}  // namespace gapart
