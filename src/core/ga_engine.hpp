// Single-population genetic algorithm for graph partitioning.
//
// Generational model with elitism.  Per generation: parents are drawn by the
// configured selection scheme; with probability p_c they recombine under the
// configured crossover operator (two children), otherwise they are cloned;
// children undergo per-gene point mutation (rate p_m) and — optionally —
// the boundary hill climbing of §3.6.  For DKNUX the engine updates the
// operator's reference solution to the best individual found so far at every
// generation boundary (§3.3).
//
// The engine exposes a step() interface so the distributed-population model
// (core/dpga.hpp) can drive many engines in lockstep and migrate individuals
// between them.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/crossover.hpp"
#include "core/fitness.hpp"
#include "core/hill_climb.hpp"
#include "core/individual.hpp"
#include "core/selection.hpp"
#include "graph/partition.hpp"

namespace gapart {

struct GaConfig {
  PartId num_parts = 2;
  int population_size = 320;    ///< paper: total population 320
  double crossover_rate = 0.7;  ///< paper: p_c = 0.7
  double mutation_rate = 0.01;  ///< paper: p_m = 0.01 (per gene)
  CrossoverOp crossover = CrossoverOp::kDknux;
  int k_points = 4;  ///< cut count when crossover == kKPoint
  /// KNUX/DKNUX sibling policy (see CrossoverContext::knux_complementary).
  bool knux_complementary = false;
  /// Optional explicit initial reference solution I for KNUX/DKNUX (§3.2:
  /// "an initial candidate solution I is first generated", e.g. an IBP
  /// result).  When absent, the best member of the initial population is
  /// used.  DKNUX replaces it with the best-so-far as the search proceeds.
  std::optional<Assignment> knux_reference;
  SelectionScheme selection = SelectionScheme::kTournament;
  int tournament_size = 2;
  int elite_count = 2;  ///< individuals copied unchanged each generation
  FitnessParams fitness;

  /// Stopping: hard generation cap, plus optional stall window (0 = off)
  /// counting generations without best-fitness improvement.
  int max_generations = 300;
  int stall_generations = 0;

  /// §3.6 hill climbing on offspring.
  bool hill_climb_offspring = false;
  double hill_climb_fraction = 0.25;  ///< probability a child is climbed
  int hill_climb_passes = 1;
};

/// Per-generation statistics (drives the convergence figures).
struct GenerationStats {
  int generation = 0;
  double best_fitness = 0.0;       ///< best-ever at this generation
  double mean_fitness = 0.0;       ///< current population mean
  double best_total_cut = 0.0;     ///< sum C(q)/2 of best-ever
  double best_max_part_cut = 0.0;  ///< max C(q) of best-ever
};

struct GaResult {
  Assignment best;
  double best_fitness = 0.0;
  PartitionMetrics best_metrics;
  std::vector<GenerationStats> history;
  int generations = 0;
  std::int64_t evaluations = 0;
  bool stalled = false;  ///< true when the stall window triggered the stop
};

class GaEngine {
 public:
  /// `initial` chromosomes fill the population: cycled if fewer than
  /// population_size, truncated if more.  Must not be empty.
  GaEngine(const Graph& g, const GaConfig& config,
           std::vector<Assignment> initial, Rng rng);

  const GaConfig& config() const { return config_; }
  const Graph& graph() const { return fitness_fn_.graph(); }
  int generation() const { return generation_; }
  std::int64_t evaluations() const { return evaluations_; }

  const std::vector<Individual>& population() const { return population_; }

  /// Best individual discovered over the whole run (not only the current
  /// population).
  const Individual& best() const { return best_ever_; }

  /// KNUX/DKNUX reference solution I (§3.2/§3.3).
  const Assignment& knux_reference() const { return knux_reference_; }

  /// Overrides the reference (e.g. an IBP solution for static KNUX).
  void set_knux_reference(Assignment reference);

  /// Replaces the worst individual with `migrant` (DPGA migration).
  void inject(const Assignment& migrant);

  /// Runs one generation.
  void step();

  /// True when the configured stall window has elapsed without improvement.
  bool stalled() const;

  /// Statistics of the current state (appended to history each step()).
  const std::vector<GenerationStats>& history() const { return history_; }

  /// Packages the engine's outcome.
  GaResult result() const;

 private:
  double evaluate(const Assignment& genes);
  void record_stats();
  std::size_t worst_index() const;

  GaConfig config_;
  FitnessFunction fitness_fn_;
  Rng rng_;
  std::vector<Individual> population_;
  Individual best_ever_;
  Assignment knux_reference_;
  int generation_ = 0;
  int last_improvement_generation_ = 0;
  std::int64_t evaluations_ = 0;
  std::vector<GenerationStats> history_;
};

/// Convenience driver: constructs an engine and steps until max_generations
/// or the stall window fires.
GaResult run_ga(const Graph& g, const GaConfig& config,
                std::vector<Assignment> initial, Rng rng);

}  // namespace gapart
