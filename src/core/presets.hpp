// The paper's experimental GA settings (§4), packaged so every bench, test
// and example agrees on them: total population 320, crossover rate 0.7,
// mutation rate 0.01, DKNUX, and — for the distributed runs — 16
// subpopulations configured as a 4-dimensional hypercube.
#pragma once

#include "core/dpga.hpp"
#include "core/ga_engine.hpp"

namespace gapart {

/// Single-population configuration with the paper's parameters.
GaConfig paper_ga_config(PartId num_parts, Objective objective);

/// 16-island hypercube DPGA over a total population of 320.
DpgaConfig paper_dpga_config(PartId num_parts, Objective objective);

}  // namespace gapart
