#include "core/mutation.hpp"

#include <vector>

#include "common/assert.hpp"

namespace gapart {

int point_mutation(Assignment& genes, PartId num_parts, double rate,
                   Rng& rng) {
  GAPART_REQUIRE(num_parts >= 1, "need at least one part");
  GAPART_REQUIRE(rate >= 0.0 && rate <= 1.0, "mutation rate out of [0,1]");
  if (num_parts == 1) return 0;
  int changed = 0;
  for (auto& gene : genes) {
    if (!rng.bernoulli(rate)) continue;
    // Uniform over the other num_parts-1 parts.
    PartId p = static_cast<PartId>(rng.uniform_int(num_parts - 1));
    if (p >= gene) ++p;
    gene = p;
    ++changed;
  }
  return changed;
}

int boundary_mutation(Assignment& genes, const Graph& g, PartId num_parts,
                      double rate, Rng& rng) {
  GAPART_REQUIRE(static_cast<VertexId>(genes.size()) == g.num_vertices(),
                 "chromosome length != |V|");
  GAPART_REQUIRE(num_parts >= 1, "need at least one part");
  if (num_parts == 1) return 0;
  int changed = 0;
  std::vector<PartId> options;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const PartId own = genes[static_cast<std::size_t>(v)];
    options.clear();
    for (VertexId u : g.neighbors(v)) {
      const PartId q = genes[static_cast<std::size_t>(u)];
      if (q != own) options.push_back(q);
    }
    if (options.empty()) continue;  // interior vertex
    if (!rng.bernoulli(rate)) continue;
    genes[static_cast<std::size_t>(v)] =
        options[static_cast<std::size_t>(rng.uniform_int(
            static_cast<int>(options.size())))];
    ++changed;
  }
  return changed;
}

void perturb_by_swaps(Assignment& genes, int num_swaps, Rng& rng) {
  const auto n = static_cast<int>(genes.size());
  if (n < 2) return;
  for (int s = 0; s < num_swaps; ++s) {
    const auto i = static_cast<std::size_t>(rng.uniform_int(n));
    const auto j = static_cast<std::size_t>(rng.uniform_int(n));
    if (genes[i] == genes[j]) continue;  // swap would be a no-op
    std::swap(genes[i], genes[j]);
  }
}

}  // namespace gapart
