#include "core/dpga.hpp"

#include <algorithm>
#include <functional>
#include <memory>

#include "common/assert.hpp"
#include "common/timer.hpp"

namespace gapart {

DpgaResult run_dpga(const Graph& g, const DpgaConfig& config,
                    std::vector<Assignment> initial, Rng rng,
                    Executor* executor) {
  GAPART_REQUIRE(config.num_islands >= 1, "need at least one island");
  GAPART_REQUIRE(config.migration_interval >= 1,
                 "migration interval must be >= 1");
  GAPART_REQUIRE(config.migrants_per_exchange >= 0,
                 "migrant count must be >= 0");
  GAPART_REQUIRE(!initial.empty(), "initial population must not be empty");
  GAPART_REQUIRE(config.ga.population_size >= 2 * config.num_islands,
                 "total population ", config.ga.population_size,
                 " too small for ", config.num_islands, " islands");

  WallTimer timer;
  const auto islands = static_cast<std::size_t>(config.num_islands);
  const auto neighbors = build_topology(config.topology, config.num_islands);

  // One persistent pool for the whole run (replacing the old fork-join of a
  // fresh std::thread per island per burst).
  std::unique_ptr<Executor> owned_pool;
  if (executor == nullptr && config.parallel) {
    // Default pool size: one thread per island for multi-island runs; a
    // single-island run hands the pool to the engine (offspring batching),
    // which wants every hardware thread.
    const int threads =
        config.num_threads > 0
            ? config.num_threads
            : (config.num_islands > 1
                   ? std::min(config.num_islands, Executor::hardware_threads())
                   : Executor::hardware_threads());
    if (threads > 1) {
      owned_pool = std::make_unique<Executor>(threads);
      executor = owned_pool.get();
    }
  }
  // Multi-island runs parallelize across islands (engines step serially
  // inside their burst task); a single-island run hands the pool to the
  // engine, which batch-evaluates offspring on it instead.
  const bool pool_runs_islands = executor != nullptr && islands > 1;
  Executor* engine_executor = pool_runs_islands ? nullptr : executor;

  // Deal initial chromosomes round-robin so every island sees a slice of
  // the seeds.
  std::vector<std::vector<Assignment>> island_initial(islands);
  const int island_pop = config.ga.population_size / config.num_islands;
  for (std::size_t i = 0;
       i < islands * static_cast<std::size_t>(island_pop); ++i) {
    island_initial[i % islands].push_back(initial[i % initial.size()]);
  }

  GaConfig island_cfg = config.ga;
  island_cfg.population_size = island_pop;
  // Stall handling lives at the DPGA level (global best), not per island.
  island_cfg.stall_generations = 0;

  std::vector<std::unique_ptr<GaEngine>> engines;
  engines.reserve(islands);
  for (std::size_t i = 0; i < islands; ++i) {
    engines.push_back(std::make_unique<GaEngine>(
        g, island_cfg, std::move(island_initial[i]), rng.split(),
        engine_executor));
  }

  auto global_best_fitness = [&engines]() {
    double best = engines.front()->best().fitness;
    for (const auto& e : engines) best = std::max(best, e->best().fitness);
    return best;
  };

  double best_so_far = global_best_fitness();
  int last_improvement_generation = 0;

  int generation = 0;
  while (generation < config.ga.max_generations) {
    const int burst = std::min(config.migration_interval,
                               config.ga.max_generations - generation);

    if (pool_runs_islands) {
      // Work items = island bursts on the persistent pool.
      std::vector<std::function<void()>> tasks;
      tasks.reserve(islands);
      for (auto& engine : engines) {
        tasks.push_back([&engine, burst]() {
          for (int s = 0; s < burst; ++s) engine->step();
        });
      }
      executor->run_tasks(tasks);
    } else {
      for (auto& engine : engines) {
        for (int s = 0; s < burst; ++s) engine->step();
      }
    }
    generation += burst;

    // Migration: island i sends copies of its best-k individuals to every
    // topology neighbour.  Snapshot the outgoing migrants first so the
    // exchange is order-independent.
    if (config.migrants_per_exchange > 0) {
      std::vector<std::vector<Assignment>> outbox(islands);
      for (std::size_t i = 0; i < islands; ++i) {
        auto pop = engines[i]->population();  // copy
        std::sort(pop.begin(), pop.end(),
                  [](const Individual& a, const Individual& b) {
                    return a.fitness > b.fitness;
                  });
        const auto k = std::min<std::size_t>(
            static_cast<std::size_t>(config.migrants_per_exchange),
            pop.size());
        for (std::size_t m = 0; m < k; ++m) {
          outbox[i].push_back(pop[m].genes);
        }
      }
      for (std::size_t i = 0; i < islands; ++i) {
        for (int nb : neighbors[i]) {
          for (const auto& migrant : outbox[i]) {
            engines[static_cast<std::size_t>(nb)]->inject(migrant);
          }
        }
      }
    }

    const double now_best = global_best_fitness();
    if (now_best > best_so_far + 1e-12) {
      best_so_far = now_best;
      last_improvement_generation = generation;
    }
    if (config.ga.stall_generations > 0 &&
        generation - last_improvement_generation >=
            config.ga.stall_generations) {
      break;
    }
  }

  // Combine results.
  DpgaResult result;
  result.generations = generation;
  std::size_t best_island = 0;
  for (std::size_t i = 0; i < islands; ++i) {
    result.full_evaluations += engines[i]->full_evaluations();
    result.delta_evaluations += engines[i]->delta_evaluations();
    result.island_best_fitness.push_back(engines[i]->best().fitness);
    if (engines[i]->best().fitness > engines[best_island]->best().fitness) {
      best_island = i;
    }
  }
  result.evaluations = result.full_evaluations + result.delta_evaluations;
  const GaResult island_result = engines[best_island]->result();
  result.best = island_result.best;
  result.best_fitness = island_result.best_fitness;
  result.best_metrics = island_result.best_metrics;

  // Global per-generation history: entry g is the best island entry at g.
  std::size_t max_len = 0;
  for (const auto& e : engines) {
    max_len = std::max(max_len, e->history().size());
  }
  for (std::size_t gen = 0; gen < max_len; ++gen) {
    const GenerationStats* best_entry = nullptr;
    double mean_acc = 0.0;
    int mean_count = 0;
    for (const auto& e : engines) {
      const auto& h = e->history();
      const auto& entry = gen < h.size() ? h[gen] : h.back();
      if (best_entry == nullptr ||
          entry.best_fitness > best_entry->best_fitness) {
        best_entry = &entry;
      }
      mean_acc += entry.mean_fitness;
      ++mean_count;
    }
    GenerationStats s = *best_entry;
    s.generation = static_cast<int>(gen);
    s.mean_fitness = mean_acc / static_cast<double>(mean_count);
    result.history.push_back(s);
  }

  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace gapart
