// DPGA — the paper's coarse-grained distributed-population genetic
// algorithm (§3.4).
//
// The total population is split into subpopulations ("islands"), one GaEngine
// each; crossover only ever recombines members of the same subpopulation.
// Every migration_interval generations each island sends copies of its best
// individuals to its topology neighbours (paper: 16 subpopulations on a
// 4-dimensional hypercube), which replace the receivers' worst members.
//
// Islands are stepped serially or as work items ("island bursts") on one
// persistent Executor that lives for the whole run — no per-burst thread
// fork/join.  Results are bit-identical between the two modes: every island
// owns an independent RNG stream, and migration is applied in fixed island
// order after the epoch barrier — mirroring a deterministic message-passing
// (MPI-style) exchange.  With a single island the pool is handed to the
// engine instead, which then batch-evaluates its offspring on it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/executor.hpp"
#include "core/ga_engine.hpp"
#include "core/topology.hpp"

namespace gapart {

struct DpgaConfig {
  int num_islands = 16;  ///< paper: 16 subpopulations
  TopologyKind topology = TopologyKind::kHypercube;
  int migration_interval = 5;      ///< generations between exchanges
  int migrants_per_exchange = 1;   ///< best-k individuals sent per neighbour
  bool parallel = false;           ///< island bursts on a shared thread pool
  /// Pool size when `parallel` and no external Executor is supplied:
  /// 0 = min(num_islands, hardware threads).
  int num_threads = 0;
  /// Per-island GA settings.  ga.population_size is the TOTAL population
  /// (paper: 320); each island receives population_size / num_islands.
  GaConfig ga;
};

struct DpgaResult {
  Assignment best;
  double best_fitness = 0.0;
  PartitionMetrics best_metrics;
  /// Global best-so-far per generation (max across islands).
  std::vector<GenerationStats> history;
  int generations = 0;            ///< per-island generations executed
  std::int64_t evaluations = 0;   ///< summed across islands (full + delta)
  std::int64_t full_evaluations = 0;
  std::int64_t delta_evaluations = 0;
  std::vector<double> island_best_fitness;
  double wall_seconds = 0.0;
};

/// Runs the DPGA.  `initial` chromosomes are dealt round-robin to islands;
/// they are cycled if fewer than the total population.  `executor` (optional,
/// non-owning) overrides the internally created pool; when null and
/// config.parallel is set, one persistent pool is created for the run.
DpgaResult run_dpga(const Graph& g, const DpgaConfig& config,
                    std::vector<Assignment> initial, Rng rng,
                    Executor* executor = nullptr);

}  // namespace gapart
