// Migration topologies for the distributed-population GA.
//
// The paper runs 16 subpopulations "configured as a four dimensional
// hypercube"; ring, 2-D torus and complete graphs are provided for the
// migration-topology ablation.
#pragma once

#include <string>
#include <vector>

namespace gapart {

enum class TopologyKind {
  kHypercube,  ///< islands must be a power of two
  kRing,
  kTorus,  ///< islands arranged near-square
  kComplete,
  kIsolated,  ///< no migration links (ablation control)
};

const char* topology_name(TopologyKind k);
TopologyKind parse_topology(const std::string& name);

/// neighbors[i] = sorted list of islands island i sends its migrants to.
/// All topologies here are symmetric.
std::vector<std::vector<int>> build_topology(TopologyKind kind,
                                             int num_islands);

}  // namespace gapart
