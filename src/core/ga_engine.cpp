#include "core/ga_engine.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "core/mutation.hpp"

namespace gapart {

GaEngine::GaEngine(const Graph& g, const GaConfig& config,
                   std::vector<Assignment> initial, Rng rng,
                   Executor* executor)
    : config_(config),
      eval_(g, config.num_parts, config.fitness, executor),
      rng_(rng) {
  GAPART_REQUIRE(config_.population_size >= 2,
                 "population must hold at least 2 individuals");
  GAPART_REQUIRE(config_.num_parts >= 1, "need at least one part");
  GAPART_REQUIRE(config_.crossover_rate >= 0.0 &&
                     config_.crossover_rate <= 1.0,
                 "crossover rate out of [0,1]");
  GAPART_REQUIRE(config_.mutation_rate >= 0.0 && config_.mutation_rate <= 1.0,
                 "mutation rate out of [0,1]");
  GAPART_REQUIRE(config_.elite_count >= 0 &&
                     config_.elite_count < config_.population_size,
                 "elite count must be in [0, population)");
  GAPART_REQUIRE(config_.crossover != CrossoverOp::kCombine ||
                     static_cast<bool>(config_.combine),
                 "crossover == kCombine needs a combine callback");
  GAPART_REQUIRE(!initial.empty(), "initial population must not be empty");
  for (const auto& genes : initial) {
    GAPART_REQUIRE(is_valid_assignment(g, genes, config_.num_parts),
                   "initial chromosome invalid for ", config_.num_parts,
                   " parts");
  }

  population_.resize(static_cast<std::size_t>(config_.population_size));
  for (int i = 0; i < config_.population_size; ++i) {
    population_[static_cast<std::size_t>(i)].genes =
        initial[static_cast<std::size_t>(i) % initial.size()];
  }
  auto evaluate_member = [this](std::size_t i) {
    Individual& ind = population_[i];
    ind.fitness = eval_.evaluate_with_metrics(ind.genes, ind.metrics);
    ind.evaluated = true;
  };
  if (Executor* pool = eval_.executor()) {
    pool->parallel_for(population_.size(), evaluate_member);
  } else {
    for (std::size_t i = 0; i < population_.size(); ++i) evaluate_member(i);
  }

  best_ever_ = *std::max_element(
      population_.begin(), population_.end(),
      [](const Individual& a, const Individual& b) {
        return a.fitness < b.fitness;
      });

  // Initial KNUX reference: an explicitly supplied heuristic estimate
  // (§3.2), or the best member of the seed population (for seeded runs this
  // is the seed itself).  DKNUX keeps updating it; static KNUX keeps it
  // fixed unless overridden via set_knux_reference().
  if (config_.knux_reference.has_value()) {
    GAPART_REQUIRE(
        is_valid_assignment(g, *config_.knux_reference, config_.num_parts),
        "configured KNUX reference invalid for ", config_.num_parts,
        " parts");
    knux_reference_ = *config_.knux_reference;
  } else {
    knux_reference_ = best_ever_.genes;
  }

  record_stats();
}

void GaEngine::set_knux_reference(Assignment reference) {
  GAPART_REQUIRE(is_valid_assignment(eval_.graph(), reference,
                                     config_.num_parts),
                 "reference invalid for ", config_.num_parts, " parts");
  knux_reference_ = std::move(reference);
}

void GaEngine::inject(const Assignment& migrant) {
  GAPART_REQUIRE(is_valid_assignment(eval_.graph(), migrant,
                                     config_.num_parts),
                 "migrant invalid for ", config_.num_parts, " parts");
  Individual ind;
  ind.genes = migrant;
  ind.fitness = eval_.evaluate_with_metrics(ind.genes, ind.metrics);
  ind.evaluated = true;
  if (ind.fitness > best_ever_.fitness) {
    best_ever_ = ind;
    last_improvement_generation_ = generation_;
  }
  population_[worst_index()] = std::move(ind);
}

std::size_t GaEngine::worst_index() const {
  std::size_t worst = 0;
  for (std::size_t i = 1; i < population_.size(); ++i) {
    if (population_[i].fitness < population_[worst].fitness) worst = i;
  }
  return worst;
}

void GaEngine::finish_child(std::vector<Individual>& batch, std::size_t index,
                            const Rng& stream_base,
                            std::int32_t clone_parent) {
  Individual& ind = batch[index];
  Rng child_rng = stream_base.fork(index);
  const bool climb =
      config_.hill_climb_offspring &&
      child_rng.bernoulli(config_.hill_climb_fraction);
  if (climb) {
    point_mutation(ind.genes, config_.num_parts, config_.mutation_rate,
                   child_rng);
    // One full evaluation (state construction); the climb then maintains the
    // fitness incrementally, so no second from-scratch evaluation is needed.
    PartitionState state = eval_.make_state(std::move(ind.genes));
    HillClimbOptions hc;  // fitness params come from eval_, not hc.fitness
    hc.max_passes = config_.hill_climb_passes;
    hill_climb(eval_, state, hc);
    ind.fitness = eval_.adopt(state);
    ind.metrics = state.metrics();
    ind.genes = std::move(state).release_assignment();
  } else if (config_.delta_eval_clones && clone_parent >= 0) {
    // Cloned child: inherit the parent's O(k) metric breakdown and apply
    // the mutation flips as move deltas — no O(V+E) pass at all when the
    // flip count stays under budget.
    const auto n = static_cast<double>(eval_.graph().num_vertices());
    const auto max_flips = static_cast<std::int64_t>(
        config_.delta_eval_max_flip_fraction * n);
    ind.metrics =
        population_[static_cast<std::size_t>(clone_parent)].metrics;
    ind.fitness = eval_.mutate_clone_and_evaluate(
        ind.genes, config_.mutation_rate, child_rng, ind.metrics, max_flips);
  } else {
    ind.fitness = eval_.mutate_and_evaluate(ind.genes, config_.mutation_rate,
                                            child_rng, &ind.metrics);
  }
  ind.evaluated = true;
}

void GaEngine::step() {
  const Graph& g = eval_.graph();

  CrossoverContext ctx;
  ctx.graph = &g;
  ctx.reference = &knux_reference_;
  ctx.k_points = config_.k_points;
  ctx.knux_complementary = config_.knux_complementary;

  const Selector selector(population_, config_.selection,
                          config_.tournament_size);

  std::vector<Individual> next;
  next.reserve(static_cast<std::size_t>(config_.population_size));

  // Elitism: carry over the elite_count best individuals unchanged (their
  // cached fitness rides along; elites are never re-evaluated).
  if (config_.elite_count > 0) {
    std::vector<std::size_t> order(population_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::partial_sort(order.begin(),
                      order.begin() + config_.elite_count, order.end(),
                      [this](std::size_t a, std::size_t b) {
                        return population_[a].fitness > population_[b].fitness;
                      });
    for (int e = 0; e < config_.elite_count; ++e) {
      next.push_back(population_[order[static_cast<std::size_t>(e)]]);
    }
  }

  // Generate phase (serial): fill the offspring batch by selection and
  // crossover.  All engine-RNG consumption happens here, in a fixed order.
  const std::size_t batch_size =
      static_cast<std::size_t>(config_.population_size) - next.size();
  std::vector<Individual> batch(batch_size);
  // Which population member each child is a verbatim copy of (-1 after
  // crossover): clones can be delta-evaluated against the parent's cached
  // metrics in the evaluate phase.
  std::vector<std::int32_t> clone_parent(batch_size, -1);
  std::size_t produced = 0;
  Assignment child1;
  Assignment child2;
  while (produced < batch_size) {
    const std::size_t ia = selector.draw(rng_);
    const std::size_t ib = selector.draw(rng_);
    const Individual& pa = population_[ia];
    const Individual& pb = population_[ib];

    std::int32_t src1 = -1;
    std::int32_t src2 = -1;
    if (rng_.bernoulli(config_.crossover_rate)) {
      if (config_.crossover == CrossoverOp::kCombine) {
        config_.combine(pa.genes, pb.genes, rng_, child1, child2);
      } else {
        apply_crossover(config_.crossover, ctx, pa.genes, pb.genes, rng_,
                        child1, child2);
      }
    } else {
      child1 = pa.genes;
      child2 = pb.genes;
      src1 = static_cast<std::int32_t>(ia);
      src2 = static_cast<std::int32_t>(ib);
    }

    clone_parent[produced] = src1;
    batch[produced++].genes = std::move(child1);
    if (produced < batch_size) {
      clone_parent[produced] = src2;
      batch[produced++].genes = std::move(child2);
    }
  }

  // Evaluate phase: mutate + (optional) hill-climb + evaluate every child,
  // each on its own RNG stream forked by batch index, batched on the pool
  // when one is available.  Children are independent, so the outcome is
  // bit-identical at any thread count.
  const Rng stream_base = rng_.split();
  if (Executor* pool = eval_.executor()) {
    pool->parallel_for(batch.size(), [&](std::size_t i) {
      finish_child(batch, i, stream_base, clone_parent[i]);
    });
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      finish_child(batch, i, stream_base, clone_parent[i]);
    }
  }

  for (auto& ind : batch) next.push_back(std::move(ind));

  population_ = std::move(next);
  ++generation_;

  for (const auto& ind : population_) {
    if (ind.fitness > best_ever_.fitness) {
      best_ever_ = ind;
      last_improvement_generation_ = generation_;
    }
  }

  // DKNUX: the reference tracks the best solution in the search history.
  if (config_.crossover == CrossoverOp::kDknux) {
    knux_reference_ = best_ever_.genes;
  }

  record_stats();
}

void GaEngine::record_stats() {
  GenerationStats s;
  s.generation = generation_;
  s.best_fitness = best_ever_.fitness;
  double sum = 0.0;
  for (const auto& ind : population_) sum += ind.fitness;
  s.mean_fitness = sum / static_cast<double>(population_.size());
  // The cached breakdown rides along with best_ever_, so the per-generation
  // stats no longer cost an O(V+E) compute_metrics pass.
  s.best_total_cut = best_ever_.metrics.total_cut();
  s.best_max_part_cut = best_ever_.metrics.max_part_cut;
  history_.push_back(s);
}

bool GaEngine::stalled() const {
  return config_.stall_generations > 0 &&
         generation_ - last_improvement_generation_ >=
             config_.stall_generations;
}

GaResult GaEngine::result() const {
  GaResult r;
  r.best = best_ever_.genes;
  r.best_fitness = best_ever_.fitness;
  r.best_metrics = best_ever_.metrics;
  r.history = history_;
  r.generations = generation_;
  r.evaluations = eval_.total_evaluations();
  r.full_evaluations = eval_.full_evaluations();
  r.delta_evaluations = eval_.delta_evaluations();
  r.stalled = stalled();
  return r;
}

GaResult run_ga(const Graph& g, const GaConfig& config,
                std::vector<Assignment> initial, Rng rng,
                Executor* executor) {
  GaEngine engine(g, config, std::move(initial), rng, executor);
  while (engine.generation() < config.max_generations && !engine.stalled()) {
    engine.step();
  }
  return engine.result();
}

}  // namespace gapart
