#include "core/selection.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"

namespace gapart {

const char* selection_name(SelectionScheme s) {
  switch (s) {
    case SelectionScheme::kTournament:
      return "tournament";
    case SelectionScheme::kRoulette:
      return "roulette";
    case SelectionScheme::kRank:
      return "rank";
  }
  return "unknown";
}

SelectionScheme parse_selection(const std::string& name) {
  if (name == "tournament") return SelectionScheme::kTournament;
  if (name == "roulette") return SelectionScheme::kRoulette;
  if (name == "rank") return SelectionScheme::kRank;
  throw Error("unknown selection scheme '" + name +
              "' (expected tournament|roulette|rank)");
}

Selector::Selector(const std::vector<Individual>& population,
                   SelectionScheme scheme, int tournament_size)
    : population_(&population),
      scheme_(scheme),
      tournament_size_(tournament_size) {
  GAPART_REQUIRE(!population.empty(), "cannot select from empty population");
  GAPART_REQUIRE(tournament_size >= 1, "tournament size must be >= 1");
  for (const auto& ind : population) {
    GAPART_ASSERT(ind.evaluated, "selection over unevaluated individual");
  }

  if (scheme_ == SelectionScheme::kRoulette) {
    // Fitness values are <= 0; shift so the worst individual still gets a
    // small positive slice (10% of the mean shifted weight) and better
    // individuals proportionally more.
    double min_fit = population.front().fitness;
    for (const auto& ind : population) min_fit = std::min(min_fit, ind.fitness);
    double sum_shifted = 0.0;
    for (const auto& ind : population) sum_shifted += ind.fitness - min_fit;
    const double floor_weight =
        sum_shifted > 0.0
            ? 0.1 * sum_shifted / static_cast<double>(population.size())
            : 1.0;
    cumulative_.reserve(population.size());
    double acc = 0.0;
    for (const auto& ind : population) {
      acc += (ind.fitness - min_fit) + floor_weight;
      cumulative_.push_back(acc);
    }
  } else if (scheme_ == SelectionScheme::kRank) {
    ranked_.resize(population.size());
    std::iota(ranked_.begin(), ranked_.end(), 0);
    std::sort(ranked_.begin(), ranked_.end(),
              [&population](std::size_t a, std::size_t b) {
                return population[a].fitness > population[b].fitness;
              });
    // Linear ranking with selection pressure 2.0: weight of rank r (0 =
    // best) is proportional to (N - r).
    cumulative_.reserve(population.size());
    double acc = 0.0;
    for (std::size_t r = 0; r < population.size(); ++r) {
      acc += static_cast<double>(population.size() - r);
      cumulative_.push_back(acc);
    }
  }
}

std::size_t Selector::draw(Rng& rng) const {
  const auto& pop = *population_;
  switch (scheme_) {
    case SelectionScheme::kTournament: {
      std::size_t best =
          static_cast<std::size_t>(rng.uniform_int(static_cast<int>(pop.size())));
      for (int t = 1; t < tournament_size_; ++t) {
        const auto challenger = static_cast<std::size_t>(
            rng.uniform_int(static_cast<int>(pop.size())));
        if (pop[challenger].fitness > pop[best].fitness) best = challenger;
      }
      return best;
    }
    case SelectionScheme::kRoulette: {
      const double x = rng.uniform(0.0, cumulative_.back());
      const auto it =
          std::upper_bound(cumulative_.begin(), cumulative_.end(), x);
      return static_cast<std::size_t>(
          std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                                   static_cast<std::ptrdiff_t>(pop.size()) - 1));
    }
    case SelectionScheme::kRank: {
      const double x = rng.uniform(0.0, cumulative_.back());
      const auto it =
          std::upper_bound(cumulative_.begin(), cumulative_.end(), x);
      const auto rank = static_cast<std::size_t>(
          std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                                   static_cast<std::ptrdiff_t>(pop.size()) - 1));
      return ranked_[rank];
    }
  }
  GAPART_ASSERT(false, "unhandled selection scheme");
  return 0;
}

}  // namespace gapart
