// GA individual: the paper's vector chromosome plus cached fitness.
#pragma once

#include "graph/types.hpp"

namespace gapart {

/// One candidate solution.  genes[v] = part of vertex v (the paper's §3.1
/// representation).  fitness is valid only when `evaluated` is set; the
/// engine maintains the invariant that every individual in a living
/// population is evaluated.
struct Individual {
  Assignment genes;
  double fitness = 0.0;
  bool evaluated = false;
};

}  // namespace gapart
