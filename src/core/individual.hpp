// GA individual: the paper's vector chromosome plus cached fitness.
#pragma once

#include "graph/partition.hpp"
#include "graph/types.hpp"

namespace gapart {

/// One candidate solution.  genes[v] = part of vertex v (the paper's §3.1
/// representation).  fitness and metrics are valid only when `evaluated` is
/// set; the engine maintains the invariant that every individual in a living
/// population is evaluated.  The cached per-part breakdown (O(k) doubles) is
/// what lets a cloned child inherit its parent's metrics and be re-evaluated
/// by mutation deltas instead of a full O(V+E) pass.
struct Individual {
  Assignment genes;
  double fitness = 0.0;
  PartitionMetrics metrics;
  bool evaluated = false;
};

}  // namespace gapart
