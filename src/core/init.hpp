// Population initialization strategies (paper §3.5).
//
// Random initialization deals shuffled vertices round-robin so the starting
// population is balanced (the quadratic imbalance term dominates otherwise).
// Seeded initialization plants a heuristic solution — IBP, RSB, or, in the
// incremental case, the previous partition extended to the new vertices —
// and fills the rest of the population with balance-preserving perturbations
// of it.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gapart {

/// Uniform random part per vertex (unbalanced; kept for ablation).
Assignment random_uniform_assignment(VertexId num_vertices, PartId num_parts,
                                     Rng& rng);

/// Shuffle vertices, deal round-robin: all part sizes within one vertex.
Assignment random_balanced_assignment(VertexId num_vertices, PartId num_parts,
                                      Rng& rng);

/// Extends `previous` (assignment of the first |previous| vertices of
/// `grown`) to the full graph: old vertices keep their part; new vertices
/// are dealt randomly to the currently lightest parts, maintaining balance
/// (paper §3.5, incremental case).
Assignment incremental_seed_assignment(const Graph& grown,
                                       const Assignment& previous,
                                       PartId num_parts, Rng& rng);

/// size chromosomes: shuffled-deal random balanced assignments.
std::vector<Assignment> make_random_population(VertexId num_vertices,
                                               PartId num_parts, int size,
                                               Rng& rng);

/// size chromosomes: the seed itself plus size-1 swap-perturbed clones
/// (each clone gets ceil(swap_fraction * |V|) balance-preserving swaps).
std::vector<Assignment> make_seeded_population(const Assignment& seed,
                                               int size, double swap_fraction,
                                               Rng& rng);

/// size chromosomes for the incremental problem: each is an independent
/// balanced extension of `previous`, then swap-perturbed (the first one is
/// left unperturbed).
std::vector<Assignment> make_incremental_population(
    const Graph& grown, const Assignment& previous, PartId num_parts,
    int size, double swap_fraction, Rng& rng);

/// size chromosomes from SEVERAL heuristic seeds (e.g. IBP + RSB + RCB):
/// every seed appears once verbatim, the rest of the population cycles
/// through swap-perturbed clones of the seeds.  Generalizes §3.5's "seeded
/// with a pre-estimated heuristic solution" to a portfolio of heuristics.
std::vector<Assignment> make_mixed_population(
    const std::vector<Assignment>& seeds, int size, double swap_fraction,
    Rng& rng);

}  // namespace gapart
