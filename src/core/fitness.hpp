// Fitness evaluation bridge between the GA and the partition metrics.
#pragma once

#include "graph/partition.hpp"
#include "graph/types.hpp"

namespace gapart {

/// Evaluates chromosomes against one graph / part count / objective.
/// Copyable view (does not own the graph).
class FitnessFunction {
 public:
  FitnessFunction(const Graph& g, PartId num_parts, FitnessParams params)
      : g_(&g), num_parts_(num_parts), params_(params) {}

  const Graph& graph() const { return *g_; }
  PartId num_parts() const { return num_parts_; }
  const FitnessParams& params() const { return params_; }

  /// O(V + E).  Higher is better (the paper maximizes fitness).
  double operator()(const Assignment& genes) const {
    return evaluate_fitness(*g_, genes, num_parts_, params_);
  }

  PartitionMetrics metrics(const Assignment& genes) const {
    return compute_metrics(*g_, genes, num_parts_);
  }

 private:
  const Graph* g_;
  PartId num_parts_;
  FitnessParams params_;
};

}  // namespace gapart
