// Mutation operators.
//
// point_mutation is the paper's operator (per-gene rate p_m = 0.01):
// a mutated gene is reassigned to a uniformly random *different* part, so
// the configured rate is the effective rate.  boundary_mutation is a
// locality-aware extension (ablated in the benches): it only relocates
// boundary vertices, and only into parts they already touch.
#pragma once

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gapart {

/// Each gene flips with probability `rate` to a random other part.
/// Returns the number of genes changed.  num_parts == 1 is a no-op.
int point_mutation(Assignment& genes, PartId num_parts, double rate, Rng& rng);

/// Each *boundary* gene flips with probability `rate` into a random
/// neighbouring part.  Returns the number of genes changed.
int boundary_mutation(Assignment& genes, const Graph& g, PartId num_parts,
                      double rate, Rng& rng);

/// Swaps the parts of `num_swaps` random vertex pairs drawn from different
/// parts, preserving all part sizes exactly.  Used to diversify seeded
/// populations (§3.5) without destroying their balance.
void perturb_by_swaps(Assignment& genes, int num_swaps, Rng& rng);

}  // namespace gapart
