#include "core/hill_climb.hpp"

#include "common/assert.hpp"

namespace gapart {

namespace {

HillClimbResult climb_impl(PartitionState& state, const FitnessParams& params,
                           const HillClimbOptions& options,
                           const EvalContext* eval) {
  GAPART_REQUIRE(options.max_passes >= 1, "need at least one pass");
  HillClimbResult result;
  const Graph& g = state.graph();

  for (int pass = 0; pass < options.max_passes; ++pass) {
    ++result.passes;
    int moves_this_pass = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (!state.is_boundary(v)) continue;
      // Best neighbouring part for v under the objective.
      PartId best_to = -1;
      double best_gain = options.min_gain;
      for (PartId to : state.neighbor_parts(v)) {
        const double gain = state.move_gain(v, to, params);
        if (gain > best_gain) {
          best_gain = gain;
          best_to = to;
        }
      }
      if (best_to >= 0) {
        state.move(v, best_to);
        ++moves_this_pass;
        result.fitness_gain += best_gain;
      }
    }
    result.moves += moves_this_pass;
    if (moves_this_pass == 0) break;  // local optimum reached
  }
  if (eval != nullptr) eval->count_delta(result.moves);
  return result;
}

}  // namespace

HillClimbResult hill_climb(PartitionState& state,
                           const HillClimbOptions& options) {
  return climb_impl(state, options.fitness, options, nullptr);
}

HillClimbResult hill_climb(const Graph& g, Assignment& genes, PartId num_parts,
                           const HillClimbOptions& options) {
  PartitionState state(g, std::move(genes), num_parts);
  const HillClimbResult result = hill_climb(state, options);
  genes = std::move(state).release_assignment();
  return result;
}

HillClimbResult hill_climb(const EvalContext& eval, PartitionState& state,
                           const HillClimbOptions& options) {
  return climb_impl(state, eval.params(), options, &eval);
}

}  // namespace gapart
