#include "core/hill_climb.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/assert.hpp"
#include "common/executor.hpp"

namespace gapart {

namespace {

bool cancelled(const HillClimbOptions& options) {
  return options.cancel != nullptr &&
         options.cancel->load(std::memory_order_relaxed);
}

/// Preconditions shared by every overload.  Factored out so the chromosome
/// overload can check them *before* moving the caller's genes into a
/// PartitionState (strong guarantee).
void validate_options(const Graph& g, const HillClimbOptions& options) {
  GAPART_REQUIRE(options.max_passes >= 1, "need at least one pass");
  if (options.mode != HillClimbMode::kSweep) {
    GAPART_REQUIRE(options.min_gain > 0.0,
                   "frontier mode needs min_gain > 0 to terminate, got ",
                   options.min_gain);
    // filter_boundary re-checks seed ranges, but that happens after the
    // chromosome overload has moved the caller's genes into a
    // PartitionState — the strong guarantee needs the check up front.
    for (const VertexId v : options.seed_vertices) {
      GAPART_REQUIRE(v >= 0 && v < g.num_vertices(), "seed vertex ", v,
                     " out of range for |V| = ", g.num_vertices());
    }
  }
}

/// Paper-faithful sweep: ascending vertex scan per pass.  The boundary test
/// is an O(1) flag and best_move() is the single-scan gain kernel, but the
/// decisions (move order, destinations, gains) are identical to probing
/// every neighbouring part with move_gain().
HillClimbResult climb_sweep(PartitionState& state, const FitnessParams& params,
                            const HillClimbOptions& options) {
  HillClimbResult result;
  const Graph& g = state.graph();

  for (int pass = 0; pass < options.max_passes; ++pass) {
    if (cancelled(options)) break;
    ++result.passes;
    int moves_this_pass = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (!state.is_boundary(v)) continue;
      ++result.examined;
      const BestMove best = state.best_move(v, params, options.min_gain);
      if (best.to >= 0) {
        state.move(v, best.to);
        ++moves_this_pass;
        result.fitness_gain += best.gain;
      }
    }
    result.moves += moves_this_pass;
    if (moves_this_pass == 0) break;  // local optimum reached
  }
  return result;
}

/// Frontier worklist: after a pass over the initial worklist — the full
/// boundary, or options.seed_vertices filtered to it — follow-up passes
/// examine only vertices enqueued when a move changed their neighbourhood.
/// Each pass processes its worklist ascending, so runs are deterministic.
/// Because the composite objective couples distant vertices through the
/// part weights (and, under kWorstComm, the max-cut term), a drained
/// worklist does not by itself prove optimality: whenever it drains after
/// productive passes (or after any seeded cascade), one full-boundary
/// verification round re-seeds it, and the climb only stops once a full
/// round finds nothing — the same fixed-point class as sweep, without ever
/// scanning interior vertices.  verify_fixed_point=false skips those rounds
/// and stops at the drained worklist.
///
/// max_passes budgets *full-boundary rounds* (the analogue of one sweep
/// pass); the worklist cascade between rounds — and the whole seeded cascade
/// — is not charged against it and terminates on its own because every
/// accepted move improves fitness by more than min_gain > 0.
HillClimbResult climb_frontier(PartitionState& state,
                               const FitnessParams& params,
                               const HillClimbOptions& options) {
  HillClimbResult result;
  const Graph& g = state.graph();
  const bool seeded = !options.seed_vertices.empty();

  // Worklist-membership flags: the state's epoch-stamped scratch, so a
  // seeded cascade touching d vertices costs O(d) — no O(V) allocation or
  // memset per climb.
  EpochFlags& queued = state.visit_scratch();
  std::vector<VertexId> current = seeded
                                      ? state.filter_boundary(options.seed_vertices)
                                      : state.boundary_vertices();
  for (const VertexId v : current) queued.set(v);
  // gain_ordered: two next-buckets — "hot" holds vertices whose
  // neighbourhood a move just disturbed (where new positive gains appear),
  // "cold" holds the movers themselves (their best move was just taken) —
  // and a pass processes hot before cold.  Otherwise both lambdas feed the
  // single hot list.
  std::vector<VertexId> next_hot;
  std::vector<VertexId> next_cold;

  const auto enqueue_into = [&](VertexId u, std::vector<VertexId>& bucket) {
    if (!queued.test(u) && state.is_boundary(u)) {
      queued.set(u);
      bucket.push_back(u);
    }
  };
  const auto enqueue_disturbed = [&](VertexId u) {
    enqueue_into(u, next_hot);
  };
  const auto enqueue_mover = [&](VertexId u) {
    enqueue_into(u, options.gain_ordered ? next_cold : next_hot);
  };

  bool full_pass = !seeded;  // current covers the entire boundary
  int full_rounds = seeded ? 0 : 1;  // an unseeded seed pass is round 1
  bool moved_since_full_pass = false;
  while (!cancelled(options)) {
    int moves_this_pass = 0;
    if (!current.empty()) {
      ++result.passes;
      for (const VertexId v : current) {
        queued.reset(v);
        if (!state.is_boundary(v)) continue;
        ++result.examined;
        const BestMove best = state.best_move(v, params, options.min_gain);
        if (best.to < 0) continue;
        state.move(v, best.to);
        ++moves_this_pass;
        result.fitness_gain += best.gain;
        enqueue_mover(v);
        for (const VertexId u : g.neighbors(v)) enqueue_disturbed(u);
      }
      result.moves += moves_this_pass;
    }
    if (full_pass && moves_this_pass == 0) break;  // verified fixed point
    moved_since_full_pass |= moves_this_pass > 0;

    if (!next_hot.empty() || !next_cold.empty()) {
      std::sort(next_hot.begin(), next_hot.end());
      current.swap(next_hot);
      next_hot.clear();
      if (!next_cold.empty()) {
        std::sort(next_cold.begin(), next_cold.end());
        current.insert(current.end(), next_cold.begin(), next_cold.end());
        next_cold.clear();
      }
      full_pass = false;
    } else if (options.verify_fixed_point &&
               (moved_since_full_pass || full_rounds == 0) &&
               full_rounds < options.max_passes) {
      // Drained.  A seeded climb always owes one verification round
      // (full_rounds == 0); otherwise one is owed only after productive
      // passes since the last full round.
      current = state.boundary_vertices();
      for (const VertexId v : current) queued.set(v);
      full_pass = true;
      ++full_rounds;
      ++result.verify_rounds;
      moved_since_full_pass = false;
    } else {
      break;
    }
  }
  return result;
}

/// Per-thread connectivity scratch for parallel scoring.  Pool workers are
/// persistent (Executor spawns them once), so thread_local reuse across
/// rounds and climbs is allocation-free after warmup; resized when the part
/// count differs.  Safe because one thread scores one claimed range at a
/// time — the executor never interleaves another task mid-range.
ConnectivityScratch& thread_scratch(std::size_t num_parts) {
  static thread_local ConnectivityScratch scratch;
  if (scratch.size() != num_parts) scratch.resize(num_parts);
  return scratch;
}

/// Parallel frontier climb: kFrontier's worklist processed in batch rounds.
/// Each round
///   1. scores every worklist vertex in parallel against the FROZEN state
///      (best_move_with into per-thread scratches; the state is only read),
///   2. serially applies the non-conflicting subset in ascending worklist
///      order via apply_candidate_batch — closed-neighbourhood conflicts are
///      deferred to the next round, part-coupled gains re-validated with the
///      serial kernel (the batch-seam re-validation), so every applied move
///      improves fitness by more than min_gain and the climb stays monotone,
///   3. rebuilds the worklist from the movers, their neighbours, and the
///      deferrals — the same membership rule as kFrontier.
/// A round's scored array is indexed by worklist position, so the outcome is
/// independent of thread count and scheduling (for any threads >= 2; one
/// thread delegates to climb_frontier and is bit-identical to serial).  The
/// full-boundary verification-round discipline is kFrontier's, so the
/// fixed-point class is preserved.  Termination: a deferral requires an
/// earlier applied move in the same round, so a round either applies a move
/// (bounded by monotone fitness and min_gain > 0) or drains the worklist.
HillClimbResult climb_parallel_frontier(PartitionState& state,
                                        const FitnessParams& params,
                                        const HillClimbOptions& options) {
  if (options.executor == nullptr || options.executor->num_threads() <= 1) {
    return climb_frontier(state, params, options);
  }
  Executor& pool = *options.executor;
  HillClimbResult result;
  const Graph& g = state.graph();
  const bool seeded = !options.seed_vertices.empty();
  const auto k = static_cast<std::size_t>(state.num_parts());

  EpochFlags& queued = state.visit_scratch();
  // Both sources are already ascending (sorted copies), so round 1's apply
  // order matches the serial frontier's first pass.
  std::vector<VertexId> current =
      seeded ? state.filter_boundary(options.seed_vertices)
             : state.boundary_vertices();
  for (const VertexId v : current) queued.set(v);

  std::vector<CandidateMove> scored;
  std::vector<CandidateMove> applied;
  std::vector<VertexId> deferred;
  std::vector<VertexId> next;

  bool full_pass = !seeded;  // current covers the entire boundary
  int full_rounds = seeded ? 0 : 1;  // an unseeded seed pass is round 1
  bool moved_since_full_pass = false;
  while (!cancelled(options)) {
    int moves_this_pass = 0;
    if (!current.empty()) {
      ++result.passes;
      ++result.batch_rounds;
      result.batch_candidates += static_cast<std::int64_t>(current.size());

      // Clean the lazy max-cut cache before fanning out: under kWorstComm
      // the scorers read it through fitness(), and a dirty cache would make
      // that read a write (racy).  No moves happen between here and apply.
      state.max_part_cut();
      scored.assign(current.size(), CandidateMove{});
      pool.parallel_for(
          current.size(), options.parallel_grain,
          [&](std::size_t begin, std::size_t end) {
            ConnectivityScratch& scratch = thread_scratch(k);
            for (std::size_t i = begin; i < end; ++i) {
              const VertexId v = current[i];
              if (!state.is_boundary(v)) continue;  // leave scored[i].v = -1
              const BestMove best =
                  state.best_move_with(scratch, v, params, options.min_gain);
              scored[i] = CandidateMove{v, best.to, best.gain};
            }
          });
      for (const CandidateMove& c : scored) result.examined += c.v >= 0;

      for (const VertexId v : current) queued.reset(v);
      applied.clear();
      deferred.clear();
      const BatchApplyStats stats = state.apply_candidate_batch(
          scored, params, options.min_gain, &applied, &deferred);
      moves_this_pass = stats.applied;
      result.moves += stats.applied;
      result.fitness_gain += stats.fitness_gain;
      result.batch_deferred += stats.deferred;
      result.batch_revalidated += stats.revalidated;
      result.examined += stats.revalidated;  // each is one more kernel probe

      // Next worklist: movers, their disturbed neighbours, and this round's
      // deferrals (a deferral need not be adjacent to any mover — two
      // candidates can clash through a shared neighbour — so it must be
      // re-enqueued explicitly).  Deduplicated via the queued flags,
      // ascending for a deterministic apply order next round.
      const auto enqueue = [&](VertexId u) {
        if (!queued.test(u) && state.is_boundary(u)) {
          queued.set(u);
          next.push_back(u);
        }
      };
      for (const CandidateMove& m : applied) {
        enqueue(m.v);
        for (const VertexId u : g.neighbors(m.v)) enqueue(u);
      }
      for (const VertexId v : deferred) enqueue(v);
    }
    if (full_pass && moves_this_pass == 0) break;  // verified fixed point
    moved_since_full_pass |= moves_this_pass > 0;

    if (!next.empty()) {
      std::sort(next.begin(), next.end());
      current.swap(next);
      next.clear();
      full_pass = false;
    } else if (options.verify_fixed_point &&
               (moved_since_full_pass || full_rounds == 0) &&
               full_rounds < options.max_passes) {
      // Drained: same verification-round rule as climb_frontier.
      current = state.boundary_vertices();
      for (const VertexId v : current) queued.set(v);
      full_pass = true;
      ++full_rounds;
      ++result.verify_rounds;
      moved_since_full_pass = false;
    } else {
      break;
    }
  }
  return result;
}

HillClimbResult climb_impl(PartitionState& state, const FitnessParams& params,
                           const HillClimbOptions& options,
                           const EvalContext* eval) {
  validate_options(state.graph(), options);
  HillClimbResult result;
  switch (options.mode) {
    case HillClimbMode::kSweep:
      result = climb_sweep(state, params, options);
      break;
    case HillClimbMode::kFrontier:
      result = climb_frontier(state, params, options);
      break;
    case HillClimbMode::kParallelFrontier:
      result = climb_parallel_frontier(state, params, options);
      break;
  }
  if (eval != nullptr) eval->count_delta(result.moves);
  return result;
}

HillClimbOptions with_seeds(const HillClimbOptions& options,
                            std::span<const VertexId> seeds) {
  HillClimbOptions seeded = options;
  seeded.mode = HillClimbMode::kFrontier;
  seeded.seed_vertices.assign(seeds.begin(), seeds.end());
  return seeded;
}

/// Zero seeds = zero damage: without verification rounds there is nothing to
/// do, and falling through would run a full-boundary frontier climb — the
/// maximum cost for the minimum damage.  Preconditions are still enforced,
/// so a misconfigured caller fails the same way whatever its damage set.
bool seeded_noop(const Graph& g, std::span<const VertexId> seeds,
                 const HillClimbOptions& seeded_options) {
  if (!seeds.empty() || seeded_options.verify_fixed_point) return false;
  validate_options(g, seeded_options);
  return true;
}

}  // namespace

HillClimbResult hill_climb(PartitionState& state,
                           const HillClimbOptions& options) {
  return climb_impl(state, options.fitness, options, nullptr);
}

HillClimbResult hill_climb(const Graph& g, Assignment& genes, PartId num_parts,
                           const HillClimbOptions& options) {
  // Every precondition — the state's own and the climber's — is checked
  // before `genes` is moved, so a throw leaves the caller's assignment
  // intact rather than moved-from.
  GAPART_REQUIRE(num_parts >= 1, "need at least one part");
  GAPART_REQUIRE(is_valid_assignment(g, genes, num_parts),
                 "invalid assignment for ", num_parts, " parts");
  validate_options(g, options);
  PartitionState state(g, std::move(genes), num_parts);
  const HillClimbResult result = hill_climb(state, options);
  genes = std::move(state).release_assignment();
  return result;
}

HillClimbResult hill_climb(const EvalContext& eval, PartitionState& state,
                           const HillClimbOptions& options) {
  return climb_impl(state, eval.params(), options, &eval);
}

HillClimbResult hill_climb_from(PartitionState& state,
                                std::span<const VertexId> seeds,
                                const HillClimbOptions& options) {
  const HillClimbOptions seeded = with_seeds(options, seeds);
  if (seeded_noop(state.graph(), seeds, seeded)) return {};
  return hill_climb(state, seeded);
}

HillClimbResult hill_climb_from(const EvalContext& eval, PartitionState& state,
                                std::span<const VertexId> seeds,
                                const HillClimbOptions& options) {
  const HillClimbOptions seeded = with_seeds(options, seeds);
  if (seeded_noop(state.graph(), seeds, seeded)) return {};
  return hill_climb(eval, state, seeded);
}

}  // namespace gapart
