#include "core/hill_climb.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"

namespace gapart {

namespace {

/// Paper-faithful sweep: ascending vertex scan per pass.  The boundary test
/// is an O(1) flag and best_move() is the single-scan gain kernel, but the
/// decisions (move order, destinations, gains) are identical to probing
/// every neighbouring part with move_gain().
HillClimbResult climb_sweep(PartitionState& state, const FitnessParams& params,
                            const HillClimbOptions& options) {
  HillClimbResult result;
  const Graph& g = state.graph();

  for (int pass = 0; pass < options.max_passes; ++pass) {
    ++result.passes;
    int moves_this_pass = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (!state.is_boundary(v)) continue;
      const BestMove best = state.best_move(v, params, options.min_gain);
      if (best.to >= 0) {
        state.move(v, best.to);
        ++moves_this_pass;
        result.fitness_gain += best.gain;
      }
    }
    result.moves += moves_this_pass;
    if (moves_this_pass == 0) break;  // local optimum reached
  }
  return result;
}

/// Frontier worklist: after a pass over the seed boundary, follow-up passes
/// examine only vertices enqueued when a move changed their neighbourhood.
/// Each pass processes its worklist ascending, so runs are deterministic.
/// Because the composite objective couples distant vertices through the
/// part weights (and, under kWorstComm, the max-cut term), a drained
/// worklist does not by itself prove optimality: whenever it drains after
/// productive passes, one full-boundary verification pass re-seeds it, and
/// the climb only stops once a full pass finds nothing — the same
/// fixed-point class as sweep, without ever scanning interior vertices.
///
/// max_passes budgets *full-boundary rounds* (the analogue of one sweep
/// pass); the worklist cascade between rounds is not charged against it and
/// terminates on its own because every accepted move improves fitness by
/// more than min_gain > 0.
HillClimbResult climb_frontier(PartitionState& state,
                               const FitnessParams& params,
                               const HillClimbOptions& options) {
  GAPART_REQUIRE(options.min_gain > 0.0,
                 "frontier mode needs min_gain > 0 to terminate, got ",
                 options.min_gain);
  HillClimbResult result;
  const Graph& g = state.graph();

  std::vector<char> queued(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<VertexId> current = state.boundary_vertices();
  for (const VertexId v : current) queued[static_cast<std::size_t>(v)] = 1;
  std::vector<VertexId> next;

  const auto enqueue = [&](VertexId u) {
    if (!queued[static_cast<std::size_t>(u)] && state.is_boundary(u)) {
      queued[static_cast<std::size_t>(u)] = 1;
      next.push_back(u);
    }
  };

  bool full_pass = true;  // current covers the entire boundary
  int full_rounds = 1;    // the seed pass is round 1
  bool moved_since_full_pass = false;
  while (!current.empty()) {
    ++result.passes;
    int moves_this_pass = 0;
    for (const VertexId v : current) {
      queued[static_cast<std::size_t>(v)] = 0;
      if (!state.is_boundary(v)) continue;
      const BestMove best = state.best_move(v, params, options.min_gain);
      if (best.to < 0) continue;
      state.move(v, best.to);
      ++moves_this_pass;
      result.fitness_gain += best.gain;
      enqueue(v);
      for (const VertexId u : g.neighbors(v)) enqueue(u);
    }
    result.moves += moves_this_pass;
    if (full_pass && moves_this_pass == 0) break;  // verified fixed point
    moved_since_full_pass |= moves_this_pass > 0;

    if (!next.empty()) {
      std::sort(next.begin(), next.end());
      current.swap(next);
      next.clear();
      full_pass = false;
    } else if (moved_since_full_pass && full_rounds < options.max_passes) {
      current = state.boundary_vertices();
      for (const VertexId v : current) queued[static_cast<std::size_t>(v)] = 1;
      full_pass = true;
      ++full_rounds;
      moved_since_full_pass = false;
    } else {
      break;
    }
  }
  return result;
}

HillClimbResult climb_impl(PartitionState& state, const FitnessParams& params,
                           const HillClimbOptions& options,
                           const EvalContext* eval) {
  GAPART_REQUIRE(options.max_passes >= 1, "need at least one pass");
  const HillClimbResult result =
      options.mode == HillClimbMode::kFrontier
          ? climb_frontier(state, params, options)
          : climb_sweep(state, params, options);
  if (eval != nullptr) eval->count_delta(result.moves);
  return result;
}

}  // namespace

HillClimbResult hill_climb(PartitionState& state,
                           const HillClimbOptions& options) {
  return climb_impl(state, options.fitness, options, nullptr);
}

HillClimbResult hill_climb(const Graph& g, Assignment& genes, PartId num_parts,
                           const HillClimbOptions& options) {
  PartitionState state(g, std::move(genes), num_parts);
  const HillClimbResult result = hill_climb(state, options);
  genes = std::move(state).release_assignment();
  return result;
}

HillClimbResult hill_climb(const EvalContext& eval, PartitionState& state,
                           const HillClimbOptions& options) {
  return climb_impl(state, eval.params(), options, &eval);
}

}  // namespace gapart
