// Crossover operators for graph-partitioning chromosomes.
//
// Implements the traditional operators the paper compares against (1-point,
// 2-point, k-point, uniform) and its contributions:
//
//   KNUX  (Knowledge-based Non-Uniform Crossover, §3.2): a biased uniform
//   crossover whose per-gene probability of inheriting parent a's allele is
//   derived from a reference partition I and the graph adjacency:
//       #(i, X, I) = |{ j in Gamma(i) : I_j = X_i }|
//       p_i = 0.5                                if both counts are zero
//       p_i = #(i,a,I) / (#(i,a,I) + #(i,b,I))   otherwise
//   Genes on which the parents agree are copied verbatim.
//
//   DKNUX (§3.3): identical mechanics, but the *engine* continually updates
//   the reference I to the best solution found so far, so the bias tracks
//   the history of the genetic search.
#pragma once

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gapart {

enum class CrossoverOp {
  kOnePoint,
  kTwoPoint,
  kKPoint,
  kUniform,
  kKnux,
  kDknux,
  /// Multilevel quotient-graph combine (KaFFPaE-style): not a positional
  /// operator — the engine invokes GaConfig::combine, which overlays the two
  /// parents' cuts, contracts the agreeing regions, re-partitions the small
  /// quotient graph, and projects back (see core/vcycle_ga.hpp).
  kCombine,
};

const char* crossover_name(CrossoverOp op);

/// Parses "1point" / "2point" / "kpoint" / "ux" / "knux" / "dknux".
CrossoverOp parse_crossover(const std::string& name);

/// Everything an operator application may need beyond the parents.
struct CrossoverContext {
  const Graph* graph = nullptr;          ///< required by KNUX/DKNUX
  const Assignment* reference = nullptr; ///< KNUX/DKNUX reference solution I
  int k_points = 4;                      ///< cut count for kKPoint
  /// KNUX sibling policy: false (default) = both children drawn
  /// independently with the same bias — measurably stronger on the paper's
  /// workloads; true = child2 takes the complementary allele (classic
  /// uniform-crossover pairing, kept for the ablation benches).
  bool knux_complementary = false;
};

/// k-point crossover (k=1 and k=2 reproduce the classic operators): cut
/// sites are distinct positions in [1, n); children alternate source parents
/// between cuts.
void k_point_crossover(const Assignment& a, const Assignment& b, int k,
                       Rng& rng, Assignment& child1, Assignment& child2);

/// Uniform crossover (Syswerda): each gene of child1 comes from a or b with
/// probability 1/2; child2 takes the complementary choice.
void uniform_crossover(const Assignment& a, const Assignment& b, Rng& rng,
                       Assignment& child1, Assignment& child2);

/// The paper's KNUX bias probability p_i for inheriting a's allele at gene
/// i.  Exposed separately so tests can pin the formula.
double knux_bias(const Graph& g, const Assignment& reference, VertexId i,
                 PartId a_allele, PartId b_allele);

/// KNUX crossover.  child1 takes parent a's allele with probability p_i;
/// child2 is an independent biased draw by default, or the complementary
/// sibling (uniform-crossover pairing) when `complementary` is set.
void knux_crossover(const Assignment& a, const Assignment& b, const Graph& g,
                    const Assignment& reference, Rng& rng, Assignment& child1,
                    Assignment& child2, bool complementary = false);

/// Dispatches on `op`.  KNUX and DKNUX both use ctx.reference — the operator
/// mechanics are identical; the dynamic update lives in the engine.
void apply_crossover(CrossoverOp op, const CrossoverContext& ctx,
                     const Assignment& a, const Assignment& b, Rng& rng,
                     Assignment& child1, Assignment& child2);

}  // namespace gapart
