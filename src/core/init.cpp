#include "core/init.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.hpp"
#include "core/mutation.hpp"

namespace gapart {

Assignment random_uniform_assignment(VertexId num_vertices, PartId num_parts,
                                     Rng& rng) {
  GAPART_REQUIRE(num_parts >= 1, "need at least one part");
  Assignment a(static_cast<std::size_t>(num_vertices));
  for (auto& gene : a) gene = static_cast<PartId>(rng.uniform_int(num_parts));
  return a;
}

Assignment random_balanced_assignment(VertexId num_vertices, PartId num_parts,
                                      Rng& rng) {
  GAPART_REQUIRE(num_parts >= 1, "need at least one part");
  std::vector<VertexId> order(static_cast<std::size_t>(num_vertices));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  Assignment a(static_cast<std::size_t>(num_vertices));
  for (std::size_t i = 0; i < order.size(); ++i) {
    a[static_cast<std::size_t>(order[i])] =
        static_cast<PartId>(i % static_cast<std::size_t>(num_parts));
  }
  return a;
}

Assignment incremental_seed_assignment(const Graph& grown,
                                       const Assignment& previous,
                                       PartId num_parts, Rng& rng) {
  const VertexId n = grown.num_vertices();
  const auto n_old = static_cast<VertexId>(previous.size());
  GAPART_REQUIRE(n_old <= n, "previous assignment larger than grown graph");
  GAPART_REQUIRE(num_parts >= 1, "need at least one part");
  // Same contract as the greedy baseline: a stale part id would silently
  // index the part-weight array out of range below.
  for (const PartId p : previous) {
    GAPART_REQUIRE(p >= 0 && p < num_parts, "previous assignment part ", p,
                   " out of range for ", num_parts, " parts");
  }

  Assignment out(static_cast<std::size_t>(n));
  std::copy(previous.begin(), previous.end(), out.begin());

  std::vector<double> part_weight(static_cast<std::size_t>(num_parts), 0.0);
  for (VertexId v = 0; v < n_old; ++v) {
    part_weight[static_cast<std::size_t>(previous[static_cast<std::size_t>(v)])] +=
        grown.vertex_weight(v);
  }

  // Deal new vertices in random order, each to a random choice among the
  // currently lightest parts ("randomly assigning new graph nodes ... while
  // ensuring that balance is maintained").
  std::vector<VertexId> fresh;
  for (VertexId v = n_old; v < n; ++v) fresh.push_back(v);
  rng.shuffle(fresh);
  for (VertexId v : fresh) {
    double lightest = part_weight[0];
    for (PartId q = 1; q < num_parts; ++q) {
      lightest = std::min(lightest, part_weight[static_cast<std::size_t>(q)]);
    }
    std::vector<PartId> candidates;
    for (PartId q = 0; q < num_parts; ++q) {
      if (part_weight[static_cast<std::size_t>(q)] <= lightest + 1e-12) {
        candidates.push_back(q);
      }
    }
    const PartId choice = candidates[static_cast<std::size_t>(
        rng.uniform_int(static_cast<int>(candidates.size())))];
    out[static_cast<std::size_t>(v)] = choice;
    part_weight[static_cast<std::size_t>(choice)] += grown.vertex_weight(v);
  }
  return out;
}

std::vector<Assignment> make_random_population(VertexId num_vertices,
                                               PartId num_parts, int size,
                                               Rng& rng) {
  GAPART_REQUIRE(size >= 1, "population size must be >= 1");
  std::vector<Assignment> pop;
  pop.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    pop.push_back(random_balanced_assignment(num_vertices, num_parts, rng));
  }
  return pop;
}

std::vector<Assignment> make_seeded_population(const Assignment& seed,
                                               int size, double swap_fraction,
                                               Rng& rng) {
  GAPART_REQUIRE(size >= 1, "population size must be >= 1");
  GAPART_REQUIRE(swap_fraction >= 0.0, "swap fraction must be >= 0");
  std::vector<Assignment> pop;
  pop.reserve(static_cast<std::size_t>(size));
  pop.push_back(seed);
  const int swaps = static_cast<int>(
      std::ceil(swap_fraction * static_cast<double>(seed.size())));
  for (int i = 1; i < size; ++i) {
    Assignment clone = seed;
    perturb_by_swaps(clone, swaps, rng);
    pop.push_back(std::move(clone));
  }
  return pop;
}

std::vector<Assignment> make_mixed_population(
    const std::vector<Assignment>& seeds, int size, double swap_fraction,
    Rng& rng) {
  GAPART_REQUIRE(!seeds.empty(), "need at least one seed");
  GAPART_REQUIRE(size >= 1, "population size must be >= 1");
  for (const auto& s : seeds) {
    GAPART_REQUIRE(s.size() == seeds.front().size(),
                   "seeds disagree on chromosome length");
  }
  std::vector<Assignment> pop;
  pop.reserve(static_cast<std::size_t>(size));
  const int swaps = static_cast<int>(
      std::ceil(swap_fraction * static_cast<double>(seeds.front().size())));
  for (int i = 0; i < size; ++i) {
    Assignment clone = seeds[static_cast<std::size_t>(i) % seeds.size()];
    // The first pass over the seeds is verbatim; later clones are perturbed.
    if (static_cast<std::size_t>(i) >= seeds.size()) {
      perturb_by_swaps(clone, swaps, rng);
    }
    pop.push_back(std::move(clone));
  }
  return pop;
}

std::vector<Assignment> make_incremental_population(
    const Graph& grown, const Assignment& previous, PartId num_parts,
    int size, double swap_fraction, Rng& rng) {
  GAPART_REQUIRE(size >= 1, "population size must be >= 1");
  std::vector<Assignment> pop;
  pop.reserve(static_cast<std::size_t>(size));
  const int swaps = static_cast<int>(std::ceil(
      swap_fraction * static_cast<double>(grown.num_vertices())));
  for (int i = 0; i < size; ++i) {
    Assignment a =
        incremental_seed_assignment(grown, previous, num_parts, rng);
    if (i > 0) perturb_by_swaps(a, swaps, rng);
    pop.push_back(std::move(a));
  }
  return pop;
}

}  // namespace gapart
