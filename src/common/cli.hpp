// Minimal command-line flag parsing shared by the bench harnesses and
// examples.  Flags use `--name=value` or boolean `--name` form; anything else
// is a positional argument.
//
// All bench binaries additionally honour the GAPART_QUICK environment
// variable (set to any non-empty value) which the harnesses map to reduced
// generation counts, so the full `for b in build/bench/*; do $b; done` sweep
// can be smoke-tested cheaply.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gapart {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

  bool has(const std::string& name) const;

  /// Boolean flag: present without a value, or with value in
  /// {1,true,yes,on} / {0,false,no,off}.
  bool flag(const std::string& name, bool def = false) const;

  std::string str(const std::string& name, const std::string& def) const;
  int integer(const std::string& name, int def) const;
  double real(const std::string& name, double def) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names that were provided but never queried — handy for catching typos.
  std::vector<std::string> unused() const;

 private:
  std::string program_;
  mutable std::map<std::string, std::pair<std::string, bool>> named_;
  std::vector<std::string> positional_;
};

/// True when the GAPART_QUICK environment variable is set non-empty.
bool quick_mode_enabled();

}  // namespace gapart
