// Persistent thread-pool executor shared by every parallel code path in
// gapart (batched offspring evaluation, DPGA island bursts, benches).
//
// Design constraints, in priority order:
//   1. Bit-reproducibility: parallel results must be identical to serial
//      results for the same seed at ANY thread count.  The executor therefore
//      provides order-independent primitives only — parallel_for over
//      independent indices and run_tasks over independent closures — and no
//      work stealing between logically distinct tasks.  Reductions are the
//      caller's job and must be performed serially (all call-sites in gapart
//      do so).
//   2. Deadlock freedom under nesting: the calling thread always participates
//      in the work, so a parallel_for issued from inside a pool task (e.g. a
//      GaEngine stepping inside a DPGA island burst) completes even when every
//      worker is busy.
//   3. Zero per-use thread churn: workers are spawned once and live for the
//      executor's lifetime; a burst of parallel_for calls costs only queue
//      operations, not thread creation (the fork-join-per-burst pattern this
//      replaces spawned a fresh std::thread per island per burst).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gapart {

class Executor {
 public:
  /// `num_threads` is the total parallelism including the calling thread, so
  /// Executor(1) spawns no workers and runs everything inline, and
  /// Executor(4) spawns 3 workers.  Values < 1 are clamped to 1.
  explicit Executor(int num_threads);

  /// Drains the queue and joins all workers.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Total parallelism (workers + the calling thread).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Sensible default for this machine (>= 1).
  static int hardware_threads();

  /// Runs fn(i) for every i in [0, n), distributing index ranges over the
  /// pool; the calling thread participates.  Blocks until all n calls have
  /// completed.  fn must be safe to invoke concurrently for distinct indices
  /// and must not touch shared mutable state without its own synchronization.
  /// The first exception thrown by fn is rethrown on the calling thread after
  /// the loop has drained.  `grain` is the number of consecutive indices a
  /// thread claims at a time (0 = choose automatically).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 0);

  /// Blocked variant: runs fn(begin, end) over disjoint half-open ranges
  /// covering [0, n), each of at most `grain` consecutive indices (0 =
  /// choose automatically).  One std::function dispatch per RANGE instead of
  /// per index, so fine-grained loops (a few hundred nanoseconds per index)
  /// are not dominated by call overhead; the batch-scoring kernel of
  /// parallel refinement runs on this.  Same participation, completion, and
  /// exception contract as the per-index overload.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Runs every closure in `tasks` exactly once (caller participates) and
  /// blocks until all have completed.  Closure i is always item i — there is
  /// no stealing of a started task — so per-task state (e.g. one RNG stream
  /// per DPGA island) lands deterministically regardless of scheduling.
  void run_tasks(const std::vector<std::function<void()>>& tasks);

  /// Fire-and-forget: enqueues `task` for some worker (or a later wait()er)
  /// to execute.  Pair with wait().  Telemetry builds record each submitted
  /// task's queue wait and run time into the `executor.queue_wait_seconds` /
  /// `executor.task_seconds` histograms (parallel_for's internal helper
  /// tasks bypass the instrumentation — they are sub-slices of an already
  /// measured caller, and per-helper clock reads would tax the hot loops).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.  The calling thread
  /// helps drain the queue while waiting.
  void wait();

  /// Tasks currently queued or executing — a monitoring gauge (the service
  /// layer reports it as backlog), racy by nature: the value may be stale
  /// by the time the caller reads it.  Wait-free (a relaxed atomic load),
  /// so high-frequency samplers never contend with task dispatch.
  int pending() const;

 private:
  void worker_loop();
  /// Pops and runs one queued task if available; returns false when idle.
  bool run_one();
  /// Raw enqueue without telemetry wrapping (parallel_for helpers).
  void enqueue(std::function<void()> task);

  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals queue_ non-empty or stop_
  std::condition_variable done_cv_;   ///< signals outstanding_ hit zero
  std::deque<std::function<void()>> queue_;
  /// Queued + currently executing tasks.  Atomic so pending() can read it
  /// without mu_; all writes still happen under mu_ because done_cv_ waiters
  /// check it as their predicate.
  std::atomic<int> outstanding_{0};
  bool stop_ = false;
};

}  // namespace gapart
