// Small statistics helpers used by the experiment harnesses (mean of 5 runs,
// best of 5 runs, convergence series aggregation).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace gapart {

/// Welford-style running accumulator: numerically stable mean/variance plus
/// min/max, without storing samples.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Summary of a finished sample set.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes the full summary of `samples` (copies to sort for the median).
Summary summarize(const std::vector<double>& samples);

/// Median of `samples` (copies to sort); 0 for an empty vector.
double median(std::vector<double> samples);

/// q-quantile of `samples` for q in [0, 1] (copies to sort), linearly
/// interpolated between order statistics; 0 for an empty vector.  The exact
/// (O(n log n), raw-sample) tool for bench harnesses and tests; the service
/// layer reports its latency percentiles from the mergeable LogHistogram in
/// common/telemetry.hpp instead (bounded memory, composable across sessions,
/// relative error <= 12.5% — one log bucket).
double quantile(std::vector<double> samples, double q);

/// Element-wise mean of several equal-length series (e.g. best-fitness vs
/// generation over 5 GA runs).  Shorter series are padded with their final
/// value, matching how convergence plots treat early-stopped runs.
std::vector<double> mean_series(const std::vector<std::vector<double>>& runs);

}  // namespace gapart
