// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for framing durable
// log records and checkpoint payloads: cheap enough to run on every WAL
// append, strong enough to catch torn writes and bit rot on replay.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gapart {

/// CRC-32 of `len` bytes at `data`.  `seed` chains partial computations:
/// crc32(b, crc32(a)) == crc32(a ++ b).
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

}  // namespace gapart
