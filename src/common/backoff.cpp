#include "common/backoff.hpp"

#include <chrono>
#include <thread>

namespace gapart {

void sleep_for_seconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace gapart
