#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace gapart {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double median(std::vector<double> samples) {
  // The 0.5-quantile interpolates the two middle order statistics for even
  // n and picks the middle element for odd n — exactly the median.
  return quantile(std::move(samples), 0.5);
}

double quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  RunningStats rs;
  for (double x : samples) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.median = median(samples);
  return s;
}

std::vector<double> mean_series(const std::vector<std::vector<double>>& runs) {
  std::size_t len = 0;
  for (const auto& r : runs) len = std::max(len, r.size());
  std::vector<double> out(len, 0.0);
  if (runs.empty()) return out;
  for (const auto& r : runs) {
    for (std::size_t i = 0; i < len; ++i) {
      const double v = r.empty() ? 0.0 : (i < r.size() ? r[i] : r.back());
      out[i] += v;
    }
  }
  for (auto& v : out) v /= static_cast<double>(runs.size());
  return out;
}

}  // namespace gapart
