#include "common/fault_injection.hpp"

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace gapart {

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kWalAppend:
      return "wal_append";
    case FaultSite::kWalFsync:
      return "wal_fsync";
    case FaultSite::kFileWrite:
      return "file_write";
    case FaultSite::kDeltaAlloc:
      return "delta_alloc";
    case FaultSite::kTaskStart:
      return "task_start";
    case FaultSite::kTransportSend:
      return "transport_send";
    case FaultSite::kTransportDrop:
      return "transport_drop";
    case FaultSite::kTransportDup:
      return "transport_dup";
    case FaultSite::kTransportReorder:
      return "transport_reorder";
    case FaultSite::kTransportTruncate:
      return "transport_truncate";
    case FaultSite::kCount_:
      break;
  }
  return "?";
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(std::uint64_t seed, double probability) {
  GAPART_REQUIRE(probability >= 0.0 && probability <= 1.0,
                 "fault probability must lie in [0, 1], got ", probability);
  // Parameters are written before the mode flips on (release) and read after
  // the mode is observed on (acquire), so a racing should_fail never mixes
  // old parameters with the new mode.
  seed_ = seed;
  probability_ = probability;
  mode_.store(Mode::kProbability, std::memory_order_release);
}

void FaultInjector::arm_nth(FaultSite site, std::uint64_t nth) {
  GAPART_REQUIRE(nth >= 1, "nth-call faults are 1-based, got ", nth);
  nth_site_ = site;
  nth_ = nth;
  counts_[static_cast<std::size_t>(site)].checked.store(
      0, std::memory_order_relaxed);
  mode_.store(Mode::kNth, std::memory_order_release);
}

void FaultInjector::disarm() {
  mode_.store(Mode::kOff, std::memory_order_release);
}

bool FaultInjector::armed() const {
  return mode_.load(std::memory_order_acquire) != Mode::kOff;
}

bool FaultInjector::should_fail(FaultSite site) {
  const Mode mode = mode_.load(std::memory_order_acquire);
  if (mode == Mode::kOff) return false;  // the disarmed fast path: one load

  auto& c = counts_[static_cast<std::size_t>(site)];
  const std::uint64_t call = c.checked.fetch_add(1, std::memory_order_relaxed) + 1;

  bool fail = false;
  if (mode == Mode::kNth) {
    fail = site == nth_site_ && call == nth_;
  } else {
    // Pure hash of (seed, site, call index): the schedule for a site is a
    // fixed function of the seed, independent of every other site.
    SplitMix64 mix(seed_ ^
                   (static_cast<std::uint64_t>(site) + 1) * 0x9e3779b97f4a7c15ULL ^
                   call * 0xbf58476d1ce4e5b9ULL);
    const double u =
        static_cast<double>(mix.next() >> 11) * 0x1.0p-53;  // [0, 1)
    fail = u < probability_;
  }
  if (fail) c.injected.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

FaultInjector::SiteCounts FaultInjector::counts(FaultSite site) const {
  const auto& c = counts_[static_cast<std::size_t>(site)];
  return {c.checked.load(std::memory_order_relaxed),
          c.injected.load(std::memory_order_relaxed)};
}

std::uint64_t FaultInjector::total_checked() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) {
    total += c.checked.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t FaultInjector::total_injected() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) {
    total += c.injected.load(std::memory_order_relaxed);
  }
  return total;
}

void FaultInjector::reset_counts() {
  for (auto& c : counts_) {
    c.checked.store(0, std::memory_order_relaxed);
    c.injected.store(0, std::memory_order_relaxed);
  }
}

ScopedFaultInjection::ScopedFaultInjection(std::uint64_t seed,
                                           double probability) {
  FaultInjector::instance().reset_counts();
  FaultInjector::instance().arm(seed, probability);
}

ScopedFaultInjection::ScopedFaultInjection(FaultSite site, std::uint64_t nth) {
  FaultInjector::instance().reset_counts();
  FaultInjector::instance().arm_nth(site, nth);
}

ScopedFaultInjection::~ScopedFaultInjection() {
  FaultInjector::instance().disarm();
  FaultInjector::instance().reset_counts();
}

}  // namespace gapart
