// Deterministic fault injection for the durability and service layers.
//
// A fault *point* is a named site in the code (a WAL write, an fsync, an
// allocation on the synchronous delta path, a refinement task start) that
// asks the process-wide injector "should this call fail?" before doing the
// real work.  Disarmed, a compiled-in check costs one relaxed atomic load;
// builds configured with -DGAPART_FAULT_INJECTION=OFF compile the check out
// entirely (GAPART_FAULT_POINT folds to `false`), so production binaries pay
// exactly nothing.
//
// Decisions are deterministic: every site keeps a call counter, and in
// probability mode the verdict for call #n at site s is a pure hash of
// (seed, s, n).  A single-threaded test therefore sees the exact same fault
// schedule for the same seed, and a soak run's schedule is reproducible per
// site up to thread interleaving of the counter increments.  Nth-call mode
// (`arm_nth`) fails exactly one call at one site — the surgical tool for
// "the second fsync of the checkpoint dies" regression tests.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace gapart {

enum class FaultSite : int {
  kWalAppend = 0,     ///< WAL record write()
  kWalFsync,          ///< WAL / checkpoint fsync
  kFileWrite,         ///< graph/partition/checkpoint stream writes (io.cpp)
  kDeltaAlloc,        ///< allocations on the synchronous delta path
  kTaskStart,         ///< background refinement task start
  kTransportSend,     ///< replication link down: send fails (partition)
  kTransportDrop,     ///< replication frame silently dropped in flight
  kTransportDup,      ///< replication frame delivered twice
  kTransportReorder,  ///< replication frame overtakes its predecessor
  kTransportTruncate, ///< replication frame cut short (CRC must catch it)
  kCount_,            ///< sentinel, keep last
};

constexpr int kNumFaultSites = static_cast<int>(FaultSite::kCount_);

const char* fault_site_name(FaultSite site);

class FaultInjector {
 public:
  /// The process-wide injector every GAPART_FAULT_POINT consults.
  static FaultInjector& instance();

  /// Probability mode: every check at every site fails independently with
  /// `probability`, decided by hash(seed, site, per-site call index).
  void arm(std::uint64_t seed, double probability);

  /// Nth-call mode: exactly the `nth` check (1-based) at `site` fails.
  void arm_nth(FaultSite site, std::uint64_t nth);

  /// Stops injecting.  Counters are kept until reset_counts().
  void disarm();

  bool armed() const;

  /// The injection decision for one call at `site`.  Also counts the call
  /// (checked, and injected when it fails) while armed.
  bool should_fail(FaultSite site);

  struct SiteCounts {
    std::uint64_t checked = 0;
    std::uint64_t injected = 0;
  };
  SiteCounts counts(FaultSite site) const;
  std::uint64_t total_checked() const;
  std::uint64_t total_injected() const;
  void reset_counts();

 private:
  FaultInjector() = default;

  enum class Mode : int { kOff = 0, kProbability, kNth };

  struct AtomicCounts {
    std::atomic<std::uint64_t> checked{0};
    std::atomic<std::uint64_t> injected{0};
  };

  std::atomic<Mode> mode_{Mode::kOff};
  std::uint64_t seed_ = 0;
  double probability_ = 0.0;
  FaultSite nth_site_ = FaultSite::kWalAppend;
  std::uint64_t nth_ = 0;
  std::array<AtomicCounts, kNumFaultSites> counts_{};
};

/// RAII arm/disarm for tests: restores the disarmed state (and clears the
/// counters) on scope exit even when the test throws.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection(std::uint64_t seed, double probability);
  ScopedFaultInjection(FaultSite site, std::uint64_t nth);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace gapart

// The seam itself.  `GAPART_FAULT_POINT(site)` evaluates to true when the
// injector decides this call fails; the call site reacts (throw IoError,
// throw bad_alloc, abandon the task).  Compiled out to a constant false —
// zero code, zero branches — when GAPART_FAULT_INJECTION is not defined.
#ifdef GAPART_FAULT_INJECTION
#define GAPART_FAULT_POINT(site) \
  (::gapart::FaultInjector::instance().should_fail(site))
#else
#define GAPART_FAULT_POINT(site) (false)
#endif
