// Process-wide telemetry: a wait-free metrics registry (counters, gauges,
// mergeable log-bucketed histograms) and a span tracer (per-thread ring
// buffers exported as Chrome trace_event JSON).
//
// Two layers with different compile-time stories:
//
//  * The *data types* — LogHistogram above all — are always compiled.  The
//    service's latency accounting (SessionStats / ServiceStats) is built on
//    them, and that accounting must keep its bounded-memory guarantee even in
//    builds that strip instrumentation.
//
//  * The *instrumentation macros* (GAPART_SPAN, GAPART_COUNTER_ADD, ...) are
//    the seam, modelled on fault_injection.hpp: compiled in when
//    GAPART_TELEMETRY is defined (the default build), folded to no-ops —
//    zero code, zero clock reads — when it is not.  Telemetry never feeds
//    back into algorithm decisions, so ON and OFF builds are bit-identical
//    in behavior; OFF merely stops measuring.
//
// Histogram design (HdrHistogram-lite): geometric buckets with 8 sub-buckets
// per octave, i.e. consecutive bucket boundaries differ by at most a factor
// 9/8.  Quantiles interpolated inside a bucket are therefore within 12.5%
// *relative* error of the exact order statistic (typically half that) — the
// documented accuracy bound, asserted by tests/test_telemetry.cpp against
// exact quantile() on fuzzed sample sets.  Buckets make the histogram
// mergeable: merge() is associative and exact (unlike merging quantiles),
// so per-session histograms compose into service-wide p50/p99.
//
// Recording is wait-free on the hot path: each thread owns a shard (a plain
// array of relaxed atomics) registered once per thread per histogram;
// record() is an array index plus a relaxed fetch_add.  Readers merge shards
// under a lock into a plain LogHistogram snapshot.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gapart {

// ------------------------------------------------------------------------
// LogHistogram — plain, copyable, mergeable.  Not thread-safe; the sharded
// wrapper below provides the concurrent write path.
// ------------------------------------------------------------------------
class LogHistogram {
 public:
  /// 8 sub-buckets per octave: relative bucket width <= 12.5%.
  static constexpr int kSubBucketsLog2 = 3;
  static constexpr int kSubBuckets = 1 << kSubBucketsLog2;
  /// Exponent range [2^-40, 2^40): covers nanoseconds-as-seconds up to
  /// terabyte-scale byte counts.  Values outside clamp to the end buckets.
  static constexpr int kMinExp = -40;
  static constexpr int kMaxExp = 40;
  static constexpr int kNumBuckets = (kMaxExp - kMinExp) * kSubBuckets;

  /// Bucket index for a positive value (clamped to the range above).
  static int bucket_index(double v);
  /// Inclusive lower / exclusive upper bound of bucket `index`.
  static double bucket_lower(int index);
  static double bucket_upper(int index);

  /// Records one sample.  Values <= 0 land in a dedicated zero bucket and
  /// participate in count()/quantile() as 0.0.
  void record(double v) { record_n(v, 1); }
  void record_n(double v, std::uint64_t n);

  /// Element-wise merge; associative and commutative, loses nothing the
  /// bucketing hadn't already lost.
  void merge(const LogHistogram& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// q in [0,1], linearly interpolated inside the target bucket and clamped
  /// to [min(), max()].  Relative error <= one bucket width (12.5%).
  /// 0 for an empty histogram.
  double quantile(double q) const;

  void clear() { *this = LogHistogram(); }

  /// Direct bucket access for snapshot serialization.
  std::uint64_t bucket_count(int index) const { return buckets_[index]; }
  std::uint64_t zero_count() const { return zero_count_; }

 private:
  friend class ShardedHistogram;  // merges raw shard buckets directly
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t zero_count_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// ------------------------------------------------------------------------
// Registry metric types.
// ------------------------------------------------------------------------
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Concurrent histogram: per-thread wait-free shards, merged on read.
///
/// Each recording thread claims a process-wide small slot id once; the shard
/// for (histogram, slot) is created on first use (mutex'd slow path) and
/// published through a lock-free pointer array, so the steady state is: load
/// slot, load shard pointer, relaxed fetch_add — no locks, no CAS loops.
/// Shards outlive their threads (a finished worker's samples stay merged).
/// Threads beyond kMaxShards share one overflow shard (still atomic, still
/// correct, merely contended).
class ShardedHistogram {
 public:
  static constexpr int kMaxShards = 128;

  ShardedHistogram();
  ~ShardedHistogram();
  ShardedHistogram(const ShardedHistogram&) = delete;
  ShardedHistogram& operator=(const ShardedHistogram&) = delete;

  /// Wait-free after the calling thread's first record().
  void record(double v);

  /// Sums every shard with relaxed loads into a plain snapshot.  Concurrent
  /// writers may or may not have their in-flight sample included, but
  /// nothing tears and nothing is double-counted.
  LogHistogram merged() const;

  /// Test hook: zeroes every shard.  Callers must ensure no concurrent
  /// writers (as for any reset).
  void reset();

 private:
  struct Shard;
  Shard* local_shard();

  std::array<std::atomic<Shard*>, kMaxShards> slots_{};
  mutable std::mutex mu_;                        // shard creation + reset
  std::vector<std::unique_ptr<Shard>> owned_;    // guarded by mu_
  Shard* overflow_ = nullptr;                    // lazily created under mu_
};

// ------------------------------------------------------------------------
// TelemetryRegistry — the process-wide name -> metric table.
// ------------------------------------------------------------------------
class TelemetryRegistry {
 public:
  static TelemetryRegistry& instance();

  /// Lookup-or-create.  Returned references are stable for the process
  /// lifetime; the lookup takes a lock, so call sites cache the reference
  /// in a function-local static (the GAPART_* macros do this).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  ShardedHistogram& histogram(const std::string& name);

  struct HistogramSnapshot {
    std::string name;
    LogHistogram hist;
  };
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSnapshot> histograms;
  };
  /// Consistent-per-metric snapshot of everything registered so far,
  /// sorted by name.
  Snapshot snapshot() const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,p50,
  /// p90,p99,max,...}}} — one JSON object, machine-readable.
  void write_json(std::ostream& os) const;
  /// Prometheus text exposition: counters as `name_total`, gauges as-is,
  /// histograms as `_count`/`_sum` plus quantile gauges (names sanitized to
  /// [a-zA-Z0-9_:]).
  void write_prometheus(std::ostream& os) const;

  /// Test hook: zeroes counters and histograms (names stay registered so
  /// cached references remain valid).  Gauges are left alone — they are
  /// last-write-wins anyway.
  void reset_for_tests();

 private:
  TelemetryRegistry() = default;

  mutable std::mutex mu_;
  // Deques-of-unique_ptr keep addresses stable across growth.
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<ShardedHistogram>>>
      histograms_;
};

// ------------------------------------------------------------------------
// Tracer — per-thread ring buffers of completed spans, exported as Chrome
// trace_event JSON (load chrome://tracing or https://ui.perfetto.dev).
// ------------------------------------------------------------------------

/// One completed span.  `name` must be a string literal (span sites are
/// static); ts/dur are microseconds since Tracer::enable().
struct TraceEvent {
  const char* name = nullptr;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

class Tracer {
 public:
  static Tracer& instance();

  /// Starts collecting spans, each thread buffering up to
  /// `events_per_thread` events in a ring.  On overflow the oldest event in
  /// that thread's ring is dropped and the `telemetry.dropped_events`
  /// counter incremented — output stays well-formed, recent history wins.
  void enable(std::size_t events_per_thread = kDefaultRingCapacity);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one completed span to the calling thread's ring (no-op unless
  /// enabled).  Used by ScopedSpan; exposed for tests.
  void record(const char* name, double ts_us, double dur_us);

  /// Microseconds since enable() on the tracing clock (steady).
  double now_us() const;
  /// Converts a steady_clock time point to the same scale (clamped >= 0).
  double ts_us(std::chrono::steady_clock::time_point tp) const;

  /// {"traceEvents":[{"name","ph":"X","ts","dur","pid","tid"},...],
  ///  "displayTimeUnit":"ms"} — every thread's ring, oldest first per
  /// thread.  Safe to call while recording continues (rings lock briefly).
  void export_chrome_trace(std::ostream& os) const;

  /// Drops every buffered event (rings stay registered).
  void clear();

  /// Events currently buffered across all rings (post-drop).
  std::size_t buffered_events() const;

  static constexpr std::size_t kDefaultRingCapacity = 1 << 14;

 private:
  Tracer() = default;
  struct Ring;
  Ring* local_ring();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_{};
  mutable std::mutex mu_;  // ring registration / export / clear
  std::vector<std::unique_ptr<Ring>> rings_;
  std::size_t capacity_ = kDefaultRingCapacity;
};

// ------------------------------------------------------------------------
// Span sites.
// ------------------------------------------------------------------------

/// Cached per-call-site span state: the literal name plus the span's
/// duration histogram (`span.<name>` in the registry, recorded in seconds
/// on every execution, traced or not).
struct SpanSite {
  const char* name;
  ShardedHistogram* hist;

  /// Registers (once) and returns the site for `name`.  Call through a
  /// function-local static — see GAPART_SPAN.
  static SpanSite& site(const char* name);
};

/// RAII span: always records its duration into the site histogram; also
/// appends a trace event when the Tracer is enabled.  Two steady_clock
/// reads per span (~40ns) — cheap against the microsecond-scale regions
/// it wraps, and compiled out entirely with GAPART_TELEMETRY=OFF.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanSite& site)
      : site_(site), start_(std::chrono::steady_clock::now()) {}
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanSite& site_;
  std::chrono::steady_clock::time_point start_;
};

/// Seconds on the tracing clock (steady, arbitrary epoch) — for explicit
/// interval measurements across threads (queue waits, ship->ack RTT) where
/// a scoped span can't straddle the gap.
double telemetry_now_seconds();

/// True in builds whose instrumentation macros are live.
#ifdef GAPART_TELEMETRY
inline constexpr bool kTelemetryCompiledIn = true;
#else
inline constexpr bool kTelemetryCompiledIn = false;
#endif

}  // namespace gapart

// ------------------------------------------------------------------------
// The seam.  Every macro folds to a no-op (that still marks its arguments
// as used, so OFF builds compile warning-clean under -Werror) when
// GAPART_TELEMETRY is not defined.
// ------------------------------------------------------------------------
#define GAPART_TELEM_CAT2(a, b) a##b
#define GAPART_TELEM_CAT(a, b) GAPART_TELEM_CAT2(a, b)

#ifdef GAPART_TELEMETRY

/// Scoped span covering the rest of the enclosing block.  `name` must be a
/// string literal; the site (name -> histogram) resolves once per call site.
#define GAPART_SPAN(name)                                       \
  static ::gapart::SpanSite& GAPART_TELEM_CAT(gapart_site_,     \
                                              __LINE__) =       \
      ::gapart::SpanSite::site(name);                           \
  ::gapart::ScopedSpan GAPART_TELEM_CAT(gapart_span_, __LINE__)(\
      GAPART_TELEM_CAT(gapart_site_, __LINE__))

#define GAPART_COUNTER_ADD(name, delta)                              \
  do {                                                               \
    static ::gapart::Counter& gapart_counter_ =                      \
        ::gapart::TelemetryRegistry::instance().counter(name);       \
    gapart_counter_.add(static_cast<std::uint64_t>(delta));          \
  } while (0)

#define GAPART_GAUGE_SET(name, value)                                \
  do {                                                               \
    static ::gapart::Gauge& gapart_gauge_ =                          \
        ::gapart::TelemetryRegistry::instance().gauge(name);         \
    gapart_gauge_.set(static_cast<double>(value));                   \
  } while (0)

#define GAPART_HISTOGRAM_RECORD(name, value)                         \
  do {                                                               \
    static ::gapart::ShardedHistogram& gapart_hist_ =                \
        ::gapart::TelemetryRegistry::instance().histogram(name);     \
    gapart_hist_.record(static_cast<double>(value));                 \
  } while (0)

/// Timestamp for explicit cross-thread intervals; pairs with
/// GAPART_HISTOGRAM_RECORD(name, GAPART_TSTAMP() - t0).  0.0 when OFF, so
/// stored stamps stay inert.
#define GAPART_TSTAMP() (::gapart::telemetry_now_seconds())

#else  // !GAPART_TELEMETRY

// Arguments are still (cheaply) evaluated so variables that exist only to
// feed telemetry don't trip -Werror=unused; with GAPART_TSTAMP() fixed at
// 0.0 every argument is a dead constant expression the optimizer erases.
#define GAPART_SPAN(name) ((void)(name))
#define GAPART_COUNTER_ADD(name, delta) ((void)(name), (void)(delta))
#define GAPART_GAUGE_SET(name, value) ((void)(name), (void)(value))
#define GAPART_HISTOGRAM_RECORD(name, value) ((void)(name), (void)(value))
#define GAPART_TSTAMP() (0.0)

#endif  // GAPART_TELEMETRY
