// Deterministic pseudo-random number generation for all stochastic code in
// gapart.
//
// Every randomized component (GA operators, mesh jitter, workload generators)
// receives an explicit Rng so experiments are reproducible from a single
// 64-bit seed.  The generator is xoshiro256++ (Blackman & Vigna), seeded via
// SplitMix64; both are implemented here so the library has no dependency on
// the quality/implementation details of std::mt19937.
#pragma once

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace gapart {

/// SplitMix64: used to expand a single seed into xoshiro state, and handy as
/// a tiny stateless mixer for hashing-style use.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ generator with convenience distributions.
///
/// Satisfies the essentials of UniformRandomBitGenerator so it can also be
/// handed to <algorithm> utilities if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
    // xoshiro must not start from the all-zero state; SplitMix64 cannot
    // produce four consecutive zeros, but keep the guard for clarity.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  std::uint64_t operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be positive.  Uses Lemire-style
  /// rejection to avoid modulo bias.
  std::uint64_t uniform_u64(std::uint64_t n) {
    GAPART_ASSERT(n > 0);
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform int in [0, n) for signed container-index use.
  int uniform_int(int n) {
    GAPART_ASSERT(n > 0);
    return static_cast<int>(uniform_u64(static_cast<std::uint64_t>(n)));
  }

  /// Uniform int in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    GAPART_ASSERT(lo <= hi);
    return lo + uniform_int(hi - lo + 1);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Fisher–Yates shuffle of a contiguous container.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_u64(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-island / per-run seeds).
  Rng split() { return Rng(next_u64() ^ 0xa5a5a5a5deadbeefULL); }

  /// Derives the `stream`-th independent child generator WITHOUT advancing
  /// this generator: a pure function of (current state, stream).  Parallel
  /// tasks can each take fork(task_index) and the resulting random sequences
  /// are independent of scheduling order and thread count, which is what
  /// keeps pooled GA runs bit-identical to serial runs.
  Rng fork(std::uint64_t stream) const {
    SplitMix64 sm(state_[0] ^ rotl(state_[2], 21));
    const std::uint64_t base = sm.next() ^ rotl(state_[3], 43);
    SplitMix64 sm2(base + (stream + 1) * 0x9e3779b97f4a7c15ULL);
    return Rng(sm2.next());
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace gapart
