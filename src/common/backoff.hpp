// Retry with exponential backoff for transient failures (log I/O hiccups,
// momentary resource exhaustion).
//
// The loop is deliberately tiny and fully parameterized: the sleeper is
// injectable so tests drive the schedule without real sleeping, and only
// gapart::IoError is treated as transient — contract violations
// (gapart::Error) and programming errors propagate on the first throw, so a
// retry loop can never paper over a real bug.
#pragma once

#include <utility>

#include "common/assert.hpp"

namespace gapart {

struct BackoffPolicy {
  /// Total attempts (first try + retries).  Must be >= 1.
  int max_attempts = 8;
  /// Sleep before the first retry, in seconds.
  double initial_seconds = 1e-4;
  /// Multiplier applied to the sleep after every retry.
  double multiplier = 2.0;
  /// Sleep cap in seconds.
  double max_seconds = 0.05;
};

/// Blocking sleep used as the default sleeper (std::this_thread::sleep_for).
void sleep_for_seconds(double seconds);

/// Runs `fn` up to policy.max_attempts times, sleeping an exponentially
/// growing interval between attempts via `sleeper(seconds)`.  Only IoError is
/// retried; the last IoError is rethrown once attempts are exhausted.
/// Returns the number of retries that were needed (0 = first try succeeded).
template <typename Fn, typename Sleeper>
int retry_with_backoff(const BackoffPolicy& policy, Fn&& fn,
                       Sleeper&& sleeper) {
  GAPART_REQUIRE(policy.max_attempts >= 1, "max_attempts must be >= 1, got ",
                 policy.max_attempts);
  double delay = policy.initial_seconds;
  for (int attempt = 1;; ++attempt) {
    try {
      fn();
      return attempt - 1;
    } catch (const IoError&) {
      if (attempt >= policy.max_attempts) throw;
    }
    sleeper(delay);
    delay = delay * policy.multiplier;
    if (delay > policy.max_seconds) delay = policy.max_seconds;
  }
}

template <typename Fn>
int retry_with_backoff(const BackoffPolicy& policy, Fn&& fn) {
  return retry_with_backoff(policy, std::forward<Fn>(fn), sleep_for_seconds);
}

}  // namespace gapart
