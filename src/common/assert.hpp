// Contract checking and error reporting used across gapart.
//
// GAPART_ASSERT is an always-on internal invariant check (these algorithms
// are cheap relative to the checks, and silent corruption of a partition is
// far worse than an abort).  API-boundary validation throws gapart::Error so
// callers can recover.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gapart {

/// Exception thrown on invalid arguments / malformed inputs at API boundaries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// File/stream-level I/O failure (open, short read of a truncated file,
/// failed or injected write/fsync).  Derived from Error so existing callers
/// that catch Error keep working; retry loops treat IoError — and only
/// IoError — as transient.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);

namespace detail {
inline std::string format_assert_msg() { return {}; }

template <typename... Args>
std::string format_assert_msg(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

}  // namespace gapart

#define GAPART_ASSERT(expr, ...)                                        \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::gapart::assert_fail(#expr, __FILE__, __LINE__,                  \
                            ::gapart::detail::format_assert_msg(__VA_ARGS__)); \
    }                                                                   \
  } while (false)

/// Throws gapart::Error with a formatted message when `expr` is false.
#define GAPART_REQUIRE(expr, ...)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      throw ::gapart::Error(                                            \
          ::gapart::detail::format_assert_msg("requirement failed: ",   \
                                              #expr, " — ", __VA_ARGS__)); \
    }                                                                   \
  } while (false)
