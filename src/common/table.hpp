// Plain-text table rendering for the experiment harnesses: every bench binary
// prints paper-style tables (rows = graphs, columns = part counts) so the
// output can be compared side by side with the tables in the paper.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace gapart {

/// A fixed-column text table.  Cells are strings; numeric convenience setters
/// format with a fixed precision.  Rendering pads every column to its widest
/// cell and draws an ASCII rule under the header.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  std::size_t columns() const { return header_.size(); }
  std::size_t rows() const { return rows_.size(); }

  /// Appends a full row; must have exactly columns() cells.
  void add_row(std::vector<std::string> cells);

  /// Starts a new empty row; subsequent set()/append() fill it.
  void start_row();
  void append(std::string cell);
  void append(double value, int precision = 2);
  void append(long long value);

  /// Adds a separator rule drawn as dashes across the full width.
  void add_rule();

  std::string str() const;
  void print(std::ostream& os) const;

 private:
  static constexpr const char* kRuleMarker = "\x01rule";

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the point.
std::string format_double(double value, int precision = 2);

}  // namespace gapart
