// Wall-clock timing for experiment harnesses and examples.
#pragma once

#include <chrono>

namespace gapart {

/// Simple monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gapart
