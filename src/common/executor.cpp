#include "common/executor.hpp"

#include <algorithm>

#include "common/telemetry.hpp"
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace gapart {

namespace {

/// Shared state of one parallel_for: threads claim disjoint index ranges via
/// `next` and account completion via `done`; the issuing thread blocks until
/// done == n.  Lives on the heap (shared_ptr) because helper tasks may still
/// be queued — and harmlessly find no work — after the issuing call returned.
/// The range function is invoked once per claimed range (the blocked
/// overload's contract); the per-index overload wraps its fn in a range loop
/// so both share this one claiming/accounting path.
struct LoopState {
  std::function<void(std::size_t, std::size_t)> fn;
  std::size_t n = 0;
  std::size_t grain = 1;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;

  void drain() {
    for (;;) {
      const std::size_t begin = next.fetch_add(grain);
      if (begin >= n) break;
      const std::size_t end = std::min(begin + grain, n);
      // After a failure the remaining ranges are claimed but skipped so the
      // loop still reaches done == n and the caller can rethrow.
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          fn(begin, end);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
      const std::size_t finished =
          done.fetch_add(end - begin, std::memory_order_acq_rel) +
          (end - begin);
      if (finished == n) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

Executor::Executor(int num_threads) {
  const int workers = std::max(num_threads, 1) - 1;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  // Workers drain the queue before exiting; a worker-less pool has to drain
  // on this thread to honour the "destructor drains the queue" contract.
  if (workers_.empty()) {
    while (run_one()) {
    }
  }
  for (auto& w : workers_) w.join();
}

int Executor::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void Executor::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--outstanding_ == 0) done_cv_.notify_all();
    }
  }
}

bool Executor::run_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (--outstanding_ == 0) done_cv_.notify_all();
  }
  return true;
}

void Executor::submit(std::function<void()> task) {
#ifdef GAPART_TELEMETRY
  // Wrap the closure so the queue wait (submit -> first instruction) and the
  // run time land in the pool histograms.  The wrap is one extra allocation
  // and three clock reads per task — noise against the millisecond-scale
  // refinement jobs submit() carries (parallel_for helpers take enqueue()
  // directly and stay unwrapped).
  const double submitted_at = telemetry_now_seconds();
  task = [inner = std::move(task), submitted_at]() {
    const double started_at = telemetry_now_seconds();
    GAPART_HISTOGRAM_RECORD("executor.queue_wait_seconds",
                            started_at - submitted_at);
    inner();
    GAPART_HISTOGRAM_RECORD("executor.task_seconds",
                            telemetry_now_seconds() - started_at);
  };
#endif
  enqueue(std::move(task));
}

void Executor::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

int Executor::pending() const {
  return outstanding_.load(std::memory_order_relaxed);
}

void Executor::wait() {
  // Help drain first so wait() cannot deadlock on a pool of size 1.
  while (run_one()) {
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void Executor::parallel_for(std::size_t n,
                            const std::function<void(std::size_t)>& fn,
                            std::size_t grain) {
  parallel_for(n, grain, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

void Executor::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    fn(0, n);
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->fn = fn;
  state->n = n;
  if (grain == 0) {
    // ~4 ranges per thread balances load without shredding cache locality.
    grain = std::max<std::size_t>(
        1, n / (static_cast<std::size_t>(num_threads()) * 4));
  }
  state->grain = grain;

  const std::size_t ranges = (n + grain - 1) / grain;
  const std::size_t helpers =
      std::min(workers_.size(), ranges > 0 ? ranges - 1 : 0);
  for (std::size_t h = 0; h < helpers; ++h) {
    enqueue([state] { state->drain(); });
  }

  state->drain();  // the issuing thread always participates

  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == state->n;
    });
  }
  if (state->error) std::rethrow_exception(state->error);
}

void Executor::run_tasks(const std::vector<std::function<void()>>& tasks) {
  parallel_for(
      tasks.size(), [&tasks](std::size_t i) { tasks[i](); },
      /*grain=*/1);
}

}  // namespace gapart
