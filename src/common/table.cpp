#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace gapart {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  GAPART_REQUIRE(!header_.empty(), "a table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  GAPART_REQUIRE(cells.size() == header_.size(), "row has ", cells.size(),
                 " cells, table has ", header_.size(), " columns");
  rows_.push_back(std::move(cells));
}

void TextTable::start_row() { rows_.emplace_back(); }

void TextTable::append(std::string cell) {
  GAPART_REQUIRE(!rows_.empty(), "start_row() before append()");
  GAPART_REQUIRE(rows_.back().size() < header_.size(),
                 "row already has all ", header_.size(), " cells");
  rows_.back().push_back(std::move(cell));
}

void TextTable::append(double value, int precision) {
  append(format_double(value, precision));
}

void TextTable::append(long long value) { append(std::to_string(value)); }

void TextTable::add_rule() { rows_.push_back({kRuleMarker}); }

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kRuleMarker) continue;
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(width[c])) << cell << "  ";
    }
    os << '\n';
  };

  emit_row(header_);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kRuleMarker) {
      os << std::string(total, '-') << '\n';
    } else {
      emit_row(row);
    }
  }
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << str(); }

}  // namespace gapart
