#include "common/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <ostream>

namespace gapart {

namespace {

/// CAS-loop add/min/max on atomic<double> (portable to pre-C++20 atomic
/// floating fetch_add; relaxed is enough — these are statistics, ordered
/// by the reader's lock).
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}
void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Process-wide thread slot ids, recycled on thread exit so long-lived
/// processes with thread churn keep hitting the wait-free shard array.
/// Intentionally leaked: thread_local destructors may run after static
/// destruction, and the pool must still be there.
struct SlotPool {
  std::mutex mu;
  std::vector<int> free_list;
  int next = 0;
};
SlotPool& slot_pool() {
  static SlotPool* pool = new SlotPool();
  return *pool;
}

struct SlotHolder {
  int slot;
  SlotHolder() {
    SlotPool& p = slot_pool();
    std::lock_guard<std::mutex> lk(p.mu);
    if (!p.free_list.empty()) {
      slot = p.free_list.back();
      p.free_list.pop_back();
    } else {
      slot = p.next++;
    }
  }
  ~SlotHolder() {
    SlotPool& p = slot_pool();
    std::lock_guard<std::mutex> lk(p.mu);
    p.free_list.push_back(slot);
  }
};

int thread_slot() {
  thread_local SlotHolder holder;
  return holder.slot;
}

/// Minimal JSON string escaping (metric/span names are identifiers, but a
/// malformed dump must never be possible).
void write_json_string(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << *s;
        }
    }
  }
  os << '"';
}

std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

}  // namespace

// ------------------------------------------------------------------ LogHistogram

int LogHistogram::bucket_index(double v) {
  int exp = 0;
  const double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac ∈ [0.5,1)
  const int octave = exp - 1;               // v = (2·frac) * 2^octave
  int sub = static_cast<int>((2.0 * frac - 1.0) * kSubBuckets);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  if (sub < 0) sub = 0;
  if (octave < kMinExp) return 0;
  if (octave >= kMaxExp) return kNumBuckets - 1;
  return (octave - kMinExp) * kSubBuckets + sub;
}

double LogHistogram::bucket_lower(int index) {
  const int octave = kMinExp + index / kSubBuckets;
  const int sub = index % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, octave);
}

double LogHistogram::bucket_upper(int index) {
  const int octave = kMinExp + index / kSubBuckets;
  const int sub = index % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, octave);
}

void LogHistogram::record_n(double v, std::uint64_t n) {
  if (n == 0) return;
  double eff = v;
  if (v > 0.0) {
    buckets_[bucket_index(v)] += n;
    sum_ += v * static_cast<double>(n);
  } else {  // zero, negative, or NaN: counted as 0.0
    zero_count_ += n;
    eff = 0.0;
  }
  if (count_ == 0) {
    min_ = eff;
    max_ = eff;
  } else {
    min_ = std::min(min_, eff);
    max_ = std::max(max_, eff);
  }
  count_ += n;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  zero_count_ += other.zero_count_;
  count_ += other.count_;
  sum_ += other.sum_;
}

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Continuous 0-based rank, matching stats.hpp quantile()'s convention of
  // interpolating between order statistics.
  const double pos = q * static_cast<double>(count_ - 1);
  std::uint64_t seen = 0;
  if (zero_count_ > 0) {
    if (pos < static_cast<double>(zero_count_)) return 0.0;
    seen = zero_count_;
  }
  for (int i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t c = buckets_[i];
    if (c == 0) continue;
    if (pos < static_cast<double>(seen + c)) {
      const double lo = bucket_lower(i);
      const double hi = bucket_upper(i);
      double t = (pos - static_cast<double>(seen) + 0.5) /
                 static_cast<double>(c);
      t = std::clamp(t, 0.0, 1.0);
      return std::clamp(lo + (hi - lo) * t, min_, max_);
    }
    seen += c;
  }
  return max_;  // pos beyond the last bucket (count drift in snapshots)
}

// ------------------------------------------------------------- ShardedHistogram

struct ShardedHistogram::Shard {
  std::array<std::atomic<std::uint64_t>, LogHistogram::kNumBuckets> buckets{};
  std::atomic<std::uint64_t> zero_count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
};

ShardedHistogram::ShardedHistogram() = default;
ShardedHistogram::~ShardedHistogram() = default;

ShardedHistogram::Shard* ShardedHistogram::local_shard() {
  const int slot = thread_slot();
  if (slot < kMaxShards) {
    Shard* s = slots_[slot].load(std::memory_order_acquire);
    if (s != nullptr) return s;
    std::lock_guard<std::mutex> lk(mu_);
    s = slots_[slot].load(std::memory_order_relaxed);
    if (s == nullptr) {
      owned_.push_back(std::make_unique<Shard>());
      s = owned_.back().get();
      slots_[slot].store(s, std::memory_order_release);
    }
    return s;
  }
  // More live threads than slots: share one overflow shard.  Publication
  // via the slots_ array trick doesn't apply, so double-checked under mu_
  // with an acquire load through a dedicated atomic would be needed; keep
  // it simple and take the lock only until the shard exists.
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (overflow_ == nullptr) {
      owned_.push_back(std::make_unique<Shard>());
      overflow_ = owned_.back().get();
    }
    return overflow_;
  }
}

void ShardedHistogram::record(double v) {
  Shard& s = *local_shard();
  double eff = v;
  if (v > 0.0) {
    s.buckets[LogHistogram::bucket_index(v)].fetch_add(
        1, std::memory_order_relaxed);
    atomic_add(s.sum, v);
  } else {
    s.zero_count.fetch_add(1, std::memory_order_relaxed);
    eff = 0.0;
  }
  atomic_min(s.min, eff);
  atomic_max(s.max, eff);
}

LogHistogram ShardedHistogram::merged() const {
  LogHistogram out;
  bool saw_min = false;
  bool saw_max = false;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& sp : owned_) {
    const Shard& s = *sp;
    std::uint64_t shard_count = 0;
    for (int i = 0; i < LogHistogram::kNumBuckets; ++i) {
      const std::uint64_t c = s.buckets[i].load(std::memory_order_relaxed);
      if (c != 0) {
        out.buckets_[i] += c;
        shard_count += c;
      }
    }
    const std::uint64_t z = s.zero_count.load(std::memory_order_relaxed);
    out.zero_count_ += z;
    shard_count += z;
    if (shard_count == 0) continue;
    out.sum_ += s.sum.load(std::memory_order_relaxed);
    // A concurrent first record can be caught between its bucket increment
    // and its min/max update, leaving the sentinels (+inf / -inf) in place;
    // skip those so a racing snapshot never reports an inverted range.
    const double mn = s.min.load(std::memory_order_relaxed);
    const double mx = s.max.load(std::memory_order_relaxed);
    if (std::isfinite(mn)) out.min_ = saw_min ? std::min(out.min_, mn) : mn;
    saw_min = saw_min || std::isfinite(mn);
    if (std::isfinite(mx)) out.max_ = saw_max ? std::max(out.max_, mx) : mx;
    saw_max = saw_max || std::isfinite(mx);
    out.count_ += shard_count;
  }
  if (out.count_ > 0 && (!saw_min || !saw_max)) {
    // Every sample's exact value was still in flight: fall back to bucket
    // bounds (conservative, and well-formed: min <= max always holds).
    int lo = -1;
    int hi = -1;
    for (int i = 0; i < LogHistogram::kNumBuckets; ++i) {
      if (out.buckets_[i] != 0) {
        if (lo < 0) lo = i;
        hi = i;
      }
    }
    if (!saw_min) {
      out.min_ = (out.zero_count_ > 0 || lo < 0)
                     ? 0.0
                     : LogHistogram::bucket_lower(lo);
    }
    if (!saw_max) {
      out.max_ = hi < 0 ? 0.0 : LogHistogram::bucket_upper(hi);
    }
    if (out.min_ > out.max_) out.min_ = out.max_;
  }
  return out;
}

void ShardedHistogram::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& sp : owned_) {
    Shard& s = *sp;
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.zero_count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
    s.min.store(std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    s.max.store(-std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
  }
}

// ------------------------------------------------------------ TelemetryRegistry

TelemetryRegistry& TelemetryRegistry::instance() {
  // Leaked: instrumentation in thread_local / static destructors must keep
  // a live registry.
  static TelemetryRegistry* reg = new TelemetryRegistry();
  return *reg;
}

Counter& TelemetryRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [n, c] : counters_) {
    if (n == name) return *c;
  }
  counters_.emplace_back(name, std::make_unique<Counter>());
  return *counters_.back().second;
}

Gauge& TelemetryRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [n, g] : gauges_) {
    if (n == name) return *g;
  }
  gauges_.emplace_back(name, std::make_unique<Gauge>());
  return *gauges_.back().second;
}

ShardedHistogram& TelemetryRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [n, h] : histograms_) {
    if (n == name) return *h;
  }
  histograms_.emplace_back(name, std::make_unique<ShardedHistogram>());
  return *histograms_.back().second;
}

TelemetryRegistry::Snapshot TelemetryRegistry::snapshot() const {
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lk(mu_);
    snap.counters.reserve(counters_.size());
    for (const auto& [n, c] : counters_) snap.counters.emplace_back(n, c->value());
    snap.gauges.reserve(gauges_.size());
    for (const auto& [n, g] : gauges_) snap.gauges.emplace_back(n, g->value());
    snap.histograms.reserve(histograms_.size());
    for (const auto& [n, h] : histograms_)
      snap.histograms.push_back({n, h->merged()});
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

void TelemetryRegistry::write_json(std::ostream& os) const {
  const Snapshot snap = snapshot();
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i) os << ',';
    write_json_string(os, snap.counters[i].first.c_str());
    os << ':' << snap.counters[i].second;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i) os << ',';
    write_json_string(os, snap.gauges[i].first.c_str());
    os << ':' << snap.gauges[i].second;
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    if (i) os << ',';
    const LogHistogram& h = snap.histograms[i].hist;
    write_json_string(os, snap.histograms[i].name.c_str());
    os << ":{\"count\":" << h.count() << ",\"sum\":" << h.sum()
       << ",\"mean\":" << h.mean() << ",\"min\":" << h.min()
       << ",\"p50\":" << h.quantile(0.50) << ",\"p90\":" << h.quantile(0.90)
       << ",\"p99\":" << h.quantile(0.99) << ",\"max\":" << h.max() << '}';
  }
  os << "}}";
}

void TelemetryRegistry::write_prometheus(std::ostream& os) const {
  const Snapshot snap = snapshot();
  for (const auto& [name, value] : snap.counters) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << "_total counter\n"
       << p << "_total " << value << '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << " gauge\n" << p << ' ' << value << '\n';
  }
  for (const auto& hs : snap.histograms) {
    const std::string p = prometheus_name(hs.name);
    const LogHistogram& h = hs.hist;
    os << "# TYPE " << p << " summary\n";
    for (const double q : {0.5, 0.9, 0.99}) {
      os << p << "{quantile=\"" << q << "\"} " << h.quantile(q) << '\n';
    }
    os << p << "_sum " << h.sum() << '\n'
       << p << "_count " << h.count() << '\n';
  }
}

void TelemetryRegistry::reset_for_tests() {
  // Collect pointers under the lock, reset outside it: ShardedHistogram
  // reset takes its own lock and the order registry-then-histogram is the
  // only order anyone takes them in.
  std::vector<Counter*> counters;
  std::vector<ShardedHistogram*> hists;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [n, c] : counters_) counters.push_back(c.get());
    for (auto& [n, h] : histograms_) hists.push_back(h.get());
  }
  for (Counter* c : counters) c->reset();
  for (ShardedHistogram* h : hists) h->reset();
}

// ------------------------------------------------------------------- Tracer

struct Tracer::Ring {
  std::mutex mu;
  std::vector<TraceEvent> events;  // circular, `count` valid from `start`
  std::size_t capacity = 0;
  std::size_t start = 0;
  std::size_t count = 0;
  std::uint32_t tid = 0;
};

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // leaked, like the registry
  return *tracer;
}

Tracer::Ring* Tracer::local_ring() {
  thread_local Ring* ring = nullptr;  // Tracer is a singleton
  if (ring == nullptr) {
    auto owned = std::make_unique<Ring>();
    std::lock_guard<std::mutex> lk(mu_);
    owned->tid = static_cast<std::uint32_t>(rings_.size() + 1);
    owned->capacity = capacity_;
    owned->events.resize(capacity_);
    ring = owned.get();
    rings_.push_back(std::move(owned));
  }
  return ring;
}

void Tracer::enable(std::size_t events_per_thread) {
  std::lock_guard<std::mutex> lk(mu_);
  capacity_ = std::max<std::size_t>(1, events_per_thread);
  for (const auto& rp : rings_) {
    Ring& r = *rp;
    std::lock_guard<std::mutex> rlk(r.mu);
    r.capacity = capacity_;
    r.events.assign(capacity_, TraceEvent{});
    r.start = 0;
    r.count = 0;
  }
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_release); }

void Tracer::record(const char* name, double ts_us, double dur_us) {
  if (!enabled()) return;
  Ring& r = *local_ring();
  static Counter& dropped =
      TelemetryRegistry::instance().counter("telemetry.dropped_events");
  std::lock_guard<std::mutex> lk(r.mu);
  if (r.capacity == 0) return;
  const TraceEvent ev{name, ts_us, dur_us};
  if (r.count < r.capacity) {
    r.events[(r.start + r.count) % r.capacity] = ev;
    ++r.count;
  } else {
    r.events[r.start] = ev;  // overwrite the oldest
    r.start = (r.start + 1) % r.capacity;
    dropped.add(1);
  }
}

double Tracer::now_us() const {
  return ts_us(std::chrono::steady_clock::now());
}

double Tracer::ts_us(std::chrono::steady_clock::time_point tp) const {
  const double us =
      std::chrono::duration<double, std::micro>(tp - epoch_).count();
  return us < 0.0 ? 0.0 : us;
}

void Tracer::export_chrome_trace(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& rp : rings_) {
      Ring& r = *rp;
      std::lock_guard<std::mutex> rlk(r.mu);
      for (std::size_t i = 0; i < r.count; ++i) {
        const TraceEvent& ev = r.events[(r.start + i) % r.capacity];
        if (!first) os << ',';
        first = false;
        os << "{\"name\":";
        write_json_string(os, ev.name != nullptr ? ev.name : "");
        // Fixed-point microseconds at ns resolution: default ostream
        // precision (6 significant digits) would corrupt timestamps beyond
        // ~1s and break span nesting in the viewer.
        char num[80];
        std::snprintf(num, sizeof(num),
                      ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f", ev.ts_us,
                      ev.dur_us);
        os << num << ",\"pid\":1,\"tid\":" << r.tid << ",\"cat\":\"gapart\"}";
      }
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& rp : rings_) {
    Ring& r = *rp;
    std::lock_guard<std::mutex> rlk(r.mu);
    r.start = 0;
    r.count = 0;
  }
}

std::size_t Tracer::buffered_events() const {
  std::size_t total = 0;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& rp : rings_) {
    Ring& r = *rp;
    std::lock_guard<std::mutex> rlk(r.mu);
    total += r.count;
  }
  return total;
}

// ---------------------------------------------------------------- SpanSite

SpanSite& SpanSite::site(const char* name) {
  // One histogram per span *name* (shared across call sites), one SpanSite
  // per call site (cached there in a function-local static).  Leaked list
  // for the same static-destruction reason as the registry.
  static std::mutex* mu = new std::mutex();
  static std::vector<std::unique_ptr<SpanSite>>* sites =
      new std::vector<std::unique_ptr<SpanSite>>();
  ShardedHistogram& hist =
      TelemetryRegistry::instance().histogram(std::string("span.") + name);
  std::lock_guard<std::mutex> lk(*mu);
  sites->push_back(std::make_unique<SpanSite>(SpanSite{name, &hist}));
  return *sites->back();
}

ScopedSpan::~ScopedSpan() {
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start_).count();
  site_.hist->record(seconds);
  Tracer& tracer = Tracer::instance();
  if (tracer.enabled()) {
    tracer.record(site_.name, tracer.ts_us(start_), seconds * 1e6);
  }
}

double telemetry_now_seconds() {
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace gapart
