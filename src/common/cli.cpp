#include "common/cli.hpp"

#include <cstdlib>

#include "common/assert.hpp"

namespace gapart {

CliArgs::CliArgs(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        named_[arg.substr(2)] = {"", false};
      } else {
        named_[arg.substr(2, eq - 2)] = {arg.substr(eq + 1), false};
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  auto it = named_.find(name);
  if (it == named_.end()) return false;
  it->second.second = true;
  return true;
}

bool CliArgs::flag(const std::string& name, bool def) const {
  auto it = named_.find(name);
  if (it == named_.end()) return def;
  it->second.second = true;
  const std::string& v = it->second.first;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw Error("flag --" + name + " has non-boolean value '" + v + "'");
}

std::string CliArgs::str(const std::string& name,
                         const std::string& def) const {
  auto it = named_.find(name);
  if (it == named_.end()) return def;
  it->second.second = true;
  return it->second.first;
}

int CliArgs::integer(const std::string& name, int def) const {
  auto it = named_.find(name);
  if (it == named_.end()) return def;
  it->second.second = true;
  try {
    return std::stoi(it->second.first);
  } catch (const std::exception&) {
    throw Error("flag --" + name + " expects an integer, got '" +
                it->second.first + "'");
  }
}

double CliArgs::real(const std::string& name, double def) const {
  auto it = named_.find(name);
  if (it == named_.end()) return def;
  it->second.second = true;
  try {
    return std::stod(it->second.first);
  } catch (const std::exception&) {
    throw Error("flag --" + name + " expects a number, got '" +
                it->second.first + "'");
  }
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : named_) {
    if (!value.second) out.push_back(name);
  }
  return out;
}

bool quick_mode_enabled() {
  const char* v = std::getenv("GAPART_QUICK");
  return v != nullptr && v[0] != '\0';
}

}  // namespace gapart
