#include "baselines/kl.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/assert.hpp"

namespace gapart {

namespace {

struct Move {
  VertexId vertex = -1;
  PartId to = -1;
  double gain = 0.0;
};

/// Best (vertex, part) move among unlocked boundary vertices; gain may be
/// negative.  Returns vertex == -1 when no candidate exists.  Iterates the
/// incrementally maintained frontier (sorted into `order` for deterministic
/// tie-breaks) instead of scanning all V vertices, and probes each vertex
/// with the single-scan gain kernel.
Move best_move(const PartitionState& state, const std::vector<char>& locked,
               const FitnessParams& params, std::vector<VertexId>& order) {
  Move best;
  bool found = false;
  order.assign(state.frontier().begin(), state.frontier().end());
  std::sort(order.begin(), order.end());
  for (const VertexId v : order) {
    if (locked[static_cast<std::size_t>(v)]) continue;
    const BestMove bm = state.best_move(
        v, params, -std::numeric_limits<double>::infinity());
    if (bm.to < 0) continue;
    if (!found || bm.gain > best.gain) {
      best = {v, bm.to, bm.gain};
      found = true;
    }
  }
  return best;
}

}  // namespace

namespace {

KlResult kl_refine_impl(PartitionState& state, const FitnessParams& params,
                        const KlOptions& options) {
  GAPART_REQUIRE(options.max_passes >= 1, "need at least one pass");
  const Graph& g = state.graph();
  KlResult result;

  for (int pass = 0; pass < options.max_passes; ++pass) {
    ++result.passes;
    std::vector<char> locked(static_cast<std::size_t>(g.num_vertices()), 0);

    // Trial sequence: apply best moves (possibly negative), remember the
    // prefix with the highest cumulative gain.
    struct Applied {
      VertexId vertex;
      PartId from;
    };
    std::vector<Applied> trail;
    double cumulative = 0.0;
    double best_cumulative = 0.0;
    std::size_t best_prefix = 0;

    const int cap = options.max_moves_per_pass > 0
                        ? options.max_moves_per_pass
                        : g.num_vertices();
    std::vector<VertexId> order;
    for (int step = 0; step < cap; ++step) {
      const Move mv = best_move(state, locked, params, order);
      if (mv.vertex < 0) break;
      trail.push_back({mv.vertex, state.part_of(mv.vertex)});
      state.move(mv.vertex, mv.to);
      locked[static_cast<std::size_t>(mv.vertex)] = 1;
      cumulative += mv.gain;
      if (cumulative > best_cumulative + 1e-12) {
        best_cumulative = cumulative;
        best_prefix = trail.size();
      }
    }

    // Roll back to the best prefix.
    while (trail.size() > best_prefix) {
      state.move(trail.back().vertex, trail.back().from);
      trail.pop_back();
    }

    result.moves_applied += static_cast<int>(best_prefix);
    result.fitness_gain += best_cumulative;
    if (best_prefix == 0) break;  // pass produced nothing; converged
  }
  return result;
}

}  // namespace

KlResult kl_refine(PartitionState& state, const KlOptions& options) {
  return kl_refine_impl(state, options.fitness, options);
}

KlResult kl_refine(const EvalContext& eval, PartitionState& state,
                   const KlOptions& options) {
  const KlResult result = kl_refine_impl(state, eval.params(), options);
  eval.count_delta(result.moves_applied);
  return result;
}

}  // namespace gapart
