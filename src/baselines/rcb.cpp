#include "baselines/rcb.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "graph/recursive_split.hpp"

namespace gapart {

Assignment rcb_partition(const Graph& g, PartId num_parts, Rng& rng) {
  GAPART_REQUIRE(g.has_coordinates(),
                 "RCB requires vertex coordinates; this graph has none");
  return recursive_split_partition(
      g, num_parts, rng, [](const Graph& sub, Rng&) {
        const VertexId n = sub.num_vertices();
        std::vector<VertexId> order(static_cast<std::size_t>(n));
        std::iota(order.begin(), order.end(), 0);
        if (n <= 1) return order;

        // Pick the axis with the larger spread.
        double lox = sub.coordinate(0).x;
        double hix = lox;
        double loy = sub.coordinate(0).y;
        double hiy = loy;
        for (VertexId v = 1; v < n; ++v) {
          const Point2 p = sub.coordinate(v);
          lox = std::min(lox, p.x);
          hix = std::max(hix, p.x);
          loy = std::min(loy, p.y);
          hiy = std::max(hiy, p.y);
        }
        const bool split_x = (hix - lox) >= (hiy - loy);
        std::sort(order.begin(), order.end(),
                  [&sub, split_x](VertexId a, VertexId b) {
                    const Point2 pa = sub.coordinate(a);
                    const Point2 pb = sub.coordinate(b);
                    const double ka = split_x ? pa.x : pa.y;
                    const double kb = split_x ? pb.x : pb.y;
                    return ka != kb ? ka < kb : a < b;
                  });
        return order;
      });
}

}  // namespace gapart
