// Recursive Coordinate Bisection — one of the classical geometric heuristics
// enumerated in the paper's introduction.  Each level splits the current
// vertex set at the weighted median along its widest coordinate axis.
// Requires vertex coordinates.
#pragma once

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gapart {

Assignment rcb_partition(const Graph& g, PartId num_parts, Rng& rng);

}  // namespace gapart
