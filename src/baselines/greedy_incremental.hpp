// The deterministic incremental-assignment strawman named in the paper's
// conclusion: "a simple deterministic algorithm that assigns new nodes to
// the part to which most of its nearest neighbors belong".  The paper argues
// its GA beats this; the incremental benches measure exactly that claim.
#pragma once

#include "core/eval.hpp"
#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gapart {

/// Extends `previous` (an assignment of the first |previous| vertices of
/// `grown`) to all of `grown`: old vertices keep their part; new vertices
/// are processed most-constrained-first and take the majority part among
/// their already-assigned neighbours, ties (and isolated vertices) broken by
/// the lightest part, then lowest part id.
Assignment greedy_incremental_assign(const Graph& grown,
                                     const Assignment& previous,
                                     PartId num_parts);

/// Greedy extension plus its quality under an EvalContext's objective.
struct GreedyIncrementalResult {
  Assignment assignment;
  double fitness = 0.0;
};

/// EvalContext-aware variant: the graph/num_parts come from `eval` and the
/// final solution is evaluated (and counted) through it, so GA-vs-greedy
/// comparisons in the benches account both sides identically.
GreedyIncrementalResult greedy_incremental_assign(const EvalContext& eval,
                                                  const Assignment& previous);

}  // namespace gapart
