// Recursive Graph Bisection — the purely combinatorial classical heuristic
// from the paper's introduction: BFS levelization from a pseudo-peripheral
// vertex orders the vertices, and the level structure is split at the
// weighted median.  Needs no geometry and no spectra.
#pragma once

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gapart {

Assignment rgb_partition(const Graph& g, PartId num_parts, Rng& rng);

}  // namespace gapart
