#include "baselines/rgb.hpp"

#include "graph/recursive_split.hpp"

namespace gapart {

Assignment rgb_partition(const Graph& g, PartId num_parts, Rng& rng) {
  return recursive_split_partition(g, num_parts, rng,
                                   [](const Graph& sub, Rng&) {
                                     return component_packed_bfs_order(sub);
                                   });
}

}  // namespace gapart
