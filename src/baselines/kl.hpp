// Kernighan–Lin / Fiduccia–Mattheyses-style local refinement, generalized to
// k parts and to the paper's composite objectives.
//
// The paper lists "mincut based methods" among the classical heuristics; this
// module provides that family as a refinement baseline, and also powers the
// multilevel partitioner's uncoarsening phase.  Unlike the GA's hill climber
// (strictly improving moves only), a KL pass applies the best available move
// even when negative, locks the vertex, and finally rolls back to the best
// prefix — letting it escape shallow local optima.
#pragma once

#include "core/eval.hpp"
#include "graph/partition.hpp"

namespace gapart {

struct KlOptions {
  FitnessParams fitness;  ///< objective under which gains are measured
  int max_passes = 8;
  /// Cap on moves per pass (<=0: all boundary vertices may move once).
  int max_moves_per_pass = 0;
};

struct KlResult {
  int passes = 0;
  int moves_applied = 0;      ///< net moves kept after prefix rollback
  double fitness_gain = 0.0;  ///< total fitness improvement achieved
};

/// Refines `state` in place.  Never worsens fitness (a pass with no positive
/// prefix is fully rolled back).
KlResult kl_refine(PartitionState& state, const KlOptions& options = {});

/// EvalContext-aware refinement: gains are measured under eval.params()
/// (overriding options.fitness) and every move kept after rollback is
/// accounted as one delta evaluation.
KlResult kl_refine(const EvalContext& eval, PartitionState& state,
                   const KlOptions& options = {});

}  // namespace gapart
