#include "baselines/greedy_incremental.hpp"

#include <algorithm>
#include <functional>
#include <queue>
#include <vector>

#include "common/assert.hpp"
#include "graph/connectivity_scratch.hpp"

namespace gapart {

Assignment greedy_incremental_assign(const Graph& grown,
                                     const Assignment& previous,
                                     PartId num_parts) {
  const VertexId n = grown.num_vertices();
  const auto n_old = static_cast<VertexId>(previous.size());
  GAPART_REQUIRE(n_old <= n, "previous assignment larger than grown graph");
  GAPART_REQUIRE(num_parts >= 1, "need at least one part");
  for (PartId p : previous) {
    GAPART_REQUIRE(p >= 0 && p < num_parts, "previous assignment part ", p,
                   " out of range");
  }

  Assignment out(static_cast<std::size_t>(n), -1);
  std::copy(previous.begin(), previous.end(), out.begin());

  std::vector<double> part_weight(static_cast<std::size_t>(num_parts), 0.0);
  for (VertexId v = 0; v < n_old; ++v) {
    part_weight[static_cast<std::size_t>(out[static_cast<std::size_t>(v)])] +=
        grown.vertex_weight(v);
  }

  // Assigned-neighbour counts maintained incrementally: +1 to each pending
  // neighbour when a vertex gets its part, instead of rescanning every
  // pending adjacency list per pick.
  std::vector<std::int32_t> assigned_nbrs(static_cast<std::size_t>(n), 0);

  // Most-constrained-first ("most assigned neighbours, ties toward the
  // lowest vertex id") via a lazy bucket queue instead of an O(P) scan per
  // pick: buckets[c] is a min-heap (by id) of vertices pushed when their
  // count reached c.  Counts only grow, so every pending vertex keeps a
  // live entry in buckets[count(v)] and entries left in lower buckets are
  // stale — discarded at pop.  Total pushes are O(new + E), each pop
  // O(log), versus Theta(P^2) for the scan; the heap makes the pick the
  // lowest id in the highest bucket, bit-identical to the scan's tie-break.
  using MinIdHeap =
      std::priority_queue<VertexId, std::vector<VertexId>, std::greater<>>;
  std::vector<MinIdHeap> buckets;
  std::int32_t cur_max = 0;
  const auto push_bucket = [&](VertexId v, std::int32_t c) {
    if (static_cast<std::size_t>(c) >= buckets.size()) {
      buckets.resize(static_cast<std::size_t>(c) + 1);
    }
    buckets[static_cast<std::size_t>(c)].push(v);
    cur_max = std::max(cur_max, c);
  };
  for (VertexId v = n_old; v < n; ++v) {
    std::int32_t c = 0;
    for (VertexId u : grown.neighbors(v)) {
      c += out[static_cast<std::size_t>(u)] >= 0;
    }
    assigned_nbrs[static_cast<std::size_t>(v)] = c;
    push_bucket(v, c);
  }

  // Edge-weighted majority votes accumulate in an epoch-stamped scratch:
  // no per-vertex allocation, no O(num_parts) clear.
  ConnectivityScratch votes(static_cast<std::size_t>(num_parts));

  for (VertexId remaining = n - n_old; remaining > 0; --remaining) {
    VertexId v = -1;
    while (v < 0) {
      auto& bucket = buckets[static_cast<std::size_t>(cur_max)];
      if (bucket.empty()) {
        --cur_max;
        continue;
      }
      const VertexId cand = bucket.top();
      bucket.pop();
      if (out[static_cast<std::size_t>(cand)] < 0 &&
          assigned_nbrs[static_cast<std::size_t>(cand)] == cur_max) {
        v = cand;
      }
    }

    votes.begin();
    const auto nbrs = grown.neighbors(v);
    const auto wgts = grown.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const PartId p = out[static_cast<std::size_t>(nbrs[i])];
      if (p >= 0) votes.add(p, wgts[i]);
    }

    PartId choice = 0;
    for (PartId q = 1; q < num_parts; ++q) {
      const auto uq = static_cast<std::size_t>(q);
      const auto uc = static_cast<std::size_t>(choice);
      if (votes[q] > votes[choice] ||
          (votes[q] == votes[choice] && part_weight[uq] < part_weight[uc])) {
        choice = q;
      }
    }
    out[static_cast<std::size_t>(v)] = choice;
    part_weight[static_cast<std::size_t>(choice)] += grown.vertex_weight(v);
    for (VertexId u : nbrs) {
      if (out[static_cast<std::size_t>(u)] < 0) {
        push_bucket(u, ++assigned_nbrs[static_cast<std::size_t>(u)]);
      }
    }
  }
  return out;
}

GreedyIncrementalResult greedy_incremental_assign(const EvalContext& eval,
                                                  const Assignment& previous) {
  GreedyIncrementalResult result;
  result.assignment =
      greedy_incremental_assign(eval.graph(), previous, eval.num_parts());
  result.fitness = eval.evaluate(result.assignment);
  return result;
}

}  // namespace gapart
