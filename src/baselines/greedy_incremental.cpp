#include "baselines/greedy_incremental.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "graph/connectivity_scratch.hpp"

namespace gapart {

Assignment greedy_incremental_assign(const Graph& grown,
                                     const Assignment& previous,
                                     PartId num_parts) {
  const VertexId n = grown.num_vertices();
  const auto n_old = static_cast<VertexId>(previous.size());
  GAPART_REQUIRE(n_old <= n, "previous assignment larger than grown graph");
  GAPART_REQUIRE(num_parts >= 1, "need at least one part");
  for (PartId p : previous) {
    GAPART_REQUIRE(p >= 0 && p < num_parts, "previous assignment part ", p,
                   " out of range");
  }

  Assignment out(static_cast<std::size_t>(n), -1);
  std::copy(previous.begin(), previous.end(), out.begin());

  std::vector<double> part_weight(static_cast<std::size_t>(num_parts), 0.0);
  for (VertexId v = 0; v < n_old; ++v) {
    part_weight[static_cast<std::size_t>(out[static_cast<std::size_t>(v)])] +=
        grown.vertex_weight(v);
  }

  // Assigned-neighbour counts maintained incrementally: +1 to each pending
  // neighbour when a vertex gets its part, instead of rescanning every
  // pending adjacency list per pick.
  std::vector<std::int32_t> assigned_nbrs(static_cast<std::size_t>(n), 0);
  std::vector<VertexId> pending;
  for (VertexId v = n_old; v < n; ++v) {
    std::int32_t c = 0;
    for (VertexId u : grown.neighbors(v)) {
      c += out[static_cast<std::size_t>(u)] >= 0;
    }
    assigned_nbrs[static_cast<std::size_t>(v)] = c;
    pending.push_back(v);
  }

  // Edge-weighted majority votes accumulate in an epoch-stamped scratch:
  // no per-vertex allocation, no O(num_parts) clear.
  ConnectivityScratch votes(static_cast<std::size_t>(num_parts));

  while (!pending.empty()) {
    // Most-constrained-first: the pending vertex with the most assigned
    // neighbours (stable tie-break on id for determinism).
    std::size_t pick = 0;
    std::int32_t pick_count = -1;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const std::int32_t c =
          assigned_nbrs[static_cast<std::size_t>(pending[i])];
      if (c > pick_count) {
        pick_count = c;
        pick = i;
      }
    }
    const VertexId v = pending[pick];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));

    votes.begin();
    const auto nbrs = grown.neighbors(v);
    const auto wgts = grown.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const PartId p = out[static_cast<std::size_t>(nbrs[i])];
      if (p >= 0) votes.add(p, wgts[i]);
    }

    PartId choice = 0;
    for (PartId q = 1; q < num_parts; ++q) {
      const auto uq = static_cast<std::size_t>(q);
      const auto uc = static_cast<std::size_t>(choice);
      if (votes[q] > votes[choice] ||
          (votes[q] == votes[choice] && part_weight[uq] < part_weight[uc])) {
        choice = q;
      }
    }
    out[static_cast<std::size_t>(v)] = choice;
    part_weight[static_cast<std::size_t>(choice)] += grown.vertex_weight(v);
    for (VertexId u : nbrs) {
      if (out[static_cast<std::size_t>(u)] < 0) {
        ++assigned_nbrs[static_cast<std::size_t>(u)];
      }
    }
  }
  return out;
}

GreedyIncrementalResult greedy_incremental_assign(const EvalContext& eval,
                                                  const Assignment& previous) {
  GreedyIncrementalResult result;
  result.assignment =
      greedy_incremental_assign(eval.graph(), previous, eval.num_parts());
  result.fitness = eval.evaluate(result.assignment);
  return result;
}

}  // namespace gapart
