#include "spectral/rsb.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "graph/components.hpp"
#include "graph/recursive_split.hpp"
#include "spectral/fiedler.hpp"

namespace gapart {

namespace {

/// Spectral split order: Fiedler-value order when the subgraph is connected,
/// component-packed BFS order otherwise (the Fiedler vector is undefined for
/// disconnected graphs).
std::vector<VertexId> spectral_order(const Graph& g, Rng& rng,
                                     const RsbOptions& options) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  if (n <= 2) return order;

  if (!is_connected(g)) return component_packed_bfs_order(g);

  const auto f = fiedler_vector(g, rng, options.fiedler);
  std::sort(order.begin(), order.end(), [&f](VertexId a, VertexId b) {
    const double fa = f[static_cast<std::size_t>(a)];
    const double fb = f[static_cast<std::size_t>(b)];
    return fa != fb ? fa < fb : a < b;
  });
  return order;
}

}  // namespace

Assignment rsb_partition(const Graph& g, PartId num_parts, Rng& rng,
                         const RsbOptions& options) {
  return recursive_split_partition(
      g, num_parts, rng, [&options](const Graph& sub, Rng& sub_rng) {
        return spectral_order(sub, sub_rng, options);
      });
}

Assignment spectral_bisect(const Graph& g, Rng& rng,
                           const RsbOptions& options) {
  return rsb_partition(g, 2, rng, options);
}

}  // namespace gapart
