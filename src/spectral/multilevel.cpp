#include "spectral/multilevel.hpp"

#include <algorithm>

#include "baselines/kl.hpp"
#include "common/assert.hpp"
#include "graph/coarsen.hpp"
#include "graph/partition.hpp"

namespace gapart {

Assignment multilevel_partition(const Graph& g, PartId num_parts, Rng& rng,
                                const MultilevelOptions& options) {
  GAPART_REQUIRE(num_parts >= 1, "need at least one part");
  GAPART_REQUIRE(g.num_vertices() >= num_parts, "fewer vertices than parts");

  const VertexId target = std::max<VertexId>(
      num_parts * options.coarse_vertices_per_part, num_parts);
  const auto hierarchy = coarsen_to(g, target, rng);

  Assignment assignment =
      rsb_partition(hierarchy.coarsest(g), num_parts, rng, options.rsb);

  KlOptions kl;
  kl.fitness = options.fitness;
  kl.max_passes = options.kl_passes_per_level;

  // Refine the coarsest solution, then project up through the hierarchy,
  // refining after every prolongation (the shared uncoarsening driver).
  return uncoarsen_with_refinement(
      g, hierarchy, std::move(assignment), num_parts,
      [&kl](PartitionState& state, std::size_t) { kl_refine(state, kl); });
}

}  // namespace gapart
