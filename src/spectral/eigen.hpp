// Dense and tridiagonal symmetric eigensolvers.
//
// jacobi_eigen: classic cyclic Jacobi rotations — O(n^3) but foolproof; used
// as the exact reference path of the Fiedler computation (small graphs, RSB
// recursion leaves, validation of Lanczos).
//
// tridiagonal_eigen: implicit-shift QL ("tql2") for the projected tridiagonal
// problems produced by the Lanczos iteration.
#pragma once

#include <vector>

namespace gapart {

/// Eigendecomposition of a symmetric matrix; eigenvalues ascending.
/// `vectors` is row-major n x n with COLUMN j holding the eigenvector of
/// values[j] (i.e. vectors[i*n + j] = component i of eigenvector j).
struct EigenDecomposition {
  std::vector<double> values;
  std::vector<double> vectors;
  int n = 0;

  /// Copy of eigenvector j as a contiguous vector.
  std::vector<double> eigenvector(int j) const;
};

/// Cyclic Jacobi on row-major symmetric `a` (n x n).  The input matrix is
/// taken by value and destroyed.  Throws on non-finite input.
EigenDecomposition jacobi_eigen(std::vector<double> a, int n,
                                int max_sweeps = 64, double tol = 1e-12);

/// Eigendecomposition of the symmetric tridiagonal matrix with diagonal
/// `diag` (size m) and off-diagonal `off` (size m-1), ascending eigenvalues,
/// same vector layout as EigenDecomposition.
EigenDecomposition tridiagonal_eigen(std::vector<double> diag,
                                     std::vector<double> off);

}  // namespace gapart
