// Multilevel partitioning (Barnard & Simon style): contract the graph with
// heavy-edge matching, partition the coarsest level with RSB, then project
// back up, refining with KL at every level.
//
// This is the paper's reference [13] and the machinery its conclusion
// recommends ("a prior graph contraction step would allow these techniques
// to be applied to graphs much larger"); the GA front-end reuses the same
// hierarchy through core/contracted_ga.
#pragma once

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/types.hpp"
#include "spectral/rsb.hpp"

namespace gapart {

struct MultilevelOptions {
  /// Stop coarsening at roughly this many vertices (scaled by part count).
  VertexId coarse_vertices_per_part = 25;
  RsbOptions rsb;
  int kl_passes_per_level = 4;
  FitnessParams fitness;  ///< objective for the KL refinement
};

Assignment multilevel_partition(const Graph& g, PartId num_parts, Rng& rng,
                                const MultilevelOptions& options = {});

}  // namespace gapart
