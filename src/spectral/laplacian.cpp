#include "spectral/laplacian.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace gapart {

void apply_laplacian(const Graph& g, std::span<const double> x,
                     std::span<double> y) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  GAPART_ASSERT(x.size() == n && y.size() == n);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    double acc = 0.0;
    double deg = 0.0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      acc += wgts[i] * x[static_cast<std::size_t>(nbrs[i])];
      deg += wgts[i];
    }
    y[static_cast<std::size_t>(v)] =
        deg * x[static_cast<std::size_t>(v)] - acc;
  }
}

std::vector<double> dense_laplacian(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> L(n * n, 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    double deg = 0.0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      L[static_cast<std::size_t>(v) * n + static_cast<std::size_t>(nbrs[i])] =
          -wgts[i];
      deg += wgts[i];
    }
    L[static_cast<std::size_t>(v) * n + static_cast<std::size_t>(v)] = deg;
  }
  return L;
}

double rayleigh_quotient(const Graph& g, std::span<const double> x) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  GAPART_ASSERT(x.size() == n);
  std::vector<double> y(n);
  apply_laplacian(g, x, y);
  const double den = dot(x, x);
  GAPART_REQUIRE(den > 0.0, "Rayleigh quotient of zero vector");
  return dot(x, y) / den;
}

void deflate_constant(std::span<double> x) {
  if (x.empty()) return;
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  for (double& v : x) v -= mean;
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double dot(std::span<const double> x, std::span<const double> y) {
  GAPART_ASSERT(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  GAPART_ASSERT(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

}  // namespace gapart
