// Recursive Spectral Bisection (Pothen, Simon & Liou 1990; Simon 1991) —
// the strongest classical baseline the paper compares its GA against.
//
// Each recursion level sorts the (sub)graph's vertices by their Fiedler
// vector component and splits at the weighted median (proportionally for odd
// part counts).  Disconnected subgraphs — possible after earlier splits —
// are handled by packing whole components, using BFS order inside the
// component that straddles the split point.
#pragma once

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "graph/types.hpp"
#include "spectral/fiedler.hpp"

namespace gapart {

struct RsbOptions {
  FiedlerOptions fiedler;
};

/// Partitions `g` into `num_parts` parts.  num_parts may be any value >= 1
/// (powers of two reproduce the paper's setting).
Assignment rsb_partition(const Graph& g, PartId num_parts, Rng& rng,
                         const RsbOptions& options = {});

/// Single spectral bisection step exposed for tests: returns the side
/// (0/1) of each vertex, with ceil(weight/2) on side 0.
Assignment spectral_bisect(const Graph& g, Rng& rng,
                           const RsbOptions& options = {});

}  // namespace gapart
