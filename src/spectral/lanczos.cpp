#include "spectral/lanczos.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "spectral/eigen.hpp"
#include "spectral/laplacian.hpp"

namespace gapart {

namespace {

/// Removes components along the constant vector and all columns of `basis`,
/// then returns the remaining norm.
double orthogonalize(std::span<double> w,
                     const std::vector<std::vector<double>>& basis) {
  // Two passes of classical Gram-Schmidt ("twice is enough").
  for (int pass = 0; pass < 2; ++pass) {
    deflate_constant(w);
    for (const auto& v : basis) {
      const double proj = dot(w, v);
      axpy(-proj, v, w);
    }
  }
  return norm2(w);
}

}  // namespace

LanczosResult fiedler_pair_lanczos(const Graph& g, Rng& rng,
                                   const LanczosOptions& options) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  GAPART_REQUIRE(n >= 2, "Fiedler pair needs at least two vertices");
  GAPART_REQUIRE(options.max_steps >= 2, "need at least two Lanczos steps");

  LanczosResult result;

  // Start vector: random, deflated against the kernel.
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);

  for (int restart = 0; restart <= options.max_restarts; ++restart) {
    result.restarts = restart;

    std::vector<std::vector<double>> basis;  // v_1 .. v_m
    std::vector<double> alpha;
    std::vector<double> beta;  // beta_j couples v_j and v_{j+1}

    std::vector<double> v = x;
    {
      const double nv = orthogonalize(v, basis);
      if (nv <= 1e-14) {
        // Degenerate start (e.g. x parallel to ones); re-randomize.
        for (auto& e : v) e = rng.uniform(-1.0, 1.0);
        const double nv2 = orthogonalize(v, basis);
        GAPART_REQUIRE(nv2 > 1e-14, "cannot build non-trivial start vector");
        scale(1.0 / nv2, v);
      } else {
        scale(1.0 / nv, v);
      }
    }
    basis.push_back(v);

    std::vector<double> w(n);
    const int m_cap =
        std::min<int>(options.max_steps, static_cast<int>(n) - 1);
    for (int j = 0; j < m_cap; ++j) {
      apply_laplacian(g, basis.back(), w);
      const double a = dot(w, basis.back());
      alpha.push_back(a);
      // Full reorthogonalization (subtracts alpha*v_j, beta*v_{j-1} and any
      // drift, plus the kernel component).
      const double b = orthogonalize(w, basis);
      if (b <= 1e-12) break;  // happy breakdown: invariant subspace found
      beta.push_back(b);
      std::vector<double> next = w;
      scale(1.0 / b, next);
      basis.push_back(std::move(next));
    }
    if (alpha.size() < basis.size()) {
      // The loop ended with one basis vector not yet processed; compute its
      // diagonal entry so the tridiagonal system is square.
      apply_laplacian(g, basis.back(), w);
      alpha.push_back(dot(w, basis.back()));
    }

    const auto m = alpha.size();
    GAPART_ASSERT(beta.size() + 1 == m);
    auto ed = tridiagonal_eigen(alpha, beta);

    // Smallest Ritz pair approximates lambda_2 (kernel deflated).
    const auto ritz = ed.eigenvector(0);
    std::vector<double> y(n, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
      axpy(ritz[j], basis[j], y);
    }
    deflate_constant(y);
    const double ny = norm2(y);
    if (ny > 1e-14) scale(1.0 / ny, y);

    const double theta = rayleigh_quotient(g, y);
    apply_laplacian(g, y, w);
    axpy(-theta, y, w);
    const double residual = norm2(w) / std::max(theta, 1.0);

    result.steps += static_cast<int>(m);
    result.pair.value = theta;
    result.pair.vector = y;
    result.residual = residual;
    if (residual <= options.tolerance) {
      result.converged = true;
      return result;
    }
    x = std::move(y);  // restart from the best Ritz vector
  }
  return result;
}

}  // namespace gapart
