// Lanczos iteration for the Fiedler (second smallest Laplacian) eigenpair.
//
// The constant vector — the Laplacian's kernel on a connected graph — is
// deflated from the start vector and from every Lanczos vector, so the
// smallest Ritz value of the projected tridiagonal problem approximates
// lambda_2.  Full reorthogonalization keeps the basis clean (graphs here are
// small enough that the O(n m^2) cost is irrelevant); restarts with the best
// Ritz vector handle slow convergence.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace gapart {

struct LanczosOptions {
  int max_steps = 150;      ///< Krylov dimension per restart
  int max_restarts = 8;     ///< restart budget
  double tolerance = 1e-8;  ///< relative residual ||Lx - thx|| / max(th,1)
};

struct EigenPair {
  double value = 0.0;
  std::vector<double> vector;
};

struct LanczosResult {
  EigenPair pair;
  int steps = 0;       ///< total Lanczos steps across restarts
  int restarts = 0;
  double residual = 0.0;
  bool converged = false;
};

/// Computes the Fiedler pair of connected graph `g`.  Throws on graphs with
/// fewer than 2 vertices; behaviour on disconnected graphs returns the
/// smallest non-deflated pair (lambda ~ 0), which RSB guards against.
LanczosResult fiedler_pair_lanczos(const Graph& g, Rng& rng,
                                   const LanczosOptions& options = {});

}  // namespace gapart
