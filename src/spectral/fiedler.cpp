#include "spectral/fiedler.hpp"

#include "common/assert.hpp"
#include "graph/components.hpp"
#include "spectral/eigen.hpp"
#include "spectral/laplacian.hpp"

namespace gapart {

namespace {

EigenPair fiedler_pair(const Graph& g, Rng& rng,
                       const FiedlerOptions& options) {
  const VertexId n = g.num_vertices();
  GAPART_REQUIRE(n >= 2, "Fiedler vector needs at least two vertices");
  GAPART_REQUIRE(is_connected(g),
                 "Fiedler vector is only defined for connected graphs");

  if (n <= options.dense_threshold) {
    auto ed = jacobi_eigen(dense_laplacian(g), static_cast<int>(n));
    EigenPair pair;
    pair.value = ed.values[1];  // values[0] ~ 0 (kernel)
    pair.vector = ed.eigenvector(1);
    return pair;
  }
  auto res = fiedler_pair_lanczos(g, rng, options.lanczos);
  return res.pair;
}

}  // namespace

std::vector<double> fiedler_vector(const Graph& g, Rng& rng,
                                   const FiedlerOptions& options) {
  return fiedler_pair(g, rng, options).vector;
}

double algebraic_connectivity(const Graph& g, Rng& rng,
                              const FiedlerOptions& options) {
  return fiedler_pair(g, rng, options).value;
}

}  // namespace gapart
