// Fiedler vector computation with automatic method dispatch: exact dense
// Jacobi for small graphs, Lanczos for the rest.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "spectral/lanczos.hpp"

namespace gapart {

struct FiedlerOptions {
  /// Graphs at or below this size use the dense exact path.
  VertexId dense_threshold = 96;
  LanczosOptions lanczos;
};

/// Fiedler vector (eigenvector of the second smallest Laplacian eigenvalue)
/// of connected graph `g`.  Throws for |V| < 2 or disconnected graphs.
std::vector<double> fiedler_vector(const Graph& g, Rng& rng,
                                   const FiedlerOptions& options = {});

/// Second smallest Laplacian eigenvalue (algebraic connectivity).
double algebraic_connectivity(const Graph& g, Rng& rng,
                              const FiedlerOptions& options = {});

}  // namespace gapart
