// Graph Laplacian operators.
//
// L = D - A with edge weights; the Fiedler vector (eigenvector of the second
// smallest eigenvalue) drives recursive spectral bisection (Pothen, Simon &
// Liou), the baseline the paper measures its GA against.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace gapart {

/// y = L x in O(V + E); x and y must have size |V| and must not alias.
void apply_laplacian(const Graph& g, std::span<const double> x,
                     std::span<double> y);

/// Dense row-major |V| x |V| Laplacian (for the exact eigensolver path and
/// for tests).
std::vector<double> dense_laplacian(const Graph& g);

/// x^T L x / x^T x; x must be nonzero.
double rayleigh_quotient(const Graph& g, std::span<const double> x);

/// Removes the component of x along the all-ones vector (the Laplacian's
/// trivial kernel for connected graphs) in place.
void deflate_constant(std::span<double> x);

/// Euclidean norm / dot helpers used by the iterative solvers.
double norm2(std::span<const double> x);
double dot(std::span<const double> x, std::span<const double> y);
void axpy(double alpha, std::span<const double> x, std::span<double> y);
void scale(double alpha, std::span<double> x);

}  // namespace gapart
