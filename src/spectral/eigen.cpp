#include "spectral/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.hpp"

namespace gapart {

std::vector<double> EigenDecomposition::eigenvector(int j) const {
  GAPART_REQUIRE(j >= 0 && j < n, "eigenvector index out of range");
  std::vector<double> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] =
        vectors[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(j)];
  }
  return v;
}

namespace {

/// Sorts eigenpairs ascending by value, permuting vector columns to match.
void sort_eigenpairs(EigenDecomposition& ed) {
  const auto n = static_cast<std::size_t>(ed.n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&ed](std::size_t a, std::size_t b) {
    return ed.values[a] < ed.values[b];
  });
  std::vector<double> values(n);
  std::vector<double> vectors(n * n);
  for (std::size_t j = 0; j < n; ++j) {
    values[j] = ed.values[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      vectors[i * n + j] = ed.vectors[i * n + order[j]];
    }
  }
  ed.values = std::move(values);
  ed.vectors = std::move(vectors);
}

}  // namespace

EigenDecomposition jacobi_eigen(std::vector<double> a, int n, int max_sweeps,
                                double tol) {
  GAPART_REQUIRE(n >= 1, "matrix dimension must be positive");
  const auto un = static_cast<std::size_t>(n);
  GAPART_REQUIRE(a.size() == un * un, "matrix size mismatch");
  for (double v : a) {
    GAPART_REQUIRE(std::isfinite(v), "non-finite matrix entry");
  }

  std::vector<double> V(un * un, 0.0);
  for (std::size_t i = 0; i < un; ++i) V[i * un + i] = 1.0;

  auto off_norm = [&a, un]() {
    double s = 0.0;
    for (std::size_t p = 0; p < un; ++p) {
      for (std::size_t q = p + 1; q < un; ++q) {
        s += 2.0 * a[p * un + q] * a[p * un + q];
      }
    }
    return std::sqrt(s);
  };
  double scale_ref = 0.0;
  for (std::size_t i = 0; i < un; ++i) {
    scale_ref = std::max(scale_ref, std::abs(a[i * un + i]));
  }
  scale_ref = std::max(scale_ref, 1.0);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_norm() <= tol * scale_ref) break;
    for (std::size_t p = 0; p + 1 < un; ++p) {
      for (std::size_t q = p + 1; q < un; ++q) {
        const double apq = a[p * un + q];
        if (std::abs(apq) <= 1e-300) continue;
        const double theta = (a[q * un + q] - a[p * un + p]) / (2.0 * apq);
        const double t =
            (theta >= 0.0 ? 1.0 : -1.0) /
            (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // A <- J^T A J applied as column then row rotation.
        for (std::size_t k = 0; k < un; ++k) {
          const double akp = a[k * un + p];
          const double akq = a[k * un + q];
          a[k * un + p] = c * akp - s * akq;
          a[k * un + q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < un; ++k) {
          const double apk = a[p * un + k];
          const double aqk = a[q * un + k];
          a[p * un + k] = c * apk - s * aqk;
          a[q * un + k] = s * apk + c * aqk;
        }
        // V <- V J accumulates eigenvectors in columns.
        for (std::size_t k = 0; k < un; ++k) {
          const double vkp = V[k * un + p];
          const double vkq = V[k * un + q];
          V[k * un + p] = c * vkp - s * vkq;
          V[k * un + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenDecomposition ed;
  ed.n = n;
  ed.values.resize(un);
  for (std::size_t i = 0; i < un; ++i) ed.values[i] = a[i * un + i];
  ed.vectors = std::move(V);
  sort_eigenpairs(ed);
  return ed;
}

EigenDecomposition tridiagonal_eigen(std::vector<double> diag,
                                     std::vector<double> off) {
  const auto m = static_cast<int>(diag.size());
  GAPART_REQUIRE(m >= 1, "empty tridiagonal matrix");
  GAPART_REQUIRE(off.size() + 1 == diag.size(),
                 "off-diagonal must have m-1 entries");
  const auto um = static_cast<std::size_t>(m);

  // EISPACK tql2: d = diagonal, e = subdiagonal shifted so e[i] couples
  // d[i] and d[i+1]; e[m-1] is scratch.
  std::vector<double>& d = diag;
  std::vector<double> e(um, 0.0);
  std::copy(off.begin(), off.end(), e.begin());

  std::vector<double> z(um * um, 0.0);
  for (std::size_t i = 0; i < um; ++i) z[i * um + i] = 1.0;

  auto sign_of = [](double a, double b) { return b >= 0.0 ? std::abs(a) : -std::abs(a); };

  for (int l = 0; l < m; ++l) {
    int iter = 0;
    int mm = l;
    do {
      for (mm = l; mm < m - 1; ++mm) {
        const double dd = std::abs(d[static_cast<std::size_t>(mm)]) +
                          std::abs(d[static_cast<std::size_t>(mm) + 1]);
        if (std::abs(e[static_cast<std::size_t>(mm)]) <=
            1e-15 * std::max(dd, 1e-300)) {
          break;
        }
      }
      if (mm != l) {
        GAPART_REQUIRE(++iter <= 64, "tql2 failed to converge");
        double g = (d[static_cast<std::size_t>(l) + 1] -
                    d[static_cast<std::size_t>(l)]) /
                   (2.0 * e[static_cast<std::size_t>(l)]);
        double r = std::hypot(g, 1.0);
        g = d[static_cast<std::size_t>(mm)] - d[static_cast<std::size_t>(l)] +
            e[static_cast<std::size_t>(l)] / (g + sign_of(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        int i = mm - 1;
        for (; i >= l; --i) {
          double f = s * e[static_cast<std::size_t>(i)];
          const double b = c * e[static_cast<std::size_t>(i)];
          r = std::hypot(f, g);
          e[static_cast<std::size_t>(i) + 1] = r;
          if (r == 0.0) {
            d[static_cast<std::size_t>(i) + 1] -= p;
            e[static_cast<std::size_t>(mm)] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[static_cast<std::size_t>(i) + 1] - p;
          r = (d[static_cast<std::size_t>(i)] - g) * s + 2.0 * c * b;
          p = s * r;
          d[static_cast<std::size_t>(i) + 1] = g + p;
          g = c * r - b;
          for (int k = 0; k < m; ++k) {
            f = z[static_cast<std::size_t>(k) * um +
                  static_cast<std::size_t>(i) + 1];
            z[static_cast<std::size_t>(k) * um + static_cast<std::size_t>(i) +
              1] = s * z[static_cast<std::size_t>(k) * um +
                         static_cast<std::size_t>(i)] +
                   c * f;
            z[static_cast<std::size_t>(k) * um + static_cast<std::size_t>(i)] =
                c * z[static_cast<std::size_t>(k) * um +
                      static_cast<std::size_t>(i)] -
                s * f;
          }
        }
        if (r == 0.0 && i >= l) continue;
        d[static_cast<std::size_t>(l)] -= p;
        e[static_cast<std::size_t>(l)] = g;
        e[static_cast<std::size_t>(mm)] = 0.0;
      }
    } while (mm != l);
  }

  EigenDecomposition ed;
  ed.n = m;
  ed.values = std::move(d);
  ed.vectors = std::move(z);
  sort_eigenpairs(ed);
  return ed;
}

}  // namespace gapart
