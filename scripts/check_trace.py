#!/usr/bin/env python3
"""Validates a Chrome trace_event JSON file emitted by the gapart tracer.

Checks (all must pass, exit 0; any failure prints a reason and exits 1):

  * the file parses as JSON with a non-empty ``traceEvents`` list;
  * every event carries the complete-event schema chrome://tracing needs:
    ``name`` (non-empty string), ``ph`` == "X", numeric ``ts`` >= 0,
    numeric ``dur`` >= 0, integer ``pid`` and ``tid``;
  * per tid, events nest properly: sorted by start time, every event either
    contains the next one or is disjoint from it (no partially overlapping
    spans on one thread — the invariant the flame-graph view requires).

Usage:  scripts/check_trace.py trace.json [--min-events=N]
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_schema(events: list) -> None:
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object: {ev!r}")
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            fail(f"event {i} has no usable name: {ev!r}")
        if ev.get("ph") != "X":
            fail(f"event {i} ({name}) has ph={ev.get('ph')!r}, expected 'X'")
        for field in ("ts", "dur"):
            v = ev.get(field)
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                fail(f"event {i} ({name}) has non-numeric {field}: {v!r}")
            if v < 0:
                fail(f"event {i} ({name}) has negative {field}: {v}")
        for field in ("pid", "tid"):
            v = ev.get(field)
            if not isinstance(v, int) or isinstance(v, bool):
                fail(f"event {i} ({name}) has non-integer {field}: {v!r}")


def check_nesting(events: list) -> None:
    """Spans on one thread must strictly nest (contain or be disjoint)."""
    by_tid: dict = {}
    for ev in events:
        by_tid.setdefault(ev["tid"], []).append(ev)
    eps = 1e-2  # 10ns in trace microseconds: covers the ns-grid rounding
    # of the exporter's %.3f timestamps (each endpoint 0.5ns, both ends)
    for tid, evs in sorted(by_tid.items()):
        # Sort by start ascending, then by end descending so a parent
        # precedes the children that start at the same timestamp.
        evs.sort(key=lambda e: (e["ts"], -(e["ts"] + e["dur"])))
        stack: list = []  # end timestamps of currently open spans
        for ev in evs:
            start, end = ev["ts"], ev["ts"] + ev["dur"]
            while stack and stack[-1] <= start + eps:
                stack.pop()
            if stack and end > stack[-1] + eps:
                fail(
                    f"tid {tid}: span '{ev['name']}' "
                    f"[{start}, {end}) overlaps an enclosing span ending at "
                    f"{stack[-1]} without nesting inside it"
                )
            stack.append(end)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace_event JSON file")
    ap.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="minimum number of traceEvents required (default 1)",
    )
    args = ap.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args.trace}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("no traceEvents array")
    if len(events) < args.min_events:
        fail(f"only {len(events)} traceEvents, expected >= {args.min_events}")

    check_schema(events)
    check_nesting(events)

    tids = {ev["tid"] for ev in events}
    names = {ev["name"] for ev in events}
    print(
        f"check_trace: OK: {len(events)} events, {len(tids)} threads, "
        f"{len(names)} span names"
    )


if __name__ == "__main__":
    main()
