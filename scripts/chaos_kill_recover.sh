#!/usr/bin/env bash
# Chaos smoke: kill -9 a durable streaming session at arbitrary points and
# assert zero lost acknowledged deltas.
#
# Each cycle starts (or resumes) examples/example_durable_service streaming
# deltas into a WAL directory, SIGKILLs it after a random delay, then runs
# the binary's --recover audit.  The durability contract under test: every
# "ACK <epoch>" the process managed to print was fsynced to the log before
# it was printed, so the recovered epoch must never be smaller than the last
# printed ACK — a torn final record can only ever be an UNacknowledged delta.
#
# With a replicated_service binary as the third argument, each cycle also
# runs a leader/follower pair over a Unix socket, kill -9s the LEADER
# mid-stream, and waits for the follower to promote itself.  The replication
# contract: "ACK <e>" is printed only after the follower acknowledged epoch
# e, so the promoted epoch must never be smaller than the last printed ACK,
# and the promoted content digest must equal the never-crashed --reference
# replay at the same epoch (bit-identical failover, zero lost acked deltas).
#
#   scripts/chaos_kill_recover.sh <example_durable_service binary> [cycles] \
#       [example_replicated_service binary]
set -euo pipefail

BIN=${1:?usage: chaos_kill_recover.sh <example_durable_service binary> [cycles] [example_replicated_service binary]}
CYCLES=${2:-5}
REPBIN=${3:-}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
WAL="$WORK/wal"

for i in $(seq 1 "$CYCLES"); do
  LOG="$WORK/run-$i.log"
  "$BIN" --dir="$WAL" --interval-ms=1 >"$LOG" 2>&1 &
  pid=$!
  # 0.2s..0.6s of streaming before the kill: enough to get past session
  # creation and land the SIGKILL anywhere in the append/compact cycle.
  sleep "0.$((RANDOM % 5 + 2))"
  kill -9 "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true

  ack=$(grep -oE 'ACK [0-9]+' "$LOG" | tail -1 | cut -d' ' -f2 || true)
  ack=${ack:-0}

  audit=$("$BIN" --dir="$WAL" --recover)
  epoch=$(sed -n 's/.*epoch=\([0-9]*\).*/\1/p' <<<"$audit" | head -1)
  epoch=${epoch:-0}
  echo "cycle $i: last printed ack=$ack, $audit"

  if [ "$epoch" -lt "$ack" ]; then
    echo "FAIL: recovered epoch $epoch < acknowledged epoch $ack (lost acked delta)"
    exit 1
  fi
done

echo "PASS: $CYCLES kill -9 cycles, zero lost acknowledged deltas"

[ -n "$REPBIN" ] || exit 0

# ---------------------------------------------------------------- failover --
# The reference digests are a pure function of the trace; compute them once.
REF="$WORK/reference.txt"
"$REPBIN" --reference --updates=2000 >"$REF"

for i in $(seq 1 "$CYCLES"); do
  SOCK="$WORK/rep-$i.sock"
  LDIR="$WORK/leader-$i"
  FDIR="$WORK/follower-$i"
  LLOG="$WORK/lead-$i.log"
  FLOG="$WORK/follow-$i.log"

  "$REPBIN" --follow --socket="$SOCK" --dir="$FDIR" >"$FLOG" 2>&1 &
  fpid=$!
  sleep 0.2
  "$REPBIN" --lead --socket="$SOCK" --dir="$LDIR" --updates=2000 \
      --interval-ms=1 >"$LLOG" 2>&1 &
  lpid=$!
  # 0.3s..0.9s of replicated streaming, then SIGKILL the leader mid-flight.
  sleep "0.$((RANDOM % 7 + 3))"
  kill -9 "$lpid" 2>/dev/null || true
  wait "$lpid" 2>/dev/null || true
  # EOF on the socket makes the follower drain, promote, and exit on its own.
  if ! wait "$fpid"; then
    echo "FAIL: follower exited non-zero (divergence or error)"
    cat "$FLOG"
    exit 1
  fi

  ack=$(grep -oE 'ACK [0-9]+' "$LLOG" | tail -1 | cut -d' ' -f2 || true)
  ack=${ack:-0}
  promoted=$(grep PROMOTED "$FLOG" | head -1)
  epoch=$(sed -n 's/.*epoch=\([0-9]*\).*/\1/p' <<<"$promoted" | head -1)
  digest=$(sed -n 's/.*digest=\([0-9]*\).*/\1/p' <<<"$promoted" | head -1)
  epoch=${epoch:-0}
  echo "failover cycle $i: last follower-acked=$ack, ${promoted:-NO PROMOTION}"

  if [ -z "$promoted" ] || [ "$epoch" -lt "$ack" ]; then
    echo "FAIL: promoted epoch ${epoch} < acknowledged epoch $ack (lost acked delta)"
    exit 1
  fi
  want=$(awk -v e="$epoch" '$2 == e { print $3 }' "$REF")
  if [ "$digest" != "$want" ]; then
    echo "FAIL: promoted digest $digest != reference $want at epoch $epoch (diverged)"
    exit 1
  fi
done

echo "PASS: $CYCLES leader kill -9 failovers, promoted replicas bit-identical to reference"
