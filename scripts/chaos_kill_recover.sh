#!/usr/bin/env bash
# Chaos smoke: kill -9 a durable streaming session at arbitrary points and
# assert zero lost acknowledged deltas.
#
# Each cycle starts (or resumes) examples/example_durable_service streaming
# deltas into a WAL directory, SIGKILLs it after a random delay, then runs
# the binary's --recover audit.  The durability contract under test: every
# "ACK <epoch>" the process managed to print was fsynced to the log before
# it was printed, so the recovered epoch must never be smaller than the last
# printed ACK — a torn final record can only ever be an UNacknowledged delta.
#
#   scripts/chaos_kill_recover.sh <example_durable_service binary> [cycles]
set -euo pipefail

BIN=${1:?usage: chaos_kill_recover.sh <example_durable_service binary> [cycles]}
CYCLES=${2:-5}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
WAL="$WORK/wal"

for i in $(seq 1 "$CYCLES"); do
  LOG="$WORK/run-$i.log"
  "$BIN" --dir="$WAL" --interval-ms=1 >"$LOG" 2>&1 &
  pid=$!
  # 0.2s..0.6s of streaming before the kill: enough to get past session
  # creation and land the SIGKILL anywhere in the append/compact cycle.
  sleep "0.$((RANDOM % 5 + 2))"
  kill -9 "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true

  ack=$(grep -oE 'ACK [0-9]+' "$LOG" | tail -1 | cut -d' ' -f2 || true)
  ack=${ack:-0}

  audit=$("$BIN" --dir="$WAL" --recover)
  epoch=$(sed -n 's/.*epoch=\([0-9]*\).*/\1/p' <<<"$audit" | head -1)
  epoch=${epoch:-0}
  echo "cycle $i: last printed ack=$ack, $audit"

  if [ "$epoch" -lt "$ack" ]; then
    echo "FAIL: recovered epoch $epoch < acknowledged epoch $ack (lost acked delta)"
    exit 1
  fi
done

echo "PASS: $CYCLES kill -9 cycles, zero lost acknowledged deltas"
