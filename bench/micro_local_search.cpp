// Local-search throughput microbench: the hill-climb / KL hot path.
//
// Measures moves/second and passes/second of sweep-mode hill climbing and a
// capped KL refinement across mesh sizes and part counts, plus the parallel
// batch engine's thread scaling on a large mesh, emitting JSON so the
// BENCH_local_search.json trajectory can track the boundary-driven
// refinement work:
//   ./bench/micro_local_search [--seconds=1.0] [--threads=1,2,4,8] [--quick]
//       > local_search.json
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/kl.hpp"
#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/executor.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/hill_climb.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"

namespace {

using namespace gapart;

/// How the initial assignment is produced.  `kRandom` is the GA-offspring
/// regime (boundary covers most of the mesh); `kPerturbed` is the
/// refinement / incremental-repartitioning regime: contiguous blocks with 2%
/// of vertices scrambled, so the boundary stays a thin front.
enum class StartKind { kRandom, kPerturbed };

struct Case {
  VertexId rows = 0;
  VertexId cols = 0;
  PartId k = 2;
  Objective objective = Objective::kTotalComm;
  StartKind start = StartKind::kRandom;
};

struct Row {
  std::string name;
  Case c;
  int threads = 1;  ///< pool width for hill_climb_parallel rows; 1 = serial
  int reps = 0;
  std::int64_t moves = 0;
  std::int64_t passes = 0;
  double seconds = 0.0;
  double final_fitness = 0.0;

  double moves_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(moves) / seconds : 0.0;
  }
  double passes_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(passes) / seconds : 0.0;
  }
};

Assignment start_assignment(const Graph& g, PartId k, StartKind start,
                            std::uint64_t salt) {
  const VertexId n = g.num_vertices();
  Rng rng(0x5eed0000ULL ^ salt);
  Assignment a(static_cast<std::size_t>(n));
  if (start == StartKind::kRandom) {
    for (auto& p : a) p = static_cast<PartId>(rng.uniform_int(k));
    return a;
  }
  for (VertexId v = 0; v < n; ++v) {
    a[static_cast<std::size_t>(v)] = static_cast<PartId>(
        std::min<std::int64_t>(k - 1, static_cast<std::int64_t>(v) * k / n));
  }
  const int flips = std::max(1, static_cast<int>(n) / 50);  // 2% damage
  for (int i = 0; i < flips; ++i) {
    a[static_cast<std::size_t>(rng.uniform_int(n))] =
        static_cast<PartId>(rng.uniform_int(k));
  }
  return a;
}

std::uint64_t case_salt(const Case& c) {
  return static_cast<std::uint64_t>(c.rows) * 1000003ULL +
         static_cast<std::uint64_t>(c.k) * 101ULL +
         (c.objective == Objective::kWorstComm ? 7ULL : 0ULL) +
         (c.start == StartKind::kPerturbed ? 13ULL : 0ULL);
}

/// Repeats full hill climbs from the same start assignment until the budget
/// is spent; state construction stays outside the timed region.
Row bench_hill_climb(const Graph& g, const Case& c, HillClimbMode mode,
                     double budget, bool gain_ordered = false) {
  Row row;
  row.name = mode != HillClimbMode::kFrontier ? "hill_climb_sweep"
             : gain_ordered                   ? "hill_climb_frontier_ordered"
                                              : "hill_climb_frontier";
  row.c = c;
  const Assignment start = start_assignment(g, c.k, c.start, case_salt(c));
  HillClimbOptions opt;
  opt.fitness = {c.objective, 1.0};
  opt.mode = mode;
  opt.gain_ordered = gain_ordered;
  opt.max_passes = 50;

  double elapsed = 0.0;
  while (elapsed < budget || row.reps == 0) {
    PartitionState state(g, start, c.k);
    WallTimer timer;
    const HillClimbResult res = hill_climb(state, opt);
    elapsed += timer.seconds();
    row.moves += res.moves;
    row.passes += res.passes;
    row.final_fitness = state.fitness(opt.fitness);
    ++row.reps;
  }
  row.seconds = elapsed;
  return row;
}

std::vector<int> parse_thread_list(const std::string& spec) {
  std::vector<int> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      const int t = std::stoi(item);
      if (t >= 1) out.push_back(t);
    } catch (const std::exception&) {
      std::fprintf(stderr, "ignoring bad thread count '%s'\n", item.c_str());
    }
  }
  if (out.empty()) out = {1, 2, 4, 8};
  return out;
}

/// The parallel batch engine at a given pool width.  The serial-baseline row
/// for the speedup ratio is the threads=1 entry (which exercises the
/// bit-identical kFrontier fallback); the pool is constructed outside the
/// timed region, matching the long-lived service pool it models.
Row bench_parallel(const Graph& g, const Case& c, int threads, double budget) {
  Row row;
  row.name = "hill_climb_parallel";
  row.c = c;
  row.threads = threads;
  const Assignment start = start_assignment(g, c.k, c.start, case_salt(c));
  Executor pool(threads);
  HillClimbOptions opt;
  opt.fitness = {c.objective, 1.0};
  opt.mode = HillClimbMode::kParallelFrontier;
  opt.executor = &pool;
  opt.max_passes = 50;

  double elapsed = 0.0;
  while (elapsed < budget || row.reps == 0) {
    PartitionState state(g, start, c.k);
    WallTimer timer;
    const HillClimbResult res = hill_climb(state, opt);
    elapsed += timer.seconds();
    row.moves += res.moves;
    row.passes += res.passes;
    row.final_fitness = state.fitness(opt.fitness);
    ++row.reps;
  }
  row.seconds = elapsed;
  return row;
}

/// KL with a per-pass move cap (full KL is quadratic in |V| and would drown
/// the bench); reported as moves applied per second of refinement.
Row bench_kl(const Graph& g, const Case& c, double budget) {
  Row row;
  row.name = "kl_capped";
  row.c = c;
  const Assignment start = start_assignment(g, c.k, c.start, case_salt(c));
  KlOptions opt;
  opt.fitness = {c.objective, 1.0};
  opt.max_passes = 1;
  opt.max_moves_per_pass = 128;

  double elapsed = 0.0;
  while (elapsed < budget || row.reps == 0) {
    PartitionState state(g, start, c.k);
    WallTimer timer;
    const KlResult res = kl_refine(state, opt);
    elapsed += timer.seconds();
    row.moves += res.moves_applied;
    row.passes += res.passes;
    row.final_fitness = state.fitness(opt.fitness);
    ++row.reps;
  }
  row.seconds = elapsed;
  return row;
}

void emit_json(const std::vector<Row>& rows) {
  std::printf("{\n");
  std::printf("  \"bench\": \"micro_local_search\",\n");
  std::printf("  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf(
        "    {\"name\": \"%s\", \"rows\": %d, \"cols\": %d, \"k\": %d, "
        "\"objective\": \"%s\", \"start\": \"%s\", \"threads\": %d, "
        "\"reps\": %d, "
        "\"moves\": %lld, \"passes\": %lld, \"seconds\": %.4f, "
        "\"moves_per_sec\": %.1f, \"passes_per_sec\": %.1f, "
        "\"final_fitness\": %.6f}%s\n",
        r.name.c_str(), static_cast<int>(r.c.rows), static_cast<int>(r.c.cols),
        static_cast<int>(r.c.k),
        r.c.objective == Objective::kTotalComm ? "total_comm" : "worst_comm",
        r.c.start == StartKind::kPerturbed ? "perturbed" : "random", r.threads,
        r.reps,
        static_cast<long long>(r.moves), static_cast<long long>(r.passes),
        r.seconds, r.moves_per_sec(), r.passes_per_sec(), r.final_fitness,
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool quick = args.flag("quick") || quick_mode_enabled();
  const double budget = args.real("seconds", quick ? 0.1 : 1.0);
  const std::vector<int> thread_list =
      parse_thread_list(args.str("threads", "1,2,4,8"));

  std::vector<Case> cases = {
      {32, 32, 4, Objective::kTotalComm, StartKind::kRandom},
      {64, 64, 16, Objective::kTotalComm, StartKind::kRandom},
      {64, 64, 16, Objective::kWorstComm, StartKind::kRandom},
      {64, 64, 16, Objective::kTotalComm, StartKind::kPerturbed},
      {64, 64, 16, Objective::kWorstComm, StartKind::kPerturbed},
  };
  if (!quick) {
    cases.push_back({128, 128, 16, Objective::kTotalComm, StartKind::kRandom});
    cases.push_back(
        {128, 128, 16, Objective::kTotalComm, StartKind::kPerturbed});
  }

  std::vector<Row> rows;
  for (const Case& c : cases) {
    const Graph g = make_grid(c.rows, c.cols);
    rows.push_back(bench_hill_climb(g, c, HillClimbMode::kSweep, budget));
    rows.push_back(bench_hill_climb(g, c, HillClimbMode::kFrontier, budget));
    rows.push_back(bench_hill_climb(g, c, HillClimbMode::kFrontier, budget,
                                    /*gain_ordered=*/true));
    if (c.rows <= 32) rows.push_back(bench_kl(g, c, budget));
  }

  // Thread scaling of the parallel batch engine on a mesh big enough to
  // shard (a fat random-start boundary): serial frontier baseline first,
  // then hill_climb_parallel at each requested pool width (threads=1 is the
  // bit-identical serial fallback — its moves/sec IS the overhead-free
  // baseline for the speedup ratio).
  const std::vector<Case> parallel_cases =
      quick ? std::vector<Case>{
                  {64, 64, 16, Objective::kTotalComm, StartKind::kRandom}}
            : std::vector<Case>{
                  {512, 512, 16, Objective::kTotalComm, StartKind::kRandom},
                  {512, 512, 16, Objective::kTotalComm, StartKind::kPerturbed}};
  for (const Case& c : parallel_cases) {
    const Graph g = make_grid(c.rows, c.cols);
    rows.push_back(bench_hill_climb(g, c, HillClimbMode::kFrontier, budget));
    for (const int t : thread_list) {
      rows.push_back(bench_parallel(g, c, t, budget));
    }
  }
  emit_json(rows);
  return 0;
}
