// Ablation: §3.6 hill climbing on offspring.  The paper's conclusion says
// "Performance can further be improved by incorporating a hill-climbing
// step" — this harness quantifies that, sweeping the fraction of offspring
// that are hill-climbed.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/init.hpp"

namespace {

using namespace gapart;
using namespace gapart::bench;

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto settings = RunSettings::from_cli(args, /*default_gens=*/120,
                                              /*default_stall=*/0);
  print_banner("Ablation — hill climbing on offspring (§3.6)",
               "Maini et al., SC'94, §3.6 / conclusion", settings);

  const Mesh mesh = paper_mesh(144);
  const PartId k = 4;
  std::printf("graph 144, %d parts: %s\n\n", k, mesh.graph.summary().c_str());

  TextTable table({"hill-climb fraction", "best cut", "mean cut",
                   "evaluations", "sec"});
  for (const double fraction : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    auto cfg = harness_dpga_config(k, Objective::kTotalComm, settings);
    cfg.ga.hill_climb_offspring = fraction > 0.0;
    cfg.ga.hill_climb_fraction = fraction;
    cfg.ga.hill_climb_passes = 1;
    cfg.ga.stall_generations = 0;

    const auto cell = best_of_runs(
        mesh.graph, cfg,
        random_init(mesh.graph, k, cfg.ga.population_size), settings,
        static_cast<std::uint64_t>(fraction * 1000));

    table.start_row();
    table.append(format_double(fraction, 2));
    table.append(cell.total_cut, 0);
    table.append(cell.mean_total_cut, 1);
    table.append("~");
    table.append(cell.seconds, 1);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Shape check: enabling §3.6 hill climbing strictly improves the cut\n"
      "at equal generation budget (at increased per-generation cost) —\n"
      "matching the conclusion's 'can further be improved'.\n");
  return 0;
}
