// Table 3 of the paper: "Incremental Graph Partitioning, using Fitness
// Function 1."  A base mesh is partitioned, grown by adding nodes in a
// random local area (§4.2), and the grown mesh is repartitioned by the GA
// seeded from the previous partition — compared against RSB partitioning the
// grown graph from scratch.  A third column measures the deterministic
// majority-assignment strawman named in the paper's conclusion.
#include <cstdio>

#include "baselines/greedy_incremental.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "spectral/rsb.hpp"

namespace {

using namespace gapart;
using namespace gapart::bench;

struct PaperRow {
  VertexId base;
  VertexId extra;
  double dknux[3];
  double rsb[3];
};

constexpr PaperRow kPaperRows[] = {
    {118, 21, {31, 61, 103}, {30, 69, 113}},
    {118, 41, {31, 66, 120}, {33, 75, 128}},
    {183, 30, {37, 72, 133}, {41, 82, 151}},
    {183, 60, {44, 83, 160}, {47, 95, 154}},
};
constexpr PartId kParts[] = {2, 4, 8};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto settings = RunSettings::from_cli(args, /*default_gens=*/600,
                                              /*default_stall=*/200,
                                              /*default_hill_climb=*/true);
  print_banner(
      "Table 3 — Incremental partitioning (DKNUX + §3.6) vs from-scratch "
      "RSB, Fitness 1",
      "Maini et al., SC'94, Table 3 (+ §5 greedy strawman)", settings);

  TextTable table({"graph", "parts", "DKNUX paper/ours", "RSB paper/ours",
                   "greedy cut", "greedy imb", "sec"});
  for (const auto& row : kPaperRows) {
    const Mesh base = paper_mesh(row.base);
    const Mesh grown = paper_incremental_mesh(base, row.base, row.extra);
    std::printf("graph %d+%d: %s\n", row.base, row.extra,
                grown.graph.summary().c_str());
    for (int pi = 0; pi < 3; ++pi) {
      const PartId k = kParts[pi];
      Rng rng(settings.base_seed + static_cast<std::uint64_t>(row.base) +
              static_cast<std::uint64_t>(row.extra));

      // Previous partition: RSB of the base mesh (the "partition it" step).
      const Assignment previous = rsb_partition(base.graph, k, rng);

      // Baseline 1: RSB on the grown graph from scratch.
      const Assignment rsb_grown = rsb_partition(grown.graph, k, rng);
      const double rsb_cut =
          compute_metrics(grown.graph, rsb_grown, k).total_cut();

      // Baseline 2 (§5): deterministic majority assignment of new nodes.
      const Assignment greedy =
          greedy_incremental_assign(grown.graph, previous, k);
      const auto greedy_m = compute_metrics(grown.graph, greedy, k);

      // The contribution: GA seeded from the previous partition.
      const auto cfg =
          harness_dpga_config(k, Objective::kTotalComm, settings);
      const auto cell = best_of_runs(
          grown.graph, cfg,
          incremental_init(grown.graph, previous, k, cfg.ga.population_size),
          settings,
          static_cast<std::uint64_t>(row.base * 1000 + row.extra * 10 + k));

      table.start_row();
      table.append(std::to_string(row.base) + "+" +
                   std::to_string(row.extra));
      table.append(static_cast<long long>(k));
      table.append(paper_vs(row.dknux[pi], cell.total_cut));
      table.append(paper_vs(row.rsb[pi], rsb_cut));
      table.append(greedy_m.total_cut(), 0);
      table.append(greedy_m.imbalance_sq, 0);
      table.append(cell.seconds, 1);
    }
    table.add_rule();
  }
  std::printf("\n%s\n", table.str().c_str());
  std::printf(
      "Shape check: incremental DKNUX is competitive with (usually better\n"
      "than) from-scratch RSB; the greedy strawman may post a low cut but\n"
      "pays with severe imbalance (its 'greedy imb' column), which is why\n"
      "the paper dismisses it.\n");
  return 0;
}
