// Table 4 of the paper: "Starting with a Randomly Initialized Population and
// Using Fitness Function 2" — the GA directly optimizes the
// non-differentiable worst-case communication objective max_q C(q), which
// derivative-based methods cannot.  Cells report max_q C(q) (the worst cut)
// for 4 and 8 parts.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "spectral/rsb.hpp"

namespace {

using namespace gapart;
using namespace gapart::bench;

struct PaperRow {
  VertexId nodes;
  double dknux[2];  // parts 4, 8
  double rsb[2];
};

constexpr PaperRow kPaperRows[] = {
    {78, {23, 23}, {26, 25}},
    {88, {28, 21}, {33, 27}},
    {98, {26, 23}, {30, 30}},
    {144, {53, 42}, {44, 35}},
    {167, {44, 39}, {40, 41}},
};
constexpr PartId kParts[] = {4, 8};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  // Random initialization needs a longer budget than seeded runs.
  const auto settings = RunSettings::from_cli(args, /*default_gens=*/1500,
                                              /*default_stall=*/500);
  print_banner(
      "Table 4 — DKNUX (random init) vs RSB on worst-case cut, Fitness 2",
      "Maini et al., SC'94, Table 4", settings);

  TextTable table({"graph", "parts", "worst cut DKNUX paper/ours",
                   "ours +3.6", "worst cut RSB paper/ours", "sec"});
  for (const auto& row : kPaperRows) {
    const Mesh mesh = paper_mesh(row.nodes);
    std::printf("graph %d: %s\n", row.nodes, mesh.graph.summary().c_str());
    for (int pi = 0; pi < 2; ++pi) {
      const PartId k = kParts[pi];
      Rng rng(settings.base_seed + static_cast<std::uint64_t>(row.nodes));

      const Assignment rsb = rsb_partition(mesh.graph, k, rng);
      const double rsb_worst =
          compute_metrics(mesh.graph, rsb, k).max_part_cut;

      // Pure GA (the table proper) ...
      const auto cfg =
          harness_dpga_config(k, Objective::kWorstComm, settings);
      const auto cell = best_of_runs(
          mesh.graph, cfg, random_init(mesh.graph, k, cfg.ga.population_size),
          settings, static_cast<std::uint64_t>(row.nodes * 100 + k));

      // ... plus the §3.6 memetic variant for reference (the paper's
      // conclusion: "Performance can further be improved by incorporating
      // a hill-climbing step").
      auto cfg_hc = cfg;
      cfg_hc.ga.hill_climb_offspring = true;
      cfg_hc.ga.hill_climb_fraction = 0.25;
      const auto cell_hc = best_of_runs(
          mesh.graph, cfg_hc,
          random_init(mesh.graph, k, cfg_hc.ga.population_size), settings,
          static_cast<std::uint64_t>(row.nodes * 100 + k) + 7);

      table.start_row();
      table.append(std::to_string(row.nodes) + " nodes");
      table.append(static_cast<long long>(k));
      table.append(paper_vs(row.dknux[pi], cell.max_part_cut));
      table.append(cell_hc.max_part_cut, 0);
      table.append(paper_vs(row.rsb[pi], rsb_worst));
      table.append(cell.seconds + cell_hc.seconds, 1);
    }
    table.add_rule();
  }
  std::printf("\n%s\n", table.str().c_str());
  std::printf(
      "Shape check (paper Table 4): from a random start the pure GA beats\n"
      "RSB's worst cut only on the smallest instances and falls behind as\n"
      "size/parts grow — the paper sees the same transition (at 144/167 on\n"
      "its meshes; earlier here because this RSB baseline is stronger).\n"
      "The '+3.6' column shows the paper's remedy (hill climbing on\n"
      "offspring) closing most of the gap without any seeding.\n");
  return 0;
}
