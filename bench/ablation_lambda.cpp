// Ablation: the lambda knob of the composite objective (§2).
//
// The paper writes the objective as  sum_q I(q) + lambda * comm  and fixes
// lambda = 1 for its experiments.  This harness sweeps lambda to expose the
// trade-off the knob controls: small lambda buys balance at any cut cost,
// large lambda tolerates imbalance to save edges.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/init.hpp"

namespace {

using namespace gapart;
using namespace gapart::bench;

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto settings = RunSettings::from_cli(args, /*default_gens=*/250,
                                              /*default_stall=*/0);
  print_banner("Ablation — lambda (imbalance vs communication trade-off, §2)",
               "Maini et al., SC'94, §2 (lambda fixed to 1 in the paper)",
               settings);

  const Mesh mesh = paper_mesh(167);
  const PartId k = 4;
  std::printf("graph 167, %d parts: %s\n\n", k, mesh.graph.summary().c_str());

  TextTable table({"lambda", "best total cut", "imbalance", "max |size-n/k|",
                   "fitness"});
  for (const double lambda : {0.1, 0.5, 1.0, 2.0, 5.0, 20.0}) {
    auto cfg = harness_dpga_config(k, Objective::kTotalComm, settings);
    cfg.ga.fitness.lambda = lambda;
    cfg.ga.stall_generations = 0;
    const auto cell = best_of_runs(
        mesh.graph, cfg, random_init(mesh.graph, k, cfg.ga.population_size),
        settings, static_cast<std::uint64_t>(lambda * 100));

    // Recover the size deviation from the imbalance term (unit weights).
    table.start_row();
    table.append(format_double(lambda, 1));
    table.append(cell.total_cut, 0);
    table.append(cell.imbalance_sq, 1);
    table.append(std::sqrt(cell.imbalance_sq), 1);
    table.append(cell.best_fitness, 1);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Read: lambda sweeps the Pareto front between load balance and cut.\n"
      "With unit weights a single displaced vertex costs ~2 units of\n"
      "imbalance, so lambda = 1 (the paper's setting) keeps parts within a\n"
      "vertex or two of ideal while still minimizing edges; lambda >> 1\n"
      "sacrifices balance for cut.\n");
  return 0;
}
