// Incremental-repair microbench: damage size vs repair cost.
//
// Two question sets, emitted as JSON for the BENCH_incremental_repair.json
// trajectory:
//
//   repair:   on an n x n grid with a contiguous block partition and d
//             scrambled vertices (localized damage), how much work does each
//             repair strategy do?  Strategies: worklist-seeded frontier
//             climb (with and without the full-boundary verification
//             rounds), full-boundary frontier, and the paper-faithful
//             sweep.  "examined" (gain-kernel probes) is the work unit; the
//             seeded cascade should track d while sweep tracks |V| — and,
//             at >= 512^2 / k=2, the thin-front regime ROADMAP asks about,
//             frontier vs sweep is answered by the same rows.
//
//   pipeline: the tiered incremental_repartition (GA tier off) on grids
//             grown by appended rows: per-tier moves / probes / seconds, so
//             the damage-proportionality of the whole pipeline — not just
//             the climb — is on record.
//
//   ./bench/micro_incremental_repair [--seconds=0.2] [--quick] > repair.json
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/graph_delta.hpp"
#include "core/hill_climb.hpp"
#include "core/incremental.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"

namespace {

using namespace gapart;

struct RepairRow {
  std::string method;
  VertexId n = 0;  // grid side
  PartId k = 2;
  int damage = 0;
  int reps = 0;
  std::int64_t moves = 0;
  std::int64_t examined = 0;
  std::int64_t passes = 0;
  double seconds = 0.0;
  double final_fitness = 0.0;
};

RepairRow bench_repair(const Graph& g, VertexId n, PartId k, int damage,
                       const std::string& method, double budget) {
  RepairRow row;
  row.method = method;
  row.n = n;
  row.k = k;
  row.damage = damage;
  // Same generator as the seeded-repair fuzz tests (bench_common).
  const bench::DamagedGrid d = bench::damaged_block_grid(
      n, k, damage,
      0xDA11A6E ^ (static_cast<std::uint64_t>(n) * 17 +
                   static_cast<std::uint64_t>(k)));

  HillClimbOptions opt;
  opt.max_passes = 50;
  const bool seeded = method == "seeded" || method == "seeded_noverify";
  if (method == "seeded_noverify") opt.verify_fixed_point = false;
  if (method == "frontier") opt.mode = HillClimbMode::kFrontier;
  if (method == "sweep") opt.mode = HillClimbMode::kSweep;

  // The budget bounds the whole rep — the O(V+E) PartitionState rebuild
  // included — so total bench wall-clock stays ~rows x budget even for
  // methods whose climbs are far cheaper than the rebuild.  `seconds`
  // reports climb time only (the quantity under measurement).
  double climb_seconds = 0.0;
  double elapsed = 0.0;
  while (elapsed < budget || row.reps == 0) {
    WallTimer rep_timer;
    PartitionState state(g, d.start, k);
    WallTimer timer;
    const HillClimbResult res = seeded
                                    ? hill_climb_from(state, d.damaged, opt)
                                    : hill_climb(state, opt);
    climb_seconds += timer.seconds();
    row.moves += res.moves;
    row.examined += res.examined;
    row.passes += res.passes;
    row.final_fitness = state.fitness(opt.fitness);
    ++row.reps;
    elapsed += rep_timer.seconds();
  }
  row.seconds = climb_seconds;
  return row;
}

struct PipelineRow {
  VertexId n = 0;      // base grid side (square)
  VertexId grow_rows = 0;
  PartId k = 2;
  VertexId damage = 0;
  std::vector<IncrementalTierStats> tiers;
  double best_fitness = 0.0;
  double seconds = 0.0;
};

PipelineRow bench_pipeline(VertexId n, VertexId grow_rows, PartId k) {
  PipelineRow row;
  row.n = n;
  row.grow_rows = grow_rows;
  row.k = k;

  const Graph old_g = make_grid(n, n);
  const Graph grown = make_grid(n + grow_rows, n);

  // Previous partition: repaired block partition of the old grid (the
  // shared generator with zero damage).
  Assignment prev = bench::damaged_block_grid(n, k, /*damage=*/0, 0).start;
  HillClimbOptions settle;
  settle.mode = HillClimbMode::kFrontier;
  settle.max_passes = 10;
  hill_climb(old_g, prev, k, settle);

  IncrementalGaOptions opt;
  opt.dpga.ga.num_parts = k;
  opt.refine_with_ga = false;  // measure the damage-proportional tiers
  Rng rng(0x1A2B);
  const GraphDelta delta = diff_graphs(old_g, grown);
  WallTimer timer;
  const IncrementalResult res =
      incremental_repartition(grown, prev, delta, opt, rng);
  row.seconds = timer.seconds();
  row.damage = res.damage;
  row.tiers = res.tiers;
  row.best_fitness = res.best_fitness;
  return row;
}

void emit_json(const std::vector<RepairRow>& repair,
               const std::vector<PipelineRow>& pipeline) {
  std::printf("{\n");
  std::printf("  \"bench\": \"micro_incremental_repair\",\n");
  std::printf("  \"repair\": [\n");
  for (std::size_t i = 0; i < repair.size(); ++i) {
    const RepairRow& r = repair[i];
    std::printf(
        "    {\"method\": \"%s\", \"n\": %d, \"k\": %d, \"damage\": %d, "
        "\"reps\": %d, \"moves\": %lld, \"examined\": %lld, "
        "\"passes\": %lld, \"seconds\": %.4f, \"examined_per_rep\": %.1f, "
        "\"final_fitness\": %.6f}%s\n",
        r.method.c_str(), static_cast<int>(r.n), static_cast<int>(r.k),
        r.damage, r.reps, static_cast<long long>(r.moves),
        static_cast<long long>(r.examined), static_cast<long long>(r.passes),
        r.seconds,
        r.reps > 0 ? static_cast<double>(r.examined) / r.reps : 0.0,
        r.final_fitness, i + 1 < repair.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"pipeline\": [\n");
  for (std::size_t i = 0; i < pipeline.size(); ++i) {
    const PipelineRow& p = pipeline[i];
    std::printf(
        "    {\"n\": %d, \"grow_rows\": %d, \"k\": %d, \"damage\": %d, "
        "\"best_fitness\": %.6f, \"seconds\": %.4f, \"tiers\": [",
        static_cast<int>(p.n), static_cast<int>(p.grow_rows),
        static_cast<int>(p.k), static_cast<int>(p.damage), p.best_fitness,
        p.seconds);
    for (std::size_t t = 0; t < p.tiers.size(); ++t) {
      const auto& tier = p.tiers[t];
      std::printf(
          "{\"name\": \"%s\", \"moves\": %d, \"examined\": %lld, "
          "\"evaluations\": %lld, \"fitness_after\": %.6f, "
          "\"seconds\": %.4f}%s",
          tier.name.c_str(), tier.moves,
          static_cast<long long>(tier.examined),
          static_cast<long long>(tier.evaluations), tier.fitness_after,
          tier.seconds, t + 1 < p.tiers.size() ? ", " : "");
    }
    std::printf("]}%s\n", i + 1 < pipeline.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool quick = args.flag("quick") || quick_mode_enabled();
  const double budget = args.real("seconds", quick ? 0.02 : 0.2);

  std::vector<VertexId> sizes = quick ? std::vector<VertexId>{64, 128}
                                      : std::vector<VertexId>{128, 256, 512};
  std::vector<int> damages =
      quick ? std::vector<int>{8, 64} : std::vector<int>{8, 32, 128, 512};

  std::vector<RepairRow> repair;
  for (const VertexId n : sizes) {
    const Graph g = make_grid(n, n);
    for (const PartId k : {PartId{2}, PartId{16}}) {
      for (const int d : damages) {
        if (d > static_cast<int>(n)) continue;  // keep damage localized
        repair.push_back(bench_repair(g, n, k, d, "seeded", budget));
        repair.push_back(bench_repair(g, n, k, d, "seeded_noverify", budget));
      }
      // Repartition-style baselines at one representative damage, also the
      // >= 512^2 / k=2 thin-front frontier-vs-sweep datapoint ROADMAP asks
      // to re-measure.
      const int d_rep = quick ? 64 : 128;
      repair.push_back(bench_repair(g, n, k, d_rep, "frontier", budget));
      repair.push_back(bench_repair(g, n, k, d_rep, "sweep", budget));
    }
  }

  std::vector<PipelineRow> pipeline;
  const std::vector<VertexId> pipe_sizes =
      quick ? std::vector<VertexId>{64} : std::vector<VertexId>{64, 128, 256};
  for (const VertexId n : pipe_sizes) {
    for (const VertexId grow : {VertexId{1}, VertexId{4}, VertexId{16}}) {
      pipeline.push_back(bench_pipeline(n, grow, 8));
    }
  }

  emit_json(repair, pipeline);
  return 0;
}
