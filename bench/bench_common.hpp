// Shared infrastructure for the experiment harnesses (one binary per table /
// figure of the paper).
//
// Conventions (paper §4): the GA is the DPGA with total population 320, 16
// subpopulations on a 4-D hypercube, p_c = 0.7, p_m = 0.01; tables report the
// BEST of 5 runs, figures the MEAN of 5 runs.  Tables 1-3 report sum_q C(q)/2
// under Fitness1; Tables 4-6 report max_q C(q) under Fitness2.
//
// Every harness honours:
//   --runs=N --gens=N --stall=N --quick  (flags)
//   GAPART_QUICK=1                        (environment, same as --quick)
// Quick mode shrinks runs/generations so the full bench sweep smoke-tests in
// seconds; headline numbers should be produced in default mode.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/dpga.hpp"
#include "core/presets.hpp"
#include "graph/mesh.hpp"
#include "graph/partition.hpp"

namespace gapart::bench {

/// Harness-wide run settings parsed from CLI + environment.
struct RunSettings {
  int runs = 5;
  int max_generations = 0;  ///< 0: per-harness default
  int stall_generations = 0;
  bool quick = false;
  /// §3.6 hill climbing on offspring.  The incremental harnesses (Tables
  /// 3/6) enable it by default — on the regenerated meshes the paper's
  /// incremental results are only reachable with the §3.6 step; the other
  /// tables reproduce with the pure GA and leave it off (see EXPERIMENTS.md).
  bool hill_climb = false;
  double hill_climb_fraction = 0.25;
  std::uint64_t base_seed = 0x9a94;

  /// Parses flags; `default_gens`/`default_stall`/`default_hill_climb`
  /// apply when --gens / --stall / --hc are absent.
  static RunSettings from_cli(const CliArgs& args, int default_gens,
                              int default_stall,
                              bool default_hill_climb = false);
};

/// How the GA population is initialized for a run.
using InitFactory = std::function<std::vector<Assignment>(Rng&)>;

/// One cell of a paper table: best-of-N-runs DPGA outcome.
struct CellResult {
  double total_cut = 0.0;     ///< sum C(q)/2 of the best run
  double max_part_cut = 0.0;  ///< max C(q) of the best run
  double imbalance_sq = 0.0;
  double best_fitness = 0.0;
  double mean_total_cut = 0.0;     ///< across runs
  double mean_max_part_cut = 0.0;  ///< across runs
  double seconds = 0.0;            ///< total wall time of all runs
  int generations = 0;             ///< of the best run
};

/// Runs `settings.runs` independent DPGA runs (seeds derived from
/// settings.base_seed ^ salt) and keeps the best by fitness.
CellResult best_of_runs(const Graph& g, const DpgaConfig& config,
                        const InitFactory& init, const RunSettings& settings,
                        std::uint64_t salt);

/// Paper-parameter DPGA config with the harness's generation budget applied.
DpgaConfig harness_dpga_config(PartId num_parts, Objective objective,
                               const RunSettings& settings);

/// Convenience init factories.
InitFactory random_init(const Graph& g, PartId num_parts, int population);
InitFactory seeded_init(const Assignment& seed, int population,
                        double swap_fraction = 0.1);
InitFactory incremental_init(const Graph& grown, const Assignment& previous,
                             PartId num_parts, int population,
                             double swap_fraction = 0.08);

/// Contiguous block partition of an n x n grid with `damage` vertices
/// scrambled inside a window around the grid centre — the localized-update
/// regime shared by the seeded-repair fuzz tests and
/// bench/micro_incremental_repair (one definition so the tests validate
/// exactly the regime the bench measures).
struct DamagedGrid {
  Assignment start;
  std::vector<VertexId> damaged;  ///< the scrambled vertices
};
DamagedGrid damaged_block_grid(VertexId n, PartId k, int damage,
                               std::uint64_t seed);

/// Column-band partition of a row-major rows x cols grid (vertex r*cols+c in
/// the band of its column).  Appended rows cross every band boundary, which
/// is what makes it the canonical start for growth-trace experiments — the
/// service tests and bench/soak_service share this one definition.
Assignment column_bands(VertexId rows, VertexId cols, PartId k);

/// Formats a paper-vs-measured pair like "63 / 58.0".
std::string paper_vs(double paper_value, double measured);

/// Prints the standard harness banner (what is being reproduced, settings).
void print_banner(const std::string& title, const std::string& paper_ref,
                  const RunSettings& settings);

}  // namespace gapart::bench
