// Ablation: the paper's §5 scaling prescription — "Applying a prior graph
// contraction step should precede the partitioning of very large graphs
// using GA's."  This harness partitions a mesh an order of magnitude larger
// than the paper's test graphs three ways: direct GA, contraction + GA +
// KL uncoarsening, and multilevel RSB, reporting quality and wall time.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/contracted_ga.hpp"
#include "core/init.hpp"
#include "spectral/multilevel.hpp"
#include "spectral/rsb.hpp"

namespace {

using namespace gapart;
using namespace gapart::bench;

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto settings = RunSettings::from_cli(args, /*default_gens=*/250,
                                              /*default_stall=*/100);
  const VertexId nodes =
      static_cast<VertexId>(args.integer("nodes", settings.quick ? 600 : 2000));
  const PartId k = 8;
  print_banner("Ablation — prior graph contraction for large graphs (§5)",
               "Maini et al., SC'94, conclusion", settings);

  Rng mesh_rng(0xC0A85E);
  const Domain domain(DomainShape::kRectangle);
  const Mesh mesh = generate_mesh(domain, nodes, mesh_rng);
  std::printf("graph %d, %d parts: %s\n\n", nodes, k,
              mesh.graph.summary().c_str());

  TextTable table({"method", "coarse |V|", "total cut", "imbalance", "sec"});

  {  // Direct GA on the full graph (one run — this is the slow path).
    auto cfg = harness_dpga_config(k, Objective::kTotalComm, settings);
    WallTimer t;
    Rng rng(1);
    auto init = make_random_population(mesh.graph.num_vertices(), k,
                                       cfg.ga.population_size, rng);
    const auto res = run_dpga(mesh.graph, cfg, std::move(init), rng.split());
    table.start_row();
    table.append("GA direct (random init)");
    table.append(static_cast<long long>(mesh.graph.num_vertices()));
    table.append(res.best_metrics.total_cut(), 0);
    table.append(res.best_metrics.imbalance_sq, 0);
    table.append(t.seconds(), 1);
  }

  {  // Contraction + GA + KL uncoarsening.
    ContractedGaOptions opt;
    opt.dpga = harness_dpga_config(k, Objective::kTotalComm, settings);
    opt.coarse_vertices_per_part = 40;
    WallTimer t;
    Rng rng(2);
    const auto res = contracted_ga_partition(mesh.graph, opt, rng);
    const auto m = compute_metrics(mesh.graph, res.assignment, k);
    table.start_row();
    table.append("contract + GA + KL (paper Section 5)");
    table.append(static_cast<long long>(res.coarse_vertices));
    table.append(m.total_cut(), 0);
    table.append(m.imbalance_sq, 0);
    table.append(t.seconds(), 1);
  }

  {  // Multilevel RSB reference (Barnard-Simon, the paper's ref [13]).
    WallTimer t;
    Rng rng(3);
    const auto a = multilevel_partition(mesh.graph, k, rng);
    const auto m = compute_metrics(mesh.graph, a, k);
    table.start_row();
    table.append("multilevel RSB + KL (ref [13])");
    table.append("-");
    table.append(m.total_cut(), 0);
    table.append(m.imbalance_sq, 0);
    table.append(t.seconds(), 1);
  }

  {  // Flat RSB reference.
    WallTimer t;
    Rng rng(4);
    const auto a = rsb_partition(mesh.graph, k, rng);
    const auto m = compute_metrics(mesh.graph, a, k);
    table.start_row();
    table.append("flat RSB");
    table.append("-");
    table.append(m.total_cut(), 0);
    table.append(m.imbalance_sq, 0);
    table.append(t.seconds(), 1);
  }

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Shape check: at this size the direct GA's cut collapses (the search\n"
      "space is too large for the budget) while contraction restores GA\n"
      "quality to the multilevel-RSB class at a fraction of the direct\n"
      "cost — exactly the paper's argument for a prior contraction step.\n");
  return 0;
}
