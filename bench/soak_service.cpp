// Streaming-service soak: multi-client delta traces against a
// PartitionService, emitted as JSON for the BENCH_service.json trajectory.
//
// Three experiments:
//
//   soak      >= 32 concurrent sessions (default) driven by several client
//             threads over a mix of growth, churn, and adversarial hot-spot
//             traces, with background refinement enabled on the shared pool.
//             Reports service-wide throughput, p50/p99 per-delta repair
//             latency, and the refinement ledger (planned/applied/discarded).
//
//   latency   per-delta repair latency vs damage size: churn windows of
//             2/4/8/16 vertices on grids of several sizes, cascade-only
//             sessions (no verification, no refinement) so the number on
//             record is the synchronous repair plane alone.  The claim under
//             test: latency tracks the damage, not |V|.
//
//   recovery  quality: after a full churn trace with background refinement,
//             how does the session's maintained cut compare to a from-scratch
//             DPGA repartition of the final graph?  recovery_ratio =
//             dpga_cut / session_cut (>= 1 means the live session matches or
//             beats the batch repartitioner; the acceptance bar is >= 0.9).
//
//   durability  durable (WAL-backed) churn soak, run twice: fault-free for
//             the latency baseline, then with the deterministic fault
//             injector armed (--faults=<seed>, --fault-rate=<p>, default
//             10%).  Clients retry injected pre-mutation failures; the
//             service retries transient log I/O internally.  The process
//             then "dies" (no orderly close), recovers from snapshot + log
//             replay, and the JSON reports the robustness ledger: per-site
//             injected/checked fault counts, WAL retries/sheds/rejections,
//             recovery time, and lost_acked_deltas (must be 0).  Without
//             --faults the experiment still runs fault-free, so the JSON
//             schema is stable.
//
//   replication  leader + follower over an in-process loopback link: every
//             update is shipped, acked, and applied by a follower service in
//             continuous tail-replay; the leader is then killed mid-flight
//             and the follower promoted.  Reports per-update ack latency
//             (ship lag) p50/p99 in ms, resume/resync counts, failover time,
//             and whether every promoted session's content digest equals a
//             never-crashed reference replay (replicated_consistent).
//             --replicate additionally arms a 10% transport+I/O fault storm
//             for this experiment (drop/dup/reorder/truncate/send plus WAL
//             fsync faults), exercising the full failure matrix.
//
//   ./bench/soak_service [--sessions=32] [--updates=40] [--threads=0]
//                        [--faults=<seed>] [--fault-rate=0.1] [--replicate]
//                        [--telemetry] [--trace-out=soak_trace.json]
//                        [--metrics-out=soak_metrics.json]
//                        [--quick] > BENCH_service.json
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/telemetry.hpp"
#include "common/timer.hpp"
#include "core/graph_delta.hpp"
#include "core/presets.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "service/replication.hpp"
#include "service/service.hpp"
#include "service/transport.hpp"

namespace {

using namespace gapart;

// ---------------------------------------------------------------------------
// Delta traces.  Each trace is a deterministic function (kind, n, seed,
// phase) -> Graph, so clients can regenerate successive snapshots and diff
// them; building the next snapshot is the CLIENT's cost, never counted
// against the service's repair latency.

enum class TraceKind { kGrowth, kChurn, kHotspot };

const char* trace_name(TraceKind t) {
  switch (t) {
    case TraceKind::kGrowth:
      return "growth";
    case TraceKind::kChurn:
      return "churn";
    case TraceKind::kHotspot:
      return "hotspot";
  }
  return "?";
}

/// Churn/hotspot: n x n grid plus the diagonals of a w x w window whose
/// position depends on the phase (hotspot: fixed position, so the same
/// region is rewired over and over).  Growth: (n + phase) x n grid.
Graph trace_graph(TraceKind kind, VertexId n, VertexId window, int phase,
                  std::uint64_t seed) {
  if (kind == TraceKind::kGrowth) {
    return make_grid(n + static_cast<VertexId>(phase), n);
  }
  GraphBuilder b(n * n);
  const auto at = [n](VertexId r, VertexId c) { return r * n + c; };
  for (VertexId r = 0; r < n; ++r) {
    for (VertexId c = 0; c < n; ++c) {
      if (c + 1 < n) b.add_edge(at(r, c), at(r, c + 1));
      if (r + 1 < n) b.add_edge(at(r, c), at(r + 1, c));
    }
  }
  if (phase % 2 == 1) {
    // Window placement: fixed for hotspot, phase-dependent for churn.
    Rng rng(seed ^ (kind == TraceKind::kChurn
                        ? static_cast<std::uint64_t>(phase) * 0x9e37ULL
                        : 0ULL));
    const VertexId span = std::max<VertexId>(1, n - window - 1);
    const auto r0 = static_cast<VertexId>(rng.uniform_int(span));
    const auto c0 = static_cast<VertexId>(rng.uniform_int(span));
    for (VertexId r = r0; r < r0 + window && r + 1 < n; ++r) {
      for (VertexId c = c0; c < c0 + window && c + 1 < n; ++c) {
        b.add_edge(at(r, c), at(r + 1, c + 1));
      }
    }
  }
  return b.build();
}

using bench::column_bands;

/// Bands with `fraction` of the vertices scrambled: a realistic "inherited
/// from some earlier, imperfect state" start, leaving the repair and
/// refinement planes genuine work along the whole boundary.
Assignment scrambled_bands(VertexId rows, VertexId cols, PartId k,
                           double fraction, std::uint64_t seed) {
  Assignment a = column_bands(rows, cols, k);
  Rng rng(seed);
  const auto flips =
      static_cast<int>(fraction * static_cast<double>(a.size()));
  for (int i = 0; i < flips; ++i) {
    a[rng.uniform_u64(a.size())] = static_cast<PartId>(rng.uniform_int(k));
  }
  return a;
}

// ---------------------------------------------------------------------------
// Experiment 1: the soak.

struct SoakResult {
  int sessions = 0;
  int client_threads = 0;
  int updates_per_session = 0;
  double seconds = 0.0;
  ServiceStats stats;
  // Pool pressure during the burst: thread count plus the backlog gauge
  // (Executor::pending()) sampled by a monitor thread — how far behind the
  // refinement plane ran while the clients streamed at full throttle.
  int pool_threads = 0;
  int backlog_max = 0;
  double backlog_mean = 0.0;
  int backlog_samples = 0;
};

SoakResult run_soak(int num_sessions, int updates, VertexId n, PartId k,
                    int pool_threads, bool deep_refinement) {
  SoakResult out;
  out.sessions = num_sessions;
  out.updates_per_session = updates;

  ServiceConfig service_cfg;
  service_cfg.num_threads = pool_threads;
  service_cfg.background_refinement = true;
  PartitionService service(service_cfg);

  SessionConfig base_cfg;
  base_cfg.num_parts = k;
  base_cfg.policy.damage_threshold = 64;
  base_cfg.policy.staleness_updates = 16;
  base_cfg.policy.allow_deep = deep_refinement;
  base_cfg.policy.deep_damage_threshold = 512;

  struct Client {
    SessionId id;
    TraceKind kind;
    std::uint64_t seed;
    VertexId window;
  };
  std::vector<Client> clients;
  for (int s = 0; s < num_sessions; ++s) {
    const TraceKind kind = s % 3 == 0   ? TraceKind::kGrowth
                           : s % 3 == 1 ? TraceKind::kChurn
                                        : TraceKind::kHotspot;
    const auto seed = 0x50aaULL + static_cast<std::uint64_t>(s) * 131;
    const VertexId window = 4 + 2 * (s % 4);
    const Graph g0 = trace_graph(kind, n, window, 0, seed);
    auto graph = std::make_shared<const Graph>(g0);
    const VertexId rows = graph->num_vertices() / n;
    // Half the fleet is latency-strict (cascade only — refinement owns all
    // deeper quality), half budgets 2 ms of synchronous verification.
    SessionConfig cfg = base_cfg;
    cfg.repair_budget_seconds = s % 2 == 0 ? 0.0 : 0.002;
    const SessionId id = service.open_session(
        graph, scrambled_bands(rows, n, k, 0.03, seed ^ 0xf1e5), cfg);
    clients.push_back({id, kind, seed, window});
  }

  const int threads =
      std::max(1, std::min<int>(8, static_cast<int>(clients.size())));
  out.client_threads = threads;

  out.pool_threads = service.executor().num_threads();
  std::atomic<bool> soaking{true};
  std::int64_t backlog_sum = 0;
  // 10ms sampling: coarse enough that the monitor's wakeups don't perturb
  // the workload it is measuring (at 1ms a single-core host loses ~40%
  // updates/sec and two orders of magnitude of p99 to preemption), fine
  // enough for a couple hundred backlog samples per soak.
  std::thread monitor([&] {
    while (soaking.load(std::memory_order_relaxed)) {
      const int backlog = service.executor().pending();
      out.backlog_max = std::max(out.backlog_max, backlog);
      backlog_sum += backlog;
      ++out.backlog_samples;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  WallTimer timer;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t c = static_cast<std::size_t>(t); c < clients.size();
           c += static_cast<std::size_t>(threads)) {
        const Client& client = clients[c];
        auto prev = std::make_shared<const Graph>(
            trace_graph(client.kind, n, client.window, 0, client.seed));
        for (int u = 1; u <= updates; ++u) {
          auto next = std::make_shared<const Graph>(
              trace_graph(client.kind, n, client.window, u, client.seed));
          const GraphDelta delta = diff_graphs(*prev, *next);
          service.submit_update(client.id, next, delta);
          prev = std::move(next);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  // End-of-burst catch-up tick: refinements that kept going stale under
  // full-throttle streaming get one clean pass per session.
  service.quiesce();
  service.poll();
  service.quiesce();
  out.seconds = timer.seconds();
  soaking.store(false, std::memory_order_relaxed);
  monitor.join();
  out.backlog_mean = out.backlog_samples > 0
                         ? static_cast<double>(backlog_sum) /
                               static_cast<double>(out.backlog_samples)
                         : 0.0;
  out.stats = service.stats();
  return out;
}

// ---------------------------------------------------------------------------
// Experiment 2: latency vs damage (cascade-only sessions).

struct LatencyRow {
  VertexId n = 0;
  PartId k = 2;
  VertexId window = 0;
  int updates = 0;
  double damage_mean = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  std::int64_t examined = 0;
};

LatencyRow run_latency(VertexId n, PartId k, VertexId window, int updates) {
  LatencyRow row;
  row.n = n;
  row.k = k;
  row.window = window;
  row.updates = updates;

  SessionConfig cfg;
  cfg.num_parts = k;
  cfg.repair_budget_seconds = 0.0;  // cascade only: the strict latency plane

  const std::uint64_t seed = 0x1a7eULL ^ (static_cast<std::uint64_t>(n) << 8) ^
                             static_cast<std::uint64_t>(window);
  auto prev = std::make_shared<const Graph>(
      trace_graph(TraceKind::kChurn, n, window, 0, seed));
  PartitionSession session(
      prev, scrambled_bands(n, n, k, 0.02, seed ^ 0x5c2a), cfg);

  std::vector<double> seconds;
  double damage = 0.0;
  for (int u = 1; u <= updates; ++u) {
    auto next = std::make_shared<const Graph>(
        trace_graph(TraceKind::kChurn, n, window, u, seed));
    const GraphDelta delta = diff_graphs(*prev, *next);
    const RepairReport rep = session.apply_update(next, delta);
    seconds.push_back(rep.seconds);
    damage += static_cast<double>(rep.damage);
    row.examined += rep.examined;
    prev = std::move(next);
  }
  row.damage_mean = damage / updates;
  row.p50_ms = quantile(seconds, 0.50) * 1e3;
  row.p99_ms = quantile(seconds, 0.99) * 1e3;
  double sum = 0.0;
  for (const double s : seconds) sum += s;
  row.mean_ms = sum / static_cast<double>(seconds.size()) * 1e3;
  return row;
}

// ---------------------------------------------------------------------------
// Experiment 3: churn-trace quality recovery vs from-scratch DPGA.

struct RecoveryRow {
  VertexId n = 0;
  PartId k = 2;
  int updates = 0;
  double session_cut = 0.0;
  double dpga_cut = 0.0;
  double recovery_ratio = 0.0;  ///< dpga_cut / session_cut
  int refinements_applied = 0;
  double session_seconds = 0.0;
  double dpga_seconds = 0.0;
};

RecoveryRow run_recovery(VertexId n, PartId k, int updates, int pool_threads,
                         bool quick) {
  RecoveryRow row;
  row.n = n;
  row.k = k;
  row.updates = updates;

  ServiceConfig service_cfg;
  service_cfg.num_threads = pool_threads;
  PartitionService service(service_cfg);
  SessionConfig cfg;
  cfg.num_parts = k;
  cfg.repair_budget_seconds = 0.001;
  cfg.policy.damage_threshold = 32;   // refine eagerly
  cfg.policy.staleness_updates = 8;
  cfg.policy.deep_damage_threshold = 256;

  const std::uint64_t seed = 0x2ec0ULL ^ static_cast<std::uint64_t>(n);
  auto prev = std::make_shared<const Graph>(
      trace_graph(TraceKind::kChurn, n, 6, 0, seed));
  const SessionId id = service.open_session(
      prev, scrambled_bands(n, n, k, 0.05, seed ^ 0xadd), cfg);

  WallTimer session_timer;
  for (int u = 1; u <= updates; ++u) {
    auto next = std::make_shared<const Graph>(
        trace_graph(TraceKind::kChurn, n, 6, u, seed));
    service.submit_update(id, next, diff_graphs(*prev, *next));
    prev = std::move(next);
    // A short idle gap every few deltas (clients are rarely back-to-back):
    // drain racing refinements, take an idle tick, and let the re-planned
    // job land with its captured epoch intact.
    if (u % 4 == 0) {
      service.quiesce();
      service.poll();
      service.quiesce();
    }
  }
  // End-of-stream catch-up: tick until the policy goes quiet (each clean
  // completion either adopts an improvement or certifies the current state
  // and resets the accumulators).
  for (int i = 0; i < 3; ++i) {
    service.quiesce();
    service.poll();
  }
  service.quiesce();
  row.session_seconds = session_timer.seconds();
  const auto snap = service.snapshot(id);
  row.session_cut = snap->total_cut;
  row.refinements_applied = service.session_stats(id).refinements_applied;

  // From-scratch DPGA on the final graph — the batch repartitioner the
  // streaming session is measured against.
  DpgaConfig dpga = paper_dpga_config(k, Objective::kTotalComm);
  dpga.parallel = pool_threads > 1;
  dpga.ga.hill_climb_offspring = true;
  dpga.ga.max_generations = quick ? 20 : 150;
  dpga.ga.stall_generations = quick ? 8 : 40;
  Rng rng(0xd94a);
  auto init = bench::random_init(*prev, k, dpga.ga.population_size)(rng);
  WallTimer dpga_timer;
  const DpgaResult res =
      run_dpga(*prev, dpga, std::move(init), rng.split(), nullptr);
  row.dpga_seconds = dpga_timer.seconds();
  row.dpga_cut = res.best_metrics.total_cut();
  row.recovery_ratio =
      row.session_cut > 0.0 ? row.dpga_cut / row.session_cut : 1.0;
  return row;
}

// ---------------------------------------------------------------------------
// Experiment 4: durable soak under injected faults + kill/recover.

struct DurabilityResult {
  int sessions = 0;
  int updates = 0;
  std::uint64_t fault_seed = 0;
  double fault_rate = 0.0;
  bool faults_compiled = false;
  double faultfree_p99_ms = 0.0;
  double faulted_p99_ms = 0.0;
  double p99_ratio = 0.0;  ///< faulted / fault-free (acceptance bar: <= 5)
  std::int64_t client_retries = 0;  ///< resubmits after pre-mutation faults
  ServiceStats stats;               ///< the faulted run's ledger
  FaultInjector::SiteCounts sites[kNumFaultSites];
  double run_seconds = 0.0;
  double recovery_seconds = 0.0;
  int sessions_recovered = 0;
  std::size_t records_replayed = 0;
  /// Sum over sessions of (last acknowledged epoch - recovered epoch).
  /// The durability contract says this is ZERO: ack implies durable.
  std::int64_t lost_acked_deltas = 0;
  bool recovered_consistent = true;
};

struct DurablePass {
  double p99_ms = 0.0;
  double seconds = 0.0;
  std::int64_t client_retries = 0;
  ServiceStats stats;
  std::vector<std::pair<SessionId, std::uint64_t>> acked;  ///< id -> epoch
  /// Injector ledger, sampled while the pass's scope was still armed.
  FaultInjector::SiteCounts sites[kNumFaultSites];
};

/// One durable churn soak over `wal_dir`.  The service dies WITHOUT an
/// orderly close (the WAL's per-record fsync is what recovery leans on).
DurablePass run_durable_pass(const std::string& wal_dir, int num_sessions,
                             int updates, VertexId n, PartId k,
                             int pool_threads, std::uint64_t fault_seed,
                             double fault_rate) {
  namespace fs = std::filesystem;
  fs::remove_all(wal_dir);

  ServiceConfig sc;
  sc.num_threads = pool_threads;
  sc.durability.dir = wal_dir;
  sc.durability.compaction.damage_threshold = 256;
  // Fast retry schedule: the soak measures fault *absorption*, and a 10%
  // schedule injects often enough that production-scale sleeps would swamp
  // the p99 comparison with pure waiting.
  sc.durability.io_retry.max_attempts = 12;
  sc.durability.io_retry.initial_seconds = 1e-5;
  sc.durability.io_retry.max_seconds = 1e-3;
  // Ladder armed with headroom: it should fire on genuine pressure spikes,
  // not on every update.
  sc.overload.shed_verification_backlog = 16;
  sc.overload.defer_refinement_backlog = 32;

  DurablePass pass;
  {
    PartitionService service(sc);

    SessionConfig cfg;
    cfg.num_parts = k;
    cfg.repair_budget_seconds = 0.001;
    cfg.policy.damage_threshold = 64;
    cfg.policy.staleness_updates = 16;
    cfg.policy.allow_deep = false;

    struct Client {
      SessionId id;
      std::uint64_t seed;
      VertexId window;
      std::uint64_t acked_epoch = 0;
    };
    std::vector<Client> clients;
    for (int s = 0; s < num_sessions; ++s) {
      const auto seed = 0xd07aULL + static_cast<std::uint64_t>(s) * 257;
      const VertexId window = 4 + 2 * (s % 3);
      auto graph = std::make_shared<const Graph>(
          trace_graph(TraceKind::kChurn, n, window, 0, seed));
      const SessionId id = service.open_session(
          graph, scrambled_bands(n, n, k, 0.03, seed ^ 0x77), cfg);
      clients.push_back({id, seed, window, 0});
    }

    // Arm AFTER the sessions exist: session creation writes the epoch-0
    // checkpoints, and those writers are not under a client retry loop.
    std::unique_ptr<ScopedFaultInjection> scope;
    if (fault_rate > 0.0) {
      scope = std::make_unique<ScopedFaultInjection>(fault_seed, fault_rate);
    }

    std::atomic<std::int64_t> retries{0};
    const int threads =
        std::max(1, std::min<int>(4, static_cast<int>(clients.size())));
    WallTimer timer;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (std::size_t c = static_cast<std::size_t>(t); c < clients.size();
             c += static_cast<std::size_t>(threads)) {
          Client& client = clients[c];
          auto prev = std::make_shared<const Graph>(trace_graph(
              TraceKind::kChurn, n, client.window, 0, client.seed));
          for (int u = 1; u <= updates; ++u) {
            auto next = std::make_shared<const Graph>(trace_graph(
                TraceKind::kChurn, n, client.window, u, client.seed));
            const GraphDelta delta = diff_graphs(*prev, *next);
            for (;;) {
              try {
                const RepairReport rep =
                    service.submit_update(client.id, next, delta);
                client.acked_epoch = rep.update_epoch;
                break;
              } catch (const std::bad_alloc&) {
                // Injected before any mutation: resubmit the same delta.
                retries.fetch_add(1, std::memory_order_relaxed);
              } catch (const OverloadError&) {
                retries.fetch_add(1, std::memory_order_relaxed);
                std::this_thread::sleep_for(std::chrono::microseconds(200));
              }
            }
            prev = std::move(next);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    service.quiesce();
    pass.seconds = timer.seconds();
    pass.client_retries = retries.load(std::memory_order_relaxed);
    pass.stats = service.stats();
    pass.p99_ms = pass.stats.p99_repair_seconds * 1e3;
    for (const Client& client : clients) {
      pass.acked.emplace_back(client.id, client.acked_epoch);
    }
    // Capture the schedule's ledger before the scope disarms + resets it.
    if (scope) {
      for (int s = 0; s < kNumFaultSites; ++s) {
        pass.sites[s] =
            FaultInjector::instance().counts(static_cast<FaultSite>(s));
      }
    }
  }  // scope disarms, then the service dies with no close — the "crash"
  return pass;
}

DurabilityResult run_durability(int num_sessions, int updates, VertexId n,
                                PartId k, int pool_threads,
                                std::uint64_t fault_seed, double fault_rate) {
  namespace fs = std::filesystem;
  DurabilityResult out;
  out.sessions = num_sessions;
  out.updates = updates;
  out.fault_seed = fault_seed;
  out.fault_rate = fault_rate;
#ifdef GAPART_FAULT_INJECTION
  out.faults_compiled = true;
#else
  out.fault_rate = 0.0;  // seam compiled out: report an honest zero
#endif

  const std::string base =
      (fs::temp_directory_path() / "gapart_soak_wal").string();

  // Baseline: same trace, same durable config, no injection.
  const DurablePass clean =
      run_durable_pass(base + "_clean", num_sessions, updates, n, k,
                       pool_threads, 0, 0.0);
  out.faultfree_p99_ms = clean.p99_ms;
  fs::remove_all(base + "_clean");

  // Faulted run (the pass arms its own scope after session creation — the
  // epoch-0 checkpoint writers are not under a client retry loop — and
  // samples the injector ledger before the scope disarms).
  const std::string dir = base + "_faulted";
  {
    const DurablePass faulted =
        run_durable_pass(dir, num_sessions, updates, n, k, pool_threads,
                         fault_seed, out.fault_rate);
    for (int s = 0; s < kNumFaultSites; ++s) out.sites[s] = faulted.sites[s];
    out.faulted_p99_ms = faulted.p99_ms;
    out.run_seconds = faulted.seconds;
    out.client_retries = faulted.client_retries;
    out.stats = faulted.stats;
    out.p99_ratio = out.faultfree_p99_ms > 0.0
                        ? out.faulted_p99_ms / out.faultfree_p99_ms
                        : 0.0;

    // Recover from the "crash" and audit the durability contract.
    ServiceConfig sc;
    sc.num_threads = pool_threads;
    sc.durability.dir = dir;
    PartitionService recovered(sc);
    SessionConfig cfg;
    cfg.num_parts = k;
    cfg.repair_budget_seconds = 0.001;
    WallTimer recover_timer;
    const auto reports = recovered.recover(cfg);
    out.recovery_seconds = recover_timer.seconds();
    out.sessions_recovered = static_cast<int>(reports.size());
    for (const auto& report : reports) {
      out.records_replayed += report.records_replayed;
      for (const auto& [id, acked] : faulted.acked) {
        if (id == report.session_id && acked > report.final_epoch) {
          out.lost_acked_deltas +=
              static_cast<std::int64_t>(acked - report.final_epoch);
        }
      }
      const auto snap = recovered.snapshot(report.session_id);
      if (!is_valid_assignment(*snap->graph, snap->assignment, k)) {
        out.recovered_consistent = false;
      }
    }
  }
  fs::remove_all(dir);
  return out;
}

// ---------------------------------------------------------------------------
// Experiment 5: replication over a loopback link + failover.

struct ReplicationResult {
  int sessions = 0;
  int updates = 0;
  double fault_rate = 0.0;
  double seconds = 0.0;
  double ack_ms_p50 = 0.0;  ///< submit -> follower-acked, per update
  double ack_ms_p99 = 0.0;
  std::int64_t client_retries = 0;
  ShipperStats ship;
  FollowerStats follower;
  double failover_ms = 0.0;
  std::uint64_t promoted_generation = 0;
  int promoted_sessions = 0;
  std::int64_t lost_acked_deltas = 0;
  bool replicated_consistent = true;
};

ReplicationResult run_replication(int num_sessions, int updates, VertexId n,
                                  PartId k, std::uint64_t fault_seed,
                                  double fault_rate) {
  namespace fs = std::filesystem;
  const std::string base =
      (fs::temp_directory_path() / "gapart_soak_rep").string();
  fs::remove_all(base + "_leader");
  fs::remove_all(base + "_follower");

  ReplicationResult out;
  out.sessions = num_sessions;
  out.updates = updates;
  out.fault_rate = fault_rate;

  SessionConfig cfg;
  cfg.num_parts = k;
  // A large budget makes the admitted verification rounds a pure function
  // of the trace, so leader, follower, and reference replays are bit-equal.
  cfg.repair_budget_seconds = 60.0;

  // Never-crashed reference: per session, the content digest at every epoch
  // of the same deterministic trace.
  std::vector<std::vector<std::uint64_t>> reference;
  for (int s = 0; s < num_sessions; ++s) {
    const auto seed = 0x4e9bULL + static_cast<std::uint64_t>(s) * 419;
    const VertexId window = 4 + 2 * (s % 3);
    auto prev = std::make_shared<const Graph>(
        trace_graph(TraceKind::kChurn, n, window, 0, seed));
    PartitionSession session(prev, column_bands(n, n, k), cfg);
    std::vector<std::uint64_t> digests{session.state_digest()};
    for (int u = 1; u <= updates; ++u) {
      auto next = std::make_shared<const Graph>(
          trace_graph(TraceKind::kChurn, n, window, u, seed));
      session.apply_update(next, diff_graphs(*prev, *next));
      prev = std::move(next);
      digests.push_back(session.state_digest());
    }
    reference.push_back(std::move(digests));
  }

  ServiceConfig lsc;
  lsc.num_threads = 2;
  lsc.background_refinement = false;  // determinism: the delta plane only
  lsc.durability.dir = base + "_leader";
  lsc.durability.ship_retain_bytes = 0;  // strict lockstep compaction
  lsc.durability.io_retry.max_attempts = 12;
  lsc.durability.io_retry.initial_seconds = 1e-5;
  lsc.durability.io_retry.max_seconds = 1e-3;
  ServiceConfig fsc = lsc;
  fsc.durability.dir = base + "_follower";
  fsc.durability.compaction.damage_threshold = 0;  // lockstep only
  fsc.durability.compaction.bytes_threshold = 0;

  auto link = LoopbackTransport::create_pair();
  auto leader = std::make_unique<PartitionService>(lsc);
  PartitionService follower_svc(fsc);
  ShipperConfig ship_cfg;
  ship_cfg.resume_after_stalled_pumps = 2;
  auto shipper =
      std::make_unique<ReplicationShipper>(*leader, *link.first, ship_cfg);
  FollowerConfig fcfg;
  fcfg.base = cfg;
  ReplicationFollower follower(follower_svc, *link.second, fcfg);
  follower.start_follower();

  std::vector<SessionId> ids;
  std::vector<std::shared_ptr<const Graph>> prevs;
  for (int s = 0; s < num_sessions; ++s) {
    const auto seed = 0x4e9bULL + static_cast<std::uint64_t>(s) * 419;
    const VertexId window = 4 + 2 * (s % 3);
    auto g0 = std::make_shared<const Graph>(
        trace_graph(TraceKind::kChurn, n, window, 0, seed));
    ids.push_back(leader->open_session(g0, column_bands(n, n, k), cfg));
    prevs.push_back(std::move(g0));
  }
  shipper->pump();  // attach every session at epoch 0
  follower.pump();

  // Arm AFTER the sessions exist (their epoch-0 checkpoints are not under a
  // retry loop), stream the trace, and track per-update ack latency.
  {
    std::unique_ptr<ScopedFaultInjection> scope;
    if (fault_rate > 0.0) {
      scope = std::make_unique<ScopedFaultInjection>(fault_seed, fault_rate);
    }
    WallTimer run_timer;
    std::vector<double> ack_seconds;
    for (int u = 1; u <= updates; ++u) {
      for (int s = 0; s < num_sessions; ++s) {
        const auto seed = 0x4e9bULL + static_cast<std::uint64_t>(s) * 419;
        const VertexId window = 4 + 2 * (s % 3);
        auto next = std::make_shared<const Graph>(
            trace_graph(TraceKind::kChurn, n, window, u, seed));
        const GraphDelta delta = diff_graphs(*prevs[s], *next);
        std::uint64_t epoch = 0;
        for (;;) {
          try {
            epoch = leader->submit_update(ids[s], next, delta).update_epoch;
            break;
          } catch (const std::bad_alloc&) {
            ++out.client_retries;  // injected pre-mutation: resubmit
          }
        }
        prevs[s] = std::move(next);
        WallTimer ack_timer;
        for (int pump = 0; pump < 400; ++pump) {
          shipper->pump();
          follower.pump();
          if (shipper->acked_epoch(ids[s]) >= epoch) break;
        }
        ack_seconds.push_back(ack_timer.seconds());
      }
    }
    out.seconds = run_timer.seconds();
    out.ack_ms_p50 = quantile(ack_seconds, 0.50) * 1e3;
    out.ack_ms_p99 = quantile(ack_seconds, 0.99) * 1e3;
  }  // the storm disarms; in-flight damage stays for failover to absorb

  // Record what the replicated system acknowledged, then kill the leader
  // WITHOUT an orderly close and promote the follower.
  std::vector<std::uint64_t> acked;
  for (const SessionId id : ids) acked.push_back(shipper->acked_epoch(id));
  out.ship = shipper->stats();
  shipper.reset();
  leader.reset();

  const PromotionReport report = follower.promote();
  out.follower = follower.stats();
  out.failover_ms = report.seconds * 1e3;
  out.promoted_generation = report.generation;
  out.promoted_sessions = static_cast<int>(report.sessions.size());
  for (const PromotedSession& promoted : report.sessions) {
    for (std::size_t s = 0; s < ids.size(); ++s) {
      if (ids[s] != promoted.id) continue;
      if (acked[s] > promoted.epoch) {
        out.lost_acked_deltas +=
            static_cast<std::int64_t>(acked[s] - promoted.epoch);
      }
      if (promoted.epoch >= reference[s].size() ||
          promoted.digest != reference[s][promoted.epoch]) {
        out.replicated_consistent = false;
      }
    }
  }
  if (report.sessions.size() != ids.size()) out.replicated_consistent = false;

  fs::remove_all(base + "_leader");
  fs::remove_all(base + "_follower");
  return out;
}

// ---------------------------------------------------------------------------

void emit_json(const SoakResult& soak, const std::vector<LatencyRow>& latency,
               const std::vector<RecoveryRow>& recovery,
               const DurabilityResult& durability,
               const ReplicationResult& replication) {
  std::printf("{\n");
  std::printf("  \"bench\": \"soak_service\",\n");
  std::printf(
      "  \"soak\": {\"sessions\": %d, \"client_threads\": %d, "
      "\"updates_per_session\": %d, \"seconds\": %.3f, "
      "\"updates_per_second\": %.1f, \"total_damage\": %llu, "
      "\"p50_repair_ms\": %.4f, \"p99_repair_ms\": %.4f, "
      "\"max_repair_ms\": %.4f, \"refinements_planned\": %d, "
      "\"refinements_applied\": %d, \"refinements_stale\": %d, "
      "\"refinements_no_better\": %d, "
      "\"full_evaluations\": %lld, \"delta_evaluations\": %lld, "
      "\"pool_threads\": %d, \"backlog_max\": %d, \"backlog_mean\": %.2f, "
      "\"backlog_samples\": %d},\n",
      soak.sessions, soak.client_threads, soak.updates_per_session,
      soak.seconds,
      soak.seconds > 0.0
          ? static_cast<double>(soak.stats.updates) / soak.seconds
          : 0.0,
      static_cast<unsigned long long>(soak.stats.total_damage),
      soak.stats.p50_repair_seconds * 1e3, soak.stats.p99_repair_seconds * 1e3,
      soak.stats.max_repair_seconds * 1e3, soak.stats.refinements_planned,
      soak.stats.refinements_applied, soak.stats.refinements_stale,
      soak.stats.refinements_no_better,
      static_cast<long long>(soak.stats.full_evaluations),
      static_cast<long long>(soak.stats.delta_evaluations),
      soak.pool_threads, soak.backlog_max, soak.backlog_mean,
      soak.backlog_samples);

  std::printf("  \"latency\": [\n");
  for (std::size_t i = 0; i < latency.size(); ++i) {
    const LatencyRow& r = latency[i];
    std::printf(
        "    {\"n\": %d, \"k\": %d, \"window\": %d, \"updates\": %d, "
        "\"damage_mean\": %.1f, \"mean_ms\": %.4f, \"p50_ms\": %.4f, "
        "\"p99_ms\": %.4f, \"examined\": %lld}%s\n",
        static_cast<int>(r.n), static_cast<int>(r.k),
        static_cast<int>(r.window), r.updates, r.damage_mean, r.mean_ms,
        r.p50_ms, r.p99_ms, static_cast<long long>(r.examined),
        i + 1 < latency.size() ? "," : "");
  }
  std::printf("  ],\n");

  std::printf("  \"recovery\": [\n");
  for (std::size_t i = 0; i < recovery.size(); ++i) {
    const RecoveryRow& r = recovery[i];
    std::printf(
        "    {\"trace\": \"churn\", \"n\": %d, \"k\": %d, \"updates\": %d, "
        "\"session_cut\": %.1f, \"dpga_cut\": %.1f, "
        "\"recovery_ratio\": %.3f, \"refinements_applied\": %d, "
        "\"session_seconds\": %.3f, \"dpga_seconds\": %.3f}%s\n",
        static_cast<int>(r.n), static_cast<int>(r.k), r.updates, r.session_cut,
        r.dpga_cut, r.recovery_ratio, r.refinements_applied,
        r.session_seconds, r.dpga_seconds,
        i + 1 < recovery.size() ? "," : "");
  }
  std::printf("  ],\n");

  const DurabilityResult& d = durability;
  const ServiceStats& ds = d.stats;
  std::printf("  \"durability\": {\n");
  std::printf(
      "    \"sessions\": %d, \"updates_per_session\": %d, "
      "\"fault_seed\": %llu, \"fault_rate\": %.3f, "
      "\"faults_compiled\": %s,\n",
      d.sessions, d.updates, static_cast<unsigned long long>(d.fault_seed),
      d.fault_rate, d.faults_compiled ? "true" : "false");
  std::printf(
      "    \"faultfree_p99_ms\": %.4f, \"faulted_p99_ms\": %.4f, "
      "\"p99_ratio\": %.2f, \"run_seconds\": %.3f,\n",
      d.faultfree_p99_ms, d.faulted_p99_ms, d.p99_ratio, d.run_seconds);
  std::printf(
      "    \"wal\": {\"appends\": %llu, \"append_retries\": %llu, "
      "\"fsyncs\": %llu, \"bytes_appended\": %llu, \"compactions\": %llu, "
      "\"compaction_failures\": %llu},\n",
      static_cast<unsigned long long>(ds.wal_appends),
      static_cast<unsigned long long>(ds.wal_append_retries),
      static_cast<unsigned long long>(ds.wal_fsyncs),
      static_cast<unsigned long long>(ds.wal_bytes_appended),
      static_cast<unsigned long long>(ds.wal_compactions),
      static_cast<unsigned long long>(ds.wal_compaction_failures));
  std::printf(
      "    \"overload\": {\"client_retries\": %lld, "
      "\"updates_rejected\": %lld, \"verifications_shed\": %lld, "
      "\"refinements_deferred\": %lld, \"refine_start_failures\": %lld},\n",
      static_cast<long long>(d.client_retries),
      static_cast<long long>(ds.updates_rejected),
      static_cast<long long>(ds.verifications_shed),
      static_cast<long long>(ds.refinements_deferred),
      static_cast<long long>(ds.refine_start_failures));
  std::printf("    \"faults\": [");
  for (int s = 0; s < kNumFaultSites; ++s) {
    std::printf(
        "%s{\"site\": \"%s\", \"checked\": %llu, \"injected\": %llu}",
        s > 0 ? ", " : "", fault_site_name(static_cast<FaultSite>(s)),
        static_cast<unsigned long long>(d.sites[s].checked),
        static_cast<unsigned long long>(d.sites[s].injected));
  }
  std::printf("],\n");
  std::printf(
      "    \"recovery_seconds\": %.4f, \"sessions_recovered\": %d, "
      "\"records_replayed\": %zu, \"lost_acked_deltas\": %lld, "
      "\"recovered_consistent\": %s, \"failed_sessions\": %d\n",
      d.recovery_seconds, d.sessions_recovered, d.records_replayed,
      static_cast<long long>(d.lost_acked_deltas),
      d.recovered_consistent ? "true" : "false", ds.failed_sessions);
  std::printf("  },\n");

  const ReplicationResult& rep = replication;
  std::printf("  \"replication\": {\n");
  std::printf(
      "    \"sessions\": %d, \"updates_per_session\": %d, "
      "\"fault_rate\": %.3f, \"seconds\": %.3f, \"client_retries\": %lld,\n",
      rep.sessions, rep.updates, rep.fault_rate, rep.seconds,
      static_cast<long long>(rep.client_retries));
  std::printf(
      "    \"ack_ms_p50\": %.4f, \"ack_ms_p99\": %.4f, "
      "\"lag_epochs_p50\": %.2f, \"lag_epochs_p99\": %.2f,\n",
      rep.ack_ms_p50, rep.ack_ms_p99, rep.ship.lag_epochs_p50,
      rep.ship.lag_epochs_p99);
  std::printf(
      "    \"frames_sent\": %llu, \"acks_received\": %llu, "
      "\"send_failures\": %llu, \"resumes\": %llu, "
      "\"snapshot_resyncs\": %llu, \"backpressure_stalls\": %llu,\n",
      static_cast<unsigned long long>(rep.ship.frames_sent),
      static_cast<unsigned long long>(rep.ship.acks_received),
      static_cast<unsigned long long>(rep.ship.send_failures),
      static_cast<unsigned long long>(rep.ship.resumes),
      static_cast<unsigned long long>(rep.ship.snapshot_resyncs),
      static_cast<unsigned long long>(rep.ship.backpressure_stalls));
  std::printf(
      "    \"records_applied\": %llu, \"compacts_applied\": %llu, "
      "\"digests_verified\": %llu, \"duplicates_dropped\": %llu, "
      "\"gaps_dropped\": %llu, \"corrupt_rejected\": %llu, "
      "\"fenced_rejected\": %llu, \"apply_failures\": %llu,\n",
      static_cast<unsigned long long>(rep.follower.records_applied),
      static_cast<unsigned long long>(rep.follower.compacts_applied),
      static_cast<unsigned long long>(rep.follower.digests_verified),
      static_cast<unsigned long long>(rep.follower.duplicates_dropped),
      static_cast<unsigned long long>(rep.follower.gaps_dropped),
      static_cast<unsigned long long>(rep.follower.corrupt_rejected),
      static_cast<unsigned long long>(rep.follower.fenced_rejected),
      static_cast<unsigned long long>(rep.follower.apply_failures));
  std::printf(
      "    \"failover_ms\": %.3f, \"promoted_generation\": %llu, "
      "\"promoted_sessions\": %d, \"lost_acked_deltas\": %lld, "
      "\"diverged\": %s, \"replicated_consistent\": %s\n",
      rep.failover_ms,
      static_cast<unsigned long long>(rep.promoted_generation),
      rep.promoted_sessions, static_cast<long long>(rep.lost_acked_deltas),
      rep.follower.diverged ? "true" : "false",
      rep.replicated_consistent ? "true" : "false");
  std::printf("  }\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool quick = args.flag("quick") || quick_mode_enabled();

  // --telemetry traces the whole run: spans from every plane collect into
  // per-thread rings, exported at exit as Chrome trace_event JSON (open in
  // chrome://tracing or https://ui.perfetto.dev) alongside a metrics dump
  // of the registry.  Requires a GAPART_TELEMETRY build; without it the
  // files are still written but carry no span data.
  const bool telemetry = args.flag("telemetry");
  const std::string trace_out = args.str("trace-out", "soak_trace.json");
  const std::string metrics_out = args.str("metrics-out", "soak_metrics.json");
  if (telemetry) Tracer::instance().enable();
  const int sessions = args.integer("sessions", 32);
  const int updates = args.integer("updates", quick ? 10 : 40);
  const int pool_threads =
      args.integer("threads", 0) > 0 ? args.integer("threads", 0)
                                     : Executor::hardware_threads();

  const VertexId soak_n = quick ? 24 : 48;
  const SoakResult soak =
      run_soak(sessions, updates, soak_n, /*k=*/4, pool_threads,
               /*deep_refinement=*/!quick);

  std::vector<LatencyRow> latency;
  const std::vector<VertexId> sizes =
      quick ? std::vector<VertexId>{48, 96}
            : std::vector<VertexId>{64, 128, 256};
  const int lat_updates = quick ? 20 : 60;
  for (const VertexId n : sizes) {
    for (const VertexId w : {VertexId{2}, VertexId{4}, VertexId{8},
                             VertexId{16}}) {
      latency.push_back(run_latency(n, /*k=*/2, w, lat_updates));
    }
  }

  std::vector<RecoveryRow> recovery;
  recovery.push_back(run_recovery(quick ? 16 : 32, /*k=*/4,
                                  quick ? 12 : 40, pool_threads, quick));
  if (!quick) {
    recovery.push_back(run_recovery(24, /*k=*/2, 40, pool_threads, quick));
  }

  // --faults=<seed> arms the deterministic injector for the durability
  // experiment; --fault-rate tunes the per-site failure probability.
  const auto fault_seed =
      static_cast<std::uint64_t>(args.integer("faults", 0));
  const double fault_rate =
      fault_seed != 0 ? args.real("fault-rate", 0.10) : 0.0;
  const DurabilityResult durability = run_durability(
      quick ? 4 : 8, quick ? 12 : 24, quick ? 16 : 24, /*k=*/4, pool_threads,
      fault_seed, fault_rate);

  // The replication experiment always runs (fault-free it is the baseline
  // ship-lag measurement); --replicate arms a 10% transport + I/O fault
  // storm over the same trace, sharing the --faults seed when given.
  const bool replicate = args.flag("replicate");
  const std::uint64_t rep_seed =
      replicate ? (fault_seed != 0 ? fault_seed : 2026) : 0;
  const ReplicationResult replication = run_replication(
      quick ? 2 : 4, quick ? 8 : 16, quick ? 12 : 16, /*k=*/3, rep_seed,
      replicate ? args.real("fault-rate", 0.10) : 0.0);

  emit_json(soak, latency, recovery, durability, replication);

  if (telemetry) {
    Tracer::instance().disable();
    {
      std::ofstream os(trace_out);
      Tracer::instance().export_chrome_trace(os);
    }
    {
      std::ofstream os(metrics_out);
      TelemetryRegistry::instance().write_json(os);
    }
    std::fprintf(stderr,
                 "telemetry: wrote trace %s (%zu events buffered) and "
                 "metrics %s\n",
                 trace_out.c_str(), Tracer::instance().buffered_events(),
                 metrics_out.c_str());
  }
  return 0;
}
