// Ablation: selection scheme and elitism.  The paper does not name its
// selection mechanism; this harness documents how the choice (and the elite
// count) affects DKNUX quality at the paper's population settings, which
// justifies the library's tournament-with-elitism default.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/init.hpp"

namespace {

using namespace gapart;
using namespace gapart::bench;

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto settings = RunSettings::from_cli(args, /*default_gens=*/150,
                                              /*default_stall=*/0);
  print_banner("Ablation — selection scheme x elitism",
               "Maini et al., SC'94 (§3, selection unspecified)", settings);

  const Mesh mesh = paper_mesh(139);
  const PartId k = 4;
  std::printf("graph 139, %d parts: %s\n\n", k, mesh.graph.summary().c_str());

  TextTable table({"selection", "elites", "best cut", "mean cut", "sec"});
  std::uint64_t salt = 1;
  for (const SelectionScheme scheme :
       {SelectionScheme::kTournament, SelectionScheme::kRoulette,
        SelectionScheme::kRank}) {
    for (const int elites : {0, 2, 8}) {
      auto cfg = harness_dpga_config(k, Objective::kTotalComm, settings);
      cfg.ga.selection = scheme;
      cfg.ga.elite_count = elites;
      cfg.ga.stall_generations = 0;
      const auto cell = best_of_runs(
          mesh.graph, cfg,
          random_init(mesh.graph, k, cfg.ga.population_size), settings,
          salt++);
      table.start_row();
      table.append(selection_name(scheme));
      table.append(static_cast<long long>(elites));
      table.append(cell.total_cut, 0);
      table.append(cell.mean_total_cut, 1);
      table.append(cell.seconds, 1);
    }
    table.add_rule();
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Shape check: some elitism is essential under the generational model\n"
      "(elites=0 loses the best individual to crossover/mutation churn);\n"
      "tournament and rank behave similarly, roulette is the weakest —\n"
      "supporting tournament+2 elites as the library default.\n");
  return 0;
}
