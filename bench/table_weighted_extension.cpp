// Extension bench for the paper's §4 claim: "Graphs with unit weight nodes
// and edges were assumed, although weighted edges and nodes can also be
// handled easily."
//
// This harness re-runs the Table-2 pipeline (RSB seed -> DKNUX refinement,
// Fitness 1) on weighted variants of the paper-sized meshes:
//   - vertex weights: work density doubles across the domain (x-gradient),
//   - edge weights: interaction strength decays with edge length (short
//     edges talk more — typical of FE stencils).
// Reported cut values are edge-WEIGHT sums; balance is by vertex WEIGHT.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "spectral/rsb.hpp"

namespace {

using namespace gapart;
using namespace gapart::bench;

/// Weighted copy of a mesh graph (weights as described above).
Graph weighted_variant(const Graph& g) {
  GraphBuilder b(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const Point2 p = g.coordinate(v);
    b.set_vertex_weight(v, 1.0 + p.x);  // 1..2 across the domain
    b.set_coordinate(v, p);
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      if (u <= v) continue;
      const double len =
          std::sqrt(squared_distance(p, g.coordinate(u))) + 1e-9;
      // Shorter edges carry more interaction; normalize to ~O(1).
      b.add_edge(v, u, 0.05 / len);
    }
  }
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto settings = RunSettings::from_cli(args, /*default_gens=*/400,
                                              /*default_stall=*/150);
  print_banner(
      "Extension — weighted vertices & edges (paper §4: \"can also be "
      "handled easily\")",
      "Maini et al., SC'94, §4 weighted-graph claim", settings);

  TextTable table({"graph", "parts", "RSB cut(w)", "DKNUX cut(w)",
                   "improvement", "GA weight imb", "sec"});
  for (const VertexId nodes : {139, 213}) {
    const Mesh mesh = paper_mesh(nodes);
    const Graph g = weighted_variant(mesh.graph);
    std::printf("graph %d (weighted): %s\n", nodes, g.summary().c_str());
    for (const PartId k : {2, 4, 8}) {
      Rng rng(settings.base_seed + static_cast<std::uint64_t>(nodes));

      const Assignment rsb = rsb_partition(g, k, rng);
      const double rsb_cut = compute_metrics(g, rsb, k).total_cut();

      auto cfg = harness_dpga_config(k, Objective::kTotalComm, settings);
      // The quadratic imbalance term is scale-sensitive: with weights in
      // [1,2] a one-vertex move costs ~2-8, comparable to unit graphs, so
      // lambda = 1 remains appropriate.
      const auto cell =
          best_of_runs(g, cfg, seeded_init(rsb, cfg.ga.population_size),
                       settings,
                       static_cast<std::uint64_t>(nodes * 100 + k));

      table.start_row();
      table.append(std::to_string(nodes) + " nodes");
      table.append(static_cast<long long>(k));
      table.append(rsb_cut, 2);
      table.append(cell.total_cut, 2);
      table.append(rsb_cut - cell.total_cut, 2);
      table.append(cell.imbalance_sq, 2);
      table.append(cell.seconds, 1);
    }
    table.add_rule();
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Shape check: the identical pipeline runs unchanged on weighted\n"
      "graphs — the GA refines RSB's weighted cut while keeping the\n"
      "weighted loads balanced, substantiating the paper's §4 claim.\n");
  return 0;
}
