#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/init.hpp"

namespace gapart::bench {

RunSettings RunSettings::from_cli(const CliArgs& args, int default_gens,
                                  int default_stall,
                                  bool default_hill_climb) {
  RunSettings s;
  s.quick = args.flag("quick", quick_mode_enabled());
  s.runs = args.integer("runs", s.quick ? 2 : 5);
  s.max_generations = args.integer("gens", s.quick ? 60 : default_gens);
  s.stall_generations = args.integer("stall", s.quick ? 0 : default_stall);
  s.hill_climb = args.flag("hc", default_hill_climb);
  s.hill_climb_fraction = args.real("hc-fraction", s.hill_climb_fraction);
  s.base_seed = static_cast<std::uint64_t>(
      args.integer("seed", static_cast<int>(s.base_seed)));
  return s;
}

Assignment column_bands(VertexId rows, VertexId cols, PartId k) {
  Assignment a(static_cast<std::size_t>(rows * cols));
  for (VertexId v = 0; v < rows * cols; ++v) {
    a[static_cast<std::size_t>(v)] = static_cast<PartId>(
        std::min<std::int64_t>(k - 1, static_cast<std::int64_t>(v % cols) * k /
                                          cols));
  }
  return a;
}

DamagedGrid damaged_block_grid(VertexId n, PartId k, int damage,
                               std::uint64_t seed) {
  DamagedGrid out;
  const VertexId total = n * n;
  out.start.resize(static_cast<std::size_t>(total));
  for (VertexId v = 0; v < total; ++v) {
    out.start[static_cast<std::size_t>(v)] = static_cast<PartId>(
        std::min<std::int64_t>(k - 1, static_cast<std::int64_t>(v) * k / total));
  }
  // The scramble window is the 8n+1 cells around the centre — fewer on
  // grids small enough for the clamp below to fold it onto the edges.
  // Re-drawing on collision keeps `damaged` duplicate-free (the nominal
  // damage count is the number of distinct scrambled vertices), so the
  // window must stay strictly larger than the damage or the redraw loop
  // could never find a free cell.
  const std::int64_t window =
      std::min<std::int64_t>(8 * static_cast<std::int64_t>(n) + 1, total);
  GAPART_REQUIRE(damage < window, "damage ", damage, " not below the ",
                 window, "-cell scramble window of an n = ", n, " grid");
  Rng rng(seed);
  const VertexId center = total / 2;
  std::vector<char> hit(static_cast<std::size_t>(total), 0);
  for (int i = 0; i < damage; ++i) {
    // Scramble within a window around the centre so the damage is localized.
    VertexId v;
    do {
      v = static_cast<VertexId>(std::clamp<std::int64_t>(
          center + rng.uniform_int(-4 * static_cast<int>(n),
                                   4 * static_cast<int>(n)),
          0, total - 1));
    } while (hit[static_cast<std::size_t>(v)]);
    hit[static_cast<std::size_t>(v)] = 1;
    out.start[static_cast<std::size_t>(v)] =
        static_cast<PartId>(rng.uniform_int(k));
    out.damaged.push_back(v);
  }
  return out;
}

DpgaConfig harness_dpga_config(PartId num_parts, Objective objective,
                               const RunSettings& settings) {
  DpgaConfig cfg = paper_dpga_config(num_parts, objective);
  cfg.ga.max_generations = settings.max_generations;
  cfg.ga.stall_generations = settings.stall_generations;
  cfg.ga.hill_climb_offspring = settings.hill_climb;
  cfg.ga.hill_climb_fraction = settings.hill_climb_fraction;
  return cfg;
}

CellResult best_of_runs(const Graph& g, const DpgaConfig& config,
                        const InitFactory& init, const RunSettings& settings,
                        std::uint64_t salt) {
  CellResult cell;
  WallTimer timer;
  bool first = true;
  double sum_total = 0.0;
  double sum_max = 0.0;
  for (int run = 0; run < settings.runs; ++run) {
    Rng rng(settings.base_seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^
            (static_cast<std::uint64_t>(run) << 32));
    auto initial = init(rng);
    const DpgaResult res = run_dpga(g, config, std::move(initial), rng.split());
    sum_total += res.best_metrics.total_cut();
    sum_max += res.best_metrics.max_part_cut;
    if (first || res.best_fitness > cell.best_fitness) {
      first = false;
      cell.best_fitness = res.best_fitness;
      cell.total_cut = res.best_metrics.total_cut();
      cell.max_part_cut = res.best_metrics.max_part_cut;
      cell.imbalance_sq = res.best_metrics.imbalance_sq;
      cell.generations = res.generations;
    }
  }
  cell.mean_total_cut = sum_total / settings.runs;
  cell.mean_max_part_cut = sum_max / settings.runs;
  cell.seconds = timer.seconds();
  return cell;
}

InitFactory random_init(const Graph& g, PartId num_parts, int population) {
  const VertexId n = g.num_vertices();
  return [n, num_parts, population](Rng& rng) {
    return make_random_population(n, num_parts, population, rng);
  };
}

InitFactory seeded_init(const Assignment& seed, int population,
                        double swap_fraction) {
  return [seed, population, swap_fraction](Rng& rng) {
    return make_seeded_population(seed, population, swap_fraction, rng);
  };
}

InitFactory incremental_init(const Graph& grown, const Assignment& previous,
                             PartId num_parts, int population,
                             double swap_fraction) {
  return [&grown, previous, num_parts, population,
          swap_fraction](Rng& rng) {
    return make_incremental_population(grown, previous, num_parts, population,
                                       swap_fraction, rng);
  };
}

std::string paper_vs(double paper_value, double measured) {
  return format_double(paper_value, 0) + " / " + format_double(measured, 0);
}

void print_banner(const std::string& title, const std::string& paper_ref,
                  const RunSettings& settings) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf(
      "GA settings: DPGA, population 320 (16 islands, 4-cube), p_c=0.7, "
      "p_m=0.01\n");
  std::printf("Runs per cell: %d (tables report best run)  gens<=%d  stall=%d"
              "  hill-climb(3.6)=%s%s\n",
              settings.runs, settings.max_generations,
              settings.stall_generations,
              settings.hill_climb ? "on" : "off",
              settings.quick ? "  [QUICK MODE]" : "");
  std::printf(
      "Note: graphs are regenerated FE-style meshes (the paper's graphs were\n"
      "never published); compare shapes and ratios, not absolute values.\n");
  std::printf("==================================================================\n\n");
}

}  // namespace gapart::bench
