// Table 5 of the paper: "Improving Upon RSB Solutions Using Fitness
// Function 2" — the GA is seeded with the RSB solution and minimizes the
// worst-case cut max_q C(q).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "spectral/rsb.hpp"

namespace {

using namespace gapart;
using namespace gapart::bench;

struct PaperRow {
  VertexId nodes;
  double dknux[2];  // parts 4, 8
  double rsb[2];
};

constexpr PaperRow kPaperRows[] = {
    {78, {23, 20}, {26, 25}},   {88, {24, 22}, {33, 27}},
    {98, {24, 22}, {30, 30}},   {213, {40, 41}, {46, 45}},
    {243, {45, 41}, {51, 47}},  {279, {42, 42}, {46, 47}},
    {309, {44, 47}, {46, 52}},
};
constexpr PartId kParts[] = {4, 8};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto settings = RunSettings::from_cli(args, /*default_gens=*/400,
                                              /*default_stall=*/150);
  print_banner(
      "Table 5 — GA (DKNUX) refining RSB on worst-case cut, Fitness 2",
      "Maini et al., SC'94, Table 5", settings);

  TextTable table({"graph", "parts", "worst cut DKNUX paper/ours",
                   "worst cut RSB paper/ours", "improvement", "sec"});
  for (const auto& row : kPaperRows) {
    const Mesh mesh = paper_mesh(row.nodes);
    std::printf("graph %d: %s\n", row.nodes, mesh.graph.summary().c_str());
    for (int pi = 0; pi < 2; ++pi) {
      const PartId k = kParts[pi];
      Rng rng(settings.base_seed + static_cast<std::uint64_t>(row.nodes));

      const Assignment rsb = rsb_partition(mesh.graph, k, rng);
      const double rsb_worst =
          compute_metrics(mesh.graph, rsb, k).max_part_cut;

      const auto cfg =
          harness_dpga_config(k, Objective::kWorstComm, settings);
      const auto cell = best_of_runs(
          mesh.graph, cfg, seeded_init(rsb, cfg.ga.population_size), settings,
          static_cast<std::uint64_t>(row.nodes * 100 + k));

      table.start_row();
      table.append(std::to_string(row.nodes) + " nodes");
      table.append(static_cast<long long>(k));
      table.append(paper_vs(row.dknux[pi], cell.max_part_cut));
      table.append(paper_vs(row.rsb[pi], rsb_worst));
      table.append(rsb_worst - cell.max_part_cut, 0);
      table.append(cell.seconds, 1);
    }
    table.add_rule();
  }
  std::printf("\n%s\n", table.str().c_str());
  std::printf(
      "Shape check (paper Table 5): seeding the Fitness-2 GA with RSB makes\n"
      "it at least as good as RSB on every graph — including the larger\n"
      "ones where the random-init GA (Table 4) fell behind.\n");
  return 0;
}
