// google-benchmark microbenchmarks for gapart's hot kernels: fitness
// evaluation, incremental moves, the crossover operators, the spectral
// stack, space-filling-curve indexing and mesh generation.  These are the
// per-operation costs behind the experiment harnesses' wall times.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "core/crossover.hpp"
#include "core/hill_climb.hpp"
#include "core/init.hpp"
#include "core/mutation.hpp"
#include "graph/coarsen.hpp"
#include "graph/delaunay.hpp"
#include "graph/mesh.hpp"
#include "graph/partition.hpp"
#include "sfc/ibp.hpp"
#include "sfc/indexing.hpp"
#include "spectral/fiedler.hpp"
#include "spectral/laplacian.hpp"
#include "spectral/rsb.hpp"

namespace {

using namespace gapart;

const Mesh& mesh_of(std::int64_t nodes) {
  static std::map<std::int64_t, Mesh> cache;
  auto it = cache.find(nodes);
  if (it == cache.end()) {
    Rng rng(static_cast<std::uint64_t>(nodes) * 77 + 1);
    it = cache
             .emplace(nodes, generate_mesh(Domain(DomainShape::kRectangle),
                                           static_cast<VertexId>(nodes), rng))
             .first;
  }
  return it->second;
}

void BM_FitnessEvaluation(benchmark::State& state) {
  const Mesh& mesh = mesh_of(state.range(0));
  Rng rng(3);
  const auto a = random_balanced_assignment(mesh.graph.num_vertices(), 8, rng);
  const FitnessParams params{Objective::kTotalComm, 1.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_fitness(mesh.graph, a, 8, params));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FitnessEvaluation)->Arg(144)->Arg(309)->Arg(2000);

void BM_PartitionStateMove(benchmark::State& state) {
  const Mesh& mesh = mesh_of(state.range(0));
  Rng rng(5);
  PartitionState ps(mesh.graph,
                    random_balanced_assignment(mesh.graph.num_vertices(), 8,
                                               rng),
                    8);
  const VertexId n = mesh.graph.num_vertices();
  for (auto _ : state) {
    const auto v = static_cast<VertexId>(rng.uniform_int(n));
    const auto to = static_cast<PartId>(rng.uniform_int(8));
    ps.move(v, to);
    benchmark::DoNotOptimize(ps.sum_part_cut());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PartitionStateMove)->Arg(309)->Arg(2000);

void BM_MoveGain(benchmark::State& state) {
  const Mesh& mesh = mesh_of(309);
  Rng rng(7);
  PartitionState ps(mesh.graph,
                    random_balanced_assignment(mesh.graph.num_vertices(), 8,
                                               rng),
                    8);
  const FitnessParams params{
      state.range(0) == 0 ? Objective::kTotalComm : Objective::kWorstComm,
      1.0};
  const VertexId n = mesh.graph.num_vertices();
  for (auto _ : state) {
    const auto v = static_cast<VertexId>(rng.uniform_int(n));
    const auto to = static_cast<PartId>(rng.uniform_int(8));
    benchmark::DoNotOptimize(ps.move_gain(v, to, params));
  }
}
BENCHMARK(BM_MoveGain)->Arg(0)->Arg(1);

template <CrossoverOp Op>
void BM_Crossover(benchmark::State& state) {
  const Mesh& mesh = mesh_of(state.range(0));
  Rng rng(9);
  const VertexId n = mesh.graph.num_vertices();
  const auto a = random_balanced_assignment(n, 8, rng);
  const auto b = random_balanced_assignment(n, 8, rng);
  const auto ref = random_balanced_assignment(n, 8, rng);
  CrossoverContext ctx;
  ctx.graph = &mesh.graph;
  ctx.reference = &ref;
  Assignment c1;
  Assignment c2;
  for (auto _ : state) {
    apply_crossover(Op, ctx, a, b, rng, c1, c2);
    benchmark::DoNotOptimize(c1.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Crossover<CrossoverOp::kTwoPoint>)->Arg(309);
BENCHMARK(BM_Crossover<CrossoverOp::kUniform>)->Arg(309);
BENCHMARK(BM_Crossover<CrossoverOp::kKnux>)->Arg(309);

void BM_PointMutation(benchmark::State& state) {
  Rng rng(11);
  auto a = random_balanced_assignment(309, 8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(point_mutation(a, 8, 0.01, rng));
  }
}
BENCHMARK(BM_PointMutation);

void BM_HillClimbPass(benchmark::State& state) {
  const Mesh& mesh = mesh_of(309);
  Rng rng(13);
  HillClimbOptions opt;
  opt.max_passes = 1;
  for (auto _ : state) {
    state.PauseTiming();
    auto a = random_balanced_assignment(mesh.graph.num_vertices(), 8, rng);
    state.ResumeTiming();
    hill_climb(mesh.graph, a, 8, opt);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_HillClimbPass);

void BM_LaplacianMatvec(benchmark::State& state) {
  const Mesh& mesh = mesh_of(state.range(0));
  const auto n = static_cast<std::size_t>(mesh.graph.num_vertices());
  std::vector<double> x(n, 1.0);
  std::vector<double> y(n);
  deflate_constant(x);
  for (auto _ : state) {
    apply_laplacian(mesh.graph, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LaplacianMatvec)->Arg(309)->Arg(2000);

void BM_FiedlerLanczos(benchmark::State& state) {
  const Mesh& mesh = mesh_of(state.range(0));
  Rng rng(17);
  FiedlerOptions opt;
  opt.dense_threshold = 4;  // force Lanczos
  for (auto _ : state) {
    benchmark::DoNotOptimize(fiedler_vector(mesh.graph, rng, opt));
  }
}
BENCHMARK(BM_FiedlerLanczos)->Arg(309)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_RsbPartition(benchmark::State& state) {
  const Mesh& mesh = mesh_of(state.range(0));
  Rng rng(19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsb_partition(mesh.graph, 8, rng));
  }
}
BENCHMARK(BM_RsbPartition)->Arg(309)->Unit(benchmark::kMillisecond);

void BM_IbpPartition(benchmark::State& state) {
  const Mesh& mesh = mesh_of(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ibp_partition(mesh.graph, 8));
  }
}
BENCHMARK(BM_IbpPartition)->Arg(309)->Arg(2000);

void BM_MortonIndex(benchmark::State& state) {
  Rng rng(23);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc += morton_index(rng.next_u64() & 1023, rng.next_u64() & 1023, 10);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_MortonIndex);

void BM_HilbertIndex(benchmark::State& state) {
  Rng rng(29);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc += hilbert_index(rng.next_u64() & 1023, rng.next_u64() & 1023, 10);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_HilbertIndex);

void BM_DelaunayTriangulate(benchmark::State& state) {
  Rng rng(31);
  std::vector<Point2> pts;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    pts.push_back({rng.uniform(), rng.uniform()});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(delaunay_triangulate(pts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DelaunayTriangulate)->Arg(144)->Arg(500)
    ->Unit(benchmark::kMillisecond);

void BM_CoarsenOnce(benchmark::State& state) {
  const Mesh& mesh = mesh_of(2000);
  Rng rng(37);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coarsen_once(mesh.graph, rng));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_CoarsenOnce)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
