// Multilevel-engine microbench: V-cycle GA vs flat GA at equal wall-clock,
// plus a million-vertex end-to-end partition + delta-repair row.
//
// Two question sets, emitted as JSON for the BENCH_multilevel.json
// trajectory:
//
//   equal_wallclock: on n x n grids, run the V-cycle engine to completion,
//             then give a flat DPGA-style GA (random init, DKNUX, offspring
//             hill climbing) the same wall-clock budget on the same mesh.
//             The acceptance claim — the V-cycle's cut beats the flat GA's
//             at >= 512^2 — is recorded per row as "vcycle_beats_flat".
//
//   end_to_end: partition a 1000 x 1000 grid (10^6 vertices) with the
//             V-cycle, grow it by appended rows, and repair through the
//             damage-proportional incremental pipeline — the full
//             partition-then-evolve lifecycle at a scale the flat GA cannot
//             touch.
//
//   ./bench/micro_multilevel [--quick] > multilevel.json
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/ga_engine.hpp"
#include "core/graph_delta.hpp"
#include "core/incremental.hpp"
#include "core/init.hpp"
#include "core/presets.hpp"
#include "core/vcycle_ga.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"

namespace {

using namespace gapart;

VcycleGaOptions bench_vcycle_options(PartId k) {
  VcycleGaOptions opt;
  opt.dpga = paper_dpga_config(k, Objective::kTotalComm);
  opt.dpga.ga.max_generations = 60;
  opt.dpga.ga.stall_generations = 12;
  opt.max_evolve_vertices = 4096;
  opt.level_population = 24;
  opt.level_max_generations = 15;
  opt.level_stall = 4;
  return opt;
}

struct WallclockRow {
  VertexId n = 0;
  PartId k = 0;
  int levels = 0;
  int evolved_levels = 0;
  double vcycle_seconds = 0.0;
  double vcycle_cut = 0.0;
  double vcycle_imbalance = 0.0;
  double flat_seconds = 0.0;
  double flat_cut = 0.0;
  int flat_generations = 0;
  bool vcycle_beats_flat = false;
};

WallclockRow bench_equal_wallclock(VertexId n, PartId k) {
  WallclockRow row;
  row.n = n;
  row.k = k;
  const Graph g = make_grid(n, n);

  Rng rng(0x5C1994 ^ static_cast<std::uint64_t>(n));
  const VcycleGaResult res = vcycle_ga_partition(g, bench_vcycle_options(k), rng);
  row.levels = res.levels;
  row.evolved_levels = res.evolved_levels;
  row.vcycle_seconds = res.wall_seconds;
  row.vcycle_cut = res.metrics.total_cut();
  row.vcycle_imbalance = res.metrics.imbalance_sq;

  // The flat GA gets at least the V-cycle's budget on the same mesh.  A
  // smaller population than the paper's 320 keeps generations cheap at this
  // |V| — the flat GA's best configuration for a fixed wall-clock.
  const double budget = std::max(row.vcycle_seconds, 1.0);
  GaConfig flat = paper_ga_config(k, Objective::kTotalComm);
  flat.population_size = 64;
  flat.hill_climb_offspring = true;
  Rng frng(0x5C1994 ^ static_cast<std::uint64_t>(n));
  auto initial =
      make_random_population(g.num_vertices(), k, flat.population_size, frng);
  GaEngine engine(g, flat, std::move(initial), frng.split());
  WallTimer timer;
  while (timer.seconds() < budget) engine.step();
  row.flat_seconds = timer.seconds();
  row.flat_generations = engine.generation();
  row.flat_cut = engine.best().metrics.total_cut();
  row.vcycle_beats_flat = row.vcycle_cut < row.flat_cut;
  return row;
}

struct EndToEndRow {
  VertexId n = 0;
  VertexId vertices = 0;
  std::int64_t edges = 0;
  PartId k = 0;
  int levels = 0;
  int evolved_levels = 0;
  double partition_seconds = 0.0;
  double cut = 0.0;
  double imbalance = 0.0;
  VertexId grow_rows = 0;
  VertexId damage = 0;
  double repair_seconds = 0.0;
  double repaired_cut = 0.0;
};

EndToEndRow bench_end_to_end(VertexId n, VertexId grow_rows, PartId k) {
  EndToEndRow row;
  row.n = n;
  row.k = k;
  row.grow_rows = grow_rows;
  const Graph g = make_grid(n, n);
  row.vertices = g.num_vertices();
  row.edges = g.num_edges();

  Rng rng(0xE2E ^ static_cast<std::uint64_t>(n));
  const VcycleGaResult res = vcycle_ga_partition(g, bench_vcycle_options(k), rng);
  row.levels = res.levels;
  row.evolved_levels = res.evolved_levels;
  row.partition_seconds = res.wall_seconds;
  row.cut = res.metrics.total_cut();
  row.imbalance = res.metrics.imbalance_sq;

  // Grow by appended rows and repair through the damage-proportional
  // incremental pipeline (GA tier off: the repair cost under measurement is
  // the delta-proportional part).
  const Graph grown = make_grid(n + grow_rows, n);
  const GraphDelta delta = diff_graphs(g, grown);
  IncrementalGaOptions opt;
  opt.dpga.ga.num_parts = k;
  opt.refine_with_ga = false;
  WallTimer timer;
  const IncrementalResult inc =
      incremental_repartition(grown, res.assignment, delta, opt, rng);
  row.repair_seconds = timer.seconds();
  row.damage = inc.damage;
  row.repaired_cut =
      compute_metrics(grown, inc.best, k).total_cut();
  return row;
}

void emit_json(const std::vector<WallclockRow>& wallclock,
               const std::vector<EndToEndRow>& end_to_end) {
  bool all_beat = true;
  for (const WallclockRow& r : wallclock) all_beat &= r.vcycle_beats_flat;
  std::printf("{\n");
  std::printf("  \"bench\": \"micro_multilevel\",\n");
  std::printf("  \"vcycle_beats_flat\": %s,\n", all_beat ? "true" : "false");
  std::printf("  \"equal_wallclock\": [\n");
  for (std::size_t i = 0; i < wallclock.size(); ++i) {
    const WallclockRow& r = wallclock[i];
    std::printf(
        "    {\"n\": %d, \"k\": %d, \"levels\": %d, \"evolved_levels\": %d, "
        "\"vcycle_seconds\": %.3f, \"vcycle_cut\": %.0f, "
        "\"vcycle_imbalance\": %.1f, \"flat_seconds\": %.3f, "
        "\"flat_cut\": %.0f, \"flat_generations\": %d, "
        "\"vcycle_beats_flat\": %s}%s\n",
        static_cast<int>(r.n), static_cast<int>(r.k), r.levels,
        r.evolved_levels, r.vcycle_seconds, r.vcycle_cut, r.vcycle_imbalance,
        r.flat_seconds, r.flat_cut, r.flat_generations,
        r.vcycle_beats_flat ? "true" : "false",
        i + 1 < wallclock.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"end_to_end\": [\n");
  for (std::size_t i = 0; i < end_to_end.size(); ++i) {
    const EndToEndRow& r = end_to_end[i];
    std::printf(
        "    {\"n\": %d, \"vertices\": %d, \"edges\": %lld, \"k\": %d, "
        "\"levels\": %d, \"evolved_levels\": %d, "
        "\"partition_seconds\": %.3f, \"cut\": %.0f, \"imbalance\": %.1f, "
        "\"grow_rows\": %d, \"damage\": %d, \"repair_seconds\": %.3f, "
        "\"repaired_cut\": %.0f}%s\n",
        static_cast<int>(r.n), static_cast<int>(r.vertices),
        static_cast<long long>(r.edges), static_cast<int>(r.k), r.levels,
        r.evolved_levels, r.partition_seconds, r.cut, r.imbalance,
        static_cast<int>(r.grow_rows), static_cast<int>(r.damage),
        r.repair_seconds, r.repaired_cut,
        i + 1 < end_to_end.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool quick = args.flag("quick") || quick_mode_enabled();

  const std::vector<VertexId> sizes = quick ? std::vector<VertexId>{64, 128}
                                            : std::vector<VertexId>{256, 512};
  std::vector<WallclockRow> wallclock;
  for (const VertexId n : sizes) {
    wallclock.push_back(bench_equal_wallclock(n, 8));
  }

  std::vector<EndToEndRow> end_to_end;
  end_to_end.push_back(
      bench_end_to_end(quick ? 256 : 1000, /*grow_rows=*/4, 8));

  emit_json(wallclock, end_to_end);
  for (const auto& unused : args.unused()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", unused.c_str());
  }
  return 0;
}
