// Ablation: population seeding strategy (§3.5).  The paper seeds with IBP
// (Table 1) and RSB (Tables 2/5); this harness compares random
// initialization against seeding from each heuristic partitioner in the
// library, plus the effect of the swap-perturbation strength.
#include <cstdio>

#include "baselines/rcb.hpp"
#include "baselines/rgb.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/init.hpp"
#include "sfc/ibp.hpp"
#include "spectral/rsb.hpp"

namespace {

using namespace gapart;
using namespace gapart::bench;

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto settings = RunSettings::from_cli(args, /*default_gens=*/200,
                                              /*default_stall=*/0);
  print_banner("Ablation — population seeding strategies (§3.5)",
               "Maini et al., SC'94, §3.5 / §4.1", settings);

  const Mesh mesh = paper_mesh(243);
  const PartId k = 8;
  std::printf("graph 243, %d parts: %s\n\n", k, mesh.graph.summary().c_str());
  Rng seed_rng(7);

  struct Strategy {
    const char* name;
    Assignment seed;  // empty = random init
  };
  std::vector<Strategy> strategies;
  strategies.push_back({"random (balanced deal)", {}});
  strategies.push_back({"seeded: IBP", ibp_partition(mesh.graph, k)});
  strategies.push_back(
      {"seeded: RSB", rsb_partition(mesh.graph, k, seed_rng)});
  strategies.push_back(
      {"seeded: RCB", rcb_partition(mesh.graph, k, seed_rng)});
  strategies.push_back(
      {"seeded: RGB", rgb_partition(mesh.graph, k, seed_rng)});

  TextTable table(
      {"strategy", "seed cut", "best cut", "mean cut", "sec"});
  std::uint64_t salt = 1;
  for (const auto& strat : strategies) {
    auto cfg = harness_dpga_config(k, Objective::kTotalComm, settings);
    cfg.ga.stall_generations = 0;

    InitFactory init;
    double seed_cut = 0.0;
    if (strat.seed.empty()) {
      init = random_init(mesh.graph, k, cfg.ga.population_size);
    } else {
      seed_cut = compute_metrics(mesh.graph, strat.seed, k).total_cut();
      init = seeded_init(strat.seed, cfg.ga.population_size);
    }
    const auto cell = best_of_runs(mesh.graph, cfg, init, settings, salt++);

    table.start_row();
    table.append(strat.name);
    table.append(strat.seed.empty() ? std::string("-")
                                    : format_double(seed_cut, 0));
    table.append(cell.total_cut, 0);
    table.append(cell.mean_total_cut, 1);
    table.append(cell.seconds, 1);
  }
  std::printf("%s\n", table.str().c_str());

  // Swap-fraction sweep around the RSB seed.
  std::printf("perturbation strength (RSB seed, swap fraction sweep):\n");
  TextTable sweep({"swap fraction", "best cut", "mean cut"});
  const Assignment rsb = rsb_partition(mesh.graph, k, seed_rng);
  for (const double f : {0.0, 0.05, 0.1, 0.25, 0.5}) {
    auto cfg = harness_dpga_config(k, Objective::kTotalComm, settings);
    cfg.ga.stall_generations = 0;
    const auto cell =
        best_of_runs(mesh.graph, cfg,
                     seeded_init(rsb, cfg.ga.population_size, f), settings,
                     static_cast<std::uint64_t>(f * 1000) + 77);
    sweep.start_row();
    sweep.append(format_double(f, 2));
    sweep.append(cell.total_cut, 0);
    sweep.append(cell.mean_total_cut, 1);
  }
  std::printf("%s\n", sweep.str().c_str());
  std::printf(
      "Shape check: heuristic seeding dominates random init at equal budget\n"
      "(paper §4.1); moderate perturbation of the seed clones preserves the\n"
      "seed's quality while giving the GA diversity to improve on it.\n");
  return 0;
}
