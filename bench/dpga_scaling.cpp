// DPGA scaling study (paper §1/§5: "GA's are readily parallelizable, with
// near-linear speedups" / "DPGA is an inherently parallel algorithm").
//
// Two questions, measured separately:
//  (1) Algorithmic effect of distribution: solution quality as the fixed
//      total population (320) is split over 1..16 islands.
//  (2) Parallel efficiency: wall time of serial vs threaded execution at
//      each island count.  NOTE: thread speedup is bounded by the physical
//      cores of the host; on a single-core container the threaded times
//      simply document the overhead.
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/init.hpp"

namespace {

using namespace gapart;
using namespace gapart::bench;

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto settings = RunSettings::from_cli(args, /*default_gens=*/150,
                                              /*default_stall=*/0);
  print_banner("DPGA scaling — islands vs quality, serial vs threaded",
               "Maini et al., SC'94, §1 feature 3 and §5", settings);
  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());

  const Mesh mesh = paper_mesh(183);
  const PartId k = 4;
  std::printf("graph 183, %d parts: %s\n\n", k, mesh.graph.summary().c_str());

  TextTable table({"islands", "topology", "best cut", "serial sec",
                   "threaded sec", "speedup"});
  for (const int islands : {1, 2, 4, 8, 16}) {
    auto cfg = harness_dpga_config(k, Objective::kTotalComm, settings);
    cfg.num_islands = islands;
    cfg.topology =
        islands == 1 ? TopologyKind::kIsolated : TopologyKind::kHypercube;
    cfg.ga.stall_generations = 0;

    Rng rng(settings.base_seed + static_cast<std::uint64_t>(islands));
    auto init = make_random_population(mesh.graph.num_vertices(), k,
                                       cfg.ga.population_size, rng);

    cfg.parallel = false;
    WallTimer serial_timer;
    const auto serial = run_dpga(mesh.graph, cfg, init, Rng(42));
    const double serial_sec = serial_timer.seconds();

    cfg.parallel = true;
    WallTimer par_timer;
    const auto parallel = run_dpga(mesh.graph, cfg, init, Rng(42));
    const double par_sec = par_timer.seconds();

    GAPART_ASSERT(serial.best_fitness == parallel.best_fitness,
                  "threaded DPGA diverged from serial");

    table.start_row();
    table.append(static_cast<long long>(islands));
    table.append(topology_name(cfg.topology));
    table.append(serial.best_metrics.total_cut(), 0);
    table.append(serial_sec, 2);
    table.append(par_sec, 2);
    table.append(serial_sec / par_sec, 2);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Quality note: with a fixed total population, island counts up to 16\n"
      "preserve solution quality (the paper runs 16 islands on a 4-cube);\n"
      "speedup approaches the host's physical core count for large enough\n"
      "per-island work (bit-identical results are asserted above).\n");
  return 0;
}
