// Ablation: DPGA migration topology and interval (§3.4).  The paper fixes
// 16 subpopulations on a 4-D hypercube with periodic best-individual
// exchange; this harness varies both knobs and reports solution quality.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/init.hpp"

namespace {

using namespace gapart;
using namespace gapart::bench;

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto settings = RunSettings::from_cli(args, /*default_gens=*/150,
                                              /*default_stall=*/0);
  print_banner("Ablation — migration topology x interval (§3.4 DPGA)",
               "Maini et al., SC'94, §3.4", settings);

  const Mesh mesh = paper_mesh(167);
  const PartId k = 4;
  std::printf("graph 167, %d parts: %s\n\n", k, mesh.graph.summary().c_str());

  TextTable table({"topology", "interval", "best cut", "mean cut", "sec"});
  const TopologyKind topologies[] = {
      TopologyKind::kIsolated, TopologyKind::kRing, TopologyKind::kTorus,
      TopologyKind::kHypercube, TopologyKind::kComplete};
  for (const TopologyKind topo : topologies) {
    for (const int interval : {1, 5, 20}) {
      if (topo == TopologyKind::kIsolated && interval != 5) continue;
      auto cfg = harness_dpga_config(k, Objective::kTotalComm, settings);
      cfg.topology = topo;
      cfg.migration_interval = interval;
      cfg.ga.stall_generations = 0;

      const auto cell = best_of_runs(
          mesh.graph, cfg,
          random_init(mesh.graph, k, cfg.ga.population_size), settings,
          static_cast<std::uint64_t>(static_cast<int>(topo) * 100 +
                                     interval));

      table.start_row();
      table.append(topology_name(topo));
      table.append(static_cast<long long>(interval));
      table.append(cell.total_cut, 0);
      table.append(cell.mean_total_cut, 1);
      table.append(cell.seconds, 1);
    }
    table.add_rule();
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Shape check: any migration beats isolated islands; the hypercube at\n"
      "a moderate interval (the paper's configuration) sits at or near the\n"
      "best quality without complete-graph communication cost.\n");
  return 0;
}
