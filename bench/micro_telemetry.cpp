// Telemetry overhead microbench: the per-record cost of each instrumentation
// primitive, and the end-to-end cost of a fully instrumented session repair
// loop, emitted as JSON for the BENCH_telemetry.json trajectory.
//
// Two sections:
//
//   micro:      ns/op for counter add, gauge set, sharded-histogram record,
//               plain LogHistogram record, a scoped span with the tracer
//               disabled (two clock reads + histogram record) and enabled
//               (+ ring append), plus the raw steady_clock read for scale.
//
//   end_to_end: a PartitionSession repair loop on a growth trace (appended
//               grid rows, the soak_service regime) run twice — tracer off,
//               tracer on — reporting updates/sec for each.  The span/counter
//               macros are live in both runs when GAPART_TELEMETRY is
//               compiled in; re-running the same binary from a
//               -DGAPART_TELEMETRY=OFF build gives the compiled-out baseline
//               (the emitted JSON is keyed by "telemetry_compiled_in" so the
//               two builds' outputs can sit side by side in
//               BENCH_telemetry.json).
//
//   ./bench/micro_telemetry [--quick] > telemetry.json
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/telemetry.hpp"
#include "common/timer.hpp"
#include "core/graph_delta.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "service/session.hpp"

namespace {

using namespace gapart;

/// Keeps `v` observable so timed loops don't fold away.
inline void keep(double v) {
  static volatile double sink = 0.0;
  sink = sink + v;
}

/// ns/op of `body` run `iters` times.
template <typename F>
double time_ns_per_op(std::int64_t iters, F&& body) {
  WallTimer timer;
  for (std::int64_t i = 0; i < iters; ++i) body(i);
  return timer.seconds() * 1e9 / static_cast<double>(iters);
}

struct MicroRow {
  std::string name;
  double ns_per_op = 0.0;
};

std::vector<MicroRow> run_micro(std::int64_t iters) {
  std::vector<MicroRow> rows;
  auto& reg = TelemetryRegistry::instance();

  rows.push_back({"steady_clock_now", time_ns_per_op(iters, [](std::int64_t) {
                    keep(std::chrono::duration<double>(
                             std::chrono::steady_clock::now()
                                 .time_since_epoch())
                             .count());
                  })});

  rows.push_back({"counter_add", time_ns_per_op(iters, [](std::int64_t i) {
                    GAPART_COUNTER_ADD("bench.micro.counter", i & 1);
                  })});

  rows.push_back({"gauge_set", time_ns_per_op(iters, [](std::int64_t i) {
                    GAPART_GAUGE_SET("bench.micro.gauge", i);
                  })});

  rows.push_back(
      {"sharded_histogram_record", time_ns_per_op(iters, [](std::int64_t i) {
         GAPART_HISTOGRAM_RECORD("bench.micro.hist",
                                 1e-6 * static_cast<double>(1 + (i & 1023)));
       })});

  LogHistogram plain;
  rows.push_back(
      {"plain_histogram_record", time_ns_per_op(iters, [&](std::int64_t i) {
         plain.record(1e-6 * static_cast<double>(1 + (i & 1023)));
       })});
  keep(static_cast<double>(plain.count()));

  Tracer::instance().disable();
  rows.push_back({"span_tracer_disabled",
                  time_ns_per_op(iters, [](std::int64_t) {
                    GAPART_SPAN("bench.micro.span");
                  })});

  Tracer::instance().enable();
  rows.push_back({"span_tracer_enabled", time_ns_per_op(iters, [](std::int64_t) {
                    GAPART_SPAN("bench.micro.span");
                  })});
  Tracer::instance().disable();
  Tracer::instance().clear();
  reg.reset_for_tests();
  return rows;
}

struct EndToEndRow {
  std::string mode;  // "tracer_off" / "tracer_on"
  int updates = 0;
  double seconds = 0.0;
  double updates_per_sec = 0.0;
  double p50_repair_ms = 0.0;
};

/// The soak_service growth regime: n x n grid growing by one appended row per
/// update, column-band start, synchronous repair only.
EndToEndRow run_end_to_end(const std::string& mode, VertexId n, int updates) {
  EndToEndRow row;
  row.mode = mode;
  row.updates = updates;

  SessionConfig cfg;
  cfg.num_parts = 8;
  cfg.repair_budget_seconds = 0.0;

  auto prev = std::make_shared<const Graph>(make_grid(n, n));
  PartitionSession session(prev, bench::column_bands(n, n, 8), cfg);

  WallTimer timer;
  for (int u = 1; u <= updates; ++u) {
    auto next =
        std::make_shared<const Graph>(make_grid(n + static_cast<VertexId>(u),
                                                n));
    const GraphDelta delta = diff_graphs(*prev, *next);
    session.apply_update(next, delta);
    prev = std::move(next);
  }
  row.seconds = timer.seconds();
  row.updates_per_sec = updates / row.seconds;
  row.p50_repair_ms = session.stats().p50_repair_seconds * 1e3;
  return row;
}

void emit_json(const std::vector<MicroRow>& micro,
               const std::vector<EndToEndRow>& e2e) {
  std::printf("{\n");
  std::printf("  \"bench\": \"micro_telemetry\",\n");
  std::printf("  \"telemetry_compiled_in\": %s,\n",
              kTelemetryCompiledIn ? "true" : "false");
  std::printf("  \"micro_ns_per_op\": {\n");
  for (std::size_t i = 0; i < micro.size(); ++i) {
    std::printf("    \"%s\": %.2f%s\n", micro[i].name.c_str(),
                micro[i].ns_per_op, i + 1 < micro.size() ? "," : "");
  }
  std::printf("  },\n");
  std::printf("  \"end_to_end\": [\n");
  for (std::size_t i = 0; i < e2e.size(); ++i) {
    const EndToEndRow& r = e2e[i];
    std::printf(
        "    {\"mode\": \"%s\", \"updates\": %d, \"seconds\": %.4f, "
        "\"updates_per_sec\": %.1f, \"p50_repair_ms\": %.4f}%s\n",
        r.mode.c_str(), r.updates, r.seconds, r.updates_per_sec,
        r.p50_repair_ms, i + 1 < e2e.size() ? "," : "");
  }
  if (e2e.size() == 2) {
    std::printf("  ],\n");
    const double off = e2e[0].updates_per_sec;
    const double on = e2e[1].updates_per_sec;
    std::printf("  \"tracer_overhead_pct\": %.2f\n",
                off > 0.0 ? (off - on) / off * 100.0 : 0.0);
  } else {
    std::printf("  ]\n");
  }
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool quick = args.flag("quick") || quick_mode_enabled();
  const std::int64_t iters = quick ? 200'000 : 2'000'000;
  const VertexId n = quick ? 64 : 128;
  const int updates = quick ? 20 : 60;

  // Warm up the per-thread shard/ring registrations so the micro loops time
  // the steady state, not first-touch setup.
  GAPART_COUNTER_ADD("bench.micro.counter", 0);
  GAPART_HISTOGRAM_RECORD("bench.micro.hist", 1.0);

  const std::vector<MicroRow> micro = run_micro(iters);

  std::vector<EndToEndRow> e2e;
  Tracer::instance().disable();
  run_end_to_end("warmup", n, updates);  // discarded: page-faults, alloc pools
  e2e.push_back(run_end_to_end("tracer_off", n, updates));
  Tracer::instance().enable();
  e2e.push_back(run_end_to_end("tracer_on", n, updates));
  Tracer::instance().disable();

  emit_json(micro, e2e);
  return 0;
}
