// Evaluation-throughput microbench for the unified evaluation core.
//
// Reports evaluations/second on a >=10k-vertex mesh for:
//   * full O(V+E) chromosome evaluations, serial and batched on the Executor
//     at 1/2/4/8 threads (batch = one GA generation's worth of offspring),
//   * delta evaluations (PartitionState move_gain + move, the currency of
//     hill climbing and KL), and
//   * end-to-end offspring evaluation: GaEngine generations with hill
//     climbing enabled, serial vs pooled — the number that bounds GA wall
//     time.
//
// Emits a single JSON object so future PRs can track the perf trajectory:
//   ./bench/micro_eval_throughput [--threads=1,2,4,8] [--quick] > eval.json
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/executor.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/eval.hpp"
#include "core/ga_engine.hpp"
#include "core/init.hpp"
#include "graph/generators.hpp"

namespace {

using namespace gapart;

struct Entry {
  std::string name;
  int threads = 1;
  double evals_per_sec = 0.0;
  double speedup = 1.0;  ///< vs. the serial row of the same family
  std::int64_t evaluations = 0;
  double seconds = 0.0;
};

/// Defeats dead-code elimination of the measured evaluations.
void benchmark_sink(const std::vector<double>& results) {
  volatile double guard = 0.0;
  for (const double r : results) guard = r;
  (void)guard;
}

std::vector<int> parse_thread_list(const std::string& spec) {
  std::vector<int> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      const int t = std::stoi(item);
      if (t >= 1) out.push_back(t);
    } catch (const std::exception&) {
      std::fprintf(stderr, "ignoring bad thread count '%s'\n", item.c_str());
    }
  }
  if (out.empty()) out = {1, 2, 4, 8};
  return out;
}

/// Full evaluations of a pre-built chromosome batch, repeated for ~budget
/// seconds on `pool` (null = serial loop).
Entry bench_full(const EvalContext& eval,
                 const std::vector<Assignment>& batch, Executor* pool,
                 double budget) {
  Entry e;
  e.threads = pool != nullptr ? pool->num_threads() : 1;
  // Per-index result slots keep the evaluations observable without any
  // cross-thread writes to shared state.
  std::vector<double> results(batch.size(), 0.0);
  WallTimer timer;
  std::int64_t evals = 0;
  while (timer.seconds() < budget) {
    if (pool != nullptr) {
      pool->parallel_for(batch.size(), [&](std::size_t i) {
        results[i] = eval.evaluate(batch[i]);
      });
    } else {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        results[i] = eval.evaluate(batch[i]);
      }
    }
    evals += static_cast<std::int64_t>(batch.size());
  }
  benchmark_sink(results);
  e.seconds = timer.seconds();
  e.evaluations = evals;
  e.evals_per_sec = static_cast<double>(evals) / e.seconds;
  return e;
}

/// Delta evaluations: sweep boundary vertices via the single-scan gain
/// kernel and apply the best move — the hill-climb inner loop.  One "delta"
/// is one candidate part evaluated, matching the per-part move_gain() count
/// this bench used before the kernel existed.
Entry bench_delta(const EvalContext& eval, const Assignment& start,
                  double budget) {
  Entry e;
  e.name = "delta_eval";
  PartitionState state(eval.graph(), start, eval.num_parts());
  WallTimer timer;
  std::int64_t deltas = 0;
  while (timer.seconds() < budget) {
    for (VertexId v = 0; v < eval.graph().num_vertices(); ++v) {
      if (!state.is_boundary(v)) continue;
      const BestMove best = state.best_move(v, eval.params(), 0.0);
      deltas += best.candidates;
      if (best.to >= 0) state.move(v, best.to);
    }
  }
  e.seconds = timer.seconds();
  e.evaluations = deltas;
  e.evals_per_sec = static_cast<double>(deltas) / e.seconds;
  return e;
}

/// End-to-end offspring evaluation: GA generations with §3.6 hill climbing,
/// measuring (full + delta) evaluations per second.
Entry bench_offspring(const Graph& g, const std::vector<Assignment>& init,
                      Executor* pool, int generations) {
  GaConfig cfg;
  cfg.num_parts = 8;
  cfg.population_size = 64;
  cfg.hill_climb_offspring = true;
  cfg.hill_climb_fraction = 0.25;
  cfg.max_generations = generations;

  Entry e;
  e.threads = pool != nullptr ? pool->num_threads() : 1;
  WallTimer timer;
  GaEngine engine(g, cfg, init, Rng(42), pool);
  for (int s = 0; s < generations; ++s) engine.step();
  e.seconds = timer.seconds();
  e.evaluations = engine.evaluations();
  e.evals_per_sec = static_cast<double>(e.evaluations) / e.seconds;
  return e;
}

void emit_json(const Graph& g, const std::vector<Entry>& entries) {
  std::printf("{\n");
  std::printf("  \"bench\": \"micro_eval_throughput\",\n");
  std::printf("  \"graph\": {\"vertices\": %lld, \"edges\": %lld},\n",
              static_cast<long long>(g.num_vertices()),
              static_cast<long long>(g.num_edges()));
  std::printf("  \"results\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::printf("    {\"name\": \"%s\", \"threads\": %d, "
                "\"evaluations\": %lld, \"seconds\": %.4f, "
                "\"evals_per_sec\": %.1f, \"speedup_vs_serial\": %.3f}%s\n",
                e.name.c_str(), e.threads,
                static_cast<long long>(e.evaluations), e.seconds,
                e.evals_per_sec, e.speedup,
                i + 1 < entries.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool quick = args.flag("quick") || quick_mode_enabled();
  const double budget = args.real("seconds", quick ? 0.1 : 1.0);
  const auto thread_list =
      parse_thread_list(args.str("threads", "1,2,4,8"));
  const int generations = args.integer("gens", quick ? 2 : 8);

  // >=10k-vertex mesh workload (structured FE-style grid).
  const Graph g = make_grid(100, 100);
  Rng rng(0x9a94);
  EvalContext eval(g, 8, FitnessParams{});

  const int batch_size = 64;  // one generation's worth of offspring
  std::vector<Assignment> batch;
  for (int i = 0; i < batch_size; ++i) {
    batch.push_back(random_balanced_assignment(g.num_vertices(), 8, rng));
  }
  const auto init = make_random_population(g.num_vertices(), 8, 16, rng);

  std::vector<Entry> entries;

  Entry serial_full = bench_full(eval, batch, nullptr, budget);
  serial_full.name = "full_eval_serial";
  entries.push_back(serial_full);
  for (const int t : thread_list) {
    Executor pool(t);
    Entry e = bench_full(eval, batch, &pool, budget);
    e.name = "full_eval_pooled";
    e.speedup = e.evals_per_sec / serial_full.evals_per_sec;
    entries.push_back(e);
  }

  entries.push_back(bench_delta(eval, batch.front(), budget));

  Entry serial_off = bench_offspring(g, init, nullptr, generations);
  serial_off.name = "offspring_eval_serial";
  entries.push_back(serial_off);
  for (const int t : thread_list) {
    Executor pool(t);
    Entry e = bench_offspring(g, init, &pool, generations);
    e.name = "offspring_eval_pooled";
    e.speedup = e.evals_per_sec / serial_off.evals_per_sec;
    entries.push_back(e);
  }

  emit_json(g, entries);
  return 0;
}
