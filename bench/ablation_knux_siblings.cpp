// Ablation: KNUX/DKNUX sibling policy.  The paper defines the biased
// per-gene inheritance probability p_i but not how the second child of a
// crossover is produced.  The library supports both natural readings —
// an independent biased draw (default) and the complementary pairing that
// classic uniform crossover uses — and this harness measures the choice.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/init.hpp"
#include "spectral/rsb.hpp"

namespace {

using namespace gapart;
using namespace gapart::bench;

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto settings = RunSettings::from_cli(args, /*default_gens=*/800,
                                              /*default_stall=*/300);
  print_banner("Ablation — KNUX sibling policy (independent vs complementary)",
               "design decision under Maini et al. §3.2 (unspecified)",
               settings);

  TextTable table({"graph", "parts", "objective", "independent best/mean",
                   "complementary best/mean", "RSB"});
  for (const VertexId nodes : {88, 144}) {
    const Mesh mesh = paper_mesh(nodes);
    for (const Objective obj :
         {Objective::kTotalComm, Objective::kWorstComm}) {
      const PartId k = 4;
      Rng rng(settings.base_seed + static_cast<std::uint64_t>(nodes));
      const auto rsb = rsb_partition(mesh.graph, k, rng);
      const auto rsb_m = compute_metrics(mesh.graph, rsb, k);
      const double rsb_val =
          obj == Objective::kTotalComm ? rsb_m.total_cut() : rsb_m.max_part_cut;

      CellResult cells[2];
      for (int policy = 0; policy < 2; ++policy) {
        auto cfg = harness_dpga_config(k, obj, settings);
        cfg.ga.knux_complementary = policy == 1;
        cells[policy] = best_of_runs(
            mesh.graph, cfg,
            random_init(mesh.graph, k, cfg.ga.population_size), settings,
            static_cast<std::uint64_t>(nodes * 10 + policy));
      }
      auto value = [&obj](const CellResult& c, bool mean) {
        if (obj == Objective::kTotalComm) {
          return mean ? c.mean_total_cut : c.total_cut;
        }
        return mean ? c.mean_max_part_cut : c.max_part_cut;
      };
      table.start_row();
      table.append(std::to_string(nodes) + " nodes");
      table.append(static_cast<long long>(k));
      table.append(obj == Objective::kTotalComm ? "fitness1" : "fitness2");
      table.append(format_double(value(cells[0], false), 0) + " / " +
                   format_double(value(cells[0], true), 1));
      table.append(format_double(value(cells[1], false), 0) + " / " +
                   format_double(value(cells[1], true), 1));
      table.append(rsb_val, 0);
    }
    table.add_rule();
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Shape check: independent biased draws (the library default) win most\n"
      "rows here and a wider 8-run sweep during development — both children\n"
      "pulling towards the reference exploits the §3.2 knowledge harder,\n"
      "at a small diversity cost that occasionally favours the\n"
      "complementary pairing.\n");
  return 0;
}
