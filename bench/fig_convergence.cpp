// Convergence figure: best-so-far cut versus generation for the traditional
// crossover operators (2-point, uniform) against the paper's KNUX and DKNUX,
// averaged over 5 runs (the paper's figures average 5 runs).  This is the
// harness behind the paper's headline claim that the knowledge-based
// operators give "orders of magnitude improvement over traditional genetic
// operators in solution quality and speed".
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/init.hpp"
#include "sfc/ibp.hpp"

namespace {

using namespace gapart;
using namespace gapart::bench;

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto settings = RunSettings::from_cli(args, /*default_gens=*/300,
                                              /*default_stall=*/0);
  const VertexId nodes =
      static_cast<VertexId>(args.integer("nodes", 144));
  const PartId k = static_cast<PartId>(args.integer("parts", 4));
  print_banner("Convergence figure — operator comparison (mean of runs)",
               "Maini et al., SC'94, convergence figures / §1 claim",
               settings);

  const Mesh mesh = paper_mesh(nodes);
  std::printf("graph %d, %d parts: %s\n\n", nodes, k,
              mesh.graph.summary().c_str());

  const CrossoverOp ops[] = {CrossoverOp::kTwoPoint, CrossoverOp::kUniform,
                             CrossoverOp::kKnux, CrossoverOp::kDknux};

  // Static KNUX follows §3.2: "an initial candidate solution I is first
  // generated" — it gets the IBP solution as its (fixed) reference.  DKNUX
  // starts from its population's best and re-targets every generation.
  const Assignment ibp_reference = ibp_partition(mesh.graph, k);
  std::vector<std::vector<double>> series;  // per op: mean best-cut series
  std::vector<double> final_cut;
  std::vector<double> final_fitness;

  for (const CrossoverOp op : ops) {
    std::vector<std::vector<double>> runs;
    RunningStats fit_stats;
    RunningStats cut_stats;
    for (int run = 0; run < settings.runs; ++run) {
      auto cfg = harness_dpga_config(k, Objective::kTotalComm, settings);
      cfg.ga.crossover = op;
      cfg.ga.stall_generations = 0;  // fixed budget for a fair curve
      if (op == CrossoverOp::kKnux) cfg.ga.knux_reference = ibp_reference;
      Rng rng(settings.base_seed ^ (static_cast<std::uint64_t>(run) << 16));
      auto init = make_random_population(mesh.graph.num_vertices(), k,
                                         cfg.ga.population_size, rng);
      const auto res = run_dpga(mesh.graph, cfg, std::move(init), rng.split());
      std::vector<double> cuts;
      cuts.reserve(res.history.size());
      for (const auto& h : res.history) cuts.push_back(h.best_total_cut);
      runs.push_back(std::move(cuts));
      fit_stats.add(res.best_fitness);
      cut_stats.add(res.best_metrics.total_cut());
    }
    series.push_back(mean_series(runs));
    final_cut.push_back(cut_stats.mean());
    final_fitness.push_back(fit_stats.mean());
  }

  // Print the series at sampled generations (CSV-friendly block follows).
  TextTable table({"generation", "2-point", "UX", "KNUX", "DKNUX"});
  const std::size_t len = series[0].size();
  const std::size_t step = std::max<std::size_t>(1, len / 15);
  for (std::size_t g = 0; g < len; g += step) {
    table.start_row();
    table.append(static_cast<long long>(g));
    for (const auto& s : series) table.append(s[g], 1);
  }
  table.start_row();
  table.append(static_cast<long long>(len - 1));
  for (const auto& s : series) table.append(s.back(), 1);
  std::printf("%s\n", table.str().c_str());

  std::printf("mean best cut after %d generations: 2-point %.1f  UX %.1f  "
              "KNUX %.1f  DKNUX %.1f\n",
              settings.max_generations, final_cut[0], final_cut[1],
              final_cut[2], final_cut[3]);

  // Speed view of the same claim: generations each operator needs to reach
  // the quality 2-point ends with.
  const double target = series[0].back();
  std::printf("\ngenerations to reach 2-point's final quality (cut <= %.1f):\n",
              target);
  const char* names[] = {"2-point", "UX", "KNUX", "DKNUX"};
  for (std::size_t i = 0; i < series.size(); ++i) {
    std::size_t gen = len;
    for (std::size_t g = 0; g < len; ++g) {
      if (series[i][g] <= target) {
        gen = g;
        break;
      }
    }
    if (gen == len) {
      std::printf("  %-8s never\n", names[i]);
    } else {
      std::printf("  %-8s %4zu  (%.1fx faster than 2-point)\n", names[i], gen,
                  gen == 0 ? static_cast<double>(len)
                           : static_cast<double>(len - 1) /
                                 static_cast<double>(gen));
    }
  }
  std::printf(
      "\nShape check: KNUX and DKNUX converge dramatically faster and to\n"
      "far better cuts than 2-point/UX at the same budget — the paper's\n"
      "'orders of magnitude' claim.  KNUX's curve drops to (roughly) the\n"
      "quality of its fixed IBP reference almost immediately and then\n"
      "flattens — §3.3's observation that KNUX quality is bounded by the\n"
      "heuristic estimate, which is exactly what DKNUX's dynamic reference\n"
      "removes (no heuristic needed, keeps improving).\n");

  // Raw CSV for replotting.
  std::printf("\nCSV: generation,two_point,ux,knux,dknux\n");
  for (std::size_t g = 0; g < len; g += step) {
    std::printf("CSV: %zu,%.2f,%.2f,%.2f,%.2f\n", g, series[0][g],
                series[1][g], series[2][g], series[3][g]);
  }
  return 0;
}
