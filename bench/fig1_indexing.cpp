// Figure 1 of the paper: row-major (a) and shuffled row-major (b) indexing
// of an 8x8 grid.  This harness regenerates both matrices from the indexing
// module, verifies them cell-for-cell against the matrices printed in the
// paper, and adds the Hilbert ordering as the library's extension.
#include <cstdio>

#include "common/assert.hpp"
#include "sfc/indexing.hpp"

namespace {

using namespace gapart;

constexpr std::uint64_t kPaperShuffled[8][8] = {
    {0, 1, 4, 5, 16, 17, 20, 21},   {2, 3, 6, 7, 18, 19, 22, 23},
    {8, 9, 12, 13, 24, 25, 28, 29}, {10, 11, 14, 15, 26, 27, 30, 31},
    {32, 33, 36, 37, 48, 49, 52, 53}, {34, 35, 38, 39, 50, 51, 54, 55},
    {40, 41, 44, 45, 56, 57, 60, 61}, {42, 43, 46, 47, 58, 59, 62, 63},
};

void print_grid(const char* title,
                std::uint64_t (*index)(std::uint64_t, std::uint64_t)) {
  std::printf("%s\n", title);
  for (std::uint64_t r = 0; r < 8; ++r) {
    for (std::uint64_t c = 0; c < 8; ++c) {
      std::printf("%02llu ",
                  static_cast<unsigned long long>(index(r, c)));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Figure 1 — indexing schemes for an 8x8 grid (Maini et al., SC'94)\n"
      "Regenerated from sfc/indexing and checked against the paper's "
      "matrices.\n\n");

  print_grid("(a) Row-major indexing:", [](std::uint64_t r, std::uint64_t c) {
    return row_major_index(r, c, 8);
  });
  print_grid("(b) Shuffled row-major (bit-interleaved) indexing:",
             [](std::uint64_t r, std::uint64_t c) {
               return morton_index(r, c, 3);
             });
  print_grid("(c) Hilbert indexing (library extension, not in the paper):",
             [](std::uint64_t r, std::uint64_t c) {
               return hilbert_index(c, r, 3);
             });

  // Verification against the published figure.
  int mismatches = 0;
  for (std::uint64_t r = 0; r < 8; ++r) {
    for (std::uint64_t c = 0; c < 8; ++c) {
      if (row_major_index(r, c, 8) != r * 8 + c) ++mismatches;
      if (morton_index(r, c, 3) != kPaperShuffled[r][c]) ++mismatches;
    }
  }
  if (mismatches == 0) {
    std::printf(
        "VERIFIED: both matrices match Figure 1 of the paper cell-for-cell "
        "(128/128 cells).\n");
  } else {
    std::printf("MISMATCH: %d cells differ from the paper's Figure 1!\n",
                mismatches);
    return 1;
  }

  // The worked interleaving examples from the appendix.
  const std::uint64_t ex1[3] = {0b001, 0b010, 0b110};
  const int ex1_bits[3] = {3, 3, 3};
  const std::uint64_t ex2[3] = {0b101, 0b01, 0b0};
  const int ex2_bits[3] = {3, 2, 1};
  std::printf(
      "\nAppendix interleave examples:\n"
      "  (001, 010, 110) -> %llu (paper: 001011100b = %u)\n"
      "  (101, 01, 0)    -> %llu (paper: 100110b = %u)\n",
      static_cast<unsigned long long>(interleave_bits(ex1, ex1_bits)),
      0b001011100u,
      static_cast<unsigned long long>(interleave_bits(ex2, ex2_bits)),
      0b100110u);
  GAPART_ASSERT(interleave_bits(ex1, ex1_bits) == 0b001011100u);
  GAPART_ASSERT(interleave_bits(ex2, ex2_bits) == 0b100110u);
  std::printf("VERIFIED: appendix examples reproduce bit-for-bit.\n");
  return 0;
}
