// Table 2 of the paper: "Improving the Solution found through Recursive
// Spectral Bisection, using Fitness Function 1."  The GA population is
// seeded with the RSB solution; cells are total inter-part edges of the best
// of 5 runs, against the RSB solution itself.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "spectral/rsb.hpp"

namespace {

using namespace gapart;
using namespace gapart::bench;

struct PaperRow {
  VertexId nodes;
  double dknux[3];
  double rsb[3];
};

constexpr PaperRow kPaperRows[] = {
    {139, {28, 65, 100}, {30, 69, 113}},
    {213, {41, 77, 138}, {41, 82, 151}},
    {243, {43, 88, 141}, {47, 95, 154}},
    {279, {36, 78, 139}, {37, 88, 155}},
};
constexpr PartId kParts[] = {2, 4, 8};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto settings = RunSettings::from_cli(args, /*default_gens=*/400,
                                              /*default_stall=*/150);
  print_banner(
      "Table 2 — GA (DKNUX) refining RSB solutions, Fitness 1 (total cut)",
      "Maini et al., SC'94, Table 2", settings);

  TextTable table({"graph", "parts", "DKNUX paper/ours", "RSB paper/ours",
                   "improvement", "sec"});
  for (const auto& row : kPaperRows) {
    const Mesh mesh = paper_mesh(row.nodes);
    std::printf("graph %d: %s\n", row.nodes, mesh.graph.summary().c_str());
    for (int pi = 0; pi < 3; ++pi) {
      const PartId k = kParts[pi];
      Rng rng(settings.base_seed + static_cast<std::uint64_t>(row.nodes));

      const Assignment rsb = rsb_partition(mesh.graph, k, rng);
      const double rsb_cut = compute_metrics(mesh.graph, rsb, k).total_cut();

      const auto cfg =
          harness_dpga_config(k, Objective::kTotalComm, settings);
      const auto cell = best_of_runs(
          mesh.graph, cfg, seeded_init(rsb, cfg.ga.population_size), settings,
          static_cast<std::uint64_t>(row.nodes * 100 + k));

      table.start_row();
      table.append(std::to_string(row.nodes) + " nodes");
      table.append(static_cast<long long>(k));
      table.append(paper_vs(row.dknux[pi], cell.total_cut));
      table.append(paper_vs(row.rsb[pi], rsb_cut));
      const double gain = rsb_cut - cell.total_cut;
      table.append(format_double(gain, 0) + " edges");
      table.append(cell.seconds, 1);
    }
    table.add_rule();
  }
  std::printf("\n%s\n", table.str().c_str());
  std::printf(
      "Shape check: the RSB-seeded GA never returns anything worse than the\n"
      "RSB solution it started from, and usually strictly improves it — the\n"
      "paper's Table 2 shows the same relation on its meshes.\n");
  return 0;
}
