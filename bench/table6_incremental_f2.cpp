// Table 6 of the paper: "Incremental Partitioning with Fitness Function 2".
// Same workload model as Table 3 (local mesh growth, GA seeded from the
// previous partition) but minimizing the worst-case cut max_q C(q).
#include <cstdio>

#include "baselines/greedy_incremental.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "spectral/rsb.hpp"

namespace {

using namespace gapart;
using namespace gapart::bench;

struct PaperRow {
  VertexId base;
  VertexId extra;
  double dknux[2];  // parts 4, 8
  double rsb[2];    // negative = not reported in the paper
};

constexpr PaperRow kPaperRows[] = {
    {78, 10, {27, 25}, {33, 27}},   {78, 20, {29, 27}, {-1, -1}},
    {118, 21, {33, 29}, {38, 34}},  {118, 41, {34, 35}, {40, 39}},
    {183, 30, {41, 40}, {46, 45}},  {183, 60, {46, 45}, {51, 47}},
    {249, 30, {42, 44}, {51, 47}},  {249, 60, {46, 56}, {46, 52}},
};
constexpr PartId kParts[] = {4, 8};

std::string paper_cell(double paper_value, double measured) {
  if (paper_value < 0) return "n/a / " + format_double(measured, 0);
  return paper_vs(paper_value, measured);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto settings = RunSettings::from_cli(args, /*default_gens=*/600,
                                              /*default_stall=*/200,
                                              /*default_hill_climb=*/true);
  print_banner(
      "Table 6 — Incremental partitioning (DKNUX + §3.6) on worst-case cut, "
      "Fitness 2",
      "Maini et al., SC'94, Table 6 (+ §5 greedy strawman)", settings);

  TextTable table({"graph", "parts", "worst cut DKNUX paper/ours",
                   "worst cut RSB paper/ours", "greedy worst", "greedy imb",
                   "sec"});
  for (const auto& row : kPaperRows) {
    const Mesh base = paper_mesh(row.base);
    const Mesh grown = paper_incremental_mesh(base, row.base, row.extra);
    std::printf("graph %d+%d: %s\n", row.base, row.extra,
                grown.graph.summary().c_str());
    for (int pi = 0; pi < 2; ++pi) {
      const PartId k = kParts[pi];
      Rng rng(settings.base_seed + static_cast<std::uint64_t>(row.base) +
              static_cast<std::uint64_t>(row.extra));

      const Assignment previous = rsb_partition(base.graph, k, rng);
      const Assignment rsb_grown = rsb_partition(grown.graph, k, rng);
      const double rsb_worst =
          compute_metrics(grown.graph, rsb_grown, k).max_part_cut;

      const Assignment greedy =
          greedy_incremental_assign(grown.graph, previous, k);
      const auto greedy_m = compute_metrics(grown.graph, greedy, k);

      const auto cfg =
          harness_dpga_config(k, Objective::kWorstComm, settings);
      const auto cell = best_of_runs(
          grown.graph, cfg,
          incremental_init(grown.graph, previous, k, cfg.ga.population_size),
          settings,
          static_cast<std::uint64_t>(row.base * 1000 + row.extra * 10 + k));

      table.start_row();
      table.append(std::to_string(row.base) + "+" +
                   std::to_string(row.extra));
      table.append(static_cast<long long>(k));
      table.append(paper_cell(row.dknux[pi], cell.max_part_cut));
      table.append(paper_cell(row.rsb[pi], rsb_worst));
      table.append(greedy_m.max_part_cut, 0);
      table.append(greedy_m.imbalance_sq, 0);
      table.append(cell.seconds, 1);
    }
    table.add_rule();
  }
  std::printf("\n%s\n", table.str().c_str());
  std::printf(
      "Shape check (paper Table 6): the incrementally-seeded Fitness-2 GA\n"
      "posts lower worst-case cuts than from-scratch RSB on most rows; the\n"
      "greedy strawman's imbalance column shows why it is not a contender.\n");
  return 0;
}
