// Table 1 of the paper: "A Comparison of the Best Solutions found Using
// DKNUX and RSB: starting with a population initialized with an IBP
// solution, using Fitness Function 1."  Graphs of 167 and 144 nodes,
// 2/4/8 parts; cells are total inter-part edges (sum C(q)/2) of the best
// of 5 runs.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "sfc/ibp.hpp"
#include "spectral/rsb.hpp"

namespace {

using namespace gapart;
using namespace gapart::bench;

struct PaperRow {
  VertexId nodes;
  // Paper-reported cuts for parts 2, 4, 8.
  double dknux[3];
  double rsb[3];
};

constexpr PaperRow kPaperRows[] = {
    {167, {20, 63, 109}, {20, 59, 120}},
    {144, {33, 65, 120}, {36, 78, 119}},
};
constexpr PartId kParts[] = {2, 4, 8};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto settings = RunSettings::from_cli(args, /*default_gens=*/400,
                                              /*default_stall=*/150);
  print_banner("Table 1 — DKNUX (IBP-seeded) vs RSB, Fitness 1 (total cut)",
               "Maini et al., SC'94, Table 1", settings);

  TextTable table({"graph", "parts", "IBP seed cut", "DKNUX paper/ours",
                   "RSB paper/ours", "GA gens", "sec"});
  for (const auto& row : kPaperRows) {
    const Mesh mesh = paper_mesh(row.nodes);
    std::printf("graph %d: %s\n", row.nodes, mesh.graph.summary().c_str());
    for (int pi = 0; pi < 3; ++pi) {
      const PartId k = kParts[pi];
      Rng rng(settings.base_seed + static_cast<std::uint64_t>(row.nodes));

      const Assignment ibp = ibp_partition(mesh.graph, k);
      const double ibp_cut = compute_metrics(mesh.graph, ibp, k).total_cut();

      const Assignment rsb = rsb_partition(mesh.graph, k, rng);
      const double rsb_cut = compute_metrics(mesh.graph, rsb, k).total_cut();

      const auto cfg =
          harness_dpga_config(k, Objective::kTotalComm, settings);
      const auto cell = best_of_runs(
          mesh.graph, cfg, seeded_init(ibp, cfg.ga.population_size), settings,
          static_cast<std::uint64_t>(row.nodes * 100 + k));

      table.start_row();
      table.append(std::to_string(row.nodes) + " nodes");
      table.append(static_cast<long long>(k));
      table.append(ibp_cut, 0);
      table.append(paper_vs(row.dknux[pi], cell.total_cut));
      table.append(paper_vs(row.rsb[pi], rsb_cut));
      table.append(static_cast<long long>(cell.generations));
      table.append(cell.seconds, 1);
    }
    table.add_rule();
  }
  std::printf("\n%s\n", table.str().c_str());
  std::printf(
      "Shape check: the GA must improve on (or match) its IBP seed, and be\n"
      "competitive with RSB — matching the paper's Table 1 relationship.\n");
  return 0;
}
