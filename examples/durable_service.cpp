// Durable streaming session, built to be killed.
//
// Run mode (default): opens — or, when the WAL directory already holds a
// session, recovers — a durable PartitionService session and streams a
// deterministic churn trace into it, printing one flushed "ACK <epoch>" line
// per acknowledged delta.  Because every acknowledgement is written and
// fsynced to the write-ahead log BEFORE it is returned (and only then
// printed), any epoch this process managed to print is recoverable no matter
// when the process dies — including kill -9 mid-append.
//
// Audit mode (--recover): recovers the directory, cross-checks the rebuilt
// snapshot against freshly computed metrics, prints one
// "RECOVERED sessions=<n> epoch=<e> records=<r> torn=<0|1>" line, and exits
// non-zero if anything is inconsistent.  scripts/chaos_kill_recover.sh loops
// run → kill -9 → audit and asserts that no printed ACK ever exceeds the
// recovered epoch: zero lost acknowledged deltas.
//
//   ./examples/example_durable_service --dir=/tmp/wal [--updates=100000]
//                                      [--interval-ms=2] [--n=16] [--k=4]
//                                      [--trace-out=durable_trace.json]
//   ./examples/example_durable_service --dir=/tmp/wal --recover
//
// --trace-out enables span tracing for the run and writes Chrome trace_event
// JSON on clean exit (open in chrome://tracing or https://ui.perfetto.dev to
// see repair / WAL append / fsync spans interleaved per thread).  Needs a
// GAPART_TELEMETRY build to carry span data.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/telemetry.hpp"
#include "core/graph_delta.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "service/service.hpp"

namespace {

using namespace gapart;

/// Deterministic churn trace: an n x n grid whose odd phases add the
/// diagonals of a phase-seeded window.  The graph at epoch e is a pure
/// function of (n, e), so a recovered session can resume the stream exactly
/// where the log ends.
Graph trace_graph(VertexId n, int phase) {
  GraphBuilder b(n * n);
  const auto at = [n](VertexId r, VertexId c) { return r * n + c; };
  for (VertexId r = 0; r < n; ++r) {
    for (VertexId c = 0; c < n; ++c) {
      if (c + 1 < n) b.add_edge(at(r, c), at(r, c + 1));
      if (r + 1 < n) b.add_edge(at(r, c), at(r + 1, c));
    }
  }
  if (phase % 2 == 1) {
    Rng rng(0xc4a0ULL ^ static_cast<std::uint64_t>(phase) * 0x9e37ULL);
    const VertexId window = 5;
    const VertexId span = std::max<VertexId>(1, n - window - 1);
    const auto r0 = static_cast<VertexId>(rng.uniform_int(span));
    const auto c0 = static_cast<VertexId>(rng.uniform_int(span));
    for (VertexId r = r0; r < r0 + window && r + 1 < n; ++r) {
      for (VertexId c = c0; c < c0 + window && c + 1 < n; ++c) {
        b.add_edge(at(r, c), at(r + 1, c + 1));
      }
    }
  }
  return b.build();
}

Assignment bands(VertexId n, PartId k) {
  Assignment a(static_cast<std::size_t>(n) * n);
  for (VertexId v = 0; v < n * n; ++v) {
    a[static_cast<std::size_t>(v)] =
        static_cast<PartId>((v % n) * static_cast<VertexId>(k) / n);
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string dir = args.str("dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "usage: %s --dir=<wal_dir> [--recover] "
                         "[--updates=N] [--interval-ms=M] [--n=16] [--k=4]\n",
                 args.program().c_str());
    return 2;
  }
  const bool audit = args.flag("recover");
  const int updates = args.integer("updates", 100000);
  const int interval_ms = args.integer("interval-ms", 2);
  const auto n = static_cast<VertexId>(args.integer("n", 16));
  const auto k = static_cast<PartId>(args.integer("k", 4));
  const std::string trace_out = args.str("trace-out", "");
  if (!trace_out.empty()) Tracer::instance().enable();

  ServiceConfig sc;
  sc.num_threads = 2;
  sc.durability.dir = dir;

  SessionConfig cfg;
  cfg.num_parts = k;
  cfg.repair_budget_seconds = 0.002;

  try {
    PartitionService service(sc);

    SessionId id = 0;
    std::uint64_t epoch = 0;
    const bool have_state = std::filesystem::exists(dir) &&
                            !std::filesystem::is_empty(dir);
    if (have_state) {
      const auto reports = service.recover(cfg);
      std::size_t records = 0;
      bool torn = false;
      for (const auto& r : reports) {
        records += r.records_replayed;
        torn = torn || r.torn_tail;
        id = r.session_id;
        epoch = r.final_epoch;
      }
      // Audit the rebuilt snapshot: the assignment must be valid and the
      // cached cut must match a from-scratch recount.
      for (const auto& r : reports) {
        const auto snap = service.snapshot(r.session_id);
        if (!is_valid_assignment(*snap->graph, snap->assignment, k)) {
          std::fprintf(stderr, "recovered assignment invalid\n");
          return 1;
        }
        const auto m = compute_metrics(*snap->graph, snap->assignment, k);
        if (std::abs(m.total_cut() - snap->total_cut) > 1e-6) {
          std::fprintf(stderr, "recovered cut mismatch\n");
          return 1;
        }
      }
      std::printf("RECOVERED sessions=%zu epoch=%llu records=%zu torn=%d\n",
                  reports.size(), static_cast<unsigned long long>(epoch),
                  records, torn ? 1 : 0);
      std::fflush(stdout);
    } else if (!audit) {
      auto g0 = std::make_shared<const Graph>(trace_graph(n, 0));
      id = service.open_session(g0, bands(n, k), cfg);
      std::printf("OPENED session=%llu\n",
                  static_cast<unsigned long long>(id));
      std::fflush(stdout);
    } else {
      std::printf("RECOVERED sessions=0 epoch=0 records=0 torn=0\n");
      return 0;
    }
    if (audit) return 0;

    auto prev = std::make_shared<const Graph>(
        trace_graph(n, static_cast<int>(epoch)));
    for (int u = 0; u < updates; ++u) {
      const auto phase = static_cast<int>(++epoch);
      auto next = std::make_shared<const Graph>(trace_graph(n, phase));
      const RepairReport rep =
          service.submit_update(id, next, diff_graphs(*prev, *next));
      // The delta is on disk (fsynced) by the time submit_update returns:
      // printing AFTER the ack keeps "printed implies recoverable" true.
      std::printf("ACK %llu\n",
                  static_cast<unsigned long long>(rep.update_epoch));
      std::fflush(stdout);
      prev = std::move(next);
      if (interval_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      }
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (!trace_out.empty()) {
    Tracer::instance().disable();
    std::ofstream os(trace_out);
    Tracer::instance().export_chrome_trace(os);
    std::fprintf(stderr, "telemetry: wrote trace %s\n", trace_out.c_str());
  }
  return 0;
}
