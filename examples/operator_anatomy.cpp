// Operator anatomy — a didactic walk through the paper's §3.2/§3.3 on a
// graph small enough to print: shows the KNUX bias vector for a concrete
// parent pair and reference solution, then traces how DKNUX's reference
// (and with it the bias landscape) evolves during a short run.
//
//   $ ./operator_anatomy
#include <cstdio>

#include "gapart.hpp"

using namespace gapart;

int main() {
  // A 4x4 grid: small enough to show every vertex.
  const Graph g = make_grid(4, 4);
  std::printf("graph: 4x4 grid, vertex v at (row v/4, col v%%4)\n\n");

  // Reference solution I: left half vs right half (the "heuristic
  // estimate" of §3.2).
  Assignment reference(16);
  for (VertexId v = 0; v < 16; ++v) {
    reference[static_cast<std::size_t>(v)] = (v % 4) < 2 ? 0 : 1;
  }
  // Parents: a = horizontal split (top/bottom), b = interleaved columns.
  Assignment a(16);
  Assignment b(16);
  for (VertexId v = 0; v < 16; ++v) {
    a[static_cast<std::size_t>(v)] = v < 8 ? 0 : 1;
    b[static_cast<std::size_t>(v)] = static_cast<PartId>(v % 2);
  }

  std::printf("reference I (vertical split): ");
  for (PartId p : reference) std::printf("%d", p);
  std::printf("\nparent a    (horizontal):     ");
  for (PartId p : a) std::printf("%d", p);
  std::printf("\nparent b    (interleaved):    ");
  for (PartId p : b) std::printf("%d", p);

  std::printf("\n\nKNUX bias p_i = P(child inherits a_i), per vertex:\n");
  std::printf("  v  a_i b_i  #(i,a,I) #(i,b,I)  p_i\n");
  for (VertexId v = 0; v < 16; ++v) {
    const auto ai = a[static_cast<std::size_t>(v)];
    const auto bi = b[static_cast<std::size_t>(v)];
    int ca = 0;
    int cb = 0;
    for (VertexId u : g.neighbors(v)) {
      if (reference[static_cast<std::size_t>(u)] == ai) ++ca;
      if (reference[static_cast<std::size_t>(u)] == bi) ++cb;
    }
    if (ai == bi) {
      std::printf("  %2d   %d   %d      (equal genes: copied verbatim)\n", v,
                  ai, bi);
    } else {
      std::printf("  %2d   %d   %d      %d        %d      %.2f\n", v, ai, bi,
                  ca, cb, knux_bias(g, reference, v, ai, bi));
    }
  }

  // Trace DKNUX's reference across a short run on the same graph.
  std::printf("\nDKNUX reference trace (best-so-far drives the bias):\n");
  GaConfig cfg;
  cfg.num_parts = 2;
  cfg.population_size = 40;
  cfg.crossover = CrossoverOp::kDknux;
  cfg.max_generations = 0;
  Rng rng(11);
  auto init = make_random_population(16, 2, cfg.population_size, rng);
  GaEngine engine(g, cfg, std::move(init), rng.split());
  const FitnessParams params;
  for (int gen = 0; gen <= 12; ++gen) {
    if (gen > 0) engine.step();
    const auto m = compute_metrics(g, engine.knux_reference(), 2);
    std::printf("  gen %2d  reference=", gen);
    for (PartId p : engine.knux_reference()) std::printf("%d", p);
    std::printf("  cut=%.0f fitness=%.0f\n", m.total_cut(),
                fitness_from_metrics(m, params));
  }
  std::printf(
      "\nRead: the bias pulls every child towards whichever assignment the\n"
      "best-so-far solution gives the vertex's NEIGHBOURS — locality\n"
      "knowledge the traditional operators cannot see.  As the reference\n"
      "improves, the pull re-aims at better and better solutions (§3.3).\n");
  return 0;
}
