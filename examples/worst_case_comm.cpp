// Worst-case communication optimization — the paper's §4.3 headline
// capability: genetic algorithms can directly minimize
//     sum_q I(q) + max_q C(q),
// a non-differentiable objective that gradient-based partitioners cannot
// touch.  In a bulk-synchronous solver the slowest processor sets the pace,
// so the WORST part's communication volume — not the total — bounds the
// step time.
//
// This example partitions a mesh for both objectives and shows the
// trade-off: Fitness1 minimizes total traffic, Fitness2 flattens the
// per-part communication profile.
//
//   $ ./worst_case_comm [--nodes=213] [--parts=8] [--gens=400]
#include <cstdio>

#include "gapart.hpp"

using namespace gapart;

namespace {

void print_profile(const char* name, const Graph& g, const Assignment& a,
                   PartId parts) {
  const auto m = compute_metrics(g, a, parts);
  std::printf("%-22s total cut %5.0f   worst part cut %4.0f   imbalance %4.1f\n",
              name, m.total_cut(), m.max_part_cut, m.imbalance_sq);
  std::printf("%-22s per-part C(q):", "");
  for (PartId q = 0; q < parts; ++q) {
    std::printf(" %4.0f", m.part_cut[static_cast<std::size_t>(q)]);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto nodes = static_cast<VertexId>(args.integer("nodes", 213));
  const auto parts = static_cast<PartId>(args.integer("parts", 8));
  const int gens = args.integer("gens", 400);

  const Mesh mesh = paper_mesh(nodes);
  Rng rng(0xCC0);
  std::printf("mesh: %s, %d parts\n\n", mesh.graph.summary().c_str(), parts);

  // Baseline: RSB (oblivious to the worst-part objective).
  const Assignment rsb = rsb_partition(mesh.graph, parts, rng);
  print_profile("RSB", mesh.graph, rsb, parts);
  std::printf("\n");

  // GA minimizing total communication (Fitness 1), seeded with RSB.
  DpgaConfig cfg1 = paper_dpga_config(parts, Objective::kTotalComm);
  cfg1.ga.max_generations = gens;
  auto seeds = make_seeded_population(rsb, cfg1.ga.population_size, 0.1, rng);
  const auto total_opt = run_dpga(mesh.graph, cfg1, seeds, rng.split());
  print_profile("GA fitness1 (total)", mesh.graph, total_opt.best, parts);
  std::printf("\n");

  // GA minimizing the worst part (Fitness 2), seeded with RSB.
  DpgaConfig cfg2 = paper_dpga_config(parts, Objective::kWorstComm);
  cfg2.ga.max_generations = gens;
  const auto worst_opt = run_dpga(mesh.graph, cfg2, seeds, rng.split());
  print_profile("GA fitness2 (worst)", mesh.graph, worst_opt.best, parts);

  const auto m1 = compute_metrics(mesh.graph, total_opt.best, parts);
  const auto m2 = compute_metrics(mesh.graph, worst_opt.best, parts);
  std::printf(
      "\nRead: the fitness2 run trades a slightly higher total cut\n"
      "(%.0f vs %.0f) for a flatter profile — its worst part (%.0f) beats\n"
      "both RSB and the fitness1 run (%.0f), which is what bounds the\n"
      "communication phase of a bulk-synchronous step.\n",
      m2.total_cut(), m1.total_cut(), m2.max_part_cut, m1.max_part_cut);
  return 0;
}
