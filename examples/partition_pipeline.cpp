// partition_pipeline — a command-line partitioning tool over the whole
// library: reads (or generates) a graph, runs any of the implemented
// partitioners, prints the metric breakdown, and optionally writes the
// partition and graph files in the Chaco-compatible text format.
//
//   # partition a generated 500-node mesh into 8 parts with the GA
//   $ ./partition_pipeline --nodes=500 --parts=8 --method=ga
//
//   # partition a graph file (Chaco/METIS format) with RSB
//   $ ./partition_pipeline --graph=mesh.graph --coords=mesh.xy
//         --parts=4 --method=rsb --out=mesh.part
//
// Methods: ga | ga-seeded | contracted-ga | vcycle | rsb | multilevel |
//          rcb | rgb | ibp | ibp-hilbert
#include <cstdio>
#include <fstream>
#include <string>

#include "gapart.hpp"

using namespace gapart;

namespace {

Graph load_or_generate(const CliArgs& args, Rng& rng) {
  const std::string path = args.str("graph", "");
  if (!path.empty()) {
    Graph g = read_graph_file(path);
    const std::string coords = args.str("coords", "");
    if (!coords.empty()) {
      std::ifstream is(coords);
      GAPART_REQUIRE(is.good(), "cannot open coordinate file ", coords);
      g = attach_coordinates(g, is);
    }
    return g;
  }
  const auto nodes = static_cast<VertexId>(args.integer("nodes", 500));
  const Domain domain(DomainShape::kRectangle);
  return generate_mesh(domain, nodes, rng).graph;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.has("help")) {
    std::printf(
        "usage: %s [--graph=FILE [--coords=FILE]] [--nodes=N] --parts=K\n"
        "          --method=ga|ga-seeded|contracted-ga|vcycle|rsb|multilevel|"
        "rcb|rgb|ibp|ibp-hilbert\n"
        "          [--objective=total|worst] [--gens=N] [--out=FILE]\n",
        args.program().c_str());
    return 0;
  }

  Rng rng(static_cast<std::uint64_t>(args.integer("seed", 1)));
  const Graph g = load_or_generate(args, rng);
  const auto parts = static_cast<PartId>(args.integer("parts", 4));
  const std::string method = args.str("method", "ga");
  const Objective objective = args.str("objective", "total") == "worst"
                                  ? Objective::kWorstComm
                                  : Objective::kTotalComm;
  std::printf("graph : %s\n", g.summary().c_str());
  std::printf("method: %s, %d parts, %s\n", method.c_str(), parts,
              objective_name(objective));

  WallTimer timer;
  Assignment assignment;
  if (method == "rsb") {
    assignment = rsb_partition(g, parts, rng);
  } else if (method == "multilevel") {
    MultilevelOptions opt;
    opt.fitness.objective = objective;
    assignment = multilevel_partition(g, parts, rng, opt);
  } else if (method == "rcb") {
    assignment = rcb_partition(g, parts, rng);
  } else if (method == "rgb") {
    assignment = rgb_partition(g, parts, rng);
  } else if (method == "ibp" || method == "ibp-hilbert") {
    IbpOptions opt;
    if (method == "ibp-hilbert") opt.scheme = IndexScheme::kHilbert;
    assignment = ibp_partition(g, parts, opt);
  } else if (method == "ga" || method == "ga-seeded") {
    DpgaConfig cfg = paper_dpga_config(parts, objective);
    cfg.ga.max_generations = args.integer("gens", 300);
    std::vector<Assignment> init;
    if (method == "ga-seeded") {
      const Assignment seed = g.has_coordinates()
                                  ? ibp_partition(g, parts)
                                  : rgb_partition(g, parts, rng);
      init = make_seeded_population(seed, cfg.ga.population_size, 0.1, rng);
    } else {
      init = make_random_population(g.num_vertices(), parts,
                                    cfg.ga.population_size, rng);
    }
    const auto res = run_dpga(g, cfg, std::move(init), rng.split());
    assignment = res.best;
    std::printf("GA    : %d generations, %lld evaluations\n", res.generations,
                static_cast<long long>(res.evaluations));
  } else if (method == "vcycle") {
    VcycleGaOptions opt;
    opt.dpga = paper_dpga_config(parts, objective);
    opt.dpga.ga.max_generations = args.integer("gens", 300);
    const auto res = vcycle_ga_partition(g, opt, rng);
    assignment = res.assignment;
    std::printf("GA    : V-cycle %d -> %d vertices over %d levels "
                "(%d evolved%s)\n",
                g.num_vertices(), res.coarsest_vertices, res.levels,
                res.evolved_levels,
                res.adaptive_stop ? ", adaptive stop" : "");
  } else if (method == "contracted-ga") {
    ContractedGaOptions opt;
    opt.dpga = paper_dpga_config(parts, objective);
    opt.dpga.ga.max_generations = args.integer("gens", 300);
    const auto res = contracted_ga_partition(g, opt, rng);
    assignment = res.assignment;
    std::printf("GA    : contracted %d -> %d vertices over %d levels\n",
                g.num_vertices(), res.coarse_vertices, res.levels);
  } else {
    std::fprintf(stderr, "unknown method '%s' (try --help)\n", method.c_str());
    return 1;
  }
  const double seconds = timer.seconds();

  const auto m = compute_metrics(g, assignment, parts);
  std::printf("\ntotal cut %.0f   worst part cut %.0f   imbalance %.1f   "
              "(%.2fs)\n",
              m.total_cut(), m.max_part_cut, m.imbalance_sq, seconds);
  std::printf("part  weight  C(q)\n");
  for (PartId q = 0; q < parts; ++q) {
    std::printf("%4d  %6.0f  %4.0f\n", q,
                m.part_weight[static_cast<std::size_t>(q)],
                m.part_cut[static_cast<std::size_t>(q)]);
  }

  const std::string out = args.str("out", "");
  if (!out.empty()) {
    write_partition_file(out, assignment);
    std::printf("\npartition written to %s\n", out.c_str());
  }
  for (const auto& unused : args.unused()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", unused.c_str());
  }
  return 0;
}
