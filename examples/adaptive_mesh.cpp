// Adaptive-refinement scenario — the paper's incremental-partitioning use
// case end to end.
//
// A solver runs on a partitioned mesh; between time steps the mesh is
// refined in a localized region (a moving front, a shock, a crack tip), and
// the partition must be updated.  Re-partitioning from scratch is wasteful
// and churns data placement; the paper's answer is to seed the GA with the
// previous partition (§3.5).  This example simulates several refinement
// steps and compares, at every step:
//   - incremental DKNUX (previous partition seeds the GA),
//   - from-scratch RSB on the refined mesh,
//   - the deterministic majority-assignment strawman from §5,
// reporting cut quality, balance, and how much of the old data placement
// each method preserves (vertices that stay on their part).
//
//   $ ./adaptive_mesh [--steps=4] [--base=150] [--extra=30] [--parts=8]
#include <cstdio>

#include "gapart.hpp"

using namespace gapart;

namespace {

/// Fraction of surviving vertices whose part did not change, after greedily
/// matching the new labels to the old ones (a from-scratch partitioner
/// names its parts arbitrarily; without matching its stability would be
/// understated).
double placement_stability(const Assignment& before, const Assignment& after,
                           PartId parts) {
  // overlap[p][q]: surviving vertices moving from old part p to new part q.
  std::vector<std::vector<std::size_t>> overlap(
      static_cast<std::size_t>(parts),
      std::vector<std::size_t>(static_cast<std::size_t>(parts), 0));
  for (std::size_t v = 0; v < before.size(); ++v) {
    ++overlap[static_cast<std::size_t>(before[v])]
             [static_cast<std::size_t>(after[v])];
  }
  // Greedy maximum matching of labels by descending overlap.
  std::vector<char> old_used(static_cast<std::size_t>(parts), 0);
  std::vector<char> new_used(static_cast<std::size_t>(parts), 0);
  std::size_t matched = 0;
  for (PartId round = 0; round < parts; ++round) {
    std::size_t best = 0;
    PartId bp = -1;
    PartId bq = -1;
    for (PartId p = 0; p < parts; ++p) {
      if (old_used[static_cast<std::size_t>(p)]) continue;
      for (PartId q = 0; q < parts; ++q) {
        if (new_used[static_cast<std::size_t>(q)]) continue;
        if (overlap[static_cast<std::size_t>(p)][static_cast<std::size_t>(q)] >=
            best) {
          best = overlap[static_cast<std::size_t>(p)][static_cast<std::size_t>(q)];
          bp = p;
          bq = q;
        }
      }
    }
    old_used[static_cast<std::size_t>(bp)] = 1;
    new_used[static_cast<std::size_t>(bq)] = 1;
    matched += best;
  }
  return before.empty()
             ? 1.0
             : static_cast<double>(matched) / static_cast<double>(before.size());
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int steps = args.integer("steps", 4);
  const auto base_nodes = static_cast<VertexId>(args.integer("base", 150));
  const auto extra = static_cast<VertexId>(args.integer("extra", 30));
  const auto parts = static_cast<PartId>(args.integer("parts", 8));
  const int gens = args.integer("gens", 250);

  Rng rng(0xAD);
  const Domain domain(DomainShape::kRectangle);
  Mesh mesh = generate_mesh(domain, base_nodes, rng);
  std::printf("initial mesh: %s — %d refinement steps of +%d nodes, %d parts\n\n",
              mesh.graph.summary().c_str(), steps, extra, parts);

  // Initial partition: GA from a random start.
  DpgaConfig config = paper_dpga_config(parts, Objective::kTotalComm);
  config.ga.max_generations = gens;
  auto init = make_random_population(mesh.graph.num_vertices(), parts,
                                     config.ga.population_size, rng);
  Assignment current =
      run_dpga(mesh.graph, config, std::move(init), rng.split()).best;
  std::printf("step 0: total cut %.0f\n\n",
              compute_metrics(mesh.graph, current, parts).total_cut());

  TextTable table({"step", "|V|", "method", "total cut", "imbalance",
                   "stability", "sec"});
  for (int step = 1; step <= steps; ++step) {
    const Mesh refined = densify_mesh(mesh, domain, extra, rng);
    const Graph& g = refined.graph;

    // (a) the tiered incremental pipeline: greedy extension -> worklist-
    // seeded repair -> DKNUX refinement.  densify_mesh re-triangulates, so
    // survivors near the refinement disc get rewired: diff_graphs gives the
    // exact damage (appended range + perturbed survivors) and the repair
    // tier's worklist starts from precisely those vertices.
    IncrementalGaOptions inc;
    inc.dpga = config;
    const GraphDelta delta = diff_graphs(mesh.graph, g);
    const IncrementalResult ga =
        incremental_repartition(g, current, delta, inc, rng);
    const PartitionMetrics& m_ga = ga.best_metrics;
    const double ga_sec = ga.wall_seconds;

    std::printf("step %d damage: %d of %d vertices (%d new, %zu rewired)\n",
                step, static_cast<int>(ga.damage),
                static_cast<int>(g.num_vertices()),
                static_cast<int>(delta.num_new(g)), delta.touched_old.size());
    for (const auto& tier : ga.tiers) {
      std::printf(
          "  tier %-14s fitness %10.1f  moves %5d  examined %6lld  "
          "evals %8lld  %.3fs\n",
          tier.name.c_str(), tier.fitness_after, tier.moves,
          static_cast<long long>(tier.examined),
          static_cast<long long>(tier.evaluations), tier.seconds);
    }

    // (b) RSB from scratch.
    WallTimer t_rsb;
    const Assignment rsb = rsb_partition(g, parts, rng);
    const auto m_rsb = compute_metrics(g, rsb, parts);
    const double rsb_sec = t_rsb.seconds();

    // (c) greedy majority assignment (§5 strawman).
    WallTimer t_greedy;
    const Assignment greedy = greedy_incremental_assign(g, current, parts);
    const auto m_greedy = compute_metrics(g, greedy, parts);
    const double greedy_sec = t_greedy.seconds();

    auto add = [&](const char* name, const PartitionMetrics& m,
                   const Assignment& a, double sec) {
      table.start_row();
      table.append(static_cast<long long>(step));
      table.append(static_cast<long long>(g.num_vertices()));
      table.append(name);
      table.append(m.total_cut(), 0);
      table.append(m.imbalance_sq, 1);
      table.append(
          format_double(100.0 * placement_stability(current, a, parts), 0) +
          "%");
      table.append(sec, 2);
    };
    add("incremental DKNUX", m_ga, ga.best, ga_sec);
    add("RSB from scratch", m_rsb, rsb, rsb_sec);
    add("greedy majority", m_greedy, greedy, greedy_sec);
    table.add_rule();

    mesh = refined;
    current = ga.best;  // the solver continues on the GA's partition
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Read: the incremental GA keeps cut quality competitive with\n"
      "from-scratch RSB while preserving most of the existing data\n"
      "placement (high stability = little migration between steps);\n"
      "the greedy strawman preserves placement perfectly but lets load\n"
      "imbalance grow with every localized refinement.\n");
  return 0;
}
