// Quickstart: partition a small finite-element-style mesh with the paper's
// genetic algorithm and compare against recursive spectral bisection.
//
//   $ ./quickstart [--nodes=144] [--parts=4] [--gens=300]
//
// Walks through the core API surface: mesh generation, classical baselines,
// the DPGA with the DKNUX operator, and partition metrics.
#include <cstdio>

#include "gapart.hpp"

using namespace gapart;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto nodes = static_cast<VertexId>(args.integer("nodes", 144));
  const auto parts = static_cast<PartId>(args.integer("parts", 4));
  const int gens = args.integer("gens", 300);

  // 1. A workload: jittered points on a disc, Delaunay-triangulated.
  Rng rng(args.integer("seed", 7) > 0
              ? static_cast<std::uint64_t>(args.integer("seed", 7))
              : 7);
  const Domain domain(DomainShape::kDisc);
  const Mesh mesh = generate_mesh(domain, nodes, rng);
  std::printf("mesh: %s\n\n", mesh.graph.summary().c_str());

  // 2. A classical baseline: recursive spectral bisection.
  const Assignment rsb = rsb_partition(mesh.graph, parts, rng);
  const auto rsb_metrics = compute_metrics(mesh.graph, rsb, parts);
  std::printf("RSB          : total cut %4.0f   worst part cut %4.0f   "
              "imbalance %4.1f\n",
              rsb_metrics.total_cut(), rsb_metrics.max_part_cut,
              rsb_metrics.imbalance_sq);

  // 3. The paper's GA: 320 individuals on 16 hypercube-connected islands,
  //    DKNUX crossover, Fitness 1 (total communication), random start.
  DpgaConfig config = paper_dpga_config(parts, Objective::kTotalComm);
  config.ga.max_generations = gens;
  auto initial = make_random_population(mesh.graph.num_vertices(), parts,
                                        config.ga.population_size, rng);
  const DpgaResult ga =
      run_dpga(mesh.graph, config, std::move(initial), rng.split());
  const auto& m = ga.best_metrics;
  std::printf("GA (DKNUX)   : total cut %4.0f   worst part cut %4.0f   "
              "imbalance %4.1f   (%d generations, %lld evaluations, %.2fs)\n",
              m.total_cut(), m.max_part_cut, m.imbalance_sq, ga.generations,
              static_cast<long long>(ga.evaluations), ga.wall_seconds);

  // 4. Refinement mode (§4.1): seed the population with the RSB solution.
  auto seeded = make_seeded_population(rsb, config.ga.population_size,
                                       /*swap_fraction=*/0.1, rng);
  const DpgaResult refined =
      run_dpga(mesh.graph, config, std::move(seeded), rng.split());
  std::printf("GA (RSB seed): total cut %4.0f   worst part cut %4.0f   "
              "imbalance %4.1f\n",
              refined.best_metrics.total_cut(),
              refined.best_metrics.max_part_cut,
              refined.best_metrics.imbalance_sq);

  std::printf(
      "\nThe seeded GA is never worse than its seed; with enough budget it\n"
      "strictly improves on RSB — the paper's Table 1/2 observation.\n");
  return 0;
}
