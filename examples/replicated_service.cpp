// Replicated leader/follower pair over a Unix socket, built to be killed.
//
// Three modes, wired together by scripts/chaos_kill_recover.sh:
//
//   --follow   binds the socket, accepts the leader, and tail-replays its
//              stream (continuous recovery).  When the leader dies — EOF on
//              the socket, e.g. kill -9 — it drains whatever was already
//              shipped, promotes itself (fencing generation bump), and
//              prints one "PROMOTED session=<id> epoch=<e> digest=<d>
//              generation=<g>" line per session.  Exits 3 on divergence.
//
//   --lead     connects, opens a durable session, and streams the same
//              deterministic churn trace durable_service uses.  "ACK <e>"
//              is printed only after the FOLLOWER acknowledged epoch e, so
//              any ACK this process managed to print must survive failover
//              no matter when the process dies.
//
//   --reference  replays the trace in-process (no service, no I/O) and
//              prints "REFERENCE <epoch> <digest>" for every epoch: the
//              never-crashed digest the promoted follower must match.
//
//   ./examples/example_replicated_service --follow --socket=/tmp/rep.sock \
//       --dir=/tmp/follower
//   ./examples/example_replicated_service --lead --socket=/tmp/rep.sock \
//       --dir=/tmp/leader [--updates=1000] [--interval-ms=2]
//   ./examples/example_replicated_service --reference [--updates=1000]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/graph_delta.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "service/replication.hpp"
#include "service/service.hpp"
#include "service/transport.hpp"

namespace {

using namespace gapart;

/// Deterministic churn trace (same shape as example_durable_service): the
/// graph at epoch e is a pure function of (n, e), so leader, follower, and
/// reference replays see bit-identical inputs.
Graph trace_graph(VertexId n, int phase) {
  GraphBuilder b(n * n);
  const auto at = [n](VertexId r, VertexId c) { return r * n + c; };
  for (VertexId r = 0; r < n; ++r) {
    for (VertexId c = 0; c < n; ++c) {
      if (c + 1 < n) b.add_edge(at(r, c), at(r, c + 1));
      if (r + 1 < n) b.add_edge(at(r, c), at(r + 1, c));
    }
  }
  if (phase % 2 == 1) {
    Rng rng(0x51feULL ^ static_cast<std::uint64_t>(phase) * 0x9e37ULL);
    const VertexId window = 5;
    const VertexId span = std::max<VertexId>(1, n - window - 1);
    const auto r0 = static_cast<VertexId>(rng.uniform_int(span));
    const auto c0 = static_cast<VertexId>(rng.uniform_int(span));
    for (VertexId r = r0; r < r0 + window && r + 1 < n; ++r) {
      for (VertexId c = c0; c < c0 + window && c + 1 < n; ++c) {
        b.add_edge(at(r, c), at(r + 1, c + 1));
      }
    }
  }
  return b.build();
}

Assignment bands(VertexId n, PartId k) {
  Assignment a(static_cast<std::size_t>(n) * n);
  for (VertexId v = 0; v < n * n; ++v) {
    a[static_cast<std::size_t>(v)] =
        static_cast<PartId>((v % n) * static_cast<VertexId>(k) / n);
  }
  return a;
}

/// Both replicas and the reference must make identical repair decisions: a
/// budget far above any single repair makes the admitted verification
/// rounds a pure function of the trace.
SessionConfig replica_session_config(PartId k) {
  SessionConfig cfg;
  cfg.num_parts = k;
  cfg.repair_budget_seconds = 60.0;
  return cfg;
}

int run_reference(int updates, VertexId n, PartId k) {
  auto prev = std::make_shared<const Graph>(trace_graph(n, 0));
  PartitionSession session(prev, bands(n, k), replica_session_config(k));
  std::printf("REFERENCE 0 %llu\n",
              static_cast<unsigned long long>(session.state_digest()));
  for (int u = 1; u <= updates; ++u) {
    auto next = std::make_shared<const Graph>(trace_graph(n, u));
    session.apply_update(next, diff_graphs(*prev, *next));
    std::printf("REFERENCE %d %llu\n", u,
                static_cast<unsigned long long>(session.state_digest()));
    prev = std::move(next);
  }
  std::fflush(stdout);
  return 0;
}

int run_leader(const std::string& socket_path, const std::string& dir,
               int updates, int interval_ms, VertexId n, PartId k) {
  // The follower may still be binding: retry the connect briefly.
  std::unique_ptr<SocketTransport> link;
  for (int attempt = 0; attempt < 100; ++attempt) {
    try {
      link = SocketTransport::connect_unix(socket_path);
      break;
    } catch (const TransportError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  if (link == nullptr) {
    std::fprintf(stderr, "leader: cannot reach follower at %s\n",
                 socket_path.c_str());
    return 2;
  }

  ServiceConfig sc;
  sc.num_threads = 2;
  sc.background_refinement = false;  // replicas replay decisions, not races
  sc.durability.dir = dir;
  sc.durability.ship_retain_bytes = 0;  // lockstep compaction with the peer

  PartitionService service(sc);
  // Restarting after a demotion must not reuse a fenced term.
  ShipperConfig ship_cfg;
  ship_cfg.generation = read_generation_file(dir) + 1;
  ReplicationShipper shipper(service, *link, ship_cfg);

  auto g0 = std::make_shared<const Graph>(trace_graph(n, 0));
  const SessionId id =
      service.open_session(g0, bands(n, k), replica_session_config(k));
  shipper.pump();  // bootstrap the follower at epoch 0
  std::printf("OPENED session=%llu generation=%llu\n",
              static_cast<unsigned long long>(id),
              static_cast<unsigned long long>(ship_cfg.generation));
  std::fflush(stdout);

  auto prev = std::move(g0);
  for (int u = 1; u <= updates; ++u) {
    auto next = std::make_shared<const Graph>(trace_graph(n, u));
    const RepairReport rep =
        service.submit_update(id, next, diff_graphs(*prev, *next));
    prev = std::move(next);
    // Ship until the follower acknowledged this epoch; only then print.
    // "printed implies it survives failover" is the line the chaos script
    // holds us to.
    for (int pump = 0; pump < 20000; ++pump) {
      shipper.pump();
      if (shipper.acked_epoch(id) >= rep.update_epoch) break;
      if (shipper.stats().deposed) {
        std::fprintf(stderr, "leader: deposed at epoch %llu\n",
                     static_cast<unsigned long long>(rep.update_epoch));
        return 4;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    if (shipper.acked_epoch(id) < rep.update_epoch) {
      std::fprintf(stderr, "leader: follower never acked epoch %llu\n",
                   static_cast<unsigned long long>(rep.update_epoch));
      return 5;
    }
    std::printf("ACK %llu\n",
                static_cast<unsigned long long>(rep.update_epoch));
    std::fflush(stdout);
    if (interval_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }
  link->close();
  return 0;
}

int run_follower(const std::string& socket_path, const std::string& dir,
                 PartId k) {
  auto link = SocketTransport::listen_unix(socket_path);

  ServiceConfig sc;
  sc.num_threads = 2;
  sc.background_refinement = false;
  sc.durability.dir = dir;
  sc.durability.compaction.damage_threshold = 0;  // lockstep with the leader
  sc.durability.compaction.bytes_threshold = 0;

  PartitionService service(sc);
  FollowerConfig fcfg;
  fcfg.base = replica_session_config(k);
  ReplicationFollower follower(service, *link, fcfg);
  const auto resumed = follower.start_follower();
  std::printf("FOLLOWING resumed_sessions=%zu\n", resumed.size());
  std::fflush(stdout);

  try {
    // Tail until the leader goes away (orderly close or kill -9 both end in
    // EOF), then keep pumping until the drained queue is empty.
    while (!link->peer_closed()) follower.pump(0.2);
    while (follower.pump(0.0) > 0) {
    }
    const PromotionReport report = follower.promote();
    for (const PromotedSession& s : report.sessions) {
      std::printf(
          "PROMOTED session=%llu epoch=%llu digest=%llu generation=%llu\n",
          static_cast<unsigned long long>(s.id),
          static_cast<unsigned long long>(s.epoch),
          static_cast<unsigned long long>(s.digest),
          static_cast<unsigned long long>(report.generation));
    }
    std::fflush(stdout);
  } catch (const ReplicationDivergedError& e) {
    std::fprintf(stderr, "DIVERGED: %s\n", e.what());
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool lead = args.flag("lead");
  const bool follow = args.flag("follow");
  const bool reference = args.flag("reference");
  const std::string socket_path = args.str("socket", "");
  const std::string dir = args.str("dir", "");
  const int updates = args.integer("updates", 1000);
  const int interval_ms = args.integer("interval-ms", 2);
  const auto n = static_cast<VertexId>(args.integer("n", 12));
  const auto k = static_cast<PartId>(args.integer("k", 3));

  if (static_cast<int>(lead) + static_cast<int>(follow) +
          static_cast<int>(reference) != 1 ||
      (!reference && (socket_path.empty() || dir.empty()))) {
    std::fprintf(stderr,
                 "usage: %s --lead|--follow --socket=<path> --dir=<wal_dir>\n"
                 "       %s --reference [--updates=N] [--n=12] [--k=3]\n",
                 args.program().c_str(), args.program().c_str());
    return 2;
  }

  try {
    if (reference) return run_reference(updates, n, k);
    if (lead) return run_leader(socket_path, dir, updates, interval_ms, n, k);
    return run_follower(socket_path, dir, k);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
