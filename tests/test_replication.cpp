// Replication end-to-end over the loopback transport: bit-identical
// convergence, lockstep compaction with digest exchange, resume after link
// partitions, slow-follower backpressure and snapshot resync, the seeded
// transport fault matrix ("converges or fail-stops, never silently
// diverges"), fencing/split-brain prevention, divergence fail-stop, follower
// restart, and the kill-point-fuzzed failover sweep against a never-crashed
// reference.  Companions: test_transport.cpp (the seam itself),
// test_durability.cpp (single-node recovery).
#include "service/replication.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/assert.hpp"
#include "common/fault_injection.hpp"
#include "core/graph_delta.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "service/transport.hpp"

namespace gapart {
namespace {

namespace fs = std::filesystem;
using bench::column_bands;

std::string fresh_dir(const std::string& name) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/gapart_rep_" + name;
  fs::remove_all(dir);
  return dir;
}

std::shared_ptr<const Graph> shared_grid(VertexId rows, VertexId cols) {
  return std::make_shared<const Graph>(make_grid(rows, cols));
}

/// Deterministic-replay session knobs (see test_durability.cpp): a huge
/// budget makes the admitted verification rounds a pure function of the
/// delta stream, so leader, follower, and reference replays are bit-equal.
SessionConfig session_config(PartId k) {
  SessionConfig cfg;
  cfg.num_parts = k;
  cfg.repair_budget_seconds = 60.0;
  return cfg;
}

ServiceConfig leader_config(const std::string& dir) {
  ServiceConfig sc;
  sc.num_threads = 2;
  sc.background_refinement = false;  // determinism: deltas only
  sc.durability.dir = dir;
  sc.durability.ship_retain_bytes = 0;  // wait for the shipper by default
  return sc;
}

ServiceConfig follower_config(const std::string& dir) {
  ServiceConfig sc = leader_config(dir);
  // The follower compacts in lockstep with the leader, never by local
  // policy: zero thresholds disable decide_compaction entirely.
  sc.durability.compaction.damage_threshold = 0;
  sc.durability.compaction.bytes_threshold = 0;
  // Fast retries so the fault-storm tests ride out injected I/O failures
  // without slowing the clean tests down.
  sc.durability.io_retry.max_attempts = 12;
  sc.durability.io_retry.initial_seconds = 1e-6;
  sc.durability.io_retry.max_seconds = 1e-5;
  return sc;
}

/// One full replication rig over a loopback link.
struct Rig {
  std::unique_ptr<LoopbackTransport> leader_end;
  std::unique_ptr<LoopbackTransport> follower_end;
  std::unique_ptr<PartitionService> leader;
  std::unique_ptr<PartitionService> follower_service;
  std::unique_ptr<ReplicationShipper> shipper;
  std::unique_ptr<ReplicationFollower> follower;

  Rig(const std::string& name, ShipperConfig ship = {},
      ServiceConfig (*leader_cfg)(const std::string&) = leader_config) {
    auto pair = LoopbackTransport::create_pair();
    leader_end = std::move(pair.first);
    follower_end = std::move(pair.second);
    leader = std::make_unique<PartitionService>(
        leader_cfg(fresh_dir(name + "_leader")));
    follower_service = std::make_unique<PartitionService>(
        follower_config(fresh_dir(name + "_follower")));
    shipper =
        std::make_unique<ReplicationShipper>(*leader, *leader_end, ship);
    FollowerConfig fcfg;
    fcfg.base = session_config(3);
    follower = std::make_unique<ReplicationFollower>(*follower_service,
                                                     *follower_end, fcfg);
    follower->start_follower();
  }

  /// Pumps both ends until the shipper reports drained (or `rounds` runs
  /// out — callers assert on drained()).
  void settle(int rounds = 200) {
    for (int i = 0; i < rounds; ++i) {
      shipper->pump();
      follower->pump();
      if (shipper->drained()) break;
    }
  }
};

void expect_converged(Rig& rig, SessionId id) {
  ASSERT_TRUE(rig.shipper->drained());
  const auto leader_session = rig.leader->session_handle(id);
  const auto follower_session = rig.follower_service->session_handle(id);
  const auto lsnap = leader_session->snapshot();
  const auto fsnap = follower_session->snapshot();
  EXPECT_EQ(fsnap->update_epoch, lsnap->update_epoch);
  EXPECT_EQ(fsnap->assignment, lsnap->assignment);
  EXPECT_EQ(follower_session->state_digest(), leader_session->state_digest());
  EXPECT_EQ(rig.follower->applied_epoch(id), lsnap->update_epoch);
}

// ---------------------------------------------------------------------------

TEST(Replication, FollowerConvergesBitIdentically) {
  const PartId k = 3;
  Rig rig("converge");
  auto prev = shared_grid(12, 12);
  const SessionId id = rig.leader->open_session(
      prev, column_bands(12, 12, k), session_config(k));
  rig.shipper->pump();  // attach at epoch 0, before the first update
  for (VertexId rows = 13; rows <= 18; ++rows) {
    auto next = shared_grid(rows, 12);
    rig.leader->submit_update(id, next, diff_graphs(*prev, *next));
    prev = next;
    rig.shipper->pump();
    rig.follower->pump();
  }
  rig.settle();
  expect_converged(rig, id);

  const ShipperStats ss = rig.shipper->stats();
  EXPECT_EQ(ss.opens_shipped, 1u);
  EXPECT_EQ(ss.records_shipped, 6u);
  EXPECT_FALSE(ss.deposed);
  const FollowerStats fs_ = rig.follower->stats();
  EXPECT_EQ(fs_.opens_applied, 1u);
  EXPECT_EQ(fs_.records_applied, 6u);
  EXPECT_GE(fs_.digests_verified, 1u);  // the open's digest checked
  EXPECT_FALSE(fs_.diverged);

  // The follower logged everything to its OWN wal: a restarted follower
  // replays to the same state (checked end-to-end in FollowerRestart).
  EXPECT_TRUE(rig.follower_service->session_stats(id).durable);
  EXPECT_EQ(rig.follower_service->session_stats(id).wal.appends, 6u);
}

TEST(Replication, MultiSessionShippingKeepsSessionsIndependent) {
  const PartId k = 3;
  Rig rig("multi");
  auto prev_a = shared_grid(12, 12);
  auto prev_b = shared_grid(10, 10);
  const SessionId a = rig.leader->open_session(
      prev_a, column_bands(12, 12, k), session_config(k));
  const SessionId b = rig.leader->open_session(
      prev_b, column_bands(10, 10, k), session_config(k));
  for (VertexId step = 1; step <= 4; ++step) {
    auto next_a = shared_grid(12 + step, 12);
    rig.leader->submit_update(a, next_a, diff_graphs(*prev_a, *next_a));
    prev_a = next_a;
    if (step % 2 == 0) {
      auto next_b = shared_grid(10 + step / 2, 10);
      rig.leader->submit_update(b, next_b, diff_graphs(*prev_b, *next_b));
      prev_b = next_b;
    }
    rig.shipper->pump();
    rig.follower->pump();
  }
  rig.settle();
  expect_converged(rig, a);
  expect_converged(rig, b);
  EXPECT_EQ(rig.shipper->stats().sessions_attached, 2);
}

TEST(Replication, LockstepCompactionVerifiesDigests) {
  const PartId k = 3;
  ShipperConfig ship;
  Rig rig("compact", ship, [](const std::string& dir) {
    ServiceConfig sc = leader_config(dir);
    sc.durability.compaction.damage_threshold = 1;  // every delta is damage
    sc.durability.compaction.min_records = 2;       // ... compact every 2
    return sc;
  });
  auto prev = shared_grid(12, 12);
  const SessionId id = rig.leader->open_session(
      prev, column_bands(12, 12, k), session_config(k));
  for (VertexId rows = 13; rows <= 20; ++rows) {
    auto next = shared_grid(rows, 12);
    rig.leader->submit_update(id, next, diff_graphs(*prev, *next));
    prev = next;
    // Pump INSIDE the stream: ship_retain_bytes=0 defers leader compaction
    // until the shipper consumed the log, so compactions land mid-stream.
    rig.shipper->pump();
    rig.follower->pump();
    rig.shipper->pump();
  }
  rig.settle();
  expect_converged(rig, id);

  // The leader compacted, the compaction was shipped, the follower verified
  // the digest and folded its own log in lockstep.
  EXPECT_GE(rig.leader->session_stats(id).wal.compactions, 2u);
  EXPECT_GE(rig.shipper->stats().compacts_shipped, 2u);
  const FollowerStats fs_ = rig.follower->stats();
  EXPECT_GE(fs_.compacts_applied, 2u);
  EXPECT_GE(fs_.digests_verified, fs_.compacts_applied);
  EXPECT_FALSE(fs_.diverged);
  EXPECT_GE(rig.follower_service->session_stats(id).wal.compactions, 1u);
  // Both snapshots agree on the digest at the last common boundary.
  EXPECT_EQ(rig.follower_service->session_stats(id).wal.snapshot_epoch,
            rig.leader->session_stats(id).wal.snapshot_epoch);
  EXPECT_EQ(rig.follower_service->session_stats(id).wal.snapshot_digest,
            rig.leader->session_stats(id).wal.snapshot_digest);
}

TEST(Replication, ResumesAfterLinkPartition) {
  const PartId k = 3;
  ShipperConfig ship;
  ship.resume_after_stalled_pumps = 2;
  Rig rig("partition", ship);
  auto prev = shared_grid(12, 12);
  const SessionId id = rig.leader->open_session(
      prev, column_bands(12, 12, k), session_config(k));
  rig.settle();

  // Partition the link, stream through it: every send fails.
  rig.leader_end->set_link_down(true);
  for (VertexId rows = 13; rows <= 16; ++rows) {
    auto next = shared_grid(rows, 12);
    rig.leader->submit_update(id, next, diff_graphs(*prev, *next));
    prev = next;
    rig.shipper->pump();
  }
  EXPECT_GT(rig.shipper->stats().send_failures, 0u);
  EXPECT_GT(rig.shipper->stats().frames_unacked, 0u);
  EXPECT_EQ(rig.follower->applied_epoch(id), 0u);

  // Heal: the shipper resumes from the acked offset and converges.
  rig.leader_end->set_link_down(false);
  rig.settle();
  expect_converged(rig, id);
}

TEST(Replication, SlowFollowerHitsBackpressureThenCatchesUp) {
  const PartId k = 3;
  ShipperConfig ship;
  ship.max_unacked_frames = 2;  // tiny ship queue
  Rig rig("slow", ship);
  auto prev = shared_grid(12, 12);
  const SessionId id = rig.leader->open_session(
      prev, column_bands(12, 12, k), session_config(k));
  // Stream without ever letting the follower run: the queue fills, the
  // shipper stalls at the bound instead of buffering unboundedly.
  for (VertexId rows = 13; rows <= 20; ++rows) {
    auto next = shared_grid(rows, 12);
    rig.leader->submit_update(id, next, diff_graphs(*prev, *next));
    prev = next;
    rig.shipper->pump();
  }
  const ShipperStats mid = rig.shipper->stats();
  EXPECT_GT(mid.backpressure_stalls, 0u);
  EXPECT_LE(mid.frames_unacked, 2u);
  EXPECT_GT(mid.lag_epochs_p99, 0.0);

  rig.settle();
  expect_converged(rig, id);
}

TEST(Replication, SnapshotResyncWhenCompactionOutranTheShipper) {
  const PartId k = 3;
  Rig rig("resync", {}, [](const std::string& dir) {
    ServiceConfig sc = leader_config(dir);
    sc.durability.compaction.damage_threshold = 1;
    sc.durability.compaction.min_records = 2;
    sc.durability.ship_retain_bytes = 1;  // give up on the shipper instantly
    return sc;
  });
  auto prev = shared_grid(12, 12);
  const SessionId id = rig.leader->open_session(
      prev, column_bands(12, 12, k), session_config(k));
  rig.settle();
  // Stream WITHOUT pumping: the leader compacts past the shipper's read
  // position (retain bound = 1 byte), so the records it never read are gone
  // from the log.
  for (VertexId rows = 13; rows <= 20; ++rows) {
    auto next = shared_grid(rows, 12);
    rig.leader->submit_update(id, next, diff_graphs(*prev, *next));
    prev = next;
  }
  EXPECT_GE(rig.leader->session_stats(id).wal.compactions, 1u);
  rig.settle();
  // The shipper re-bootstrapped the follower from the live state instead of
  // silently skipping the folded records.
  EXPECT_GE(rig.shipper->stats().snapshot_resyncs, 1u);
  expect_converged(rig, id);
}

TEST(Replication, TransportFaultMatrixNeverSilentlyDiverges) {
  const PartId k = 3;
  // Multiple seeded 10% fault schedules over every site (drop, dup,
  // reorder, truncate, send failure, plus the WAL/alloc sites).  Contract:
  // the follower converges bit-identically or fail-stops with a typed
  // error — it never silently diverges.
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    ShipperConfig ship;
    ship.resume_after_stalled_pumps = 2;
    Rig rig("faults" + std::to_string(seed), ship,
            [](const std::string& dir) {
              ServiceConfig sc = leader_config(dir);
              sc.durability.io_retry.max_attempts = 12;
              sc.durability.io_retry.initial_seconds = 1e-6;
              sc.durability.io_retry.max_seconds = 1e-5;
              return sc;
            });
    auto prev = shared_grid(12, 12);
    const SessionId id = rig.leader->open_session(
        prev, column_bands(12, 12, k), session_config(k));
    {
      ScopedFaultInjection scope(seed, 0.10);
      for (VertexId rows = 13; rows <= 20; ++rows) {
        auto next = shared_grid(rows, 12);
        const GraphDelta delta = diff_graphs(*prev, *next);
        for (;;) {
          try {
            rig.leader->submit_update(id, next, delta);
            break;
          } catch (const std::bad_alloc&) {
            // injected pre-mutation: resubmit, exactly like a real client
          }
        }
        prev = next;
        try {
          rig.shipper->pump();
          rig.follower->pump();
        } catch (const ReplicationDivergedError& e) {
          FAIL() << "seed " << seed << " diverged: " << e.what();
        }
      }
      EXPECT_GT(FaultInjector::instance().total_injected(), 0u);
    }  // disarm, then settle cleanly
    rig.settle(500);
    expect_converged(rig, id);
    EXPECT_FALSE(rig.follower->stats().diverged);
  }
}

TEST(Replication, PromotionFencesTheDeposedLeader) {
  const PartId k = 3;
  Rig rig("fence");
  auto prev = shared_grid(12, 12);
  const SessionId id = rig.leader->open_session(
      prev, column_bands(12, 12, k), session_config(k));
  for (VertexId rows = 13; rows <= 15; ++rows) {
    auto next = shared_grid(rows, 12);
    rig.leader->submit_update(id, next, diff_graphs(*prev, *next));
    prev = next;
  }
  rig.settle();
  expect_converged(rig, id);

  // Failover: promote the follower.  Generation bumps past the leader's.
  const PromotionReport report = rig.follower->promote();
  EXPECT_EQ(report.generation, 2u);
  ASSERT_EQ(report.sessions.size(), 1u);
  EXPECT_EQ(report.sessions[0].epoch, 3u);
  EXPECT_EQ(report.sessions[0].digest,
            rig.leader->session_handle(id)->state_digest());
  EXPECT_GE(report.seconds, 0.0);
  // The fence is durable: the follower dir's GENERATION outlives it.
  EXPECT_EQ(read_generation_file(
                rig.follower_service->config().durability.dir),
            2u);

  // Split brain: the deposed leader keeps writing and shipping.  Every one
  // of its post-fencing frames must be rejected.
  const std::uint64_t epoch_before = rig.follower->applied_epoch(id);
  const std::uint64_t digest_before =
      rig.follower_service->session_handle(id)->state_digest();
  auto next = shared_grid(16, 12);
  rig.leader->submit_update(id, next, diff_graphs(*prev, *next));
  rig.shipper->pump();
  rig.follower->pump();
  const FollowerStats fs_ = rig.follower->stats();
  EXPECT_GT(fs_.fenced_rejected, 0u);
  EXPECT_EQ(rig.follower->applied_epoch(id), epoch_before);
  EXPECT_EQ(rig.follower_service->session_handle(id)->state_digest(),
            digest_before);

  // ... and the deposed leader learns of its demotion from the fence ack.
  rig.shipper->pump();
  EXPECT_TRUE(rig.shipper->stats().deposed);

  // A deposed leader cannot come back with a stale term: the GENERATION
  // file fences its own directory too.
  write_generation_file(rig.leader->config().durability.dir, 9);
  ShipperConfig stale;
  stale.generation = 3;
  EXPECT_THROW(
      ReplicationShipper(*rig.leader, *rig.leader_end, stale),
      ReplicationError);
}

TEST(Replication, DivergenceFailStopsWithTypedError) {
  const PartId k = 3;
  Rig rig("diverge", {}, [](const std::string& dir) {
    ServiceConfig sc = leader_config(dir);
    sc.durability.compaction.damage_threshold = 1;
    sc.durability.compaction.min_records = 1;  // compact at every boundary
    return sc;
  });
  auto prev = shared_grid(12, 12);
  const SessionId id = rig.leader->open_session(
      prev, column_bands(12, 12, k), session_config(k));
  auto g13 = shared_grid(13, 12);
  rig.leader->submit_update(id, g13, diff_graphs(*prev, *g13));
  prev = g13;
  rig.settle();
  expect_converged(rig, id);

  // Tamper with the replica: relabel parts 0 and 1 wholesale.  The cut and
  // the balance are unchanged, so the deterministic repair pass will never
  // heal it back — only the content digest can tell the states apart.
  Assignment tampered =
      rig.follower_service->session_handle(id)->snapshot()->assignment;
  for (PartId& part : tampered) {
    if (part == 0) {
      part = 1;
    } else if (part == 1) {
      part = 0;
    }
  }
  rig.follower_service->session_handle(id)->force_assignment(tampered,
                                                             "tamper");

  // The next snapshot boundary exchanges digests and must fail-stop.
  auto g14 = shared_grid(14, 12);
  rig.leader->submit_update(id, g14, diff_graphs(*prev, *g14));
  rig.shipper->pump();
  EXPECT_THROW(
      {
        for (int i = 0; i < 50; ++i) {
          rig.shipper->pump();
          rig.follower->pump();
        }
      },
      ReplicationDivergedError);
  EXPECT_TRUE(rig.follower->stats().diverged);
  // A diverged replica must never be promoted.
  EXPECT_THROW(rig.follower->promote(), Error);
}

TEST(Replication, FollowerRestartResumesFromItsOwnDisk) {
  const PartId k = 3;
  const std::string follower_dir = fresh_dir("restart_follower");
  Rig rig("restart");
  // Rebuild the rig's follower on a dir we control.
  rig.follower.reset();
  rig.follower_service =
      std::make_unique<PartitionService>(follower_config(follower_dir));
  FollowerConfig fcfg;
  fcfg.base = session_config(k);
  rig.follower = std::make_unique<ReplicationFollower>(
      *rig.follower_service, *rig.follower_end, fcfg);
  rig.follower->start_follower();

  auto prev = shared_grid(12, 12);
  const SessionId id = rig.leader->open_session(
      prev, column_bands(12, 12, k), session_config(k));
  for (VertexId rows = 13; rows <= 15; ++rows) {
    auto next = shared_grid(rows, 12);
    rig.leader->submit_update(id, next, diff_graphs(*prev, *next));
    prev = next;
  }
  rig.settle();
  expect_converged(rig, id);

  // "Crash" the follower (no orderly close) and restart it on its own dir:
  // start_follower replays its local WAL back to the applied state.
  rig.follower.reset();
  rig.follower_service.reset();
  rig.follower_service =
      std::make_unique<PartitionService>(follower_config(follower_dir));
  rig.follower = std::make_unique<ReplicationFollower>(
      *rig.follower_service, *rig.follower_end, fcfg);
  const auto reports = rig.follower->start_follower();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].final_epoch, 3u);
  EXPECT_EQ(rig.follower->applied_epoch(id), 3u);

  // The stream continues; the leader notices the follower's position (its
  // acks) moved backwards in seq and re-bootstraps, then converges.
  for (VertexId rows = 16; rows <= 18; ++rows) {
    auto next = shared_grid(rows, 12);
    rig.leader->submit_update(id, next, diff_graphs(*prev, *next));
    prev = next;
  }
  rig.settle(500);
  expect_converged(rig, id);
}

// ---------------------------------------------------------------------------
// The acceptance sweep: kill the leader at EVERY point of a faulted trace,
// promote the follower, and require (a) zero acked deltas lost and (b) the
// promoted state bit-equal to a never-crashed reference at that epoch.

TEST(Replication, KillPointFuzzedFailoverLosesNoAckedDelta) {
  const PartId k = 3;
  const VertexId first_rows = 13, last_rows = 20;

  // Never-crashed reference: one plain session absorbing the same trace,
  // digest recorded at every epoch.
  std::vector<std::uint64_t> reference_digest(1, 0);  // [0] = epoch 0
  {
    auto prev = shared_grid(12, 12);
    PartitionSession session(prev, column_bands(12, 12, k),
                             session_config(k));
    reference_digest[0] = session.state_digest();
    for (VertexId rows = first_rows; rows <= last_rows; ++rows) {
      auto next = shared_grid(rows, 12);
      session.apply_update(next, diff_graphs(*prev, *next));
      prev = next;
      reference_digest.push_back(session.state_digest());
    }
  }

  const int trace_len = static_cast<int>(last_rows - first_rows + 1);
  for (int kill_point = 1; kill_point <= trace_len; ++kill_point) {
    ShipperConfig ship;
    ship.resume_after_stalled_pumps = 2;
    Rig rig("kill" + std::to_string(kill_point), ship,
            [](const std::string& dir) {
              ServiceConfig sc = leader_config(dir);
              sc.durability.io_retry.max_attempts = 12;
              sc.durability.io_retry.initial_seconds = 1e-6;
              sc.durability.io_retry.max_seconds = 1e-5;
              return sc;
            });
    auto prev = shared_grid(12, 12);
    const SessionId id = rig.leader->open_session(
        prev, column_bands(12, 12, k), session_config(k));

    // Stream with 10% faults on every transport and I/O site, tracking the
    // highest epoch the FOLLOWER acknowledged — the replicated system's
    // acks, the only ones failover promises to keep.
    std::uint64_t follower_acked_epoch = 0;
    {
      ScopedFaultInjection scope(2026u + static_cast<std::uint64_t>(kill_point),
                                 0.10);
      for (int step = 1; step <= kill_point; ++step) {
        auto next =
            shared_grid(first_rows + static_cast<VertexId>(step) - 1, 12);
        const GraphDelta delta = diff_graphs(*prev, *next);
        for (;;) {
          try {
            rig.leader->submit_update(id, next, delta);
            break;
          } catch (const std::bad_alloc&) {
          }
        }
        prev = next;
        for (int pump = 0; pump < 3; ++pump) {
          rig.shipper->pump();
          rig.follower->pump();
        }
        follower_acked_epoch = rig.shipper->acked_epoch(id);
      }
    }

    // kill -9 the leader: shipper and leader service vanish mid-stream;
    // whatever frames were in flight stay on the link.
    rig.shipper.reset();
    rig.leader.reset();

    const PromotionReport report = rig.follower->promote();
    if (report.sessions.empty()) {
      // The storm kept even the session open from landing before the kill.
      // That is a legal outcome only if nothing was ever acknowledged.
      EXPECT_EQ(follower_acked_epoch, 0u) << "kill point " << kill_point;
      continue;
    }
    ASSERT_EQ(report.sessions.size(), 1u);
    const PromotedSession& promoted = report.sessions[0];

    // (a) Zero acked deltas lost: promotion never lands below the last
    // follower-acked epoch.
    EXPECT_GE(promoted.epoch, follower_acked_epoch)
        << "kill point " << kill_point;
    // (b) Bit-identical to the never-crashed reference at that epoch.
    ASSERT_LT(promoted.epoch, reference_digest.size());
    EXPECT_EQ(promoted.digest, reference_digest[promoted.epoch])
        << "kill point " << kill_point << " promoted at epoch "
        << promoted.epoch;
    EXPECT_FALSE(rig.follower->stats().diverged);

    // The promoted service accepts writes — it is the leader now.
    auto next = shared_grid(21, 12);
    auto promoted_prev = rig.follower_service->snapshot(id)->graph;
    const GraphDelta delta = diff_graphs(*promoted_prev, *next);
    const RepairReport rep =
        rig.follower_service->submit_update(id, next, delta);
    EXPECT_EQ(rep.update_epoch, promoted.epoch + 1);
  }
}

}  // namespace
}  // namespace gapart
