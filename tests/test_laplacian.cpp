#include "spectral/laplacian.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace gapart {
namespace {

TEST(Laplacian, ConstantVectorInKernel) {
  const Graph g = make_grid(4, 4);
  std::vector<double> x(16, 1.0);
  std::vector<double> y(16);
  apply_laplacian(g, x, y);
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-14);
}

TEST(Laplacian, MatchesDenseMatrix) {
  Rng rng(3);
  const Graph g = make_random_graph(20, 0.3, rng);
  const auto L = dense_laplacian(g);
  std::vector<double> x(20);
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> y_fast(20);
  apply_laplacian(g, x, y_fast);
  for (std::size_t i = 0; i < 20; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < 20; ++j) acc += L[i * 20 + j] * x[j];
    EXPECT_NEAR(y_fast[i], acc, 1e-12);
  }
}

TEST(Laplacian, DenseMatrixStructure) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 2.0);
  b.add_edge(1, 2, 3.0);
  const auto L = dense_laplacian(b.build());
  // Row 1: degree 5, off-diagonals -2 and -3.
  EXPECT_DOUBLE_EQ(L[1 * 3 + 1], 5.0);
  EXPECT_DOUBLE_EQ(L[1 * 3 + 0], -2.0);
  EXPECT_DOUBLE_EQ(L[1 * 3 + 2], -3.0);
  EXPECT_DOUBLE_EQ(L[0 * 3 + 2], 0.0);
  // Symmetry and zero row sums.
  for (int i = 0; i < 3; ++i) {
    double row = 0.0;
    for (int j = 0; j < 3; ++j) {
      row += L[static_cast<std::size_t>(i * 3 + j)];
      EXPECT_DOUBLE_EQ(L[static_cast<std::size_t>(i * 3 + j)],
                       L[static_cast<std::size_t>(j * 3 + i)]);
    }
    EXPECT_NEAR(row, 0.0, 1e-14);
  }
}

TEST(Laplacian, QuadraticFormEqualsCutEnergy) {
  // x^T L x = sum over edges w_uv (x_u - x_v)^2.
  Rng rng(7);
  const Graph g = make_grid(5, 5);
  std::vector<double> x(25);
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> y(25);
  apply_laplacian(g, x, y);
  const double quad = dot(x, y);
  double energy = 0.0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto wgts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] > u) {
        const double d = x[static_cast<std::size_t>(u)] -
                         x[static_cast<std::size_t>(nbrs[i])];
        energy += wgts[i] * d * d;
      }
    }
  }
  EXPECT_NEAR(quad, energy, 1e-10);
  EXPECT_GE(quad, -1e-12);  // PSD
}

TEST(Laplacian, CutIndicatorQuadraticFormIsCutSize) {
  // For x in {0,1}^n marking a side, x^T L x = cut edges.
  const Graph g = make_grid(4, 4);
  std::vector<double> x(16, 0.0);
  for (int i = 0; i < 8; ++i) x[static_cast<std::size_t>(i)] = 1.0;  // rows 0-1
  std::vector<double> y(16);
  apply_laplacian(g, x, y);
  EXPECT_NEAR(dot(x, y), 4.0, 1e-12);  // 4 vertical edges cut
}

TEST(RayleighQuotient, BoundsOnPath) {
  const Graph g = make_path(10);
  std::vector<double> x(10);
  for (std::size_t i = 0; i < 10; ++i) x[i] = static_cast<double>(i) - 4.5;
  const double rq = rayleigh_quotient(g, x);
  EXPECT_GT(rq, 0.0);
  EXPECT_LT(rq, 4.0);  // max Laplacian eigenvalue of a path < 4
}

TEST(RayleighQuotient, ZeroVectorRejected) {
  const Graph g = make_path(4);
  std::vector<double> x(4, 0.0);
  EXPECT_THROW(rayleigh_quotient(g, x), Error);
}

TEST(DeflateConstant, RemovesMean) {
  std::vector<double> x = {1.0, 2.0, 3.0, 6.0};
  deflate_constant(x);
  EXPECT_NEAR(x[0] + x[1] + x[2] + x[3], 0.0, 1e-14);
  EXPECT_DOUBLE_EQ(x[0], -2.0);
}

TEST(VectorOps, DotNormAxpyScale) {
  std::vector<double> a = {3.0, 4.0};
  std::vector<double> b = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  axpy(2.0, b, a);  // a += 2b
  EXPECT_DOUBLE_EQ(a[0], 5.0);
  EXPECT_DOUBLE_EQ(a[1], 8.0);
  scale(0.5, a);
  EXPECT_DOUBLE_EQ(a[0], 2.5);
}

}  // namespace
}  // namespace gapart
