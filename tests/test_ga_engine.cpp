#include "core/ga_engine.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/init.hpp"
#include "core/presets.hpp"
#include "graph/generators.hpp"
#include "graph/mesh.hpp"
#include "test_util.hpp"

namespace gapart {
namespace {

GaConfig small_config(PartId k, CrossoverOp op, int gens) {
  GaConfig cfg;
  cfg.num_parts = k;
  cfg.population_size = 40;
  cfg.crossover = op;
  cfg.max_generations = gens;
  return cfg;
}

TEST(GaEngine, FindsOptimalBisectionOfTwoCliques) {
  const Graph g = make_two_cliques(8);
  Rng rng(3);
  const auto cfg = small_config(2, CrossoverOp::kDknux, 120);
  auto init = make_random_population(g.num_vertices(), 2, cfg.population_size,
                                     rng);
  const auto res = run_ga(g, cfg, std::move(init), rng.split());
  EXPECT_DOUBLE_EQ(res.best_metrics.total_cut(), 1.0);
  EXPECT_DOUBLE_EQ(res.best_metrics.imbalance_sq, 0.0);
}

TEST(GaEngine, FindsOptimalFourWayCliqueChain) {
  const Graph g = make_clique_chain(4, 5);
  Rng rng(5);
  auto cfg = small_config(4, CrossoverOp::kDknux, 300);
  cfg.population_size = 80;
  auto init = make_random_population(g.num_vertices(), 4, cfg.population_size,
                                     rng);
  const auto res = run_ga(g, cfg, std::move(init), rng.split());
  // Optimal: cut exactly the 3 joints.
  EXPECT_LE(res.best_metrics.total_cut(), 4.0);
  EXPECT_LE(res.best_metrics.imbalance_sq, 2.0);
}

TEST(GaEngine, DeterministicForSameSeed) {
  const Graph g = make_grid(6, 6);
  const auto cfg = small_config(4, CrossoverOp::kDknux, 30);
  Rng ra(7);
  Rng rb(7);
  auto ia = make_random_population(36, 4, cfg.population_size, ra);
  auto ib = make_random_population(36, 4, cfg.population_size, rb);
  const auto res_a = run_ga(g, cfg, std::move(ia), Rng(99));
  const auto res_b = run_ga(g, cfg, std::move(ib), Rng(99));
  EXPECT_EQ(res_a.best, res_b.best);
  EXPECT_DOUBLE_EQ(res_a.best_fitness, res_b.best_fitness);
  EXPECT_EQ(res_a.evaluations, res_b.evaluations);
}

TEST(GaEngine, BestFitnessMonotoneOverGenerations) {
  const Mesh mesh = paper_mesh(78);
  Rng rng(9);
  const auto cfg = small_config(4, CrossoverOp::kDknux, 60);
  auto init = make_random_population(mesh.graph.num_vertices(), 4,
                                     cfg.population_size, rng);
  const auto res = run_ga(mesh.graph, cfg, std::move(init), rng.split());
  for (std::size_t i = 1; i < res.history.size(); ++i) {
    EXPECT_GE(res.history[i].best_fitness, res.history[i - 1].best_fitness);
  }
}

TEST(GaEngine, ElitismPreservesBestAcrossSteps) {
  const Mesh mesh = paper_mesh(88);
  Rng rng(11);
  auto cfg = small_config(4, CrossoverOp::kTwoPoint, 0);
  cfg.elite_count = 2;
  auto init = make_random_population(mesh.graph.num_vertices(), 4,
                                     cfg.population_size, rng);
  GaEngine engine(mesh.graph, cfg, std::move(init), rng.split());
  for (int s = 0; s < 20; ++s) {
    const double best_before = engine.best().fitness;
    engine.step();
    // With elitism the best individual in the *population* can never drop
    // below the previous best.
    double pop_best = engine.population().front().fitness;
    for (const auto& ind : engine.population()) {
      pop_best = std::max(pop_best, ind.fitness);
    }
    EXPECT_GE(pop_best, best_before);
  }
}

TEST(GaEngine, StallDetectionStopsRun) {
  const Graph g = make_two_cliques(5);
  Rng rng(13);
  auto cfg = small_config(2, CrossoverOp::kDknux, 100000);
  cfg.stall_generations = 15;
  auto init = make_random_population(g.num_vertices(), 2, cfg.population_size,
                                     rng);
  const auto res = run_ga(g, cfg, std::move(init), rng.split());
  EXPECT_TRUE(res.stalled);
  EXPECT_LT(res.generations, 2000);  // stopped long before the cap
}

TEST(GaEngine, DknuxReferenceTracksBest) {
  const Mesh mesh = paper_mesh(78);
  Rng rng(17);
  const auto cfg = small_config(2, CrossoverOp::kDknux, 0);
  auto init = make_random_population(mesh.graph.num_vertices(), 2,
                                     cfg.population_size, rng);
  GaEngine engine(mesh.graph, cfg, std::move(init), rng.split());
  for (int s = 0; s < 10; ++s) {
    engine.step();
    EXPECT_EQ(engine.knux_reference(), engine.best().genes)
        << "generation " << s;
  }
}

TEST(GaEngine, StaticKnuxReferenceStaysFixed) {
  const Mesh mesh = paper_mesh(78);
  Rng rng(19);
  const auto cfg = small_config(2, CrossoverOp::kKnux, 0);
  auto init = make_random_population(mesh.graph.num_vertices(), 2,
                                     cfg.population_size, rng);
  GaEngine engine(mesh.graph, cfg, std::move(init), rng.split());
  const Assignment ref0 = engine.knux_reference();
  for (int s = 0; s < 10; ++s) engine.step();
  EXPECT_EQ(engine.knux_reference(), ref0);
}

TEST(GaEngine, ConfiguredKnuxReferenceUsed) {
  const Mesh mesh = paper_mesh(78);
  Rng rng(20);
  auto cfg = small_config(2, CrossoverOp::kKnux, 0);
  const auto heuristic = random_balanced_assignment(78, 2, rng);
  cfg.knux_reference = heuristic;
  auto init = make_random_population(mesh.graph.num_vertices(), 2,
                                     cfg.population_size, rng);
  GaEngine engine(mesh.graph, cfg, std::move(init), rng.split());
  EXPECT_EQ(engine.knux_reference(), heuristic);
  for (int s = 0; s < 5; ++s) engine.step();
  EXPECT_EQ(engine.knux_reference(), heuristic);  // static KNUX stays put

  // Invalid configured reference is rejected at construction.
  cfg.knux_reference = Assignment(78, 9);
  auto init2 = make_random_population(mesh.graph.num_vertices(), 2,
                                      cfg.population_size, rng);
  EXPECT_THROW(GaEngine(mesh.graph, cfg, std::move(init2), rng.split()),
               Error);
}

TEST(GaEngine, SetKnuxReferenceOverrides) {
  const Mesh mesh = paper_mesh(78);
  Rng rng(21);
  const auto cfg = small_config(2, CrossoverOp::kKnux, 0);
  auto init = make_random_population(mesh.graph.num_vertices(), 2,
                                     cfg.population_size, rng);
  GaEngine engine(mesh.graph, cfg, std::move(init), rng.split());
  const auto ref = random_balanced_assignment(78, 2, rng);
  engine.set_knux_reference(ref);
  EXPECT_EQ(engine.knux_reference(), ref);
  Assignment bad(78, 5);
  EXPECT_THROW(engine.set_knux_reference(bad), Error);
}

TEST(GaEngine, InjectReplacesWorst) {
  const Mesh mesh = paper_mesh(78);
  Rng rng(23);
  const auto cfg = small_config(4, CrossoverOp::kDknux, 0);
  auto init = make_random_population(mesh.graph.num_vertices(), 4,
                                     cfg.population_size, rng);
  GaEngine engine(mesh.graph, cfg, std::move(init), rng.split());
  // Inject a clearly superior individual (hill-climbed best).
  const Individual& best = engine.best();
  engine.inject(best.genes);
  int copies = 0;
  for (const auto& ind : engine.population()) {
    if (ind.genes == best.genes) ++copies;
  }
  EXPECT_GE(copies, 1);
}

TEST(GaEngine, SeededRunNeverWorseThanSeed) {
  const Mesh mesh = paper_mesh(139);
  Rng rng(29);
  auto cfg = small_config(4, CrossoverOp::kDknux, 40);
  const auto seed = random_balanced_assignment(139, 4, rng);
  const double seed_fitness =
      evaluate_fitness(mesh.graph, seed, 4, cfg.fitness);
  auto init = make_seeded_population(seed, cfg.population_size, 0.1, rng);
  const auto res = run_ga(mesh.graph, cfg, std::move(init), rng.split());
  EXPECT_GE(res.best_fitness, seed_fitness);
}

TEST(GaEngine, HillClimbOffspringImprovesConvergence) {
  const Mesh mesh = paper_mesh(98);
  Rng rng(31);
  auto plain = small_config(4, CrossoverOp::kDknux, 25);
  auto memetic = plain;
  memetic.hill_climb_offspring = true;
  memetic.hill_climb_fraction = 0.5;
  auto init = make_random_population(mesh.graph.num_vertices(), 4,
                                     plain.population_size, rng);
  const auto res_plain = run_ga(mesh.graph, plain, init, Rng(7));
  const auto res_memetic = run_ga(mesh.graph, memetic, init, Rng(7));
  EXPECT_GE(res_memetic.best_fitness, res_plain.best_fitness);
}

TEST(GaEngine, HistoryHasOneEntryPerGenerationPlusInitial) {
  const Graph g = make_grid(5, 5);
  Rng rng(37);
  const auto cfg = small_config(2, CrossoverOp::kUniform, 12);
  auto init = make_random_population(25, 2, cfg.population_size, rng);
  const auto res = run_ga(g, cfg, std::move(init), rng.split());
  EXPECT_EQ(res.generations, 12);
  EXPECT_EQ(res.history.size(), 13u);
  EXPECT_EQ(res.history.front().generation, 0);
  EXPECT_EQ(res.history.back().generation, 12);
}

TEST(GaEngine, PopulationSizeInvariant) {
  const Graph g = make_grid(4, 4);
  Rng rng(41);
  const auto cfg = small_config(2, CrossoverOp::kOnePoint, 0);
  auto init = make_random_population(16, 2, 3, rng);  // fewer seeds than pop
  GaEngine engine(g, cfg, std::move(init), rng.split());
  EXPECT_EQ(engine.population().size(), 40u);
  for (int s = 0; s < 5; ++s) {
    engine.step();
    EXPECT_EQ(engine.population().size(), 40u);
    for (const auto& ind : engine.population()) {
      EXPECT_TRUE(ind.evaluated);
      EXPECT_TRUE(is_valid_assignment(g, ind.genes, 2));
    }
  }
}

TEST(GaEngine, InvalidConfigRejected) {
  const Graph g = make_grid(3, 3);
  Rng rng(43);
  auto init = make_random_population(9, 2, 4, rng);
  GaConfig bad = small_config(2, CrossoverOp::kDknux, 10);
  bad.population_size = 1;
  EXPECT_THROW(GaEngine(g, bad, init, rng.split()), Error);
  bad = small_config(2, CrossoverOp::kDknux, 10);
  bad.crossover_rate = 1.5;
  EXPECT_THROW(GaEngine(g, bad, init, rng.split()), Error);
  bad = small_config(2, CrossoverOp::kDknux, 10);
  bad.elite_count = 40;
  EXPECT_THROW(GaEngine(g, bad, init, rng.split()), Error);
  EXPECT_THROW(GaEngine(g, small_config(2, CrossoverOp::kDknux, 1), {},
                        rng.split()),
               Error);
}

TEST(GaEngine, EvaluationsCounted) {
  const Graph g = make_grid(4, 4);
  Rng rng(47);
  auto cfg = small_config(2, CrossoverOp::kUniform, 5);
  cfg.elite_count = 0;
  cfg.delta_eval_clones = false;  // every child pays a full evaluation
  auto init = make_random_population(16, 2, cfg.population_size, rng);
  const auto res = run_ga(g, cfg, std::move(init), rng.split());
  // Initial population + 5 generations of full replacement; without hill
  // climbing or the clone delta path every evaluation is a full one.
  EXPECT_EQ(res.evaluations, 40 + 5 * 40);
  EXPECT_EQ(res.full_evaluations, 40 + 5 * 40);
  EXPECT_EQ(res.delta_evaluations, 0);
}

TEST(GaEngine, CloneDeltaPathDropsFullEvaluationCount) {
  // With delta_eval_clones (the default), the 1 - p_c share of children that
  // skip crossover inherit their parent's cached metrics and are charged
  // mutation-flip deltas instead of full evaluations — the counts, and the
  // O(V+E) passes they stand for, must drop accordingly.  Crossover children
  // and results are untouched: both runs consume identical RNG streams, so
  // the search trajectory is the same.
  const Graph g = make_grid(8, 8);
  Rng rng(47);
  auto cfg = small_config(2, CrossoverOp::kUniform, 6);
  cfg.elite_count = 0;
  cfg.crossover_rate = 0.5;  // half the children are clones

  auto cfg_full = cfg;
  cfg_full.delta_eval_clones = false;
  Rng init_rng(48);
  const auto init =
      make_random_population(64, 2, cfg.population_size, init_rng);

  const auto res_delta = run_ga(g, cfg, init, Rng(49));
  const auto res_full = run_ga(g, cfg_full, init, Rng(49));

  // Same search: identical best solutions and histories (unit weights make
  // the delta-path fitness bit-identical to the full pass).
  EXPECT_EQ(res_delta.best, res_full.best);
  EXPECT_DOUBLE_EQ(res_delta.best_fitness, res_full.best_fitness);
  ASSERT_EQ(res_delta.history.size(), res_full.history.size());
  for (std::size_t i = 0; i < res_delta.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(res_delta.history[i].best_fitness,
                     res_full.history[i].best_fitness);
    EXPECT_DOUBLE_EQ(res_delta.history[i].mean_fitness,
                     res_full.history[i].mean_fitness);
  }

  // Fewer O(V+E) passes: every clone (half of 6 generations x 40 children in
  // expectation) stopped paying one.
  EXPECT_LT(res_delta.full_evaluations, res_full.full_evaluations);
  EXPECT_EQ(res_full.delta_evaluations, 0);
  // Flip deltas are charged as delta evaluations; at p_m = 0.01 they number
  // far below the full evaluations they replace.
  EXPECT_LT(res_delta.delta_evaluations,
            res_full.full_evaluations - res_delta.full_evaluations);
}

TEST(GaEngine, CloneDeltaFitnessMatchesScratchEvaluation) {
  // Every fitness the delta path produces must equal a from-scratch
  // evaluation of the same chromosome (exact on unit-weight graphs).
  const Mesh mesh = paper_mesh(78);
  Rng rng(51);
  auto cfg = small_config(4, CrossoverOp::kDknux, 4);
  cfg.crossover_rate = 0.3;  // mostly clones
  auto init = make_random_population(78, 4, cfg.population_size, rng);
  GaEngine engine(mesh.graph, cfg, std::move(init), rng.split());
  for (int s = 0; s < 4; ++s) {
    engine.step();
    for (const auto& ind : engine.population()) {
      ASSERT_TRUE(ind.evaluated);
      EXPECT_DOUBLE_EQ(ind.fitness,
                       evaluate_fitness(mesh.graph, ind.genes, 4,
                                        cfg.fitness));
    }
  }
}

TEST(GaEngine, HillClimbedChildrenAreNotEvaluatedTwice) {
  // Every child is hill-climbed; each must cost exactly ONE full evaluation
  // (the PartitionState construction) — the climbed fitness is adopted from
  // the incrementally-maintained state, never recomputed from scratch.
  const Mesh mesh = paper_mesh(98);
  Rng rng(53);
  auto cfg = small_config(4, CrossoverOp::kDknux, 4);
  cfg.elite_count = 0;
  cfg.population_size = 20;
  cfg.hill_climb_offspring = true;
  cfg.hill_climb_fraction = 1.0;
  cfg.hill_climb_passes = 2;
  auto init = make_random_population(98, 4, cfg.population_size, rng);
  const auto res = run_ga(mesh.graph, cfg, std::move(init), rng.split());
  EXPECT_EQ(res.full_evaluations, 20 + 4 * 20);
  // Random offspring on a mesh essentially always admit improving moves.
  EXPECT_GT(res.delta_evaluations, 0);
  EXPECT_EQ(res.evaluations, res.full_evaluations + res.delta_evaluations);
}

TEST(GaEngine, EvaluationSplitConsistentViaAccessors) {
  const Graph g = make_grid(5, 5);
  Rng rng(59);
  auto cfg = small_config(2, CrossoverOp::kUniform, 0);
  cfg.hill_climb_offspring = true;
  cfg.hill_climb_fraction = 0.5;
  auto init = make_random_population(25, 2, cfg.population_size, rng);
  GaEngine engine(g, cfg, std::move(init), rng.split());
  for (int s = 0; s < 3; ++s) engine.step();
  EXPECT_EQ(engine.evaluations(),
            engine.full_evaluations() + engine.delta_evaluations());
  EXPECT_EQ(engine.eval_context().total_evaluations(), engine.evaluations());
}

TEST(GaEngine, PaperPresetValues) {
  const auto cfg = paper_ga_config(8, Objective::kWorstComm);
  EXPECT_EQ(cfg.population_size, 320);
  EXPECT_DOUBLE_EQ(cfg.crossover_rate, 0.7);
  EXPECT_DOUBLE_EQ(cfg.mutation_rate, 0.01);
  EXPECT_EQ(cfg.crossover, CrossoverOp::kDknux);
  EXPECT_EQ(cfg.num_parts, 8);
  EXPECT_EQ(cfg.fitness.objective, Objective::kWorstComm);
  const auto dpga = paper_dpga_config(4, Objective::kTotalComm);
  EXPECT_EQ(dpga.num_islands, 16);
  EXPECT_EQ(dpga.topology, TopologyKind::kHypercube);
  EXPECT_EQ(dpga.ga.population_size, 320);
}

}  // namespace
}  // namespace gapart
