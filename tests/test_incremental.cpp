#include "core/incremental.hpp"

#include <gtest/gtest.h>

#include "baselines/greedy_incremental.hpp"
#include "common/rng.hpp"
#include "core/contracted_ga.hpp"
#include "core/init.hpp"
#include "graph/generators.hpp"
#include "graph/mesh.hpp"
#include "spectral/rsb.hpp"
#include "test_util.hpp"

namespace gapart {
namespace {

using testing::max_size_deviation;

IncrementalGaOptions small_incremental(PartId k, int gens) {
  IncrementalGaOptions opt;
  opt.dpga.num_islands = 4;
  opt.dpga.ga.num_parts = k;
  opt.dpga.ga.population_size = 64;
  opt.dpga.ga.max_generations = gens;
  return opt;
}

TEST(IncrementalGa, RepartitionsGrownMesh) {
  const Mesh base = paper_mesh(118);
  const Mesh grown = paper_incremental_mesh(base, 118, 21);
  Rng rng(3);
  const auto prev = rsb_partition(base.graph, 4, rng);
  const auto opt = small_incremental(4, 60);
  const auto res =
      incremental_repartition(grown.graph, prev, opt, rng);
  ASSERT_TRUE(is_valid_assignment(grown.graph, res.best, 4));
  EXPECT_LE(max_size_deviation(res.best, 4), 3);
  EXPECT_GT(res.generations, 0);
}

TEST(IncrementalGa, BeatsGreedyDeterministicAssignment) {
  // The paper's conclusion: "The incremental partitioning results obtained
  // using DKNUX could not be obtained by a simple deterministic algorithm
  // that assigns new nodes to the part to which most of its nearest
  // neighbors belong."
  const Mesh base = paper_mesh(183);
  const Mesh grown = paper_incremental_mesh(base, 183, 60);
  Rng rng(5);
  const auto prev = rsb_partition(base.graph, 8, rng);

  const auto greedy = greedy_incremental_assign(grown.graph, prev, 8);
  const FitnessParams params{Objective::kTotalComm, 1.0};
  const double greedy_fitness =
      evaluate_fitness(grown.graph, greedy, 8, params);

  auto opt = small_incremental(8, 120);
  const auto res = incremental_repartition(grown.graph, prev, opt, rng);
  EXPECT_GT(res.best_fitness, greedy_fitness);
}

TEST(IncrementalGa, SeedNeverLost) {
  // The GA result can never be worse than the best balanced extension it
  // was seeded with.
  const Mesh base = paper_mesh(78);
  const Mesh grown = paper_incremental_mesh(base, 78, 10);
  Rng rng(7);
  const auto prev = rsb_partition(base.graph, 4, rng);
  auto opt = small_incremental(4, 30);
  Rng seed_rng(99);
  const auto seed = incremental_seed_assignment(grown.graph, prev, 4, seed_rng);
  const double seed_fitness = evaluate_fitness(
      grown.graph, seed, 4, opt.dpga.ga.fitness);
  const auto res = incremental_repartition(grown.graph, prev, opt, rng);
  // Not exactly the same seed (random placement), but the GA explored a
  // population of such seeds, so its best must be at least competitive.
  EXPECT_GE(res.best_fitness, seed_fitness - 10.0);
}

TEST(IncrementalGa, ValidatesPreviousSize) {
  const Mesh base = paper_mesh(78);
  Rng rng(9);
  const Assignment too_big(200, 0);
  const auto opt = small_incremental(2, 5);
  EXPECT_THROW(
      incremental_repartition(base.graph, too_big, opt, rng), Error);
}

TEST(ContractedGa, PartitionsLargerMesh) {
  Rng rng(11);
  const Domain domain(DomainShape::kRectangle);
  const Mesh mesh = generate_mesh(domain, 600, rng);
  ContractedGaOptions opt;
  opt.dpga.num_islands = 4;
  opt.dpga.ga.num_parts = 4;
  opt.dpga.ga.population_size = 64;
  opt.dpga.ga.max_generations = 60;
  opt.coarse_vertices_per_part = 20;
  const auto res = contracted_ga_partition(mesh.graph, opt, rng);
  ASSERT_TRUE(is_valid_assignment(mesh.graph, res.assignment, 4));
  EXPECT_LT(res.coarse_vertices, 200);
  EXPECT_GE(res.levels, 1);
  const auto m = compute_metrics(mesh.graph, res.assignment, 4);
  // Sanity: a real partition, not shredded.
  EXPECT_LT(m.total_cut(), 0.25 * static_cast<double>(mesh.graph.num_edges()));
  EXPECT_LE(m.imbalance_sq, 64.0);
}

TEST(ContractedGa, SmallGraphSkipsCoarsening) {
  const Mesh mesh = paper_mesh(78);
  Rng rng(13);
  ContractedGaOptions opt;
  opt.dpga.num_islands = 2;
  opt.dpga.ga.num_parts = 2;
  opt.dpga.ga.population_size = 32;
  opt.dpga.ga.max_generations = 20;
  opt.coarse_vertices_per_part = 100;  // 2*100 > 78: no contraction
  const auto res = contracted_ga_partition(mesh.graph, opt, rng);
  EXPECT_EQ(res.levels, 0);
  EXPECT_EQ(res.coarse_vertices, 78);
  ASSERT_TRUE(is_valid_assignment(mesh.graph, res.assignment, 2));
}

}  // namespace
}  // namespace gapart
