#include "core/incremental.hpp"

#include <gtest/gtest.h>

#include "baselines/greedy_incremental.hpp"
#include "common/rng.hpp"
#include "core/contracted_ga.hpp"
#include "core/init.hpp"
#include "graph/generators.hpp"
#include "graph/mesh.hpp"
#include "spectral/rsb.hpp"
#include "test_util.hpp"

namespace gapart {
namespace {

using testing::max_size_deviation;

IncrementalGaOptions small_incremental(PartId k, int gens) {
  IncrementalGaOptions opt;
  opt.dpga.num_islands = 4;
  opt.dpga.ga.num_parts = k;
  opt.dpga.ga.population_size = 64;
  opt.dpga.ga.max_generations = gens;
  return opt;
}

TEST(IncrementalGa, RepartitionsGrownMesh) {
  const Mesh base = paper_mesh(118);
  const Mesh grown = paper_incremental_mesh(base, 118, 21);
  Rng rng(3);
  const auto prev = rsb_partition(base.graph, 4, rng);
  const auto opt = small_incremental(4, 60);
  const auto res =
      incremental_repartition(grown.graph, prev, opt, rng);
  ASSERT_TRUE(is_valid_assignment(grown.graph, res.best, 4));
  EXPECT_LE(max_size_deviation(res.best, 4), 3);
  ASSERT_TRUE(res.ga_ran);
  EXPECT_GT(res.ga.generations, 0);
  EXPECT_GT(res.damage, 0);
}

TEST(IncrementalGa, BeatsGreedyDeterministicAssignment) {
  // The paper's conclusion: "The incremental partitioning results obtained
  // using DKNUX could not be obtained by a simple deterministic algorithm
  // that assigns new nodes to the part to which most of its nearest
  // neighbors belong."
  const Mesh base = paper_mesh(183);
  const Mesh grown = paper_incremental_mesh(base, 183, 60);
  Rng rng(5);
  const auto prev = rsb_partition(base.graph, 8, rng);

  const auto greedy = greedy_incremental_assign(grown.graph, prev, 8);
  const FitnessParams params{Objective::kTotalComm, 1.0};
  const double greedy_fitness =
      evaluate_fitness(grown.graph, greedy, 8, params);

  auto opt = small_incremental(8, 120);
  const auto res = incremental_repartition(grown.graph, prev, opt, rng);
  EXPECT_GT(res.best_fitness, greedy_fitness);
}

TEST(IncrementalGa, SeedNeverLost) {
  // The pipeline's result can never be worse than the best balanced
  // extension the problem admits being seeded with.
  const Mesh base = paper_mesh(78);
  const Mesh grown = paper_incremental_mesh(base, 78, 10);
  Rng rng(7);
  const auto prev = rsb_partition(base.graph, 4, rng);
  auto opt = small_incremental(4, 30);
  Rng seed_rng(99);
  const auto seed = incremental_seed_assignment(grown.graph, prev, 4, seed_rng);
  const double seed_fitness = evaluate_fitness(
      grown.graph, seed, 4, opt.dpga.ga.fitness);
  const auto res = incremental_repartition(grown.graph, prev, opt, rng);
  // Not exactly the same seed (random placement), but the GA explored a
  // population derived from such extensions, so its best must be at least
  // competitive.
  EXPECT_GE(res.best_fitness, seed_fitness - 10.0);
}

TEST(IncrementalGa, ValidatesPreviousSize) {
  const Mesh base = paper_mesh(78);
  Rng rng(9);
  const Assignment too_big(200, 0);
  const auto opt = small_incremental(2, 5);
  EXPECT_THROW(
      incremental_repartition(base.graph, too_big, opt, rng), Error);
}

TEST(IncrementalGa, ValidatesPreviousPartIds) {
  // Regression: the GA path used to accept out-of-range part ids and index
  // the part-weight arrays out of bounds; now it rejects them up front, the
  // same way the greedy baseline always did.
  const Mesh base = paper_mesh(78);
  const Mesh grown = paper_incremental_mesh(base, 78, 10);
  Rng rng(11);
  Assignment bad(static_cast<std::size_t>(base.graph.num_vertices()), 0);
  bad[5] = 7;  // k = 4 below
  const auto opt = small_incremental(4, 5);
  EXPECT_THROW(incremental_repartition(grown.graph, bad, opt, rng), Error);
  bad[5] = -1;
  EXPECT_THROW(incremental_repartition(grown.graph, bad, opt, rng), Error);
}

TEST(IncrementalInit, MakeIncrementalPopulationValidatesPartIds) {
  // Same regression at the population-builder layer (the old entry point).
  const Mesh base = paper_mesh(78);
  const Mesh grown = paper_incremental_mesh(base, 78, 10);
  Rng rng(13);
  Assignment bad(static_cast<std::size_t>(base.graph.num_vertices()), 0);
  bad[0] = 4;
  EXPECT_THROW(make_incremental_population(grown.graph, bad, 4, 8, 0.05, rng),
               Error);
  EXPECT_THROW(incremental_seed_assignment(grown.graph, bad, 4, rng), Error);
}

TEST(IncrementalGa, TieredPipelineReportsStats) {
  const Mesh base = paper_mesh(118);
  const Mesh grown = paper_incremental_mesh(base, 118, 41);
  Rng rng(17);
  const auto prev = rsb_partition(base.graph, 4, rng);
  auto opt = small_incremental(4, 10);
  opt.refine_with_ga = false;  // greedy + repair only

  const auto res = incremental_repartition(grown.graph, prev, opt, rng);
  ASSERT_TRUE(is_valid_assignment(grown.graph, res.best, 4));
  EXPECT_FALSE(res.ga_ran);
  ASSERT_EQ(res.tiers.size(), 2u);
  EXPECT_EQ(res.tiers[0].name, "greedy_extend");
  EXPECT_EQ(res.tiers[1].name, "seeded_repair");

  // Tier 1 assigned exactly the new vertices.
  EXPECT_EQ(res.tiers[0].moves, 41);
  // The fitness trajectory is monotone: repair never undoes the extension.
  EXPECT_GE(res.tiers[1].fitness_after, res.tiers[0].fitness_after);
  EXPECT_EQ(res.best_fitness, res.tiers[1].fitness_after);
  // Repair accounting: two full evaluations (state construction + the
  // from-scratch fitness readout) plus one delta per move.
  EXPECT_EQ(res.tiers[1].evaluations, 2 + res.tiers[1].moves);
  // Damage = new vertices + survivors the re-triangulation left adjacent to
  // them (appended_delta); repair work is bounded far below |V| probes per
  // verification round.
  EXPECT_GE(res.damage, 41);
  EXPECT_GT(res.tiers[1].examined, 0);
}

TEST(IncrementalGa, GaTierNeverLosesRepairedSeed) {
  const Mesh base = paper_mesh(118);
  const Mesh grown = paper_incremental_mesh(base, 118, 21);
  Rng rng(19);
  const auto prev = rsb_partition(base.graph, 4, rng);
  const auto opt = small_incremental(4, 15);
  const auto res = incremental_repartition(grown.graph, prev, opt, rng);
  ASSERT_TRUE(res.ga_ran);
  ASSERT_EQ(res.tiers.size(), 3u);
  EXPECT_EQ(res.tiers[2].name, "ga_refine");
  // The repaired solution is in the GA population verbatim; with elitism the
  // final best can only match or beat it.
  EXPECT_GE(res.best_fitness, res.tiers[1].fitness_after);
  EXPECT_EQ(res.best_fitness, res.tiers[2].fitness_after);
}

TEST(IncrementalGa, BalancedExtendTierOption) {
  const Mesh base = paper_mesh(78);
  const Mesh grown = paper_incremental_mesh(base, 78, 10);
  Rng rng(23);
  const auto prev = rsb_partition(base.graph, 2, rng);
  auto opt = small_incremental(2, 5);
  opt.greedy_extend = false;
  opt.refine_with_ga = false;
  const auto res = incremental_repartition(grown.graph, prev, opt, rng);
  ASSERT_EQ(res.tiers.size(), 2u);
  EXPECT_EQ(res.tiers[0].name, "balanced_extend");
  ASSERT_TRUE(is_valid_assignment(grown.graph, res.best, 2));
  // Balanced dealing keeps the extension balanced and repair keeps it so.
  EXPECT_LE(max_size_deviation(res.best, 2), 4);
}

TEST(IncrementalGa, ExplicitDeltaOverload) {
  // Supplying the exact delta must agree with the convenience overload on
  // pure growth (same seeds, same rng stream, same pipeline).
  const Mesh base = paper_mesh(78);
  const Mesh grown = paper_incremental_mesh(base, 78, 10);
  Rng rng_a(31);
  Rng rng_b(31);
  const auto prev = rsb_partition(base.graph, 2, rng_a);
  rsb_partition(base.graph, 2, rng_b);  // keep streams aligned
  auto opt = small_incremental(2, 5);
  opt.refine_with_ga = false;

  const auto delta = appended_delta(grown.graph, 78);
  const auto res_a =
      incremental_repartition(grown.graph, prev, delta, opt, rng_a);
  const auto res_b = incremental_repartition(grown.graph, prev, opt, rng_b);
  EXPECT_EQ(res_a.best, res_b.best);
  EXPECT_EQ(res_a.damage, res_b.damage);

  // A delta that disagrees with |previous| is rejected.
  GraphDelta wrong;
  wrong.old_num_vertices = 50;
  EXPECT_THROW(incremental_repartition(grown.graph, prev, wrong, opt, rng_a),
               Error);
}

TEST(ContractedGa, PartitionsLargerMesh) {
  Rng rng(11);
  const Domain domain(DomainShape::kRectangle);
  const Mesh mesh = generate_mesh(domain, 600, rng);
  ContractedGaOptions opt;
  opt.dpga.num_islands = 4;
  opt.dpga.ga.num_parts = 4;
  opt.dpga.ga.population_size = 64;
  opt.dpga.ga.max_generations = 60;
  opt.coarse_vertices_per_part = 20;
  const auto res = contracted_ga_partition(mesh.graph, opt, rng);
  ASSERT_TRUE(is_valid_assignment(mesh.graph, res.assignment, 4));
  EXPECT_LT(res.coarse_vertices, 200);
  EXPECT_GE(res.levels, 1);
  const auto m = compute_metrics(mesh.graph, res.assignment, 4);
  // Sanity: a real partition, not shredded.
  EXPECT_LT(m.total_cut(), 0.25 * static_cast<double>(mesh.graph.num_edges()));
  EXPECT_LE(m.imbalance_sq, 64.0);
}

TEST(ContractedGa, SmallGraphSkipsCoarsening) {
  const Mesh mesh = paper_mesh(78);
  Rng rng(13);
  ContractedGaOptions opt;
  opt.dpga.num_islands = 2;
  opt.dpga.ga.num_parts = 2;
  opt.dpga.ga.population_size = 32;
  opt.dpga.ga.max_generations = 20;
  opt.coarse_vertices_per_part = 100;  // 2*100 > 78: no contraction
  const auto res = contracted_ga_partition(mesh.graph, opt, rng);
  EXPECT_EQ(res.levels, 0);
  EXPECT_EQ(res.coarse_vertices, 78);
  ASSERT_TRUE(is_valid_assignment(mesh.graph, res.assignment, 2));
}

}  // namespace
}  // namespace gapart
