// Streaming partition service: refinement-trigger policy units, session
// repair over delta streams, epoch-versioned snapshot consistency under
// concurrent deltas + reads, background refinement, and snapshot/restore
// round-trips through the Chaco/METIS IO.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "core/graph_delta.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "service/refine_policy.hpp"
#include "service/session.hpp"
#include "test_util.hpp"

namespace gapart {
namespace {

// ---------------------------------------------------------------------------
// Policy units: decide_refinement / route_refinement_parallel are pure, so
// the trigger matrix is testable without sessions or clocks.

RefinePolicyConfig policy_config() {
  RefinePolicyConfig c;
  c.quality_watermark = 0.10;
  c.staleness_updates = 8;
  c.damage_threshold = 100;
  c.deep_damage_threshold = 1000;
  c.deep_watermark_factor = 4.0;
  return c;
}

TEST(RefinePolicy, QuietWhenNothingFired) {
  RefineSignals s;
  s.current_fitness = -100.0;
  s.baseline_fitness = -100.0;
  s.updates_since_refine = 3;
  s.damage_since_refine = 10;
  EXPECT_EQ(decide_refinement(policy_config(), s), RefineDepth::kNone);
}

TEST(RefinePolicy, QualityWatermarkTriggersLight) {
  RefineSignals s;
  s.baseline_fitness = -100.0;
  s.current_fitness = -120.0;  // 20% degradation > 10% watermark
  EXPECT_EQ(decide_refinement(policy_config(), s), RefineDepth::kLight);
}

TEST(RefinePolicy, StalenessTriggersLight) {
  RefineSignals s;
  s.baseline_fitness = -100.0;
  s.current_fitness = -100.0;
  s.updates_since_refine = 8;
  EXPECT_EQ(decide_refinement(policy_config(), s), RefineDepth::kLight);
}

TEST(RefinePolicy, DamageAccumulationTriggersLight) {
  RefineSignals s;
  s.baseline_fitness = -100.0;
  s.current_fitness = -100.0;
  s.damage_since_refine = 100;
  EXPECT_EQ(decide_refinement(policy_config(), s), RefineDepth::kLight);
}

TEST(RefinePolicy, DeepEscalationOnAccumulatedDamage) {
  RefineSignals s;
  s.baseline_fitness = -100.0;
  s.current_fitness = -100.0;
  s.damage_since_refine = 100;
  s.damage_since_deep = 1000;
  EXPECT_EQ(decide_refinement(policy_config(), s), RefineDepth::kDeep);

  auto no_deep = policy_config();
  no_deep.allow_deep = false;
  EXPECT_EQ(decide_refinement(no_deep, s), RefineDepth::kLight);
}

TEST(RefinePolicy, DeepEscalationOnSevereDegradation) {
  RefineSignals s;
  s.baseline_fitness = -100.0;
  s.current_fitness = -150.0;  // 50% > 10% * 4
  EXPECT_EQ(decide_refinement(policy_config(), s), RefineDepth::kDeep);
}

TEST(RefinePolicy, InFlightSuppressesEverything) {
  RefineSignals s;
  s.baseline_fitness = -100.0;
  s.current_fitness = -200.0;
  s.updates_since_refine = 1000;
  s.damage_since_refine = 100000;
  s.damage_since_deep = 100000;
  s.refine_in_flight = true;
  EXPECT_EQ(decide_refinement(policy_config(), s), RefineDepth::kNone);
}

TEST(RefinePolicy, DisabledTriggersStayQuiet) {
  RefinePolicyConfig off;
  off.quality_watermark = 0.0;
  off.staleness_updates = 0;
  off.damage_threshold = 0;
  RefineSignals s;
  s.baseline_fitness = -100.0;
  s.current_fitness = -1000.0;
  s.updates_since_refine = 1 << 20;
  s.damage_since_refine = 1 << 20;
  EXPECT_EQ(decide_refinement(off, s), RefineDepth::kNone);
}

TEST(RefinePolicy, DegradationIsRelativeAndClampedAtZero) {
  EXPECT_DOUBLE_EQ(fitness_degradation(-110.0, -100.0), 0.1);
  EXPECT_DOUBLE_EQ(fitness_degradation(-90.0, -100.0), 0.0);  // improved
  EXPECT_DOUBLE_EQ(fitness_degradation(-0.5, 0.0), 0.5);  // zero baseline
}

TEST(RefinePolicy, ParallelRoutingNeedsSizeAndThreads) {
  RefinePolicyConfig c;
  c.parallel_refine_min_vertices = 1000;
  EXPECT_TRUE(route_refinement_parallel(c, 1000, 4));
  EXPECT_TRUE(route_refinement_parallel(c, 5000, 2));
  EXPECT_FALSE(route_refinement_parallel(c, 999, 4));   // below the floor
  EXPECT_FALSE(route_refinement_parallel(c, 5000, 1));  // serial pool
  EXPECT_FALSE(route_refinement_parallel(c, 5000, 0));
}

TEST(RefinePolicy, ParallelRoutingDisabledByNonPositiveFloor) {
  RefinePolicyConfig c;
  c.parallel_refine_min_vertices = 0;
  EXPECT_FALSE(route_refinement_parallel(c, 1 << 20, 8));
  c.parallel_refine_min_vertices = -1;
  EXPECT_FALSE(route_refinement_parallel(c, 1 << 20, 8));
}

// ---------------------------------------------------------------------------
// Delta-stream helpers: grids that grow by rows (pure growth) and grids with
// a toggled diagonal window (churn — same vertices, rewired edges).

std::shared_ptr<const Graph> shared_grid(VertexId rows, VertexId cols) {
  return std::make_shared<const Graph>(make_grid(rows, cols));
}

/// n x n grid with the diagonals of a w x w window added on odd phases: the
/// delta between consecutive phases touches only the window.
std::shared_ptr<const Graph> churn_grid(VertexId n, VertexId w, int phase) {
  GraphBuilder b(n * n);
  const auto at = [n](VertexId r, VertexId c) { return r * n + c; };
  for (VertexId r = 0; r < n; ++r) {
    for (VertexId c = 0; c < n; ++c) {
      if (c + 1 < n) b.add_edge(at(r, c), at(r, c + 1));
      if (r + 1 < n) b.add_edge(at(r, c), at(r + 1, c));
    }
  }
  if (phase % 2 == 1) {
    const VertexId r0 = n / 3;
    for (VertexId r = r0; r < r0 + w && r + 1 < n; ++r) {
      for (VertexId c = r0; c < r0 + w && c + 1 < n; ++c) {
        b.add_edge(at(r, c), at(r + 1, c + 1));
      }
    }
  }
  return std::make_shared<const Graph>(b.build());
}

SessionConfig basic_config(PartId k) {
  SessionConfig cfg;
  cfg.num_parts = k;
  return cfg;
}

Assignment block_partition(VertexId n_vertices, PartId k) {
  Assignment a(static_cast<std::size_t>(n_vertices));
  for (VertexId v = 0; v < n_vertices; ++v) {
    a[static_cast<std::size_t>(v)] = static_cast<PartId>(
        std::min<std::int64_t>(k - 1, static_cast<std::int64_t>(v) * k /
                                          n_vertices));
  }
  return a;
}

void expect_snapshot_consistent(const SessionSnapshot& snap, PartId k) {
  ASSERT_NE(snap.graph, nullptr);
  ASSERT_TRUE(is_valid_assignment(*snap.graph, snap.assignment, k));
  const auto m = compute_metrics(*snap.graph, snap.assignment, k);
  EXPECT_NEAR(snap.total_cut, m.total_cut(), 1e-9);
  EXPECT_NEAR(snap.max_part_cut, m.max_part_cut, 1e-9);
  EXPECT_NEAR(snap.imbalance_sq, m.imbalance_sq, 1e-9);
}

// ---------------------------------------------------------------------------
// Session: synchronous repair plane.

// Column-band start (bench_common, shared with bench/soak_service):
// appended rows cross every band boundary, so growth always leaves the
// repair tier work.
using bench::column_bands;

TEST(PartitionSession, GrowthStreamKeepsStateConsistent) {
  const PartId k = 4;
  auto g = shared_grid(12, 12);
  PartitionSession session(g, column_bands(12, 12, k), basic_config(k));

  auto snap = session.snapshot();
  EXPECT_STREQ(snap->source, "open");
  expect_snapshot_consistent(*snap, k);

  std::shared_ptr<const Graph> prev = g;
  for (VertexId rows = 13; rows <= 20; ++rows) {
    auto grown = shared_grid(rows, 12);
    const GraphDelta delta = diff_graphs(*prev, *grown);
    const RepairReport rep = session.apply_update(grown, delta);

    EXPECT_EQ(rep.damage, delta.damage(*grown));
    EXPECT_EQ(rep.extend_moves, 12);
    // The maintained fitness must equal a from-scratch evaluation after
    // every update — rebind + repair never drift.
    snap = session.snapshot();
    EXPECT_STREQ(snap->source, "repair");
    EXPECT_EQ(snap->update_epoch, static_cast<std::uint64_t>(rows - 12));
    expect_snapshot_consistent(*snap, k);
    EXPECT_NEAR(rep.fitness_after,
                evaluate_fitness(*grown, snap->assignment, k, {}), 1e-9);
    prev = grown;
  }

  const SessionStats st = session.stats();
  EXPECT_EQ(st.updates, 8u);
  EXPECT_EQ(st.cut_trajectory.size(), 9u);  // open + 8 repairs
  EXPECT_GT(st.examined, 0);
}

TEST(PartitionSession, ChurnStreamRepairsRewiredWindows) {
  const PartId k = 2;
  auto prev = churn_grid(16, 5, 0);
  PartitionSession session(prev, block_partition(256, k), basic_config(k));

  for (int phase = 1; phase <= 6; ++phase) {
    auto next = churn_grid(16, 5, phase);
    const GraphDelta delta = diff_graphs(*prev, *next);
    ASSERT_GT(delta.touched_old.size(), 0u);
    const RepairReport rep = session.apply_update(next, delta);
    EXPECT_EQ(rep.extend_moves, 0);
    expect_snapshot_consistent(*session.snapshot(), k);
    EXPECT_NEAR(rep.fitness_after,
                evaluate_fitness(*next, session.snapshot()->assignment, k, {}),
                1e-9);
    prev = next;
  }
}

TEST(PartitionSession, MismatchedDeltaRejected) {
  const PartId k = 2;
  auto g = shared_grid(6, 6);
  PartitionSession session(g, block_partition(36, k), basic_config(k));
  auto grown = shared_grid(7, 6);
  GraphDelta wrong;
  wrong.old_num_vertices = 35;  // session has 36
  EXPECT_THROW(session.apply_update(grown, wrong), Error);
  EXPECT_THROW(session.apply_update(nullptr, appended_delta(*grown, 36)),
               Error);
}

TEST(PartitionSession, LatencyBudgetAdmitsVerificationRounds) {
  const PartId k = 4;
  auto g = shared_grid(16, 16);

  SessionConfig tight = basic_config(k);
  tight.repair_budget_seconds = 0.0;  // cascade only
  SessionConfig roomy = basic_config(k);
  roomy.repair_budget_seconds = 10.0;  // effectively unbounded in a test
  roomy.repair_max_verify_rounds = 50;

  // A deliberately bad start partition leaves plenty for verification rounds
  // to find beyond the seeded cascade.
  Rng rng(0xbad);
  Assignment scrambled(256);
  for (auto& p : scrambled) p = static_cast<PartId>(rng.uniform_int(k));

  auto grown = shared_grid(17, 16);
  const GraphDelta delta = diff_graphs(*g, *grown);

  PartitionSession ts(g, scrambled, tight);
  const RepairReport tr = ts.apply_update(grown, delta);
  EXPECT_EQ(tr.verify_rounds, 0);

  PartitionSession rs(g, scrambled, roomy);
  const RepairReport rr = rs.apply_update(grown, delta);
  EXPECT_GT(rr.verify_rounds, 0);
  EXPECT_GE(rr.fitness_after, tr.fitness_after);
  // The budgeted session ends at a verified local optimum.
  const auto snap = rs.snapshot();
  PartitionState check(*snap->graph, snap->assignment, k);
  for (const VertexId v : check.boundary_vertices()) {
    EXPECT_LT(check.best_move(v, {}, 1e-9).to, 0);
  }
}

// ---------------------------------------------------------------------------
// Refinement plane.

TEST(PartitionSession, RefinementJobLifecycle) {
  const PartId k = 4;
  auto g = shared_grid(16, 16);
  SessionConfig cfg = basic_config(k);
  cfg.repair_budget_seconds = 0.0;       // leave quality on the table
  cfg.policy.damage_threshold = 1;       // fire immediately
  cfg.policy.staleness_updates = 0;
  cfg.policy.quality_watermark = 0.0;

  Rng rng(0x5eed);
  Assignment scrambled(256);
  for (auto& p : scrambled) p = static_cast<PartId>(rng.uniform_int(k));
  PartitionSession session(g, scrambled, cfg);

  auto grown = shared_grid(17, 16);
  session.apply_update(grown, diff_graphs(*g, *grown));

  auto job = session.plan_refinement();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->depth, RefineDepth::kLight);
  // In-flight exclusion: no second job while the first runs.
  EXPECT_FALSE(session.plan_refinement().has_value());

  const RefineOutcome out = run_refinement(*job, cfg, Rng(1), nullptr);
  EXPECT_GT(out.fitness, job->fitness);  // scrambled start: must improve
  // Determinism: same job + seed, same outcome.
  const RefineOutcome out2 = run_refinement(*job, cfg, Rng(1), nullptr);
  EXPECT_EQ(out.assignment, out2.assignment);
  EXPECT_DOUBLE_EQ(out.fitness, out2.fitness);

  Assignment refined = out.assignment;
  EXPECT_TRUE(session.complete_refinement(*job, std::move(refined),
                                          out.fitness, out.full_evaluations,
                                          out.delta_evaluations));
  const auto snap = session.snapshot();
  EXPECT_STREQ(snap->source, "refine");
  expect_snapshot_consistent(*snap, k);
  EXPECT_NEAR(snap->fitness, out.fitness, 1e-9);
  EXPECT_EQ(session.stats().refinements_applied, 1);
}

TEST(PartitionSession, ParallelRoutedRefinementImprovesAndApplies) {
  const PartId k = 4;
  auto g = shared_grid(16, 16);
  SessionConfig cfg = basic_config(k);
  cfg.repair_budget_seconds = 0.0;
  cfg.policy.damage_threshold = 1;  // fire immediately
  cfg.policy.staleness_updates = 0;
  cfg.policy.quality_watermark = 0.0;
  // Force the kLight climb of THIS small session onto the parallel engine.
  cfg.policy.parallel_refine_min_vertices = 1;

  Rng rng(0x5eed);
  Assignment scrambled(256);
  for (auto& p : scrambled) p = static_cast<PartId>(rng.uniform_int(k));
  PartitionSession session(g, scrambled, cfg);

  auto grown = shared_grid(17, 16);
  session.apply_update(grown, diff_graphs(*g, *grown));
  auto job = session.plan_refinement();
  ASSERT_TRUE(job.has_value());

  Executor pool(4);
  const RefineOutcome out = run_refinement(*job, cfg, Rng(1), &pool);
  EXPECT_GT(out.fitness, job->fitness);  // scrambled start: must improve
  EXPECT_TRUE(
      is_valid_assignment(*job->graph, out.assignment, k));
  // Routed runs are deterministic for a fixed pool width (scores land
  // indexed by worklist position; the apply is serial ascending).
  const RefineOutcome out2 = run_refinement(*job, cfg, Rng(1), &pool);
  EXPECT_EQ(out.assignment, out2.assignment);

  Assignment refined = out.assignment;
  EXPECT_TRUE(session.complete_refinement(*job, std::move(refined),
                                          out.fitness, out.full_evaluations,
                                          out.delta_evaluations));
  expect_snapshot_consistent(*session.snapshot(), k);
}

TEST(PartitionSession, StaleRefinementIsDiscarded) {
  const PartId k = 2;
  auto g = shared_grid(12, 12);
  SessionConfig cfg = basic_config(k);
  cfg.policy.damage_threshold = 1;
  Rng rng(7);
  Assignment scrambled(144);
  for (auto& p : scrambled) p = static_cast<PartId>(rng.uniform_int(k));
  PartitionSession session(g, scrambled, cfg);

  auto g13 = shared_grid(13, 12);
  session.apply_update(g13, diff_graphs(*g, *g13));
  auto job = session.plan_refinement();
  ASSERT_TRUE(job.has_value());

  // A delta lands while the refinement "runs": the job's epoch goes stale.
  auto g14 = shared_grid(14, 12);
  session.apply_update(g14, diff_graphs(*g13, *g14));

  const RefineOutcome out = run_refinement(*job, cfg, Rng(2), nullptr);
  Assignment refined = out.assignment;
  EXPECT_FALSE(session.complete_refinement(*job, std::move(refined),
                                           out.fitness, out.full_evaluations,
                                           out.delta_evaluations));
  EXPECT_EQ(session.stats().refinements_stale, 1);
  EXPECT_EQ(session.stats().refinements_no_better, 0);
  EXPECT_STREQ(session.snapshot()->source, "repair");
  // The in-flight mark cleared: planning works again.
  EXPECT_TRUE(session.plan_refinement().has_value());
}

// ---------------------------------------------------------------------------
// Persistence.

TEST(PartitionSession, SnapshotRestoreRoundTripViaStreams) {
  const PartId k = 4;
  auto g = shared_grid(10, 10);
  PartitionSession session(g, block_partition(100, k), basic_config(k));
  auto grown = shared_grid(12, 10);
  session.apply_update(grown, diff_graphs(*g, *grown));

  std::stringstream graph_ss;
  std::stringstream part_ss;
  session.save(graph_ss, part_ss);

  const auto restored =
      PartitionSession::restore(graph_ss, part_ss, basic_config(k));
  const auto a = session.snapshot();
  const auto b = restored->snapshot();
  EXPECT_STREQ(b->source, "restore");
  EXPECT_EQ(a->assignment, b->assignment);
  EXPECT_EQ(a->graph->num_vertices(), b->graph->num_vertices());
  EXPECT_EQ(a->graph->num_edges(), b->graph->num_edges());
  EXPECT_NEAR(a->fitness, b->fitness, 1e-9);
  expect_snapshot_consistent(*b, k);

  // The restored session keeps absorbing the stream where the original
  // stopped.
  auto grown2 = shared_grid(13, 10);
  const GraphDelta delta = diff_graphs(*grown, *grown2);
  PartitionSession original_copy(grown, a->assignment, basic_config(k));
  const RepairReport ra = original_copy.apply_update(grown2, delta);
  const RepairReport rb = restored->apply_update(grown2, delta);
  EXPECT_EQ(ra.damage, rb.damage);
  EXPECT_EQ(original_copy.snapshot()->assignment,
            restored->snapshot()->assignment);
}

TEST(PartitionService, SaveAndReopenSessionThroughFiles) {
  const PartId k = 2;
  const std::string prefix = ::testing::TempDir() + "/gapart_service_ckpt";
  ServiceConfig service_config;
  service_config.num_threads = 1;
  PartitionService service(service_config);
  auto g = shared_grid(8, 8);
  const SessionId id =
      service.open_session(g, block_partition(64, k), basic_config(k));
  auto grown = shared_grid(9, 8);
  service.submit_update(id, grown, diff_graphs(*g, *grown));
  service.quiesce();
  service.save_session(id, prefix);
  const auto before = service.snapshot(id);

  const SessionId id2 = service.open_session_from_files(prefix, basic_config(k));
  const auto after = service.snapshot(id2);
  EXPECT_EQ(before->assignment, after->assignment);
  EXPECT_NEAR(before->fitness, after->fitness, 1e-9);
  expect_snapshot_consistent(*after, k);
}

// ---------------------------------------------------------------------------
// Service: concurrency.

TEST(PartitionService, BackgroundRefinementPublishesBetterSnapshots) {
  const PartId k = 4;
  ServiceConfig service_config;
  service_config.num_threads = 2;
  PartitionService service(service_config);
  SessionConfig cfg = basic_config(k);
  cfg.repair_budget_seconds = 0.0;
  cfg.policy.damage_threshold = 1;  // refine after every update
  cfg.policy.allow_deep = false;

  Rng rng(0xabc);
  auto g = shared_grid(16, 16);
  Assignment scrambled(256);
  for (auto& p : scrambled) p = static_cast<PartId>(rng.uniform_int(k));
  const SessionId id = service.open_session(g, scrambled, cfg);

  // One update, then quiesce: the scheduled refinement finishes with its
  // captured epoch still current, and the scrambled cascade-only repair
  // leaves it certain improving moves — it must be adopted.
  auto g17 = shared_grid(17, 16);
  const RepairReport rep =
      service.submit_update(id, g17, diff_graphs(*g, *g17));
  service.quiesce();
  {
    const SessionStats st = service.session_stats(id);
    EXPECT_EQ(st.refinements_planned, 1);
    EXPECT_EQ(st.refinements_applied, 1);
    const auto snap = service.snapshot(id);
    EXPECT_STREQ(snap->source, "refine");
    expect_snapshot_consistent(*snap, k);
    EXPECT_GT(snap->fitness, rep.fitness_after);  // same graph: comparable
  }

  // Keep streaming without quiescing: refinements race deltas; whatever the
  // interleaving, the books must balance once drained.
  std::shared_ptr<const Graph> prev = g17;
  for (VertexId rows = 18; rows <= 21; ++rows) {
    auto grown = shared_grid(rows, 16);
    service.submit_update(id, grown, diff_graphs(*prev, *grown));
    prev = grown;
  }
  service.quiesce();
  const SessionStats st = service.session_stats(id);
  EXPECT_GT(st.refinements_planned, 1);
  EXPECT_EQ(st.refinements_planned, st.refinements_applied +
                                        st.refinements_stale +
                                        st.refinements_no_better);
  expect_snapshot_consistent(*service.snapshot(id), k);

  const ServiceStats agg = service.stats();
  EXPECT_EQ(agg.sessions, 1);
  EXPECT_EQ(agg.updates, 5u);
  EXPECT_GE(agg.p99_repair_seconds, agg.p50_repair_seconds);
}

TEST(PartitionService, ConcurrentSessionsWithConcurrentReaders) {
  // The MT fuzz: one writer thread per session streaming growth deltas with
  // background refinement racing them, plus reader threads hammering
  // snapshot().  Every snapshot must be internally consistent (assignment
  // matches ITS graph, metrics match a from-scratch recompute) and versions
  // must be monotone per reader.
  const PartId k = 4;
  constexpr int kSessions = 4;
  constexpr int kUpdates = 12;
  constexpr VertexId kCols = 10;

  ServiceConfig service_config;
  service_config.num_threads = 4;
  PartitionService service(service_config);
  SessionConfig cfg = basic_config(k);
  cfg.policy.damage_threshold = 16;  // refinements race the stream
  cfg.policy.allow_deep = false;

  std::vector<SessionId> ids;
  for (int s = 0; s < kSessions; ++s) {
    auto g = shared_grid(10, kCols);
    ids.push_back(service.open_session(
        g, block_partition(g->num_vertices(), k), cfg));
  }

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::vector<std::uint64_t> last_version(kSessions, 0);
      while (!done.load(std::memory_order_acquire)) {
        for (int s = 0; s < kSessions; ++s) {
          const auto snap = service.snapshot(ids[static_cast<std::size_t>(s)]);
          if (snap == nullptr ||
              !is_valid_assignment(*snap->graph, snap->assignment, k)) {
            ++failures;
            continue;
          }
          const auto m = compute_metrics(*snap->graph, snap->assignment, k);
          if (std::abs(m.total_cut() - snap->total_cut) > 1e-6 ||
              snap->version < last_version[static_cast<std::size_t>(s)]) {
            ++failures;
          }
          last_version[static_cast<std::size_t>(s)] = snap->version;
        }
      }
      (void)r;
    });
  }

  std::vector<std::thread> writers;
  for (int s = 0; s < kSessions; ++s) {
    writers.emplace_back([&, s] {
      std::shared_ptr<const Graph> prev = shared_grid(10, kCols);
      for (int u = 1; u <= kUpdates; ++u) {
        auto grown = shared_grid(static_cast<VertexId>(10 + u), kCols);
        service.submit_update(ids[static_cast<std::size_t>(s)], grown,
                              diff_graphs(*prev, *grown));
        prev = grown;
      }
    });
  }
  for (auto& w : writers) w.join();
  service.quiesce();
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_EQ(failures.load(), 0);
  for (int s = 0; s < kSessions; ++s) {
    const auto snap = service.snapshot(ids[static_cast<std::size_t>(s)]);
    EXPECT_EQ(snap->update_epoch, static_cast<std::uint64_t>(kUpdates));
    expect_snapshot_consistent(*snap, k);
  }
  const ServiceStats agg = service.stats();
  EXPECT_EQ(agg.sessions, kSessions);
  EXPECT_EQ(agg.updates, static_cast<std::uint64_t>(kSessions * kUpdates));
}

TEST(PartitionService, PollTicksIdleSessionsIntoRefinement) {
  const PartId k = 4;
  ServiceConfig service_config;
  service_config.num_threads = 2;
  PartitionService service(service_config);
  SessionConfig cfg = basic_config(k);
  cfg.repair_budget_seconds = 0.0;
  // Fire on any damage: the job planned at update 1 races update 2 (or
  // lands between them — either way, in-flight suppression plus staleness
  // leaves accumulated triggers that only poll() can act on once the
  // traffic stops).
  cfg.policy.damage_threshold = 1;
  cfg.policy.quality_watermark = 0.0;
  cfg.policy.staleness_updates = 0;
  cfg.policy.allow_deep = false;

  Rng rng(0x1d1e);
  auto g = shared_grid(14, 14);
  Assignment scrambled(196);
  for (auto& p : scrambled) p = static_cast<PartId>(rng.uniform_int(k));
  const SessionId id = service.open_session(g, scrambled, cfg);

  // Two quick back-to-back updates.
  auto g15 = shared_grid(15, 14);
  service.submit_update(id, g15, diff_graphs(*g, *g15));
  auto g16 = shared_grid(16, 14);
  service.submit_update(id, g16, diff_graphs(*g15, *g16));
  service.quiesce();
  const int applied_before = service.session_stats(id).refinements_applied;

  // No further traffic: only poll() can act on the accumulated staleness.
  for (VertexId i = 0; i < 3; ++i) {
    service.poll();
    service.quiesce();
  }
  const SessionStats st = service.session_stats(id);
  EXPECT_GE(st.refinements_applied, applied_before);
  EXPECT_EQ(st.refinements_planned, st.refinements_applied +
                                        st.refinements_stale +
                                        st.refinements_no_better);
  // Idle completions certified the state: polling again stays quiet.
  const int planned = st.refinements_planned;
  service.poll();
  service.quiesce();
  EXPECT_EQ(service.session_stats(id).refinements_planned, planned);
  expect_snapshot_consistent(*service.snapshot(id), k);
}

TEST(PartitionService, CloseSessionIsSafeWithRefinementInFlight) {
  const PartId k = 2;
  ServiceConfig service_config;
  service_config.num_threads = 2;
  PartitionService service(service_config);
  SessionConfig cfg = basic_config(k);
  cfg.policy.damage_threshold = 1;

  auto g = shared_grid(12, 12);
  Rng rng(3);
  Assignment scrambled(144);
  for (auto& p : scrambled) p = static_cast<PartId>(rng.uniform_int(k));
  const SessionId id = service.open_session(g, scrambled, cfg);
  auto grown = shared_grid(13, 12);
  service.submit_update(id, grown, diff_graphs(*g, *grown));
  service.close_session(id);  // refinement may still be running
  EXPECT_THROW(service.snapshot(id), Error);
  service.quiesce();  // the orphaned job publishes into its own capture only
  EXPECT_EQ(service.num_sessions(), 0);
  EXPECT_THROW(service.close_session(id), Error);
}

TEST(PartitionService, UnknownSessionIdsThrow) {
  ServiceConfig service_config;
  service_config.num_threads = 1;
  PartitionService service(service_config);
  auto g = shared_grid(4, 4);
  EXPECT_THROW(service.submit_update(99, g, appended_delta(*g, 16)), Error);
  EXPECT_THROW(service.snapshot(99), Error);
  EXPECT_THROW(service.session_stats(99), Error);
}

}  // namespace
}  // namespace gapart
