#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace gapart {
namespace {

TEST(SplitMix64, KnownSequenceFromZeroSeed) {
  // Reference values for seed 0 (from the published SplitMix64 algorithm).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto x0 = a.next_u64();
  const auto x1 = a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), x0);
  EXPECT_EQ(a.next_u64(), x1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  double mn = 1.0;
  double mx = 0.0;
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mn = std::min(mn, u);
    mx = std::max(mx, u);
    sum += u;
  }
  EXPECT_LT(mn, 0.01);
  EXPECT_GT(mx, 0.99);
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 2.0);
  }
}

TEST(Rng, UniformIntCoversAllValuesUnbiased) {
  Rng rng(11);
  constexpr int kBuckets = 7;
  constexpr int kDraws = 70000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) {
    const int v = rng.uniform_int(kBuckets);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, kBuckets);
    ++counts[static_cast<std::size_t>(v)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, 5.0 * std::sqrt(expected));
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  constexpr int kDraws = 100000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(23);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(29);
  constexpr int kDraws = 100000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rng, ShuffleUniformFirstElement) {
  // Position of element 0 after shuffling should be ~uniform.
  Rng rng(37);
  constexpr int kN = 8;
  constexpr int kTrials = 40000;
  std::array<int, kN> counts{};
  for (int t = 0; t < kTrials; ++t) {
    std::vector<int> v(kN);
    std::iota(v.begin(), v.end(), 0);
    rng.shuffle(v);
    for (int i = 0; i < kN; ++i) {
      if (v[static_cast<std::size_t>(i)] == 0) {
        ++counts[static_cast<std::size_t>(i)];
      }
    }
  }
  const double expected = static_cast<double>(kTrials) / kN;
  for (int c : counts) EXPECT_NEAR(c, expected, 5.0 * std::sqrt(expected));
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.split();
  // Child stream should not reproduce the parent's continuation.
  Rng parent_copy(41);
  (void)parent_copy.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next_u64() == parent.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, SplitDeterministic) {
  Rng a(51);
  Rng b(51);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) ASSERT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, UniformU64HandlesLargeBound) {
  Rng rng(61);
  const std::uint64_t bound = (std::uint64_t{1} << 63) + 12345;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LT(rng.uniform_u64(bound), bound);
  }
}

}  // namespace
}  // namespace gapart
