// Remaining small-surface coverage: timers, raw CSR accessors, DPGA result
// bookkeeping, umbrella header integrity.
#include <gtest/gtest.h>

#include "common/timer.hpp"
#include "gapart.hpp"

namespace gapart {
namespace {

TEST(WallTimer, MonotoneAndResettable) {
  WallTimer t;
  const double a = t.seconds();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const double b = t.seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), b + 1.0);
  EXPECT_NEAR(t.milliseconds(), t.seconds() * 1e3, 1.0);
}

TEST(GraphRawCsr, ArraysConsistent) {
  const Graph g = make_grid(4, 5);
  const auto& xadj = g.xadj();
  ASSERT_EQ(xadj.size(), static_cast<std::size_t>(g.num_vertices()) + 1);
  EXPECT_EQ(xadj.front(), 0);
  EXPECT_EQ(static_cast<std::size_t>(xadj.back()), g.adjncy().size());
  EXPECT_EQ(g.adjncy().size(), g.ewgt().size());
  EXPECT_EQ(g.vwgt().size(), static_cast<std::size_t>(g.num_vertices()));
  // Row extents match degree().
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(xadj[static_cast<std::size_t>(v) + 1] -
                  xadj[static_cast<std::size_t>(v)],
              g.degree(v));
  }
}

TEST(DpgaBookkeeping, WallClockAndHistoryRanges) {
  const Graph g = make_two_cliques(6);
  Rng rng(3);
  DpgaConfig cfg;
  cfg.num_islands = 2;
  cfg.topology = TopologyKind::kRing;
  cfg.ga.num_parts = 2;
  cfg.ga.population_size = 16;
  cfg.ga.max_generations = 12;
  auto init = make_random_population(g.num_vertices(), 2,
                                     cfg.ga.population_size, rng);
  const auto res = run_dpga(g, cfg, std::move(init), rng.split());
  EXPECT_GT(res.wall_seconds, 0.0);
  ASSERT_FALSE(res.history.empty());
  EXPECT_EQ(res.history.front().generation, 0);
  EXPECT_EQ(res.history.back().generation,
            static_cast<int>(res.history.size()) - 1);
  EXPECT_EQ(res.history.size(), 13u);  // initial + 12 generations
  // The reported best is the max across islands.
  double island_max = res.island_best_fitness.front();
  for (double f : res.island_best_fitness) island_max = std::max(island_max, f);
  EXPECT_DOUBLE_EQ(res.best_fitness, island_max);
  // And matches a recomputation from the returned assignment.
  EXPECT_DOUBLE_EQ(res.best_fitness,
                   evaluate_fitness(g, res.best, 2, cfg.ga.fitness));
}

TEST(GenerationStats, CutFieldsTrackBestIndividual) {
  const Mesh mesh = paper_mesh(78);
  Rng rng(5);
  GaConfig cfg;
  cfg.num_parts = 4;
  cfg.population_size = 30;
  cfg.max_generations = 0;
  auto init = make_random_population(78, 4, cfg.population_size, rng);
  GaEngine engine(mesh.graph, cfg, std::move(init), rng.split());
  for (int s = 0; s < 8; ++s) engine.step();
  const auto& h = engine.history().back();
  const auto m = compute_metrics(mesh.graph, engine.best().genes, 4);
  EXPECT_DOUBLE_EQ(h.best_total_cut, m.total_cut());
  EXPECT_DOUBLE_EQ(h.best_max_part_cut, m.max_part_cut);
  EXPECT_DOUBLE_EQ(h.best_fitness, engine.best().fitness);
}

TEST(UmbrellaHeader, ExposesAllSubsystems) {
  // Compile-time proof that gapart.hpp covers the full public API: touch
  // one symbol from every module.
  Rng rng(1);
  const Graph g = make_grid(3, 3);
  (void)connected_components(g);
  (void)dense_laplacian(g);
  (void)row_major_index(0, 0, 8);
  (void)rgb_partition(g, 2, rng);
  (void)paper_ga_config(2, Objective::kTotalComm);
  (void)crossover_name(CrossoverOp::kDknux);
  TextTable t({"x"});
  (void)t;
  SUCCEED();
}

}  // namespace
}  // namespace gapart
