#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "graph/coarsen.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "graph/subgraph.hpp"

namespace gapart {
namespace {

TEST(Subgraph, InducedOnPath) {
  const Graph g = make_path(6);
  const auto sub = induced_subgraph(g, {1, 2, 3});
  EXPECT_EQ(sub.graph.num_vertices(), 3);
  EXPECT_EQ(sub.graph.num_edges(), 2);  // 1-2 and 2-3
  EXPECT_EQ(sub.to_parent[0], 1);
  EXPECT_EQ(sub.to_parent[2], 3);
}

TEST(Subgraph, NonContiguousSelection) {
  const Graph g = make_cycle(6);
  const auto sub = induced_subgraph(g, {0, 2, 4});
  EXPECT_EQ(sub.graph.num_edges(), 0);  // alternating vertices: no edges
}

TEST(Subgraph, CarriesWeightsAndCoordinates) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 2.5);
  b.add_edge(1, 2, 1.5);
  b.set_vertex_weight(1, 7.0);
  b.set_coordinate(0, {0, 0});
  b.set_coordinate(1, {1, 1});
  b.set_coordinate(2, {2, 2});
  b.set_coordinate(3, {3, 3});
  const Graph g = b.build();
  const auto sub = induced_subgraph(g, {1, 2});
  EXPECT_DOUBLE_EQ(sub.graph.vertex_weight(0), 7.0);
  EXPECT_DOUBLE_EQ(sub.graph.edge_weight(0, 1).value(), 1.5);
  EXPECT_EQ(sub.graph.coordinate(0), (Point2{1, 1}));
}

TEST(Subgraph, DuplicateAndOutOfRangeRejected) {
  const Graph g = make_path(4);
  EXPECT_THROW(induced_subgraph(g, {0, 0}), Error);
  EXPECT_THROW(induced_subgraph(g, {0, 9}), Error);
}

TEST(Subgraph, EmptySelection) {
  const Graph g = make_path(4);
  const auto sub = induced_subgraph(g, {});
  EXPECT_EQ(sub.graph.num_vertices(), 0);
}

TEST(Coarsen, WeightConservation) {
  Rng rng(3);
  const Graph g = make_grid(8, 8);
  const auto level = coarsen_once(g, rng);
  EXPECT_LT(level.graph.num_vertices(), g.num_vertices());
  EXPECT_GE(level.graph.num_vertices(), g.num_vertices() / 2);
  EXPECT_DOUBLE_EQ(level.graph.total_vertex_weight(),
                   g.total_vertex_weight());
}

TEST(Coarsen, MappingIsOntoCoarseVertices) {
  Rng rng(5);
  const Graph g = make_grid(6, 6);
  const auto level = coarsen_once(g, rng);
  std::vector<int> hit(static_cast<std::size_t>(level.graph.num_vertices()), 0);
  for (VertexId c : level.fine_to_coarse) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, level.graph.num_vertices());
    ++hit[static_cast<std::size_t>(c)];
  }
  for (int h : hit) {
    EXPECT_GE(h, 1);
    EXPECT_LE(h, 2);  // matching pairs at most two fine vertices
  }
}

TEST(Coarsen, PreservesConnectivity) {
  Rng rng(7);
  const Graph g = make_connected_geometric(120, 0.15, rng);
  const auto level = coarsen_once(g, rng);
  EXPECT_TRUE(is_connected(level.graph));
}

TEST(Coarsen, CutConservedUnderProjection) {
  // Any coarse partition must have exactly the same cut as its projection:
  // coarse edges aggregate fine edge weights.
  Rng rng(11);
  const Graph g = make_grid(10, 10);
  const auto level = coarsen_once(g, rng);
  Assignment coarse(static_cast<std::size_t>(level.graph.num_vertices()));
  for (auto& p : coarse) p = static_cast<PartId>(rng.uniform_int(3));
  const auto fine = project_assignment(coarse, level.fine_to_coarse);
  const auto mc = compute_metrics(level.graph, coarse, 3);
  const auto mf = compute_metrics(g, fine, 3);
  EXPECT_DOUBLE_EQ(mc.total_cut(), mf.total_cut());
  EXPECT_DOUBLE_EQ(mc.max_part_cut, mf.max_part_cut);
  for (PartId q = 0; q < 3; ++q) {
    EXPECT_DOUBLE_EQ(mc.part_weight[static_cast<std::size_t>(q)],
                     mf.part_weight[static_cast<std::size_t>(q)]);
  }
}

TEST(Coarsen, HierarchyReachesTarget) {
  Rng rng(13);
  const Graph g = make_grid(16, 16);  // 256 vertices
  const auto h = coarsen_to(g, 40, rng);
  EXPECT_GE(h.levels.size(), 2u);
  EXPECT_LE(h.coarsest(g).num_vertices(), 80);  // within 2x of target
  EXPECT_DOUBLE_EQ(h.coarsest(g).total_vertex_weight(),
                   g.total_vertex_weight());
}

TEST(Coarsen, HierarchyProjectionRoundTrip) {
  Rng rng(17);
  const Graph g = make_grid(12, 12);
  const auto h = coarsen_to(g, 30, rng);
  ASSERT_FALSE(h.levels.empty());
  Assignment a(static_cast<std::size_t>(h.coarsest(g).num_vertices()));
  for (auto& p : a) p = static_cast<PartId>(rng.uniform_int(4));
  const double coarse_cut = compute_metrics(h.coarsest(g), a, 4).total_cut();
  for (std::size_t li = h.levels.size(); li-- > 0;) {
    a = project_assignment(a, h.levels[li].fine_to_coarse);
  }
  EXPECT_EQ(static_cast<VertexId>(a.size()), g.num_vertices());
  EXPECT_DOUBLE_EQ(compute_metrics(g, a, 4).total_cut(), coarse_cut);
}

TEST(Coarsen, StarStalls) {
  // A star can halve at most once (centre matches one leaf); the hierarchy
  // must stop rather than loop.
  Rng rng(19);
  const Graph g = make_star(101);
  const auto h = coarsen_to(g, 4, rng);
  EXPECT_GE(h.coarsest(g).num_vertices(), 4);
}

TEST(Coarsen, TargetValidation) {
  Rng rng(1);
  const Graph g = make_path(10);
  EXPECT_THROW(coarsen_to(g, 1, rng), Error);
}

void expect_same_hierarchy(const CoarsenHierarchy& a,
                           const CoarsenHierarchy& b) {
  ASSERT_EQ(a.levels.size(), b.levels.size());
  for (std::size_t li = 0; li < a.levels.size(); ++li) {
    EXPECT_EQ(a.levels[li].fine_to_coarse, b.levels[li].fine_to_coarse);
    EXPECT_EQ(a.levels[li].graph.num_vertices(),
              b.levels[li].graph.num_vertices());
    EXPECT_EQ(a.levels[li].graph.num_edges(), b.levels[li].graph.num_edges());
  }
}

TEST(Coarsen, SameSeedSameHierarchy) {
  const Graph g = make_grid(14, 14);
  Rng rng1(23);
  Rng rng2(23);
  expect_same_hierarchy(coarsen_to(g, 30, rng1), coarsen_to(g, 30, rng2));
}

TEST(Coarsen, ConsumesExactlyOneDraw) {
  // coarsen_to takes ONE split() from the caller and forks per level, so the
  // caller's stream position afterwards is independent of hierarchy depth —
  // pool-width and depth changes cannot shift later draws.
  const Graph g = make_grid(14, 14);
  Rng a(42);
  Rng b(42);
  coarsen_to(g, 8, a);  // deep hierarchy
  b.split();            // the one draw
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Coarsen, DeeperTargetExtendsShallowerAsPrefix) {
  // Because level j's matching is a pure function of (entry state, j), a
  // deeper target must reproduce the shallower hierarchy's levels verbatim
  // and only append below them.
  const Graph g = make_grid(16, 16);
  Rng rng1(7);
  Rng rng2(7);
  const auto shallow = coarsen_to(g, 100, rng1);
  const auto deep = coarsen_to(g, 10, rng2);
  ASSERT_GT(deep.levels.size(), shallow.levels.size());
  for (std::size_t li = 0; li < shallow.levels.size(); ++li) {
    EXPECT_EQ(shallow.levels[li].fine_to_coarse,
              deep.levels[li].fine_to_coarse);
  }
}

TEST(Coarsen, ContractClustersSumsWeightsAndMergesEdges) {
  GraphBuilder b(5);
  b.add_edge(0, 1, 2.0);
  b.add_edge(1, 2, 3.0);
  b.add_edge(2, 3, 4.0);
  b.add_edge(3, 4, 5.0);
  b.add_edge(0, 4, 7.0);  // second inter-cluster edge, must merge with 1-2...
  b.set_vertex_weight(0, 2.0);
  b.set_vertex_weight(3, 6.0);
  const Graph g = b.build();
  // Clusters {0,1} and {2,3,4}: intra edges 0-1, 2-3, 3-4 vanish; the two
  // crossing edges 1-2 (3.0) and 0-4 (7.0) merge into one of weight 10.
  const auto level = contract_clusters(g, {0, 0, 1, 1, 1}, 2);
  EXPECT_EQ(level.graph.num_vertices(), 2);
  EXPECT_EQ(level.graph.num_edges(), 1);
  EXPECT_DOUBLE_EQ(level.graph.edge_weight(0, 1).value(), 10.0);
  EXPECT_DOUBLE_EQ(level.graph.vertex_weight(0), 3.0);  // 2 + 1
  EXPECT_DOUBLE_EQ(level.graph.vertex_weight(1), 8.0);  // 1 + 6 + 1
}

TEST(Coarsen, ContractClustersValidation) {
  const Graph g = make_path(4);
  EXPECT_THROW(contract_clusters(g, {0, 1}, 2), Error);  // wrong size
  EXPECT_THROW(contract_clusters(g, {0, 1, 2, 3}, 3), Error);  // out of range
  EXPECT_THROW(contract_clusters(g, {0, 0, 0, 0}, 2), Error);  // cluster 1 empty
}

TEST(Coarsen, RespectedPartitionStaysConstantPerCoarseVertex) {
  const Graph g = make_grid(12, 12);
  Assignment seed(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    seed[static_cast<std::size_t>(v)] = (v % 12) < 6 ? 0 : 1;
  }
  Rng rng(31);
  const auto h = coarsen_to(g, 12, rng, &seed);
  ASSERT_GE(h.levels.size(), 2u);
  // Project the seed level by level; respecting matching means every coarse
  // vertex's members agree, and the fitness is conserved exactly.
  const auto fine_metrics = compute_metrics(g, seed, 2);
  Assignment current = seed;
  const Graph* fine = &g;
  for (const auto& level : h.levels) {
    Assignment coarse(static_cast<std::size_t>(level.graph.num_vertices()),
                      -1);
    for (VertexId v = 0; v < fine->num_vertices(); ++v) {
      const auto c = static_cast<std::size_t>(
          level.fine_to_coarse[static_cast<std::size_t>(v)]);
      const PartId p = current[static_cast<std::size_t>(v)];
      if (coarse[c] == -1) {
        coarse[c] = p;
      } else {
        ASSERT_EQ(coarse[c], p) << "cluster mixes parts";
      }
    }
    const auto mc = compute_metrics(level.graph, coarse, 2);
    EXPECT_DOUBLE_EQ(mc.total_cut(), fine_metrics.total_cut());
    EXPECT_DOUBLE_EQ(mc.imbalance_sq, fine_metrics.imbalance_sq);
    current = std::move(coarse);
    fine = &level.graph;
  }
}

TEST(Coarsen, FlattenMapMatchesSequentialProjection) {
  Rng rng(37);
  const Graph g = make_grid(13, 13);
  const auto h = coarsen_to(g, 20, rng);
  ASSERT_GE(h.levels.size(), 2u);
  Assignment coarse(static_cast<std::size_t>(h.coarsest(g).num_vertices()));
  for (auto& p : coarse) p = static_cast<PartId>(rng.uniform_int(4));
  const auto one_pass = h.project_to_finest(coarse, g.num_vertices());
  Assignment sequential = coarse;
  for (std::size_t li = h.levels.size(); li-- > 0;) {
    sequential = project_assignment(sequential, h.levels[li].fine_to_coarse);
  }
  EXPECT_EQ(one_pass, sequential);
}

TEST(Coarsen, EmptyHierarchyProjectsIdentity) {
  Rng rng(41);
  const Graph g = make_path(6);
  const auto h = coarsen_to(g, 100, rng);  // already below target
  EXPECT_TRUE(h.levels.empty());
  const Assignment a{0, 1, 0, 1, 0, 1};
  EXPECT_EQ(h.project_to_finest(a, 6), a);
  const auto flat = h.flatten_map(6);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(flat[static_cast<std::size_t>(v)], v);
  }
}

Graph random_weighted_graph(VertexId n, Rng& rng) {
  const Graph base = make_connected_geometric(n, 0.25, rng);
  GraphBuilder b(base.num_vertices());
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    b.set_vertex_weight(v, 1.0 + rng.uniform_int(4));
    const auto nbrs = base.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (v < nbrs[i]) b.add_edge(v, nbrs[i], 1.0 + rng.uniform_int(8));
    }
  }
  return b.build();
}

TEST(Coarsen, FuzzCutPreservedThroughMultilevelHierarchies) {
  // The quotient invariant, fuzzed: for ANY assignment of the coarsest
  // graph, the one-pass projection to the finest has bitwise-equal part
  // weights, total cut, and max part cut — on unit-weight and on randomly
  // weighted graphs alike (all sums are integer-exact).
  Rng rng(97);
  for (int trial = 0; trial < 12; ++trial) {
    const VertexId n = 60 + 20 * (trial % 5);
    const bool weighted = trial % 2 == 1;
    const Graph g = weighted ? random_weighted_graph(n, rng)
                             : make_connected_geometric(n, 0.25, rng);
    const PartId k = 2 + trial % 3;
    const auto h = coarsen_to(g, 12, rng);
    ASSERT_GE(h.levels.size(), 2u) << "fuzz wants multi-level hierarchies";
    Assignment coarse(
        static_cast<std::size_t>(h.coarsest(g).num_vertices()));
    for (auto& p : coarse) p = static_cast<PartId>(rng.uniform_int(k));
    const auto fine = h.project_to_finest(coarse, g.num_vertices());
    const auto mc = compute_metrics(h.coarsest(g), coarse, k);
    const auto mf = compute_metrics(g, fine, k);
    EXPECT_DOUBLE_EQ(mc.total_cut(), mf.total_cut());
    EXPECT_DOUBLE_EQ(mc.max_part_cut, mf.max_part_cut);
    EXPECT_DOUBLE_EQ(mc.imbalance_sq, mf.imbalance_sq);
    for (PartId q = 0; q < k; ++q) {
      EXPECT_DOUBLE_EQ(mc.part_weight[static_cast<std::size_t>(q)],
                       mf.part_weight[static_cast<std::size_t>(q)]);
    }
  }
}

}  // namespace
}  // namespace gapart
