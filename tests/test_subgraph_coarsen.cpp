#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "graph/coarsen.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "graph/subgraph.hpp"

namespace gapart {
namespace {

TEST(Subgraph, InducedOnPath) {
  const Graph g = make_path(6);
  const auto sub = induced_subgraph(g, {1, 2, 3});
  EXPECT_EQ(sub.graph.num_vertices(), 3);
  EXPECT_EQ(sub.graph.num_edges(), 2);  // 1-2 and 2-3
  EXPECT_EQ(sub.to_parent[0], 1);
  EXPECT_EQ(sub.to_parent[2], 3);
}

TEST(Subgraph, NonContiguousSelection) {
  const Graph g = make_cycle(6);
  const auto sub = induced_subgraph(g, {0, 2, 4});
  EXPECT_EQ(sub.graph.num_edges(), 0);  // alternating vertices: no edges
}

TEST(Subgraph, CarriesWeightsAndCoordinates) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 2.5);
  b.add_edge(1, 2, 1.5);
  b.set_vertex_weight(1, 7.0);
  b.set_coordinate(0, {0, 0});
  b.set_coordinate(1, {1, 1});
  b.set_coordinate(2, {2, 2});
  b.set_coordinate(3, {3, 3});
  const Graph g = b.build();
  const auto sub = induced_subgraph(g, {1, 2});
  EXPECT_DOUBLE_EQ(sub.graph.vertex_weight(0), 7.0);
  EXPECT_DOUBLE_EQ(sub.graph.edge_weight(0, 1).value(), 1.5);
  EXPECT_EQ(sub.graph.coordinate(0), (Point2{1, 1}));
}

TEST(Subgraph, DuplicateAndOutOfRangeRejected) {
  const Graph g = make_path(4);
  EXPECT_THROW(induced_subgraph(g, {0, 0}), Error);
  EXPECT_THROW(induced_subgraph(g, {0, 9}), Error);
}

TEST(Subgraph, EmptySelection) {
  const Graph g = make_path(4);
  const auto sub = induced_subgraph(g, {});
  EXPECT_EQ(sub.graph.num_vertices(), 0);
}

TEST(Coarsen, WeightConservation) {
  Rng rng(3);
  const Graph g = make_grid(8, 8);
  const auto level = coarsen_once(g, rng);
  EXPECT_LT(level.graph.num_vertices(), g.num_vertices());
  EXPECT_GE(level.graph.num_vertices(), g.num_vertices() / 2);
  EXPECT_DOUBLE_EQ(level.graph.total_vertex_weight(),
                   g.total_vertex_weight());
}

TEST(Coarsen, MappingIsOntoCoarseVertices) {
  Rng rng(5);
  const Graph g = make_grid(6, 6);
  const auto level = coarsen_once(g, rng);
  std::vector<int> hit(static_cast<std::size_t>(level.graph.num_vertices()), 0);
  for (VertexId c : level.fine_to_coarse) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, level.graph.num_vertices());
    ++hit[static_cast<std::size_t>(c)];
  }
  for (int h : hit) {
    EXPECT_GE(h, 1);
    EXPECT_LE(h, 2);  // matching pairs at most two fine vertices
  }
}

TEST(Coarsen, PreservesConnectivity) {
  Rng rng(7);
  const Graph g = make_connected_geometric(120, 0.15, rng);
  const auto level = coarsen_once(g, rng);
  EXPECT_TRUE(is_connected(level.graph));
}

TEST(Coarsen, CutConservedUnderProjection) {
  // Any coarse partition must have exactly the same cut as its projection:
  // coarse edges aggregate fine edge weights.
  Rng rng(11);
  const Graph g = make_grid(10, 10);
  const auto level = coarsen_once(g, rng);
  Assignment coarse(static_cast<std::size_t>(level.graph.num_vertices()));
  for (auto& p : coarse) p = static_cast<PartId>(rng.uniform_int(3));
  const auto fine = project_assignment(coarse, level.fine_to_coarse);
  const auto mc = compute_metrics(level.graph, coarse, 3);
  const auto mf = compute_metrics(g, fine, 3);
  EXPECT_DOUBLE_EQ(mc.total_cut(), mf.total_cut());
  EXPECT_DOUBLE_EQ(mc.max_part_cut, mf.max_part_cut);
  for (PartId q = 0; q < 3; ++q) {
    EXPECT_DOUBLE_EQ(mc.part_weight[static_cast<std::size_t>(q)],
                     mf.part_weight[static_cast<std::size_t>(q)]);
  }
}

TEST(Coarsen, HierarchyReachesTarget) {
  Rng rng(13);
  const Graph g = make_grid(16, 16);  // 256 vertices
  const auto h = coarsen_to(g, 40, rng);
  EXPECT_GE(h.levels.size(), 2u);
  EXPECT_LE(h.coarsest(g).num_vertices(), 80);  // within 2x of target
  EXPECT_DOUBLE_EQ(h.coarsest(g).total_vertex_weight(),
                   g.total_vertex_weight());
}

TEST(Coarsen, HierarchyProjectionRoundTrip) {
  Rng rng(17);
  const Graph g = make_grid(12, 12);
  const auto h = coarsen_to(g, 30, rng);
  ASSERT_FALSE(h.levels.empty());
  Assignment a(static_cast<std::size_t>(h.coarsest(g).num_vertices()));
  for (auto& p : a) p = static_cast<PartId>(rng.uniform_int(4));
  const double coarse_cut = compute_metrics(h.coarsest(g), a, 4).total_cut();
  for (std::size_t li = h.levels.size(); li-- > 0;) {
    a = project_assignment(a, h.levels[li].fine_to_coarse);
  }
  EXPECT_EQ(static_cast<VertexId>(a.size()), g.num_vertices());
  EXPECT_DOUBLE_EQ(compute_metrics(g, a, 4).total_cut(), coarse_cut);
}

TEST(Coarsen, StarStalls) {
  // A star can halve at most once (centre matches one leaf); the hierarchy
  // must stop rather than loop.
  Rng rng(19);
  const Graph g = make_star(101);
  const auto h = coarsen_to(g, 4, rng);
  EXPECT_GE(h.coarsest(g).num_vertices(), 4);
}

TEST(Coarsen, TargetValidation) {
  Rng rng(1);
  const Graph g = make_path(10);
  EXPECT_THROW(coarsen_to(g, 1, rng), Error);
}

}  // namespace
}  // namespace gapart
