#include "spectral/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "spectral/laplacian.hpp"

namespace gapart {
namespace {

/// Residual ||A x - lambda x||_inf for row-major A.
double eigen_residual(const std::vector<double>& A, int n,
                      const std::vector<double>& x, double lambda) {
  double worst = 0.0;
  const auto un = static_cast<std::size_t>(n);
  for (std::size_t i = 0; i < un; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < un; ++j) acc += A[i * un + j] * x[j];
    worst = std::max(worst, std::abs(acc - lambda * x[i]));
  }
  return worst;
}

TEST(Jacobi, DiagonalMatrix) {
  const std::vector<double> a = {3.0, 0.0, 0.0,
                                 0.0, 1.0, 0.0,
                                 0.0, 0.0, 2.0};
  const auto ed = jacobi_eigen(a, 3);
  EXPECT_NEAR(ed.values[0], 1.0, 1e-12);
  EXPECT_NEAR(ed.values[1], 2.0, 1e-12);
  EXPECT_NEAR(ed.values[2], 3.0, 1e-12);
}

TEST(Jacobi, TwoByTwoAnalytic) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  const auto ed = jacobi_eigen({2, 1, 1, 2}, 2);
  EXPECT_NEAR(ed.values[0], 1.0, 1e-12);
  EXPECT_NEAR(ed.values[1], 3.0, 1e-12);
  // Eigenvector of 1 is (1,-1)/sqrt2 up to sign.
  const auto v0 = ed.eigenvector(0);
  EXPECT_NEAR(std::abs(v0[0]), std::numbers::sqrt2 / 2.0, 1e-10);
  EXPECT_NEAR(v0[0] + v0[1], 0.0, 1e-10);
}

TEST(Jacobi, PathLaplacianAnalyticSpectrum) {
  // Path P_n Laplacian eigenvalues: 4 sin^2(k pi / (2n)), k = 0..n-1.
  const int n = 8;
  const Graph g = make_path(n);
  const auto ed = jacobi_eigen(dense_laplacian(g), n);
  for (int k = 0; k < n; ++k) {
    const double expected =
        4.0 * std::pow(std::sin(k * std::numbers::pi / (2.0 * n)), 2);
    EXPECT_NEAR(ed.values[static_cast<std::size_t>(k)], expected, 1e-9)
        << "k=" << k;
  }
}

TEST(Jacobi, CycleLaplacianAnalyticSpectrum) {
  // Cycle C_n Laplacian eigenvalues: 2 - 2cos(2 pi k / n).
  const int n = 7;
  const Graph g = make_cycle(n);
  const auto ed = jacobi_eigen(dense_laplacian(g), n);
  std::vector<double> expected;
  for (int k = 0; k < n; ++k) {
    expected.push_back(2.0 - 2.0 * std::cos(2.0 * std::numbers::pi * k / n));
  }
  std::sort(expected.begin(), expected.end());
  for (int k = 0; k < n; ++k) {
    EXPECT_NEAR(ed.values[static_cast<std::size_t>(k)],
                expected[static_cast<std::size_t>(k)], 1e-9);
  }
}

TEST(Jacobi, CompleteGraphSpectrum) {
  // K_n Laplacian: eigenvalue 0 once and n with multiplicity n-1.
  const int n = 6;
  const auto ed = jacobi_eigen(dense_laplacian(make_complete(n)), n);
  EXPECT_NEAR(ed.values[0], 0.0, 1e-9);
  for (int k = 1; k < n; ++k) {
    EXPECT_NEAR(ed.values[static_cast<std::size_t>(k)], n, 1e-9);
  }
}

TEST(Jacobi, StarGraphSpectrum) {
  // Star S_n (n vertices): eigenvalues 0, 1 (x n-2), n.
  const int n = 9;
  const auto ed = jacobi_eigen(dense_laplacian(make_star(n)), n);
  EXPECT_NEAR(ed.values[0], 0.0, 1e-9);
  for (int k = 1; k < n - 1; ++k) {
    EXPECT_NEAR(ed.values[static_cast<std::size_t>(k)], 1.0, 1e-9);
  }
  EXPECT_NEAR(ed.values[static_cast<std::size_t>(n - 1)], n, 1e-9);
}

TEST(Jacobi, EigenvectorsSatisfyDefinition) {
  Rng rng(5);
  const Graph g = make_random_graph(15, 0.4, rng);
  const auto L = dense_laplacian(g);
  const auto ed = jacobi_eigen(L, 15);
  for (int j = 0; j < 15; ++j) {
    EXPECT_LT(eigen_residual(L, 15, ed.eigenvector(j),
                             ed.values[static_cast<std::size_t>(j)]),
              1e-8)
        << "eigenpair " << j;
  }
}

TEST(Jacobi, EigenvectorsOrthonormal) {
  Rng rng(9);
  const Graph g = make_random_graph(12, 0.5, rng);
  const auto ed = jacobi_eigen(dense_laplacian(g), 12);
  for (int i = 0; i < 12; ++i) {
    for (int j = i; j < 12; ++j) {
      const double d = dot(ed.eigenvector(i), ed.eigenvector(j));
      EXPECT_NEAR(d, i == j ? 1.0 : 0.0, 1e-8) << i << "," << j;
    }
  }
}

TEST(Jacobi, InvalidInputRejected) {
  EXPECT_THROW(jacobi_eigen({1.0, 2.0}, 2), Error);  // wrong size
  EXPECT_THROW(jacobi_eigen({}, 0), Error);
  EXPECT_THROW(
      jacobi_eigen({std::numeric_limits<double>::quiet_NaN()}, 1), Error);
}

TEST(Tridiagonal, OneByOne) {
  const auto ed = tridiagonal_eigen({5.0}, {});
  ASSERT_EQ(ed.values.size(), 1u);
  EXPECT_DOUBLE_EQ(ed.values[0], 5.0);
}

TEST(Tridiagonal, TwoByTwoAnalytic) {
  const auto ed = tridiagonal_eigen({2.0, 2.0}, {1.0});
  EXPECT_NEAR(ed.values[0], 1.0, 1e-12);
  EXPECT_NEAR(ed.values[1], 3.0, 1e-12);
}

TEST(Tridiagonal, PathLaplacianMatchesJacobi) {
  // The path Laplacian IS tridiagonal — compare the dedicated solver with
  // Jacobi on the same matrix.
  const int n = 12;
  std::vector<double> diag(static_cast<std::size_t>(n), 2.0);
  diag.front() = 1.0;
  diag.back() = 1.0;
  std::vector<double> off(static_cast<std::size_t>(n - 1), -1.0);
  const auto td = tridiagonal_eigen(diag, off);
  const auto jd = jacobi_eigen(dense_laplacian(make_path(n)), n);
  for (int k = 0; k < n; ++k) {
    EXPECT_NEAR(td.values[static_cast<std::size_t>(k)],
                jd.values[static_cast<std::size_t>(k)], 1e-9);
  }
}

TEST(Tridiagonal, EigenvectorsSatisfyDefinition) {
  Rng rng(13);
  const int m = 20;
  std::vector<double> diag(m);
  std::vector<double> off(m - 1);
  for (auto& d : diag) d = rng.uniform(-2, 2);
  for (auto& e : off) e = rng.uniform(-1, 1);
  const auto ed = tridiagonal_eigen(diag, off);
  // Build the dense matrix and check residuals.
  std::vector<double> A(static_cast<std::size_t>(m * m), 0.0);
  const auto um = static_cast<std::size_t>(m);
  for (std::size_t i = 0; i < um; ++i) {
    A[i * um + i] = diag[i];
    if (i + 1 < um) {
      A[i * um + i + 1] = off[i];
      A[(i + 1) * um + i] = off[i];
    }
  }
  for (int j = 0; j < m; ++j) {
    EXPECT_LT(eigen_residual(A, m, ed.eigenvector(j),
                             ed.values[static_cast<std::size_t>(j)]),
              1e-8);
  }
}

TEST(Tridiagonal, ValuesAscending) {
  Rng rng(17);
  std::vector<double> diag(30);
  std::vector<double> off(29);
  for (auto& d : diag) d = rng.uniform(-5, 5);
  for (auto& e : off) e = rng.uniform(-3, 3);
  const auto ed = tridiagonal_eigen(diag, off);
  EXPECT_TRUE(std::is_sorted(ed.values.begin(), ed.values.end()));
}

TEST(Tridiagonal, SizeMismatchRejected) {
  EXPECT_THROW(tridiagonal_eigen({1.0, 2.0}, {0.5, 0.5}), Error);
  EXPECT_THROW(tridiagonal_eigen({}, {}), Error);
}

}  // namespace
}  // namespace gapart
