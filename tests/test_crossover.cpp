#include "core/crossover.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace gapart {
namespace {

/// Every child gene must come from one of the parents at the same locus.
void expect_genes_from_parents(const Assignment& a, const Assignment& b,
                               const Assignment& child) {
  ASSERT_EQ(child.size(), a.size());
  for (std::size_t i = 0; i < child.size(); ++i) {
    EXPECT_TRUE(child[i] == a[i] || child[i] == b[i]) << "locus " << i;
  }
}

TEST(KPointCrossover, OnePointSwapsSuffix) {
  const Assignment a = {0, 0, 0, 0, 0, 0};
  const Assignment b = {1, 1, 1, 1, 1, 1};
  Rng rng(3);
  Assignment c1;
  Assignment c2;
  k_point_crossover(a, b, 1, rng, c1, c2);
  // Exactly one switch: c1 is a prefix of a's followed by b's, and the
  // children are complementary.
  int switches = 0;
  for (std::size_t i = 1; i < c1.size(); ++i) {
    if (c1[i] != c1[i - 1]) ++switches;
  }
  EXPECT_EQ(switches, 1);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NE(c1[i], c2[i]);
  }
  EXPECT_EQ(c1[0], 0);  // children start from parent a by convention
}

TEST(KPointCrossover, TwoPointSwapsWindow) {
  const Assignment a(10, 0);
  const Assignment b(10, 1);
  Rng rng(5);
  Assignment c1;
  Assignment c2;
  k_point_crossover(a, b, 2, rng, c1, c2);
  int switches = 0;
  for (std::size_t i = 1; i < c1.size(); ++i) {
    if (c1[i] != c1[i - 1]) ++switches;
  }
  EXPECT_EQ(switches, 2);
}

TEST(KPointCrossover, CutCountClampedToLength) {
  const Assignment a(4, 0);
  const Assignment b(4, 1);
  Rng rng(7);
  Assignment c1;
  Assignment c2;
  k_point_crossover(a, b, 50, rng, c1, c2);  // clamped to 3 cuts
  expect_genes_from_parents(a, b, c1);
  expect_genes_from_parents(a, b, c2);
}

TEST(KPointCrossover, SingleGeneParents) {
  const Assignment a = {0};
  const Assignment b = {1};
  Rng rng(9);
  Assignment c1;
  Assignment c2;
  k_point_crossover(a, b, 2, rng, c1, c2);
  EXPECT_EQ(c1, a);
  EXPECT_EQ(c2, b);
}

TEST(KPointCrossover, MismatchedParentsRejected) {
  Rng rng(11);
  Assignment c1;
  Assignment c2;
  const Assignment a(4, 0);
  const Assignment b(5, 1);
  EXPECT_THROW(k_point_crossover(a, b, 1, rng, c1, c2), Error);
}

TEST(UniformCrossover, ChildrenComplementary) {
  const Assignment a(50, 0);
  const Assignment b(50, 1);
  Rng rng(13);
  Assignment c1;
  Assignment c2;
  uniform_crossover(a, b, rng, c1, c2);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_NE(c1[i], c2[i]);  // differing parents -> complementary children
  }
}

TEST(UniformCrossover, HalfAndHalfMixing) {
  const Assignment a(2000, 0);
  const Assignment b(2000, 1);
  Rng rng(17);
  Assignment c1;
  Assignment c2;
  uniform_crossover(a, b, rng, c1, c2);
  int from_a = 0;
  for (PartId p : c1) {
    if (p == 0) ++from_a;
  }
  EXPECT_NEAR(from_a, 1000, 120);  // ~N(1000, 22)
}

TEST(KnuxBias, PaperFormulaHandComputed) {
  // Path 0-1-2-3-4.  Reference I = {0,0,1,1,1}.
  // Node 2's neighbours are {1, 3}; I places 1 in part 0 and 3 in part 1.
  const Graph g = make_path(5);
  const Assignment ref = {0, 0, 1, 1, 1};
  // #(2, a=0, I) = 1 (neighbour 1), #(2, b=1, I) = 1 (neighbour 3).
  EXPECT_DOUBLE_EQ(knux_bias(g, ref, 2, 0, 1), 0.5);
  // Node 1's neighbours {0, 2}: I(0)=0, I(2)=1.
  // allele a=0 -> count 1; allele b=1 -> count 1 -> 0.5.
  EXPECT_DOUBLE_EQ(knux_bias(g, ref, 1, 0, 1), 0.5);
  // Node 4's neighbours {3}: I(3)=1.  a=1 -> 1, b=0 -> 0 -> p=1.
  EXPECT_DOUBLE_EQ(knux_bias(g, ref, 4, 1, 0), 1.0);
  EXPECT_DOUBLE_EQ(knux_bias(g, ref, 4, 0, 1), 0.0);
}

TEST(KnuxBias, BothCountsZeroGivesHalf) {
  // Alleles that the reference never uses near node i.
  const Graph g = make_path(3);
  const Assignment ref = {0, 0, 0};
  EXPECT_DOUBLE_EQ(knux_bias(g, ref, 1, 2, 3), 0.5);
}

TEST(KnuxBias, StarCenterCounts) {
  // Star centre (node 0) with 4 leaves; reference assigns leaves 1,2,3 to
  // part 2 and leaf 4 to part 5.
  const Graph g = make_star(5);
  const Assignment ref = {0, 2, 2, 2, 5};
  // a-allele 2 -> 3 supporting neighbours; b-allele 5 -> 1.
  EXPECT_DOUBLE_EQ(knux_bias(g, ref, 0, 2, 5), 0.75);
  EXPECT_DOUBLE_EQ(knux_bias(g, ref, 0, 5, 2), 0.25);
}

TEST(KnuxCrossover, AgreementCopiedVerbatim) {
  const Graph g = make_path(6);
  const Assignment a = {0, 0, 1, 1, 0, 1};
  const Assignment b = {0, 0, 1, 1, 1, 0};  // agrees on loci 0-3
  const Assignment ref = {0, 0, 0, 1, 1, 1};
  Rng rng(19);
  Assignment c1;
  Assignment c2;
  knux_crossover(a, b, g, ref, rng, c1, c2);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(c1[i], a[i]);
    EXPECT_EQ(c2[i], a[i]);
  }
  expect_genes_from_parents(a, b, c1);
  expect_genes_from_parents(a, b, c2);
}

TEST(KnuxCrossover, BiasObservedEmpirically) {
  // Node 1 of a path 0-1-2: reference I = {0,0,0} places both neighbours in
  // part 0, so with parents a_1 = 0, b_1 = 1 the child should inherit 0
  // with probability 1 (count_b = 0).
  const Graph g = make_path(3);
  const Assignment ref = {0, 0, 0};
  const Assignment a = {0, 0, 0};
  const Assignment b = {0, 1, 0};
  Rng rng(23);
  Assignment c1;
  Assignment c2;
  for (int trial = 0; trial < 200; ++trial) {
    // Default (independent) policy: both children follow the p=1 bias.
    knux_crossover(a, b, g, ref, rng, c1, c2);
    EXPECT_EQ(c1[1], 0);
    EXPECT_EQ(c2[1], 0);
    // Complementary policy: the sibling takes the other allele.
    knux_crossover(a, b, g, ref, rng, c1, c2, /*complementary=*/true);
    EXPECT_EQ(c1[1], 0);
    EXPECT_EQ(c2[1], 1);
  }
}

TEST(KnuxCrossover, FiftyFiftyWhenReferenceIsNeutral) {
  // Reference supports both alleles equally -> empirical inheritance ~50%.
  const Graph g = make_path(3);
  const Assignment ref = {0, 9, 1};  // node 1's neighbours split 0/1
  const Assignment a = {0, 0, 0};
  const Assignment b = {0, 1, 0};
  Rng rng(29);
  Assignment c1;
  Assignment c2;
  int zeros = 0;
  constexpr int kTrials = 4000;
  for (int trial = 0; trial < kTrials; ++trial) {
    knux_crossover(a, b, g, ref, rng, c1, c2);
    if (c1[1] == 0) ++zeros;
  }
  EXPECT_NEAR(zeros, kTrials / 2, 150);
}

TEST(KnuxCrossover, ReferenceSizeValidated) {
  const Graph g = make_path(3);
  Rng rng(31);
  Assignment c1;
  Assignment c2;
  const Assignment a = {0, 0, 0};
  const Assignment b = {1, 1, 1};
  const Assignment short_ref = {0, 0};
  EXPECT_THROW(knux_crossover(a, b, g, short_ref, rng, c1, c2), Error);
}

TEST(ApplyCrossover, DispatchesAllOperators) {
  const Graph g = make_grid(4, 4);
  Rng rng(37);
  Assignment a(16);
  Assignment b(16);
  for (std::size_t i = 0; i < 16; ++i) {
    a[i] = static_cast<PartId>(rng.uniform_int(4));
    b[i] = static_cast<PartId>(rng.uniform_int(4));
  }
  const Assignment ref = a;
  CrossoverContext ctx;
  ctx.graph = &g;
  ctx.reference = &ref;
  ctx.k_points = 3;
  for (CrossoverOp op :
       {CrossoverOp::kOnePoint, CrossoverOp::kTwoPoint, CrossoverOp::kKPoint,
        CrossoverOp::kUniform, CrossoverOp::kKnux, CrossoverOp::kDknux}) {
    Assignment c1;
    Assignment c2;
    apply_crossover(op, ctx, a, b, rng, c1, c2);
    expect_genes_from_parents(a, b, c1);
    expect_genes_from_parents(a, b, c2);
  }
}

TEST(ApplyCrossover, KnuxWithoutContextRejected) {
  Rng rng(41);
  Assignment c1;
  Assignment c2;
  const Assignment a = {0, 1};
  const Assignment b = {1, 0};
  CrossoverContext empty;
  EXPECT_THROW(
      apply_crossover(CrossoverOp::kKnux, empty, a, b, rng, c1, c2), Error);
}

TEST(CrossoverNames, ParseAndPrintRoundTrip) {
  EXPECT_EQ(parse_crossover("1point"), CrossoverOp::kOnePoint);
  EXPECT_EQ(parse_crossover("2point"), CrossoverOp::kTwoPoint);
  EXPECT_EQ(parse_crossover("kpoint"), CrossoverOp::kKPoint);
  EXPECT_EQ(parse_crossover("ux"), CrossoverOp::kUniform);
  EXPECT_EQ(parse_crossover("knux"), CrossoverOp::kKnux);
  EXPECT_EQ(parse_crossover("dknux"), CrossoverOp::kDknux);
  EXPECT_THROW(parse_crossover("3way"), Error);
  EXPECT_STREQ(crossover_name(CrossoverOp::kKnux), "KNUX");
  EXPECT_STREQ(crossover_name(CrossoverOp::kDknux), "DKNUX");
}

}  // namespace
}  // namespace gapart
